file(REMOVE_RECURSE
  "CMakeFiles/ts_histogram.dir/empirical_distribution.cc.o"
  "CMakeFiles/ts_histogram.dir/empirical_distribution.cc.o.d"
  "CMakeFiles/ts_histogram.dir/stream_histogram.cc.o"
  "CMakeFiles/ts_histogram.dir/stream_histogram.cc.o.d"
  "CMakeFiles/ts_histogram.dir/tdigest.cc.o"
  "CMakeFiles/ts_histogram.dir/tdigest.cc.o.d"
  "libts_histogram.a"
  "libts_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
