# Empty compiler generated dependencies file for ts_histogram.
# This may be replaced when dependencies are built.
