file(REMOVE_RECURSE
  "libts_histogram.a"
)
