
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/histogram/empirical_distribution.cc" "src/histogram/CMakeFiles/ts_histogram.dir/empirical_distribution.cc.o" "gcc" "src/histogram/CMakeFiles/ts_histogram.dir/empirical_distribution.cc.o.d"
  "/root/repo/src/histogram/stream_histogram.cc" "src/histogram/CMakeFiles/ts_histogram.dir/stream_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/ts_histogram.dir/stream_histogram.cc.o.d"
  "/root/repo/src/histogram/tdigest.cc" "src/histogram/CMakeFiles/ts_histogram.dir/tdigest.cc.o" "gcc" "src/histogram/CMakeFiles/ts_histogram.dir/tdigest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
