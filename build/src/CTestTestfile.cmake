# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("histogram")
subdirs("solver")
subdirs("predict")
subdirs("cluster")
subdirs("sim")
subdirs("sched")
subdirs("workload")
subdirs("metrics")
subdirs("core")
