file(REMOVE_RECURSE
  "CMakeFiles/ts_workload.dir/generator.cc.o"
  "CMakeFiles/ts_workload.dir/generator.cc.o.d"
  "CMakeFiles/ts_workload.dir/kmeans.cc.o"
  "CMakeFiles/ts_workload.dir/kmeans.cc.o.d"
  "CMakeFiles/ts_workload.dir/trace_io.cc.o"
  "CMakeFiles/ts_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/ts_workload.dir/trace_model.cc.o"
  "CMakeFiles/ts_workload.dir/trace_model.cc.o.d"
  "libts_workload.a"
  "libts_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
