# Empty dependencies file for ts_workload.
# This may be replaced when dependencies are built.
