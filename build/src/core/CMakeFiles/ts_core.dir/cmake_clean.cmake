file(REMOVE_RECURSE
  "CMakeFiles/ts_core.dir/experiment.cc.o"
  "CMakeFiles/ts_core.dir/experiment.cc.o.d"
  "CMakeFiles/ts_core.dir/systems.cc.o"
  "CMakeFiles/ts_core.dir/systems.cc.o.d"
  "libts_core.a"
  "libts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
