# Empty compiler generated dependencies file for ts_solver.
# This may be replaced when dependencies are built.
