file(REMOVE_RECURSE
  "CMakeFiles/ts_solver.dir/lp_model.cc.o"
  "CMakeFiles/ts_solver.dir/lp_model.cc.o.d"
  "CMakeFiles/ts_solver.dir/milp.cc.o"
  "CMakeFiles/ts_solver.dir/milp.cc.o.d"
  "CMakeFiles/ts_solver.dir/presolve.cc.o"
  "CMakeFiles/ts_solver.dir/presolve.cc.o.d"
  "CMakeFiles/ts_solver.dir/simplex.cc.o"
  "CMakeFiles/ts_solver.dir/simplex.cc.o.d"
  "libts_solver.a"
  "libts_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
