# Empty dependencies file for ts_metrics.
# This may be replaced when dependencies are built.
