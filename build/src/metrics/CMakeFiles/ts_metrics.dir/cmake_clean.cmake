file(REMOVE_RECURSE
  "CMakeFiles/ts_metrics.dir/metrics.cc.o"
  "CMakeFiles/ts_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/ts_metrics.dir/report.cc.o"
  "CMakeFiles/ts_metrics.dir/report.cc.o.d"
  "CMakeFiles/ts_metrics.dir/timeline.cc.o"
  "CMakeFiles/ts_metrics.dir/timeline.cc.o.d"
  "libts_metrics.a"
  "libts_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
