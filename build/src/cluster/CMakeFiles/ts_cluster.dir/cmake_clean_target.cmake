file(REMOVE_RECURSE
  "libts_cluster.a"
)
