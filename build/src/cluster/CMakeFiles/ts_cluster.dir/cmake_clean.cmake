file(REMOVE_RECURSE
  "CMakeFiles/ts_cluster.dir/cluster.cc.o"
  "CMakeFiles/ts_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/ts_cluster.dir/job.cc.o"
  "CMakeFiles/ts_cluster.dir/job.cc.o.d"
  "CMakeFiles/ts_cluster.dir/utility.cc.o"
  "CMakeFiles/ts_cluster.dir/utility.cc.o.d"
  "libts_cluster.a"
  "libts_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
