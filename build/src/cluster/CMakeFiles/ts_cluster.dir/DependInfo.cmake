
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/ts_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/ts_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/job.cc" "src/cluster/CMakeFiles/ts_cluster.dir/job.cc.o" "gcc" "src/cluster/CMakeFiles/ts_cluster.dir/job.cc.o.d"
  "/root/repo/src/cluster/utility.cc" "src/cluster/CMakeFiles/ts_cluster.dir/utility.cc.o" "gcc" "src/cluster/CMakeFiles/ts_cluster.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/ts_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/ts_histogram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
