# Empty compiler generated dependencies file for ts_cluster.
# This may be replaced when dependencies are built.
