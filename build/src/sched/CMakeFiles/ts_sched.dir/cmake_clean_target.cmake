file(REMOVE_RECURSE
  "libts_sched.a"
)
