# Empty compiler generated dependencies file for ts_sched.
# This may be replaced when dependencies are built.
