file(REMOVE_RECURSE
  "CMakeFiles/ts_sched.dir/distribution_scheduler.cc.o"
  "CMakeFiles/ts_sched.dir/distribution_scheduler.cc.o.d"
  "CMakeFiles/ts_sched.dir/prio_scheduler.cc.o"
  "CMakeFiles/ts_sched.dir/prio_scheduler.cc.o.d"
  "libts_sched.a"
  "libts_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
