file(REMOVE_RECURSE
  "CMakeFiles/ts_predict.dir/feature_history.cc.o"
  "CMakeFiles/ts_predict.dir/feature_history.cc.o.d"
  "CMakeFiles/ts_predict.dir/predictor.cc.o"
  "CMakeFiles/ts_predict.dir/predictor.cc.o.d"
  "CMakeFiles/ts_predict.dir/predictor_io.cc.o"
  "CMakeFiles/ts_predict.dir/predictor_io.cc.o.d"
  "libts_predict.a"
  "libts_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
