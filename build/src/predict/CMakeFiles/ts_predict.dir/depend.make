# Empty dependencies file for ts_predict.
# This may be replaced when dependencies are built.
