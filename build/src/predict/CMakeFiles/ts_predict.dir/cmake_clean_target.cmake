file(REMOVE_RECURSE
  "libts_predict.a"
)
