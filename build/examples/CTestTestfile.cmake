# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_deadline_scenarios_smoke "/root/repo/build/examples/deadline_scenarios")
set_tests_properties(example_deadline_scenarios_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_experiment_smoke "/root/repo/build/examples/run_experiment" "--hours=0.03" "--load=0.8" "--systems=Prio,3Sigma" "--no-timeline" "--metrics-csv=run_experiment_smoke.csv")
set_tests_properties(example_run_experiment_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_experiment_help "/root/repo/build/examples/run_experiment" "--help")
set_tests_properties(example_run_experiment_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_experiment_bad_flag "/root/repo/build/examples/run_experiment" "--bogus=1")
set_tests_properties(example_run_experiment_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
