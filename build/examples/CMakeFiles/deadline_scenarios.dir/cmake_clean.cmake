file(REMOVE_RECURSE
  "CMakeFiles/deadline_scenarios.dir/deadline_scenarios.cpp.o"
  "CMakeFiles/deadline_scenarios.dir/deadline_scenarios.cpp.o.d"
  "deadline_scenarios"
  "deadline_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
