# Empty dependencies file for deadline_scenarios.
# This may be replaced when dependencies are built.
