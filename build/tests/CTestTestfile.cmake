# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/tdigest_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_io_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
