# Empty dependencies file for tdigest_test.
# This may be replaced when dependencies are built.
