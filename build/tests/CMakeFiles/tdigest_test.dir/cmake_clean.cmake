file(REMOVE_RECURSE
  "CMakeFiles/tdigest_test.dir/tdigest_test.cc.o"
  "CMakeFiles/tdigest_test.dir/tdigest_test.cc.o.d"
  "tdigest_test"
  "tdigest_test.pdb"
  "tdigest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdigest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
