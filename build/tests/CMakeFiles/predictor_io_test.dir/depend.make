# Empty dependencies file for predictor_io_test.
# This may be replaced when dependencies are built.
