file(REMOVE_RECURSE
  "CMakeFiles/predictor_io_test.dir/predictor_io_test.cc.o"
  "CMakeFiles/predictor_io_test.dir/predictor_io_test.cc.o.d"
  "predictor_io_test"
  "predictor_io_test.pdb"
  "predictor_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
