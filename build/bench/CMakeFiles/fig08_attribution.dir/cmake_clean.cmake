file(REMOVE_RECURSE
  "CMakeFiles/fig08_attribution.dir/fig08_attribution.cc.o"
  "CMakeFiles/fig08_attribution.dir/fig08_attribution.cc.o.d"
  "fig08_attribution"
  "fig08_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
