# Empty compiler generated dependencies file for abl07_sketches.
# This may be replaced when dependencies are built.
