file(REMOVE_RECURSE
  "CMakeFiles/abl07_sketches.dir/abl07_sketches.cc.o"
  "CMakeFiles/abl07_sketches.dir/abl07_sketches.cc.o.d"
  "abl07_sketches"
  "abl07_sketches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl07_sketches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
