# Empty dependencies file for abl05_padding.
# This may be replaced when dependencies are built.
