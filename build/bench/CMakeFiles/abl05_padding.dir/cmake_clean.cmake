file(REMOVE_RECURSE
  "CMakeFiles/abl05_padding.dir/abl05_padding.cc.o"
  "CMakeFiles/abl05_padding.dir/abl05_padding.cc.o.d"
  "abl05_padding"
  "abl05_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
