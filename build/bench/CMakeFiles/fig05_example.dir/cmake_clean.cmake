file(REMOVE_RECURSE
  "CMakeFiles/fig05_example.dir/fig05_example.cc.o"
  "CMakeFiles/fig05_example.dir/fig05_example.cc.o.d"
  "fig05_example"
  "fig05_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
