# Empty dependencies file for fig05_example.
# This may be replaced when dependencies are built.
