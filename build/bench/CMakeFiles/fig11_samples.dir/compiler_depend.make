# Empty compiler generated dependencies file for fig11_samples.
# This may be replaced when dependencies are built.
