file(REMOVE_RECURSE
  "CMakeFiles/fig11_samples.dir/fig11_samples.cc.o"
  "CMakeFiles/fig11_samples.dir/fig11_samples.cc.o.d"
  "fig11_samples"
  "fig11_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
