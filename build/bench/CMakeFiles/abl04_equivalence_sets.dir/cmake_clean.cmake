file(REMOVE_RECURSE
  "CMakeFiles/abl04_equivalence_sets.dir/abl04_equivalence_sets.cc.o"
  "CMakeFiles/abl04_equivalence_sets.dir/abl04_equivalence_sets.cc.o.d"
  "abl04_equivalence_sets"
  "abl04_equivalence_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_equivalence_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
