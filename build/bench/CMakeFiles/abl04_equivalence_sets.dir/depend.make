# Empty dependencies file for abl04_equivalence_sets.
# This may be replaced when dependencies are built.
