# Empty dependencies file for fig09_perturbation.
# This may be replaced when dependencies are built.
