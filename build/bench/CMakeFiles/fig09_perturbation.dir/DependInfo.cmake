
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_perturbation.cc" "bench/CMakeFiles/fig09_perturbation.dir/fig09_perturbation.cc.o" "gcc" "bench/CMakeFiles/fig09_perturbation.dir/fig09_perturbation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ts_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ts_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ts_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ts_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ts_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/ts_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/ts_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
