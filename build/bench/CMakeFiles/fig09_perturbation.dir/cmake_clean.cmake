file(REMOVE_RECURSE
  "CMakeFiles/fig09_perturbation.dir/fig09_perturbation.cc.o"
  "CMakeFiles/fig09_perturbation.dir/fig09_perturbation.cc.o.d"
  "fig09_perturbation"
  "fig09_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
