# Empty compiler generated dependencies file for abl03_preemption.
# This may be replaced when dependencies are built.
