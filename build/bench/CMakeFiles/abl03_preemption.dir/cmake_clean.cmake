file(REMOVE_RECURSE
  "CMakeFiles/abl03_preemption.dir/abl03_preemption.cc.o"
  "CMakeFiles/abl03_preemption.dir/abl03_preemption.cc.o.d"
  "abl03_preemption"
  "abl03_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
