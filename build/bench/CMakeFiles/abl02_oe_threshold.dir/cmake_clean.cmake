file(REMOVE_RECURSE
  "CMakeFiles/abl02_oe_threshold.dir/abl02_oe_threshold.cc.o"
  "CMakeFiles/abl02_oe_threshold.dir/abl02_oe_threshold.cc.o.d"
  "abl02_oe_threshold"
  "abl02_oe_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_oe_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
