# Empty dependencies file for abl02_oe_threshold.
# This may be replaced when dependencies are built.
