file(REMOVE_RECURSE
  "CMakeFiles/abl06_backend.dir/abl06_backend.cc.o"
  "CMakeFiles/abl06_backend.dir/abl06_backend.cc.o.d"
  "abl06_backend"
  "abl06_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl06_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
