# Empty dependencies file for abl06_backend.
# This may be replaced when dependencies are built.
