file(REMOVE_RECURSE
  "CMakeFiles/fig10_load.dir/fig10_load.cc.o"
  "CMakeFiles/fig10_load.dir/fig10_load.cc.o.d"
  "fig10_load"
  "fig10_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
