# Empty compiler generated dependencies file for fig07_workloads.
# This may be replaced when dependencies are built.
