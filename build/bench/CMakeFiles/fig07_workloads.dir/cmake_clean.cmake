file(REMOVE_RECURSE
  "CMakeFiles/fig07_workloads.dir/fig07_workloads.cc.o"
  "CMakeFiles/fig07_workloads.dir/fig07_workloads.cc.o.d"
  "fig07_workloads"
  "fig07_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
