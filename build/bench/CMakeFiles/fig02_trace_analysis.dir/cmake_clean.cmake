file(REMOVE_RECURSE
  "CMakeFiles/fig02_trace_analysis.dir/fig02_trace_analysis.cc.o"
  "CMakeFiles/fig02_trace_analysis.dir/fig02_trace_analysis.cc.o.d"
  "fig02_trace_analysis"
  "fig02_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
