# Empty dependencies file for micro_predict.
# This may be replaced when dependencies are built.
