file(REMOVE_RECURSE
  "CMakeFiles/micro_predict.dir/micro_predict.cc.o"
  "CMakeFiles/micro_predict.dir/micro_predict.cc.o.d"
  "micro_predict"
  "micro_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
