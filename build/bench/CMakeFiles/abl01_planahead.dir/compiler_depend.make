# Empty compiler generated dependencies file for abl01_planahead.
# This may be replaced when dependencies are built.
