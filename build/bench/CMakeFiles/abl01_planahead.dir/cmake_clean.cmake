file(REMOVE_RECURSE
  "CMakeFiles/abl01_planahead.dir/abl01_planahead.cc.o"
  "CMakeFiles/abl01_planahead.dir/abl01_planahead.cc.o.d"
  "abl01_planahead"
  "abl01_planahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_planahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
