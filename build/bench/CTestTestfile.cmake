# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig05_smoke "/root/repo/build/bench/fig05_example")
set_tests_properties(bench_fig05_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl07_smoke "/root/repo/build/bench/abl07_sketches")
set_tests_properties(bench_abl07_smoke PROPERTIES  ENVIRONMENT "THREESIGMA_BENCH_SCALE=quick" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
