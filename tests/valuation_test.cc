// Differential tests for the Eq. 1 valuation engine (src/sched/valuation.h).
//
// The engine's whole contract is *bitwise* agreement with the generic
// per-atom path: ExpectedUtility must replay EmpiricalDistribution::
// ExpectedValue over the scaled distribution, and the survival tables must
// replay Scaled(scale).Survival — for every utility shape, scale, and start
// time, including the degenerate inputs (NaN starts, single-atom
// distributions, empty distributions, elapsed past the last atom). Equality
// is checked on the bit pattern, not operator==, so a NaN divergence cannot
// slip through.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/histogram/empirical_distribution.h"
#include "src/sched/valuation.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

uint64_t Bits(double x) {
  uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// The generic Eq. 1 evaluation the kernels must replicate: materialize the
// scaled distribution exactly as the scheduler's generic path does, then
// accumulate utility·probability per atom in order.
double GenericExpectedUtility(const EmpiricalDistribution& dist, double scale,
                              const UtilityFunction& u, double start) {
  const EmpiricalDistribution scaled = scale == 1.0 ? dist : dist.Scaled(scale);
  return scaled.ExpectedValue(
      [&](double t) { return u.ValueAtCompletion(start + t); });
}

double GenericSurvival(const EmpiricalDistribution& dist, double scale, double t) {
  const EmpiricalDistribution scaled = scale == 1.0 ? dist : dist.Scaled(scale);
  return scaled.Survival(t);
}

EmpiricalDistribution RandomDistribution(Rng& rng, int atoms) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(atoms));
  for (int i = 0; i < atoms; ++i) {
    // Heavy-tailed runtimes with occasional exact duplicates, so the
    // sort/merge path in FromAtoms is exercised.
    double v = rng.BoundedPareto(1.0, 50000.0, 1.2);
    if (!samples.empty() && rng.Uniform(0.0, 1.0) < 0.1) {
      v = samples[static_cast<size_t>(rng.Uniform(0.0, 0.999) *
                                      static_cast<double>(samples.size()))];
    }
    samples.push_back(v);
  }
  return EmpiricalDistribution::FromSamples(samples);
}

TEST(ValuationTest, KernelsMatchGenericLoopBitwise) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const int atoms = 1 + static_cast<int>(rng.Uniform(0.0, 120.0));  // Incl. single-atom.
    const EmpiricalDistribution dist = RandomDistribution(rng, atoms);
    const double deadline = rng.Uniform(0.0, 1.5 * dist.MaxValue());
    const double window = rng.Uniform(1.0, 2.0 * deadline + 10.0);
    const std::vector<UtilityFunction> utilities = {
        UtilityFunction::SloStep(rng.Uniform(0.5, 100.0), deadline),
        UtilityFunction::SloStepWithDecay(rng.Uniform(0.5, 100.0), deadline, window),
        UtilityFunction::BestEffortLinear(rng.Uniform(0.5, 100.0), rng.Uniform(0.0, deadline),
                                          window),
    };
    const std::vector<double> scales = {1.0, 0.5, rng.Uniform(0.25, 4.0)};
    for (const UtilityFunction& u : utilities) {
      for (const double scale : scales) {
        ValuationEngine engine(ValuationEngine::Config{/*cache=*/true, /*crosscheck=*/false});
        const ValuationTables& tables =
            engine.Tables(/*job=*/1, scale, dist, u, /*counters=*/nullptr);
        // Starts spanning before / across / far past the deadline, plus NaN.
        for (const double start :
             {0.0, deadline * 0.5, deadline, deadline + 1.0, deadline + window,
              deadline + 10.0 * window, dist.MaxValue() * scale * 2.0, kNaN}) {
          const double kernel = engine.ExpectedUtility(tables, u, start, nullptr);
          const double generic = GenericExpectedUtility(dist, scale, u, start);
          EXPECT_EQ(Bits(kernel), Bits(generic))
              << "seed " << seed << " kind " << static_cast<int>(u.kind()) << " scale "
              << scale << " start " << start << ": kernel " << kernel << " generic "
              << generic;
        }
        for (const double t :
             {0.0, dist.MinValue() * scale, dist.MaxValue() * scale * 0.5,
              dist.MaxValue() * scale, dist.MaxValue() * scale + 1.0, kNaN}) {
          EXPECT_EQ(Bits(engine.Survival(tables, t)), Bits(GenericSurvival(dist, scale, t)))
              << "seed " << seed << " scale " << scale << " t " << t;
        }
      }
    }
  }
}

TEST(ValuationTest, EmptyDistributionYieldsTrivialTables) {
  // The generic valuation loops never execute on an empty distribution
  // (EU 0.0, survival 1.0); the engine's tables must agree rather than abort
  // in Scaled()/FromAtoms.
  const EmpiricalDistribution empty;
  const UtilityFunction u = UtilityFunction::SloStep(5.0, 100.0);
  ValuationEngine engine(ValuationEngine::Config{true, true});  // Crosscheck on.
  for (const double scale : {1.0, 0.5, 2.0}) {
    const ValuationTables& tables = engine.Tables(7, scale, empty, u, nullptr);
    EXPECT_EQ(tables.size(), 0u);
    EXPECT_EQ(engine.ExpectedUtility(tables, u, 0.0, nullptr), 0.0);
    EXPECT_EQ(engine.Survival(tables, 50.0), 1.0);
  }
}

TEST(ValuationTest, CrosscheckModePassesOnRandomInputs) {
  // Crosscheck re-derives every answer with the generic loop and aborts on
  // any bitwise divergence; surviving a randomized sweep is the point.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    const EmpiricalDistribution dist = RandomDistribution(rng, 60);
    const double deadline = rng.Uniform(10.0, dist.MaxValue());
    const UtilityFunction u = UtilityFunction::SloStepWithDecay(10.0, deadline, deadline);
    ValuationEngine engine(ValuationEngine::Config{true, /*crosscheck=*/true});
    const ValuationTables& tables = engine.Tables(1, 1.25, dist, u, nullptr);
    for (double start = 0.0; start < 2.0 * deadline; start += deadline / 16.0) {
      (void)engine.ExpectedUtility(tables, u, start, nullptr);
      (void)engine.Survival(tables, start);
    }
  }
}

TEST(ValuationTest, CacheCountsHitsAndInvalidates) {
  Rng rng(3);
  const EmpiricalDistribution dist = RandomDistribution(rng, 40);
  const UtilityFunction u = UtilityFunction::SloStep(5.0, 500.0);
  ValuationEngine engine(ValuationEngine::Config{true, false});
  ValuationCounters c;
  engine.Tables(1, 1.0, dist, u, &c);
  engine.Tables(1, 2.0, dist, u, &c);
  engine.Tables(2, 1.0, dist, u, &c);
  EXPECT_EQ(c.cache_misses, 3);
  EXPECT_EQ(c.cache_hits, 0);
  engine.Tables(1, 1.0, dist, u, &c);
  engine.Tables(1, 2.0, dist, u, &c);
  EXPECT_EQ(c.cache_hits, 2);
  EXPECT_EQ(engine.cached_entries(), 3u);

  // Per-job invalidation drops exactly job 1's two scales; a re-query is a
  // miss again while job 2 still hits.
  engine.InvalidateJob(1);
  EXPECT_EQ(engine.cached_entries(), 1u);
  engine.Tables(2, 1.0, dist, u, &c);
  EXPECT_EQ(c.cache_hits, 3);
  engine.Tables(1, 1.0, dist, u, &c);
  EXPECT_EQ(c.cache_misses, 4);
}

TEST(ValuationTest, SaveStateRoundTripsKeySet) {
  Rng rng(4);
  const EmpiricalDistribution dist = RandomDistribution(rng, 20);
  const UtilityFunction u = UtilityFunction::SloStep(5.0, 500.0);
  ValuationEngine engine(ValuationEngine::Config{true, false});
  engine.Tables(3, 1.0, dist, u, nullptr);
  engine.Tables(3, 0.75, dist, u, nullptr);
  engine.Tables(9, 1.0, dist, u, nullptr);

  SnapshotWriter writer;
  writer.BeginSection("test", 1);
  engine.SaveState(writer);
  writer.EndSection();
  const std::string blob = writer.Finish();

  SnapshotReader reader(blob);
  ASSERT_TRUE(reader.BeginSection("test"));
  const auto keys = ValuationEngine::ReadSavedKeys(reader);
  reader.EndSection();
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(keys.size(), 3u);
  // std::map order: (3, bits(0.75)) < (3, bits(1.0)) < (9, bits(1.0)).
  EXPECT_EQ(keys[0].first, 3);
  EXPECT_EQ(keys[0].second, 0.75);
  EXPECT_EQ(keys[1].first, 3);
  EXPECT_EQ(keys[1].second, 1.0);
  EXPECT_EQ(keys[2].first, 9);
  EXPECT_EQ(keys[2].second, 1.0);
}

}  // namespace
}  // namespace threesigma
