// Unit and property tests for the streaming histogram and the empirical
// distribution (the Eq. 1 / Eq. 2 substrate).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/histogram/empirical_distribution.h"
#include "src/histogram/stream_histogram.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

TEST(StreamHistogramTest, ExactBelowBudget) {
  StreamHistogram h(10);
  for (double v : {1.0, 2.0, 3.0}) {
    h.Update(v);
  }
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_DOUBLE_EQ(h.total_count(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(StreamHistogramTest, DuplicatesMergeIntoOneBin) {
  StreamHistogram h(10);
  for (int i = 0; i < 5; ++i) {
    h.Update(7.0);
  }
  EXPECT_EQ(h.bin_count(), 1u);
  EXPECT_DOUBLE_EQ(h.bins()[0].count, 5.0);
  EXPECT_DOUBLE_EQ(h.bins()[0].centroid, 7.0);
}

TEST(StreamHistogramTest, BinBudgetHolds) {
  StreamHistogram h(8);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Update(rng.Uniform(0.0, 100.0));
    EXPECT_LE(h.bin_count(), 8u);
  }
  EXPECT_DOUBLE_EQ(h.total_count(), 10000.0);
}

TEST(StreamHistogramTest, MassConservedUnderMerging) {
  StreamHistogram h(4);
  for (int i = 0; i < 1000; ++i) {
    h.Update(static_cast<double>(i % 37));
  }
  double total = 0.0;
  for (const auto& b : h.bins()) {
    total += b.count;
  }
  EXPECT_NEAR(total, 1000.0, 1e-9);
}

TEST(StreamHistogramTest, CentroidsStaySorted) {
  StreamHistogram h(6);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    h.Update(rng.LogNormal(2.0, 1.5));
    for (size_t b = 1; b < h.bin_count(); ++b) {
      ASSERT_LT(h.bins()[b - 1].centroid, h.bins()[b].centroid);
    }
  }
}

TEST(StreamHistogramTest, EstimateCountMonotone) {
  StreamHistogram h(16);
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    h.Update(rng.Uniform(0.0, 50.0));
  }
  double prev = -1.0;
  for (double v = -5.0; v <= 60.0; v += 0.5) {
    const double c = h.EstimateCountAtMost(v);
    EXPECT_GE(c, prev - 1e-9);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, h.total_count() + 1e-9);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.EstimateCountAtMost(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateCountAtMost(60.0), h.total_count());
}

TEST(StreamHistogramTest, QuantileApproximatesUniform) {
  StreamHistogram h(64);
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    h.Update(rng.Uniform(0.0, 100.0));
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 3.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 3.0);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 3.0);
}

TEST(StreamHistogramTest, MergeMatchesCombinedStream) {
  StreamHistogram a(32);
  StreamHistogram b(32);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    a.Update(rng.Uniform(0.0, 10.0));
    b.Update(rng.Uniform(20.0, 30.0));
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_count(), 4000.0);
  EXPECT_LE(a.bin_count(), 32u);
  // Median of the combined stream sits in the gap between the two halves.
  const double med = a.Quantile(0.5);
  EXPECT_GT(med, 8.0);
  EXPECT_LT(med, 22.0);
}

TEST(StreamHistogramTest, MergeEmptyIsNoop) {
  StreamHistogram a(8);
  a.Update(1.0);
  StreamHistogram b(8);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_count(), 1.0);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.total_count(), 1.0);
}

TEST(StreamHistogramTest, RestoreRoundTrip) {
  StreamHistogram original(24);
  Rng rng(41);
  for (int i = 0; i < 5000; ++i) {
    original.Update(rng.LogNormal(3.0, 1.2));
  }
  const StreamHistogram restored = StreamHistogram::Restore(
      original.max_bins(), original.min(), original.max(),
      std::vector<StreamHistogram::Bin>(original.bins().begin(), original.bins().end()));
  EXPECT_DOUBLE_EQ(restored.total_count(), original.total_count());
  EXPECT_EQ(restored.bin_count(), original.bin_count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(restored.Quantile(q), original.Quantile(q));
  }
  // And it keeps streaming identically.
  StreamHistogram a = original;
  StreamHistogram b = restored;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.LogNormal(3.0, 1.2);
    a.Update(v);
    b.Update(v);
  }
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), b.Quantile(0.5));
}

// ---------------------------------------------------------------------------
// EmpiricalDistribution
// ---------------------------------------------------------------------------

TEST(EmpiricalDistributionTest, PointMass) {
  const auto d = EmpiricalDistribution::Point(42.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(d.CdfAtMost(41.9), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAtMost(42.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Survival(41.9), 1.0);
  EXPECT_DOUBLE_EQ(d.Survival(42.0), 0.0);
  EXPECT_DOUBLE_EQ(d.MaxValue(), 42.0);
}

TEST(EmpiricalDistributionTest, FromSamplesNormalizes) {
  const auto d = EmpiricalDistribution::FromSamples({1.0, 2.0, 2.0, 3.0});
  EXPECT_EQ(d.size(), 3u);  // Duplicate 2.0 merged.
  double mass = 0.0;
  for (const auto& a : d.atoms()) {
    mass += a.probability;
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.CdfAtMost(2.0), 0.75);
}

TEST(EmpiricalDistributionTest, StdDevMatchesDefinition) {
  const auto d = EmpiricalDistribution::FromSamples({90.0, 110.0});
  EXPECT_NEAR(d.StdDev(), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(EmpiricalDistribution::Point(5.0).StdDev(), 0.0);
  // Normal discretization recovers its sigma approximately.
  const auto n = EmpiricalDistribution::FromNormal(100.0, 20.0, 401);
  EXPECT_NEAR(n.StdDev(), 20.0, 1.0);
}

TEST(EmpiricalDistributionTest, QuantileInverseOfCdf) {
  const auto d = EmpiricalDistribution::FromSamples({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 10.0);
}

TEST(EmpiricalDistributionTest, ConditionalMatchesEq2) {
  // Eq. 2: 1 - CDF_upd(t) = (1 - CDF(t)) / (1 - CDF(elapsed)).
  const auto d = EmpiricalDistribution::FromSamples({1.0, 2.0, 3.0, 4.0, 5.0});
  const double elapsed = 2.5;
  const auto cond = d.ConditionalGivenExceeds(elapsed);
  ASSERT_FALSE(cond.empty());
  for (double t : {2.6, 3.0, 3.5, 4.0, 4.9, 5.0}) {
    const double expected = d.Survival(t) / d.Survival(elapsed);
    EXPECT_NEAR(cond.Survival(t), expected, 1e-12) << "t=" << t;
  }
  // All mass now sits above `elapsed`.
  EXPECT_DOUBLE_EQ(cond.CdfAtMost(elapsed), 0.0);
  EXPECT_DOUBLE_EQ(cond.MinValue(), 3.0);
}

TEST(EmpiricalDistributionTest, ConditionalBeyondSupportIsEmpty) {
  const auto d = EmpiricalDistribution::FromSamples({1.0, 2.0});
  // Job ran longer than every historical runtime: the §4.2.1 under-estimate
  // signal surfaces as an empty conditional distribution.
  EXPECT_TRUE(d.ConditionalGivenExceeds(2.0).empty());
  EXPECT_TRUE(d.ConditionalGivenExceeds(99.0).empty());
}

TEST(EmpiricalDistributionTest, ConditionalTailViewMatchesConditional) {
  const auto d = EmpiricalDistribution::FromSamples({1.0, 2.0, 3.0, 4.0});
  const auto view = d.ConditionalTail(2.5);
  ASSERT_FALSE(view.empty());
  EXPECT_EQ(view.count, 2u);
  EXPECT_DOUBLE_EQ(view.first[0].value, 3.0);
  EXPECT_NEAR(view.mass, 0.5, 1e-12);
  // The view sees the same survivors the materialized conditional holds.
  const auto cond = d.ConditionalGivenExceeds(2.5);
  ASSERT_EQ(cond.size(), view.count);
  EXPECT_DOUBLE_EQ(cond.MinValue(), view.first[0].value);

  // Elapsed past the last atom: empty view, no materialization.
  EXPECT_TRUE(d.ConditionalTail(4.0).empty());
  EXPECT_TRUE(d.ConditionalTail(1e9).empty());
  // NaN elapsed: every `value > elapsed` comparison is false, so nothing
  // survives — same answer as the materialized path.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(d.ConditionalTail(nan).empty());
  EXPECT_TRUE(d.ConditionalGivenExceeds(nan).empty());
}

TEST(EmpiricalDistributionTest, ConditionalZeroMassTailIsEmptyNotFatal) {
  // A verbatim-restored snapshot can carry zero-probability atoms (the codec
  // round-trips atoms_ without re-normalizing). A tail consisting only of
  // such atoms has survivors but no mass; conditioning on it must yield an
  // empty distribution, not a renormalization abort.
  SnapshotWriter writer;
  writer.BeginSection("dist", 1);
  writer.WriteVarU64(2);  // Two atoms, the larger carrying zero mass.
  writer.WriteDouble(1.0);
  writer.WriteDouble(1.0);
  writer.WriteDouble(5.0);
  writer.WriteDouble(0.0);
  writer.EndSection();
  SnapshotReader reader(writer.Finish());
  ASSERT_TRUE(reader.BeginSection("dist"));
  EmpiricalDistribution d;
  d.RestoreState(reader);
  reader.EndSection();
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(d.size(), 2u);

  const auto view = d.ConditionalTail(1.0);
  EXPECT_EQ(view.count, 1u);  // One surviving atom...
  EXPECT_TRUE(view.empty());  // ...but zero mass, so the view reads empty.
  EXPECT_TRUE(d.ConditionalGivenExceeds(1.0).empty());
}

TEST(EmpiricalDistributionTest, ExpectedValueOfIdentityIsMean) {
  const auto d = EmpiricalDistribution::FromSamples({2.0, 4.0, 9.0});
  EXPECT_NEAR(d.ExpectedValue([](double t) { return t; }), d.Mean(), 1e-12);
}

TEST(EmpiricalDistributionTest, ExpectedUtilityUniformExample) {
  // The paper's §2.3 example, case A: runtime ~ U(0, 10), deadline 15 min,
  // job starts after a 10-minute BE job => P(miss) = P(T > 5) = 0.5... but
  // with runtime distribution the *probability of completion by deadline*
  // when started at time s is CDF(15 - s). At s = 10 that is CDF(5) = 0.5.
  const auto d = EmpiricalDistribution::FromUniform(0.0, 10.0, 2000);
  const double deadline = 15.0;
  const double start = 10.0;
  const double p_meet =
      d.ExpectedValue([&](double t) { return start + t <= deadline ? 1.0 : 0.0; });
  EXPECT_NEAR(p_meet, 0.5, 0.01);
  // Case B: U(2.5, 7.5) — starting at 7.5 still always meets the deadline.
  const auto b = EmpiricalDistribution::FromUniform(2.5, 7.5, 2000);
  const double p_meet_b =
      b.ExpectedValue([&](double t) { return 7.5 + t <= deadline ? 1.0 : 0.0; });
  EXPECT_NEAR(p_meet_b, 1.0, 1e-9);
}

TEST(EmpiricalDistributionTest, FromHistogramPreservesMass) {
  StreamHistogram h(20);
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    h.Update(rng.LogNormal(3.0, 1.0));
  }
  const auto d = EmpiricalDistribution::FromHistogram(h);
  EXPECT_EQ(d.size(), h.bin_count());
  double mass = 0.0;
  for (const auto& a : d.atoms()) {
    mass += a.probability;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
  // Mean of the sketch tracks the true lognormal mean e^{3.5} within 10%.
  EXPECT_NEAR(d.Mean(), std::exp(3.5), 0.1 * std::exp(3.5));
}

TEST(EmpiricalDistributionTest, FromNormalMatchesMoments) {
  const auto d = EmpiricalDistribution::FromNormal(100.0, 20.0, 201);
  EXPECT_NEAR(d.Mean(), 100.0, 1.0);
  // ~68% of mass within 1 sigma.
  const double within = d.CdfAtMost(120.0) - d.CdfAtMost(80.0);
  EXPECT_NEAR(within, 0.68, 0.03);
}

TEST(EmpiricalDistributionTest, FromNormalTruncatesAtZero) {
  const auto d = EmpiricalDistribution::FromNormal(1.0, 10.0, 101);
  EXPECT_GE(d.MinValue(), 0.0);
}

TEST(EmpiricalDistributionTest, ZeroStddevNormalIsPoint) {
  const auto d = EmpiricalDistribution::FromNormal(5.0, 0.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
}

TEST(EmpiricalDistributionTest, ScaledMultipliesSupport) {
  const auto d = EmpiricalDistribution::FromSamples({2.0, 4.0});
  const auto s = d.Scaled(1.5);  // The non-preferred-resources 1.5x factor.
  EXPECT_DOUBLE_EQ(s.Mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.MinValue(), 3.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 6.0);
}

TEST(EmpiricalDistributionTest, ShiftedClampsAtZero) {
  const auto d = EmpiricalDistribution::FromSamples({1.0, 5.0});
  const auto s = d.Shifted(-3.0);
  EXPECT_DOUBLE_EQ(s.MinValue(), 0.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 2.0);
}

TEST(EmpiricalDistributionTest, SurvivalMonotoneNonIncreasing) {
  Rng rng(33);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(rng.LogNormal(2.0, 1.0));
  }
  const auto d = EmpiricalDistribution::FromSamples(samples);
  double prev = 1.0;
  for (double t = 0.0; t < d.MaxValue() * 1.1; t += d.MaxValue() / 100.0) {
    const double s = d.Survival(t);
    EXPECT_LE(s, prev + 1e-12);
    EXPECT_GE(s, -1e-12);
    prev = s;
  }
}

// Property sweep: Quantile is a right-inverse of CdfAtMost for atom
// distributions: CdfAtMost(Quantile(q)) >= q, and Quantile(CdfAtMost(v))
// <= next atom above v.
class QuantileCdfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileCdfPropertyTest, MutualConsistency) {
  Rng rng(static_cast<uint64_t>(300 + GetParam()));
  std::vector<double> samples;
  const int n = static_cast<int>(rng.UniformInt(1, 50));
  for (int i = 0; i < n; ++i) {
    samples.push_back(rng.LogNormal(3.0, 1.0));
  }
  const auto d = EmpiricalDistribution::FromSamples(samples);
  for (int i = 0; i < 25; ++i) {
    const double q = rng.Uniform(0.0, 1.0);
    EXPECT_GE(d.CdfAtMost(d.Quantile(q)), q - 1e-9);
  }
  for (const auto& atom : d.atoms()) {
    EXPECT_LE(d.Quantile(d.CdfAtMost(atom.value)), atom.value + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomAtomSets, QuantileCdfPropertyTest, ::testing::Range(0, 12));

// Property sweep: conditional renormalization (Eq. 2) holds for many random
// distributions and elapsed times.
class ConditionalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConditionalPropertyTest, Eq2HoldsEverywhere) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> samples;
  const int n = static_cast<int>(rng.UniformInt(3, 60));
  for (int i = 0; i < n; ++i) {
    samples.push_back(rng.LogNormal(2.0, 1.2));
  }
  const auto d = EmpiricalDistribution::FromSamples(samples);
  const double elapsed = d.Quantile(rng.Uniform(0.0, 0.9));
  const auto cond = d.ConditionalGivenExceeds(elapsed);
  if (d.Survival(elapsed) <= 0.0) {
    EXPECT_TRUE(cond.empty());
    return;
  }
  ASSERT_FALSE(cond.empty());
  for (int i = 0; i < 20; ++i) {
    const double t = rng.Uniform(elapsed, d.MaxValue() * 1.2);
    EXPECT_NEAR(cond.Survival(t), d.Survival(t) / d.Survival(elapsed), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDistributions, ConditionalPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace threesigma
