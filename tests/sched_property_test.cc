// Property tests for the scheduling layer around the parallel solver and the
// expected-capacity cache:
//   - same-seed simulations at solver_threads 1 vs 4 produce byte-identical
//     decision traces (the solver's thread-count determinism survives the
//     full scheduler/simulator stack),
//   - expected free capacity is monotone non-increasing in added running
//     load (Eq. 3),
//   - Eq. 2 conditioning yields a valid survival function: 1 − CDF(t)
//     non-increasing in t, within [0, 1], and equal to S(e + t)/S(e),
//   - the incremental cache's delta-updated rows match a from-scratch
//     recompute across a whole simulation (crosscheck mode),
//   - shard decomposition (--solver-shards) never moves a decision: sharded
//     unbudgeted runs match monolithic ones byte-for-byte, stay identical
//     across solver thread counts and fault injection, and survive a
//     checkpoint→kill→resume with the per-shard basis map restored.

#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/experiment.h"
#include "src/histogram/empirical_distribution.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"

namespace threesigma {
namespace {

// ---------------------------------------------------------------------------
// Thread-count determinism through the full stack.

ExperimentConfig PropertyConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(4, 16);
  config.workload.duration = Minutes(20.0);
  config.workload.load = 1.3;
  config.workload.model_sample_jobs = 800;
  config.workload.pretrain_jobs = 1000;
  config.workload.seed = 11;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 11;
  config.sched.cycle_period = config.sim.cycle_period;
  // The wall-clock budget is the one non-deterministic input to the solver;
  // the node budget alone keeps the search bounded and reproducible.
  config.sched.solver_time_limit_seconds = 0.0;
  return config;
}

// Serializes everything decision-relevant in a SimResult — job outcomes and
// per-cycle solver/queue/cache counters in simulated time — while excluding
// wall-clock measurements (cycle_seconds, solver_seconds), which legitimately
// vary run to run. `include_valuation_counters` is dropped when comparing
// valuation-engine on vs off: those runs must agree on every decision but
// legitimately differ in hit/miss/kernel tallies (the generic path has none).
// `include_solver_counters` is dropped when comparing shards off vs on: the
// decomposed search visits a different (smaller) node set, so node/queue/
// incumbent tallies and the shard counters legitimately differ while every
// decision stays identical.
std::string DecisionTrace(const SimResult& result, bool include_valuation_counters = true,
                          bool include_solver_counters = true) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const JobRecord& job : result.jobs) {
    os << "job " << job.spec.id << " s" << static_cast<int>(job.status) << " g" << job.group
       << " " << job.start_time << " " << job.finish_time << " p" << job.preemptions << " w"
       << job.completed_work << " runs";
    for (const JobRun& run : job.runs) {
      os << " [" << run.group << " " << run.start << " " << run.end << " " << run.completed
         << "]";
    }
    os << "\n";
  }
  for (const CycleStats& c : result.cycles) {
    os << "cycle " << c.time << " v" << c.milp_variables << " r" << c.milp_rows;
    if (include_solver_counters) {
      os << " n" << c.milp_nodes << " q" << c.milp_max_queue_depth << " i"
         << c.milp_incumbent_improvements << " sd" << c.milp_shards << " sv"
         << c.milp_max_shard_vars;
    }
    os << " h" << c.capacity_cache_hits << " m" << c.capacity_cache_misses << " p" << c.pending
       << " j" << c.running_jobs;
    if (include_valuation_counters) {
      os << " vh" << c.valuation_cache_hits << " vm" << c.valuation_cache_misses << " vk"
         << c.valuation_kernel_calls;
    }
    os << "\n";
  }
  os << "rejected " << result.rejected_placements << " preempts " << result.total_preemptions
     << " end " << result.end_time << "\n";
  return os.str();
}

TEST(SchedPropertyTest, ThreadCountNeverChangesTheSchedule) {
  ExperimentConfig config = PropertyConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

  config.sched.solver_threads = 1;
  const SimResult serial = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  config.sched.solver_threads = 4;
  const SimResult parallel = SimulateSystem(SystemKind::kThreeSigma, config, workload);

  EXPECT_GT(serial.jobs.size(), 0u);
  EXPECT_EQ(DecisionTrace(serial), DecisionTrace(parallel));
}

TEST(SchedPropertyTest, BasisWarmstartPreservesThreadCountDeterminism) {
  // Basis warm-starting (parent bases to B&B children, previous cycle's root
  // basis across cycles) follows the thread-count-independent wave schedule,
  // so warm-started runs must stay byte-identical at any thread count too.
  ExperimentConfig config = PropertyConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  ASSERT_TRUE(config.sched.solver_basis_warmstart);  // Default-on.

  config.sched.solver_threads = 1;
  const SimResult serial = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  config.sched.solver_threads = 4;
  const SimResult parallel = SimulateSystem(SystemKind::kThreeSigma, config, workload);

  EXPECT_GT(serial.jobs.size(), 0u);
  EXPECT_EQ(DecisionTrace(serial), DecisionTrace(parallel));

  // And warm-start-off is a sane fallback: same workload completes, and the
  // schedule is again thread-count invariant.
  config.sched.solver_basis_warmstart = false;
  config.sched.solver_threads = 1;
  const SimResult cold_serial = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  config.sched.solver_threads = 4;
  const SimResult cold_parallel = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  EXPECT_EQ(cold_serial.jobs.size(), serial.jobs.size());
  EXPECT_EQ(DecisionTrace(cold_serial), DecisionTrace(cold_parallel));
}

// ---------------------------------------------------------------------------
// Eq. 3 monotonicity: more running load, less expected free capacity.

class UniformPredictor : public RuntimePredictor {
 public:
  RuntimePrediction Predict(const JobFeatures&, double) override {
    RuntimePrediction pred;
    pred.distribution = EmpiricalDistribution::FromUniform(50.0, 450.0, 101);
    pred.point_estimate = pred.distribution.Mean();
    pred.from_history = true;
    return pred;
  }
  void RecordCompletion(const JobFeatures&, double) override {}
};

JobSpec BeJob(JobId id) {
  JobSpec spec;
  spec.id = id;
  spec.type = JobType::kBestEffort;
  spec.submit_time = 0.0;
  spec.true_runtime = 200.0;
  spec.num_tasks = 2;
  spec.utility = UtilityFunction::BestEffortLinear(1.0, 0.0, Hours(2.0));
  spec.features = {"f"};
  return spec;
}

// Expected consumption of group 0 after starting `k` identical jobs on it.
std::vector<double> ConsumedWithLoad(int k) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 32);
  UniformPredictor predictor;
  DistSchedulerConfig config;
  config.solver_time_limit_seconds = 0.0;
  DistributionScheduler sched(cluster, &predictor, config);

  ClusterStateView view;
  view.cluster = &cluster;
  view.free_nodes = {32 - 2 * k};
  for (int j = 0; j < k; ++j) {
    const JobSpec spec = BeJob(static_cast<JobId>(j + 1));
    sched.OnJobArrival(spec, 0.0);
    sched.OnJobStarted(spec.id, 0, 0.0);
    view.running.push_back(
        RunningJobView{spec.id, 0, 0.0, spec.num_tasks, JobType::kBestEffort});
  }
  sched.RunCycle(5.0, view);
  return sched.expected_consumed()[0];
}

TEST(SchedPropertyTest, ExpectedFreeCapacityMonotoneInLoad) {
  std::vector<double> prev;
  for (int k = 0; k <= 8; k += 2) {
    const std::vector<double> consumed = ConsumedWithLoad(k);
    ASSERT_FALSE(consumed.empty());
    if (!prev.empty()) {
      for (size_t i = 0; i < consumed.size(); ++i) {
        // More running jobs must never increase expected free capacity.
        EXPECT_GE(consumed[i], prev[i] - 1e-9) << "k=" << k << " slot " << i;
      }
    }
    for (double c : consumed) {
      EXPECT_GE(c, -1e-9);  // Survival() carries ~1e-13 float noise past the max.
      EXPECT_LE(c, 32.0 + 1e-9);
    }
    prev = consumed;
  }
}

// ---------------------------------------------------------------------------
// Eq. 2 conditioning produces a valid, correctly-normalized survival curve.

TEST(SchedPropertyTest, ConditionedSurvivalIsMonotoneAndNormalized) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i) {
      samples.push_back(rng.BoundedPareto(10.0, 5000.0, 1.1));
    }
    const EmpiricalDistribution dist = EmpiricalDistribution::FromSamples(samples);
    const double elapsed = rng.Uniform(0.0, 0.8 * dist.MaxValue());
    const double s_elapsed = dist.Survival(elapsed);
    if (s_elapsed <= 1e-12) {
      continue;
    }
    // The conditional stays in the total-runtime base: its atoms are the
    // original ones with value > elapsed, renormalized.
    const EmpiricalDistribution cond = dist.ConditionalGivenExceeds(elapsed);
    double last = 1.0 + 1e-12;
    for (double t = 0.0; t <= dist.MaxValue() * 1.2; t += dist.MaxValue() / 100.0) {
      const double s = cond.Survival(t);
      // 1 − CDF(t): within [0, 1] (up to float noise) and non-increasing in t.
      EXPECT_GE(s, -1e-9) << "seed " << seed << " t=" << t;
      EXPECT_LE(s, 1.0 + 1e-9) << "seed " << seed << " t=" << t;
      EXPECT_LE(s, last + 1e-9) << "seed " << seed << " t=" << t;
      if (t <= elapsed) {
        // Conditioning on T > elapsed: no mass at or below elapsed.
        EXPECT_NEAR(s, 1.0, 1e-9) << "seed " << seed << " t=" << t;
      } else {
        // Eq. 2: S(t | T > elapsed) = S(t) / S(elapsed).
        EXPECT_NEAR(s, dist.Survival(t) / s_elapsed, 1e-6)
            << "seed " << seed << " t=" << t;
      }
      last = s;
    }
  }
}

// ---------------------------------------------------------------------------
// The incremental cache invariant holds across a whole simulation, and the
// cache actually serves traffic.

TEST(SchedPropertyTest, CapacityCacheCrosscheckCleanOverFullRun) {
  ExperimentConfig config = PropertyConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  config.sched.capacity_cache = true;
  // Crosscheck mode TS_CHECKs every cycle that delta-updated rows match a
  // from-scratch Eq. 3 recompute; any drift aborts the process. 3Sigma's
  // dense per-feature histograms cross a slot boundary nearly every cycle,
  // so this run exercises the recompute/retire path heavily.
  config.sched.capacity_cache_crosscheck = true;
  const SimResult dist_run = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  const RunMetrics md = ComputeMetrics(dist_run, "3Sigma");
  EXPECT_GT(md.capacity_cache_hits + md.capacity_cache_misses, 0);

  // Point-mass distributions (one atom) have long validity horizons, so the
  // hit path must actually fire there.
  const SimResult point_run = SimulateSystem(SystemKind::kPointRealEst, config, workload);
  const RunMetrics mp = ComputeMetrics(point_run, "PointRealEst");
  EXPECT_GT(mp.capacity_cache_hits, 0) << "cache never hit; horizons are broken";
  EXPECT_GT(mp.capacity_cache_hit_rate, 0.0);

  // Cached vs uncached runs agree up to float-tie sensitivity: the delta
  // updates leave ~1e-15 residue on the capacity rows ((x+p)-p != x), which
  // can flip a degenerate tie in the budget-truncated search. Aggregate
  // outcomes must stay close; exactness is the crosscheck's job above.
  config.sched.capacity_cache_crosscheck = false;
  const SimResult cached = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  config.sched.capacity_cache = false;
  const SimResult uncached = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  const RunMetrics mc = ComputeMetrics(cached, "3Sigma");
  const RunMetrics mu = ComputeMetrics(uncached, "3Sigma");
  EXPECT_NEAR(mc.goodput_machine_hours, mu.goodput_machine_hours,
              0.1 * mu.goodput_machine_hours);
  EXPECT_NEAR(mc.slo_miss_rate_percent, mu.slo_miss_rate_percent, 15.0);
}

// ---------------------------------------------------------------------------
// Valuation engine: the closed-form kernels, the cross-cycle table cache,
// and the parallel fan-out never move a decision.

TEST(SchedPropertyTest, ValuationEngineOffMatchesEngineOn) {
  // The engine's contract is bit-exact replay of the generic Eq. 1 loop, so
  // an engine-off run must produce a byte-identical decision trace (valuation
  // counters excluded: the generic path records none) — at 1 and 4 solver
  // threads, with the cache on and off.
  ExperimentConfig config = PropertyConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

  config.sched.valuation_engine = false;
  const SimResult generic = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  EXPECT_GT(generic.jobs.size(), 0u);
  const std::string generic_trace = DecisionTrace(generic, /*include_valuation_counters=*/false);

  config.sched.valuation_engine = true;
  for (const int threads : {1, 4}) {
    config.sched.solver_threads = threads;
    config.sched.valuation_cache = true;
    const SimResult with_cache = SimulateSystem(SystemKind::kThreeSigma, config, workload);
    EXPECT_EQ(generic_trace, DecisionTrace(with_cache, /*include_valuation_counters=*/false))
        << "engine decisions drifted at solver_threads=" << threads << " (cache on)";
    const RunMetrics mc = ComputeMetrics(with_cache, "3Sigma");
    EXPECT_GT(mc.valuation_kernel_calls, 0);
    EXPECT_GT(mc.valuation_cache_hits, 0) << "table cache never hit";

    // Cache off clears the tables each cycle, so misses must grow; hits can
    // stay nonzero (groups sharing a runtime multiplier hit within a cycle).
    config.sched.valuation_cache = false;
    const SimResult no_cache = SimulateSystem(SystemKind::kThreeSigma, config, workload);
    EXPECT_EQ(generic_trace, DecisionTrace(no_cache, /*include_valuation_counters=*/false))
        << "engine decisions drifted at solver_threads=" << threads << " (cache off)";
    const RunMetrics mn = ComputeMetrics(no_cache, "3Sigma");
    EXPECT_GT(mn.valuation_cache_misses, mc.valuation_cache_misses)
        << "cache off should rebuild tables every cycle";
  }

  // The full per-cycle counter stream is itself thread-count invariant (the
  // prepare pass and kernel-call set do not depend on the fan-out width).
  config.sched.valuation_cache = true;
  config.sched.solver_threads = 1;
  const SimResult serial = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  config.sched.solver_threads = 4;
  const SimResult parallel = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  EXPECT_EQ(DecisionTrace(serial), DecisionTrace(parallel));
}

TEST(SchedPropertyTest, ValuationCrosscheckCleanOverFullRun) {
  // Crosscheck mode re-derives every kernel and survival answer with the
  // generic per-atom loop and TS_CHECKs bitwise equality; any divergence
  // aborts the process. Run the full stack through it, cache on and off
  // (off exercises fresh tables every cycle).
  ExperimentConfig config = PropertyConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  config.sched.valuation_crosscheck = true;
  const SimResult cached = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  const RunMetrics m = ComputeMetrics(cached, "3Sigma");
  EXPECT_GT(m.valuation_kernel_calls, 0);
  EXPECT_GT(m.valuation_cache_hits, 0);
  EXPECT_GT(m.valuation_cache_hit_rate, 0.0);

  config.sched.valuation_cache = false;
  const SimResult uncached = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  EXPECT_EQ(DecisionTrace(cached, /*include_valuation_counters=*/false),
            DecisionTrace(uncached, /*include_valuation_counters=*/false));
}

// ---------------------------------------------------------------------------
// Shard decomposition: exact and deterministic through the full stack.

void Pretrain(SystemInstance& instance, const GeneratedWorkload& workload) {
  for (const JobSpec& job : workload.pretrain) {
    instance.predictor->RecordCompletion(job.features, job.true_runtime);
  }
}

ExperimentConfig ShardPropertyConfig() {
  ExperimentConfig config = PropertyConfig();
  // Shards off vs on can only be compared unbudgeted: with a *binding* node
  // budget every shard receives the full budget, so the two searches truncate
  // at different points by design (see DESIGN.md). Unbudgeted monolithic
  // trees over the default pending window are far too slow for a unit test,
  // so shrink the consideration window and the run — the property itself is
  // unchanged.
  config.sched.solver_max_nodes = 0;
  config.sched.max_pending_considered = 4;
  config.sched.num_start_slots = 3;
  config.cluster = ClusterConfig::Uniform(2, 8);
  config.workload.duration = Minutes(6.0);
  config.workload.model_sample_jobs = 400;
  config.workload.pretrain_jobs = 400;
  return config;
}

TEST(SchedPropertyTest, SolverShardsNeverChangeTheSchedule) {
  ExperimentConfig config = ShardPropertyConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

  for (const bool faults : {false, true}) {
    if (faults) {
      config.sim.faults.node_mttf = 1500.0;
      config.sim.faults.node_mttr = 240.0;
      config.sim.faults.task_kill_prob = 0.05;
      config.sim.faults.straggler_prob = 0.1;
      config.sim.faults.straggler_factor = 2.0;
      config.sim.faults.cycle_stall_prob = 0.05;
      config.sim.faults.seed = 5;
    }

    config.sched.solver_shards = false;
    config.sched.solver_threads = 1;
    const SimResult mono = SimulateSystem(SystemKind::kThreeSigma, config, workload);
    ASSERT_GT(mono.jobs.size(), 0u);
    const std::string mono_trace = DecisionTrace(mono, /*include_valuation_counters=*/true,
                                                 /*include_solver_counters=*/false);

    // Sharded decisions are byte-identical to the monolithic ones (solver
    // counters excluded: the decomposed search visits fewer nodes).
    config.sched.solver_shards = true;
    const SimResult sharded1 = SimulateSystem(SystemKind::kThreeSigma, config, workload);
    EXPECT_EQ(mono_trace, DecisionTrace(sharded1, /*include_valuation_counters=*/true,
                                        /*include_solver_counters=*/false))
        << "shards on moved a decision (faults=" << faults << ")";

    // And the sharded run itself is fully byte-identical — counters included —
    // at any solver thread count.
    config.sched.solver_threads = 4;
    const SimResult sharded4 = SimulateSystem(SystemKind::kThreeSigma, config, workload);
    EXPECT_EQ(DecisionTrace(sharded1), DecisionTrace(sharded4))
        << "sharded run depends on thread count (faults=" << faults << ")";

    // The decomposition layer must actually be in the loop. On a uniform
    // cluster every job is eligible everywhere, so cycles stay one connected
    // component (mean shards == 1); the multi-shard path is pinned by
    // DisjointPreferenceJobsDecomposeIntoShards below and by the
    // shard_differential suite.
    const RunMetrics m = ComputeMetrics(sharded4, "3Sigma");
    EXPECT_GT(m.total_milp_shards, 0) << "sharded path never ran (faults=" << faults << ")";
    EXPECT_GE(m.mean_milp_shards, 1.0);
    config.sched.solver_threads = 1;
    config.sched.solver_shards = false;
  }
}

// On a uniform cluster every pending job is eligible on every group, so the
// per-cycle constraint graph of a full google-workload run is one connected
// component and the full-run tests above exercise the single-shard path. The
// multi-component path is pinned down here: two tight-deadline SLO jobs with
// disjoint preferred groups (the 1.5x non-preferred slowdown blows their
// deadlines, so those options are EU-gated away) decompose into two
// independent sub-MILPs — and the schedule is the monolithic one.
class PointPredictor : public RuntimePredictor {
 public:
  RuntimePrediction Predict(const JobFeatures&, double) override {
    RuntimePrediction pred;
    pred.distribution = EmpiricalDistribution::FromSamples({200.0});
    pred.point_estimate = 200.0;
    pred.from_history = true;
    return pred;
  }
  void RecordCompletion(const JobFeatures&, double) override {}
};

TEST(SchedPropertyTest, DisjointPreferenceJobsDecomposeIntoShards) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 8);
  PointPredictor predictor;
  DistSchedulerConfig config;
  config.solver_time_limit_seconds = 0.0;
  config.solver_max_nodes = 0;
  // OE handling would re-extend the gated non-preferred options past their
  // deadlines and recouple the groups; this test needs the hard gate.
  config.overestimate_handling = false;

  auto make_job = [](JobId id, int preferred_group) {
    JobSpec spec;
    spec.id = id;
    spec.type = JobType::kSlo;
    spec.submit_time = 0.0;
    spec.true_runtime = 200.0;
    spec.num_tasks = 2;
    spec.deadline = 260.0;  // Meets at 200 on-preference; 300 off-preference.
    spec.preferred_groups = {preferred_group};
    spec.utility = UtilityFunction::SloStep(10.0, spec.deadline);
    spec.features = {"u" + std::to_string(preferred_group)};
    return spec;
  };

  CycleResult mono;
  CycleResult sharded;
  for (const bool shards : {false, true}) {
    config.solver_shards = shards;
    DistributionScheduler sched(cluster, &predictor, config);
    sched.OnJobArrival(make_job(1, 0), 0.0);
    sched.OnJobArrival(make_job(2, 1), 0.0);
    ClusterStateView view;
    view.cluster = &cluster;
    view.free_nodes = {8, 8};
    (shards ? sharded : mono) = sched.RunCycle(5.0, view);
  }

  EXPECT_EQ(sharded.milp_shards, 2) << "disjoint-preference jobs did not decompose";
  EXPECT_EQ(mono.milp_shards, 0);
  ASSERT_EQ(mono.start.size(), 2u);
  ASSERT_EQ(sharded.start.size(), 2u);
  for (size_t i = 0; i < mono.start.size(); ++i) {
    EXPECT_EQ(mono.start[i].job, sharded.start[i].job);
    EXPECT_EQ(mono.start[i].group, sharded.start[i].group);
  }
  // Each job landed on its preferred group (the only ungated option).
  EXPECT_EQ(sharded.start[0].group, 0);
  EXPECT_EQ(sharded.start[1].group, 1);
}

TEST(SchedPropertyTest, ShardedCheckpointResumeIsByteIdentical) {
  // Checkpoint a sharded, faulty, multi-threaded run mid-flight, "kill" it,
  // resume into a freshly built system, and the finished trace must be
  // byte-identical — which requires the per-shard basis map ("sched" section
  // v3) to be restored exactly, since warm-started root LPs can settle on a
  // different optimal basis than cold ones at degenerate ties.
  ExperimentConfig config = PropertyConfig();
  config.workload.duration = Minutes(10.0);
  config.sched.solver_shards = true;
  config.sched.solver_threads = 4;
  config.sim.faults.node_mttf = 1500.0;
  config.sim.faults.node_mttr = 240.0;
  config.sim.faults.task_kill_prob = 0.05;
  config.sim.faults.straggler_prob = 0.1;
  config.sim.faults.straggler_factor = 2.0;
  config.sim.faults.cycle_stall_prob = 0.05;
  config.sim.faults.seed = 5;
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

  SystemInstance reference = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Pretrain(reference, workload);
  Simulator ref_sim(config.cluster, reference.scheduler.get(), workload.jobs, config.sim);
  const SimResult ref_result = ref_sim.Run();
  const std::string ref_trace = DecisionTrace(ref_result);
  ASSERT_GT(ref_result.cycles.size(), 20u) << "config too small to exercise checkpointing";
  const RunMetrics ref_metrics = ComputeMetrics(ref_result, "3Sigma");
  ASSERT_GT(ref_metrics.total_milp_shards, 0);

  for (const uint64_t checkpoint_cycle : {5u, 23u}) {
    std::string buffer;
    {
      SystemInstance doomed = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
      Pretrain(doomed, workload);
      Simulator sim(config.cluster, doomed.scheduler.get(), workload.jobs, config.sim);
      while (sim.cycles_completed() < checkpoint_cycle) {
        ASSERT_TRUE(sim.Step());
      }
      buffer = sim.SaveStateToBuffer();
      // Destruction here is the kill.
    }

    SystemInstance resumed = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
    Pretrain(resumed, workload);
    Simulator sim(config.cluster, resumed.scheduler.get(), {}, config.sim);
    sim.RestoreStateFromBuffer(buffer);
    EXPECT_EQ(sim.cycles_completed(), checkpoint_cycle);
    const SimResult result = sim.Run();
    EXPECT_EQ(DecisionTrace(result), ref_trace)
        << "divergence after resuming a sharded run at cycle " << checkpoint_cycle;
  }
}

}  // namespace
}  // namespace threesigma
