// Digital-twin isolation and determinism properties:
//
//   1. Fork isolation: with auto-apply disabled, running what-if sweeps
//      mid-flight changes nothing about the live run — the decision log CSV
//      is byte-identical with the twin on vs off, at 1 and 4 solver threads.
//   2. RPC determinism: two identical WhatIf requests issued back-to-back at
//      a parked cycle boundary return byte-identical reports.
//   3. Resume determinism: a server restored from a checkpoint answers WhatIf
//      with exactly the report the original server gives at that boundary,
//      and the advisor's counters survive the restore.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/obs/obs.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"
#include "src/sim/simulator.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/transport.h"
#include "src/twin/scenario.h"
#include "src/twin/twin.h"

namespace threesigma {
namespace {

JobSpec MakeJob(JobId id, Time submit, bool slo) {
  JobSpec spec;
  spec.id = id;
  spec.user = "tester";
  spec.submit_time = submit;
  spec.num_tasks = 1;
  if (slo) {
    spec.name = "twin-prop-slo";
    spec.type = JobType::kSlo;
    spec.true_runtime = 60.0 + 10.0 * static_cast<double>(id % 5);
    spec.deadline = submit + 700.0;
    spec.utility = UtilityFunction::SloStep(10.0, spec.deadline);
  } else {
    spec.name = "twin-prop-be";
    spec.type = JobType::kBestEffort;
    spec.true_runtime = 45.0 + 15.0 * static_cast<double>(id % 3);
    spec.utility = UtilityFunction::BestEffortLinear(1.0, submit, 4.0 * spec.true_runtime);
  }
  spec.features = {"user=tester", std::string("jobname=") + spec.name};
  return spec;
}

std::vector<JobSpec> Workload(int jobs) {
  std::vector<JobSpec> workload;
  for (int i = 0; i < jobs; ++i) {
    workload.push_back(MakeJob(i + 1, 5.0 * i, i % 2 == 0));
  }
  return workload;
}

DistSchedulerConfig Config(int solver_threads) {
  DistSchedulerConfig config;
  config.name = "3Sigma";
  config.use_distribution = true;
  config.overestimate_handling = true;
  config.adaptive_oe = true;
  config.planahead = 1200.0;
  config.num_start_slots = 6;
  config.cycle_period = 10.0;
  config.solver_threads = solver_threads;
  return config;
}

std::unique_ptr<ThreeSigmaPredictor> TrainedPredictor() {
  auto predictor = std::make_unique<ThreeSigmaPredictor>();
  for (int i = 0; i < 40; ++i) {
    predictor->RecordCompletion({"user=tester", "jobname=twin-prop-slo"},
                                55.0 + (i % 7) * 5.0);
    predictor->RecordCompletion({"user=tester", "jobname=twin-prop-be"},
                                40.0 + (i % 5) * 10.0);
  }
  return predictor;
}

// Runs the workload to completion with decision logging on. When `twin_on`,
// a what-if sweep (auto-apply off) runs at every 4th completed cycle —
// exactly the advisory cadence a serve daemon would use. Returns the live
// run's decision CSV.
std::string DecisionCsv(int solver_threads, bool twin_on) {
  obs::ResetAll();
  obs::Options obs_options;
  obs_options.decisions = true;
  obs::Configure(obs_options);

  const ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  auto predictor = TrainedPredictor();
  DistributionScheduler sched(cluster, predictor.get(), Config(solver_threads));
  SimOptions sim_options;
  sim_options.seed = 11;
  Simulator sim(cluster, &sched, Workload(14), sim_options);

  TwinOptions twin_options;
  twin_options.horizon_cycles = 30;
  twin_options.auto_apply = false;
  WhatIfEngine engine(cluster, &sched, twin_options);

  while (sim.Step()) {
    if (twin_on && sim.cycles_completed() % 4 == 0) {
      engine.Run(sim, DefaultScenarios(), 30);
    }
  }
  sim.Finish();
  obs::DecisionLog::Global().SetEnabled(false);
  return obs::DecisionLog::Global().ToCsvString();
}

TEST(TwinPropertyTest, SweepsPerturbNoLiveDecision) {
  const std::string baseline = DecisionCsv(1, /*twin_on=*/false);
  ASSERT_GT(baseline.size(),
            std::string("cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n")
                .size());
  EXPECT_EQ(baseline, DecisionCsv(1, /*twin_on=*/true))
      << "what-if sweeps changed live decisions at 1 solver thread";
  const std::string quad = DecisionCsv(4, /*twin_on=*/false);
  EXPECT_EQ(quad, DecisionCsv(4, /*twin_on=*/true))
      << "what-if sweeps changed live decisions at 4 solver threads";
}

// --- RPC-level determinism over the loopback service -------------------------

class TwinServiceTest : public ::testing::Test {
 protected:
  void Start(svc::ServiceOptions options) {
    options.drain_linger_seconds = 0.0;
    predictor_ = TrainedPredictor();
    sched_ = std::make_unique<DistributionScheduler>(cluster_, predictor_.get(), Config(1));
    server_ = std::make_unique<svc::Server>(cluster_, sched_.get(), SimOptions{}, options,
                                            &transport_);
    TwinOptions twin_options;
    twin_options.horizon_cycles = 25;
    engine_ = std::make_unique<WhatIfEngine>(cluster_, sched_.get(), twin_options);
    server_->AttachWhatIfEngine(engine_.get());
    channel_ = transport_.Connect();
    channel_->SetPump([this] { server_->HandleReady(); });
    svc::ClientOptions client_options;
    client_options.sleep_on_backoff = false;
    client_ = std::make_unique<svc::Client>(channel_.get(), client_options);
  }

  void SubmitAndWarm(int jobs, int cycles) {
    std::string error;
    for (int i = 0; i < jobs; ++i) {
      JobId id = 0;
      ASSERT_TRUE(client_->SubmitJob(MakeJob(i + 1, static_cast<double>(5 * i), i % 2 == 0),
                                     "tok-" + std::to_string(i), &id, &error))
          << error;
    }
    for (int i = 0; i < cycles; ++i) {
      server_->StepCycle();
    }
  }

  ClusterConfig cluster_ = ClusterConfig::Uniform(2, 4);
  std::unique_ptr<ThreeSigmaPredictor> predictor_;
  std::unique_ptr<DistributionScheduler> sched_;
  svc::LoopbackTransport transport_;
  std::unique_ptr<WhatIfEngine> engine_;
  std::unique_ptr<svc::Server> server_;
  std::unique_ptr<svc::LoopbackTransport::Client> channel_;
  std::unique_ptr<svc::Client> client_;
};

TEST_F(TwinServiceTest, RepeatedWhatIfRequestsAreByteIdentical) {
  Start(svc::ServiceOptions{});
  SubmitAndWarm(10, 4);
  std::string first;
  std::string second;
  std::string error;
  ASSERT_TRUE(client_->WhatIf("", 0, &first, &error)) << error;
  ASSERT_TRUE(client_->WhatIf("", 0, &second, &error)) << error;
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "identical requests at a parked boundary must match exactly";

  // An explicit scenario list is honored and still deterministic.
  const std::string scenarios = "name=tight,planahead=600;name=surge,surge=2";
  ASSERT_TRUE(client_->WhatIf(scenarios, 20, &first, &error)) << error;
  ASSERT_TRUE(client_->WhatIf(scenarios, 20, &second, &error)) << error;
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("scenarios=3"), std::string::npos) << first;

  std::string status;
  ASSERT_TRUE(client_->AdvisorStatus(&status, &error)) << error;
  EXPECT_NE(status.find("sweeps=4"), std::string::npos) << status;
}

TEST_F(TwinServiceTest, WhatIfWithoutEngineIsInvalidArgument) {
  Start(svc::ServiceOptions{});
  server_->AttachWhatIfEngine(nullptr);
  std::string report;
  std::string error;
  EXPECT_FALSE(client_->WhatIf("", 0, &report, &error));
  EXPECT_NE(error.find("what-if"), std::string::npos) << error;
}

TEST_F(TwinServiceTest, BadScenarioListRejected) {
  Start(svc::ServiceOptions{});
  std::string report;
  std::string error;
  EXPECT_FALSE(client_->WhatIf("bogus_key=1", 0, &report, &error));
}

TEST_F(TwinServiceTest, RestoredServerAnswersWhatIfIdentically) {
  const std::string path = ::testing::TempDir() + "/twin_property_checkpoint.snap";
  svc::ServiceOptions options;
  options.checkpoint_path = path;
  Start(options);
  SubmitAndWarm(10, 4);

  std::string error;
  std::string original_report;
  ASSERT_TRUE(client_->WhatIf("", 0, &original_report, &error)) << error;
  std::string written;
  ASSERT_TRUE(client_->TriggerCheckpoint(&written, &error)) << error;

  // A fresh, identically-configured process restores the checkpoint. The
  // engine attaches before restore, so the advisor state (one sweep already
  // run) comes back with the snapshot.
  auto restored_predictor = TrainedPredictor();
  DistributionScheduler restored_sched(cluster_, restored_predictor.get(), Config(1));
  svc::LoopbackTransport restored_transport;
  svc::Server restored(cluster_, &restored_sched, SimOptions{}, options, &restored_transport);
  TwinOptions twin_options;
  twin_options.horizon_cycles = 25;
  WhatIfEngine restored_engine(cluster_, &restored_sched, twin_options);
  restored.AttachWhatIfEngine(&restored_engine);
  ASSERT_TRUE(restored.RestoreFromFile(path, &error)) << error;

  auto restored_channel = restored_transport.Connect();
  restored_channel->SetPump([&restored] { restored.HandleReady(); });
  svc::ClientOptions client_options;
  client_options.sleep_on_backoff = false;
  svc::Client restored_client(restored_channel.get(), client_options);

  std::string restored_report;
  ASSERT_TRUE(restored_client.WhatIf("", 0, &restored_report, &error)) << error;
  EXPECT_EQ(restored_report, original_report)
      << "a resumed server must answer what-if exactly as the original did";

  EXPECT_EQ(restored_engine.advisor_state().sweeps, 2)
      << "the pre-checkpoint sweep must survive the restore";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace threesigma
