// Tests for 3σPredict: expert estimators, NMAE scoring, expert selection,
// distribution generation, and the oracle/synthetic stand-ins.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/predict/feature_history.h"
#include "src/predict/predictor.h"

namespace threesigma {
namespace {

TEST(FeatureHistoryTest, ExpertsTrackTheirDefinitions) {
  FeatureHistory h;
  for (double v : {10.0, 20.0, 30.0}) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.Estimate(ExpertKind::kAverage), 20.0);
  EXPECT_DOUBLE_EQ(h.Estimate(ExpertKind::kMedian), 20.0);
  EXPECT_DOUBLE_EQ(h.Estimate(ExpertKind::kRecentAverage), 20.0);
  // Rolling with alpha 0.6: ((10)*0.4 + 20*0.6)*0.4 + 30*0.6 = 23.2... compute:
  // after 10: 10; after 20: 0.6*20+0.4*10 = 16; after 30: 0.6*30+0.4*16 = 24.4.
  EXPECT_NEAR(h.Estimate(ExpertKind::kRolling), 24.4, 1e-12);
}

TEST(FeatureHistoryTest, NmaeScoredBeforeAbsorbing) {
  FeatureHistory h;
  h.Record(10.0);  // No expert seeded yet -> no NMAE update.
  for (size_t k = 0; k < kNumExperts; ++k) {
    EXPECT_EQ(h.NmaeSamples(static_cast<ExpertKind>(k)), 0u);
  }
  h.Record(10.0);  // All experts predicted 10, actual 10: zero error.
  EXPECT_EQ(h.NmaeSamples(ExpertKind::kAverage), 1u);
  EXPECT_DOUBLE_EQ(h.NmaeScore(ExpertKind::kAverage), 0.0);
}

TEST(FeatureHistoryTest, StreamingNmaeMatchesBatch) {
  FeatureHistory h;
  Rng rng(3);
  std::vector<double> averages;
  std::vector<double> actuals;
  RunningStats mean_so_far;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.LogNormal(3.0, 0.8);
    if (mean_so_far.count() > 0) {
      averages.push_back(mean_so_far.mean());
      actuals.push_back(v);
    }
    h.Record(v);
    mean_so_far.Add(v);
  }
  EXPECT_NEAR(h.NmaeScore(ExpertKind::kAverage), Nmae(averages, actuals), 1e-9);
}

TEST(FeatureHistoryTest, BestExpertPicksLowestNmae) {
  // A trending series: the rolling estimator tracks it far better than the
  // long-run average.
  FeatureHistory h;
  for (int i = 0; i < 60; ++i) {
    h.Record(10.0 + i * 10.0);
  }
  EXPECT_LT(h.NmaeScore(ExpertKind::kRolling), h.NmaeScore(ExpertKind::kAverage));
  const ExpertKind best = h.BestExpert();
  EXPECT_TRUE(best == ExpertKind::kRolling || best == ExpertKind::kRecentAverage);
}

TEST(FeatureHistoryTest, UnscoredExpertLosesSelection) {
  FeatureHistory h;
  h.Record(5.0);
  // Only one sample: all NMAE scores are infinite; BestExpert falls back.
  EXPECT_EQ(h.BestExpert(), ExpertKind::kAverage);
  EXPECT_TRUE(std::isinf(h.NmaeScore(ExpertKind::kMedian)));
}

TEST(FeatureHistoryTest, ConstantMemoryHistogramBound) {
  FeatureHistoryOptions opts;
  opts.max_histogram_bins = 16;
  FeatureHistory h(opts);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.LogNormal(4.0, 1.5));
  }
  EXPECT_LE(h.histogram().bin_count(), 16u);
  EXPECT_EQ(h.count(), 5000u);
}

TEST(ExpertKindNameTest, AllNamed) {
  EXPECT_STREQ(ExpertKindName(ExpertKind::kAverage), "average");
  EXPECT_STREQ(ExpertKindName(ExpertKind::kMedian), "median");
  EXPECT_STREQ(ExpertKindName(ExpertKind::kRolling), "rolling");
  EXPECT_STREQ(ExpertKindName(ExpertKind::kRecentAverage), "recent-average");
}

// ---------------------------------------------------------------------------
// ThreeSigmaPredictor
// ---------------------------------------------------------------------------

TEST(ThreeSigmaPredictorTest, ColdStartUsesDefault) {
  ThreeSigmaPredictorOptions opts;
  opts.default_runtime = 123.0;
  ThreeSigmaPredictor p(opts);
  const RuntimePrediction pred = p.Predict({"user=new"}, /*true_runtime=*/999.0);
  EXPECT_FALSE(pred.from_history);
  EXPECT_DOUBLE_EQ(pred.point_estimate, 123.0);
  EXPECT_DOUBLE_EQ(pred.distribution.Mean(), 123.0);
  EXPECT_EQ(pred.source, "cold-start");
}

TEST(ThreeSigmaPredictorTest, LearnsPerFeatureHistory) {
  ThreeSigmaPredictor p;
  for (int i = 0; i < 30; ++i) {
    p.RecordCompletion({"user=alice", "jobname=etl"}, 100.0);
  }
  const RuntimePrediction pred = p.Predict({"user=alice", "jobname=etl"}, 0.0);
  EXPECT_TRUE(pred.from_history);
  EXPECT_NEAR(pred.point_estimate, 100.0, 1e-9);
  EXPECT_NEAR(pred.distribution.Mean(), 100.0, 1e-9);
}

TEST(ThreeSigmaPredictorTest, PicksMorePredictiveFeature) {
  ThreeSigmaPredictor p;
  Rng rng(11);
  // "user=mixed" sees wildly varying runtimes; "jobname=stable" is constant.
  // Jobs carrying both features should be predicted from the stable feature.
  for (int i = 0; i < 200; ++i) {
    p.RecordCompletion({"user=mixed"}, rng.Uniform(10.0, 10000.0));
    p.RecordCompletion({"user=mixed", "jobname=stable"}, 500.0);
  }
  const RuntimePrediction pred = p.Predict({"user=mixed", "jobname=stable"}, 0.0);
  EXPECT_NEAR(pred.point_estimate, 500.0, 1.0);
  EXPECT_NE(pred.source.find("jobname=stable"), std::string::npos) << pred.source;
}

TEST(ThreeSigmaPredictorTest, DistributionReflectsHistoryShape) {
  ThreeSigmaPredictor p;
  // Bimodal history: half the jobs run 10s, half 1000s.
  for (int i = 0; i < 100; ++i) {
    p.RecordCompletion({"jobname=bimodal"}, i % 2 == 0 ? 10.0 : 1000.0);
  }
  const RuntimePrediction pred = p.Predict({"jobname=bimodal"}, 0.0);
  EXPECT_NEAR(pred.distribution.CdfAtMost(100.0), 0.5, 0.05);
  EXPECT_NEAR(pred.distribution.CdfAtMost(2000.0), 1.0, 1e-9);
}

TEST(ThreeSigmaPredictorTest, HistoryCountTracksFeatures) {
  ThreeSigmaPredictor p;
  p.RecordCompletion({"a=1", "b=2"}, 10.0);
  p.RecordCompletion({"a=1", "b=3"}, 10.0);
  EXPECT_EQ(p.history_count(), 3u);
  ASSERT_NE(p.history("a=1"), nullptr);
  EXPECT_EQ(p.history("a=1")->count(), 2u);
  EXPECT_EQ(p.history("missing"), nullptr);
}

TEST(ThreeSigmaPredictorTest, MinHistoryRespected) {
  ThreeSigmaPredictorOptions opts;
  opts.min_history = 5;
  opts.default_runtime = 77.0;
  ThreeSigmaPredictor p(opts);
  for (int i = 0; i < 4; ++i) {
    p.RecordCompletion({"user=x"}, 100.0);
  }
  EXPECT_FALSE(p.Predict({"user=x"}, 0.0).from_history);
  p.RecordCompletion({"user=x"}, 100.0);
  EXPECT_TRUE(p.Predict({"user=x"}, 0.0).from_history);
}

TEST(PerfectPredictorTest, ReturnsTrueRuntime) {
  PerfectPredictor p;
  const RuntimePrediction pred = p.Predict({"user=any"}, 42.5);
  EXPECT_DOUBLE_EQ(pred.point_estimate, 42.5);
  EXPECT_EQ(pred.distribution.size(), 1u);
  EXPECT_DOUBLE_EQ(pred.distribution.Mean(), 42.5);
}

TEST(SyntheticPredictorTest, ShiftAndCovShapeTheDistribution) {
  SyntheticPredictor p(/*shift=*/0.5, /*cov=*/0.2, /*seed=*/9);
  RunningStats means;
  for (int i = 0; i < 300; ++i) {
    const RuntimePrediction pred = p.Predict({}, 100.0);
    means.Add(pred.distribution.Mean());
  }
  // Mean of means ~ 100 * 1.5 (the drawn shift is ~N(0.5, 0.1)).
  EXPECT_NEAR(means.mean(), 150.0, 5.0);
}

TEST(SyntheticPredictorTest, ZeroCovIsPointEstimate) {
  SyntheticPredictor p(/*shift=*/0.0, /*cov=*/0.0, /*seed=*/10);
  const RuntimePrediction pred = p.Predict({}, 200.0);
  EXPECT_EQ(pred.distribution.size(), 1u);
}

TEST(SampleCapPredictorTest, FreezesHistoryAtCap) {
  ThreeSigmaPredictor inner;
  SampleCapPredictor capped(&inner, 5);
  const JobFeatures features = {"user=a", "jobname=b", "user+jobname=a|b"};
  for (int i = 0; i < 50; ++i) {
    capped.RecordCompletion(features, 100.0 + i);
  }
  ASSERT_NE(inner.history("user=a"), nullptr);
  EXPECT_EQ(inner.history("user=a")->count(), 5u);
  EXPECT_EQ(inner.history("user+jobname=a|b")->count(), 5u);
}

TEST(SampleCapPredictorTest, CapIsPerPopulation) {
  ThreeSigmaPredictor inner;
  SampleCapPredictor capped(&inner, 2);
  for (int i = 0; i < 10; ++i) {
    capped.RecordCompletion({"user=a", "user+jobname=a|x"}, 1.0);
    capped.RecordCompletion({"user=a", "user+jobname=a|y"}, 2.0);
  }
  // Two populations under one user: the user feature sees 2 + 2 samples.
  EXPECT_EQ(inner.history("user=a")->count(), 4u);
}

TEST(SampleCapPredictorTest, PredictsThroughInner) {
  ThreeSigmaPredictor inner;
  SampleCapPredictor capped(&inner, 3);
  capped.RecordCompletion({"user=z", "user+jobname=z|z"}, 77.0);
  const RuntimePrediction pred = capped.Predict({"user=z"}, 0.0);
  EXPECT_TRUE(pred.from_history);
  EXPECT_DOUBLE_EQ(pred.point_estimate, 77.0);
}

TEST(PaddedPointPredictorTest, PadsByStdDevs) {
  ThreeSigmaPredictor inner;
  // History: {90, 110} repeated -> mean 100, stddev 10 (population form).
  for (int i = 0; i < 50; ++i) {
    inner.RecordCompletion({"user=p"}, 90.0);
    inner.RecordCompletion({"user=p"}, 110.0);
  }
  PaddedPointPredictor padded(&inner, 2.0);
  const RuntimePrediction base = inner.Predict({"user=p"}, 0.0);
  const RuntimePrediction pred = padded.Predict({"user=p"}, 0.0);
  EXPECT_NEAR(pred.point_estimate,
              base.point_estimate + 2.0 * base.distribution.StdDev(), 1e-9);
  EXPECT_EQ(pred.distribution.size(), 1u);  // Point mass at the padded value.
}

TEST(PaddedPointPredictorTest, ZeroPaddingIsIdentityPoint) {
  ThreeSigmaPredictor inner;
  inner.RecordCompletion({"user=q"}, 100.0);
  inner.RecordCompletion({"user=q"}, 100.0);
  PaddedPointPredictor padded(&inner, 0.0);
  EXPECT_NEAR(padded.Predict({"user=q"}, 0.0).point_estimate, 100.0, 1e-9);
}

TEST(PaddedPointPredictorTest, ForwardsCompletions) {
  ThreeSigmaPredictor inner;
  PaddedPointPredictor padded(&inner, 1.0);
  padded.RecordCompletion({"user=r"}, 42.0);
  ASSERT_NE(inner.history("user=r"), nullptr);
  EXPECT_EQ(inner.history("user=r")->count(), 1u);
}

// Property: with a stationary lognormal population, prediction error of the
// real predictor concentrates (most estimates within 2x) — the §2.1 analysis
// premise.
TEST(ThreeSigmaPredictorTest, StationaryPopulationMostlyWithin2x) {
  ThreeSigmaPredictor p;
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    p.RecordCompletion({"user=steady"}, rng.LogNormal(5.0, 0.4));
  }
  int within = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const double actual = rng.LogNormal(5.0, 0.4);
    const RuntimePrediction pred = p.Predict({"user=steady"}, actual);
    const double ratio = pred.point_estimate / actual;
    if (ratio > 0.5 && ratio < 2.0) {
      ++within;
    }
    p.RecordCompletion({"user=steady"}, actual);
  }
  EXPECT_GT(within, trials * 0.75);
}

}  // namespace
}  // namespace threesigma
