// Simulator tests: event ordering, capacity accounting, preemption
// semantics, fidelity modes, and end-to-end invariants with a trivial
// scripted scheduler.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/metrics/metrics.h"
#include "src/sched/prio_scheduler.h"
#include "src/sim/simulator.h"

namespace threesigma {
namespace {

JobSpec SimpleBeJob(JobId id, Time submit, Duration runtime, int tasks) {
  JobSpec spec;
  spec.id = id;
  spec.name = "job" + std::to_string(id);
  spec.type = JobType::kBestEffort;
  spec.submit_time = submit;
  spec.true_runtime = runtime;
  spec.num_tasks = tasks;
  spec.utility = UtilityFunction::BestEffortLinear(1.0 * tasks, submit, Hours(2.0));
  spec.features = {"job=" + spec.name};
  return spec;
}

JobSpec SimpleSloJob(JobId id, Time submit, Duration runtime, int tasks, double slack_pct) {
  JobSpec spec = SimpleBeJob(id, submit, runtime, tasks);
  spec.type = JobType::kSlo;
  spec.deadline = submit + runtime * (1.0 + slack_pct / 100.0);
  spec.utility = UtilityFunction::SloStep(50.0 * tasks, spec.deadline);
  return spec;
}

// A scheduler that starts every pending job greedily on the first group with
// space (FIFO), never preempts. Used to test the simulator in isolation.
class GreedyFifoScheduler : public Scheduler {
 public:
  explicit GreedyFifoScheduler(const ClusterConfig& cluster) : cluster_(cluster) {}

  void OnJobArrival(const JobSpec& spec, Time) override { pending_.push_back(spec); }
  void OnJobStarted(JobId id, int, Time) override {
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [&](const JobSpec& s) { return s.id == id; }),
                   pending_.end());
  }
  void OnJobFinished(JobId, Time, Duration) override { ++finished_; }
  void OnJobPreempted(JobId, Time) override {}
  CycleResult RunCycle(Time, const ClusterStateView& state) override {
    CycleResult result;
    std::vector<int> free = state.free_nodes;
    for (const JobSpec& spec : pending_) {
      for (int g = 0; g < cluster_.num_groups(); ++g) {
        if (free[g] >= spec.num_tasks) {
          result.start.push_back(Placement{spec.id, g});
          free[g] -= spec.num_tasks;
          break;
        }
      }
    }
    return result;
  }
  std::string name() const override { return "greedy-fifo"; }

  int finished() const { return finished_; }

 private:
  const ClusterConfig& cluster_;
  std::vector<JobSpec> pending_;
  int finished_ = 0;
};

TEST(SimulatorTest, SingleJobLifecycle) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 1.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 10.0, 100.0, 2)}, options);
  const SimResult result = sim.Run();
  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRecord& job = result.jobs[0];
  EXPECT_EQ(job.status, JobStatus::kCompleted);
  EXPECT_GE(job.start_time, 10.0);
  EXPECT_NEAR(job.finish_time, job.start_time + 100.0, 1e-9);
  EXPECT_NEAR(job.completed_work, 2 * 100.0, 1e-6);
  EXPECT_EQ(result.rejected_placements, 0);
  EXPECT_EQ(sched.finished(), 1);
}

TEST(SimulatorTest, ReactiveCycleStartsJobPromptly) {
  // With a 60s cycle but 2s reactive gap, a job arriving at t=10 must start
  // within a couple of seconds, not at the next minute boundary.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 60.0;
  options.reactive_min_gap = 2.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 10.0, 50.0, 1)}, options);
  const SimResult result = sim.Run();
  EXPECT_LE(result.jobs[0].start_time, 13.0);
}

TEST(SimulatorTest, ReactiveCyclesDisabledFallBackToPeriodic) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 60.0;
  options.reactive_min_gap = 0.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 10.0, 50.0, 1)}, options);
  const SimResult result = sim.Run();
  // First cycle fires at the arrival... no: with reactive off, the first
  // cycle is scheduled only by arrival handling, which is reactive. The
  // fallback is that cycles start with the first arrival's periodic chain.
  EXPECT_EQ(result.jobs[0].status, JobStatus::kCompleted);
}

TEST(SimulatorTest, CapacityNeverOversubscribed) {
  // Many overlapping jobs on a small cluster: the simulator must reject any
  // placement that does not fit, and a correct greedy scheduler never issues
  // one.
  ClusterConfig cluster = ClusterConfig::Uniform(2, 3);
  GreedyFifoScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(SimpleBeJob(i + 1, i * 3.0, 50.0 + (i % 7) * 10.0, 1 + i % 3));
  }
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.rejected_placements, 0);
  for (const JobRecord& job : result.jobs) {
    EXPECT_EQ(job.status, JobStatus::kCompleted);
  }
}

TEST(SimulatorTest, GoodputBoundedByClusterSpaceTime) {
  ClusterConfig cluster = ClusterConfig::Uniform(2, 3);
  GreedyFifoScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(SimpleBeJob(i + 1, i * 1.0, 100.0, 2));
  }
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  const RunMetrics m = ComputeMetrics(result, "greedy");
  EXPECT_LE(m.goodput_machine_hours,
            MachineHours(cluster.total_nodes(), result.end_time) + 1e-6);
  EXPECT_NEAR(m.goodput_machine_hours, MachineHours(1.0, 30 * 2 * 100.0), 1e-6);
}

TEST(SimulatorTest, PreemptionRequeuesAndRestarts) {
  // Prio preempts a BE hog for an SLO job; the hog must requeue, restart
  // later, and complete with a preemption count of >= 1.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  PrioScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  JobSpec hog = SimpleBeJob(1, 0.0, 300.0, 4);
  jobs.push_back(hog);
  jobs.push_back(SimpleSloJob(2, 50.0, 100.0, 4, 50.0));
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  const JobRecord* hog_rec = nullptr;
  const JobRecord* slo_rec = nullptr;
  for (const JobRecord& j : result.jobs) {
    (j.spec.id == 1 ? hog_rec : slo_rec) = &j;
  }
  ASSERT_NE(hog_rec, nullptr);
  ASSERT_NE(slo_rec, nullptr);
  EXPECT_GE(hog_rec->preemptions, 1);
  EXPECT_EQ(hog_rec->status, JobStatus::kCompleted);
  EXPECT_EQ(slo_rec->status, JobStatus::kCompleted);
  EXPECT_FALSE(slo_rec->MissedDeadline());
  // The hog's completing run started after the SLO job finished.
  EXPECT_GE(hog_rec->start_time, slo_rec->finish_time - 1e-9);
  EXPECT_GE(result.total_preemptions, 1);
}

TEST(SimulatorTest, MigrationPreemptionPreservesProgress) {
  // Same scenario as PreemptionRequeuesAndRestarts, but with resume
  // semantics: the hog's second run only covers the remaining work, so it
  // finishes earlier than a full restart would, and its completed work counts
  // both runs.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 300.0, 4),
                               SimpleSloJob(2, 50.0, 100.0, 4, 50.0)};
  SimOptions kill;
  kill.cycle_period = 5.0;
  kill.drain_limit = Hours(10.0);
  SimOptions resume = kill;
  resume.preemption_resumes = true;

  PrioScheduler s1(cluster);
  const SimResult killed = Simulator(cluster, &s1, jobs, kill).Run();
  PrioScheduler s2(cluster);
  const SimResult resumed = Simulator(cluster, &s2, jobs, resume).Run();

  const auto hog_of = [](const SimResult& r) {
    for (const JobRecord& j : r.jobs) {
      if (j.spec.id == 1) {
        return j;
      }
    }
    return JobRecord{};
  };
  const JobRecord hog_killed = hog_of(killed);
  const JobRecord hog_resumed = hog_of(resumed);
  ASSERT_GE(hog_killed.preemptions, 1);
  ASSERT_GE(hog_resumed.preemptions, 1);
  EXPECT_LT(hog_resumed.finish_time, hog_killed.finish_time);
  // Work accounting: resumed run credits both segments (~300 node-seconds x4
  // plus nothing double-counted; killed restart also totals 4x300 of *useful*
  // work but burned extra cluster time).
  EXPECT_NEAR(hog_resumed.completed_work, 4 * 300.0, 4 * 60.0);
}

TEST(SimulatorTest, HighFidelityAddsOverheadAndJitter) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  SimOptions ideal;
  ideal.cycle_period = 2.0;
  SimOptions hf = ideal;
  hf.fidelity = SimFidelity::kHighFidelity;
  hf.seed = 99;

  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 100.0, 1)};
  GreedyFifoScheduler s1(cluster);
  const SimResult ideal_result = Simulator(cluster, &s1, jobs, ideal).Run();
  GreedyFifoScheduler s2(cluster);
  const SimResult hf_result = Simulator(cluster, &s2, jobs, hf).Run();

  const double ideal_runtime =
      ideal_result.jobs[0].finish_time - ideal_result.jobs[0].start_time;
  const double hf_runtime = hf_result.jobs[0].finish_time - hf_result.jobs[0].start_time;
  EXPECT_NEAR(ideal_runtime, 100.0, 1e-9);
  EXPECT_NE(hf_runtime, 100.0);        // Jitter + overhead + heartbeat.
  EXPECT_GT(hf_runtime, 80.0);         // ...but in a sane band.
  EXPECT_LT(hf_runtime, 130.0);
  // Heartbeat quantization: finish lands on a 3s grid.
  const double phase = std::fmod(hf_result.jobs[0].finish_time, 3.0);
  EXPECT_LT(std::min(phase, 3.0 - phase), 1e-6);
}

// A scripted scheduler that abandons every SLO job at its first cycle.
class AbandoningScheduler : public Scheduler {
 public:
  void OnJobArrival(const JobSpec& spec, Time) override { pending_.push_back(spec); }
  void OnJobStarted(JobId, int, Time) override {}
  void OnJobFinished(JobId, Time, Duration) override {}
  void OnJobPreempted(JobId, Time) override {}
  CycleResult RunCycle(Time, const ClusterStateView&) override {
    CycleResult result;
    for (const JobSpec& spec : pending_) {
      if (spec.is_slo()) {
        result.abandon.push_back(spec.id);
      }
    }
    pending_.clear();
    return result;
  }
  std::string name() const override { return "abandoner"; }

 private:
  std::vector<JobSpec> pending_;
};

TEST(SimulatorTest, AbandonedJobsRetiredAndCountedAsMisses) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  AbandoningScheduler sched;
  std::vector<JobSpec> jobs = {SimpleSloJob(1, 0.0, 60.0, 1, 20.0),
                               SimpleSloJob(2, 5.0, 60.0, 1, 20.0)};
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 1000.0;
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  for (const JobRecord& job : result.jobs) {
    EXPECT_EQ(job.status, JobStatus::kAbandoned);
    EXPECT_TRUE(job.MissedDeadline());
    EXPECT_DOUBLE_EQ(job.completed_work, 0.0);
  }
  const RunMetrics m = ComputeMetrics(result, "abandoner");
  EXPECT_EQ(m.abandoned, 2);
  EXPECT_EQ(m.slo_missed, 2);
  // The simulation ends promptly once everything is retired (no infinite
  // cycling on dead jobs).
  EXPECT_LT(result.end_time, 100.0);
}

TEST(SimulatorTest, UnfinishedJobsMarkedAtHardStop) {
  // Drain limit 0: anything not completed by the last arrival is unfinished.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  GreedyFifoScheduler sched(cluster);
  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 10000.0, 1),
                               SimpleBeJob(2, 1.0, 10000.0, 1)};
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 100.0;
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  int unfinished = 0;
  for (const JobRecord& j : result.jobs) {
    if (j.status == JobStatus::kUnfinished) {
      ++unfinished;
    }
  }
  EXPECT_EQ(unfinished, 2);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(SimpleBeJob(i + 1, i * 5.0, 60.0, 2));
  }
  SimOptions options;
  options.fidelity = SimFidelity::kHighFidelity;
  options.seed = 1234;
  GreedyFifoScheduler s1(cluster);
  GreedyFifoScheduler s2(cluster);
  const SimResult a = Simulator(cluster, &s1, jobs, options).Run();
  const SimResult b = Simulator(cluster, &s2, jobs, options).Run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
  }
}

TEST(JobRecordTest, MissedDeadlineSemantics) {
  JobRecord rec;
  rec.spec = SimpleSloJob(1, 0.0, 100.0, 1, 20.0);
  rec.status = JobStatus::kCompleted;
  rec.finish_time = 115.0;
  EXPECT_FALSE(rec.MissedDeadline());  // Deadline is 120.
  rec.finish_time = 125.0;
  EXPECT_TRUE(rec.MissedDeadline());
  rec.status = JobStatus::kAbandoned;
  EXPECT_TRUE(rec.MissedDeadline());
  rec.spec.type = JobType::kBestEffort;
  EXPECT_FALSE(rec.MissedDeadline());  // BE jobs have no deadline.
}

}  // namespace
}  // namespace threesigma
