// Simulator tests: event ordering, capacity accounting, preemption
// semantics, fidelity modes, and end-to-end invariants with a trivial
// scripted scheduler.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/metrics/metrics.h"
#include "src/sched/prio_scheduler.h"
#include "src/sim/simulator.h"

namespace threesigma {
namespace {

JobSpec SimpleBeJob(JobId id, Time submit, Duration runtime, int tasks) {
  JobSpec spec;
  spec.id = id;
  spec.name = "job" + std::to_string(id);
  spec.type = JobType::kBestEffort;
  spec.submit_time = submit;
  spec.true_runtime = runtime;
  spec.num_tasks = tasks;
  spec.utility = UtilityFunction::BestEffortLinear(1.0 * tasks, submit, Hours(2.0));
  spec.features = {"job=" + spec.name};
  return spec;
}

JobSpec SimpleSloJob(JobId id, Time submit, Duration runtime, int tasks, double slack_pct) {
  JobSpec spec = SimpleBeJob(id, submit, runtime, tasks);
  spec.type = JobType::kSlo;
  spec.deadline = submit + runtime * (1.0 + slack_pct / 100.0);
  spec.utility = UtilityFunction::SloStep(50.0 * tasks, spec.deadline);
  return spec;
}

// A scheduler that starts every pending job greedily on the first group with
// space (FIFO), never preempts. Used to test the simulator in isolation.
class GreedyFifoScheduler : public Scheduler {
 public:
  explicit GreedyFifoScheduler(const ClusterConfig& cluster) : cluster_(cluster) {}

  void OnJobArrival(const JobSpec& spec, Time) override {
    specs_[spec.id] = spec;
    pending_.push_back(spec);
  }
  void OnJobStarted(JobId id, int, Time) override {
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [&](const JobSpec& s) { return s.id == id; }),
                   pending_.end());
  }
  void OnJobFinished(JobId, Time, Duration) override { ++finished_; }
  // Preempted and fault-killed jobs requeue FIFO (fault kills route here via
  // the default OnJobFaultKilled).
  void OnJobPreempted(JobId id, Time) override { pending_.push_back(specs_.at(id)); }
  CycleResult RunCycle(Time, const ClusterStateView& state) override {
    CycleResult result;
    std::vector<int> free = state.free_nodes;
    for (const JobSpec& spec : pending_) {
      for (int g = 0; g < cluster_.num_groups(); ++g) {
        if (free[g] >= spec.num_tasks) {
          result.start.push_back(Placement{spec.id, g});
          free[g] -= spec.num_tasks;
          break;
        }
      }
    }
    return result;
  }
  std::string name() const override { return "greedy-fifo"; }

  int finished() const { return finished_; }

 private:
  const ClusterConfig& cluster_;
  std::map<JobId, JobSpec> specs_;
  std::vector<JobSpec> pending_;
  int finished_ = 0;
};

TEST(SimulatorTest, SingleJobLifecycle) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 1.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 10.0, 100.0, 2)}, options);
  const SimResult result = sim.Run();
  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRecord& job = result.jobs[0];
  EXPECT_EQ(job.status, JobStatus::kCompleted);
  EXPECT_GE(job.start_time, 10.0);
  EXPECT_NEAR(job.finish_time, job.start_time + 100.0, 1e-9);
  EXPECT_NEAR(job.completed_work, 2 * 100.0, 1e-6);
  EXPECT_EQ(result.rejected_placements, 0);
  EXPECT_EQ(sched.finished(), 1);
}

TEST(SimulatorTest, ReactiveCycleStartsJobPromptly) {
  // With a 60s cycle but 2s reactive gap, a job arriving at t=10 must start
  // within a couple of seconds, not at the next minute boundary.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 60.0;
  options.reactive_min_gap = 2.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 10.0, 50.0, 1)}, options);
  const SimResult result = sim.Run();
  EXPECT_LE(result.jobs[0].start_time, 13.0);
}

TEST(SimulatorTest, ReactiveCyclesDisabledFallBackToPeriodic) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 60.0;
  options.reactive_min_gap = 0.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 10.0, 50.0, 1)}, options);
  const SimResult result = sim.Run();
  // First cycle fires at the arrival... no: with reactive off, the first
  // cycle is scheduled only by arrival handling, which is reactive. The
  // fallback is that cycles start with the first arrival's periodic chain.
  EXPECT_EQ(result.jobs[0].status, JobStatus::kCompleted);
}

TEST(SimulatorTest, CapacityNeverOversubscribed) {
  // Many overlapping jobs on a small cluster: the simulator must reject any
  // placement that does not fit, and a correct greedy scheduler never issues
  // one.
  ClusterConfig cluster = ClusterConfig::Uniform(2, 3);
  GreedyFifoScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(SimpleBeJob(i + 1, i * 3.0, 50.0 + (i % 7) * 10.0, 1 + i % 3));
  }
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.rejected_placements, 0);
  for (const JobRecord& job : result.jobs) {
    EXPECT_EQ(job.status, JobStatus::kCompleted);
  }
}

TEST(SimulatorTest, GoodputBoundedByClusterSpaceTime) {
  ClusterConfig cluster = ClusterConfig::Uniform(2, 3);
  GreedyFifoScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(SimpleBeJob(i + 1, i * 1.0, 100.0, 2));
  }
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  const RunMetrics m = ComputeMetrics(result, "greedy");
  EXPECT_LE(m.goodput_machine_hours,
            MachineHours(cluster.total_nodes(), result.end_time) + 1e-6);
  EXPECT_NEAR(m.goodput_machine_hours, MachineHours(1.0, 30 * 2 * 100.0), 1e-6);
}

TEST(SimulatorTest, PreemptionRequeuesAndRestarts) {
  // Prio preempts a BE hog for an SLO job; the hog must requeue, restart
  // later, and complete with a preemption count of >= 1.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  PrioScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  JobSpec hog = SimpleBeJob(1, 0.0, 300.0, 4);
  jobs.push_back(hog);
  jobs.push_back(SimpleSloJob(2, 50.0, 100.0, 4, 50.0));
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  const JobRecord* hog_rec = nullptr;
  const JobRecord* slo_rec = nullptr;
  for (const JobRecord& j : result.jobs) {
    (j.spec.id == 1 ? hog_rec : slo_rec) = &j;
  }
  ASSERT_NE(hog_rec, nullptr);
  ASSERT_NE(slo_rec, nullptr);
  EXPECT_GE(hog_rec->preemptions, 1);
  EXPECT_EQ(hog_rec->status, JobStatus::kCompleted);
  EXPECT_EQ(slo_rec->status, JobStatus::kCompleted);
  EXPECT_FALSE(slo_rec->MissedDeadline());
  // The hog's completing run started after the SLO job finished.
  EXPECT_GE(hog_rec->start_time, slo_rec->finish_time - 1e-9);
  EXPECT_GE(result.total_preemptions, 1);
}

TEST(SimulatorTest, MigrationPreemptionPreservesProgress) {
  // Same scenario as PreemptionRequeuesAndRestarts, but with resume
  // semantics: the hog's second run only covers the remaining work, so it
  // finishes earlier than a full restart would, and its completed work counts
  // both runs.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 300.0, 4),
                               SimpleSloJob(2, 50.0, 100.0, 4, 50.0)};
  SimOptions kill;
  kill.cycle_period = 5.0;
  kill.drain_limit = Hours(10.0);
  SimOptions resume = kill;
  resume.preemption_resumes = true;

  PrioScheduler s1(cluster);
  const SimResult killed = Simulator(cluster, &s1, jobs, kill).Run();
  PrioScheduler s2(cluster);
  const SimResult resumed = Simulator(cluster, &s2, jobs, resume).Run();

  const auto hog_of = [](const SimResult& r) {
    for (const JobRecord& j : r.jobs) {
      if (j.spec.id == 1) {
        return j;
      }
    }
    return JobRecord{};
  };
  const JobRecord hog_killed = hog_of(killed);
  const JobRecord hog_resumed = hog_of(resumed);
  ASSERT_GE(hog_killed.preemptions, 1);
  ASSERT_GE(hog_resumed.preemptions, 1);
  EXPECT_LT(hog_resumed.finish_time, hog_killed.finish_time);
  // Work accounting: resumed run credits both segments (~300 node-seconds x4
  // plus nothing double-counted; killed restart also totals 4x300 of *useful*
  // work but burned extra cluster time).
  EXPECT_NEAR(hog_resumed.completed_work, 4 * 300.0, 4 * 60.0);
}

TEST(SimulatorTest, HighFidelityAddsOverheadAndJitter) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  SimOptions ideal;
  ideal.cycle_period = 2.0;
  SimOptions hf = ideal;
  hf.fidelity = SimFidelity::kHighFidelity;
  hf.seed = 99;

  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 100.0, 1)};
  GreedyFifoScheduler s1(cluster);
  const SimResult ideal_result = Simulator(cluster, &s1, jobs, ideal).Run();
  GreedyFifoScheduler s2(cluster);
  const SimResult hf_result = Simulator(cluster, &s2, jobs, hf).Run();

  const double ideal_runtime =
      ideal_result.jobs[0].finish_time - ideal_result.jobs[0].start_time;
  const double hf_runtime = hf_result.jobs[0].finish_time - hf_result.jobs[0].start_time;
  EXPECT_NEAR(ideal_runtime, 100.0, 1e-9);
  EXPECT_NE(hf_runtime, 100.0);        // Jitter + overhead + heartbeat.
  EXPECT_GT(hf_runtime, 80.0);         // ...but in a sane band.
  EXPECT_LT(hf_runtime, 130.0);
  // Heartbeat quantization: finish lands on a 3s grid.
  const double phase = std::fmod(hf_result.jobs[0].finish_time, 3.0);
  EXPECT_LT(std::min(phase, 3.0 - phase), 1e-6);
}

// A scripted scheduler that abandons every SLO job at its first cycle.
class AbandoningScheduler : public Scheduler {
 public:
  void OnJobArrival(const JobSpec& spec, Time) override { pending_.push_back(spec); }
  void OnJobStarted(JobId, int, Time) override {}
  void OnJobFinished(JobId, Time, Duration) override {}
  void OnJobPreempted(JobId, Time) override {}
  CycleResult RunCycle(Time, const ClusterStateView&) override {
    CycleResult result;
    for (const JobSpec& spec : pending_) {
      if (spec.is_slo()) {
        result.abandon.push_back(spec.id);
      }
    }
    pending_.clear();
    return result;
  }
  std::string name() const override { return "abandoner"; }

 private:
  std::vector<JobSpec> pending_;
};

TEST(SimulatorTest, AbandonedJobsRetiredAndCountedAsMisses) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  AbandoningScheduler sched;
  std::vector<JobSpec> jobs = {SimpleSloJob(1, 0.0, 60.0, 1, 20.0),
                               SimpleSloJob(2, 5.0, 60.0, 1, 20.0)};
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 1000.0;
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  for (const JobRecord& job : result.jobs) {
    EXPECT_EQ(job.status, JobStatus::kAbandoned);
    EXPECT_TRUE(job.MissedDeadline());
    EXPECT_DOUBLE_EQ(job.completed_work, 0.0);
  }
  const RunMetrics m = ComputeMetrics(result, "abandoner");
  EXPECT_EQ(m.abandoned, 2);
  EXPECT_EQ(m.slo_missed, 2);
  // The simulation ends promptly once everything is retired (no infinite
  // cycling on dead jobs).
  EXPECT_LT(result.end_time, 100.0);
}

TEST(SimulatorTest, UnfinishedJobsMarkedAtHardStop) {
  // Drain limit 0: anything not completed by the last arrival is unfinished.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  GreedyFifoScheduler sched(cluster);
  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 10000.0, 1),
                               SimpleBeJob(2, 1.0, 10000.0, 1)};
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 100.0;
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  int unfinished = 0;
  for (const JobRecord& j : result.jobs) {
    if (j.status == JobStatus::kUnfinished) {
      ++unfinished;
    }
  }
  EXPECT_EQ(unfinished, 2);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(SimpleBeJob(i + 1, i * 5.0, 60.0, 2));
  }
  SimOptions options;
  options.fidelity = SimFidelity::kHighFidelity;
  options.seed = 1234;
  GreedyFifoScheduler s1(cluster);
  GreedyFifoScheduler s2(cluster);
  const SimResult a = Simulator(cluster, &s1, jobs, options).Run();
  const SimResult b = Simulator(cluster, &s2, jobs, options).Run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
  }
}

TEST(SimulatorFaultTest, ChaosOffIsAStrictNoOp) {
  // Default fault options: every fault metric stays zero and the run matches
  // a pre-fault-subsystem simulation (full dynamics covered by the property
  // tests; here we pin the observability fields).
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 100.0, 2)}, options);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.tasks_killed_by_faults, 0);
  EXPECT_EQ(result.fault_node_events, 0);
  EXPECT_EQ(result.stalled_cycles, 0);
  EXPECT_DOUBLE_EQ(result.rework_node_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.node_downtime_fraction, 0.0);
  EXPECT_TRUE(result.fault_events.empty());
  EXPECT_EQ(result.jobs[0].fault_kills, 0);
}

TEST(SimulatorFaultTest, NodeCrashKillsRequeuesAndRepairRestarts) {
  // 2-node group, one 2-task job started at t=0. A crash at t=30 must evict
  // the gang (one of its nodes died), a repair at t=60 restores capacity, and
  // the job restarts from scratch and completes.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 2000.0;
  options.fault_events = {{30.0, FaultKind::kNodeDown, 0, 1},
                          {60.0, FaultKind::kNodeUp, 0, 1}};
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 100.0, 2)}, options);
  const SimResult result = sim.Run();
  const JobRecord& job = result.jobs[0];
  EXPECT_EQ(job.status, JobStatus::kCompleted);
  EXPECT_EQ(job.fault_kills, 1);
  EXPECT_EQ(job.preemptions, 0);  // Fault kills are not preemptions.
  ASSERT_EQ(job.runs.size(), 2u);
  EXPECT_FALSE(job.runs[0].completed);
  EXPECT_DOUBLE_EQ(job.runs[0].end, 30.0);
  EXPECT_GE(job.runs[1].start, 60.0);  // Cannot restart while a node is down.
  EXPECT_TRUE(job.runs[1].completed);
  EXPECT_EQ(result.tasks_killed_by_faults, 1);
  EXPECT_EQ(result.fault_node_events, 2);
  // The killed run occupied 2 nodes for 30s: all rework.
  EXPECT_NEAR(result.rework_node_seconds, 2 * 30.0, 1e-9);
  // 1 of 2 nodes down for 30s of the run.
  EXPECT_GT(result.node_downtime_fraction, 0.0);
  EXPECT_NEAR(result.node_downtime_fraction * 2.0 * result.end_time, 30.0, 1e-6);
  // Completed work counts only the completing run.
  EXPECT_NEAR(job.completed_work, 2 * 100.0, 1e-6);
}

TEST(SimulatorFaultTest, FaultKillExactlyAtDrainLimitIsIncomplete) {
  // Regression: the job's completion and a crash both land exactly at the
  // hard stop. The crash was queued first (pre-materialized schedule), so the
  // job is killed at the boundary and must count as incomplete — never as a
  // completion that sneaks in at the same timestamp.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 500.0;  // Last arrival t=0: hard stop at exactly 500.
  options.fault_events = {{500.0, FaultKind::kNodeDown, 0, 1}};
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 500.0, 1)}, options);
  const SimResult result = sim.Run();
  const JobRecord& job = result.jobs[0];
  EXPECT_EQ(job.status, JobStatus::kUnfinished);
  EXPECT_EQ(job.fault_kills, 1);
  EXPECT_DOUBLE_EQ(job.completed_work, 0.0);
  EXPECT_EQ(result.tasks_killed_by_faults, 1);
}

TEST(SimulatorFaultTest, CompletionExactlyAtDrainLimitCompletes) {
  // The flip side of the boundary: a completion event landing exactly at the
  // hard stop is still processed (events strictly beyond it are not).
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 500.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 500.0, 1)}, options);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.jobs[0].status, JobStatus::kCompleted);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_time, 500.0);
}

TEST(SimulatorFaultTest, InjectedTaskKillsTurnAllWorkIntoRework) {
  // kill_prob = 1: every attempt dies mid-run, so the job can never finish;
  // everything it consumed is rework and goodput is zero.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 300.0;
  options.faults.task_kill_prob = 1.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 100.0, 2)}, options);
  const SimResult result = sim.Run();
  const JobRecord& job = result.jobs[0];
  EXPECT_NE(job.status, JobStatus::kCompleted);
  EXPECT_GE(job.fault_kills, 2);  // Killed, requeued, killed again, ...
  EXPECT_GT(result.rework_node_seconds, 0.0);
  const RunMetrics m = ComputeMetrics(result, "chaos");
  EXPECT_EQ(m.tasks_killed_by_faults, job.fault_kills);
  EXPECT_DOUBLE_EQ(m.goodput_machine_hours, 0.0);
  EXPECT_DOUBLE_EQ(m.rework_ratio, 1.0);
}

TEST(SimulatorFaultTest, StragglerInflatesRuntimeDeterministically) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 2000.0;
  options.faults.straggler_prob = 1.0;
  options.faults.straggler_factor = 3.0;
  GreedyFifoScheduler s1(cluster);
  const SimResult a = Simulator(cluster, &s1, {SimpleBeJob(1, 0.0, 100.0, 2)}, options).Run();
  GreedyFifoScheduler s2(cluster);
  const SimResult b = Simulator(cluster, &s2, {SimpleBeJob(1, 0.0, 100.0, 2)}, options).Run();
  const double runtime_a = a.jobs[0].finish_time - a.jobs[0].start_time;
  EXPECT_EQ(a.jobs[0].status, JobStatus::kCompleted);
  EXPECT_GT(runtime_a, 100.0);  // Inflated...
  EXPECT_LE(runtime_a, 300.0);  // ...within the factor cap.
  EXPECT_DOUBLE_EQ(runtime_a, b.jobs[0].finish_time - b.jobs[0].start_time);
}

TEST(SimulatorFaultTest, CycleStallsDelayScheduling) {
  // Every cycle stalled: the scheduler never gets to run, so the job starves
  // until the hard stop while the stall counter climbs.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 200.0;
  options.faults.cycle_stall_prob = 1.0;
  options.faults.cycle_stall = 30.0;
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 50.0, 1)}, options);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.jobs[0].status, JobStatus::kUnfinished);
  EXPECT_GE(result.stalled_cycles, 2);
  EXPECT_TRUE(result.cycles.empty());  // No cycle ever reached the scheduler.
}

TEST(SimulatorFaultTest, ResumeModeFaultKillLosesCurrentRunProgress) {
  // Migration-resume mode banks progress on *preemption*, but a crash takes
  // the in-memory state with it: the restarted run must redo everything.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  GreedyFifoScheduler sched(cluster);
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = 2000.0;
  options.preemption_resumes = true;
  options.fault_events = {{40.0, FaultKind::kNodeDown, 0, 1},
                          {50.0, FaultKind::kNodeUp, 0, 1}};
  Simulator sim(cluster, &sched, {SimpleBeJob(1, 0.0, 100.0, 1)}, options);
  const SimResult result = sim.Run();
  const JobRecord& job = result.jobs[0];
  ASSERT_EQ(job.status, JobStatus::kCompleted);
  ASSERT_EQ(job.fault_kills, 1);
  // Restart at >= 50 redoes the full 100s (nothing banked from the crash).
  EXPECT_GE(job.finish_time, 150.0 - 1e-9);
  EXPECT_NEAR(job.finish_time - job.start_time, 100.0, 1e-9);
  EXPECT_NEAR(result.rework_node_seconds, 40.0, 1e-9);
}

TEST(SimulatorFaultTest, ResumeModeSurvivesRequeueStorm) {
  // Satellite regression: migration-style preemption under a storm of SLO
  // arrivals that repeatedly evict a BE hog. Progress banking must neither
  // lose nor double-count work across many requeues.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  PrioScheduler sched(cluster);
  std::vector<JobSpec> jobs = {SimpleBeJob(1, 0.0, 500.0, 4)};
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(SimpleSloJob(10 + i, 20.0 + 80.0 * i, 50.0, 4, 60.0));
  }
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(10.0);
  options.preemption_resumes = true;
  Simulator sim(cluster, &sched, jobs, options);
  const SimResult result = sim.Run();
  const JobRecord* hog = nullptr;
  for (const JobRecord& j : result.jobs) {
    EXPECT_EQ(j.status, JobStatus::kCompleted) << "job " << j.spec.id;
    if (j.spec.id == 1) {
      hog = &j;
    }
  }
  ASSERT_NE(hog, nullptr);
  EXPECT_GE(hog->preemptions, 3);
  ASSERT_GE(hog->runs.size(), 4u);
  // Banked progress: total useful work stays ~ the job's true work — each
  // resumed run only covers the remainder, so the sum cannot balloon.
  EXPECT_NEAR(hog->completed_work, 4 * 500.0, 4 * 60.0);
  // Occupancy sanity: runs never overlap an SLO job's gang (4 tasks each on
  // a 4-node group means strict alternation).
  for (size_t i = 1; i < hog->runs.size(); ++i) {
    EXPECT_GE(hog->runs[i].start, hog->runs[i - 1].end - 1e-9);
  }
}

TEST(JobRecordTest, MissedDeadlineSemantics) {
  JobRecord rec;
  rec.spec = SimpleSloJob(1, 0.0, 100.0, 1, 20.0);
  rec.status = JobStatus::kCompleted;
  rec.finish_time = 115.0;
  EXPECT_FALSE(rec.MissedDeadline());  // Deadline is 120.
  rec.finish_time = 125.0;
  EXPECT_TRUE(rec.MissedDeadline());
  rec.status = JobStatus::kAbandoned;
  EXPECT_TRUE(rec.MissedDeadline());
  rec.spec.type = JobType::kBestEffort;
  EXPECT_FALSE(rec.MissedDeadline());  // BE jobs have no deadline.
}

}  // namespace
}  // namespace threesigma
