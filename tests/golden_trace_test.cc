// Golden-trace regression harness.
//
// Each case runs a small, fully deterministic 3Sigma simulation with the
// decision log enabled and diffs the per-cycle decision CSV
// (cycle,sim_time,pending,running,starts,preempts,abandons,deferred) against
// a committed golden in tests/golden/. Any change to scheduling behavior —
// intentional or not — shows up as a per-cycle diff here before it shows up
// as a fuzzy end-metric shift.
//
// Updating goldens after an INTENTIONAL scheduling change:
//
//   THREESIGMA_UPDATE_GOLDENS=1 ./build/tests/golden_trace_test
//
// rewrites every golden in the source tree (the GOLDEN_DIR compile
// definition points at tests/golden/); inspect the diff and commit it with
// the change that caused it. A missing golden fails the test rather than
// silently passing — run the update command once when adding a case.

#include <gtest/gtest.h>

#include <string>

#include "src/common/env.h"
#include "src/core/experiment.h"
#include "src/obs/obs.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

// Small two-group cluster and a ~6-minute google workload: big enough to
// exercise starts, deferrals, preemptions, and abandonment, small enough to
// keep three runs in the tier-1 budget.
ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(2, 16);
  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Minutes(6.0);
  config.workload.load = 1.4;
  config.workload.seed = 7;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 7;
  config.sched.cycle_period = 10.0;
  config.sched.solver_threads = 1;
  config.sched.solver_basis_warmstart = false;
  return config;
}

std::string DecisionCsvFor(const ExperimentConfig& config) {
  obs::ResetAll();
  obs::Options options;
  options.decisions = true;
  obs::Configure(options);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  (void)SimulateSystem(SystemKind::kThreeSigma, config, workload);
  const std::string csv = obs::DecisionLog::Global().ToCsvString();
  obs::ResetAll();
  return csv;
}

void CheckGolden(const std::string& name, const ExperimentConfig& config) {
  const std::string actual = DecisionCsvFor(config);
  ASSERT_GT(actual.size(),
            std::string("cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n")
                .size())
      << "decision log came back empty";
  const std::string path = std::string(GOLDEN_DIR) + "/" + name + ".csv";
  if (GetEnvInt("THREESIGMA_UPDATE_GOLDENS", 0) != 0) {
    std::string error;
    ASSERT_TRUE(WriteFileAtomic(path, actual, &error)) << error;
    std::cout << "updated golden " << path << "\n";
    return;
  }
  std::string expected;
  std::string error;
  ASSERT_TRUE(ReadFileToString(path, &expected, &error))
      << "missing golden '" << path
      << "' — generate it with THREESIGMA_UPDATE_GOLDENS=1 (" << error << ")";
  EXPECT_EQ(expected, actual)
      << "per-cycle decisions drifted from " << path
      << "; if the scheduling change is intentional, regenerate with "
         "THREESIGMA_UPDATE_GOLDENS=1 and commit the new golden";
}

TEST(GoldenTraceTest, Baseline) { CheckGolden("baseline", BaseConfig()); }

TEST(GoldenTraceTest, FaultsOn) {
  ExperimentConfig config = BaseConfig();
  config.sim.faults.node_mttf = 1500.0;
  config.sim.faults.node_mttr = 600.0;
  config.sim.faults.task_kill_prob = 0.05;
  config.sim.faults.seed = 1;
  CheckGolden("faults_on", config);
}

TEST(GoldenTraceTest, WarmStartFourThreads) {
  ExperimentConfig config = BaseConfig();
  config.sched.solver_basis_warmstart = true;
  config.sched.solver_threads = 4;
  CheckGolden("warm_start_4threads", config);
}

}  // namespace
}  // namespace threesigma
