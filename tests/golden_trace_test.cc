// Golden-trace regression harness.
//
// Each case runs a small, fully deterministic 3Sigma simulation with the
// decision log enabled and diffs the per-cycle decision CSV
// (cycle,sim_time,pending,running,starts,preempts,abandons,deferred) against
// a committed golden in tests/golden/. Any change to scheduling behavior —
// intentional or not — shows up as a per-cycle diff here before it shows up
// as a fuzzy end-metric shift.
//
// Updating goldens after an INTENTIONAL scheduling change:
//
//   THREESIGMA_UPDATE_GOLDENS=1 ./build/tests/golden_trace_test
//
// rewrites every golden in the source tree (the GOLDEN_DIR compile
// definition points at tests/golden/); inspect the diff and commit it with
// the change that caused it. A missing golden fails the test rather than
// silently passing — run the update command once when adding a case.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/core/experiment.h"
#include "src/obs/obs.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

// Small two-group cluster and a ~6-minute google workload: big enough to
// exercise starts, deferrals, preemptions, and abandonment, small enough to
// keep three runs in the tier-1 budget.
ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(2, 16);
  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Minutes(6.0);
  config.workload.load = 1.4;
  config.workload.seed = 7;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 7;
  config.sched.cycle_period = 10.0;
  config.sched.solver_threads = 1;
  config.sched.solver_basis_warmstart = false;
  return config;
}

std::string DecisionCsvFor(const ExperimentConfig& config) {
  obs::ResetAll();
  obs::Options options;
  options.decisions = true;
  obs::Configure(options);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  (void)SimulateSystem(SystemKind::kThreeSigma, config, workload);
  const std::string csv = obs::DecisionLog::Global().ToCsvString();
  obs::ResetAll();
  return csv;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// A unified-diff excerpt around the first divergence: a few lines of shared
// context, then up to `max_diff_lines` of -golden/+actual pairs. Line-level
// and human-readable, unlike gtest's byte-offset dump of two multi-KB blobs.
std::string UnifiedDiffExcerpt(const std::string& expected, const std::string& actual,
                               size_t max_diff_lines = 10) {
  const std::vector<std::string> golden = SplitLines(expected);
  const std::vector<std::string> got = SplitLines(actual);
  size_t first = 0;
  while (first < golden.size() && first < got.size() && golden[first] == got[first]) {
    ++first;
  }
  const size_t context_start = first >= 3 ? first - 3 : 0;
  const size_t last = std::min({first + max_diff_lines, golden.size(), got.size()});
  std::ostringstream out;
  out << "@@ golden line " << (first + 1) << " (of " << golden.size() << " golden / "
      << got.size() << " actual lines) @@\n";
  for (size_t i = context_start; i < first; ++i) {
    out << "  " << golden[i] << "\n";
  }
  for (size_t i = first; i < last; ++i) {
    if (i < golden.size() && (i >= got.size() || golden[i] != got[i])) {
      out << "- " << golden[i] << "\n";
    }
    if (i < got.size() && (i >= golden.size() || golden[i] != got[i])) {
      out << "+ " << got[i] << "\n";
    }
  }
  if (last < golden.size() || last < got.size()) {
    out << "  ... (" << (std::max(golden.size(), got.size()) - last)
        << " more lines not shown)\n";
  }
  return out.str();
}

void CheckGolden(const std::string& name, const ExperimentConfig& config) {
  const std::string actual = DecisionCsvFor(config);
  ASSERT_GT(actual.size(),
            std::string("cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n")
                .size())
      << "decision log came back empty";
  const std::string path = std::string(GOLDEN_DIR) + "/" + name + ".csv";
  if (GetEnvInt("THREESIGMA_UPDATE_GOLDENS", 0) != 0) {
    std::string error;
    ASSERT_TRUE(WriteFileAtomic(path, actual, &error)) << error;
    std::cout << "updated golden " << path << "\n";
    return;
  }
  std::string expected;
  std::string error;
  ASSERT_TRUE(ReadFileToString(path, &expected, &error))
      << "missing golden '" << path
      << "' — generate it with THREESIGMA_UPDATE_GOLDENS=1 (" << error << ")";
  EXPECT_TRUE(expected == actual)
      << "per-cycle decisions drifted from " << path << "\n"
      << UnifiedDiffExcerpt(expected, actual)
      << "if the scheduling change is intentional, regenerate and commit the "
         "goldens with:\n  THREESIGMA_UPDATE_GOLDENS=1 ./build/tests/golden_trace_test";
}

TEST(GoldenTraceTest, Baseline) { CheckGolden("baseline", BaseConfig()); }

TEST(GoldenTraceTest, FaultsOn) {
  ExperimentConfig config = BaseConfig();
  config.sim.faults.node_mttf = 1500.0;
  config.sim.faults.node_mttr = 600.0;
  config.sim.faults.task_kill_prob = 0.05;
  config.sim.faults.seed = 1;
  CheckGolden("faults_on", config);
}

TEST(GoldenTraceTest, WarmStartFourThreads) {
  ExperimentConfig config = BaseConfig();
  config.sched.solver_basis_warmstart = true;
  config.sched.solver_threads = 4;
  CheckGolden("warm_start_4threads", config);
}

}  // namespace
}  // namespace threesigma
