// End-to-end integration tests: every Table 1 system over a shared small
// workload, checking the paper's qualitative results hold and the system
// plumbing (pre-training, preemption, abandonment, metrics) is sound.

#include <gtest/gtest.h>

#include "src/core/experiment.h"

namespace threesigma {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(4, 16);  // 64 nodes for test speed.
  config.workload.duration = Minutes(30.0);
  config.workload.load = 1.3;
  config.workload.model_sample_jobs = 1200;
  config.workload.pretrain_jobs = 1500;
  config.workload.seed = 5;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 5;
  config.sched.cycle_period = config.sim.cycle_period;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ExperimentConfig(SmallConfig());
    workload_ = new GeneratedWorkload(GenerateWorkload(config_->cluster, config_->workload));
  }
  static void TearDownTestSuite() {
    delete config_;
    delete workload_;
    config_ = nullptr;
    workload_ = nullptr;
  }

  static ExperimentConfig* config_;
  static GeneratedWorkload* workload_;
};

ExperimentConfig* IntegrationTest::config_ = nullptr;
GeneratedWorkload* IntegrationTest::workload_ = nullptr;

TEST_F(IntegrationTest, AllSystemsRunCleanly) {
  for (SystemKind kind :
       {SystemKind::kThreeSigma, SystemKind::kThreeSigmaNoDist, SystemKind::kThreeSigmaNoOE,
        SystemKind::kThreeSigmaNoAdapt, SystemKind::kPointPerfEst, SystemKind::kPointRealEst,
        SystemKind::kPrio}) {
    const RunMetrics m = RunSystem(kind, *config_, *workload_);
    EXPECT_EQ(m.system, SystemName(kind));
    EXPECT_EQ(m.slo_jobs + m.slo_censored + m.be_jobs,
              static_cast<int>(workload_->jobs.size()));
    EXPECT_EQ(m.rejected_placements, 0) << m.system << ": scheduler overcommitted";
    EXPECT_GT(m.goodput_machine_hours, 0.0) << m.system;
    EXPECT_GT(m.slo_completed + m.be_completed, 0) << m.system;
  }
}

TEST_F(IntegrationTest, ThreeSigmaBeatsPointRealEst) {
  // The headline result (Fig. 1/6): full distributions beat real point
  // estimates on SLO miss rate.
  const RunMetrics ts = RunSystem(SystemKind::kThreeSigma, *config_, *workload_);
  const RunMetrics point = RunSystem(SystemKind::kPointRealEst, *config_, *workload_);
  EXPECT_LT(ts.slo_miss_rate_percent, point.slo_miss_rate_percent);
}

TEST_F(IntegrationTest, ThreeSigmaNearPerfectEstimates) {
  const RunMetrics ts = RunSystem(SystemKind::kThreeSigma, *config_, *workload_);
  const RunMetrics perfect = RunSystem(SystemKind::kPointPerfEst, *config_, *workload_);
  // "Approaches the performance of a hypothetical scheduler with perfect
  // estimates": within a few points either way on this small workload.
  EXPECT_LT(ts.slo_miss_rate_percent, perfect.slo_miss_rate_percent + 10.0);
}

TEST_F(IntegrationTest, SimulationIsDeterministic) {
  const RunMetrics a = RunSystem(SystemKind::kThreeSigma, *config_, *workload_);
  const RunMetrics b = RunSystem(SystemKind::kThreeSigma, *config_, *workload_);
  EXPECT_DOUBLE_EQ(a.slo_miss_rate_percent, b.slo_miss_rate_percent);
  EXPECT_DOUBLE_EQ(a.goodput_machine_hours, b.goodput_machine_hours);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST_F(IntegrationTest, HighFidelityModeRuns) {
  ExperimentConfig hf = *config_;
  hf.sim.fidelity = SimFidelity::kHighFidelity;
  const RunMetrics m = RunSystem(SystemKind::kThreeSigma, hf, *workload_);
  EXPECT_EQ(m.rejected_placements, 0);
  // Table 2: real-vs-sim deltas are small.
  const RunMetrics ideal = RunSystem(SystemKind::kThreeSigma, *config_, *workload_);
  EXPECT_LT(std::abs(m.slo_miss_rate_percent - ideal.slo_miss_rate_percent), 15.0);
}

TEST_F(IntegrationTest, SyntheticSystemRuns) {
  SystemInstance instance =
      MakeSyntheticSystem(0.0, 0.2, config_->cluster, config_->sched, 77);
  const RunMetrics m =
      RunSystemInstance(instance, "synthetic", *config_, *workload_, /*pretrain=*/false);
  EXPECT_EQ(m.rejected_placements, 0);
  EXPECT_GT(m.slo_completed, 0);
}

TEST_F(IntegrationTest, SolverStatsPopulated) {
  const SimResult result = SimulateSystem(SystemKind::kThreeSigma, *config_, *workload_);
  ASSERT_FALSE(result.cycles.empty());
  bool any_milp = false;
  for (const CycleStats& c : result.cycles) {
    if (c.milp_variables > 0) {
      any_milp = true;
      EXPECT_GT(c.milp_rows, 0);
    }
  }
  EXPECT_TRUE(any_milp);
}

TEST_F(IntegrationTest, PaddedPointSystemRuns) {
  // The §2.2 stochastic-scheduler baseline: padding must not break anything
  // and k=0 padding must behave like a plain point scheduler.
  SystemInstance padded = MakePaddedPointSystem(1.0, config_->cluster, config_->sched);
  const RunMetrics m = RunSystemInstance(padded, "padded-1sigma", *config_, *workload_);
  EXPECT_EQ(m.rejected_placements, 0);
  EXPECT_GT(m.slo_completed + m.be_completed, 0);
}

TEST_F(IntegrationTest, GreedyBackendRunsAndNeverPreempts) {
  ExperimentConfig c = *config_;
  c.sched.backend = SolverBackend::kGreedy;
  const RunMetrics m = RunSystem(SystemKind::kThreeSigma, c, *workload_);
  EXPECT_EQ(m.rejected_placements, 0);
  EXPECT_EQ(m.preemptions, 0) << "greedy backend cannot preempt";
  EXPECT_GT(m.slo_completed, 0);
}

TEST_F(IntegrationTest, MigrationPreemptionImprovesOrMatchesBeGoodput) {
  ExperimentConfig kill = *config_;
  ExperimentConfig resume = *config_;
  resume.sim.preemption_resumes = true;
  const RunMetrics a = RunSystem(SystemKind::kPrio, kill, *workload_);
  const RunMetrics b = RunSystem(SystemKind::kPrio, resume, *workload_);
  // Resuming preempted work should not reduce total completed work by more
  // than noise.
  EXPECT_GE(b.goodput_machine_hours, a.goodput_machine_hours * 0.9);
}

TEST(SystemsTest, NamesMatchTable1) {
  EXPECT_STREQ(SystemName(SystemKind::kThreeSigma), "3Sigma");
  EXPECT_STREQ(SystemName(SystemKind::kPointPerfEst), "PointPerfEst");
  EXPECT_STREQ(SystemName(SystemKind::kPointRealEst), "PointRealEst");
  EXPECT_STREQ(SystemName(SystemKind::kPrio), "Prio");
  EXPECT_STREQ(SystemName(SystemKind::kThreeSigmaNoDist), "3SigmaNoDist");
  EXPECT_STREQ(SystemName(SystemKind::kThreeSigmaNoOE), "3SigmaNoOE");
  EXPECT_STREQ(SystemName(SystemKind::kThreeSigmaNoAdapt), "3SigmaNoAdapt");
}

TEST(SystemsTest, ConfigurationsMatchTable1) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  const DistSchedulerConfig base;
  {
    SystemInstance s = MakeSystem(SystemKind::kThreeSigma, cluster, base);
    auto* sched = dynamic_cast<DistributionScheduler*>(s.scheduler.get());
    ASSERT_NE(sched, nullptr);
    EXPECT_TRUE(sched->config().use_distribution);
    EXPECT_TRUE(sched->config().overestimate_handling);
    EXPECT_TRUE(sched->config().adaptive_oe);
  }
  {
    SystemInstance s = MakeSystem(SystemKind::kPointRealEst, cluster, base);
    auto* sched = dynamic_cast<DistributionScheduler*>(s.scheduler.get());
    ASSERT_NE(sched, nullptr);
    EXPECT_FALSE(sched->config().use_distribution);
    EXPECT_FALSE(sched->config().overestimate_handling);
  }
  {
    SystemInstance s = MakeSystem(SystemKind::kPrio, cluster, base);
    EXPECT_NE(dynamic_cast<PrioScheduler*>(s.scheduler.get()), nullptr);
  }
}

}  // namespace
}  // namespace threesigma
