// ClusterTimeline and report-export tests.

#include <sstream>

#include <gtest/gtest.h>

#include "src/metrics/report.h"
#include "src/metrics/timeline.h"
#include "src/sched/prio_scheduler.h"

namespace threesigma {
namespace {

JobRecord MakeJob(JobId id, int tasks, std::vector<JobRun> runs, JobStatus status) {
  JobRecord rec;
  rec.spec.id = id;
  rec.spec.num_tasks = tasks;
  rec.spec.user = "u";
  rec.spec.name = "j";
  rec.status = status;
  if (!runs.empty()) {
    rec.group = runs.back().group;
    rec.start_time = runs.back().start;
    if (status == JobStatus::kCompleted) {
      rec.finish_time = runs.back().end;
      rec.completed_work = tasks * (runs.back().end - runs.back().start);
    }
  }
  rec.runs = std::move(runs);
  return rec;
}

TEST(ClusterTimelineTest, SingleJobOccupancy) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  SimResult result;
  result.end_time = 100.0;
  result.jobs.push_back(
      MakeJob(1, 2, {JobRun{0, 25.0, 75.0, true}}, JobStatus::kCompleted));
  ClusterTimeline timeline(cluster, result, /*samples=*/101);
  // Occupied half the run on group 0 with 2 of 8 nodes.
  EXPECT_EQ(timeline.occupancy(0, 50), 2);   // t=50.
  EXPECT_EQ(timeline.occupancy(0, 10), 0);   // t=10.
  EXPECT_EQ(timeline.occupancy(1, 50), 0);   // Other group idle.
  EXPECT_NEAR(timeline.MeanGroupUtilization(0), 0.5 * 0.5, 0.02);
  EXPECT_NEAR(timeline.MeanUtilization(), 0.25 * 0.5, 0.02);
}

TEST(ClusterTimelineTest, PreemptedRunsCounted) {
  const ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  SimResult result;
  result.end_time = 100.0;
  // First run 0-40 preempted on group 0, resumed 60-100.
  result.jobs.push_back(MakeJob(
      1, 4, {JobRun{0, 0.0, 40.0, false}, JobRun{0, 60.0, 100.0, true}},
      JobStatus::kCompleted));
  ClusterTimeline timeline(cluster, result, 101);
  EXPECT_EQ(timeline.occupancy(0, 20), 4);
  EXPECT_EQ(timeline.occupancy(0, 50), 0);  // Gap between runs.
  EXPECT_EQ(timeline.occupancy(0, 80), 4);
}

TEST(ClusterTimelineTest, HalfOpenIntervals) {
  const ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  SimResult result;
  result.end_time = 10.0;
  // Back-to-back runs of two jobs on the same nodes must not double-count at
  // the shared boundary.
  result.jobs.push_back(MakeJob(1, 2, {JobRun{0, 0.0, 5.0, true}}, JobStatus::kCompleted));
  result.jobs.push_back(MakeJob(2, 2, {JobRun{0, 5.0, 10.0, true}}, JobStatus::kCompleted));
  ClusterTimeline timeline(cluster, result, 11);  // Samples exactly at integers.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(timeline.occupancy(0, i), 2) << "sample " << i;
  }
}

TEST(ClusterTimelineTest, RenderContainsGroupsAndMean) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 2);
  SimResult result;
  result.end_time = 60.0;
  result.jobs.push_back(MakeJob(1, 2, {JobRun{1, 0.0, 60.0, true}}, JobStatus::kCompleted));
  const std::string render = ClusterTimeline(cluster, result, 20).RenderAscii();
  EXPECT_NE(render.find("group-0"), std::string::npos);
  EXPECT_NE(render.find("group-1"), std::string::npos);
  EXPECT_NE(render.find("cluster mean utilization"), std::string::npos);
  // Group 1 fully busy -> '#' shades present.
  EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(ClusterTimelineTest, EndToEndFromSimulation) {
  // Run a real simulation and reconstruct its timeline: occupancy must stay
  // within capacity (CHECKed inside the constructor) and mean utilization
  // must reflect the work actually completed.
  ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  PrioScheduler sched(cluster);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    JobSpec spec;
    spec.id = i + 1;
    spec.name = "j" + std::to_string(i);
    spec.type = JobType::kBestEffort;
    spec.submit_time = i * 20.0;
    spec.true_runtime = 100.0;
    spec.num_tasks = 1 + i % 3;
    spec.utility = UtilityFunction::BestEffortLinear(1.0, spec.submit_time, 3600.0);
    spec.features = {"job=" + spec.name};
    jobs.push_back(std::move(spec));
  }
  SimOptions options;
  options.cycle_period = 5.0;
  options.drain_limit = Hours(2.0);
  const SimResult result = Simulator(cluster, &sched, jobs, options).Run();
  const ClusterTimeline timeline(cluster, result, 200);
  double total_work = 0.0;
  for (const JobRecord& job : result.jobs) {
    total_work += job.completed_work;
  }
  const double expected_util =
      total_work / (cluster.total_nodes() * std::max(result.end_time, 1e-9));
  EXPECT_NEAR(timeline.MeanUtilization(), expected_util, 0.05);
}

TEST(ReportTest, JobRecordsCsvShape) {
  SimResult result;
  result.end_time = 100.0;
  JobRecord rec = MakeJob(7, 3, {JobRun{0, 1.0, 11.0, true}}, JobStatus::kCompleted);
  rec.spec.type = JobType::kSlo;
  rec.spec.deadline = 20.0;
  rec.spec.submit_time = 0.5;
  rec.spec.true_runtime = 10.0;
  std::ostringstream os;
  WriteJobRecordsCsv(os, {rec});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("id,user,name,type"), std::string::npos);
  EXPECT_NE(csv.find("7,u,j,slo,3,0.5,10,20,completed,1,11,0,0,0,30,0"), std::string::npos)
      << csv;
}

TEST(ReportTest, RunMetricsCsvShape) {
  RunMetrics m;
  m.system = "3Sigma";
  m.slo_jobs = 10;
  m.slo_missed = 1;
  m.slo_miss_rate_percent = 10.0;
  std::ostringstream os;
  WriteRunMetricsCsv(os, {m});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("system,slo_jobs"), std::string::npos);
  EXPECT_NE(csv.find("3Sigma,10,0,0,1,10,"), std::string::npos) << csv;
}

TEST(MissBySlackTest, BucketsCorrectly) {
  SimResult result;
  result.end_time = 10000.0;
  auto slo_job = [&](double slack_pct, bool missed) {
    JobRecord rec;
    rec.spec.type = JobType::kSlo;
    rec.spec.submit_time = 0.0;
    rec.spec.true_runtime = 100.0;
    rec.spec.deadline = 100.0 * (1.0 + slack_pct / 100.0);
    rec.status = JobStatus::kCompleted;
    rec.start_time = 0.0;
    rec.finish_time = missed ? rec.spec.deadline + 1.0 : rec.spec.deadline - 1.0;
    return rec;
  };
  result.jobs.push_back(slo_job(25.0, true));
  result.jobs.push_back(slo_job(25.0, false));
  result.jobs.push_back(slo_job(75.0, false));
  const auto buckets = MissBySlack(result, {0.0, 50.0, 100.0});
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].jobs, 2);
  EXPECT_EQ(buckets[0].missed, 1);
  EXPECT_DOUBLE_EQ(buckets[0].miss_rate_percent, 50.0);
  EXPECT_EQ(buckets[1].jobs, 1);
  EXPECT_EQ(buckets[1].missed, 0);
}

}  // namespace
}  // namespace threesigma
