// Differential test layer for the wave-parallel branch-and-bound solver.
//
// Two hundred seeded random 0/1 programs (up to 12 binary variables, mixed
// <= and >= rows, positive and negative objective coefficients) are solved
//   (a) by exhaustive 2^n enumeration,
//   (b) by MilpSolver on 1 thread,
//   (c) by MilpSolver on 4 threads,
// and all three must agree on feasibility status and optimal objective to
// 1e-6. (b) and (c) must additionally agree *exactly* — same values vector,
// same node count, same incumbent-improvement objectives — because the wave
// schedule is deterministic in batch_width and independent of thread count.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/solver/lp_model.h"
#include "src/solver/milp.h"

namespace threesigma {
namespace {

struct BruteForceResult {
  bool feasible = false;
  double objective = 0.0;
};

// Exhaustive optimum of a pure-binary program; infeasible when no assignment
// satisfies every row.
BruteForceResult BruteForceBinary(const LpModel& model) {
  const int n = model.num_variables();
  BruteForceResult best;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<double> x(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      x[static_cast<size_t>(i)] = (mask >> i) & 1u ? 1.0 : 0.0;
    }
    if (!model.IsFeasible(x)) {
      continue;
    }
    const double obj = model.ObjectiveValue(x);
    if (!best.feasible || obj > best.objective) {
      best.feasible = true;
      best.objective = obj;
    }
  }
  return best;
}

// A random 0/1 program with the scheduler's row shapes plus adversarial
// extras: >= rows (preemption-credit-like), negative objective terms, and
// occasional infeasible row combinations.
LpModel RandomBinaryProgram(Rng& rng, std::vector<int>* int_vars) {
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  LpModel model;
  for (int i = 0; i < n; ++i) {
    const int var = model.AddVariable(0.0, 1.0, rng.Uniform(-4.0, 10.0));
    int_vars->push_back(var);
  }
  const int rows = static_cast<int>(rng.UniformInt(1, 8));
  for (int r = 0; r < rows; ++r) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) {
        terms.push_back({i, rng.Uniform(-2.0, 4.0)});
      }
    }
    if (terms.empty()) {
      terms.push_back({static_cast<int>(rng.UniformInt(0, n - 1)), 1.0});
    }
    if (rng.Bernoulli(0.25)) {
      // A >= row; a tight rhs sometimes makes the whole program infeasible,
      // which the solver must also detect at every thread count.
      model.AddRow(RowSense::kGreaterEqual, rng.Uniform(0.0, 3.0), std::move(terms));
    } else {
      model.AddRow(RowSense::kLessEqual, rng.Uniform(0.5, 6.0), std::move(terms));
    }
  }
  return model;
}

TEST(MilpDifferentialTest, MatchesBruteForceAt1And4Threads) {
  constexpr int kPrograms = 200;
  ThreadPool pool(4);
  int infeasible_seen = 0;
  for (int p = 0; p < kPrograms; ++p) {
    Rng rng(1000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    const LpModel model = RandomBinaryProgram(rng, &int_vars);
    const BruteForceResult reference = BruteForceBinary(model);

    // Unbudgeted search: the solver must prove optimality or infeasibility.
    MilpOptions serial;
    serial.num_threads = 1;
    MilpOptions parallel;
    parallel.pool = &pool;

    MilpSolver solver1(model, int_vars);
    const MilpSolution s1 = solver1.Solve(serial);
    MilpSolver solver4(model, int_vars);
    const MilpSolution s4 = solver4.Solve(parallel);

    if (!reference.feasible) {
      ++infeasible_seen;
      EXPECT_EQ(s1.status, MilpStatus::kInfeasible) << "program " << p;
      EXPECT_EQ(s4.status, MilpStatus::kInfeasible) << "program " << p;
      continue;
    }
    ASSERT_EQ(s1.status, MilpStatus::kOptimal) << "program " << p;
    ASSERT_EQ(s4.status, MilpStatus::kOptimal) << "program " << p;
    EXPECT_NEAR(s1.objective, reference.objective, 1e-6) << "program " << p;
    EXPECT_NEAR(s4.objective, reference.objective, 1e-6) << "program " << p;
    // The returned point must itself be feasible and integral.
    EXPECT_TRUE(model.IsFeasible(s1.values)) << "program " << p;
    for (double v : s1.values) {
      EXPECT_NEAR(v, std::round(v), 1e-6) << "program " << p;
    }

    // Thread-count independence is exact, not approximate: identical values,
    // explored-node count, and incumbent trajectory.
    EXPECT_EQ(s1.values, s4.values) << "program " << p;
    EXPECT_EQ(s1.nodes_explored, s4.nodes_explored) << "program " << p;
    ASSERT_EQ(s1.incumbent_improvements.size(), s4.incumbent_improvements.size())
        << "program " << p;
    for (size_t i = 0; i < s1.incumbent_improvements.size(); ++i) {
      EXPECT_DOUBLE_EQ(s1.incumbent_improvements[i].objective,
                       s4.incumbent_improvements[i].objective)
          << "program " << p;
    }
  }
  // The generator must actually exercise the infeasible path.
  EXPECT_GT(infeasible_seen, 0);
  EXPECT_LT(infeasible_seen, kPrograms / 2);
}

// Node budgets truncate the search identically at every thread count: the
// wave schedule (and therefore where the budget lands) is thread-independent.
TEST(MilpDifferentialTest, BudgetedSearchIsThreadCountInvariant) {
  ThreadPool pool(4);
  for (int p = 0; p < 40; ++p) {
    Rng rng(9000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    const LpModel model = RandomBinaryProgram(rng, &int_vars);

    MilpOptions serial;
    serial.num_threads = 1;
    serial.max_nodes = 5;
    MilpOptions parallel = serial;
    parallel.num_threads = 4;
    parallel.pool = &pool;

    MilpSolver solver1(model, int_vars);
    const MilpSolution s1 = solver1.Solve(serial);
    MilpSolver solver4(model, int_vars);
    const MilpSolution s4 = solver4.Solve(parallel);

    EXPECT_EQ(s1.status, s4.status) << "program " << p;
    EXPECT_EQ(s1.nodes_explored, s4.nodes_explored) << "program " << p;
    EXPECT_EQ(s1.max_queue_depth, s4.max_queue_depth) << "program " << p;
    if (s1.status != MilpStatus::kInfeasible) {
      EXPECT_DOUBLE_EQ(s1.objective, s4.objective) << "program " << p;
      EXPECT_EQ(s1.values, s4.values) << "program " << p;
    }
  }
}

// The warm start must survive parallelization: when it is optimal, every
// thread count returns it unchanged and reports warm_start_returned.
TEST(MilpDifferentialTest, WarmStartReturnedIdenticallyAcrossThreadCounts) {
  ThreadPool pool(4);
  for (int p = 0; p < 20; ++p) {
    Rng rng(500 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    const LpModel model = RandomBinaryProgram(rng, &int_vars);
    MilpSolver solver(model, int_vars);
    const MilpSolution cold = solver.Solve();
    if (cold.status != MilpStatus::kOptimal) {
      continue;
    }
    MilpOptions serial;
    serial.warm_start = cold.values;
    MilpOptions parallel = serial;
    parallel.pool = &pool;
    MilpSolver solver1(model, int_vars);
    const MilpSolution s1 = solver1.Solve(serial);
    MilpSolver solver4(model, int_vars);
    const MilpSolution s4 = solver4.Solve(parallel);
    ASSERT_EQ(s1.status, MilpStatus::kOptimal) << "program " << p;
    EXPECT_DOUBLE_EQ(s1.objective, cold.objective) << "program " << p;
    EXPECT_EQ(s1.values, s4.values) << "program " << p;
    EXPECT_EQ(s1.warm_start_returned, s4.warm_start_returned) << "program " << p;
  }
}

// Basis warm-starting is a pure accelerator: across the same 200 random 0/1
// programs, warm and cold runs must agree on status and objective, and —
// because the continuous random objective coefficients make the binary
// optimum unique almost surely — on the exact solution vector. (Node counts
// are NOT compared: a warm LP may surface a different optimal vertex of a
// degenerate relaxation and legitimately reorder the tree.)
TEST(MilpDifferentialTest, BasisWarmstartNeverChangesTheAnswer) {
  constexpr int kPrograms = 200;
  int warm_nodes_total = 0;
  for (int p = 0; p < kPrograms; ++p) {
    Rng rng(1000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    const LpModel model = RandomBinaryProgram(rng, &int_vars);

    MilpOptions warm_options;  // basis_warmstart defaults on.
    MilpOptions cold_options;
    cold_options.basis_warmstart = false;

    MilpSolver warm_solver(model, int_vars);
    const MilpSolution warm = warm_solver.Solve(warm_options);
    MilpSolver cold_solver(model, int_vars);
    const MilpSolution cold = cold_solver.Solve(cold_options);

    ASSERT_EQ(warm.status, cold.status) << "program " << p;
    if (warm.status == MilpStatus::kInfeasible) {
      continue;
    }
    EXPECT_DOUBLE_EQ(warm.objective, cold.objective) << "program " << p;
    EXPECT_EQ(warm.values, cold.values) << "program " << p;
    EXPECT_TRUE(model.IsFeasible(warm.values)) << "program " << p;
    EXPECT_EQ(cold.warm_started_nodes, 0) << "program " << p;
    warm_nodes_total += warm.warm_started_nodes;
  }
  // The sweep must actually exercise basis reuse, not just trivially agree.
  EXPECT_GT(warm_nodes_total, 0);
}

// Basis warm-starting composes with thread-count determinism: warm runs at 1
// and 4 threads are exactly identical (values, node counts, trajectories).
TEST(MilpDifferentialTest, BasisWarmstartIsThreadCountInvariant) {
  ThreadPool pool(4);
  for (int p = 0; p < 60; ++p) {
    Rng rng(1000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    const LpModel model = RandomBinaryProgram(rng, &int_vars);

    MilpOptions serial;  // basis_warmstart defaults on.
    serial.num_threads = 1;
    MilpOptions parallel = serial;
    parallel.pool = &pool;

    MilpSolver solver1(model, int_vars);
    const MilpSolution s1 = solver1.Solve(serial);
    MilpSolver solver4(model, int_vars);
    const MilpSolution s4 = solver4.Solve(parallel);

    EXPECT_EQ(s1.status, s4.status) << "program " << p;
    EXPECT_EQ(s1.nodes_explored, s4.nodes_explored) << "program " << p;
    EXPECT_EQ(s1.lp_iterations, s4.lp_iterations) << "program " << p;
    EXPECT_EQ(s1.warm_started_nodes, s4.warm_started_nodes) << "program " << p;
    if (s1.status != MilpStatus::kInfeasible) {
      EXPECT_DOUBLE_EQ(s1.objective, s4.objective) << "program " << p;
      EXPECT_EQ(s1.values, s4.values) << "program " << p;
    }
  }
}

}  // namespace
}  // namespace threesigma
