// Service-vs-batch equivalence: a workload fed through the RPC service layer
// (loopback transport, admission queue, batched injection) must produce a
// byte-identical per-cycle decision log to the batch simulator on the same
// jobs — across solver thread counts and regardless of whether the jobs
// arrive all upfront or trickle in between scheduling cycles.
//
// This is the service layer's core determinism claim: the transport, queue,
// and batching machinery may add latency but must never change a scheduling
// decision. The config mirrors tests/golden_trace_test.cc's BaseConfig so a
// drift here and a golden drift point at the same change.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/core/experiment.h"
#include "src/obs/obs.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/transport.h"

namespace threesigma {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(2, 16);
  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Minutes(6.0);
  config.workload.load = 1.4;
  config.workload.seed = 7;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 7;
  config.sched.cycle_period = 10.0;
  config.sched.solver_threads = 1;
  config.sched.solver_basis_warmstart = false;
  return config;
}

const std::string kCsvHeader =
    "cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n";

// The batch reference: identical to the golden-trace harness.
std::string BatchDecisionCsv(const ExperimentConfig& config) {
  obs::ResetAll();
  obs::Options options;
  options.decisions = true;
  obs::Configure(options);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  (void)SimulateSystem(SystemKind::kThreeSigma, config, workload);
  const std::string csv = obs::DecisionLog::Global().ToCsvString();
  obs::ResetAll();
  return csv;
}

// The same workload through the service: pretrain identically, submit over
// the loopback client (sorted by submit time, matching the batch simulator's
// internal sort), drain, and collect the same decision log.
//
// `chunk_seconds` == 0 submits everything before the first cycle; > 0 submits
// submit-time windows of that width with a few scheduling cycles between
// chunks, proving mid-run injection batches don't perturb decisions either.
std::string ServiceDecisionCsv(const ExperimentConfig& config, double chunk_seconds) {
  obs::ResetAll();
  obs::Options obs_options;
  obs_options.decisions = true;
  obs::Configure(obs_options);

  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  SystemInstance instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  for (const JobSpec& job : workload.pretrain) {
    instance.predictor->RecordCompletion(job.features, job.true_runtime);
  }

  std::vector<JobSpec> jobs = workload.jobs;
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });

  svc::LoopbackTransport transport;
  svc::ServiceOptions service;
  service.admission_capacity = jobs.size() + 16;
  service.max_batch_per_cycle = jobs.size() + 16;
  service.drain_linger_seconds = 0.0;
  svc::Server server(config.cluster, instance.scheduler.get(), config.sim, service,
                     &transport);
  auto channel = transport.Connect();
  channel->SetPump([&server] { server.HandleReady(); });
  svc::ClientOptions client_options;
  client_options.sleep_on_backoff = false;
  svc::Client client(channel.get(), client_options);

  std::string error;
  size_t next = 0;
  while (next < jobs.size()) {
    const double window_end =
        chunk_seconds > 0.0
            ? (std::floor(jobs[next].submit_time / chunk_seconds) + 1.0) * chunk_seconds
            : std::numeric_limits<double>::infinity();
    for (; next < jobs.size() && jobs[next].submit_time < window_end; ++next) {
      JobId assigned = 0;
      if (!client.SubmitJob(jobs[next], "prop-" + std::to_string(next), &assigned, &error)) {
        ADD_FAILURE() << "submit failed: " << error;
        return "";
      }
      // Original ids are free in a fresh simulation, so the server honors
      // them — a prerequisite for matching the batch run exactly.
      if (assigned != jobs[next].id) {
        ADD_FAILURE() << "id " << jobs[next].id << " reassigned to " << assigned;
        return "";
      }
    }
    if (chunk_seconds > 0.0 && next < jobs.size()) {
      // Advance a few cycles, but never so far that the next chunk's
      // arrivals would land in the past (injection clamps submit times to
      // `now`, which would diverge from the batch arrival sequence).
      for (int step = 0; step < 3; ++step) {
        if (server.simulator().now() + 2.0 * config.sim.cycle_period >
            jobs[next].submit_time) {
          break;
        }
        if (!server.StepCycle()) {
          break;
        }
      }
    }
  }

  if (!client.Shutdown(/*drain=*/true, &error)) {
    ADD_FAILURE() << "drain shutdown failed: " << error;
    return "";
  }
  int guard = 0;
  while (server.PollOnce() && ++guard < 1000000) {
  }
  EXPECT_LT(guard, 1000000) << "service run never drained";
  EXPECT_TRUE(server.simulator().drained());

  const std::string csv = obs::DecisionLog::Global().ToCsvString();
  obs::ResetAll();
  return csv;
}

void ExpectNonTrivial(const std::string& csv) {
  ASSERT_GT(csv.size(), kCsvHeader.size()) << "decision log came back empty";
}

TEST(SvcPropertyTest, UpfrontSessionMatchesBatchSingleThread) {
  const ExperimentConfig config = BaseConfig();
  const std::string batch = BatchDecisionCsv(config);
  ExpectNonTrivial(batch);
  const std::string service = ServiceDecisionCsv(config, /*chunk_seconds=*/0.0);
  EXPECT_EQ(batch, service)
      << "service-fed decisions diverged from the batch run (1 solver thread)";
}

TEST(SvcPropertyTest, ChunkedSessionMatchesBatchSingleThread) {
  const ExperimentConfig config = BaseConfig();
  const std::string batch = BatchDecisionCsv(config);
  ExpectNonTrivial(batch);
  const std::string service = ServiceDecisionCsv(config, /*chunk_seconds=*/60.0);
  EXPECT_EQ(batch, service)
      << "mid-run injection batches changed scheduling decisions";
}

TEST(SvcPropertyTest, UpfrontSessionMatchesBatchFourThreads) {
  ExperimentConfig config = BaseConfig();
  config.sched.solver_threads = 4;
  config.sched.solver_basis_warmstart = true;
  const std::string batch = BatchDecisionCsv(config);
  ExpectNonTrivial(batch);
  const std::string service = ServiceDecisionCsv(config, /*chunk_seconds=*/0.0);
  EXPECT_EQ(batch, service)
      << "service-fed decisions diverged from the batch run (4 solver threads)";
}

}  // namespace
}  // namespace threesigma
