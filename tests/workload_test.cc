// Workload substrate tests: k-means, environment models, and the generator's
// §5 contract (load, mixes, deadlines, preferences, features, pre-training).

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workload/generator.h"
#include "src/workload/kmeans.h"
#include "src/workload/trace_model.h"

namespace threesigma {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(10.0 + i * 0.01);
    values.push_back(100.0 + i * 0.01);
    values.push_back(1000.0 + i * 0.01);
  }
  const KMeansResult result = KMeans1D(values, 3);
  ASSERT_EQ(result.centroids.size(), 3u);
  EXPECT_NEAR(result.centroids[0], 10.25, 1.0);
  EXPECT_NEAR(result.centroids[1], 100.25, 1.0);
  EXPECT_NEAR(result.centroids[2], 1000.25, 1.0);
  // Members of the same decade share a cluster.
  for (size_t i = 0; i < values.size(); i += 3) {
    EXPECT_EQ(result.assignment[i], 0);
    EXPECT_EQ(result.assignment[i + 1], 1);
    EXPECT_EQ(result.assignment[i + 2], 2);
  }
}

TEST(KMeansTest, KLargerThanDistinctValues) {
  const KMeansResult result = KMeans1D({5.0, 5.0, 5.0}, 4);
  EXPECT_EQ(result.centroids.size(), 1u);
  for (int a : result.assignment) {
    EXPECT_EQ(a, 0);
  }
}

TEST(KMeansTest, DeterministicForSameInput) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.LogNormal(3.0, 1.5));
  }
  const KMeansResult a = KMeans1D(values, 6);
  const KMeansResult b = KMeans1D(values, 6);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(rng.Uniform(0.0, 100.0));
  }
  const KMeansResult result = KMeans1D(values, 5);
  for (size_t i = 0; i < values.size(); ++i) {
    const double assigned = std::fabs(values[i] - result.centroids[result.assignment[i]]);
    for (double c : result.centroids) {
      EXPECT_LE(assigned, std::fabs(values[i] - c) + 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// EnvironmentModel
// ---------------------------------------------------------------------------

class EnvironmentModelTest : public ::testing::TestWithParam<EnvironmentKind> {};

TEST_P(EnvironmentModelTest, SamplesAreValid) {
  const EnvironmentModel model = EnvironmentModel::Make(GetParam(), 64, 11);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const TraceJob job = model.Sample(rng);
    EXPECT_GT(job.runtime, 0.0);
    EXPECT_GE(job.num_tasks, 1);
    EXPECT_LE(job.num_tasks, 64);
    EXPECT_FALSE(job.user.empty());
    EXPECT_FALSE(job.jobname.empty());
  }
}

TEST_P(EnvironmentModelTest, RuntimesAreHeavyTailed) {
  // Fig. 2a: the longest jobs are much longer than the typical job.
  const EnvironmentModel model = EnvironmentModel::Make(GetParam(), 64, 11);
  Rng rng(5);
  std::vector<double> runtimes;
  for (int i = 0; i < 20000; ++i) {
    runtimes.push_back(model.Sample(rng).runtime);
  }
  EXPECT_GT(Quantile(runtimes, 0.99), 10.0 * Quantile(runtimes, 0.5));
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, EnvironmentModelTest,
                         ::testing::Values(EnvironmentKind::kGoogle,
                                           EnvironmentKind::kHedgeFund,
                                           EnvironmentKind::kMustang));

TEST(EnvironmentModelTest, MustangHasRepetitivePopulations) {
  // §2.1: Mustang has a large share of near-perfectly repetitive jobs.
  const EnvironmentModel model = EnvironmentModel::Make(EnvironmentKind::kMustang, 64, 11);
  int tight = 0;
  for (const JobPopulation& p : model.populations()) {
    if (p.log_sigma < 0.1) {
      ++tight;
    }
  }
  EXPECT_GT(tight, static_cast<int>(model.populations().size()) / 3);
}

TEST(EnvironmentModelTest, HedgeFundIsWidest) {
  const EnvironmentModel hf = EnvironmentModel::Make(EnvironmentKind::kHedgeFund, 64, 11);
  const EnvironmentModel google = EnvironmentModel::Make(EnvironmentKind::kGoogle, 64, 11);
  RunningStats hf_sigma;
  RunningStats google_sigma;
  for (const JobPopulation& p : hf.populations()) {
    hf_sigma.Add(p.log_sigma);
  }
  for (const JobPopulation& p : google.populations()) {
    google_sigma.Add(p.log_sigma);
  }
  EXPECT_GT(hf_sigma.mean(), google_sigma.mean());
}

// ---------------------------------------------------------------------------
// GenerateWorkload
// ---------------------------------------------------------------------------

WorkloadOptions SmallWorkload() {
  WorkloadOptions options;
  options.duration = Hours(1.0);
  options.load = 1.2;
  options.model_sample_jobs = 1500;
  options.pretrain_jobs = 500;
  options.seed = 17;
  return options;
}

TEST(GeneratorTest, HitsOfferedLoadTarget) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  const GeneratedWorkload w = GenerateWorkload(cluster, SmallWorkload());
  EXPECT_GT(w.jobs.size(), 50u);
  EXPECT_NEAR(w.offered_load, 1.2, 0.15);
  // Recompute the load from the jobs themselves.
  double work = 0.0;
  for (const JobSpec& job : w.jobs) {
    work += job.true_runtime * job.num_tasks;
  }
  EXPECT_NEAR(work / (cluster.total_nodes() * Hours(1.0)), w.offered_load, 1e-9);
}

TEST(GeneratorTest, ArrivalsSortedWithinWindowAndBursty) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  const GeneratedWorkload w = GenerateWorkload(cluster, SmallWorkload());
  RunningStats gaps;
  for (size_t i = 0; i < w.jobs.size(); ++i) {
    EXPECT_GE(w.jobs[i].submit_time, 0.0);
    EXPECT_LE(w.jobs[i].submit_time, Hours(1.0) + 1e-6);
    if (i > 0) {
      EXPECT_GE(w.jobs[i].submit_time, w.jobs[i - 1].submit_time);
      gaps.Add(w.jobs[i].submit_time - w.jobs[i - 1].submit_time);
    }
  }
  // c_a^2 = 4 burstiness: squared CoV of inter-arrivals well above Poisson.
  const double cv2 = gaps.variance() / (gaps.mean() * gaps.mean());
  EXPECT_GT(cv2, 2.0);
}

TEST(GeneratorTest, SloBeSplitAndDeadlines) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  WorkloadOptions options = SmallWorkload();
  options.deadline_slacks = {20.0, 40.0, 60.0, 80.0};
  const GeneratedWorkload w = GenerateWorkload(cluster, options);
  int slo = 0;
  std::set<int> seen_slacks;
  for (const JobSpec& job : w.jobs) {
    if (job.is_slo()) {
      ++slo;
      ASSERT_NE(job.deadline, kNever);
      const double slack = job.DeadlineSlackPercent();
      const int rounded = static_cast<int>(std::round(slack));
      EXPECT_TRUE(rounded == 20 || rounded == 40 || rounded == 60 || rounded == 80)
          << "slack=" << slack;
      seen_slacks.insert(rounded);
      EXPECT_TRUE(job.utility.is_step());
      // Preferred groups: 75% of 4 groups = 3.
      EXPECT_EQ(job.preferred_groups.size(), 3u);
      EXPECT_DOUBLE_EQ(job.nonpreferred_slowdown, 1.5);
    } else {
      EXPECT_EQ(job.deadline, kNever);
      EXPECT_FALSE(job.utility.is_step());
      EXPECT_TRUE(job.preferred_groups.empty());
    }
  }
  // Roughly even split.
  EXPECT_NEAR(static_cast<double>(slo) / w.jobs.size(), 0.5, 0.12);
  EXPECT_EQ(seen_slacks.size(), 4u);
}

TEST(GeneratorTest, JobsFitTheLargestGroup) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  const GeneratedWorkload w = GenerateWorkload(cluster, SmallWorkload());
  for (const JobSpec& job : w.jobs) {
    EXPECT_LE(job.num_tasks, 64);
    EXPECT_GE(job.num_tasks, 1);
  }
}

TEST(GeneratorTest, FeaturesPresentAndStructured) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  const GeneratedWorkload w = GenerateWorkload(cluster, SmallWorkload());
  for (const JobSpec& job : w.jobs) {
    ASSERT_EQ(job.features.size(), 4u);
    EXPECT_EQ(job.features[0].rfind("user=", 0), 0u);
    EXPECT_EQ(job.features[1].rfind("jobname=", 0), 0u);
    EXPECT_EQ(job.features[2].rfind("user+jobname=", 0), 0u);
    EXPECT_EQ(job.features[3].rfind("tasks=", 0), 0u);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  const GeneratedWorkload a = GenerateWorkload(cluster, SmallWorkload());
  const GeneratedWorkload b = GenerateWorkload(cluster, SmallWorkload());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].true_runtime, b.jobs[i].true_runtime);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].user, b.jobs[i].user);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  WorkloadOptions o1 = SmallWorkload();
  WorkloadOptions o2 = SmallWorkload();
  o2.seed = 18;
  const GeneratedWorkload a = GenerateWorkload(cluster, o1);
  const GeneratedWorkload b = GenerateWorkload(cluster, o2);
  EXPECT_NE(a.jobs.size(), b.jobs.size());
}

TEST(GeneratorTest, PretrainSampleCapHolds) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  WorkloadOptions options = SmallWorkload();
  options.pretrain_jobs = 2000;
  options.pretrain_sample_cap = 5;
  const GeneratedWorkload w = GenerateWorkload(cluster, options);
  std::map<std::string, int> counts;
  for (const JobSpec& job : w.pretrain) {
    ++counts[job.user + "|" + job.name];
  }
  for (const auto& [key, count] : counts) {
    EXPECT_LE(count, 5) << key;
  }
}

TEST(GeneratorTest, FixedJobCountScalesToLoad) {
  const ClusterConfig cluster = ClusterConfig::Uniform(8, 1573);  // ~12.5k nodes.
  WorkloadOptions options = SmallWorkload();
  options.fixed_job_count = 2000;
  options.load = 0.95;
  const GeneratedWorkload w = GenerateWorkload(cluster, options);
  EXPECT_EQ(w.jobs.size(), 2000u);
  EXPECT_NEAR(w.offered_load, 0.95, 0.1);
}

TEST(GeneratorTest, UtilityValuesScaleWithGangWidth) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  WorkloadOptions options = SmallWorkload();
  options.slo_utility_per_task = 50.0;
  options.be_utility_per_task = 1.0;
  const GeneratedWorkload w = GenerateWorkload(cluster, options);
  for (const JobSpec& job : w.jobs) {
    if (job.is_slo()) {
      EXPECT_DOUBLE_EQ(job.utility.peak_value(), 50.0 * job.num_tasks);
    } else {
      EXPECT_DOUBLE_EQ(job.utility.peak_value(), 1.0 * job.num_tasks);
    }
  }
}

TEST(GeneratorTest, AllEnvironmentsGenerate) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  for (EnvironmentKind env : {EnvironmentKind::kGoogle, EnvironmentKind::kHedgeFund,
                              EnvironmentKind::kMustang}) {
    WorkloadOptions options = SmallWorkload();
    options.env = env;
    const GeneratedWorkload w = GenerateWorkload(cluster, options);
    EXPECT_GT(w.jobs.size(), 10u) << EnvironmentName(env);
    EXPECT_NEAR(w.offered_load, options.load, 0.25) << EnvironmentName(env);
  }
}

TEST(GeneratorTest, RuntimesCappedToWindow) {
  // Jobs longer than 60% of the window are filtered (they cannot complete
  // inside the experiment), mirroring the paper's size filtering.
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  WorkloadOptions options = SmallWorkload();
  options.env = EnvironmentKind::kMustang;  // Longest runtimes.
  const GeneratedWorkload w = GenerateWorkload(cluster, options);
  for (const JobSpec& job : w.jobs) {
    EXPECT_LE(job.true_runtime, options.duration * 0.6 + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Moment reproduction: the generative pieces actually deliver the moments
// their parameters promise under fixed seeds.

TEST(TraceModelTest, PureLognormalPopulationReproducesConfiguredMoments) {
  // One population, no straggler tail: runtime ~ LogNormal(log_mu, log_sigma),
  // so mean = exp(mu + sigma^2/2) and CoV = sqrt(exp(sigma^2) - 1). The
  // [1, 250000] clamp is ~5 sigma away at these parameters.
  JobPopulation pop;
  pop.user = "u";
  pop.jobname = "j";
  pop.log_mu = 4.0;
  pop.log_sigma = 0.6;
  pop.tail_prob = 0.0;
  const EnvironmentModel model(EnvironmentKind::kGoogle, {pop});

  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(model.Sample(rng).runtime);
  }
  const double expected_mean = std::exp(4.0 + 0.6 * 0.6 / 2.0);
  const double expected_cov = std::sqrt(std::exp(0.6 * 0.6) - 1.0);
  EXPECT_NEAR(stats.mean(), expected_mean, 0.03 * expected_mean);
  EXPECT_NEAR(stats.cov(), expected_cov, 0.05 * expected_cov);
}

TEST(TraceModelTest, LognormalMixtureReproducesPerPopulationMoments) {
  // Two populations with distinct scales: conditioning on the population
  // (the user feature) must recover each one's configured moments — the
  // property 3sigmaPredict's per-feature-value histories rely on.
  JobPopulation fast;
  fast.user = "fast";
  fast.jobname = "a";
  fast.weight = 3.0;
  fast.log_mu = 3.0;
  fast.log_sigma = 0.4;
  JobPopulation slow;
  slow.user = "slow";
  slow.jobname = "b";
  slow.weight = 1.0;
  slow.log_mu = 6.0;
  slow.log_sigma = 0.9;
  const EnvironmentModel model(EnvironmentKind::kHedgeFund, {fast, slow});

  Rng rng(7);
  std::map<std::string, RunningStats> by_user;
  for (int i = 0; i < 80000; ++i) {
    const TraceJob job = model.Sample(rng);
    by_user[job.user].Add(job.runtime);
  }
  // Weights 3:1 steer sampling itself.
  EXPECT_NEAR(static_cast<double>(by_user["fast"].count()), 60000.0, 2000.0);
  for (const auto& [user, pop] : {std::pair<std::string, JobPopulation>{"fast", fast},
                                  {"slow", slow}}) {
    const RunningStats& s = by_user[user];
    const double mean = std::exp(pop.log_mu + pop.log_sigma * pop.log_sigma / 2.0);
    const double cov = std::sqrt(std::exp(pop.log_sigma * pop.log_sigma) - 1.0);
    EXPECT_NEAR(s.mean(), mean, 0.05 * mean) << user;
    EXPECT_NEAR(s.cov(), cov, 0.08 * cov) << user;
  }
}

TEST(RngMomentTest, HyperExponentialReproducesMeanAndCv2) {
  // The arrival process draws gaps from HyperExponential(mean, cv2 = 4): the
  // paper's bursty arrivals. Check the advertised first two moments.
  for (const double cv2 : {1.0, 4.0, 9.0}) {
    Rng rng(1234);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) {
      stats.Add(rng.HyperExponential(10.0, cv2));
    }
    EXPECT_NEAR(stats.mean(), 10.0, 0.4) << "cv2=" << cv2;
    const double sample_cv2 = stats.cov() * stats.cov();
    EXPECT_NEAR(sample_cv2, cv2, 0.15 * cv2 + 0.1) << "cv2=" << cv2;
  }
}

TEST(GeneratorTest, ArrivalGapsCarryConfiguredBurstiness) {
  // Generated inter-arrival gaps inherit the hyper-exponential c_a^2 ~= 4
  // (up to load-targeting truncation); Poisson arrivals (cv2 = 1) must come
  // out measurably smoother under the same seed and load.
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  WorkloadOptions options = SmallWorkload();
  options.duration = Hours(8.0);

  auto gap_cv2 = [&](double arrival_cv2) {
    WorkloadOptions local = options;
    local.arrival_cv2 = arrival_cv2;
    const GeneratedWorkload w = GenerateWorkload(cluster, local);
    RunningStats gaps;
    for (size_t i = 1; i < w.jobs.size(); ++i) {
      gaps.Add(w.jobs[i].submit_time - w.jobs[i - 1].submit_time);
    }
    EXPECT_GT(gaps.count(), 300u);
    return gaps.cov() * gaps.cov();
  };

  const double bursty = gap_cv2(4.0);
  const double poisson = gap_cv2(1.0);
  EXPECT_NEAR(poisson, 1.0, 0.5);
  EXPECT_GT(bursty, 2.0);
  EXPECT_GT(bursty, 1.5 * poisson);
}

TEST(GeneratorTest, PretrainJobsShareFeatureSpaceWithWorkload) {
  // The predictor can only warm up if pre-training jobs hit the same feature
  // values the experiment jobs carry.
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  const GeneratedWorkload w = GenerateWorkload(cluster, SmallWorkload());
  std::set<std::string> pretrain_users;
  for (const JobSpec& job : w.pretrain) {
    pretrain_users.insert(job.features[0]);
  }
  int covered = 0;
  for (const JobSpec& job : w.jobs) {
    if (pretrain_users.count(job.features[0]) > 0) {
      ++covered;
    }
  }
  EXPECT_GT(static_cast<double>(covered) / w.jobs.size(), 0.9);
}

}  // namespace
}  // namespace threesigma
