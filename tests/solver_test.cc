// Solver substrate tests: LP model, bounded simplex, branch-and-bound MILP.
//
// The load-bearing properties are verified against brute force:
//   - random small LPs against dense vertex/grid enumeration bounds,
//   - random binary programs against exhaustive 2^n enumeration,
// plus hand-checked textbook instances.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/lp_model.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace threesigma {
namespace {

// Exhaustive optimum of a pure-binary program; -inf objective if infeasible.
struct BruteForceResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> values;
};

BruteForceResult BruteForceBinary(const LpModel& model) {
  const int n = model.num_variables();
  BruteForceResult best;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i) {
      x[i] = (mask >> i) & 1u ? 1.0 : 0.0;
    }
    bool in_bounds = true;
    for (int i = 0; i < n; ++i) {
      if (x[i] < model.lower(i) - 1e-9 || x[i] > model.upper(i) + 1e-9) {
        in_bounds = false;
        break;
      }
    }
    if (!in_bounds || !model.IsFeasible(x)) {
      continue;
    }
    const double obj = model.ObjectiveValue(x);
    if (!best.feasible || obj > best.objective) {
      best.feasible = true;
      best.objective = obj;
      best.values = x;
    }
  }
  return best;
}

TEST(LpModelTest, BuildAndEvaluate) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 3.0, "x");
  const int y = m.AddVariable(0.0, 2.0, 1.0, "y");
  m.AddRow(RowSense::kLessEqual, 2.0, {{x, 1.0}, {y, 1.0}}, "cap");
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({1.0, 1.0}), 4.0);
  EXPECT_TRUE(m.IsFeasible({1.0, 1.0}));
  EXPECT_FALSE(m.IsFeasible({1.0, 1.5}));
}

TEST(LpModelTest, ZeroCoefficientsPruned) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  const int r = m.AddRow(RowSense::kLessEqual, 1.0, {{x, 0.0}});
  EXPECT_TRUE(m.row(r).terms.empty());
}

TEST(LpModelTest, BoundsViolationDetected) {
  LpModel m;
  m.AddVariable(0.5, 1.0, 1.0);
  EXPECT_FALSE(m.IsFeasible({0.0}));
  EXPECT_TRUE(m.IsFeasible({0.75}));
}

TEST(LpModelTest, EqualAndGreaterRows) {
  LpModel m;
  const int x = m.AddVariable(0.0, 10.0, 1.0);
  m.AddRow(RowSense::kEqual, 4.0, {{x, 1.0}});
  EXPECT_TRUE(m.IsFeasible({4.0}));
  EXPECT_FALSE(m.IsFeasible({3.0}));
  LpModel g;
  const int y = g.AddVariable(0.0, 10.0, 1.0);
  g.AddRow(RowSense::kGreaterEqual, 2.0, {{y, 1.0}});
  EXPECT_FALSE(g.IsFeasible({1.0}));
  EXPECT_TRUE(g.IsFeasible({2.0}));
}

// ---------------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------------

TEST(SimplexTest, TextbookTwoVariable) {
  // max 3x + 5y  s.t.  x <= 4;  2y <= 12;  3x + 2y <= 18;  x,y >= 0.
  // Optimum: x=2, y=6, obj=36 (classic Dantzig example).
  LpModel m;
  const int x = m.AddVariable(0.0, kLpInfinity, 3.0);
  const int y = m.AddVariable(0.0, kLpInfinity, 5.0);
  m.AddRow(RowSense::kLessEqual, 4.0, {{x, 1.0}});
  m.AddRow(RowSense::kLessEqual, 12.0, {{y, 2.0}});
  m.AddRow(RowSense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-6);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-6);
  EXPECT_NEAR(sol.values[y], 6.0, 1e-6);
}

TEST(SimplexTest, PureBoundsProblem) {
  LpModel m;
  m.AddVariable(0.0, 1.0, 2.0);
  m.AddVariable(0.0, 3.0, -1.0);
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 0.0, 1e-9);
}

TEST(SimplexTest, UpperBoundsRespected) {
  // max x + y  s.t.  x + y <= 10, x <= 1 (bound), y <= 2 (bound).
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  const int y = m.AddVariable(0.0, 2.0, 1.0);
  m.AddRow(RowSense::kLessEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraintNeedsPhase1) {
  // max x  s.t.  x + y = 5, x <= 3, y <= 4.
  LpModel m;
  const int x = m.AddVariable(0.0, 3.0, 1.0);
  const int y = m.AddVariable(0.0, 4.0, 0.0);
  m.AddRow(RowSense::kEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-6);
  EXPECT_NEAR(sol.values[x] + sol.values[y], 5.0, 1e-6);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min x + y (== max -x - y)  s.t.  x + 2y >= 4, 3x + y >= 6.
  // Optimum at intersection: x = 1.6, y = 1.2, obj = 2.8.
  LpModel m;
  const int x = m.AddVariable(0.0, kLpInfinity, -1.0);
  const int y = m.AddVariable(0.0, kLpInfinity, -1.0);
  m.AddRow(RowSense::kGreaterEqual, 4.0, {{x, 1.0}, {y, 2.0}});
  m.AddRow(RowSense::kGreaterEqual, 6.0, {{x, 3.0}, {y, 1.0}});
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.8, 1e-6);
  EXPECT_NEAR(sol.values[x], 1.6, 1e-6);
  EXPECT_NEAR(sol.values[y], 1.2, 1e-6);
}

TEST(SimplexTest, InfeasibleDetected) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowSense::kGreaterEqual, 5.0, {{x, 1.0}});
  const LpSolution sol = SolveLp(m);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  LpModel m;
  m.AddVariable(0.0, kLpInfinity, 1.0);  // Unconstrained upward.
  const int y = m.AddVariable(0.0, kLpInfinity, 0.0);
  m.AddRow(RowSense::kLessEqual, 5.0, {{y, 1.0}});
  const LpSolution sol = SolveLp(m);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic cycling-prone structure; Bland fallback must terminate it.
  LpModel m;
  const int x1 = m.AddVariable(0.0, kLpInfinity, 10.0);
  const int x2 = m.AddVariable(0.0, kLpInfinity, -57.0);
  const int x3 = m.AddVariable(0.0, kLpInfinity, -9.0);
  const int x4 = m.AddVariable(0.0, kLpInfinity, -24.0);
  m.AddRow(RowSense::kLessEqual, 0.0, {{x1, 0.5}, {x2, -5.5}, {x3, -2.5}, {x4, 9.0}});
  m.AddRow(RowSense::kLessEqual, 0.0, {{x1, 0.5}, {x2, -1.5}, {x3, -0.5}, {x4, 1.0}});
  m.AddRow(RowSense::kLessEqual, 1.0, {{x1, 1.0}});
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-5);
}

TEST(SimplexTest, NegativeRhsNeedsPhase1) {
  // max -x  s.t.  -x <= -2  (i.e. x >= 2), x <= 5.
  LpModel m;
  const int x = m.AddVariable(0.0, 5.0, -1.0);
  m.AddRow(RowSense::kLessEqual, -2.0, {{x, -1.0}});
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-6);
}

TEST(SimplexTest, SolutionAlwaysFeasible) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(2, 8));
    const int rows = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < n; ++i) {
      m.AddVariable(0.0, rng.Uniform(0.5, 3.0), rng.Uniform(-5.0, 5.0));
    }
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.7)) {
          terms.push_back({i, rng.Uniform(0.0, 4.0)});
        }
      }
      m.AddRow(RowSense::kLessEqual, rng.Uniform(0.5, 6.0), std::move(terms));
    }
    const LpSolution sol = SolveLp(m);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(sol.values, 1e-5)) << "trial " << trial;
    // Objective must at least match the origin (feasible here: rhs > 0).
    EXPECT_GE(sol.objective, -1e-9);
  }
}

// Randomized LPs with 2 variables are verified against a fine grid search.
class SimplexGridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexGridPropertyTest, MatchesGridOptimum) {
  Rng rng(static_cast<uint64_t>(1000 + GetParam()));
  LpModel m;
  const int x = m.AddVariable(0.0, rng.Uniform(1.0, 4.0), rng.Uniform(-3.0, 3.0));
  const int y = m.AddVariable(0.0, rng.Uniform(1.0, 4.0), rng.Uniform(-3.0, 3.0));
  const int rows = static_cast<int>(rng.UniformInt(1, 4));
  for (int r = 0; r < rows; ++r) {
    m.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, 5.0),
             {{x, rng.Uniform(0.0, 2.0)}, {y, rng.Uniform(0.0, 2.0)}});
  }
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // Grid search.
  double best = -1e100;
  const int steps = 400;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      const double xv = m.upper(x) * i / steps;
      const double yv = m.upper(y) * j / steps;
      if (m.IsFeasible({xv, yv})) {
        best = std::max(best, m.ObjectiveValue({xv, yv}));
      }
    }
  }
  // The grid is a lower bound on the true optimum; simplex must match or
  // exceed it up to grid resolution, and never exceed by more than epsilon
  // beyond what feasibility allows.
  EXPECT_GE(sol.objective, best - 0.05);
  EXPECT_TRUE(m.IsFeasible(sol.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexGridPropertyTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// MILP
// ---------------------------------------------------------------------------

TEST(MilpTest, SimpleKnapsack) {
  // max 10a + 6b + 4c  s.t.  a + b + c <= 2 (binary).
  LpModel m;
  const int a = m.AddVariable(0.0, 1.0, 10.0);
  const int b = m.AddVariable(0.0, 1.0, 6.0);
  const int c = m.AddVariable(0.0, 1.0, 4.0);
  m.AddRow(RowSense::kLessEqual, 2.0, {{a, 1.0}, {b, 1.0}, {c, 1.0}});
  MilpSolver solver(m, {a, b, c});
  const MilpSolution sol = solver.Solve();
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 16.0, 1e-6);
  EXPECT_NEAR(sol.values[a], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[b], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[c], 0.0, 1e-6);
}

TEST(MilpTest, FractionalLpForcedIntegral) {
  // LP relaxation picks x = 2.5/3; MILP must branch to integrality.
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 5.0);
  const int y = m.AddVariable(0.0, 1.0, 4.0);
  m.AddRow(RowSense::kLessEqual, 1.4, {{x, 1.0}, {y, 1.0}});
  MilpSolver solver(m, {x, y});
  const MilpSolution sol = solver.Solve();
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-6);
}

TEST(MilpTest, InfeasibleModel) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowSense::kGreaterEqual, 2.0, {{x, 1.0}});
  MilpSolver solver(m, {x});
  const MilpSolution sol = solver.Solve();
  EXPECT_EQ(sol.status, MilpStatus::kInfeasible);
}

TEST(MilpTest, WarmStartAccepted) {
  LpModel m;
  const int a = m.AddVariable(0.0, 1.0, 3.0);
  const int b = m.AddVariable(0.0, 1.0, 2.0);
  m.AddRow(RowSense::kLessEqual, 1.0, {{a, 1.0}, {b, 1.0}});
  MilpSolver solver(m, {a, b});
  MilpOptions opts;
  opts.warm_start = {0.0, 1.0};  // Feasible but suboptimal.
  opts.max_nodes = 1000;
  const MilpSolution sol = solver.Solve(opts);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-6);  // Improved past the warm start.
  EXPECT_FALSE(sol.warm_start_returned);
}

TEST(MilpTest, WarmStartReturnedUnderZeroNodeBudget) {
  LpModel m;
  const int a = m.AddVariable(0.0, 1.0, 3.0);
  const int b = m.AddVariable(0.0, 1.0, 2.0);
  m.AddRow(RowSense::kLessEqual, 1.0, {{a, 1.0}, {b, 1.0}});
  MilpSolver solver(m, {a, b});
  MilpOptions opts;
  opts.warm_start = {0.0, 1.0};
  opts.max_nodes = -1;  // No search at all... (<=0 disables the limit)
  opts.time_limit_seconds = 1e-9;  // ...so use an expired clock instead.
  const MilpSolution sol = solver.Solve(opts);
  EXPECT_EQ(sol.status, MilpStatus::kFeasible);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_TRUE(sol.warm_start_returned);
}

TEST(MilpTest, InfeasibleWarmStartIgnored) {
  LpModel m;
  const int a = m.AddVariable(0.0, 1.0, 3.0);
  m.AddRow(RowSense::kLessEqual, 0.0, {{a, 1.0}});
  MilpSolver solver(m, {a});
  MilpOptions opts;
  opts.warm_start = {1.0};  // Violates the row.
  const MilpSolution sol = solver.Solve(opts);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

TEST(MilpTest, AtMostOneRowsLikeScheduler) {
  // Two jobs, two options each, shared capacity of one slot per time.
  // Mirrors the §4.3.4 structure in miniature.
  LpModel m;
  const int j1o1 = m.AddVariable(0.0, 1.0, 1.0);   // SLO now.
  const int j1o2 = m.AddVariable(0.0, 1.0, 0.5);   // SLO deferred.
  const int j2o1 = m.AddVariable(0.0, 1.0, 0.3);   // BE now.
  const int j2o2 = m.AddVariable(0.0, 1.0, 0.2);   // BE deferred.
  m.AddRow(RowSense::kLessEqual, 1.0, {{j1o1, 1.0}, {j1o2, 1.0}});
  m.AddRow(RowSense::kLessEqual, 1.0, {{j2o1, 1.0}, {j2o2, 1.0}});
  // Slot 0 capacity: "now" options collide.
  m.AddRow(RowSense::kLessEqual, 1.0, {{j1o1, 1.0}, {j2o1, 1.0}});
  // Slot 1 capacity: deferred options collide.
  m.AddRow(RowSense::kLessEqual, 1.0, {{j1o2, 1.0}, {j2o2, 1.0}});
  MilpSolver solver(m, {j1o1, j1o2, j2o1, j2o2});
  const MilpSolution sol = solver.Solve();
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  // Best: SLO now (1.0) + BE deferred (0.2).
  EXPECT_NEAR(sol.objective, 1.2, 1e-6);
}

// Exhaustive verification on random binary programs.
class MilpBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpBruteForceTest, MatchesExhaustiveEnumeration) {
  Rng rng(static_cast<uint64_t>(5000 + GetParam()));
  LpModel m;
  const int n = static_cast<int>(rng.UniformInt(3, 12));
  std::vector<int> ints;
  for (int i = 0; i < n; ++i) {
    ints.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(-2.0, 8.0)));
  }
  const int rows = static_cast<int>(rng.UniformInt(1, 6));
  for (int r = 0; r < rows; ++r) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({i, rng.Uniform(0.1, 3.0)});
      }
    }
    if (terms.empty()) {
      terms.push_back({0, 1.0});
    }
    m.AddRow(RowSense::kLessEqual, rng.Uniform(0.5, 5.0), std::move(terms));
  }
  MilpSolver solver(m, ints);
  const MilpSolution sol = solver.Solve();
  const BruteForceResult brute = BruteForceBinary(m);
  ASSERT_TRUE(brute.feasible);  // All-zeros is always feasible here.
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, brute.objective, 1e-5);
  EXPECT_TRUE(m.IsFeasible(sol.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomBinaryPrograms, MilpBruteForceTest, ::testing::Range(0, 40));

// Mixed-sense binary programs (with >= rows) against brute force; exercises
// Phase-1 inside branch-and-bound and disables the greedy rounding path.
class MilpMixedSenseTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpMixedSenseTest, MatchesExhaustiveEnumeration) {
  Rng rng(static_cast<uint64_t>(9000 + GetParam()));
  LpModel m;
  const int n = static_cast<int>(rng.UniformInt(3, 10));
  std::vector<int> ints;
  for (int i = 0; i < n; ++i) {
    ints.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(-3.0, 6.0)));
  }
  const int rows = static_cast<int>(rng.UniformInt(1, 5));
  for (int r = 0; r < rows; ++r) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({i, rng.Uniform(-2.0, 3.0)});
      }
    }
    if (terms.empty()) {
      terms.push_back({0, 1.0});
    }
    const RowSense sense = rng.Bernoulli(0.5) ? RowSense::kLessEqual : RowSense::kGreaterEqual;
    m.AddRow(sense, rng.Uniform(-1.0, 3.0), std::move(terms));
  }
  MilpSolver solver(m, ints);
  const MilpSolution sol = solver.Solve();
  const BruteForceResult brute = BruteForceBinary(m);
  if (!brute.feasible) {
    EXPECT_EQ(sol.status, MilpStatus::kInfeasible);
    return;
  }
  ASSERT_EQ(sol.status, MilpStatus::kOptimal) << "nodes=" << sol.nodes_explored;
  EXPECT_NEAR(sol.objective, brute.objective, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomMixedPrograms, MilpMixedSenseTest, ::testing::Range(0, 40));

TEST(SimplexTest, IterationLimitReturnsFeasiblePoint) {
  // Starve the solver: it must stop with kIterationLimit and a feasible
  // (if suboptimal) point rather than spin or crash.
  Rng rng(808);
  LpModel m;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    m.AddVariable(0.0, 1.0, rng.Uniform(0.1, 5.0));
  }
  for (int r = 0; r < 10; ++r) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back({i, rng.Uniform(0.1, 2.0)});
    }
    m.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, 5.0), std::move(terms));
  }
  SimplexOptions options;
  options.max_iterations = 3;
  options.presolve = false;
  const LpSolution sol = SolveLp(m, options);
  ASSERT_EQ(sol.status, LpStatus::kIterationLimit);
  EXPECT_TRUE(m.IsFeasible(sol.values, 1e-5));
}

TEST(SimplexTest, LargerLpStaysFeasibleAndOptimal) {
  // A beefier scheduler-shaped LP: sanity at the sizes real cycles produce.
  Rng rng(909);
  LpModel m;
  std::vector<std::vector<LpTerm>> capacity(30);
  for (int j = 0; j < 80; ++j) {
    std::vector<LpTerm> demand;
    for (int o = 0; o < 10; ++o) {
      const int var = m.AddVariable(0.0, 1.0, rng.Uniform(0.1, 10.0));
      demand.push_back({var, 1.0});
      for (int c = 0; c < 30; ++c) {
        if (rng.Bernoulli(0.3)) {
          capacity[static_cast<size_t>(c)].push_back({var, rng.Uniform(0.5, 4.0)});
        }
      }
    }
    m.AddRow(RowSense::kLessEqual, 1.0, std::move(demand));
  }
  for (auto& terms : capacity) {
    m.AddRow(RowSense::kLessEqual, rng.Uniform(8.0, 20.0), std::move(terms));
  }
  const LpSolution sol = SolveLp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(sol.values, 1e-5));
  EXPECT_GT(sol.objective, 0.0);
}

// ---------------------------------------------------------------------------
// Row coalescing (LpModel::AddRow)
// ---------------------------------------------------------------------------

TEST(LpModelTest, DuplicateTermsCoalesced) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  const int y = m.AddVariable(0.0, 1.0, 1.0);
  // x appears three times: 2 + 3 - 1 = 4; first-occurrence order is kept.
  const int r = m.AddRow(RowSense::kLessEqual, 5.0,
                         {{x, 2.0}, {y, 1.5}, {x, 3.0}, {x, -1.0}});
  ASSERT_EQ(m.row(r).terms.size(), 2u);
  EXPECT_EQ(m.row(r).terms[0].var, x);
  EXPECT_DOUBLE_EQ(m.row(r).terms[0].coeff, 4.0);
  EXPECT_EQ(m.row(r).terms[1].var, y);
  EXPECT_DOUBLE_EQ(m.row(r).terms[1].coeff, 1.5);
}

TEST(LpModelTest, DuplicateTermsCancellingToZeroDropped) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  const int y = m.AddVariable(0.0, 1.0, 1.0);
  const int r = m.AddRow(RowSense::kLessEqual, 5.0, {{x, 2.0}, {y, 1.0}, {x, -2.0}});
  ASSERT_EQ(m.row(r).terms.size(), 1u);
  EXPECT_EQ(m.row(r).terms[0].var, y);
}

TEST(LpModelTest, CoalescedRowSolvesLikeExplicitRow) {
  // The duplicate-term row must behave exactly like its coalesced equivalent
  // through the solver.
  LpModel dup;
  const int x = dup.AddVariable(0.0, 5.0, 1.0);
  dup.AddRow(RowSense::kLessEqual, 6.0, {{x, 1.0}, {x, 1.0}});  // => 2x <= 6.
  LpModel plain;
  const int px = plain.AddVariable(0.0, 5.0, 1.0);
  plain.AddRow(RowSense::kLessEqual, 6.0, {{px, 2.0}});
  const LpSolution a = SolveLp(dup);
  const LpSolution b = SolveLp(plain);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  EXPECT_NEAR(a.values[x], 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Basis export / import (warm starts)
// ---------------------------------------------------------------------------

TEST(SimplexTest, OwnBasisResolvesWithZeroPivots) {
  // Re-solving an LP from its own optimal basis must take no pivots at all:
  // the install lands primal feasible and pricing finds nothing favorable.
  Rng rng(606);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(2, 10));
    for (int i = 0; i < n; ++i) {
      m.AddVariable(0.0, rng.Uniform(0.5, 3.0), rng.Uniform(-4.0, 5.0));
    }
    const int rows = static_cast<int>(rng.UniformInt(1, 6));
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.6)) {
          terms.push_back({i, rng.Uniform(0.0, 3.0)});
        }
      }
      m.AddRow(RowSense::kLessEqual, rng.Uniform(0.5, 6.0), std::move(terms));
    }
    SimplexOptions cold_options;
    cold_options.presolve = false;  // Keep the exported basis full-space.
    const LpSolution cold = SolveLp(m, cold_options);
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_FALSE(cold.basis.empty());

    SimplexOptions warm_options = cold_options;
    warm_options.start_basis = cold.basis;
    const LpSolution warm = SolveLp(m, warm_options);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-7) << "trial " << trial;
    EXPECT_TRUE(warm.stats.warm_basis_used) << "trial " << trial;
    EXPECT_EQ(warm.iterations, 0) << "trial " << trial;
    EXPECT_EQ(warm.stats.phase1_iterations, 0) << "trial " << trial;
  }
}

TEST(SimplexTest, ParentBasisReoptimizesAfterBoundFix) {
  // The branch-and-bound child pattern: tighten one variable's bounds (fix a
  // 0/1 indicator), restart from the parent's basis, and land on the same
  // optimum a cold solve finds — with zero Phase-1 work.
  Rng rng(707);
  for (int trial = 0; trial < 30; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(4, 12));
    for (int i = 0; i < n; ++i) {
      m.AddVariable(0.0, 1.0, rng.Uniform(-2.0, 6.0));
    }
    const int rows = static_cast<int>(rng.UniformInt(2, 7));
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.5)) {
          terms.push_back({i, rng.Uniform(0.1, 3.0)});
        }
      }
      m.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, 5.0), std::move(terms));
    }
    SimplexOptions options;
    options.presolve = false;
    const LpSolution parent = SolveLp(m, options);
    ASSERT_EQ(parent.status, LpStatus::kOptimal) << "trial " << trial;

    // Fix one variable the way branching does.
    const int fixed = static_cast<int>(rng.UniformInt(0, static_cast<uint64_t>(n - 1)));
    const double side = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    m.SetVariableBounds(fixed, side, side);

    const LpSolution cold = SolveLp(m, options);
    SimplexOptions warm_options = options;
    warm_options.start_basis = parent.basis;
    const LpSolution warm = SolveLp(m, warm_options);

    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.status == LpStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(warm.values, 1e-5)) << "trial " << trial;
      EXPECT_EQ(warm.stats.phase1_iterations, 0) << "trial " << trial;
    }
  }
}

TEST(SimplexTest, ForeignBasisNeverChangesAnswer) {
  // A basis from a completely unrelated model of the same shape must be
  // repaired or discarded — never trusted into a wrong answer.
  Rng rng(909);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 6;
    const int rows = 4;
    const auto make_model = [&]() {
      LpModel m;
      for (int i = 0; i < n; ++i) {
        m.AddVariable(0.0, rng.Uniform(0.5, 2.0), rng.Uniform(-3.0, 4.0));
      }
      for (int r = 0; r < rows; ++r) {
        std::vector<LpTerm> terms;
        for (int i = 0; i < n; ++i) {
          if (rng.Bernoulli(0.6)) {
            terms.push_back({i, rng.Uniform(0.1, 2.0)});
          }
        }
        m.AddRow(RowSense::kLessEqual, rng.Uniform(0.5, 4.0), std::move(terms));
      }
      return m;
    };
    const LpModel donor = make_model();
    const LpModel target = make_model();
    SimplexOptions options;
    options.presolve = false;
    const LpSolution donor_sol = SolveLp(donor, options);
    ASSERT_EQ(donor_sol.status, LpStatus::kOptimal);

    const LpSolution cold = SolveLp(target, options);
    SimplexOptions warm_options = options;
    warm_options.start_basis = donor_sol.basis;
    const LpSolution warm = SolveLp(target, warm_options);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
    EXPECT_TRUE(target.IsFeasible(warm.values, 1e-5)) << "trial " << trial;
  }
}

TEST(SimplexTest, BasisSurvivesPresolveRoundTrip) {
  // With presolve on, the exported basis is in the ORIGINAL space and must
  // re-import cleanly through the reduction of a subsequent solve.
  LpModel m;
  const int a = m.AddVariable(0.0, 1.0, 2.0);
  const int b = m.AddVariable(0.5, 0.5, 1.0);  // Fixed: presolve eliminates.
  const int c = m.AddVariable(0.0, 2.0, 3.0);
  m.AddRow(RowSense::kLessEqual, 2.0, {{a, 1.0}, {b, 1.0}, {c, 1.0}});
  m.AddRow(RowSense::kLessEqual, 50.0, {{a, 1.0}, {c, 1.0}});  // Redundant.
  const LpSolution first = SolveLp(m);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  ASSERT_EQ(first.basis.status.size(),
            static_cast<size_t>(m.num_variables() + m.num_rows()));
  SimplexOptions options;
  options.start_basis = first.basis;
  const LpSolution second = SolveLp(m, options);
  ASSERT_EQ(second.status, LpStatus::kOptimal);
  EXPECT_NEAR(second.objective, first.objective, 1e-9);
  EXPECT_TRUE(second.stats.warm_basis_used);
  EXPECT_EQ(second.iterations, 0);
}

TEST(MilpTest, BasisWarmstartSlashesLpIterations) {
  // Scheduler-shaped B&B stream: with parent-basis warm starts, total LP
  // pivots across the tree must drop sharply and phase-1 work must all but
  // vanish (children re-optimize dually instead of rebuilding feasibility).
  Rng rng(515);
  LpModel m;
  std::vector<int> ints;
  std::vector<std::vector<LpTerm>> capacity(8);
  for (int j = 0; j < 24; ++j) {
    std::vector<LpTerm> demand;
    for (int o = 0; o < 3; ++o) {
      const int var = m.AddVariable(0.0, 1.0, rng.Uniform(0.5, 8.0));
      ints.push_back(var);
      demand.push_back({var, 1.0});
      for (int c = 0; c < 8; ++c) {
        if (rng.Bernoulli(0.4)) {
          capacity[static_cast<size_t>(c)].push_back({var, rng.Uniform(0.5, 3.0)});
        }
      }
    }
    m.AddRow(RowSense::kLessEqual, 1.0, std::move(demand));
  }
  for (auto& terms : capacity) {
    m.AddRow(RowSense::kLessEqual, rng.Uniform(4.0, 10.0), std::move(terms));
  }
  MilpOptions warm_options;
  warm_options.max_nodes = 60;
  MilpOptions cold_options = warm_options;
  cold_options.basis_warmstart = false;

  MilpSolver warm_solver(m, ints);
  const MilpSolution warm = warm_solver.Solve(warm_options);
  MilpSolver cold_solver(m, ints);
  const MilpSolution cold = cold_solver.Solve(cold_options);

  ASSERT_NE(warm.status, MilpStatus::kInfeasible);
  ASSERT_NE(cold.status, MilpStatus::kInfeasible);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_GT(warm.warm_started_nodes, 0);
  EXPECT_EQ(cold.warm_started_nodes, 0);
  ASSERT_GT(cold.lp_iterations, 0);
  // The acceptance bar for the whole PR: >= 3x fewer simplex pivots.
  EXPECT_LE(warm.lp_iterations * 3, cold.lp_iterations)
      << "warm=" << warm.lp_iterations << " cold=" << cold.lp_iterations;
  // Warm nodes re-optimize dually; no phase-1 feasibility rebuild anywhere.
  EXPECT_EQ(warm.lp_phase1_iterations, 0);
  EXPECT_GT(warm.lp_dual_iterations, 0);
  EXPECT_GE(warm.warm_started_nodes, warm.nodes_explored - 2);
}

TEST(MilpTest, NodeBudgetReturnsIncumbent) {
  Rng rng(777);
  LpModel m;
  std::vector<int> ints;
  for (int i = 0; i < 30; ++i) {
    ints.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(1.0, 10.0)));
  }
  for (int r = 0; r < 10; ++r) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < 30; ++i) {
      terms.push_back({i, rng.Uniform(0.1, 2.0)});
    }
    m.AddRow(RowSense::kLessEqual, 8.0, std::move(terms));
  }
  MilpSolver solver(m, ints);
  MilpOptions opts;
  opts.max_nodes = 5;
  const MilpSolution sol = solver.Solve(opts);
  // Must return *some* feasible solution within budget.
  ASSERT_NE(sol.status, MilpStatus::kInfeasible);
  EXPECT_TRUE(m.IsFeasible(sol.values, 1e-6));
  EXPECT_GT(sol.objective, 0.0);
}

}  // namespace
}  // namespace threesigma
