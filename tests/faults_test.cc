// Tests for the fault-injection schedule (src/faults): determinism of the
// pre-materialized node churn, hash-draw processes, and the availability
// timeline the capacity-conservation property checks against.

#include <gtest/gtest.h>

#include <cmath>

#include "src/faults/fault_schedule.h"

namespace threesigma {
namespace {

FaultOptions ChurnOptions(uint64_t seed = 7) {
  FaultOptions options;
  options.node_mttf = 1800.0;
  options.node_mttr = 300.0;
  options.seed = seed;
  return options;
}

TEST(FaultScheduleTest, DefaultScheduleIsEmptyAndInert) {
  const FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_TRUE(schedule.node_events().empty());
  double fraction = -1.0;
  EXPECT_FALSE(schedule.TaskKill(1, 0, &fraction));
  EXPECT_DOUBLE_EQ(schedule.StragglerMultiplier(1, 0), 1.0);
  Duration stall = -1.0;
  EXPECT_FALSE(schedule.CycleStall(0, &stall));
}

TEST(FaultScheduleTest, ZeroMttfSamplesNoChurn) {
  FaultOptions options;
  options.node_mttf = 0.0;
  options.task_kill_prob = 0.5;  // Other processes may still be on.
  const FaultSchedule schedule =
      FaultSchedule::Sample(ClusterConfig::Uniform(2, 8), options, 10000.0);
  EXPECT_TRUE(schedule.node_events().empty());
  EXPECT_FALSE(schedule.empty());  // The kill process still perturbs runs.
}

TEST(FaultScheduleTest, SampleIsDeterministicInSeed) {
  const ClusterConfig cluster = ClusterConfig::Uniform(3, 16);
  const FaultSchedule a = FaultSchedule::Sample(cluster, ChurnOptions(7), 7200.0);
  const FaultSchedule b = FaultSchedule::Sample(cluster, ChurnOptions(7), 7200.0);
  ASSERT_FALSE(a.node_events().empty());
  ASSERT_EQ(a.node_events().size(), b.node_events().size());
  for (size_t i = 0; i < a.node_events().size(); ++i) {
    EXPECT_EQ(a.node_events()[i].time, b.node_events()[i].time);
    EXPECT_EQ(a.node_events()[i].kind, b.node_events()[i].kind);
    EXPECT_EQ(a.node_events()[i].group, b.node_events()[i].group);
    EXPECT_EQ(a.node_events()[i].count, b.node_events()[i].count);
  }

  const FaultSchedule c = FaultSchedule::Sample(cluster, ChurnOptions(8), 7200.0);
  bool identical = c.node_events().size() == a.node_events().size();
  for (size_t i = 0; identical && i < a.node_events().size(); ++i) {
    identical = a.node_events()[i].time == c.node_events()[i].time;
  }
  EXPECT_FALSE(identical) << "different seeds produced identical churn";
}

TEST(FaultScheduleTest, SampledEventsAreSortedInBoundsAndAlternate) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 32);
  const Time horizon = 7200.0;
  const FaultSchedule schedule = FaultSchedule::Sample(cluster, ChurnOptions(), horizon);
  ASSERT_FALSE(schedule.node_events().empty());
  int crashes = 0;
  int repairs = 0;
  for (size_t i = 0; i < schedule.node_events().size(); ++i) {
    const FaultEvent& ev = schedule.node_events()[i];
    EXPECT_GE(ev.time, 0.0);
    EXPECT_LE(ev.time, horizon);
    EXPECT_GE(ev.group, 0);
    EXPECT_LT(ev.group, cluster.num_groups());
    EXPECT_EQ(ev.count, 1);
    if (i > 0) {
      EXPECT_LE(schedule.node_events()[i - 1].time, ev.time);
    }
    (ev.kind == FaultKind::kNodeDown ? crashes : repairs) += 1;
  }
  // Each node alternates crash/repair starting with a crash, so repairs can
  // never outnumber crashes.
  EXPECT_GE(crashes, repairs);
  EXPECT_GT(crashes, 0);
}

TEST(FaultScheduleTest, ReplaySortsAndPreservesEvents) {
  std::vector<FaultEvent> events = {
      {50.0, FaultKind::kNodeUp, 0, 2},
      {10.0, FaultKind::kNodeDown, 0, 2},
  };
  const FaultSchedule schedule = FaultSchedule::Replay(events);
  ASSERT_EQ(schedule.node_events().size(), 2u);
  EXPECT_EQ(schedule.node_events()[0].time, 10.0);
  EXPECT_EQ(schedule.node_events()[0].kind, FaultKind::kNodeDown);
  EXPECT_EQ(schedule.node_events()[1].time, 50.0);
  EXPECT_FALSE(schedule.empty());
}

TEST(FaultScheduleTest, TaskKillFrequencyTracksProbability) {
  FaultOptions options;
  options.task_kill_prob = 0.3;
  options.seed = 11;
  const FaultSchedule schedule = FaultSchedule::Replay({}, options);
  int kills = 0;
  const int trials = 20000;
  for (int job = 0; job < trials; ++job) {
    double fraction = -1.0;
    if (schedule.TaskKill(job, 0, &fraction)) {
      ++kills;
      EXPECT_GT(fraction, 0.0);
      EXPECT_LT(fraction, 1.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(kills) / trials, 0.3, 0.02);
  // Same key, same verdict — the draw is a pure function.
  double f1 = -1.0;
  double f2 = -1.0;
  EXPECT_EQ(schedule.TaskKill(42, 1, &f1), schedule.TaskKill(42, 1, &f2));
  EXPECT_EQ(f1, f2);
}

TEST(FaultScheduleTest, StragglerMultiplierBoundsAndFrequency) {
  FaultOptions options;
  options.straggler_prob = 0.25;
  options.straggler_factor = 3.0;
  options.seed = 13;
  const FaultSchedule schedule = FaultSchedule::Replay({}, options);
  int stragglers = 0;
  const int trials = 20000;
  for (int job = 0; job < trials; ++job) {
    const double mult = schedule.StragglerMultiplier(job, 0);
    EXPECT_GE(mult, 1.0);
    EXPECT_LE(mult, 3.0);
    if (mult > 1.0) {
      ++stragglers;
    }
  }
  EXPECT_NEAR(static_cast<double>(stragglers) / trials, 0.25, 0.02);
}

TEST(FaultScheduleTest, CycleStallDraw) {
  FaultOptions options;
  options.cycle_stall_prob = 1.0;
  options.cycle_stall = 45.0;
  const FaultSchedule schedule = FaultSchedule::Replay({}, options);
  Duration stall = 0.0;
  EXPECT_TRUE(schedule.CycleStall(3, &stall));
  EXPECT_DOUBLE_EQ(stall, 45.0);

  options.cycle_stall_prob = 0.0;
  const FaultSchedule off = FaultSchedule::Replay({}, options);
  EXPECT_FALSE(off.CycleStall(3, &stall));
}

TEST(AvailabilityTimelineTest, StepFunctionAndDowntimeIntegral) {
  const ClusterConfig cluster({{0, "g0", 4}, {1, "g1", 2}});
  const std::vector<FaultEvent> events = {
      {10.0, FaultKind::kNodeDown, 0, 2},
      {20.0, FaultKind::kNodeUp, 0, 1},
      {30.0, FaultKind::kNodeUp, 0, 1},
  };
  const AvailabilityTimeline timeline(cluster, events);
  EXPECT_EQ(timeline.AvailableAt(0, 5.0), 4);
  EXPECT_EQ(timeline.AvailableAt(0, 10.0), 2);  // Events at t apply at t.
  EXPECT_EQ(timeline.AvailableAt(0, 15.0), 2);
  EXPECT_EQ(timeline.AvailableAt(0, 20.0), 3);
  EXPECT_EQ(timeline.AvailableAt(0, 35.0), 4);
  EXPECT_EQ(timeline.AvailableAt(1, 15.0), 2);  // Untouched group.
  // 2 nodes down for [10,20) + 1 node down for [20,30) = 30 node-seconds.
  EXPECT_DOUBLE_EQ(timeline.DowntimeNodeSeconds(40.0), 30.0);
}

TEST(AvailabilityTimelineTest, ClampsExcessCrashes) {
  const ClusterConfig cluster({{0, "g0", 2}});
  const std::vector<FaultEvent> events = {
      {10.0, FaultKind::kNodeDown, 0, 5},  // More crashes than nodes.
      {20.0, FaultKind::kNodeUp, 0, 5},
  };
  const AvailabilityTimeline timeline(cluster, events);
  EXPECT_EQ(timeline.AvailableAt(0, 15.0), 0);
  EXPECT_EQ(timeline.AvailableAt(0, 25.0), 2);
  EXPECT_DOUBLE_EQ(timeline.DowntimeNodeSeconds(30.0), 20.0);
}

}  // namespace
}  // namespace threesigma
