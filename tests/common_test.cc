// Unit and property tests for src/common.

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/env.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace threesigma {
namespace {

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(Seconds(90.0), 90.0);
  EXPECT_DOUBLE_EQ(Minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(Hours(1.5), 5400.0);
  EXPECT_DOUBLE_EQ(MachineHours(10.0, Hours(2.0)), 20.0);
}

TEST(RunningStatsTest, MatchesBatchMoments) {
  RunningStats rs;
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  for (double x : xs) {
    rs.Add(x);
  }
  double mean = 0.0;
  for (double x : xs) {
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(RunningStatsTest, CovOfConstantIsZero) {
  RunningStats rs;
  for (int i = 0; i < 10; ++i) {
    rs.Add(7.0);
  }
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);
}

TEST(EwmaTest, FirstSampleSeeds) {
  EwmaEstimator e(0.6);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, DecaysTowardRecent) {
  EwmaEstimator e(0.6);
  e.Add(10.0);
  e.Add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.6 * 20.0 + 0.4 * 10.0);
  // Feeding a constant long enough converges to it.
  for (int i = 0; i < 50; ++i) {
    e.Add(5.0);
  }
  EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(RecentWindowTest, EvictsOldest) {
  RecentWindow w(3);
  w.Add(1.0);
  w.Add(2.0);
  w.Add(3.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 2.0);
  w.Add(10.0);  // Evicts 1.0.
  EXPECT_DOUBLE_EQ(w.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.Median(), 3.0);
}

TEST(RecentWindowTest, MedianEvenCount) {
  RecentWindow w(4);
  w.Add(1.0);
  w.Add(2.0);
  w.Add(3.0);
  w.Add(4.0);
  EXPECT_DOUBLE_EQ(w.Median(), 2.5);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 25.0);
}

TEST(NmaeTest, PerfectEstimatesScoreZero) {
  EXPECT_DOUBLE_EQ(Nmae({5.0, 10.0}, {5.0, 10.0}), 0.0);
}

TEST(NmaeTest, MatchesDefinition) {
  // |4-5| + |12-10| = 3; actual sum = 15.
  EXPECT_NEAR(Nmae({4.0, 12.0}, {5.0, 10.0}), 3.0 / 15.0, 1e-12);
}

TEST(EstimateErrorHistogramTest, BucketsAndTail) {
  // errors: 0%, +100% (tail), -50%.
  const std::vector<double> actual = {10.0, 10.0, 10.0};
  const std::vector<double> est = {10.0, 20.0, 5.0};
  const EstimateErrorHistogram h = BuildEstimateErrorHistogram(est, actual);
  ASSERT_EQ(h.centers.size(), 21u);
  double total = 0.0;
  for (double f : h.fractions) {
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // 0% error goes to the center bucket (index of decile 0 = 10).
  EXPECT_NEAR(h.fractions[10], 1.0 / 3.0, 1e-12);
  // +100% goes to the tail bucket.
  EXPECT_NEAR(h.fractions.back(), 1.0 / 3.0, 1e-12);
  // -50% goes to the -50 bucket (index 5).
  EXPECT_NEAR(h.fractions[5], 1.0 / 3.0, 1e-12);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    rs.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(rs.mean(), 4.0, 0.1);
}

TEST(RngTest, HyperExponentialMatchesMeanAndCv2) {
  Rng rng(13);
  RunningStats rs;
  const double mean = 10.0;
  const double cv2 = 4.0;  // The paper's arrival process uses c_a^2 = 4.
  for (int i = 0; i < 400000; ++i) {
    rs.Add(rng.HyperExponential(mean, cv2));
  }
  EXPECT_NEAR(rs.mean(), mean, 0.25);
  const double measured_cv2 = rs.variance() / (rs.mean() * rs.mean());
  EXPECT_NEAR(measured_cv2, cv2, 0.4);
}

TEST(RngTest, HyperExponentialCv2OneIsExponential) {
  Rng rng(17);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    rs.Add(rng.HyperExponential(5.0, 1.0));
  }
  const double measured_cv2 = rs.variance() / (rs.mean() * rs.mean());
  EXPECT_NEAR(measured_cv2, 1.0, 0.15);
}

TEST(RngTest, BoundedParetoStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.BoundedPareto(1.0, 1000.0, 1.1);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 1000.0 + 1e-9);
  }
}

TEST(RngTest, BoundedParetoIsHeavyTailed) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(rng.BoundedPareto(1.0, 10000.0, 0.9));
  }
  // Heavy tail: mean far above median.
  const double median = Quantile(xs, 0.5);
  EXPECT_GT(Mean(xs), 3.0 * median);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.WeightedIndex({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, WeightedIndexSkipsZeroWeight) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, ForkProducesDecorrelatedStreams) {
  Rng parent(1);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Different forks disagree almost surely on the first draw.
  EXPECT_NE(child1.Uniform(0.0, 1.0), child2.Uniform(0.0, 1.0));
}

TEST(EnvTest, ReadsAndFallsBack) {
  ::setenv("TS_TEST_STRING", "hello", 1);
  ::setenv("TS_TEST_INT", "123", 1);
  ::setenv("TS_TEST_DOUBLE", "2.5", 1);
  EXPECT_EQ(GetEnvString("TS_TEST_STRING", "x"), "hello");
  EXPECT_EQ(GetEnvInt("TS_TEST_INT", 0), 123);
  EXPECT_DOUBLE_EQ(GetEnvDouble("TS_TEST_DOUBLE", 0.0), 2.5);
  EXPECT_EQ(GetEnvString("TS_TEST_UNSET_12345", "fallback"), "fallback");
  EXPECT_EQ(GetEnvInt("TS_TEST_UNSET_12345", -7), -7);
  EXPECT_DOUBLE_EQ(GetEnvDouble("TS_TEST_UNSET_12345", 1.5), 1.5);
  // Unparseable values fall back too.
  ::setenv("TS_TEST_INT", "zzz", 1);
  EXPECT_EQ(GetEnvInt("TS_TEST_INT", 9), 9);
  ::unsetenv("TS_TEST_STRING");
  ::unsetenv("TS_TEST_INT");
  ::unsetenv("TS_TEST_DOUBLE");
}

TEST(EnvTest, BenchScaleModes) {
  ::setenv("THREESIGMA_BENCH_SCALE", "quick", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.25);
  ::setenv("THREESIGMA_BENCH_SCALE", "full", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 4.0);
  ::setenv("THREESIGMA_BENCH_SCALE", "default", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  ::unsetenv("THREESIGMA_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, CsvRoundtrip) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace threesigma
