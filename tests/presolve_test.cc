// Presolve reduction tests: correctness of eliminations, verdicts, and
// equivalence of solve-with-presolve vs solve-without on random models.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"
#include "src/solver/presolve.h"
#include "src/solver/simplex.h"

namespace threesigma {
namespace {

TEST(PresolveTest, FixedVariableSubstituted) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 3.0);
  const int y = m.AddVariable(0.5, 0.5, 2.0);  // Fixed at 0.5.
  m.AddRow(RowSense::kLessEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.vars_removed, 1);
  EXPECT_EQ(pre.reduced.num_variables(), 1);
  // Row becomes x <= 0.5.
  ASSERT_EQ(pre.reduced.num_rows(), 1);
  EXPECT_NEAR(pre.reduced.row(0).rhs, 0.5, 1e-12);
  // Expansion restores y.
  const std::vector<double> full = pre.ExpandSolution({0.25});
  EXPECT_DOUBLE_EQ(full[static_cast<size_t>(x)], 0.25);
  EXPECT_DOUBLE_EQ(full[static_cast<size_t>(y)], 0.5);
}

TEST(PresolveTest, RowFreeVariableMovesToBestBound) {
  LpModel m;
  m.AddVariable(0.0, 2.0, 5.0);   // Maximize: picks 2.
  m.AddVariable(0.0, 2.0, -1.0);  // Minimize: picks 0.
  const PresolveResult pre = Presolve(m);
  EXPECT_EQ(pre.vars_removed, 2);
  const std::vector<double> full = pre.ExpandSolution({});
  EXPECT_DOUBLE_EQ(full[0], 2.0);
  EXPECT_DOUBLE_EQ(full[1], 0.0);
}

TEST(PresolveTest, RedundantRowDropped) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowSense::kLessEqual, 5.0, {{x, 1.0}});  // x <= 5 can never bind.
  const PresolveResult pre = Presolve(m);
  EXPECT_EQ(pre.rows_removed, 1);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
}

TEST(PresolveTest, InfeasibleRowDetected) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowSense::kGreaterEqual, 5.0, {{x, 1.0}});  // x >= 5 impossible.
  const PresolveResult pre = Presolve(m);
  EXPECT_TRUE(pre.proven_infeasible);
}

TEST(PresolveTest, FixedVariablesProveInfeasibility) {
  LpModel m;
  const int x = m.AddVariable(1.0, 1.0, 1.0);
  const int y = m.AddVariable(1.0, 1.0, 1.0);
  m.AddRow(RowSense::kLessEqual, 1.5, {{x, 1.0}, {y, 1.0}});  // 2 <= 1.5.
  const PresolveResult pre = Presolve(m);
  EXPECT_TRUE(pre.proven_infeasible);
}

TEST(PresolveTest, ConsistentFullySubstitutedRowDropped) {
  LpModel m;
  const int x = m.AddVariable(0.3, 0.3, 1.0);
  m.AddRow(RowSense::kEqual, 0.3, {{x, 1.0}});
  const PresolveResult pre = Presolve(m);
  EXPECT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_EQ(pre.reduced.num_variables(), 0);
}

TEST(PresolveTest, SolveLpWithAndWithoutPresolveAgree) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(3, 10));
    for (int i = 0; i < n; ++i) {
      // A mix of fixed, free-ish, and normal variables.
      const double lo = rng.Uniform(0.0, 1.0);
      const double up = rng.Bernoulli(0.2) ? lo : lo + rng.Uniform(0.0, 2.0);
      m.AddVariable(lo, up, rng.Uniform(-3.0, 3.0));
    }
    const int rows = static_cast<int>(rng.UniformInt(1, 5));
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.5)) {
          terms.push_back({i, rng.Uniform(-1.0, 2.0)});
        }
      }
      if (terms.empty()) {
        terms.push_back({0, 1.0});
      }
      m.AddRow(rng.Bernoulli(0.8) ? RowSense::kLessEqual : RowSense::kGreaterEqual,
               rng.Uniform(0.0, 6.0), std::move(terms));
    }
    SimplexOptions with;
    with.presolve = true;
    SimplexOptions without;
    without.presolve = false;
    const LpSolution a = SolveLp(m, with);
    const LpSolution b = SolveLp(m, without);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == LpStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-5) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(a.values, 1e-5)) << "trial " << trial;
    }
  }
}

TEST(PresolveTest, MilpWithPresolvedNodesMatchesBruteForce) {
  // End-to-end: branch-and-bound (whose node LPs now run presolve) still
  // matches exhaustive enumeration.
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(4, 10));
    std::vector<int> ints;
    for (int i = 0; i < n; ++i) {
      ints.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(-1.0, 6.0)));
    }
    for (int r = 0; r < 3; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        terms.push_back({i, rng.Uniform(0.1, 2.0)});
      }
      m.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, 4.0), std::move(terms));
    }
    MilpSolver solver(m, ints);
    const MilpSolution sol = solver.Solve();
    ASSERT_EQ(sol.status, MilpStatus::kOptimal);
    // Exhaustive check.
    double best = 0.0;  // All-zeros is feasible.
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<double> x(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        x[static_cast<size_t>(i)] = (mask >> i) & 1u ? 1.0 : 0.0;
      }
      if (m.IsFeasible(x)) {
        best = std::max(best, m.ObjectiveValue(x));
      }
    }
    EXPECT_NEAR(sol.objective, best, 1e-5) << "trial " << trial;
  }
}

}  // namespace
}  // namespace threesigma
