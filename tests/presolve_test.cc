// Presolve reduction tests: correctness of eliminations, verdicts, and
// equivalence of solve-with-presolve vs solve-without on random models.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"
#include "src/solver/presolve.h"
#include "src/solver/simplex.h"

namespace threesigma {
namespace {

TEST(PresolveTest, FixedVariableSubstituted) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 3.0);
  const int y = m.AddVariable(0.5, 0.5, 2.0);  // Fixed at 0.5.
  m.AddRow(RowSense::kLessEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.vars_removed, 1);
  EXPECT_EQ(pre.reduced.num_variables(), 1);
  // Row becomes x <= 0.5.
  ASSERT_EQ(pre.reduced.num_rows(), 1);
  EXPECT_NEAR(pre.reduced.row(0).rhs, 0.5, 1e-12);
  // Expansion restores y.
  const std::vector<double> full = pre.ExpandSolution({0.25});
  EXPECT_DOUBLE_EQ(full[static_cast<size_t>(x)], 0.25);
  EXPECT_DOUBLE_EQ(full[static_cast<size_t>(y)], 0.5);
}

TEST(PresolveTest, RowFreeVariableMovesToBestBound) {
  LpModel m;
  m.AddVariable(0.0, 2.0, 5.0);   // Maximize: picks 2.
  m.AddVariable(0.0, 2.0, -1.0);  // Minimize: picks 0.
  const PresolveResult pre = Presolve(m);
  EXPECT_EQ(pre.vars_removed, 2);
  const std::vector<double> full = pre.ExpandSolution({});
  EXPECT_DOUBLE_EQ(full[0], 2.0);
  EXPECT_DOUBLE_EQ(full[1], 0.0);
}

TEST(PresolveTest, RedundantRowDropped) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowSense::kLessEqual, 5.0, {{x, 1.0}});  // x <= 5 can never bind.
  const PresolveResult pre = Presolve(m);
  EXPECT_EQ(pre.rows_removed, 1);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
}

TEST(PresolveTest, InfeasibleRowDetected) {
  LpModel m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowSense::kGreaterEqual, 5.0, {{x, 1.0}});  // x >= 5 impossible.
  const PresolveResult pre = Presolve(m);
  EXPECT_TRUE(pre.proven_infeasible);
}

TEST(PresolveTest, FixedVariablesProveInfeasibility) {
  LpModel m;
  const int x = m.AddVariable(1.0, 1.0, 1.0);
  const int y = m.AddVariable(1.0, 1.0, 1.0);
  m.AddRow(RowSense::kLessEqual, 1.5, {{x, 1.0}, {y, 1.0}});  // 2 <= 1.5.
  const PresolveResult pre = Presolve(m);
  EXPECT_TRUE(pre.proven_infeasible);
}

TEST(PresolveTest, ConsistentFullySubstitutedRowDropped) {
  LpModel m;
  const int x = m.AddVariable(0.3, 0.3, 1.0);
  m.AddRow(RowSense::kEqual, 0.3, {{x, 1.0}});
  const PresolveResult pre = Presolve(m);
  EXPECT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_EQ(pre.reduced.num_variables(), 0);
}

TEST(PresolveTest, SolveLpWithAndWithoutPresolveAgree) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(3, 10));
    for (int i = 0; i < n; ++i) {
      // A mix of fixed, free-ish, and normal variables.
      const double lo = rng.Uniform(0.0, 1.0);
      const double up = rng.Bernoulli(0.2) ? lo : lo + rng.Uniform(0.0, 2.0);
      m.AddVariable(lo, up, rng.Uniform(-3.0, 3.0));
    }
    const int rows = static_cast<int>(rng.UniformInt(1, 5));
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.5)) {
          terms.push_back({i, rng.Uniform(-1.0, 2.0)});
        }
      }
      if (terms.empty()) {
        terms.push_back({0, 1.0});
      }
      m.AddRow(rng.Bernoulli(0.8) ? RowSense::kLessEqual : RowSense::kGreaterEqual,
               rng.Uniform(0.0, 6.0), std::move(terms));
    }
    SimplexOptions with;
    with.presolve = true;
    SimplexOptions without;
    without.presolve = false;
    const LpSolution a = SolveLp(m, with);
    const LpSolution b = SolveLp(m, without);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == LpStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-5) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(a.values, 1e-5)) << "trial " << trial;
    }
  }
}

TEST(PresolveTest, MilpWithPresolvedNodesMatchesBruteForce) {
  // End-to-end: branch-and-bound (whose node LPs now run presolve) still
  // matches exhaustive enumeration.
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(4, 10));
    std::vector<int> ints;
    for (int i = 0; i < n; ++i) {
      ints.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(-1.0, 6.0)));
    }
    for (int r = 0; r < 3; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < n; ++i) {
        terms.push_back({i, rng.Uniform(0.1, 2.0)});
      }
      m.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, 4.0), std::move(terms));
    }
    MilpSolver solver(m, ints);
    const MilpSolution sol = solver.Solve();
    ASSERT_EQ(sol.status, MilpStatus::kOptimal);
    // Exhaustive check.
    double best = 0.0;  // All-zeros is feasible.
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<double> x(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        x[static_cast<size_t>(i)] = (mask >> i) & 1u ? 1.0 : 0.0;
      }
      if (m.IsFeasible(x)) {
        best = std::max(best, m.ObjectiveValue(x));
      }
    }
    EXPECT_NEAR(sol.objective, best, 1e-5) << "trial " << trial;
  }
}

TEST(PresolveTest, RandomizedDifferentialWithFullyFixedRows) {
  // Adversarial generator aimed at the reduction edge cases: a high fixing
  // rate so some rows end up with EVERY variable fixed by bounds (the row
  // reduces to a pure consistency check — sometimes an infeasible one),
  // equality rows, and negative coefficients. Presolve-on and presolve-off
  // must agree on status and objective on all of it.
  Rng rng(606);
  int fully_fixed_rows_seen = 0;
  int infeasible_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.UniformInt(2, 9));
    std::vector<bool> fixed(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double lo = rng.Uniform(0.0, 1.5);
      fixed[static_cast<size_t>(i)] = rng.Bernoulli(0.45);
      const double up = fixed[static_cast<size_t>(i)] ? lo : lo + rng.Uniform(0.1, 2.0);
      m.AddVariable(lo, up, rng.Uniform(-3.0, 3.0));
    }
    const int rows = static_cast<int>(rng.UniformInt(1, 6));
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      bool all_fixed = true;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.6)) {
          terms.push_back({i, rng.Uniform(-1.5, 2.5)});
          all_fixed = all_fixed && fixed[static_cast<size_t>(i)];
        }
      }
      if (terms.empty()) {
        terms.push_back({0, 1.0});
        all_fixed = fixed[0];
      }
      if (all_fixed) {
        ++fully_fixed_rows_seen;
      }
      const double roll = rng.Uniform(0.0, 1.0);
      if (roll < 0.15) {
        // Equality rows through an activity the bounds can often reach.
        m.AddRow(RowSense::kEqual, rng.Uniform(0.0, 3.0), std::move(terms));
      } else if (roll < 0.35) {
        m.AddRow(RowSense::kGreaterEqual, rng.Uniform(-1.0, 2.5), std::move(terms));
      } else {
        m.AddRow(RowSense::kLessEqual, rng.Uniform(0.0, 5.0), std::move(terms));
      }
    }
    SimplexOptions with;
    with.presolve = true;
    SimplexOptions without;
    without.presolve = false;
    const LpSolution a = SolveLp(m, with);
    const LpSolution b = SolveLp(m, without);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == LpStatus::kInfeasible) {
      ++infeasible_seen;
      continue;
    }
    if (a.status == LpStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-5) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(a.values, 1e-5)) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(b.values, 1e-5)) << "trial " << trial;
    }
  }
  // The generator must actually hit the edge cases this test is about.
  EXPECT_GT(fully_fixed_rows_seen, 0);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(PresolveTest, BasisMapsRoundTripAcrossReductions) {
  // MapBasisToReduced / MapBasisToFull: statuses of surviving entries pass
  // through unchanged, eliminated variables rest at their assigned bound, and
  // removed rows come back with basic slacks.
  LpModel m;
  const int a = m.AddVariable(0.0, 1.0, 2.0);   // Survives.
  const int b = m.AddVariable(0.7, 0.7, 1.0);   // Fixed: eliminated.
  const int c = m.AddVariable(0.0, 3.0, -1.0);  // Row-free: eliminated at 0.
  m.AddRow(RowSense::kLessEqual, 1.5, {{a, 1.0}, {b, 1.0}});  // Survives: a <= 0.8.
  m.AddRow(RowSense::kLessEqual, 9.0, {{a, 1.0}});            // Redundant.
  const PresolveResult pre = Presolve(m);
  ASSERT_EQ(pre.reduced.num_variables(), 1);
  ASSERT_EQ(pre.reduced.num_rows(), 1);
  ASSERT_EQ(pre.row_map.size(), 1u);
  EXPECT_EQ(pre.row_map[0], 0);

  LpBasis full;
  full.status.assign(5, BasisStatus::kAtLower);  // 3 vars + 2 slacks.
  full.status[static_cast<size_t>(a)] = BasisStatus::kBasic;
  full.status[3] = BasisStatus::kAtUpper;  // Slack of surviving row 0.
  const LpBasis reduced = pre.MapBasisToReduced(full, 3, 2);
  ASSERT_EQ(reduced.status.size(), 2u);  // 1 var + 1 row.
  EXPECT_EQ(reduced.status[0], BasisStatus::kBasic);
  EXPECT_EQ(reduced.status[1], BasisStatus::kAtUpper);

  const LpBasis back = pre.MapBasisToFull(reduced, 3, 2);
  ASSERT_EQ(back.status.size(), 5u);
  EXPECT_EQ(back.status[static_cast<size_t>(a)], BasisStatus::kBasic);
  EXPECT_EQ(back.status[static_cast<size_t>(b)], BasisStatus::kAtLower);
  EXPECT_EQ(back.status[static_cast<size_t>(c)], BasisStatus::kAtLower);
  EXPECT_EQ(back.status[3], BasisStatus::kAtUpper);  // Surviving row's slack.
  EXPECT_EQ(back.status[4], BasisStatus::kBasic);    // Removed row's slack.

  // Dimension mismatches are rejected, not mangled.
  LpBasis wrong;
  wrong.status.assign(4, BasisStatus::kAtLower);
  EXPECT_TRUE(pre.MapBasisToReduced(wrong, 3, 2).empty());
  EXPECT_TRUE(pre.MapBasisToFull(wrong, 3, 2).empty());
}

}  // namespace
}  // namespace threesigma
