// Property tests for fault injection through the full scheduler/simulator
// stack:
//   - chaos on: same-seed runs at solver_threads 1 vs 4 are byte-identical
//     (every fault event is pre-materialized or hash-drawn, so churn cannot
//     leak thread-count nondeterminism into the trace),
//   - chaos off: inert fault options (all processes disabled) change nothing
//     relative to the default-constructed options,
//   - capacity conservation: at every instant — including the instants of
//     crashes themselves — allocated tasks per group never exceed the
//     available (non-crashed) node count implied by the applied fault events.

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/faults/fault_schedule.h"
#include "src/metrics/metrics.h"

namespace threesigma {
namespace {

ExperimentConfig ChaosConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(4, 16);
  config.workload.duration = Minutes(20.0);
  config.workload.load = 1.3;
  config.workload.model_sample_jobs = 800;
  config.workload.pretrain_jobs = 1000;
  config.workload.seed = 11;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 11;
  config.sched.cycle_period = config.sim.cycle_period;
  // Wall-clock budgets are the one nondeterministic solver input.
  config.sched.solver_time_limit_seconds = 0.0;
  // Aggressive chaos: enough churn that several crashes land on occupied
  // nodes, plus all three hash-draw processes.
  config.sim.faults.node_mttf = 1200.0;
  config.sim.faults.node_mttr = 240.0;
  config.sim.faults.task_kill_prob = 0.05;
  config.sim.faults.straggler_prob = 0.1;
  config.sim.faults.straggler_factor = 2.5;
  config.sim.faults.cycle_stall_prob = 0.05;
  config.sim.faults.seed = 5;
  return config;
}

// DecisionTrace extended with the fault-observability fields: anything that
// could diverge between runs must be serialized.
std::string FaultTrace(const SimResult& result) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const JobRecord& job : result.jobs) {
    os << "job " << job.spec.id << " s" << static_cast<int>(job.status) << " g" << job.group
       << " " << job.start_time << " " << job.finish_time << " p" << job.preemptions << " f"
       << job.fault_kills << " w" << job.completed_work << " runs";
    for (const JobRun& run : job.runs) {
      os << " [" << run.group << " " << run.start << " " << run.end << " " << run.completed
         << "]";
    }
    os << "\n";
  }
  for (const CycleStats& c : result.cycles) {
    os << "cycle " << c.time << " v" << c.milp_variables << " r" << c.milp_rows << " n"
       << c.milp_nodes << " q" << c.milp_max_queue_depth << " i"
       << c.milp_incumbent_improvements << " h" << c.capacity_cache_hits << " m"
       << c.capacity_cache_misses << " p" << c.pending << " j" << c.running_jobs << "\n";
  }
  for (const FaultEvent& ev : result.fault_events) {
    os << "fault " << ev.time << " k" << static_cast<int>(ev.kind) << " g" << ev.group << " c"
       << ev.count << "\n";
  }
  os << "rejected " << result.rejected_placements << " preempts " << result.total_preemptions
     << " kills " << result.tasks_killed_by_faults << " stalls " << result.stalled_cycles
     << " rework " << result.rework_node_seconds << " down " << result.node_downtime_fraction
     << " end " << result.end_time << "\n";
  return os.str();
}

TEST(FaultPropertyTest, ChaosRunsAreByteReproducibleAcrossThreadCounts) {
  ExperimentConfig config = ChaosConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

  config.sched.solver_threads = 1;
  const SimResult serial = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  config.sched.solver_threads = 4;
  const SimResult parallel = SimulateSystem(SystemKind::kThreeSigma, config, workload);

  // The chaos must actually bite for this to prove anything.
  EXPECT_GT(serial.fault_node_events, 0);
  EXPECT_GT(serial.tasks_killed_by_faults, 0);
  EXPECT_EQ(FaultTrace(serial), FaultTrace(parallel));
}

TEST(FaultPropertyTest, InertFaultOptionsAreAStrictNoOp) {
  // Non-default but disabled knobs (probabilities zero, mttf zero) must
  // produce the exact trace of default-constructed options: chaos off cannot
  // perturb a single event.
  ExperimentConfig config = ChaosConfig();
  config.sim.faults = FaultOptions{};
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  const SimResult baseline = SimulateSystem(SystemKind::kThreeSigma, config, workload);

  config.sim.faults.node_mttf = 0.0;       // Off, despite...
  config.sim.faults.node_mttr = 123.0;     // ...non-default repair time,
  config.sim.faults.straggler_factor = 9.0;  // ...inflation cap,
  config.sim.faults.cycle_stall = 77.0;    // ...and stall length.
  config.sim.faults.seed = 999;
  const SimResult inert = SimulateSystem(SystemKind::kThreeSigma, config, workload);

  EXPECT_EQ(FaultTrace(baseline), FaultTrace(inert));
  const RunMetrics m = ComputeMetrics(inert, "3Sigma");
  EXPECT_EQ(m.tasks_killed_by_faults, 0);
  EXPECT_EQ(m.fault_node_events, 0);
  EXPECT_EQ(m.stalled_cycles, 0);
  EXPECT_DOUBLE_EQ(m.node_downtime_fraction, 0.0);
  EXPECT_DOUBLE_EQ(m.rework_ratio, 0.0);
}

// Gang occupancy of `group` at time t implied by the run provenance, using
// half-open [start, end) run intervals (a run evicted at a crash instant has
// already vacated at that instant).
int OccupancyAt(const SimResult& result, int group, Time t) {
  int occupied = 0;
  for (const JobRecord& job : result.jobs) {
    for (const JobRun& run : job.runs) {
      if (run.group == group && run.start <= t && t < run.end) {
        occupied += job.spec.num_tasks;
      }
    }
  }
  return occupied;
}

TEST(FaultPropertyTest, AllocationNeverExceedsAvailableNodes) {
  ExperimentConfig config = ChaosConfig();
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  for (SystemKind kind : {SystemKind::kThreeSigma, SystemKind::kPrio}) {
    const SimResult result = SimulateSystem(kind, config, workload);
    ASSERT_GT(result.fault_node_events, 0);
    ASSERT_GT(result.tasks_killed_by_faults, 0);
    const AvailabilityTimeline timeline(config.cluster, result.fault_events);

    // Check at every decision-relevant instant: run starts and ends, fault
    // event times (cycles straddling crashes included — a cycle boundary is
    // always a run start if it placed anything), and midpoints between
    // consecutive fault events to catch between-event drift.
    std::vector<Time> checkpoints;
    for (const JobRecord& job : result.jobs) {
      for (const JobRun& run : job.runs) {
        checkpoints.push_back(run.start);
        checkpoints.push_back(run.end);
      }
    }
    for (size_t i = 0; i < result.fault_events.size(); ++i) {
      checkpoints.push_back(result.fault_events[i].time);
      if (i + 1 < result.fault_events.size()) {
        checkpoints.push_back(
            0.5 * (result.fault_events[i].time + result.fault_events[i + 1].time));
      }
    }
    std::sort(checkpoints.begin(), checkpoints.end());
    checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                      checkpoints.end());

    for (Time t : checkpoints) {
      if (t < 0.0 || t > result.end_time) {
        continue;
      }
      for (int g = 0; g < config.cluster.num_groups(); ++g) {
        EXPECT_LE(OccupancyAt(result, g, t), timeline.AvailableAt(g, t))
            << SystemName(kind) << " group " << g << " at t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace threesigma
