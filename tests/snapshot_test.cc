// Checkpoint/restore subsystem tests.
//
// The headline property: checkpoint a faulty, multi-threaded, warm-started
// run at an arbitrary cycle, "kill" it, resume into a freshly built system,
// and the finished trace — every job record, cycle stat, and fault counter —
// is byte-identical to the uninterrupted run. Plus codec unit tests,
// RNG-stream round trips, and rejection of truncated/corrupted snapshots
// (graceful via Try*, aborting via the unchecked forms).

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/experiment.h"
#include "src/metrics/report.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

// ---------------------------------------------------------------------------
// Codec primitives.

TEST(SnapshotCodecTest, PrimitiveRoundTrip) {
  SnapshotWriter writer;
  writer.BeginSection("prim", 3);
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    writer.WriteVarU64(v);
  }
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64}, int64_t{64},
                    std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max()}) {
    writer.WriteVarI64(v);
  }
  for (double v : {0.0, -0.0, 0.1, -1e300, std::numeric_limits<double>::infinity()}) {
    writer.WriteDouble(v);
  }
  writer.WriteBool(true);
  writer.WriteBool(false);
  const std::string with_nul("null\0inside", 11);
  writer.WriteString(with_nul);
  writer.WriteDoubleVec({1.5, -2.5, 3.25});
  writer.WriteIntVec({-7, 0, 42});
  writer.EndSection();

  SnapshotReader reader(writer.Finish());
  ASSERT_TRUE(reader.ok()) << reader.error();
  uint32_t version = 0;
  ASSERT_TRUE(reader.BeginSection("prim", &version));
  EXPECT_EQ(version, 3u);
  EXPECT_EQ(reader.ReadU8(), 0xab);
  EXPECT_EQ(reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789abcdefULL);
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    EXPECT_EQ(reader.ReadVarU64(), v);
  }
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64}, int64_t{64},
                    std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(reader.ReadVarI64(), v);
  }
  for (double v : {0.0, -0.0, 0.1, -1e300, std::numeric_limits<double>::infinity()}) {
    const double got = reader.ReadDouble();
    EXPECT_EQ(got, v);
    EXPECT_EQ(std::signbit(got), std::signbit(v));  // -0.0 round-trips exactly.
  }
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_FALSE(reader.ReadBool());
  EXPECT_EQ(reader.ReadString(), with_nul);
  EXPECT_EQ(reader.ReadDoubleVec(), (std::vector<double>{1.5, -2.5, 3.25}));
  EXPECT_EQ(reader.ReadIntVec(), (std::vector<int>{-7, 0, 42}));
  reader.EndSection();
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_FALSE(reader.HasMoreSections());
}

TEST(SnapshotCodecTest, NanDoubleRoundTripsBitExactly) {
  SnapshotWriter writer;
  writer.BeginSection("nan", 1);
  writer.WriteDouble(std::numeric_limits<double>::quiet_NaN());
  writer.EndSection();
  SnapshotReader reader(writer.Finish());
  reader.BeginSection("nan");
  EXPECT_TRUE(std::isnan(reader.ReadDouble()));
  reader.EndSection();
  EXPECT_TRUE(reader.ok());
}

TEST(SnapshotCodecTest, EndSectionSkipsUnreadPayload) {
  // A newer writer appends fields an old reader does not know; EndSection
  // must land the reader on the next section header regardless.
  SnapshotWriter writer;
  writer.BeginSection("grew", 2);
  writer.WriteVarU64(7);
  writer.WriteString("field the reader never asks for");
  writer.WriteDouble(3.14);
  writer.EndSection();
  writer.BeginSection("next", 1);
  writer.WriteVarU64(99);
  writer.EndSection();

  SnapshotReader reader(writer.Finish());
  ASSERT_TRUE(reader.BeginSection("grew"));
  EXPECT_EQ(reader.ReadVarU64(), 7u);
  EXPECT_GT(reader.SectionRemaining(), 0u);
  reader.EndSection();  // Skips the two unread fields.
  ASSERT_TRUE(reader.BeginSection("next"));
  EXPECT_EQ(reader.ReadVarU64(), 99u);
  reader.EndSection();
  EXPECT_TRUE(reader.ok()) << reader.error();
}

TEST(SnapshotCodecTest, SectionNameMismatchFailsSoft) {
  SnapshotWriter writer;
  writer.BeginSection("alpha", 1);
  writer.WriteVarU64(1);
  writer.EndSection();
  SnapshotReader reader(writer.Finish());
  EXPECT_FALSE(reader.BeginSection("beta"));
  EXPECT_FALSE(reader.ok());
  // Fail-soft: reads after the failure return zeroes, never crash.
  EXPECT_EQ(reader.ReadVarU64(), 0u);
  EXPECT_EQ(reader.ReadString(), "");
}

TEST(SnapshotCodecTest, CorruptionIsDetectedUpFront) {
  SnapshotWriter writer;
  writer.BeginSection("data", 1);
  for (int i = 0; i < 100; ++i) {
    writer.WriteVarU64(static_cast<uint64_t>(i));
  }
  writer.EndSection();
  const std::string good = writer.Finish();

  {
    std::string truncated = good.substr(0, good.size() / 2);
    SnapshotReader reader(truncated);
    EXPECT_FALSE(reader.ok());
  }
  {
    std::string flipped = good;
    flipped[good.size() / 2] = static_cast<char>(flipped[good.size() / 2] ^ 0x40);
    SnapshotReader reader(flipped);
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("CRC"), std::string::npos) << reader.error();
  }
  {
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    SnapshotReader reader(bad_magic);
    EXPECT_FALSE(reader.ok());
  }
}

TEST(SnapshotCodecTest, BorrowedReaderRoundTripSharesOneBuffer) {
  // The twin fork fan-out restores many clones from one live snapshot; each
  // borrowed reader must decode the shared bytes without copying or mutating
  // them.
  SnapshotWriter writer;
  writer.BeginSection("shared", 2);
  writer.WriteVarU64(41);
  writer.WriteString("forked");
  writer.WriteDoubleVec({2.5, -0.125});
  writer.EndSection();
  const std::string buffer = writer.Finish();
  const std::string before = buffer;

  for (int fork = 0; fork < 3; ++fork) {
    SnapshotReader reader(SnapshotReader::Borrowed{}, buffer);
    ASSERT_TRUE(reader.ok()) << reader.error();
    uint32_t version = 0;
    ASSERT_TRUE(reader.BeginSection("shared", &version));
    EXPECT_EQ(version, 2u);
    EXPECT_EQ(reader.ReadVarU64(), 41u);
    EXPECT_EQ(reader.ReadString(), "forked");
    EXPECT_EQ(reader.ReadDoubleVec(), (std::vector<double>{2.5, -0.125}));
    reader.EndSection();
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_FALSE(reader.HasMoreSections());
  }
  EXPECT_EQ(buffer, before);  // Borrowed readers never touch the bytes.
}

TEST(SnapshotCodecTest, BorrowedReaderDetectsCorruptionUpFront) {
  SnapshotWriter writer;
  writer.BeginSection("data", 1);
  for (int i = 0; i < 100; ++i) {
    writer.WriteVarU64(static_cast<uint64_t>(i));
  }
  writer.EndSection();
  const std::string good = writer.Finish();

  {
    const std::string truncated = good.substr(0, good.size() / 2);
    SnapshotReader reader(SnapshotReader::Borrowed{}, truncated);
    EXPECT_FALSE(reader.ok());
    // Fail-soft, same as the owning mode: reads return zero values.
    EXPECT_FALSE(reader.BeginSection("data"));
    EXPECT_EQ(reader.ReadVarU64(), 0u);
  }
  {
    std::string flipped = good;
    flipped[good.size() / 2] = static_cast<char>(flipped[good.size() / 2] ^ 0x40);
    SnapshotReader reader(SnapshotReader::Borrowed{}, flipped);
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("CRC"), std::string::npos) << reader.error();
  }
  {
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    SnapshotReader reader(SnapshotReader::Borrowed{}, bad_magic);
    EXPECT_FALSE(reader.ok());
  }
}

TEST(SnapshotCodecTest, ListAndDiffSections) {
  const auto build = [](uint64_t payload) {
    SnapshotWriter writer;
    writer.BeginSection("same", 1);
    writer.WriteVarU64(11);
    writer.EndSection();
    writer.BeginSection("differs", 1);
    writer.WriteVarU64(payload);
    writer.EndSection();
    writer.BeginSection("timing", 1);
    writer.WriteDouble(static_cast<double>(payload) * 0.5);  // Wall clock.
    writer.EndSection();
    return writer.Finish();
  };
  const std::string a = build(1);
  const std::string b = build(2);

  std::vector<SnapshotSection> sections;
  ASSERT_TRUE(ListSnapshotSections(a, &sections));
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].name, "same");
  EXPECT_EQ(sections[1].name, "differs");

  EXPECT_TRUE(DiffSnapshotSections(a, a).empty());
  EXPECT_EQ(DiffSnapshotSections(a, b, {"timing"}),
            (std::vector<std::string>{"differs"}));
  EXPECT_EQ(DiffSnapshotSections(a, b),
            (std::vector<std::string>{"differs", "timing"}));
}

// ---------------------------------------------------------------------------
// Untrusted-input robustness. Service frames arrive from the network, so the
// reader must survive arbitrary corruption — clean error, never a crash, a
// hang, or an attacker-sized allocation.

std::string BuildRichSnapshot() {
  SnapshotWriter writer;
  writer.BeginSection("alpha", 1);
  writer.WriteVarU64(12);
  writer.WriteString("hello world");
  writer.WriteDoubleVec({1.0, 2.0, 3.0, 4.0});
  writer.EndSection();
  writer.BeginSection("beta", 2);
  writer.WriteIntVec({5, -6, 7});
  writer.WriteDouble(2.75);
  writer.WriteString(std::string(64, 'x'));
  writer.EndSection();
  writer.BeginSection("gamma", 3);
  for (int i = 0; i < 32; ++i) {
    writer.WriteVarI64(i * 1000 - 7);
  }
  writer.EndSection();
  return writer.Finish();
}

// Repatches the trailing CRC so a mutated body passes envelope validation and
// the corruption reaches the section and primitive decoding layers.
void RepatchCrc(std::string* buffer) {
  const size_t body = buffer->size() - 4;
  const uint32_t crc = Crc32(buffer->data(), body);
  for (int i = 0; i < 4; ++i) {
    (*buffer)[body + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
}

// Walks every section with a rotating mix of typed reads. Must terminate
// without crashing no matter what bytes are underneath: every iteration
// either consumes at least one byte or latches !ok().
void ExerciseReader(const std::string& buffer) {
  SnapshotReader reader(buffer);
  int step = 0;
  while (reader.ok() && reader.HasMoreSections()) {
    const std::string name = reader.PeekSectionName();
    if (name.empty() || !reader.BeginSection(name)) {
      break;
    }
    while (reader.ok() && reader.SectionRemaining() > 0) {
      switch (step++ % 6) {
        case 0: reader.ReadVarU64(); break;
        case 1: reader.ReadString(); break;
        case 2: reader.ReadDoubleVec(); break;
        case 3: reader.ReadIntVec(); break;
        case 4: reader.ReadDouble(); break;
        default: reader.ReadVarCount(8); break;
      }
    }
    reader.EndSection();
  }
}

TEST(SnapshotRobustnessTest, RandomizedCorruptionFailsCleanly) {
  const std::string good = BuildRichSnapshot();
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = good;
    const int mode = static_cast<int>(rng.UniformInt(0, 2));
    if (mode == 0) {
      const int flips = static_cast<int>(rng.UniformInt(1, 4));
      for (int f = 0; f < flips; ++f) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[at] = static_cast<char>(mutated[at] ^ (1u << rng.UniformInt(0, 7)));
      }
    } else if (mode == 1) {
      mutated.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1)));
    } else {
      const int extra = static_cast<int>(rng.UniformInt(1, 32));
      for (int i = 0; i < extra; ++i) {
        mutated.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
    }
    // As mutated: the CRC rejects nearly every one of these up front.
    ExerciseReader(mutated);
    // CRC repatched: the corrupted bytes reach the decoding layers.
    if (mutated.size() >= 12) {
      RepatchCrc(&mutated);
      ExerciseReader(mutated);
      std::vector<SnapshotSection> sections;
      std::string error;
      (void)ListSnapshotSections(mutated, &sections, &error);
    }
  }
}

TEST(SnapshotRobustnessTest, HugeDeclaredLengthsFailCleanly) {
  // A length prefix of 2^64-1 with no payload behind it: every typed read
  // must fail without attempting the allocation.
  SnapshotWriter writer;
  writer.BeginSection("evil", 1);
  writer.WriteVarU64(~0ULL);
  writer.EndSection();
  const std::string buffer = writer.Finish();
  {
    SnapshotReader reader(buffer);
    ASSERT_TRUE(reader.BeginSection("evil"));
    EXPECT_EQ(reader.ReadString(), "");
    EXPECT_FALSE(reader.ok());
  }
  {
    SnapshotReader reader(buffer);
    ASSERT_TRUE(reader.BeginSection("evil"));
    EXPECT_TRUE(reader.ReadDoubleVec().empty());
    EXPECT_FALSE(reader.ok());
  }
  {
    SnapshotReader reader(buffer);
    ASSERT_TRUE(reader.BeginSection("evil"));
    EXPECT_EQ(reader.ReadVarCount(1), 0u);
    EXPECT_FALSE(reader.ok());
  }
}

TEST(SnapshotRobustnessTest, OverflowingElementCountFailsCleanly) {
  // count * 8 wraps to 8 for this count; the bounds check must divide, not
  // multiply, or the reader attempts a 2^61-element vector.
  SnapshotWriter writer;
  writer.BeginSection("evil", 1);
  writer.WriteVarU64((1ULL << 61) + 1);
  writer.WriteDouble(0.0);
  writer.EndSection();
  const std::string buffer = writer.Finish();
  {
    SnapshotReader reader(buffer);
    ASSERT_TRUE(reader.BeginSection("evil"));
    EXPECT_TRUE(reader.ReadDoubleVec().empty());
    EXPECT_FALSE(reader.ok());
  }
  {
    SnapshotReader reader(buffer);
    ASSERT_TRUE(reader.BeginSection("evil"));
    EXPECT_EQ(reader.ReadVarCount(8), 0u);
    EXPECT_FALSE(reader.ok());
  }
}

// ---------------------------------------------------------------------------
// RNG stream state.

TEST(RngSnapshotTest, SaveRestoreDrawEqualsUninterrupted) {
  Rng stream(42);
  for (int i = 0; i < 1000; ++i) {
    stream.Uniform(0.0, 1.0);  // Advance to an arbitrary mid-stream position.
  }
  SnapshotWriter writer;
  writer.BeginSection("rng", 1);
  stream.SaveState(writer);
  writer.EndSection();
  const std::string buffer = writer.Finish();

  // The uninterrupted continuation.
  std::vector<double> expected;
  for (int i = 0; i < 200; ++i) {
    expected.push_back(stream.Uniform(0.0, 1.0));
  }

  Rng resumed(7);  // Different seed: everything must come from the snapshot.
  SnapshotReader reader(buffer);
  ASSERT_TRUE(reader.BeginSection("rng"));
  resumed.RestoreState(reader);
  reader.EndSection();
  ASSERT_TRUE(reader.ok()) << reader.error();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(resumed.Uniform(0.0, 1.0), expected[static_cast<size_t>(i)]) << "draw " << i;
  }
}

TEST(RngSnapshotTest, MixedDistributionDrawsMatch) {
  Rng stream(99);
  stream.Normal(0.0, 1.0);
  const std::string state = stream.SerializeState();
  const double expected_normal = stream.Normal(5.0, 2.0);
  const int64_t expected_int = stream.UniformInt(0, 1000);
  const double expected_exp = stream.Exponential(3.0);

  Rng resumed(1);
  ASSERT_TRUE(resumed.DeserializeState(state));
  EXPECT_EQ(resumed.Normal(5.0, 2.0), expected_normal);
  EXPECT_EQ(resumed.UniformInt(0, 1000), expected_int);
  EXPECT_EQ(resumed.Exponential(3.0), expected_exp);
}

TEST(RngSnapshotTest, GarbageStateIsRejectedWithoutDamage) {
  Rng stream(5);
  const double before = stream.Uniform(0.0, 1.0);
  (void)before;
  const std::string good = stream.SerializeState();
  EXPECT_FALSE(stream.DeserializeState("not an engine state"));
  // The failed restore left the stream untouched.
  EXPECT_EQ(stream.SerializeState(), good);
}

// ---------------------------------------------------------------------------
// Full-run checkpoint/resume property.

ExperimentConfig CheckpointChaosConfig() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(4, 8);
  config.workload.duration = Minutes(10.0);
  config.workload.load = 1.3;
  config.workload.model_sample_jobs = 400;
  config.workload.pretrain_jobs = 400;
  config.workload.seed = 11;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 11;
  config.sched.cycle_period = config.sim.cycle_period;
  // Everything the issue demands of the headline property: faults on,
  // multi-threaded solver, basis warm-starting — and no wall-clock budgets
  // (the only legitimately nondeterministic solver input).
  config.sched.solver_time_limit_seconds = 0.0;
  config.sched.solver_threads = 4;
  config.sched.solver_basis_warmstart = true;
  config.sim.faults.node_mttf = 1500.0;
  config.sim.faults.node_mttr = 240.0;
  config.sim.faults.task_kill_prob = 0.05;
  config.sim.faults.straggler_prob = 0.1;
  config.sim.faults.straggler_factor = 2.0;
  config.sim.faults.cycle_stall_prob = 0.05;
  config.sim.faults.seed = 5;
  return config;
}

void Pretrain(SystemInstance& instance, const GeneratedWorkload& workload) {
  for (const JobSpec& job : workload.pretrain) {
    instance.predictor->RecordCompletion(job.features, job.true_runtime);
  }
}

// Every deterministic field of a finished run, serialized for comparison.
std::string ResultTrace(const SimResult& result) {
  std::ostringstream os;
  os << std::setprecision(17);
  WriteJobRecordsCsv(os, result.jobs);
  for (const CycleStats& c : result.cycles) {
    os << "cycle " << c.time << " v" << c.milp_variables << " r" << c.milp_rows << " n"
       << c.milp_nodes << " q" << c.milp_max_queue_depth << " i"
       << c.milp_incumbent_improvements << " h" << c.capacity_cache_hits << " m"
       << c.capacity_cache_misses << " p" << c.pending << " j" << c.running_jobs << "\n";
  }
  for (const FaultEvent& ev : result.fault_events) {
    os << "fault " << ev.time << " k" << static_cast<int>(ev.kind) << " g" << ev.group << " c"
       << ev.count << "\n";
  }
  os << "rejected " << result.rejected_placements << " preempts " << result.total_preemptions
     << " kills " << result.tasks_killed_by_faults << " node_events "
     << result.fault_node_events << " stalls " << result.stalled_cycles << " rework "
     << result.rework_node_seconds << " down " << result.node_downtime_fraction << " avail "
     << result.available_node_seconds << " end " << result.end_time << "\n";
  return os.str();
}

TEST(CheckpointResumeTest, ResumeAtRandomCyclesIsByteIdentical) {
  const ExperimentConfig config = CheckpointChaosConfig();
  const GeneratedWorkload workload =
      GenerateWorkload(config.cluster, config.workload);

  // Uninterrupted reference run.
  SystemInstance reference = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Pretrain(reference, workload);
  Simulator ref_sim(config.cluster, reference.scheduler.get(), workload.jobs, config.sim);
  const SimResult ref_result = ref_sim.Run();
  const std::string ref_trace = ResultTrace(ref_result);
  ASSERT_GT(ref_result.cycles.size(), 10u) << "config too small to exercise checkpointing";

  Rng cycle_picker(1234);
  for (int trial = 0; trial < 3; ++trial) {
    const uint64_t checkpoint_cycle = static_cast<uint64_t>(
        cycle_picker.UniformInt(1, static_cast<int64_t>(ref_result.cycles.size()) - 1));

    // Run a fresh system up to the checkpoint cycle, snapshot, and "kill" it.
    std::string buffer;
    {
      SystemInstance doomed = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
      Pretrain(doomed, workload);
      Simulator sim(config.cluster, doomed.scheduler.get(), workload.jobs, config.sim);
      while (sim.cycles_completed() < checkpoint_cycle) {
        ASSERT_TRUE(sim.Step());
      }
      buffer = sim.SaveStateToBuffer();
      // The simulator and its scheduler are destroyed here: the kill.
    }

    // Resume into a freshly built system. Pretraining again is deliberately
    // harmless — RestoreState replaces predictor histories wholesale.
    SystemInstance resumed = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
    Pretrain(resumed, workload);
    Simulator sim(config.cluster, resumed.scheduler.get(), {}, config.sim);
    sim.RestoreStateFromBuffer(buffer);
    EXPECT_EQ(sim.cycles_completed(), checkpoint_cycle);
    const SimResult result = sim.Run();

    EXPECT_EQ(ResultTrace(result), ref_trace)
        << "divergence after resuming at cycle " << checkpoint_cycle;
  }
}

TEST(CheckpointResumeTest, FileRoundTripAndPeek) {
  ExperimentConfig config = CheckpointChaosConfig();
  config.workload.duration = Minutes(4.0);
  const GeneratedWorkload workload =
      GenerateWorkload(config.cluster, config.workload);

  SystemInstance instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Pretrain(instance, workload);
  Simulator sim(config.cluster, instance.scheduler.get(), workload.jobs, config.sim);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim.Step());
  }
  const std::string path = ::testing::TempDir() + "/snapshot_test_checkpoint.snap";
  std::string error;
  ASSERT_TRUE(sim.WriteCheckpoint(path, &error)) << error;
  const SimResult ref_result = sim.Run();

  CheckpointInfo info;
  ASSERT_TRUE(Simulator::PeekCheckpoint(path, &info, &error)) << error;
  EXPECT_EQ(info.cycles_completed, 5u);
  EXPECT_EQ(info.cluster.num_groups(), config.cluster.num_groups());
  EXPECT_EQ(info.cluster.total_nodes(), config.cluster.total_nodes());
  EXPECT_EQ(info.options.seed, config.sim.seed);

  SimResult result;
  ASSERT_TRUE(ResumeSystem(SystemKind::kThreeSigma, path, config.sched, config.sim, &result,
                           &error))
      << error;
  EXPECT_EQ(ResultTrace(result), ResultTrace(ref_result));
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, GracefulRejection) {
  const ExperimentConfig config = CheckpointChaosConfig();
  SystemInstance instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Simulator sim(config.cluster, instance.scheduler.get(), {}, config.sim);

  std::string error;
  EXPECT_FALSE(sim.TryRestoreStateFromBuffer("definitely not a snapshot", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(sim.TryResumeFrom("/nonexistent/path/x.snap", &error));
  EXPECT_FALSE(error.empty());

  // Cluster-shape mismatch is rejected before any state is touched.
  ExperimentConfig small = config;
  small.cluster = ClusterConfig::Uniform(2, 4);
  small.workload.duration = Minutes(2.0);
  small.workload.model_sample_jobs = 100;
  small.workload.pretrain_jobs = 100;
  const GeneratedWorkload workload = GenerateWorkload(small.cluster, small.workload);
  SystemInstance other = MakeSystem(SystemKind::kThreeSigma, small.cluster, small.sched);
  Simulator other_sim(small.cluster, other.scheduler.get(), workload.jobs, small.sim);
  ASSERT_TRUE(other_sim.Step());
  EXPECT_FALSE(sim.TryRestoreStateFromBuffer(other_sim.SaveStateToBuffer(), &error));
  EXPECT_NE(error.find("groups"), std::string::npos) << error;
}

TEST(SnapshotDeathTest, TruncatedSnapshotAborts) {
  ExperimentConfig config = CheckpointChaosConfig();
  config.workload.duration = Minutes(3.0);
  config.sched.solver_threads = 1;  // Keep the death-test process fork-safe.
  const GeneratedWorkload workload =
      GenerateWorkload(config.cluster, config.workload);
  SystemInstance instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Pretrain(instance, workload);
  Simulator sim(config.cluster, instance.scheduler.get(), workload.jobs, config.sim);
  ASSERT_TRUE(sim.Step());
  const std::string buffer = sim.SaveStateToBuffer();

  SystemInstance fresh = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Simulator target(config.cluster, fresh.scheduler.get(), {}, config.sim);
  EXPECT_DEATH(target.RestoreStateFromBuffer(buffer.substr(0, buffer.size() / 3)),
               "snapshot restore failed");
}

TEST(SnapshotDeathTest, BadCrcSnapshotAborts) {
  ExperimentConfig config = CheckpointChaosConfig();
  config.workload.duration = Minutes(3.0);
  config.sched.solver_threads = 1;  // Keep the death-test process fork-safe.
  const GeneratedWorkload workload =
      GenerateWorkload(config.cluster, config.workload);
  SystemInstance instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Pretrain(instance, workload);
  Simulator sim(config.cluster, instance.scheduler.get(), workload.jobs, config.sim);
  ASSERT_TRUE(sim.Step());
  std::string buffer = sim.SaveStateToBuffer();
  buffer[buffer.size() / 2] = static_cast<char>(buffer[buffer.size() / 2] ^ 0x01);

  SystemInstance fresh = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
  Simulator target(config.cluster, fresh.scheduler.get(), {}, config.sim);
  EXPECT_DEATH(target.RestoreStateFromBuffer(buffer), "snapshot restore failed");
}

}  // namespace
}  // namespace threesigma
