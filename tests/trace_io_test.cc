// Trace import/export tests: native CSV round-trip, SWF parsing, and the
// shared shaping pipeline for loaded traces.

#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/generator.h"
#include "src/workload/trace_io.h"

namespace threesigma {
namespace {

TEST(TraceCsvTest, RoundTrip) {
  std::vector<TimedTraceJob> records = {
      {{"alice", "etl", 120.5, 8}, 10.0},
      {{"bob", "train", 3600.0, 32}, 5.0},
  };
  std::ostringstream out;
  WriteTraceCsv(out, records);
  std::istringstream in(out.str());
  const std::vector<TimedTraceJob> parsed = ReadTraceCsv(in);
  ASSERT_EQ(parsed.size(), 2u);
  // Sorted by submit time on read.
  EXPECT_EQ(parsed[0].job.user, "bob");
  EXPECT_DOUBLE_EQ(parsed[0].submit, 5.0);
  EXPECT_EQ(parsed[1].job.user, "alice");
  EXPECT_EQ(parsed[1].job.jobname, "etl");
  EXPECT_DOUBLE_EQ(parsed[1].job.runtime, 120.5);
  EXPECT_EQ(parsed[1].job.num_tasks, 8);
}

TEST(TraceCsvTest, SkipsHeaderAndBlankLines) {
  std::istringstream in("submit,user,jobname,runtime,tasks\n\n1.0,u,j,10,2\n\n");
  const auto parsed = ReadTraceCsv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].job.num_tasks, 2);
}

TEST(TraceCsvTest, HeaderlessInputAccepted) {
  std::istringstream in("3.5,u1,j1,42,4\n");
  const auto parsed = ReadTraceCsv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed[0].submit, 3.5);
}

TEST(SwfTest, ParsesStandardRows) {
  // job submit wait run procs cpu mem reqp reqt reqm status user group exe q part prec think
  std::istringstream in(
      "; SWF header comment\n"
      ";Computer: Mustang\n"
      "1 100 5 300 16 -1 -1 16 600 -1 1 7 1 3 1 -1 -1 -1\n"
      "2 200 0 50 4 -1 -1 4 100 -1 1 8 1 4 1 -1 -1 -1\n");
  const auto parsed = ReadSwf(in);
  ASSERT_EQ(parsed.size(), 2u);
  // Rebased to the first submit.
  EXPECT_DOUBLE_EQ(parsed[0].submit, 0.0);
  EXPECT_DOUBLE_EQ(parsed[1].submit, 100.0);
  EXPECT_DOUBLE_EQ(parsed[0].job.runtime, 300.0);
  EXPECT_EQ(parsed[0].job.num_tasks, 16);
  EXPECT_EQ(parsed[0].job.user, "user7");
  EXPECT_EQ(parsed[0].job.jobname, "exe3");
}

TEST(SwfTest, DropsInvalidAndOversizedJobs) {
  std::istringstream in(
      "1 100 5 -1 16 -1 -1 16 600 -1 0 7 1 3 1 -1 -1 -1\n"   // runtime -1: dropped
      "2 150 5 300 0 -1 -1 0 600 -1 1 7 1 3 1 -1 -1 -1\n"    // 0 procs: dropped
      "3 200 0 50 128 -1 -1 128 100 -1 1 8 1 4 1 -1 -1 -1\n"  // too wide
      "4 300 0 50 8 -1 -1 8 100 -1 1 8 1 4 1 -1 -1 -1\n");
  SwfReadOptions options;
  options.max_tasks = 64;
  const auto parsed = ReadSwf(in, options);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].job.num_tasks, 8);
}

TEST(SwfTest, FallsBackToRequestedProcs) {
  std::istringstream in("1 10 0 60 -1 -1 -1 12 100 -1 1 2 1 5 1 -1 -1 -1\n");
  const auto parsed = ReadSwf(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].job.num_tasks, 12);
}

TEST(SwfTest, SkipsShortRows) {
  std::istringstream in("1 2 3\n1 10 0 60 4 -1 -1 4 100 -1 1 2 1 5 1 -1 -1 -1\n");
  EXPECT_EQ(ReadSwf(in).size(), 1u);
}

using TraceCsvDeathTest = ::testing::Test;

TEST(TraceCsvDeathTest, MalformedRowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream too_few("1.0,u,j,10\n");
  EXPECT_DEATH(ReadTraceCsv(too_few), "expected 5 cells");
  std::istringstream bad_runtime("1.0,u,j,notanumber,2\n");
  EXPECT_DEATH(ReadTraceCsv(bad_runtime), "unparseable runtime");
  std::istringstream zero_runtime("1.0,u,j,0,2\n");
  EXPECT_DEATH(ReadTraceCsv(zero_runtime), "non-positive runtime");
}

TEST(ShapeTraceJobsTest, AppliesWorkloadRecipe) {
  const ClusterConfig cluster = ClusterConfig::Uniform(4, 64);
  std::vector<TimedTraceJob> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back({{"u" + std::to_string(i % 7), "j", 100.0 + i, 1 + i % 8},
                       static_cast<double>(i)});
  }
  WorkloadOptions options;
  options.slo_fraction = 0.5;
  options.deadline_slacks = {20.0, 80.0};
  options.seed = 3;
  const std::vector<JobSpec> jobs = ShapeTraceJobs(records, cluster, options);
  ASSERT_EQ(jobs.size(), records.size());
  int slo = 0;
  for (const JobSpec& job : jobs) {
    EXPECT_EQ(job.features.size(), 4u);
    if (job.is_slo()) {
      ++slo;
      const int slack = static_cast<int>(std::lround(job.DeadlineSlackPercent()));
      EXPECT_TRUE(slack == 20 || slack == 80) << slack;
      EXPECT_EQ(job.preferred_groups.size(), 3u);
    }
  }
  EXPECT_NEAR(slo / 200.0, 0.5, 0.15);
  // Deterministic for the same seed.
  const std::vector<JobSpec> again = ShapeTraceJobs(records, cluster, options);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].type, again[i].type);
    EXPECT_DOUBLE_EQ(jobs[i].deadline, again[i].deadline);
  }
}

TEST(ShapeTraceJobsTest, SortsLoadedJobsBySubmit) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 8);
  std::vector<TimedTraceJob> records = {{{"u", "a", 10.0, 1}, 50.0},
                                        {{"u", "b", 10.0, 1}, 5.0}};
  const std::vector<JobSpec> jobs = ShapeTraceJobs(records, cluster, {});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_LE(jobs[0].submit_time, jobs[1].submit_time);
  EXPECT_EQ(jobs[0].name, "b");
}

}  // namespace
}  // namespace threesigma
