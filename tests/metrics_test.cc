// Metrics aggregation tests.

#include <gtest/gtest.h>

#include "src/metrics/metrics.h"

namespace threesigma {
namespace {

JobRecord MakeRecord(JobId id, JobType type, JobStatus status, Time submit, Time start,
                     Time finish, int tasks, Time deadline = kNever) {
  JobRecord rec;
  rec.spec.id = id;
  rec.spec.type = type;
  rec.spec.submit_time = submit;
  rec.spec.num_tasks = tasks;
  rec.spec.deadline = deadline;
  rec.spec.true_runtime = finish > start ? finish - start : 0.0;
  rec.status = status;
  rec.start_time = start;
  rec.finish_time = finish;
  if (status == JobStatus::kCompleted) {
    rec.completed_work = tasks * (finish - start);
  }
  return rec;
}

TEST(MetricsTest, EmptyRun) {
  SimResult result;
  const RunMetrics m = ComputeMetrics(result, "x");
  EXPECT_EQ(m.system, "x");
  EXPECT_EQ(m.slo_jobs, 0);
  EXPECT_DOUBLE_EQ(m.slo_miss_rate_percent, 0.0);
  EXPECT_DOUBLE_EQ(m.goodput_machine_hours, 0.0);
}

TEST(MetricsTest, SloMissAccounting) {
  SimResult result;
  result.end_time = 10000.0;  // Every deadline below is decided.
  // On time.
  result.jobs.push_back(
      MakeRecord(1, JobType::kSlo, JobStatus::kCompleted, 0, 10, 100, 2, 150));
  // Late.
  result.jobs.push_back(
      MakeRecord(2, JobType::kSlo, JobStatus::kCompleted, 0, 10, 200, 2, 150));
  // Abandoned counts as a miss.
  result.jobs.push_back(
      MakeRecord(3, JobType::kSlo, JobStatus::kAbandoned, 0, kNever, kNever, 2, 150));
  // Unfinished counts as a miss.
  result.jobs.push_back(
      MakeRecord(4, JobType::kSlo, JobStatus::kUnfinished, 0, kNever, kNever, 2, 150));
  const RunMetrics m = ComputeMetrics(result, "s");
  EXPECT_EQ(m.slo_jobs, 4);
  EXPECT_EQ(m.slo_missed, 3);
  EXPECT_DOUBLE_EQ(m.slo_miss_rate_percent, 75.0);
  EXPECT_EQ(m.slo_completed, 2);
  EXPECT_EQ(m.abandoned, 1);
  EXPECT_EQ(m.unfinished, 1);
}

TEST(MetricsTest, RightCensoringExcludesUndecidedJobs) {
  SimResult result;
  result.end_time = 100.0;
  // Unfinished with deadline after the stop: censored (undecided).
  result.jobs.push_back(
      MakeRecord(1, JobType::kSlo, JobStatus::kUnfinished, 0, kNever, kNever, 1, 150));
  // Unfinished with deadline before the stop: a decided miss.
  result.jobs.push_back(
      MakeRecord(2, JobType::kSlo, JobStatus::kUnfinished, 0, kNever, kNever, 1, 50));
  // Completed after the stop's deadline horizon still counts normally.
  result.jobs.push_back(
      MakeRecord(3, JobType::kSlo, JobStatus::kCompleted, 0, 10, 90, 1, 150));
  const RunMetrics m = ComputeMetrics(result, "s");
  EXPECT_EQ(m.slo_censored, 1);
  EXPECT_EQ(m.slo_jobs, 2);
  EXPECT_EQ(m.slo_missed, 1);
  EXPECT_DOUBLE_EQ(m.slo_miss_rate_percent, 50.0);
}

TEST(MetricsTest, GoodputSplitsByClass) {
  SimResult result;
  result.end_time = 10000.0;
  result.jobs.push_back(
      MakeRecord(1, JobType::kSlo, JobStatus::kCompleted, 0, 0, 3600, 2, 7200));
  result.jobs.push_back(
      MakeRecord(2, JobType::kBestEffort, JobStatus::kCompleted, 0, 0, 1800, 4));
  const RunMetrics m = ComputeMetrics(result, "s");
  EXPECT_DOUBLE_EQ(m.slo_goodput_machine_hours, 2.0);
  EXPECT_DOUBLE_EQ(m.be_goodput_machine_hours, 2.0);
  EXPECT_DOUBLE_EQ(m.goodput_machine_hours, 4.0);
  // Late SLO completions still contribute goodput.
  result.jobs[0].finish_time = 9999.0;
  result.jobs[0].completed_work = 2 * 9999.0;
  const RunMetrics late = ComputeMetrics(result, "s");
  EXPECT_GT(late.slo_goodput_machine_hours, 2.0);
  EXPECT_EQ(late.slo_missed, 1);
}

TEST(MetricsTest, BeLatencyMeanOverCompleted) {
  SimResult result;
  result.jobs.push_back(
      MakeRecord(1, JobType::kBestEffort, JobStatus::kCompleted, 100, 150, 250, 1));
  result.jobs.push_back(
      MakeRecord(2, JobType::kBestEffort, JobStatus::kCompleted, 200, 400, 500, 1));
  result.jobs.push_back(
      MakeRecord(3, JobType::kBestEffort, JobStatus::kUnfinished, 300, kNever, kNever, 1));
  const RunMetrics m = ComputeMetrics(result, "s");
  EXPECT_EQ(m.be_jobs, 3);
  EXPECT_EQ(m.be_completed, 2);
  // Latencies: 150 and 300 -> mean 225.
  EXPECT_DOUBLE_EQ(m.mean_be_latency_seconds, 225.0);
}

TEST(MetricsTest, CycleAggregates) {
  SimResult result;
  result.cycles.push_back(CycleStats{0.0, 0.1, 0.05, 100, 20, 3, 5, 2});
  result.cycles.push_back(CycleStats{10.0, 0.3, 0.2, 400, 50, 7, 6, 3});
  const RunMetrics m = ComputeMetrics(result, "s");
  EXPECT_DOUBLE_EQ(m.mean_cycle_seconds, 0.2);
  EXPECT_DOUBLE_EQ(m.max_cycle_seconds, 0.3);
  EXPECT_DOUBLE_EQ(m.mean_solver_seconds, 0.125);
  EXPECT_DOUBLE_EQ(m.max_solver_seconds, 0.2);
  EXPECT_EQ(m.max_milp_variables, 400);
  EXPECT_EQ(m.max_milp_rows, 50);
}

TEST(MetricsTest, PreemptionAndRejectionCarriedThrough) {
  SimResult result;
  result.total_preemptions = 7;
  result.rejected_placements = 2;
  const RunMetrics m = ComputeMetrics(result, "s");
  EXPECT_EQ(m.preemptions, 7);
  EXPECT_EQ(m.rejected_placements, 2);
}

}  // namespace
}  // namespace threesigma
