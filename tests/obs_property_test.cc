// Observability non-perturbation properties:
//
//   1. Enabling tracing/profiling/decision logging changes no scheduling
//      decision: per-job results are byte-identical with obs off vs on, at 1
//      and 4 solver threads.
//   2. The deterministic trace sections ("trace_names"/"trace_spans") are
//      byte-identical across repeated runs and across solver thread counts;
//      only the quarantined "trace_timing" section may differ.
//   3. Striped-shard counter aggregation is exact: registry totals are
//      independent of solver thread count.
//   4. Registry counters are snapshot-aware: a run killed at a checkpoint and
//      resumed in a fresh process finishes with exactly the counters of an
//      uninterrupted run (no loss before the checkpoint, no double-counting
//      of replayed cycles).
//
// Small cluster + ~6-minute google workload keeps the full matrix inside the
// tier-1 time budget.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/metrics/report.h"
#include "src/obs/obs.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

ExperimentConfig SmallConfig(int solver_threads) {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(2, 16);
  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Minutes(6.0);
  config.workload.load = 1.4;
  config.workload.seed = 7;
  config.sim.cycle_period = 10.0;
  config.sim.seed = 7;
  config.sched.cycle_period = 10.0;
  config.sched.solver_threads = solver_threads;
  return config;
}

std::string JobsCsv(const SimResult& result) {
  std::ostringstream os;
  WriteJobRecordsCsv(os, result.jobs);
  return os.str();
}

// One full simulation from a clean observability slate. With `obs_on` all
// three facilities run; either way the collected state (spans, decision log,
// registry) is left in place for the caller to inspect.
SimResult RunOnce(int solver_threads, bool obs_on) {
  obs::ResetAll();
  if (obs_on) {
    obs::Options options;
    options.tracing = true;
    options.profiler = true;
    options.decisions = true;
    obs::Configure(options);
  }
  ExperimentConfig config = SmallConfig(solver_threads);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  SimResult result = SimulateSystem(SystemKind::kThreeSigma, config, workload);
  // Drop the gates but keep the collected state readable.
  obs::Tracer::Global().SetEnabled(false);
  obs::CycleProfiler::Global().SetEnabled(false);
  obs::DecisionLog::Global().SetEnabled(false);
  return result;
}

TEST(ObsPropertyTest, EnablingObsPerturbsNoDecision) {
  const std::string baseline = JobsCsv(RunOnce(1, /*obs_on=*/false));
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, JobsCsv(RunOnce(1, /*obs_on=*/true)))
      << "obs on changed per-job results at 1 solver thread";
  EXPECT_EQ(baseline, JobsCsv(RunOnce(4, /*obs_on=*/false)))
      << "solver thread count changed per-job results";
  EXPECT_EQ(baseline, JobsCsv(RunOnce(4, /*obs_on=*/true)))
      << "obs on changed per-job results at 4 solver threads";
}

TEST(ObsPropertyTest, DecisionLogIdenticalAcrossThreadCounts) {
  RunOnce(1, /*obs_on=*/true);
  const std::string single = obs::DecisionLog::Global().ToCsvString();
  RunOnce(4, /*obs_on=*/true);
  const std::string quad = obs::DecisionLog::Global().ToCsvString();
  EXPECT_GT(single.size(),
            std::string("cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n")
                .size());
  EXPECT_EQ(single, quad);
}

TEST(ObsPropertyTest, TraceDeterministicAcrossRunsAndThreadCounts) {
  const auto trace_of = [](int solver_threads) {
    RunOnce(solver_threads, /*obs_on=*/true);
    SnapshotWriter writer;
    obs::Tracer::Global().ExportBinary(writer);
    return writer.Finish();
  };
  const std::string first = trace_of(1);
  const std::string repeat = trace_of(1);
  const std::string quad = trace_of(4);

  const std::vector<std::string> rerun_diff =
      DiffSnapshotSections(first, repeat, {"trace_timing"});
  EXPECT_TRUE(rerun_diff.empty())
      << "trace section '" << rerun_diff.front() << "' differs across identical runs";
  const std::vector<std::string> thread_diff =
      DiffSnapshotSections(first, quad, {"trace_timing"});
  EXPECT_TRUE(thread_diff.empty())
      << "trace section '" << thread_diff.front() << "' differs across thread counts";

  // The traces are non-trivial: spans were actually retained and none lost.
  EXPECT_FALSE(obs::Tracer::Global().CollectSpans().empty());
  EXPECT_EQ(obs::Tracer::Global().dropped(), 0u);
}

TEST(ObsPropertyTest, CounterTotalsIndependentOfSolverThreads) {
  RunOnce(1, /*obs_on=*/false);
  const auto single = obs::MetricsRegistry::Global().CounterValues();
  RunOnce(4, /*obs_on=*/false);
  const auto quad = obs::MetricsRegistry::Global().CounterValues();
  // Workers publish into thread-local stripes; the aggregate must still be
  // the logical single-threaded total, counter by counter.
  ASSERT_EQ(single.size(), quad.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].first, quad[i].first);
    EXPECT_EQ(single[i].second, quad[i].second) << "counter " << single[i].first;
  }
  bool saw_nonzero = false;
  for (const auto& [name, value] : single) {
    saw_nonzero = saw_nonzero || value > 0;
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(ObsPropertyTest, RegistryCountersContinueAcrossResume) {
  ExperimentConfig config = SmallConfig(1);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  const auto pretrain = [&workload](SystemInstance& instance) {
    for (const JobSpec& job : workload.pretrain) {
      instance.predictor->RecordCompletion(job.features, job.true_runtime);
    }
  };

  // Uninterrupted reference run.
  obs::ResetAll();
  std::string full_jobs;
  {
    SystemInstance instance =
        MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
    pretrain(instance);
    Simulator sim(config.cluster, instance.scheduler.get(), workload.jobs, config.sim);
    full_jobs = JobsCsv(sim.Run());
  }
  const auto full = obs::MetricsRegistry::Global().CounterValues();

  // Same run killed after five cycles, checkpointing on the way out.
  const std::string path = ::testing::TempDir() + "/obs_property_resume.snap";
  obs::ResetAll();
  {
    SystemInstance instance =
        MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
    pretrain(instance);
    Simulator sim(config.cluster, instance.scheduler.get(), workload.jobs, config.sim);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(sim.Step());
    }
    std::string error;
    ASSERT_TRUE(sim.WriteCheckpoint(path, &error)) << error;
  }

  // "Fresh process": every counter zeroes, then the snapshot restores them
  // absolutely and the replayed remainder continues on top.
  obs::ResetAll();
  SimResult resumed;
  std::string error;
  ASSERT_TRUE(
      ResumeSystem(SystemKind::kThreeSigma, path, config.sched, config.sim, &resumed, &error))
      << error;
  const auto continued = obs::MetricsRegistry::Global().CounterValues();

  ASSERT_EQ(full.size(), continued.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].first, continued[i].first);
    EXPECT_EQ(full[i].second, continued[i].second)
        << "counter " << full[i].first << " lost or double-counted across resume";
  }
}

}  // namespace
}  // namespace threesigma
