// FlagParser tests.

#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace threesigma {
namespace {

struct TestFlags {
  std::string name = "default";
  int64_t count = 7;
  double ratio = 0.5;
  bool verbose = false;
  bool feature = true;
};

FlagParser MakeParser(TestFlags* f) {
  FlagParser parser("test program");
  parser.AddString("name", &f->name, "a name")
      .AddInt("count", &f->count, "a count")
      .AddDouble("ratio", &f->ratio, "a ratio")
      .AddBool("verbose", &f->verbose, "verbosity")
      .AddBool("feature", &f->feature, "a feature");
  return parser;
}

bool ParseArgs(FlagParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--name=alice", "--count=42", "--ratio=1.25"}));
  EXPECT_EQ(f.name, "alice");
  EXPECT_EQ(f.count, 42);
  EXPECT_DOUBLE_EQ(f.ratio, 1.25);
}

TEST(FlagParserTest, SpaceSyntax) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--name", "bob", "--count", "-3"}));
  EXPECT_EQ(f.name, "bob");
  EXPECT_EQ(f.count, -3);
}

TEST(FlagParserTest, BoolForms) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--verbose", "--no-feature"}));
  EXPECT_TRUE(f.verbose);
  EXPECT_FALSE(f.feature);
}

TEST(FlagParserTest, BoolExplicitValue) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--verbose=true", "--feature=false"}));
  EXPECT_TRUE(f.verbose);
  EXPECT_FALSE(f.feature);
}

TEST(FlagParserTest, UnknownFlagFails) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  EXPECT_FALSE(ParseArgs(p, {"--nonsense=1"}));
  EXPECT_EQ(p.exit_code(), 1);
}

TEST(FlagParserTest, BadIntFails) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  EXPECT_FALSE(ParseArgs(p, {"--count=abc"}));
  EXPECT_EQ(p.exit_code(), 1);
}

TEST(FlagParserTest, MissingValueFails) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  EXPECT_FALSE(ParseArgs(p, {"--name"}));
  EXPECT_EQ(p.exit_code(), 1);
}

TEST(FlagParserTest, HelpReturnsFalseWithZeroExit) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  EXPECT_FALSE(ParseArgs(p, {"--help"}));
  EXPECT_EQ(p.exit_code(), 0);
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"input.txt", "--count=1", "other"}));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "other");
}

TEST(FlagParserTest, HelpTextMentionsFlagsAndDefaults) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  const std::string help = p.HelpText();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("default \"default\""), std::string::npos);
  EXPECT_NE(help.find("--no-verbose"), std::string::npos);
}

TEST(FlagParserTest, DefaultsUntouchedWithoutFlags) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {}));
  EXPECT_EQ(f.name, "default");
  EXPECT_EQ(f.count, 7);
  EXPECT_TRUE(f.feature);
}

TEST(FlagParserTest, NegativeNumbersBothSyntaxes) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--count=-5", "--ratio", "-2.5"}));
  EXPECT_EQ(f.count, -5);
  EXPECT_DOUBLE_EQ(f.ratio, -2.5);
}

TEST(FlagParserTest, RepeatedFlagLastValueWins) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--count=1", "--count=2", "--name=a", "--name", "b",
                            "--feature", "--no-feature"}));
  EXPECT_EQ(f.count, 2);
  EXPECT_EQ(f.name, "b");
  EXPECT_FALSE(f.feature);
}

TEST(FlagParserTest, EmptyEqualsValue) {
  TestFlags f;
  f.name = "nonempty";
  FlagParser p = MakeParser(&f);
  // `--name=` assigns the empty string; `--verbose=` reads as bare-true.
  ASSERT_TRUE(ParseArgs(p, {"--name=", "--verbose="}));
  EXPECT_EQ(f.name, "");
  EXPECT_TRUE(f.verbose);
}

TEST(FlagParserTest, EmptyEqualsValueFailsForNumbers) {
  {
    TestFlags f;
    FlagParser p = MakeParser(&f);
    EXPECT_FALSE(ParseArgs(p, {"--count="}));
    EXPECT_EQ(p.exit_code(), 1);
  }
  {
    TestFlags f;
    FlagParser p = MakeParser(&f);
    EXPECT_FALSE(ParseArgs(p, {"--ratio="}));
    EXPECT_EQ(p.exit_code(), 1);
  }
}

TEST(FlagParserTest, TrailingGarbageAfterNumberFails) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  EXPECT_FALSE(ParseArgs(p, {"--count=12abc"}));
  EXPECT_EQ(p.exit_code(), 1);
}

TEST(FlagParserTest, DoubleDashEndsFlagParsing) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  ASSERT_TRUE(ParseArgs(p, {"--count=9", "--", "--name=ignored", "-x", "plain"}));
  EXPECT_EQ(f.count, 9);
  EXPECT_EQ(f.name, "default");  // Not assigned: it came after `--`.
  ASSERT_EQ(p.positional().size(), 3u);
  EXPECT_EQ(p.positional()[0], "--name=ignored");
  EXPECT_EQ(p.positional()[1], "-x");
  EXPECT_EQ(p.positional()[2], "plain");
}

TEST(FlagParserTest, NoPrefixOnNonBoolIsUnknown) {
  TestFlags f;
  FlagParser p = MakeParser(&f);
  // `--no-count` does not downgrade to bool handling; it is an unknown flag.
  EXPECT_FALSE(ParseArgs(p, {"--no-count=1"}));
  EXPECT_EQ(p.exit_code(), 1);
}

TEST(FlagParserDeathTest, NullTargetRegistrationDies) {
  EXPECT_DEATH(
      {
        FlagParser parser("doc");
        parser.AddInt("count", nullptr, "a count");
      },
      "target != nullptr");
}

}  // namespace
}  // namespace threesigma
