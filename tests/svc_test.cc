// Service-layer tests: wire codec, framing, loopback RPC semantics, client
// retry discipline, checkpoint/restore dedupe, and a socket end-to-end run.
//
// Everything except SocketEndToEnd runs over the deterministic loopback
// transport, with the client pump wired to Server::HandleReady so the tests
// control simulation stepping explicitly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sched/prio_scheduler.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/socket_transport.h"
#include "src/svc/transport.h"
#include "src/svc/wire.h"

namespace threesigma::svc {
namespace {

JobSpec MakeJob(JobId id, double submit_time = 0.0, int num_tasks = 1,
                double runtime = 60.0) {
  JobSpec spec;
  spec.id = id;
  spec.name = "svc-test-job";
  spec.user = "tester";
  spec.submit_time = submit_time;
  spec.true_runtime = runtime;
  spec.num_tasks = num_tasks;
  spec.features = {"user=tester", "jobname=svc-test-job"};
  return spec;
}

// --- Wire codec --------------------------------------------------------------

TEST(WireTest, RequestRoundTripAllVerbs) {
  for (const Verb verb :
       {Verb::kSubmitJob, Verb::kJobStatus, Verb::kCancelJob, Verb::kClusterState,
        Verb::kMetricsDump, Verb::kTriggerCheckpoint, Verb::kShutdown}) {
    Request request;
    request.verb = verb;
    request.request_id = 77;
    request.token = "tok-1";
    request.job = MakeJob(5, 12.5, 3, 420.0);
    request.job.type = JobType::kSlo;
    request.job.deadline = 900.0;
    request.job.preferred_groups = {0, 2};
    request.job_id = 5;
    request.drain = false;

    Request decoded;
    std::string error;
    ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error))
        << VerbName(verb) << ": " << error;
    EXPECT_EQ(decoded.verb, verb);
    EXPECT_EQ(decoded.request_id, 77u);
    if (verb == Verb::kSubmitJob) {
      EXPECT_EQ(decoded.token, "tok-1");
      EXPECT_EQ(decoded.job.id, 5);
      EXPECT_EQ(decoded.job.name, "svc-test-job");
      EXPECT_EQ(decoded.job.user, "tester");
      EXPECT_EQ(decoded.job.type, JobType::kSlo);
      EXPECT_DOUBLE_EQ(decoded.job.submit_time, 12.5);
      EXPECT_DOUBLE_EQ(decoded.job.true_runtime, 420.0);
      EXPECT_EQ(decoded.job.num_tasks, 3);
      EXPECT_DOUBLE_EQ(decoded.job.deadline, 900.0);
      EXPECT_EQ(decoded.job.preferred_groups, (std::vector<int>{0, 2}));
      EXPECT_EQ(decoded.job.features, request.job.features);
    }
    if (verb == Verb::kJobStatus || verb == Verb::kCancelJob) {
      EXPECT_EQ(decoded.job_id, 5);
    }
    if (verb == Verb::kShutdown) {
      EXPECT_FALSE(decoded.drain);
    }
  }
}

TEST(WireTest, ReplyRoundTrip) {
  Reply reply;
  reply.code = StatusCode::kRetryLater;
  reply.request_id = 99;
  reply.message = "admission queue full";
  reply.job_id = 17;
  reply.job.status = JobStatus::kRunning;
  reply.job.submit_time = 10.0;
  reply.job.start_time = 30.0;
  reply.job.group = 1;
  reply.job.preemptions = 2;
  reply.job.arrived = true;
  reply.cluster.now = 123.0;
  reply.cluster.cycles_completed = 12;
  reply.cluster.total_jobs = 40;
  reply.cluster.pending_jobs = 3;
  reply.cluster.running_jobs = 7;
  reply.cluster.completed_jobs = 30;
  reply.cluster.total_nodes = 32;
  reply.cluster.free_nodes = 4;
  reply.cluster.drained = false;
  reply.queue_depth = 5;
  reply.text = "metrics body";

  Reply decoded;
  std::string error;
  ASSERT_TRUE(DecodeReply(EncodeReply(reply), &decoded, &error)) << error;
  EXPECT_EQ(decoded.code, StatusCode::kRetryLater);
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.message, "admission queue full");
  EXPECT_EQ(decoded.job_id, 17);
  EXPECT_EQ(decoded.job.status, JobStatus::kRunning);
  EXPECT_DOUBLE_EQ(decoded.job.submit_time, 10.0);
  EXPECT_DOUBLE_EQ(decoded.job.start_time, 30.0);
  EXPECT_EQ(decoded.job.group, 1);
  EXPECT_EQ(decoded.job.preemptions, 2);
  EXPECT_TRUE(decoded.job.arrived);
  EXPECT_DOUBLE_EQ(decoded.cluster.now, 123.0);
  EXPECT_EQ(decoded.cluster.cycles_completed, 12u);
  EXPECT_EQ(decoded.cluster.total_jobs, 40);
  EXPECT_EQ(decoded.cluster.pending_jobs, 3);
  EXPECT_EQ(decoded.cluster.running_jobs, 7);
  EXPECT_EQ(decoded.cluster.completed_jobs, 30);
  EXPECT_EQ(decoded.cluster.total_nodes, 32);
  EXPECT_EQ(decoded.cluster.free_nodes, 4);
  EXPECT_FALSE(decoded.cluster.drained);
  EXPECT_EQ(decoded.queue_depth, 5u);
  EXPECT_EQ(decoded.text, "metrics body");
}

TEST(WireTest, TruncatedPayloadRejected) {
  Request request;
  request.verb = Verb::kSubmitJob;
  request.request_id = 1;
  request.token = "tok";
  request.job = MakeJob(9);
  const std::string payload = EncodeRequest(request);
  for (size_t len = 0; len < payload.size(); ++len) {
    Request decoded;
    std::string error;
    EXPECT_FALSE(DecodeRequest(payload.substr(0, len), &decoded, &error))
        << "accepted a " << len << "-byte truncation of " << payload.size() << " bytes";
  }
}

TEST(WireTest, BitFlipsRejected) {
  Request request;
  request.verb = Verb::kSubmitJob;
  request.request_id = 2;
  request.token = "tok-corrupt";
  request.job = MakeJob(11, 3.0, 2);
  const std::string payload = EncodeRequest(request);
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<size_t> pos(0, payload.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int i = 0; i < 256; ++i) {
    std::string corrupt = payload;
    corrupt[pos(rng)] = static_cast<char>(
        static_cast<unsigned char>(corrupt[pos(rng)]) ^ (1u << bit(rng)));
    if (corrupt == payload) {
      continue;  // Flipped a bit at one position after reading another.
    }
    Request decoded;
    std::string error;
    EXPECT_FALSE(DecodeRequest(corrupt, &decoded, &error))
        << "accepted a corrupted payload on trial " << i;
  }
}

TEST(WireTest, RandomBytesRejected) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len(0, 512);
  for (int i = 0; i < 256; ++i) {
    std::string junk(len(rng), '\0');
    for (char& c : junk) {
      c = static_cast<char>(byte(rng));
    }
    Request request;
    Reply reply;
    std::string error;
    EXPECT_FALSE(DecodeRequest(junk, &request, &error));
    EXPECT_FALSE(DecodeReply(junk, &reply, &error));
  }
}

TEST(WireTest, UnknownVerbAndStatusRejected) {
  Request request;
  request.verb = static_cast<Verb>(99);
  Request decoded_request;
  std::string error;
  EXPECT_FALSE(DecodeRequest(EncodeRequest(request), &decoded_request, &error));

  Reply reply;
  reply.code = static_cast<StatusCode>(200);
  Reply decoded_reply;
  EXPECT_FALSE(DecodeReply(EncodeReply(reply), &decoded_reply, &error));
}

// --- Framing -----------------------------------------------------------------

TEST(FramingTest, RoundTripMultipleFrames) {
  std::string buffer;
  AppendFrame(&buffer, "alpha");
  AppendFrame(&buffer, "bee");
  AppendFrame(&buffer, std::string(1000, 'x'));
  size_t offset = 0;
  std::string payload;
  std::string error;
  ASSERT_EQ(ExtractFrame(buffer, &offset, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kFrame);
  EXPECT_EQ(payload, "alpha");
  ASSERT_EQ(ExtractFrame(buffer, &offset, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kFrame);
  EXPECT_EQ(payload, "bee");
  ASSERT_EQ(ExtractFrame(buffer, &offset, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kFrame);
  EXPECT_EQ(payload, std::string(1000, 'x'));
  EXPECT_EQ(ExtractFrame(buffer, &offset, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kNeedMore);
  EXPECT_EQ(offset, buffer.size());
}

TEST(FramingTest, PartialFrameNeedsMore) {
  std::string buffer;
  AppendFrame(&buffer, "payload");
  std::string payload;
  std::string error;
  for (size_t len = 0; len < buffer.size(); ++len) {
    const std::string prefix = buffer.substr(0, len);
    size_t offset = 0;
    EXPECT_EQ(ExtractFrame(prefix, &offset, &payload, kDefaultMaxFrameBytes, &error),
              FrameResult::kNeedMore);
    EXPECT_EQ(offset, 0u) << "kNeedMore must not consume bytes";
  }
}

TEST(FramingTest, ZeroAndOversizedLengthsAreErrors) {
  // Zero-length frame.
  std::string zero(4, '\0');
  size_t offset = 0;
  std::string payload;
  std::string error;
  EXPECT_EQ(ExtractFrame(zero, &offset, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kError);

  // Length prefix beyond the cap must fail immediately (no buffering 4 GiB).
  std::string huge;
  AppendFrame(&huge, "0123456789");
  offset = 0;
  EXPECT_EQ(ExtractFrame(huge, &offset, &payload, /*max_frame_bytes=*/4, &error),
            FrameResult::kError);
}

// --- Client backoff ----------------------------------------------------------

TEST(BackoffTest, CappedExponential) {
  ClientOptions options;
  options.backoff_initial_seconds = 0.05;
  options.backoff_multiplier = 2.0;
  options.backoff_cap_seconds = 2.0;
  EXPECT_DOUBLE_EQ(BackoffDelay(0, options), 0.0);
  EXPECT_DOUBLE_EQ(BackoffDelay(1, options), 0.05);
  EXPECT_DOUBLE_EQ(BackoffDelay(2, options), 0.10);
  EXPECT_DOUBLE_EQ(BackoffDelay(3, options), 0.20);
  EXPECT_DOUBLE_EQ(BackoffDelay(4, options), 0.40);
  EXPECT_DOUBLE_EQ(BackoffDelay(10, options), 2.0);   // Capped.
  EXPECT_DOUBLE_EQ(BackoffDelay(100, options), 2.0);  // Still capped, no overflow.
}

// --- Loopback service --------------------------------------------------------

// One cluster, one Prio scheduler, one server on a loopback transport, one
// client whose pump is the server's RPC half.
class LoopbackServiceTest : public ::testing::Test {
 protected:
  void Start(ServiceOptions options) {
    options.drain_linger_seconds = 0.0;  // Tests close sessions explicitly.
    scheduler_ = std::make_unique<PrioScheduler>(cluster_);
    server_ = std::make_unique<Server>(cluster_, scheduler_.get(), SimOptions{}, options,
                                       &transport_);
    channel_ = transport_.Connect();
    channel_->SetPump([this] { server_->HandleReady(); });
    ClientOptions client_options;
    client_options.sleep_on_backoff = false;
    client_ = std::make_unique<Client>(channel_.get(), client_options);
  }

  // Sends a raw request and returns the decoded reply (no client retry
  // logic), for tests that need to observe non-kOk codes directly.
  Reply RawCall(Request request) {
    static uint64_t next_id = 1000;
    request.request_id = ++next_id;
    std::string error;
    EXPECT_TRUE(channel_->SendFrame(EncodeRequest(request), &error)) << error;
    std::string payload;
    EXPECT_TRUE(channel_->RecvFrame(&payload, 1.0, &error)) << error;
    Reply reply;
    EXPECT_TRUE(DecodeReply(payload, &reply, &error)) << error;
    EXPECT_EQ(reply.request_id, request.request_id);
    return reply;
  }

  // Steps the simulation until it pauses (no more steppable cycles).
  void StepUntilIdle() {
    int guard = 0;
    while (server_->StepCycle() && ++guard < 100000) {
    }
    ASSERT_LT(guard, 100000) << "simulation never went idle";
  }

  // Drives full service iterations until the server finishes.
  void RunToStop() {
    int guard = 0;
    while (server_->PollOnce() && ++guard < 100000) {
    }
    ASSERT_LT(guard, 100000) << "server never stopped";
  }

  ClusterConfig cluster_ = ClusterConfig::Uniform(2, 8);
  LoopbackTransport transport_;
  std::unique_ptr<PrioScheduler> scheduler_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<LoopbackTransport::Client> channel_;
  std::unique_ptr<Client> client_;
};

TEST_F(LoopbackServiceTest, SubmitRunsToCompletion) {
  Start(ServiceOptions{});
  JobId id = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "job-a", &id, &error)) << error;
  EXPECT_GT(id, 0);

  JobStatusInfo info;
  ASSERT_TRUE(client_->QueryJob(id, &info, &error)) << error;
  EXPECT_EQ(info.status, JobStatus::kPending);

  StepUntilIdle();
  ASSERT_TRUE(client_->QueryJob(id, &info, &error)) << error;
  EXPECT_EQ(info.status, JobStatus::kCompleted);
  EXPECT_GE(info.finish_time, 60.0);

  ASSERT_TRUE(client_->Shutdown(/*drain=*/true, &error)) << error;
  RunToStop();
  EXPECT_TRUE(server_->simulator().drained());
}

TEST_F(LoopbackServiceTest, TokenDedupeIsIdempotent) {
  Start(ServiceOptions{});
  JobId first = 0;
  JobId second = 0;
  JobId other = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "same-token", &first, &error)) << error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "same-token", &second, &error)) << error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "other-token", &other, &error)) << error;
  EXPECT_EQ(first, second) << "resubmitting a token must return the original id";
  EXPECT_NE(first, other);
  SimStateInfo state;
  ASSERT_TRUE(client_->GetClusterState(&state, nullptr, &error)) << error;
  EXPECT_EQ(state.total_jobs, 2) << "the duplicate must not be admitted twice";
}

TEST_F(LoopbackServiceTest, ClientSuppliedIdsHonoredAndCollisionsReassigned) {
  Start(ServiceOptions{});
  JobId id = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(42), "t-1", &id, &error)) << error;
  EXPECT_EQ(id, 42);
  ASSERT_TRUE(client_->SubmitJob(MakeJob(42), "t-2", &id, &error)) << error;
  EXPECT_NE(id, 42) << "a colliding id must be reassigned, not rejected";
}

TEST_F(LoopbackServiceTest, OversizedGangRejected) {
  Start(ServiceOptions{});
  Request request;
  request.verb = Verb::kSubmitJob;
  request.job = MakeJob(0, 0.0, /*num_tasks=*/9);  // Groups hold 8 nodes.
  EXPECT_EQ(RawCall(request).code, StatusCode::kInvalidArgument);
  request.job.num_tasks = 0;
  EXPECT_EQ(RawCall(request).code, StatusCode::kInvalidArgument);
}

TEST_F(LoopbackServiceTest, FullQueueAnswersRetryLater) {
  ServiceOptions options;
  options.admission_capacity = 2;
  options.max_batch_per_cycle = 0;  // Nothing ever leaves the queue.
  Start(options);

  Request request;
  request.verb = Verb::kSubmitJob;
  request.job = MakeJob(0);
  EXPECT_EQ(RawCall(request).code, StatusCode::kOk);
  EXPECT_EQ(RawCall(request).code, StatusCode::kOk);
  EXPECT_EQ(RawCall(request).code, StatusCode::kRetryLater)
      << "a full admission queue must push back, not drop";
  EXPECT_EQ(server_->queue_depth(), 2u);

  uint64_t queue_depth = 0;
  std::string error;
  ASSERT_TRUE(client_->GetClusterState(nullptr, &queue_depth, &error)) << error;
  EXPECT_EQ(queue_depth, 2u);
}

TEST_F(LoopbackServiceTest, ClientRetriesOnBackpressureThenGivesUp) {
  ServiceOptions options;
  options.admission_capacity = 1;
  options.max_batch_per_cycle = 0;
  Start(options);

  JobId id = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "fits", &id, &error)) << error;

  // The queue never drains, so every attempt sees kRetryLater and the client
  // exhausts its budget.
  ClientOptions tight;
  tight.sleep_on_backoff = false;
  tight.max_attempts = 3;
  Client impatient(channel_.get(), tight);
  EXPECT_FALSE(impatient.SubmitJob(MakeJob(0), "never-fits", &id, &error));
  EXPECT_NE(error.find("retry_later"), std::string::npos) << error;
  EXPECT_EQ(impatient.total_retries(), 2) << "3 attempts = first try + 2 retries";

  // Once the queue drains, the same token goes through.
  ServiceOptions unblocked;
  server_.reset();  // Scheduler must outlive the server; replace both in order.
  scheduler_ = std::make_unique<PrioScheduler>(cluster_);
  server_ = std::make_unique<Server>(cluster_, scheduler_.get(), SimOptions{}, unblocked,
                                     &transport_);
  channel_->SetPump([this] { server_->HandleReady(); });
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "never-fits", &id, &error)) << error;
}

TEST_F(LoopbackServiceTest, CancelSemantics) {
  ServiceOptions options;
  options.max_batch_per_cycle = 0;  // Keep submissions in the admission queue.
  Start(options);

  JobId queued = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "queued", &queued, &error)) << error;

  // Cancelling a queued job withdraws it before the simulation sees it; the
  // cancel is idempotent and the job reports kAbandoned afterwards.
  ASSERT_TRUE(client_->CancelJob(queued, &error)) << error;
  ASSERT_TRUE(client_->CancelJob(queued, &error)) << error;
  JobStatusInfo info;
  ASSERT_TRUE(client_->QueryJob(queued, &info, &error)) << error;
  EXPECT_EQ(info.status, JobStatus::kAbandoned);
  SimStateInfo state;
  ASSERT_TRUE(client_->GetClusterState(&state, nullptr, &error)) << error;
  EXPECT_EQ(state.total_jobs, 0) << "a withdrawn job must never reach the simulation";

  // Unknown ids are kNotFound.
  Request request;
  request.verb = Verb::kCancelJob;
  request.job_id = 9999;
  EXPECT_EQ(RawCall(request).code, StatusCode::kNotFound);
}

TEST_F(LoopbackServiceTest, CompletedJobIsNotCancellable) {
  Start(ServiceOptions{});
  JobId id = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "done", &id, &error)) << error;
  StepUntilIdle();
  JobStatusInfo info;
  ASSERT_TRUE(client_->QueryJob(id, &info, &error)) << error;
  ASSERT_EQ(info.status, JobStatus::kCompleted);

  Request request;
  request.verb = Verb::kCancelJob;
  request.job_id = id;
  EXPECT_EQ(RawCall(request).code, StatusCode::kInvalidArgument);
}

TEST_F(LoopbackServiceTest, MalformedFrameGetsMalformedReply) {
  Start(ServiceOptions{});
  std::string error;
  ASSERT_TRUE(channel_->SendFrame("this is not a snapshot container", &error)) << error;
  std::string payload;
  ASSERT_TRUE(channel_->RecvFrame(&payload, 1.0, &error)) << error;
  Reply reply;
  ASSERT_TRUE(DecodeReply(payload, &reply, &error)) << error;
  EXPECT_EQ(reply.code, StatusCode::kMalformed);
  EXPECT_FALSE(reply.message.empty());

  // The connection survives: the next well-formed RPC still works.
  SimStateInfo state;
  ASSERT_TRUE(client_->GetClusterState(&state, nullptr, &error)) << error;
}

TEST_F(LoopbackServiceTest, MetricsDumpListsServiceSeries) {
  Start(ServiceOptions{});
  JobId id = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "m", &id, &error)) << error;
  std::string text;
  ASSERT_TRUE(client_->DumpMetrics(&text, &error)) << error;
  EXPECT_NE(text.find(std::string("svc.rpc.") + VerbName(Verb::kSubmitJob)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("svc.admitted"), std::string::npos) << text;
}

TEST_F(LoopbackServiceTest, DrainRejectsNewWorkAndFinishesAdmitted) {
  Start(ServiceOptions{});
  std::string error;
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    JobId id = 0;
    ASSERT_TRUE(
        client_->SubmitJob(MakeJob(0, 0.0, 1, 30.0 + i), "d-" + std::to_string(i), &id, &error))
        << error;
    ids.push_back(id);
  }
  ASSERT_TRUE(client_->Shutdown(/*drain=*/true, &error)) << error;

  // Submissions after the drain begins are refused, not queued.
  Request request;
  request.verb = Verb::kSubmitJob;
  request.job = MakeJob(0);
  request.token = "late";
  EXPECT_EQ(RawCall(request).code, StatusCode::kShuttingDown);

  RunToStop();
  EXPECT_TRUE(server_->stopped());
  const SimStateInfo state = server_->simulator().StateNow();
  EXPECT_TRUE(state.drained);
  EXPECT_EQ(state.total_jobs, 5);
  EXPECT_EQ(state.completed_jobs + state.abandoned_jobs, state.total_jobs)
      << "a drain must play out every admitted job";
}

TEST_F(LoopbackServiceTest, ImmediateShutdownStops) {
  Start(ServiceOptions{});
  JobId id = 0;
  std::string error;
  ASSERT_TRUE(client_->SubmitJob(MakeJob(0), "x", &id, &error)) << error;
  ASSERT_TRUE(client_->Shutdown(/*drain=*/false, &error)) << error;
  EXPECT_TRUE(server_->stopped());
  EXPECT_FALSE(server_->PollOnce());
}

TEST_F(LoopbackServiceTest, CheckpointRestoreKeepsTokenTable) {
  const std::string path = ::testing::TempDir() + "/svc_test_checkpoint.snap";
  ServiceOptions options;
  options.checkpoint_path = path;
  Start(options);

  std::map<std::string, JobId> assigned;
  std::string error;
  for (int i = 0; i < 6; ++i) {
    const std::string token = "ckpt-" + std::to_string(i);
    JobId id = 0;
    ASSERT_TRUE(client_->SubmitJob(MakeJob(0, static_cast<double>(i)), token, &id, &error))
        << error;
    assigned[token] = id;
  }
  for (int i = 0; i < 3; ++i) {
    server_->StepCycle();
  }
  std::string written;
  ASSERT_TRUE(client_->TriggerCheckpoint(&written, &error)) << error;
  EXPECT_EQ(written, path);

  // A fresh server restored from the snapshot dedupes all six tokens to the
  // same ids and keeps assigning fresh distinct ids afterwards.
  PrioScheduler restored_scheduler(cluster_);
  LoopbackTransport restored_transport;
  Server restored(cluster_, &restored_scheduler, SimOptions{}, options,
                  &restored_transport);
  ASSERT_TRUE(restored.RestoreFromFile(path, &error)) << error;
  auto restored_channel = restored_transport.Connect();
  restored_channel->SetPump([&restored] { restored.HandleReady(); });
  ClientOptions client_options;
  client_options.sleep_on_backoff = false;
  Client restored_client(restored_channel.get(), client_options);

  std::set<JobId> distinct;
  for (const auto& [token, id] : assigned) {
    JobId again = 0;
    ASSERT_TRUE(restored_client.SubmitJob(MakeJob(0), token, &again, &error)) << error;
    EXPECT_EQ(again, id) << "token " << token << " lost its id across restore";
    EXPECT_TRUE(distinct.insert(again).second);
  }
  JobId fresh = 0;
  ASSERT_TRUE(restored_client.SubmitJob(MakeJob(0), "ckpt-new", &fresh, &error)) << error;
  EXPECT_TRUE(distinct.insert(fresh).second) << "fresh submissions must not reuse ids";

  ASSERT_TRUE(restored_client.Shutdown(/*drain=*/true, &error)) << error;
  int guard = 0;
  while (restored.PollOnce() && ++guard < 100000) {
  }
  const SimStateInfo state = restored.simulator().StateNow();
  EXPECT_EQ(state.total_jobs, 7);
  EXPECT_EQ(state.completed_jobs + state.abandoned_jobs, state.total_jobs)
      << "no submission may be lost or duplicated across kill/restore";
  std::remove(path.c_str());
}

// --- Socket transport end-to-end ---------------------------------------------

TEST(SocketServiceTest, UnixSocketEndToEnd) {
  const std::string socket_path =
      ::testing::TempDir() + "/svc_test_" + std::to_string(::getpid()) + ".sock";
  SocketServerOptions socket_options;
  socket_options.unix_path = socket_path;
  SocketServerTransport transport;
  std::string error;
  ASSERT_TRUE(transport.Listen(socket_options, &error)) << error;

  const ClusterConfig cluster = ClusterConfig::Uniform(2, 8);
  PrioScheduler scheduler(cluster);
  ServiceOptions service;
  service.poll_timeout_seconds = 0.005;
  Server server(cluster, &scheduler, SimOptions{}, service, &transport);
  std::thread serve_thread([&server] { server.Serve(); });

  auto channel = SocketClientChannel::ConnectUnix(socket_path, &error);
  ASSERT_NE(channel, nullptr) << error;
  ClientOptions client_options;
  client_options.request_timeout_seconds = 10.0;
  Client client(channel.get(), client_options);

  std::set<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    JobId id = 0;
    ASSERT_TRUE(client.SubmitJob(MakeJob(0, static_cast<double>(i)),
                                 "sock-" + std::to_string(i), &id, &error))
        << error;
    EXPECT_TRUE(ids.insert(id).second);
  }
  JobId duplicate = 0;
  ASSERT_TRUE(client.SubmitJob(MakeJob(0), "sock-0", &duplicate, &error)) << error;
  EXPECT_EQ(ids.count(duplicate), 1u);

  ASSERT_TRUE(client.Shutdown(/*drain=*/true, &error)) << error;
  bool drained = false;
  for (int i = 0; i < 3000; ++i) {
    SimStateInfo state;
    uint64_t queue_depth = 0;
    ASSERT_TRUE(client.GetClusterState(&state, &queue_depth, &error)) << error;
    if (state.drained && queue_depth == 0) {
      EXPECT_EQ(state.total_jobs, 5);
      EXPECT_EQ(state.completed_jobs + state.abandoned_jobs, state.total_jobs);
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(drained) << "drain never observed over the socket";

  channel.reset();  // Closing the last connection lets the lingering server exit.
  serve_thread.join();
  transport.Close();
}

}  // namespace
}  // namespace threesigma::svc
