// Unit tests for the observability subsystem: metrics registry, span tracer,
// cycle profiler, decision log, and the Configure/Flush/ApplyEnv front door.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/obs.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace obs {
namespace {

// Every test starts and ends with all gates off and all collected state
// dropped, so tests in this binary cannot observe each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetRingCapacity(static_cast<size_t>(Options{}.ring_capacity));
    ResetAll();
  }
  void TearDown() override {
    Tracer::Global().SetRingCapacity(static_cast<size_t>(Options{}.ring_capacity));
    ResetAll();
  }
};

using RegistryTest = ObsTest;
using TracerTest = ObsTest;
using ProfilerTest = ObsTest;
using DecisionLogTest = ObsTest;
using FrontDoorTest = ObsTest;

TEST_F(RegistryTest, CounterAddAndValue) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_basic");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42);
  c->Add(-2);
  EXPECT_EQ(c->Value(), 40);
}

TEST_F(RegistryTest, CounterSetIsAbsolute) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_set");
  c->Add(100);
  c->Set(7);  // Snapshot-restore semantics: replaces, never adds.
  EXPECT_EQ(c->Value(), 7);
  c->Increment();
  EXPECT_EQ(c->Value(), 8);
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
}

TEST_F(RegistryTest, GetCounterReturnsStablePointer) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.counter_stable");
  Counter* b = reg.GetCounter("test.counter_stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.counter_stable");
}

TEST_F(RegistryTest, ThreadStripeInRange) {
  const int stripe = ThreadStripe();
  EXPECT_GE(stripe, 0);
  EXPECT_LT(stripe, kMetricStripes);
  // Stable within a thread.
  EXPECT_EQ(ThreadStripe(), stripe);
}

TEST_F(RegistryTest, ConcurrentCounterAddsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_mt");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c->Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Integer stripes make the aggregate exactly the single-threaded total.
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kAddsPerThread);
}

TEST_F(RegistryTest, GaugeLastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  g->Set(2.5);
  g->Set(-1.25);
  EXPECT_DOUBLE_EQ(g->Value(), -1.25);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST_F(RegistryTest, HistogramBucketsInclusiveUpperBound) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist_edges", {1.0, 2.0, 4.0});
  h->Observe(0.5);   // bucket 0 (<= 1).
  h->Observe(1.0);   // bucket 0 (edges are inclusive upper bounds).
  h->Observe(1.5);   // bucket 1.
  h->Observe(4.0);   // bucket 2.
  h->Observe(100.0);  // overflow bucket.
  EXPECT_EQ(h->TotalCount(), 5);
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  h->Reset();
  EXPECT_EQ(h->TotalCount(), 0);
}

TEST_F(RegistryTest, ConcurrentHistogramObservesSumExactly) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist_mt", {10.0});
  constexpr int kThreads = 4;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h->Observe(t < 2 ? 1.0 : 100.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2 * kObsPerThread);
  EXPECT_EQ(counts[1], 2 * kObsPerThread);
}

TEST_F(RegistryTest, WriteTextIsSortedAndDeterministic) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.z_counter")->Add(3);
  reg.GetCounter("test.a_counter")->Add(1);
  reg.GetGauge("test.m_gauge")->Set(0.5);
  std::ostringstream first;
  reg.WriteText(first);
  std::ostringstream second;
  reg.WriteText(second);
  EXPECT_EQ(first.str(), second.str());
  const std::string text = first.str();
  const size_t a = text.find("test.a_counter");
  const size_t z = text.find("test.z_counter");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_NE(text.find("test.m_gauge"), std::string::npos);
}

TEST_F(RegistryTest, CounterValuesSortedSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.cv_b")->Add(2);
  reg.GetCounter("test.cv_a")->Add(1);
  bool saw_a = false;
  bool saw_b = false;
  std::string prev;
  for (const auto& [name, value] : reg.CounterValues()) {
    EXPECT_LE(prev, name);  // Sorted by name.
    prev = name;
    if (name == "test.cv_a") {
      saw_a = true;
      EXPECT_EQ(value, 1);
    }
    if (name == "test.cv_b") {
      saw_b = true;
      EXPECT_EQ(value, 2);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(RegistryTest, SaveRestoreRoundTripIsAbsolute) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.rt_counter")->Add(42);
  reg.GetGauge("test.rt_gauge")->Set(1.5);
  Histogram* h = reg.GetHistogram("test.rt_hist", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(5.0);

  SnapshotWriter writer;
  writer.BeginSection("obs", 1);
  reg.SaveState(writer);
  writer.EndSection();
  const std::string buffer = writer.Finish();

  // Mutate after the save; restore must overwrite, not accumulate.
  reg.GetCounter("test.rt_counter")->Add(1000);
  reg.GetGauge("test.rt_gauge")->Set(-9.0);
  h->Observe(0.1);

  SnapshotReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader.BeginSection("obs"));
  reg.RestoreState(reader);
  reader.EndSection();
  ASSERT_TRUE(reader.ok());

  EXPECT_EQ(reg.GetCounter("test.rt_counter")->Value(), 42);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.rt_gauge")->Value(), 1.5);
  EXPECT_EQ(h->TotalCount(), 2);
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
}

TEST_F(RegistryTest, RestoreCreatesMissingMetrics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  // Save from a registry that has a uniquely-named counter, then restore and
  // verify lookups recreate it with the saved value. (The global registry
  // never deletes metrics, so "missing" is simulated by a fresh name: the
  // save/restore path must not depend on prior GetCounter calls — this is
  // what lets an old binary resume a newer snapshot.)
  SnapshotWriter writer;
  writer.BeginSection("obs", 1);
  reg.GetCounter("test.rc_counter")->Set(11);
  reg.SaveState(writer);
  writer.EndSection();
  reg.GetCounter("test.rc_counter")->Set(0);

  SnapshotReader reader(writer.Finish());
  ASSERT_TRUE(reader.BeginSection("obs"));
  reg.RestoreState(reader);
  reader.EndSection();
  EXPECT_EQ(reg.GetCounter("test.rc_counter")->Value(), 11);
}

TEST_F(RegistryTest, ResetZeroesEverything) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.reset_c")->Add(5);
  reg.GetGauge("test.reset_g")->Set(5.0);
  Histogram* h = reg.GetHistogram("test.reset_h", {1.0});
  h->Observe(0.5);
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("test.reset_c")->Value(), 0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.reset_g")->Value(), 0.0);
  EXPECT_EQ(h->TotalCount(), 0);
}

TEST(RegistryDeathTest, MismatchedHistogramEdgesDie) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetHistogram("test.hist_mismatch", {1.0, 2.0});
  EXPECT_DEATH(reg.GetHistogram("test.hist_mismatch", {3.0}), "edges");
}

TEST_F(TracerTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    TS_OBS_SPAN("test.disabled", Phase::kOther);
  }
  EXPECT_TRUE(Tracer::Global().CollectSpans().empty());
}

TEST_F(TracerTest, RecordsSpansWithNamesPhasesAndNesting) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.SetSimNow(12.5);
  tracer.SetCycle(3);
  {
    TS_OBS_SPAN("test.outer", Phase::kSolve);
    {
      TS_OBS_SPAN("test.inner", Phase::kPredict);
    }
  }
  tracer.SetEnabled(false);
  const std::vector<SpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  const auto names = tracer.names();
  // Spans are emitted on scope *exit*, so the inner span lands first.
  EXPECT_EQ(names[spans[0].name_id].first, "test.inner");
  EXPECT_EQ(spans[0].phase, static_cast<uint8_t>(Phase::kPredict));
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(names[spans[1].name_id].first, "test.outer");
  EXPECT_EQ(spans[1].phase, static_cast<uint8_t>(Phase::kSolve));
  EXPECT_EQ(spans[1].depth, 0);
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.cycle, 3);
    EXPECT_DOUBLE_EQ(s.sim_time, 12.5);
    EXPECT_GE(s.wall_dur, 0.0);
  }
  EXPECT_LT(spans[0].order, spans[1].order);
}

TEST_F(TracerTest, RingWrapDropsOldestAndCounts) {
  Tracer& tracer = Tracer::Global();
  tracer.SetRingCapacity(4);
  tracer.Clear();  // Re-creates this thread's ring at the new capacity.
  tracer.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    TS_OBS_SPAN("test.wrap", Phase::kOther);
  }
  tracer.SetEnabled(false);
  const std::vector<SpanRecord> spans = tracer.CollectSpans();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The retained spans are the newest, still in emission order.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].order, spans[i - 1].order + 1);
  }
}

TEST_F(TracerTest, ChromeJsonExportIsWellFormedEnough) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.SetSimNow(1.0);
  {
    TS_OBS_SPAN("test.json_span", Phase::kBuild);
  }
  tracer.SetEnabled(false);
  std::ostringstream os;
  tracer.ExportChromeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"build\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TracerTest, BinaryExportDeterministicUpToTiming) {
  // Two separately recorded identical traces must differ only in the
  // quarantined wall-clock section.
  const auto record_once = [] {
    ResetAll();
    Tracer& tracer = Tracer::Global();
    tracer.SetEnabled(true);
    tracer.SetSimNow(2.0);
    tracer.SetCycle(1);
    {
      TS_OBS_SPAN("test.bin_a", Phase::kCapacity);
    }
    {
      TS_OBS_SPAN("test.bin_b", Phase::kSolve);
    }
    tracer.SetEnabled(false);
    SnapshotWriter writer;
    tracer.ExportBinary(writer);
    return writer.Finish();
  };
  const std::string first = record_once();
  const std::string second = record_once();
  const std::vector<std::string> differing =
      DiffSnapshotSections(first, second, {"trace_timing"});
  EXPECT_TRUE(differing.empty())
      << "deterministic trace sections differ: " << differing.front();
  // Sanity: the sections are present and framed.
  SnapshotReader reader(first);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.PeekSectionName(), "trace_names");
}

TEST_F(ProfilerTest, RowsAccumulatePhasesAndFoldPending) {
  CycleProfiler& prof = CycleProfiler::Global();
  prof.SetEnabled(true);
  // Phase time before any cycle goes to the pending row.
  prof.AddPhase(Phase::kSimEvents, 0.25);
  prof.BeginCycle(0, 10.0);
  prof.AddPhase(Phase::kSolve, 0.5);
  prof.AddPhase(Phase::kSolve, 0.25);
  prof.AddPhase(Phase::kBuild, 0.125);
  prof.EndCycle(1.0);
  prof.SetEnabled(false);
  ASSERT_EQ(prof.rows().size(), 1u);
  const CyclePhaseRow& row = prof.rows()[0];
  EXPECT_EQ(row.cycle, 0);
  EXPECT_DOUBLE_EQ(row.sim_time, 10.0);
  EXPECT_DOUBLE_EQ(row.phase_seconds[static_cast<size_t>(Phase::kSimEvents)], 0.25);
  EXPECT_DOUBLE_EQ(row.phase_seconds[static_cast<size_t>(Phase::kSolve)], 0.75);
  EXPECT_DOUBLE_EQ(row.phase_seconds[static_cast<size_t>(Phase::kBuild)], 0.125);
  EXPECT_DOUBLE_EQ(row.cycle_seconds, 1.0);
  EXPECT_DOUBLE_EQ(row.sched_phase_seconds(), 0.875);
}

TEST_F(ProfilerTest, CsvHasHeaderAndOneRowPerCycle) {
  CycleProfiler& prof = CycleProfiler::Global();
  prof.SetEnabled(true);
  for (int64_t c = 0; c < 3; ++c) {
    prof.BeginCycle(c, c * 10.0);
    prof.AddPhase(Phase::kValuation, 0.001);
    prof.EndCycle(0.002);
  }
  prof.SetEnabled(false);
  std::ostringstream os;
  prof.WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("cycle,sim_time,", 0), 0u);
  EXPECT_NE(csv.find("sched_phase_sum_s,cycle_s"), std::string::npos);
  int lines = 0;
  for (char ch : csv) {
    lines += ch == '\n';
  }
  EXPECT_EQ(lines, 4);  // Header + 3 rows.
}

TEST_F(DecisionLogTest, CsvStringIsExact) {
  DecisionLog& log = DecisionLog::Global();
  log.SetEnabled(true);
  DecisionRecord a;
  a.cycle = 0;
  a.sim_time = 10.0;
  a.pending = 3;
  a.running = 1;
  a.starts = {{7, 0}, {9, 2}};
  log.Record(a);
  DecisionRecord b;
  b.cycle = 1;
  b.sim_time = 20.0;
  b.pending = 1;
  b.running = 3;
  b.preempts = {7};
  b.abandons = {4};
  b.deferred = {{9, 1}};
  log.Record(b);
  log.SetEnabled(false);
  EXPECT_EQ(log.ToCsvString(),
            "cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n"
            "0,10,3,1,7@0;9@2,,,\n"
            "1,20,1,3,,7,4,9@1\n");
}

TEST_F(FrontDoorTest, SinksAutoEnableFacilities) {
  Options options;
  options.trace_json_out = "/tmp/unused.json";
  Configure(options);
  EXPECT_TRUE(Tracer::enabled());
  EXPECT_TRUE(CurrentOptions().tracing);
  EXPECT_FALSE(DecisionLog::enabled());

  Options off;
  Configure(off);
  EXPECT_FALSE(Tracer::enabled());

  Options decisions;
  decisions.decisions_csv_out = "/tmp/unused.csv";
  Configure(decisions);
  EXPECT_TRUE(DecisionLog::enabled());
  Configure(off);
}

TEST_F(FrontDoorTest, ProfilerImpliesTracerGate) {
  // The profiler is fed by Span::End, so enabling it must open the span gate.
  Options options;
  options.profiler = true;
  Configure(options);
  EXPECT_TRUE(CycleProfiler::enabled());
  EXPECT_TRUE(Tracer::enabled());
  Configure(Options{});
  EXPECT_FALSE(CycleProfiler::enabled());
  EXPECT_FALSE(Tracer::enabled());
}

TEST_F(FrontDoorTest, FlushWritesEverySink) {
  const std::string dir = ::testing::TempDir();
  Options options;
  options.trace_json_out = dir + "/obs_flush_trace.json";
  options.trace_bin_out = dir + "/obs_flush_trace.bin";
  options.phase_csv_out = dir + "/obs_flush_phase.csv";
  options.decisions_csv_out = dir + "/obs_flush_dec.csv";
  options.metrics_out = dir + "/obs_flush_metrics.txt";
  Configure(options);
  {
    TS_OBS_SPAN("test.flush_span", Phase::kSolve);
  }
  CycleProfiler::Global().BeginCycle(0, 0.0);
  CycleProfiler::Global().EndCycle(0.001);
  DecisionLog::Global().Record(DecisionRecord{});
  MetricsRegistry::Global().GetCounter("test.flush_counter")->Increment();
  std::string error;
  ASSERT_TRUE(Flush(&error)) << error;
  for (const std::string& path :
       {options.trace_json_out, options.trace_bin_out, options.phase_csv_out,
        options.decisions_csv_out, options.metrics_out}) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_FALSE(first_line.empty()) << path;
  }
}

TEST_F(FrontDoorTest, FlushReportsUnwritablePath) {
  Options options;
  options.metrics_out = "/nonexistent-dir-for-obs-test/metrics.txt";
  Configure(options);
  std::string error;
  EXPECT_FALSE(Flush(&error));
  EXPECT_NE(error.find("metrics"), std::string::npos);
}

TEST_F(FrontDoorTest, ApplyEnvOverlaysKnobs) {
  ::setenv("THREESIGMA_OBS_PHASE_CSV", "/tmp/env_phase.csv", 1);
  ::setenv("THREESIGMA_OBS_RING", "1024", 1);
  Options options;
  ApplyEnv(&options);
  ::unsetenv("THREESIGMA_OBS_PHASE_CSV");
  ::unsetenv("THREESIGMA_OBS_RING");
  EXPECT_EQ(options.phase_csv_out, "/tmp/env_phase.csv");
  EXPECT_EQ(options.ring_capacity, 1024);
  EXPECT_TRUE(options.profiler);  // Sink implies facility.
  EXPECT_TRUE(options.any());

  // Unset leaves fields untouched.
  Options untouched;
  untouched.trace_json_out = "keep.json";
  ApplyEnv(&untouched);
  EXPECT_EQ(untouched.trace_json_out, "keep.json");
}

TEST_F(FrontDoorTest, ResetAllDisablesAndClears) {
  Options options;
  options.tracing = true;
  options.profiler = true;
  options.decisions = true;
  Configure(options);
  {
    TS_OBS_SPAN("test.reset_span", Phase::kSolve);
  }
  CycleProfiler::Global().BeginCycle(0, 0.0);
  CycleProfiler::Global().EndCycle(0.001);
  DecisionLog::Global().Record(DecisionRecord{});
  MetricsRegistry::Global().GetCounter("test.resetall_counter")->Increment();
  ResetAll();
  EXPECT_FALSE(Tracer::enabled());
  EXPECT_FALSE(CycleProfiler::enabled());
  EXPECT_FALSE(DecisionLog::enabled());
  EXPECT_TRUE(Tracer::Global().CollectSpans().empty());
  EXPECT_TRUE(CycleProfiler::Global().rows().empty());
  EXPECT_TRUE(DecisionLog::Global().records().empty());
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.resetall_counter")->Value(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace threesigma
