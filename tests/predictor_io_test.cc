// Predictor persistence round-trip tests.

#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/predict/predictor_io.h"

namespace threesigma {
namespace {

ThreeSigmaPredictor MakeTrainedPredictor(int jobs) {
  ThreeSigmaPredictor p;
  Rng rng(17);
  for (int i = 0; i < jobs; ++i) {
    const int user = static_cast<int>(rng.UniformInt(0, 9));
    const int name = static_cast<int>(rng.UniformInt(0, 19));
    const JobFeatures features = {"user=u" + std::to_string(user),
                                  "jobname=j" + std::to_string(name),
                                  "user+jobname=u" + std::to_string(user) + "|j" +
                                      std::to_string(name)};
    p.RecordCompletion(features, rng.LogNormal(4.0, 1.0));
  }
  return p;
}

TEST(PredictorIoTest, RoundTripPreservesPredictions) {
  ThreeSigmaPredictor original = MakeTrainedPredictor(2000);
  std::stringstream buffer;
  SavePredictor(buffer, original);

  ThreeSigmaPredictor restored;
  ASSERT_TRUE(LoadPredictor(buffer, &restored));
  EXPECT_EQ(restored.history_count(), original.history_count());

  // Identical predictions for a spread of feature combinations.
  for (int user = 0; user < 10; ++user) {
    for (int name = 0; name < 20; name += 3) {
      const JobFeatures features = {"user=u" + std::to_string(user),
                                    "jobname=j" + std::to_string(name),
                                    "user+jobname=u" + std::to_string(user) + "|j" +
                                        std::to_string(name)};
      const RuntimePrediction a = original.Predict(features, 0.0);
      const RuntimePrediction b = restored.Predict(features, 0.0);
      EXPECT_DOUBLE_EQ(a.point_estimate, b.point_estimate);
      EXPECT_EQ(a.source, b.source);
      ASSERT_EQ(a.distribution.size(), b.distribution.size());
      for (size_t i = 0; i < a.distribution.atoms().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.distribution.atoms()[i].value, b.distribution.atoms()[i].value);
        EXPECT_DOUBLE_EQ(a.distribution.atoms()[i].probability,
                         b.distribution.atoms()[i].probability);
      }
    }
  }
}

TEST(PredictorIoTest, RoundTripPreservesStreamingState) {
  // The restored predictor must keep *learning* identically, not just
  // predicting identically: feed both the same new completions and compare.
  ThreeSigmaPredictor original = MakeTrainedPredictor(500);
  std::stringstream buffer;
  SavePredictor(buffer, original);
  ThreeSigmaPredictor restored;
  ASSERT_TRUE(LoadPredictor(buffer, &restored));

  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const JobFeatures features = {"user=u1", "jobname=j2", "user+jobname=u1|j2"};
    const double runtime = rng.LogNormal(4.0, 1.0);
    original.RecordCompletion(features, runtime);
    restored.RecordCompletion(features, runtime);
  }
  const RuntimePrediction a = original.Predict({"user=u1", "jobname=j2"}, 0.0);
  const RuntimePrediction b = restored.Predict({"user=u1", "jobname=j2"}, 0.0);
  EXPECT_DOUBLE_EQ(a.point_estimate, b.point_estimate);
  EXPECT_EQ(a.source, b.source);
}

TEST(PredictorIoTest, EmptyPredictorRoundTrips) {
  ThreeSigmaPredictor original;
  std::stringstream buffer;
  SavePredictor(buffer, original);
  ThreeSigmaPredictor restored = MakeTrainedPredictor(10);  // Pre-dirty it.
  ASSERT_TRUE(LoadPredictor(buffer, &restored));
  EXPECT_EQ(restored.history_count(), 0u);
}

TEST(PredictorIoTest, EscapedFeatureKeys) {
  ThreeSigmaPredictor original;
  original.RecordCompletion({"jobname=weird name with spaces", "user=a%b"}, 100.0);
  std::stringstream buffer;
  SavePredictor(buffer, original);
  ThreeSigmaPredictor restored;
  ASSERT_TRUE(LoadPredictor(buffer, &restored));
  ASSERT_NE(restored.history("jobname=weird name with spaces"), nullptr);
  ASSERT_NE(restored.history("user=a%b"), nullptr);
}

TEST(PredictorIoTest, RejectsGarbage) {
  ThreeSigmaPredictor p;
  std::istringstream bad1("not-a-predictor v1\n");
  EXPECT_FALSE(LoadPredictor(bad1, &p));
  std::istringstream bad2("threesigma-predictor v2\n");
  EXPECT_FALSE(LoadPredictor(bad2, &p));
  std::istringstream bad3("threesigma-predictor v1\nfeatures 1\nfeature k 5\nhist oops");
  EXPECT_FALSE(LoadPredictor(bad3, &p));
}

TEST(PredictorIoTest, CurrentFormatIsSnapshotContainer) {
  ThreeSigmaPredictor original = MakeTrainedPredictor(10);
  std::stringstream buffer;
  SavePredictor(buffer, original);
  EXPECT_EQ(buffer.str().substr(0, 8), "3SGSNAP1");
}

TEST(PredictorIoTest, LoadsLegacyTextV1Format) {
  ThreeSigmaPredictor original = MakeTrainedPredictor(800);
  std::stringstream buffer;
  SavePredictorTextV1(buffer, original);
  EXPECT_EQ(buffer.str().rfind("threesigma-predictor v1", 0), 0u);

  ThreeSigmaPredictor restored;
  ASSERT_TRUE(LoadPredictor(buffer, &restored));
  EXPECT_EQ(restored.history_count(), original.history_count());
  for (int user = 0; user < 10; ++user) {
    const JobFeatures features = {"user=u" + std::to_string(user)};
    const RuntimePrediction a = original.Predict(features, 0.0);
    const RuntimePrediction b = restored.Predict(features, 0.0);
    EXPECT_DOUBLE_EQ(a.point_estimate, b.point_estimate);
    EXPECT_EQ(a.source, b.source);
  }
}

TEST(PredictorIoTest, RejectsTruncatedStream) {
  ThreeSigmaPredictor original = MakeTrainedPredictor(100);
  std::stringstream buffer;
  SavePredictor(buffer, original);
  const std::string full = buffer.str();
  std::istringstream truncated(full.substr(0, full.size() / 2));
  ThreeSigmaPredictor restored;
  EXPECT_FALSE(LoadPredictor(truncated, &restored));
}

}  // namespace
}  // namespace threesigma
