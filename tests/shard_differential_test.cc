// Differential test layer for the shard-decomposed MILP solve.
//
// Two hundred seeded random 0/1 placement programs with varying component
// structure — fully separable multi-block, fully connected via coupling
// rows, and interleaved variable orders — are solved monolithically
// (MilpSolver) and sharded (SolveShardedMilp), each at 1 and 4 threads.
// Components share no variables or rows, so the sharded solve is exact: the
// merged objective must equal the monolithic one *bitwise* (the merge
// recomputes it through the full model's accumulation order), and because
// the continuous random objective coefficients make the binary optimum
// unique almost surely, the solution vectors must match exactly too.
//
// All solves here are unbudgeted: each shard receives the full node budget,
// so a binding budget truncates the sharded and monolithic searches at
// different points by design (see sharded_milp.h).

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/solver/lp_model.h"
#include "src/solver/milp.h"
#include "src/solver/sharded_milp.h"

namespace threesigma {
namespace {

// A random 0/1 program built from `blocks` independent sub-programs whose
// variables are created round-robin (block b owns global vars b, b+blocks,
// b+2*blocks, ...), so shards are interleaved in the global index order and
// the scatter/gather paths are genuinely exercised. With probability 0.2 a
// single coupling row spanning one variable of every block collapses the
// program to one component.
LpModel RandomShardedProgram(Rng& rng, std::vector<int>* int_vars, bool* coupled) {
  const int blocks = static_cast<int>(rng.UniformInt(1, 5));
  const int vars_per_block = static_cast<int>(rng.UniformInt(2, 5));
  const int n = blocks * vars_per_block;
  LpModel model;
  for (int v = 0; v < n; ++v) {
    int_vars->push_back(model.AddVariable(0.0, 1.0, rng.Uniform(-4.0, 10.0)));
  }
  for (int b = 0; b < blocks; ++b) {
    const int rows = static_cast<int>(rng.UniformInt(1, 4));
    for (int r = 0; r < rows; ++r) {
      std::vector<LpTerm> terms;
      for (int i = 0; i < vars_per_block; ++i) {
        if (rng.Bernoulli(0.6)) {
          terms.push_back({b + i * blocks, rng.Uniform(-2.0, 4.0)});
        }
      }
      if (terms.empty()) {
        terms.push_back({b + static_cast<int>(rng.UniformInt(0, vars_per_block - 1)) * blocks,
                         1.0});
      }
      if (rng.Bernoulli(0.1)) {
        // A >= row; a tight rhs sometimes makes a block (and therefore the
        // whole program) infeasible, which both paths must agree on.
        model.AddRow(RowSense::kGreaterEqual, rng.Uniform(0.0, 3.0), std::move(terms));
      } else {
        model.AddRow(RowSense::kLessEqual, rng.Uniform(0.5, 6.0), std::move(terms));
      }
    }
  }
  *coupled = rng.Bernoulli(0.2);
  if (*coupled && blocks > 1) {
    std::vector<LpTerm> coupling;
    for (int b = 0; b < blocks; ++b) {
      coupling.push_back({b, rng.Uniform(0.5, 2.0)});
    }
    model.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, 6.0), std::move(coupling));
  }
  return model;
}

TEST(ShardDifferentialTest, MatchesMonolithicBitwiseAt1And4Threads) {
  constexpr int kPrograms = 200;
  ThreadPool pool(4);
  int infeasible_seen = 0;
  int multi_shard_seen = 0;
  int single_shard_seen = 0;
  for (int p = 0; p < kPrograms; ++p) {
    Rng rng(3000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    bool coupled = false;
    const LpModel model = RandomShardedProgram(rng, &int_vars, &coupled);

    // Unbudgeted monolithic reference (thread count is irrelevant to the
    // answer; use the serial path).
    MilpSolver mono_solver(model, int_vars);
    const MilpSolution mono = mono_solver.Solve(MilpOptions{});

    ShardedMilpOptions serial;
    serial.base.num_threads = 1;
    ShardedMilpOptions parallel;
    parallel.base.pool = &pool;
    const ShardedMilpSolution sh1 = SolveShardedMilp(model, int_vars, serial);
    const ShardedMilpSolution sh4 = SolveShardedMilp(model, int_vars, parallel);

    EXPECT_GE(sh1.num_shards, 1) << "program " << p;
    if (sh1.num_shards > 1) {
      ++multi_shard_seen;
    } else {
      ++single_shard_seen;
    }

    // Sharded solves are exactly identical at any thread count.
    EXPECT_EQ(sh1.num_shards, sh4.num_shards) << "program " << p;
    EXPECT_EQ(sh1.merged.status, sh4.merged.status) << "program " << p;
    EXPECT_EQ(sh1.merged.values, sh4.merged.values) << "program " << p;
    EXPECT_EQ(sh1.merged.nodes_explored, sh4.merged.nodes_explored) << "program " << p;
    EXPECT_EQ(sh1.merged.lp_iterations, sh4.merged.lp_iterations) << "program " << p;

    EXPECT_EQ(mono.status, sh1.merged.status) << "program " << p;
    if (mono.status == MilpStatus::kInfeasible) {
      ++infeasible_seen;
      continue;
    }
    ASSERT_EQ(mono.status, MilpStatus::kOptimal) << "program " << p;
    // Bitwise objective identity: same optimum vector, same full-model
    // accumulation order — EXPECT_EQ, not EXPECT_NEAR.
    EXPECT_EQ(mono.objective, sh1.merged.objective) << "program " << p;
    EXPECT_EQ(mono.values, sh1.merged.values) << "program " << p;
    EXPECT_TRUE(model.IsFeasible(sh1.merged.values)) << "program " << p;
    for (double v : sh1.merged.values) {
      EXPECT_NEAR(v, std::round(v), 1e-6) << "program " << p;
    }
  }
  // The sweep must exercise every structural regime, not trivially agree.
  EXPECT_GT(infeasible_seen, 0);
  EXPECT_LT(infeasible_seen, kPrograms / 2);
  EXPECT_GT(multi_shard_seen, 0);
  EXPECT_GT(single_shard_seen, 0);
}

// Structural checks on the decomposition itself: separable blocks become
// shards ordered by smallest member variable, with ascending interleaved
// variable lists; a coupling row collapses everything to one shard.
TEST(ShardDifferentialTest, DecompositionFindsComponents) {
  // Two blocks over interleaved vars {0,2} and {1,3}, each internally
  // connected by one row.
  LpModel model;
  std::vector<int> int_vars;
  for (int v = 0; v < 4; ++v) {
    int_vars.push_back(model.AddVariable(0.0, 1.0, 1.0 + v));
  }
  model.AddRow(RowSense::kLessEqual, 1.0, {{0, 1.0}, {2, 1.0}});
  model.AddRow(RowSense::kLessEqual, 1.0, {{1, 1.0}, {3, 1.0}});

  const ShardDecomposition dec = DecomposeMilp(model, int_vars);
  ASSERT_EQ(dec.shards.size(), 2u);
  EXPECT_FALSE(dec.trivially_infeasible);
  EXPECT_EQ(dec.shards[0].vars, (std::vector<int>{0, 2}));
  EXPECT_EQ(dec.shards[1].vars, (std::vector<int>{1, 3}));
  EXPECT_EQ(dec.shards[0].rows, (std::vector<int>{0}));
  EXPECT_EQ(dec.shards[1].rows, (std::vector<int>{1}));
  EXPECT_EQ(dec.shards[0].model.num_variables(), 2);
  EXPECT_EQ(dec.shards[0].model.num_rows(), 1);
  // Identical structure, different coefficients: the structural fingerprints
  // collide by design (coefficients are excluded so drifting utilities still
  // reuse bases).
  EXPECT_EQ(dec.shards[0].fingerprint, dec.shards[1].fingerprint);

  // A coupling row merges the components.
  model.AddRow(RowSense::kLessEqual, 2.0, {{0, 1.0}, {1, 1.0}});
  const ShardDecomposition merged = DecomposeMilp(model, int_vars);
  ASSERT_EQ(merged.shards.size(), 1u);
  EXPECT_EQ(merged.shards[0].vars, (std::vector<int>{0, 1, 2, 3}));
}

// Row-free variables form singleton shards and still land at their globally
// optimal bound in the merged solution.
TEST(ShardDifferentialTest, RowFreeVariablesBecomeSingletonShards) {
  LpModel model;
  std::vector<int> int_vars;
  int_vars.push_back(model.AddVariable(0.0, 1.0, 2.5));   // Free, positive obj.
  int_vars.push_back(model.AddVariable(0.0, 1.0, -1.5));  // Free, negative obj.
  int_vars.push_back(model.AddVariable(0.0, 1.0, 3.0));
  int_vars.push_back(model.AddVariable(0.0, 1.0, 1.0));
  model.AddRow(RowSense::kLessEqual, 1.0, {{2, 1.0}, {3, 1.0}});

  const ShardDecomposition dec = DecomposeMilp(model, int_vars);
  ASSERT_EQ(dec.shards.size(), 3u);

  MilpSolver mono_solver(model, int_vars);
  const MilpSolution mono = mono_solver.Solve(MilpOptions{});
  const ShardedMilpSolution sharded = SolveShardedMilp(model, int_vars, ShardedMilpOptions{});
  ASSERT_EQ(mono.status, MilpStatus::kOptimal);
  ASSERT_EQ(sharded.merged.status, MilpStatus::kOptimal);
  EXPECT_EQ(mono.objective, sharded.merged.objective);
  EXPECT_EQ(mono.values, sharded.merged.values);
  EXPECT_EQ(sharded.num_shards, 3);
  EXPECT_EQ(sharded.max_shard_vars, 2);
  EXPECT_EQ(sharded.min_shard_vars, 1);
}

// An unsatisfiable zero-term row (possible through the general AddRow API
// when every coefficient coalesces to zero) makes the program infeasible
// before any shard is solved — matching the monolithic verdict.
TEST(ShardDifferentialTest, InconsistentZeroTermRowIsInfeasible) {
  LpModel model;
  std::vector<int> int_vars;
  int_vars.push_back(model.AddVariable(0.0, 1.0, 1.0));
  // x - x >= 2: coalesces to an empty row with rhs 2.
  model.AddRow(RowSense::kGreaterEqual, 2.0, {{0, 1.0}, {0, -1.0}});

  const ShardDecomposition dec = DecomposeMilp(model, int_vars);
  EXPECT_TRUE(dec.trivially_infeasible);
  const ShardedMilpSolution sharded = SolveShardedMilp(model, int_vars, ShardedMilpOptions{});
  EXPECT_EQ(sharded.merged.status, MilpStatus::kInfeasible);

  // A *consistent* zero-term row is dropped and changes nothing.
  LpModel ok;
  std::vector<int> ok_vars;
  ok_vars.push_back(ok.AddVariable(0.0, 1.0, 1.0));
  ok.AddRow(RowSense::kLessEqual, 2.0, {{0, 1.0}, {0, -1.0}});
  const ShardedMilpSolution fine = SolveShardedMilp(ok, ok_vars, ShardedMilpOptions{});
  EXPECT_EQ(fine.merged.status, MilpStatus::kOptimal);
  EXPECT_EQ(fine.merged.values, (std::vector<double>{1.0}));
}

// The monolithic optimum, sliced per shard as a warm start, must survive the
// sharded solve: every shard accepts its slice and the merged solution
// reports warm_start_returned.
TEST(ShardDifferentialTest, WarmStartSlicesAcrossShards) {
  ThreadPool pool(4);
  int warm_returned = 0;
  for (int p = 0; p < 40; ++p) {
    Rng rng(3000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    bool coupled = false;
    const LpModel model = RandomShardedProgram(rng, &int_vars, &coupled);
    MilpSolver mono_solver(model, int_vars);
    const MilpSolution mono = mono_solver.Solve(MilpOptions{});
    if (mono.status != MilpStatus::kOptimal) {
      continue;
    }
    ShardedMilpOptions options;
    options.base.warm_start = mono.values;
    options.base.pool = &pool;
    const ShardedMilpSolution sharded = SolveShardedMilp(model, int_vars, options);
    ASSERT_EQ(sharded.merged.status, MilpStatus::kOptimal) << "program " << p;
    EXPECT_EQ(sharded.merged.objective, mono.objective) << "program " << p;
    EXPECT_EQ(sharded.merged.values, mono.values) << "program " << p;
    if (sharded.merged.warm_start_returned) {
      ++warm_returned;
    }
  }
  EXPECT_GT(warm_returned, 0);
}

// The fingerprint-keyed basis map is a pure accelerator: re-solving with the
// bases captured by a first pass returns the identical answer, and the map
// is actually populated and consulted.
TEST(ShardDifferentialTest, ShardBasisMapNeverChangesTheAnswer) {
  ThreadPool pool(4);
  int map_hits_possible = 0;
  for (int p = 0; p < 60; ++p) {
    Rng rng(7000 + static_cast<uint64_t>(p));
    std::vector<int> int_vars;
    bool coupled = false;
    const LpModel model = RandomShardedProgram(rng, &int_vars, &coupled);

    std::map<uint64_t, LpBasis> bases;
    ShardedMilpOptions options;
    options.base.pool = &pool;
    options.shard_bases = &bases;
    const ShardedMilpSolution first = SolveShardedMilp(model, int_vars, options);
    if (first.merged.status == MilpStatus::kInfeasible) {
      continue;
    }
    EXPECT_FALSE(bases.empty()) << "program " << p;
    ++map_hits_possible;
    const ShardedMilpSolution second = SolveShardedMilp(model, int_vars, options);
    EXPECT_EQ(first.merged.status, second.merged.status) << "program " << p;
    EXPECT_EQ(first.merged.objective, second.merged.objective) << "program " << p;
    EXPECT_EQ(first.merged.values, second.merged.values) << "program " << p;
  }
  EXPECT_GT(map_hits_possible, 0);
}

}  // namespace
}  // namespace threesigma
