// t-digest sketch tests: accuracy, invariants, merging, and the
// EmpiricalDistribution bridge.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/histogram/empirical_distribution.h"
#include "src/histogram/tdigest.h"

namespace threesigma {
namespace {

TEST(TDigestTest, SmallExactValues) {
  TDigest d(100.0);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    d.Update(v);
  }
  EXPECT_DOUBLE_EQ(d.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 5.0);
  EXPECT_NEAR(d.Quantile(0.5), 3.0, 0.6);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 5.0);
}

TEST(TDigestTest, QuantileAccuracyUniform) {
  TDigest d(100.0);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    d.Update(rng.Uniform(0.0, 1000.0));
  }
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(d.Quantile(q), q * 1000.0, 15.0) << "q=" << q;
  }
}

TEST(TDigestTest, TailAccuracyHeavyTailed) {
  // The t-digest's selling point: tight tails. Compare p99/p999 against the
  // exact sample quantiles of a lognormal stream.
  TDigest d(200.0);
  Rng rng(5);
  std::vector<double> all;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.LogNormal(4.0, 1.5);
    d.Update(v);
    all.push_back(v);
  }
  for (double q : {0.99, 0.999}) {
    const double exact = Quantile(all, q);
    EXPECT_NEAR(d.Quantile(q), exact, exact * 0.08) << "q=" << q;
  }
}

TEST(TDigestTest, CentroidCountBounded) {
  TDigest d(100.0);
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    d.Update(rng.LogNormal(3.0, 1.0));
  }
  EXPECT_LE(d.centroid_count(), 220u);  // ~2 * compression.
  EXPECT_GE(d.centroid_count(), 50u);
}

TEST(TDigestTest, WeightConserved) {
  TDigest d(50.0);
  Rng rng(9);
  for (int i = 0; i < 12345; ++i) {
    d.Update(rng.Uniform(0.0, 10.0));
  }
  double sum = 0.0;
  for (const auto& c : d.centroids()) {
    sum += c.weight;
  }
  EXPECT_NEAR(sum, 12345.0, 1e-6);
}

TEST(TDigestTest, CdfMonotoneAndInverseOfQuantile) {
  TDigest d(100.0);
  Rng rng(11);
  for (int i = 0; i < 30000; ++i) {
    d.Update(rng.Normal(50.0, 10.0));
  }
  double prev = -1.0;
  for (double v = 0.0; v <= 100.0; v += 2.0) {
    const double c = d.CdfAtMost(v);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(d.CdfAtMost(d.Quantile(q)), q, 0.05);
  }
}

TEST(TDigestTest, MergeMatchesCombinedStream) {
  TDigest a(100.0);
  TDigest b(100.0);
  TDigest combined(100.0);
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const double lo = rng.Uniform(0.0, 10.0);
    const double hi = rng.Uniform(100.0, 110.0);
    a.Update(lo);
    combined.Update(lo);
    b.Update(hi);
    combined.Update(hi);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), combined.total_weight());
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(a.Quantile(q), combined.Quantile(q), 6.0) << "q=" << q;
  }
}

TEST(TDigestTest, MergeEmptyIsNoop) {
  TDigest a(50.0);
  a.Update(5.0);
  TDigest b(50.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 1.0);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.total_weight(), 1.0);
}

TEST(TDigestTest, BridgesToEmpiricalDistribution) {
  TDigest d(100.0);
  Rng rng(15);
  RunningStats exact;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.LogNormal(4.0, 1.0);
    d.Update(v);
    exact.Add(v);
  }
  const auto dist = EmpiricalDistribution::FromTDigest(d);
  EXPECT_EQ(dist.size(), d.centroid_count());
  EXPECT_NEAR(dist.Mean(), exact.mean(), exact.mean() * 0.03);
  // Survival queries behave.
  EXPECT_GT(dist.Survival(dist.Quantile(0.5)), 0.2);
}

// Property sweep over distribution shapes: median error within a few percent
// of the true scale.
class TDigestShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(TDigestShapeTest, MedianAccurate) {
  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  TDigest d(100.0);
  std::vector<double> all;
  const int shape = GetParam() % 3;
  for (int i = 0; i < 40000; ++i) {
    double v;
    if (shape == 0) {
      v = rng.Exponential(100.0);
    } else if (shape == 1) {
      v = rng.LogNormal(3.0, 2.0);
    } else {
      v = rng.Bernoulli(0.5) ? rng.Normal(10.0, 1.0) : rng.Normal(1000.0, 50.0);
    }
    v = std::max(v, 0.0);
    d.Update(v);
    all.push_back(v);
  }
  if (shape == 2) {
    // Bimodal: the median sits on the knife edge between modes, where the
    // digest's interpolation across the inter-mode gap is legitimately
    // coarse. Check the quartiles, which land inside the modes.
    EXPECT_NEAR(d.Quantile(0.25), Quantile(all, 0.25), 10.0);
    EXPECT_NEAR(d.Quantile(0.75), Quantile(all, 0.75), 60.0);
    return;
  }
  const double exact = Quantile(all, 0.5);
  const double scale = Quantile(all, 0.9) - Quantile(all, 0.1);
  EXPECT_NEAR(d.Quantile(0.5), exact, std::max(scale * 0.05, 1.0));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TDigestShapeTest, ::testing::Range(0, 9));

}  // namespace
}  // namespace threesigma
