// Digital-twin unit tests: scenario parsing, the inflation predictor
// wrapper, snapshot-forked speculation, advisor scoring/auto-apply, and the
// engine's determinism + state round-trip guarantees.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/config_flags.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"
#include "src/sim/simulator.h"
#include "src/snapshot/snapshot_io.h"
#include "src/twin/scenario.h"
#include "src/twin/twin.h"

namespace threesigma {
namespace {

JobSpec MakeSloJob(JobId id, Time submit, Duration runtime, Time deadline, double value) {
  JobSpec spec;
  spec.id = id;
  spec.name = "twin-slo";
  spec.user = "tester";
  spec.type = JobType::kSlo;
  spec.submit_time = submit;
  spec.true_runtime = runtime;
  spec.num_tasks = 1;
  spec.deadline = deadline;
  spec.utility = UtilityFunction::SloStep(value, deadline);
  spec.features = {"user=tester", "jobname=twin-slo"};
  return spec;
}

JobSpec MakeBeJob(JobId id, Time submit, Duration runtime, double value) {
  JobSpec spec;
  spec.id = id;
  spec.name = "twin-be";
  spec.user = "tester";
  spec.type = JobType::kBestEffort;
  spec.submit_time = submit;
  spec.true_runtime = runtime;
  spec.num_tasks = 1;
  spec.utility = UtilityFunction::BestEffortLinear(value, submit, 4.0 * runtime);
  spec.features = {"user=tester", "jobname=twin-be"};
  return spec;
}

DistSchedulerConfig TestConfig() {
  DistSchedulerConfig config;
  config.name = "3Sigma";
  config.use_distribution = true;
  config.overestimate_handling = true;
  config.adaptive_oe = true;
  config.planahead = 1200.0;
  config.num_start_slots = 6;
  config.cycle_period = 10.0;
  return config;
}

std::vector<JobSpec> SmallWorkload(int jobs) {
  std::vector<JobSpec> workload;
  for (int i = 0; i < jobs; ++i) {
    const Time submit = 5.0 * i;
    if (i % 2 == 0) {
      workload.push_back(MakeSloJob(i + 1, submit, 60.0 + 10.0 * (i % 5),
                                    submit + 600.0, 10.0));
    } else {
      workload.push_back(MakeBeJob(i + 1, submit, 45.0 + 15.0 * (i % 3), 1.0));
    }
  }
  return workload;
}

// A small live run mid-flight: predictor pre-trained, a few cycles stepped,
// work still pending — the state a serve daemon would snapshot.
class TwinForkTest : public ::testing::Test {
 protected:
  void Start(int jobs = 16, int warm_cycles = 4) {
    predictor_ = std::make_unique<ThreeSigmaPredictor>();
    for (int i = 0; i < 40; ++i) {
      predictor_->RecordCompletion({"user=tester", "jobname=twin-slo"}, 55.0 + (i % 7) * 5.0);
      predictor_->RecordCompletion({"user=tester", "jobname=twin-be"}, 40.0 + (i % 5) * 10.0);
    }
    sched_ = std::make_unique<DistributionScheduler>(cluster_, predictor_.get(), TestConfig());
    SimOptions options;
    options.seed = 7;
    sim_ = std::make_unique<Simulator>(cluster_, sched_.get(), SmallWorkload(jobs), options);
    for (int i = 0; i < warm_cycles; ++i) {
      ASSERT_TRUE(sim_->Step());
    }
  }

  ClusterConfig cluster_ = ClusterConfig::Uniform(2, 4);
  std::unique_ptr<ThreeSigmaPredictor> predictor_;
  std::unique_ptr<DistributionScheduler> sched_;
  std::unique_ptr<Simulator> sim_;
};

// --- Scenario parsing --------------------------------------------------------

TEST(ScenarioTest, ParseAndDescribeRoundTrip) {
  Scenario scenario;
  std::string error;
  ASSERT_TRUE(ParseScenario(
      "name=stress,planahead=600,oe_threshold=0.2,solver_threads=2,surge=1.5,"
      "surge_window=300,failures=2,failure_after=30,failure_duration=120,"
      "inflation=1.25,padding=1.1,system=3SigmaNoOE",
      &scenario, &error))
      << error;
  EXPECT_EQ(scenario.name, "stress");
  EXPECT_DOUBLE_EQ(scenario.planahead, 600.0);
  EXPECT_DOUBLE_EQ(scenario.oe_probability_threshold, 0.2);
  EXPECT_EQ(scenario.solver_threads, 2);
  EXPECT_DOUBLE_EQ(scenario.arrival_surge, 1.5);
  EXPECT_DOUBLE_EQ(scenario.surge_window, 300.0);
  EXPECT_EQ(scenario.extra_node_failures, 2);
  EXPECT_DOUBLE_EQ(scenario.failure_after, 30.0);
  EXPECT_DOUBLE_EQ(scenario.failure_duration, 120.0);
  EXPECT_DOUBLE_EQ(scenario.predictor_inflation, 1.25);
  EXPECT_DOUBLE_EQ(scenario.padding, 1.1);
  EXPECT_EQ(scenario.system, "3SigmaNoOE");
  EXPECT_TRUE(scenario.HasConfigOverride());

  // Describe() emits the same key=value format ParseScenario accepts.
  Scenario reparsed;
  ASSERT_TRUE(ParseScenario(scenario.Describe(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.Describe(), scenario.Describe());
}

TEST(ScenarioTest, ParseListAndErrors) {
  std::vector<Scenario> scenarios;
  std::string error;
  ASSERT_TRUE(ParseScenarioList("name=a,planahead=600;name=b,surge=2", &scenarios, &error))
      << error;
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].name, "a");
  EXPECT_EQ(scenarios[1].name, "b");
  EXPECT_FALSE(scenarios[1].HasConfigOverride()) << "surge is an overlay, not a config override";

  Scenario scenario;
  EXPECT_FALSE(ParseScenario("bogus_key=1", &scenario, &error));
  EXPECT_FALSE(ParseScenario("planahead=abc", &scenario, &error));
}

TEST(ScenarioTest, DefaultScenariosAreWellFormed) {
  const std::vector<Scenario> defaults = DefaultScenarios();
  ASSERT_GE(defaults.size(), 4u);
  for (const Scenario& s : defaults) {
    EXPECT_FALSE(s.name.empty());
    Scenario reparsed;
    std::string error;
    EXPECT_TRUE(ParseScenario(s.Describe(), &reparsed, &error)) << s.name << ": " << error;
  }
}

// --- InflatedPredictor -------------------------------------------------------

TEST(InflatedPredictorTest, ScalesDistributionAndPointEstimate) {
  ThreeSigmaPredictor inner;
  for (int i = 0; i < 30; ++i) {
    inner.RecordCompletion({"user=u", "jobname=j"}, 100.0);
  }
  InflatedPredictor inflated(&inner, 1.5);
  const RuntimePrediction base = inner.Predict({"user=u", "jobname=j"}, 100.0);
  const RuntimePrediction scaled = inflated.Predict({"user=u", "jobname=j"}, 100.0);
  EXPECT_DOUBLE_EQ(scaled.point_estimate, base.point_estimate * 1.5);
  EXPECT_DOUBLE_EQ(scaled.distribution.Mean(), base.distribution.Mean() * 1.5);
}

TEST(InflatedPredictorTest, UnitFactorIsExactPassThrough) {
  ThreeSigmaPredictor inner;
  inner.RecordCompletion({"user=u", "jobname=j"}, 100.0);
  InflatedPredictor identity(&inner, 1.0);
  const RuntimePrediction base = inner.Predict({"user=u", "jobname=j"}, 100.0);
  const RuntimePrediction same = identity.Predict({"user=u", "jobname=j"}, 100.0);
  EXPECT_EQ(same.point_estimate, base.point_estimate);
  EXPECT_EQ(same.distribution.Mean(), base.distribution.Mean());
}

// --- TwinFork ----------------------------------------------------------------

TEST_F(TwinForkTest, BaselineForkSpeculatesWithoutTouchingLiveState) {
  Start();
  const std::string before = sim_->SaveStateToBuffer();

  Scenario baseline;
  baseline.name = "baseline";
  TwinFork fork(before, cluster_, SystemKind::kThreeSigma, sched_->config(), baseline);
  ASSERT_TRUE(fork.ok()) << fork.error();
  const ScenarioOutcome outcome = fork.Speculate(200);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GT(outcome.speculative_cycles, 0);
  EXPECT_GT(outcome.completed, 0);
  EXPECT_GT(outcome.projected_utility, 0.0);

  // The live run must be bit-identical to before the speculation.
  EXPECT_EQ(sim_->SaveStateToBuffer(), before);
}

TEST_F(TwinForkTest, ForkIsSpentAfterSpeculate) {
  Start();
  const std::string snapshot = sim_->SaveStateToBuffer();
  Scenario baseline;
  TwinFork fork(snapshot, cluster_, SystemKind::kThreeSigma, sched_->config(), baseline);
  ASSERT_TRUE(fork.ok()) << fork.error();
  ASSERT_TRUE(fork.Speculate(10).ok);
  const ScenarioOutcome second = fork.Speculate(10);
  EXPECT_FALSE(second.ok) << "a fork is single-shot";
}

TEST_F(TwinForkTest, SurgeScenarioInjectsCloneArrivals) {
  Start();
  const std::string snapshot = sim_->SaveStateToBuffer();

  Scenario baseline;
  TwinFork base_fork(snapshot, cluster_, SystemKind::kThreeSigma, sched_->config(), baseline);
  ASSERT_TRUE(base_fork.ok()) << base_fork.error();
  const ScenarioOutcome base = base_fork.Speculate(300);
  ASSERT_TRUE(base.ok) << base.error;

  Scenario surge;
  surge.name = "surge";
  surge.arrival_surge = 2.0;
  surge.surge_window = 120.0;
  TwinFork surge_fork(snapshot, cluster_, SystemKind::kThreeSigma, sched_->config(), surge);
  ASSERT_TRUE(surge_fork.ok()) << surge_fork.error();
  const ScenarioOutcome surged = surge_fork.Speculate(300);
  ASSERT_TRUE(surged.ok) << surged.error;
  EXPECT_GT(surged.completed, base.completed) << "surge clones must enter the speculative run";
}

TEST_F(TwinForkTest, FailureScenarioInjectsFaultEvents) {
  Start();
  const std::string snapshot = sim_->SaveStateToBuffer();
  Scenario failures;
  failures.name = "failures";
  failures.extra_node_failures = 2;
  failures.failure_after = 5.0;
  failures.failure_duration = 400.0;
  TwinFork fork(snapshot, cluster_, SystemKind::kThreeSigma, sched_->config(), failures);
  ASSERT_TRUE(fork.ok()) << fork.error();
  const ScenarioOutcome outcome = fork.Speculate(300);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GT(outcome.speculative_cycles, 0);
}

TEST_F(TwinForkTest, PrioSystemRejected) {
  Start();
  const std::string snapshot = sim_->SaveStateToBuffer();
  Scenario baseline;
  TwinFork fork(snapshot, cluster_, SystemKind::kPrio, sched_->config(), baseline);
  EXPECT_FALSE(fork.ok());
  EXPECT_NE(fork.error().find("DistributionScheduler"), std::string::npos);
}

TEST_F(TwinForkTest, ConfigOverrideScenarioChangesForkPolicy) {
  Start();
  const std::string snapshot = sim_->SaveStateToBuffer();
  Scenario tweak;
  tweak.name = "planahead_half";
  tweak.planahead = 600.0;
  tweak.oe_probability_threshold = 0.2;
  TwinFork fork(snapshot, cluster_, SystemKind::kThreeSigma, sched_->config(), tweak);
  ASSERT_TRUE(fork.ok()) << fork.error();
  EXPECT_DOUBLE_EQ(fork.sched().config().planahead, 600.0);
  EXPECT_DOUBLE_EQ(fork.sched().config().oe_probability_threshold, 0.2);
  EXPECT_TRUE(fork.Speculate(100).ok);
  // The live scheduler's config is untouched.
  EXPECT_DOUBLE_EQ(sched_->config().planahead, 1200.0);
}

// --- WhatIfEngine ------------------------------------------------------------

TEST_F(TwinForkTest, EngineReportIsDeterministicAndLeavesLiveStateAlone) {
  Start();
  TwinOptions options;
  options.horizon_cycles = 60;
  WhatIfEngine engine(cluster_, sched_.get(), options);

  const std::string before = sim_->SaveStateToBuffer();
  const WhatIfReport first = engine.Run(*sim_, DefaultScenarios(), 60);
  // Everything but the process-global obs registry (where the engine's own
  // twin.* counters land by design) must be untouched.
  EXPECT_TRUE(DiffSnapshotSections(before, sim_->SaveStateToBuffer(), {"obs"}).empty())
      << "a what-if sweep must not perturb the live simulation";
  const WhatIfReport second = engine.Run(*sim_, DefaultScenarios(), 60);
  EXPECT_EQ(first.ToText(), second.ToText())
      << "identical sweeps from identical state must match byte-for-byte";
  ASSERT_EQ(first.outcomes.size(), DefaultScenarios().size() + 1);
  EXPECT_EQ(first.outcomes[0].name, "baseline");
  for (const ScenarioOutcome& o : first.outcomes) {
    EXPECT_TRUE(o.ok) << o.name << ": " << o.error;
  }
}

TEST_F(TwinForkTest, EngineThreadCountDoesNotChangeReport) {
  Start();
  TwinOptions options;
  options.horizon_cycles = 40;

  DistSchedulerConfig serial_config = TestConfig();
  serial_config.solver_threads = 1;
  DistributionScheduler serial_sched(cluster_, predictor_.get(), serial_config);
  SimOptions sim_options;
  sim_options.seed = 7;
  Simulator serial_sim(cluster_, &serial_sched, SmallWorkload(16), sim_options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(serial_sim.Step());
  }
  WhatIfEngine serial_engine(cluster_, &serial_sched, options);
  const std::string serial = serial_engine.Run(serial_sim, DefaultScenarios(), 40).ToText();

  DistSchedulerConfig parallel_config = TestConfig();
  parallel_config.solver_threads = 4;
  DistributionScheduler parallel_sched(cluster_, predictor_.get(), parallel_config);
  Simulator parallel_sim(cluster_, &parallel_sched, SmallWorkload(16), sim_options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(parallel_sim.Step());
  }
  ASSERT_NE(parallel_sched.solver_pool(), nullptr);
  WhatIfEngine parallel_engine(cluster_, &parallel_sched, options);
  const std::string parallel = parallel_engine.Run(parallel_sim, DefaultScenarios(), 40).ToText();

  EXPECT_EQ(serial, parallel) << "scenario fan-out must merge in index order";
}

TEST_F(TwinForkTest, AdvisorAutoApplyPromotesWinningOverride) {
  Start();
  TwinOptions options;
  options.horizon_cycles = 60;
  options.auto_apply = true;
  options.min_gain = -1e9;  // Any strictly-better scenario wins.
  WhatIfEngine engine(cluster_, sched_.get(), options);

  // A scenario list where every alternative carries a config override; if one
  // beats baseline it must land in the live scheduler.
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "planahead_half";
    s.planahead = 600.0;
    scenarios.push_back(s);
    s = Scenario{};
    s.name = "oe_wide";
    s.oe_probability_threshold = 0.2;
    scenarios.push_back(s);
  }
  const WhatIfReport report = engine.Run(*sim_, scenarios, 60);
  if (report.best_index > 0) {
    EXPECT_TRUE(report.applied);
    EXPECT_EQ(engine.advisor_state().applied, 1);
    const Scenario& winner = scenarios[static_cast<size_t>(report.best_index - 1)];
    if (winner.planahead > 0.0) {
      EXPECT_DOUBLE_EQ(sched_->config().planahead, winner.planahead);
    }
  } else {
    EXPECT_FALSE(report.applied);
    EXPECT_DOUBLE_EQ(sched_->config().planahead, 1200.0);
  }
  EXPECT_EQ(engine.advisor_state().sweeps, 1);
}

TEST_F(TwinForkTest, AutoApplyOffNeverTouchesLiveConfig) {
  Start();
  TwinOptions options;
  options.horizon_cycles = 60;
  options.auto_apply = false;
  options.min_gain = -1e9;
  WhatIfEngine engine(cluster_, sched_.get(), options);
  const WhatIfReport report = engine.Run(*sim_, DefaultScenarios(), 60);
  EXPECT_FALSE(report.applied);
  EXPECT_EQ(engine.advisor_state().applied, 0);
  EXPECT_DOUBLE_EQ(sched_->config().planahead, 1200.0);
}

TEST_F(TwinForkTest, MaybeAdviseRespectsCadence) {
  Start();
  TwinOptions options;
  options.horizon_cycles = 20;
  options.advise_every = 3;
  WhatIfEngine engine(cluster_, sched_.get(), options);
  EXPECT_FALSE(engine.MaybeAdvise(*sim_, 2));
  EXPECT_TRUE(engine.MaybeAdvise(*sim_, 3));
  EXPECT_FALSE(engine.MaybeAdvise(*sim_, 4));
  EXPECT_FALSE(engine.MaybeAdvise(*sim_, 5));
  EXPECT_TRUE(engine.MaybeAdvise(*sim_, 6));
  EXPECT_EQ(engine.advisor_state().sweeps, 2);
}

TEST_F(TwinForkTest, EngineStateRoundTripsThroughSnapshot) {
  Start();
  TwinOptions options;
  options.horizon_cycles = 20;
  options.advise_every = 3;
  WhatIfEngine engine(cluster_, sched_.get(), options);
  ASSERT_TRUE(engine.MaybeAdvise(*sim_, 3));

  SnapshotWriter writer;
  engine.SaveState(writer);
  const std::string buffer = writer.Finish();

  WhatIfEngine restored_engine(cluster_, sched_.get(), options);
  SnapshotReader reader(SnapshotReader::Borrowed{}, buffer);
  restored_engine.RestoreState(reader);
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(restored_engine.advisor_state().sweeps, engine.advisor_state().sweeps);
  EXPECT_EQ(restored_engine.advisor_state().last_sweep_cycle,
            engine.advisor_state().last_sweep_cycle);
  // The cadence clock survives: cycle 4 is still inside the advise window.
  EXPECT_FALSE(restored_engine.MaybeAdvise(*sim_, 4));
  EXPECT_TRUE(restored_engine.MaybeAdvise(*sim_, 6));
}

// The serve-shaped case: an open-workload simulation whose submissions are
// still open when the sweep forks it. Speculation must terminate (the fork
// idles out instead of waiting for arrivals that will never come).
TEST_F(TwinForkTest, OpenWorkloadForkTerminates) {
  SimOptions options;
  options.seed = 7;
  options.open_workload = true;
  predictor_ = std::make_unique<ThreeSigmaPredictor>();
  sched_ = std::make_unique<DistributionScheduler>(cluster_, predictor_.get(), TestConfig());
  sim_ = std::make_unique<Simulator>(cluster_, sched_.get(), std::vector<JobSpec>{}, options);
  std::string error;
  for (const JobSpec& spec : SmallWorkload(8)) {
    ASSERT_TRUE(sim_->InjectJob(spec, &error)) << error;
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sim_->Step());
  }

  TwinOptions twin_options;
  twin_options.horizon_cycles = 50;
  WhatIfEngine engine(cluster_, sched_.get(), twin_options);
  const WhatIfReport report = engine.Run(*sim_, DefaultScenarios(), 50);
  ASSERT_EQ(report.outcomes.size(), DefaultScenarios().size() + 1);
  for (const ScenarioOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.ok) << o.name << ": " << o.error;
    EXPECT_LE(o.speculative_cycles, 50);
  }
  const WhatIfReport again = engine.Run(*sim_, DefaultScenarios(), 50);
  EXPECT_EQ(report.ToText(), again.ToText());
}

}  // namespace
}  // namespace threesigma
