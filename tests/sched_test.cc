// Behavioral tests for 3σSched (DistributionScheduler) and Prio.
//
// The centerpiece reproduces the paper's §2.3 / Fig. 5 worked example: two
// jobs on a one-node cluster, an SLO job with a 15-minute deadline and a BE
// job. With runtimes ~U(0,10) the scheduler must run the SLO job first; with
// ~U(2.5,7.5) (same mean!) it must run the BE job first. A point-estimate
// scheduler cannot tell these cases apart.

#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"
#include "src/sched/prio_scheduler.h"

namespace threesigma {
namespace {

// Predictor whose answers are scripted per feature value.
class FakePredictor : public RuntimePredictor {
 public:
  void Set(const std::string& feature, EmpiricalDistribution dist, double point) {
    table_[feature] = {std::move(dist), point};
  }

  RuntimePrediction Predict(const JobFeatures& features, double /*true_runtime*/) override {
    for (const std::string& f : features) {
      const auto it = table_.find(f);
      if (it != table_.end()) {
        RuntimePrediction pred;
        pred.distribution = it->second.first;
        pred.point_estimate = it->second.second;
        pred.from_history = true;
        pred.source = f;
        return pred;
      }
    }
    RuntimePrediction pred;
    pred.distribution = EmpiricalDistribution::Point(60.0);
    pred.point_estimate = 60.0;
    return pred;
  }

  void RecordCompletion(const JobFeatures&, double) override { recorded_++; }

  int recorded() const { return recorded_; }

 private:
  std::map<std::string, std::pair<EmpiricalDistribution, double>> table_;
  int recorded_ = 0;
};

JobSpec MakeSloJob(JobId id, Time submit, Duration runtime, Time deadline, double value,
                   const std::string& tag) {
  JobSpec spec;
  spec.id = id;
  spec.name = tag;
  spec.type = JobType::kSlo;
  spec.submit_time = submit;
  spec.true_runtime = runtime;
  spec.num_tasks = 1;
  spec.deadline = deadline;
  spec.utility = UtilityFunction::SloStep(value, deadline);
  spec.features = {"job=" + tag};
  return spec;
}

JobSpec MakeBeJob(JobId id, Time submit, Duration runtime, double value,
                  const std::string& tag) {
  JobSpec spec;
  spec.id = id;
  spec.name = tag;
  spec.type = JobType::kBestEffort;
  spec.submit_time = submit;
  spec.true_runtime = runtime;
  spec.num_tasks = 1;
  spec.utility = UtilityFunction::BestEffortLinear(value, submit, Hours(2.0));
  spec.features = {"job=" + tag};
  return spec;
}

ClusterStateView IdleView(const ClusterConfig& cluster) {
  ClusterStateView view;
  view.cluster = &cluster;
  for (const NodeGroup& g : cluster.groups()) {
    view.free_nodes.push_back(g.node_count);
  }
  return view;
}

DistSchedulerConfig Fig5Config() {
  DistSchedulerConfig config;
  // The paper's example grid: start times {0, 2.5, ..., 17.5} minutes.
  config.planahead = Minutes(20.0);
  config.num_start_slots = 8;
  config.cycle_period = 1.0;
  config.solver_max_nodes = 500;
  config.solver_time_limit_seconds = 5.0;
  return config;
}

class Fig5Test : public ::testing::Test {
 protected:
  void RunScenario(double lo_minutes, double hi_minutes, JobId* started, Time* slo_plan) {
    ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
    FakePredictor predictor;
    const auto dist =
        EmpiricalDistribution::FromUniform(Minutes(lo_minutes), Minutes(hi_minutes), 400);
    predictor.Set("job=D", dist, dist.Mean());
    predictor.Set("job=BE", dist, dist.Mean());
    DistributionScheduler sched(cluster, &predictor, Fig5Config());

    const JobSpec slo = MakeSloJob(1, 0.0, Minutes(5.0), Minutes(15.0), 10.0, "D");
    const JobSpec be = MakeBeJob(2, 0.0, Minutes(5.0), 1.0, "BE");
    sched.OnJobArrival(slo, 0.0);
    sched.OnJobArrival(be, 0.0);

    const CycleResult result = sched.RunCycle(0.0, IdleView(cluster));
    ASSERT_EQ(result.start.size(), 1u) << "exactly one job fits the single node now";
    *started = result.start[0].job;
    *slo_plan = kNever;
    (void)slo_plan;
  }
};

TEST_F(Fig5Test, Scenario1WideDistributionRunsSloFirst) {
  // Runtimes ~U(0, 10) minutes: running BE first risks a 12.5% deadline miss,
  // so the SLO job must start now (Fig. 5a).
  JobId started = 0;
  Time plan = 0;
  RunScenario(0.0, 10.0, &started, &plan);
  EXPECT_EQ(started, 1) << "SLO job D must run first under the wide distribution";
}

TEST_F(Fig5Test, Scenario2NarrowDistributionRunsBeFirst) {
  // Runtimes ~U(2.5, 7.5) minutes, same mean: even worst-case runtimes finish
  // the SLO job by the deadline, so the BE job starts first (Fig. 5b).
  JobId started = 0;
  Time plan = 0;
  RunScenario(2.5, 7.5, &started, &plan);
  EXPECT_EQ(started, 2) << "BE job must run first under the narrow distribution";
}

TEST(DistributionSchedulerTest, PointEstimatesCannotDistinguishFig5Cases) {
  // With point estimates (mean = 5 min), both Fig. 5 scenarios look
  // identical: the scheduler sees 5+5 <= 15 and (greedily maximizing BE
  // latency utility) starts the BE job first in both — wrong for case 1.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  FakePredictor predictor;
  const auto wide = EmpiricalDistribution::FromUniform(0.0, Minutes(10.0), 400);
  predictor.Set("job=D", wide, wide.Mean());
  predictor.Set("job=BE", wide, wide.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.use_distribution = false;  // PointRealEst-style.
  DistributionScheduler sched(cluster, &predictor, config);
  sched.OnJobArrival(MakeSloJob(1, 0.0, Minutes(5.0), Minutes(15.0), 10.0, "D"), 0.0);
  sched.OnJobArrival(MakeBeJob(2, 0.0, Minutes(5.0), 1.0, "BE"), 0.0);
  const CycleResult result = sched.RunCycle(0.0, IdleView(cluster));
  ASSERT_EQ(result.start.size(), 1u);
  EXPECT_EQ(result.start[0].job, 2);
}

TEST(DistributionSchedulerTest, OverestimateHandlingRescuesImpossibleJob) {
  // History says the job takes ~30 min; the deadline window is 10 min. With
  // OE handling the utility decays gracefully and the idle cluster tries the
  // job anyway; without it, the job is never scheduled.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  const auto slow_dist = EmpiricalDistribution::FromUniform(Minutes(25.0), Minutes(35.0), 50);

  for (const bool oe : {true, false}) {
    FakePredictor predictor;
    predictor.Set("job=big", slow_dist, slow_dist.Mean());
    DistSchedulerConfig config = Fig5Config();
    config.overestimate_handling = oe;
    config.adaptive_oe = true;
    DistributionScheduler sched(cluster, &predictor, config);
    sched.OnJobArrival(MakeSloJob(1, 0.0, Minutes(5.0), Minutes(10.0), 10.0, "big"), 0.0);
    const CycleResult result = sched.RunCycle(0.0, IdleView(cluster));
    if (oe) {
      ASSERT_EQ(result.start.size(), 1u) << "OE handling must try the job";
      EXPECT_EQ(result.start[0].job, 1);
    } else {
      EXPECT_TRUE(result.start.empty()) << "zero expected utility: never scheduled";
    }
  }
}

TEST(DistributionSchedulerTest, AdaptiveOeDisabledForPlausibleJobs) {
  // P(meet deadline) = 0.5: adaptive mode must NOT extend the utility, so
  // once the deadline passes the job is abandoned. Non-adaptive mode extends
  // every SLO job and keeps scheduling it past the deadline.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  const auto dist = EmpiricalDistribution::FromUniform(Minutes(5.0), Minutes(15.0), 50);

  for (const bool adaptive : {true, false}) {
    FakePredictor predictor;
    predictor.Set("job=j", dist, dist.Mean());
    DistSchedulerConfig config = Fig5Config();
    config.overestimate_handling = true;
    config.adaptive_oe = adaptive;
    DistributionScheduler sched(cluster, &predictor, config);
    sched.OnJobArrival(MakeSloJob(1, 0.0, Minutes(8.0), Minutes(10.0), 10.0, "j"), 0.0);
    // One second past the deadline.
    const CycleResult result = sched.RunCycle(Minutes(10.0) + 1.0, IdleView(cluster));
    if (adaptive) {
      EXPECT_TRUE(result.start.empty());
      ASSERT_EQ(result.abandon.size(), 1u) << "utility is 0 after the deadline";
      EXPECT_EQ(result.abandon[0], 1);
    } else {
      ASSERT_EQ(result.start.size(), 1u) << "decayed utility is still positive";
    }
  }
}

TEST(DistributionSchedulerTest, PreemptsBestEffortForSloDeadline) {
  // A BE gang holds the whole cluster with a long expected remaining time; a
  // tight-deadline SLO job arrives. The MILP must preempt.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  FakePredictor predictor;
  const auto long_dist = EmpiricalDistribution::FromUniform(Hours(1.0), Hours(2.0), 50);
  const auto short_dist = EmpiricalDistribution::FromUniform(Minutes(4.0), Minutes(6.0), 50);
  predictor.Set("job=hog", long_dist, long_dist.Mean());
  predictor.Set("job=urgent", short_dist, short_dist.Mean());
  DistributionScheduler sched(cluster, &predictor, Fig5Config());

  JobSpec hog = MakeBeJob(1, 0.0, Hours(1.5), 1.0, "hog");
  hog.num_tasks = 4;
  sched.OnJobArrival(hog, 0.0);
  ClusterStateView view = IdleView(cluster);
  CycleResult r0 = sched.RunCycle(0.0, view);
  ASSERT_EQ(r0.start.size(), 1u);
  sched.OnJobStarted(1, 0, 0.0);

  // Cluster is now fully busy with the hog.
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};
  JobSpec urgent = MakeSloJob(2, Minutes(1.0), Minutes(5.0), Minutes(9.0), 40.0, "urgent");
  urgent.num_tasks = 4;
  sched.OnJobArrival(urgent, Minutes(1.0));
  const CycleResult r1 = sched.RunCycle(Minutes(1.0), view);
  ASSERT_EQ(r1.preempt.size(), 1u) << "the hog must be preempted";
  EXPECT_EQ(r1.preempt[0], 1);
  ASSERT_EQ(r1.start.size(), 1u);
  EXPECT_EQ(r1.start[0].job, 2);
}

TEST(DistributionSchedulerTest, PreemptionDisabledLeavesHogAlone) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  FakePredictor predictor;
  const auto long_dist = EmpiricalDistribution::FromUniform(Hours(1.0), Hours(2.0), 50);
  predictor.Set("job=hog", long_dist, long_dist.Mean());
  predictor.Set("job=urgent", long_dist, Minutes(5.0));
  DistSchedulerConfig config = Fig5Config();
  config.enable_preemption = false;
  DistributionScheduler sched(cluster, &predictor, config);

  JobSpec hog = MakeBeJob(1, 0.0, Hours(1.5), 1.0, "hog");
  hog.num_tasks = 4;
  sched.OnJobArrival(hog, 0.0);
  sched.OnJobStarted(1, 0, 0.0);
  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};
  JobSpec urgent = MakeSloJob(2, Minutes(1.0), Minutes(5.0), Minutes(9.0), 40.0, "urgent");
  urgent.num_tasks = 4;
  sched.OnJobArrival(urgent, Minutes(1.0));
  const CycleResult r = sched.RunCycle(Minutes(1.0), view);
  EXPECT_TRUE(r.preempt.empty());
  EXPECT_TRUE(r.start.empty());
}

TEST(DistributionSchedulerTest, UnderestimatedJobKeepsBlockingCapacity) {
  // A running job has outlived its entire history. Under §4.2.1 it must be
  // treated as still occupying its nodes (exp-inc), so a pending gang that
  // needs the whole group cannot start.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  FakePredictor predictor;
  const auto short_dist = EmpiricalDistribution::FromUniform(10.0, 20.0, 20);
  predictor.Set("job=late", short_dist, short_dist.Mean());
  predictor.Set("job=next", short_dist, short_dist.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.enable_preemption = false;
  DistributionScheduler sched(cluster, &predictor, config);

  JobSpec late = MakeBeJob(1, 0.0, 500.0, 1.0, "late");
  late.num_tasks = 4;
  sched.OnJobArrival(late, 0.0);
  sched.OnJobStarted(1, 0, 0.0);

  JobSpec next = MakeBeJob(2, 0.0, 15.0, 1.0, "next");
  next.num_tasks = 4;
  sched.OnJobArrival(next, 50.0);

  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};
  // At t=50 the job has run 50s >> max-observed 20s.
  const CycleResult r = sched.RunCycle(50.0, view);
  EXPECT_TRUE(r.start.empty()) << "slot-0 capacity must reflect the straggler";
}

TEST(DistributionSchedulerTest, SlowdownOnNonPreferredGroupsShapesPlacement) {
  // Two groups; the job's preferred group is busy. Starting now on the
  // non-preferred group (1.5x runtime) would miss the deadline; the job must
  // NOT start there now.
  ClusterConfig cluster = ClusterConfig::Uniform(2, 2);
  FakePredictor predictor;
  const auto dist = EmpiricalDistribution::FromUniform(Minutes(9.0), Minutes(11.0), 50);
  predictor.Set("job=fussy", dist, dist.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.enable_preemption = false;
  DistributionScheduler sched(cluster, &predictor, config);

  // Deadline allows 12 min: fine on preferred (~10 min), hopeless on
  // non-preferred (~15 min).
  JobSpec fussy = MakeSloJob(2, 0.0, Minutes(10.0), Minutes(12.0), 10.0, "fussy");
  fussy.num_tasks = 2;
  fussy.preferred_groups = {0};
  sched.OnJobArrival(fussy, 0.0);

  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0, 2};  // Preferred group fully busy.
  view.running = {RunningJobView{99, 0, 0.0, 2, JobType::kSlo}};
  // The scheduler does not know job 99; register it via arrival+start.
  JobSpec blocker = MakeBeJob(99, 0.0, Minutes(30.0), 1.0, "blocker");
  blocker.num_tasks = 2;
  blocker.type = JobType::kSlo;
  sched.OnJobArrival(blocker, 0.0);
  sched.OnJobStarted(99, 0, 0.0);

  const CycleResult r = sched.RunCycle(0.0, view);
  for (const Placement& p : r.start) {
    EXPECT_NE(p.job, 2) << "must not start on the slow group and miss the deadline";
  }
}

TEST(DistributionSchedulerTest, RecordsCompletionsIntoPredictor) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  FakePredictor predictor;
  DistributionScheduler sched(cluster, &predictor, Fig5Config());
  sched.OnJobArrival(MakeBeJob(1, 0.0, 10.0, 1.0, "a"), 0.0);
  sched.OnJobStarted(1, 0, 0.0);
  sched.OnJobFinished(1, 12.0, 12.0);
  EXPECT_EQ(predictor.recorded(), 1);
}

TEST(DistributionSchedulerTest, PendingCountTracksLifecycle) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  FakePredictor predictor;
  DistributionScheduler sched(cluster, &predictor, Fig5Config());
  EXPECT_EQ(sched.pending_count(), 0);
  sched.OnJobArrival(MakeBeJob(1, 0.0, 10.0, 1.0, "a"), 0.0);
  EXPECT_EQ(sched.pending_count(), 1);
  sched.OnJobStarted(1, 0, 0.0);
  EXPECT_EQ(sched.pending_count(), 0);
  sched.OnJobPreempted(1, 5.0);
  EXPECT_EQ(sched.pending_count(), 1);
  sched.OnJobFinished(1, 20.0, 15.0);
  EXPECT_EQ(sched.pending_count(), 0);
}

TEST(DistributionSchedulerTest, DeferredPlanReported) {
  // Fig. 5 scenario 1: D starts now, BE is deferred — the deferred
  // reservation must surface in CycleResult for observability.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  FakePredictor predictor;
  const auto dist = EmpiricalDistribution::FromUniform(0.0, Minutes(10.0), 200);
  predictor.Set("job=D", dist, dist.Mean());
  predictor.Set("job=BE", dist, dist.Mean());
  DistributionScheduler sched(cluster, &predictor, Fig5Config());
  sched.OnJobArrival(MakeSloJob(1, 0.0, Minutes(5.0), Minutes(15.0), 10.0, "D"), 0.0);
  sched.OnJobArrival(MakeBeJob(2, 0.0, Minutes(5.0), 1.0, "BE"), 0.0);
  const CycleResult result = sched.RunCycle(0.0, IdleView(cluster));
  ASSERT_EQ(result.start.size(), 1u);
  ASSERT_EQ(result.deferred.size(), 1u);
  EXPECT_EQ(result.deferred[0].job, 2);
  EXPECT_GT(result.deferred[0].start, 0.0);
}

TEST(DistributionSchedulerTest, SolveSkipAvoidsRedundantCycles) {
  // With unchanged state and no deferred start due, an immediately following
  // cycle must skip the MILP entirely.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  FakePredictor predictor;
  const auto dist = EmpiricalDistribution::FromUniform(Hours(1.0), Hours(2.0), 20);
  predictor.Set("job=long", dist, dist.Mean());
  predictor.Set("job=waiting", dist, dist.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.max_solve_skip = 60.0;
  config.cycle_period = 5.0;
  config.enable_preemption = false;
  DistributionScheduler sched(cluster, &predictor, config);

  JobSpec hog = MakeBeJob(1, 0.0, Hours(1.5), 1.0, "long");
  hog.num_tasks = 4;
  sched.OnJobArrival(hog, 0.0);
  sched.OnJobStarted(1, 0, 0.0);
  JobSpec waiting = MakeBeJob(2, 0.0, Hours(1.5), 1.0, "waiting");
  waiting.num_tasks = 4;
  sched.OnJobArrival(waiting, 1.0);

  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};

  const CycleResult first = sched.RunCycle(2.0, view);
  EXPECT_GT(first.milp_variables, 0) << "first cycle must solve";
  const CycleResult second = sched.RunCycle(7.0, view);
  EXPECT_EQ(second.milp_variables, 0) << "nothing changed: cycle must be skipped";
  // A state change re-arms the solver.
  sched.OnJobPreempted(1, 12.0);
  view.free_nodes = {4};
  view.running.clear();
  const CycleResult third = sched.RunCycle(12.0, view);
  EXPECT_GT(third.milp_variables, 0);
}

TEST(DistributionSchedulerTest, GreedyBackendSchedulesAndRespectsCapacity) {
  // Same Fig. 5 scenario 1 under the greedy backend: it has no joint
  // optimization, but it must still produce a feasible, single-job start.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  FakePredictor predictor;
  const auto dist = EmpiricalDistribution::FromUniform(0.0, Minutes(10.0), 200);
  predictor.Set("job=D", dist, dist.Mean());
  predictor.Set("job=BE", dist, dist.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.backend = SolverBackend::kGreedy;
  DistributionScheduler sched(cluster, &predictor, config);
  sched.OnJobArrival(MakeSloJob(1, 0.0, Minutes(5.0), Minutes(15.0), 10.0, "D"), 0.0);
  sched.OnJobArrival(MakeBeJob(2, 0.0, Minutes(5.0), 1.0, "BE"), 0.0);
  const CycleResult result = sched.RunCycle(0.0, IdleView(cluster));
  // Greedy considers SLO jobs first, so D starts now; BE cannot fit at any
  // slot whose expected capacity D still holds.
  ASSERT_EQ(result.start.size(), 1u);
  EXPECT_EQ(result.start[0].job, 1);
  EXPECT_TRUE(result.preempt.empty()) << "greedy backend never preempts";
  EXPECT_EQ(result.milp_variables, 0) << "no MILP was built";
}

TEST(DistributionSchedulerTest, GreedyBackendNeverPreempts) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  FakePredictor predictor;
  const auto long_dist = EmpiricalDistribution::FromUniform(Hours(1.0), Hours(2.0), 50);
  const auto short_dist = EmpiricalDistribution::FromUniform(Minutes(4.0), Minutes(6.0), 50);
  predictor.Set("job=hog", long_dist, long_dist.Mean());
  predictor.Set("job=urgent", short_dist, short_dist.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.backend = SolverBackend::kGreedy;
  DistributionScheduler sched(cluster, &predictor, config);
  JobSpec hog = MakeBeJob(1, 0.0, Hours(1.5), 1.0, "hog");
  hog.num_tasks = 4;
  sched.OnJobArrival(hog, 0.0);
  sched.OnJobStarted(1, 0, 0.0);
  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};
  JobSpec urgent = MakeSloJob(2, Minutes(1.0), Minutes(5.0), Minutes(9.0), 40.0, "urgent");
  urgent.num_tasks = 4;
  sched.OnJobArrival(urgent, Minutes(1.0));
  const CycleResult r = sched.RunCycle(Minutes(1.0), view);
  EXPECT_TRUE(r.preempt.empty());
  EXPECT_TRUE(r.start.empty());
}

// ---------------------------------------------------------------------------
// PrioScheduler
// ---------------------------------------------------------------------------

TEST(PrioSchedulerTest, SloJobsPreemptBestEffort) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  PrioScheduler sched(cluster);
  JobSpec hog = MakeBeJob(1, 0.0, Hours(1.0), 1.0, "hog");
  hog.num_tasks = 4;
  sched.OnJobArrival(hog, 0.0);
  sched.OnJobStarted(1, 0, 0.0);

  JobSpec urgent = MakeSloJob(2, 10.0, Minutes(5.0), Minutes(10.0), 10.0, "urgent");
  urgent.num_tasks = 4;
  sched.OnJobArrival(urgent, 10.0);

  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};
  const CycleResult r = sched.RunCycle(10.0, view);
  ASSERT_EQ(r.preempt.size(), 1u);
  EXPECT_EQ(r.preempt[0], 1);
  ASSERT_EQ(r.start.size(), 1u);
  EXPECT_EQ(r.start[0].job, 2);
}

TEST(PrioSchedulerTest, AttemptsSloEvenWhenHopeless) {
  // Unlike utility-based schedulers, Prio schedules an SLO job whose
  // deadline already passed (it has no runtime information).
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  PrioScheduler sched(cluster);
  sched.OnJobArrival(MakeSloJob(1, 0.0, Minutes(30.0), Minutes(5.0), 10.0, "doomed"),
                     0.0);
  const CycleResult r = sched.RunCycle(Minutes(10.0), IdleView(cluster));
  ASSERT_EQ(r.start.size(), 1u);
  EXPECT_EQ(r.start[0].job, 1);
}

TEST(PrioSchedulerTest, PrefersPreferredGroup) {
  ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  PrioScheduler sched(cluster);
  JobSpec job = MakeSloJob(1, 0.0, 100.0, 1000.0, 10.0, "j");
  job.preferred_groups = {1};
  sched.OnJobArrival(job, 0.0);
  const CycleResult r = sched.RunCycle(0.0, IdleView(cluster));
  ASSERT_EQ(r.start.size(), 1u);
  EXPECT_EQ(r.start[0].group, 1);
}

TEST(PrioSchedulerTest, BestEffortDoesNotPreempt) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 4);
  PrioScheduler sched(cluster);
  JobSpec hog = MakeBeJob(1, 0.0, Hours(1.0), 1.0, "hog");
  hog.num_tasks = 4;
  sched.OnJobArrival(hog, 0.0);
  sched.OnJobStarted(1, 0, 0.0);
  JobSpec be = MakeBeJob(2, 10.0, 100.0, 1.0, "b");
  be.num_tasks = 2;
  sched.OnJobArrival(be, 10.0);
  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {0};
  view.running = {RunningJobView{1, 0, 0.0, 4, JobType::kBestEffort}};
  const CycleResult r = sched.RunCycle(10.0, view);
  EXPECT_TRUE(r.preempt.empty());
  EXPECT_TRUE(r.start.empty());
}

TEST(PrioSchedulerTest, FallsBackToNonPreferredGroup) {
  ClusterConfig cluster = ClusterConfig::Uniform(2, 4);
  PrioScheduler sched(cluster);
  JobSpec job = MakeSloJob(1, 0.0, 100.0, 10000.0, 10.0, "j");
  job.num_tasks = 3;
  job.preferred_groups = {0};
  sched.OnJobArrival(job, 0.0);
  ClusterStateView view = IdleView(cluster);
  view.free_nodes = {1, 4};  // Preferred group too full.
  const CycleResult r = sched.RunCycle(0.0, view);
  ASSERT_EQ(r.start.size(), 1u);
  EXPECT_EQ(r.start[0].group, 1) << "must run (slower) rather than wait";
}

TEST(DistributionSchedulerTest, PendingCapDefersLowPriorityJobs) {
  // With max_pending_considered = 1, only the tightest-deadline SLO job
  // enters the MILP; the second job is not even valued this cycle.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 8);
  FakePredictor predictor;
  const auto dist = EmpiricalDistribution::FromUniform(50.0, 70.0, 20);
  predictor.Set("job=a", dist, dist.Mean());
  predictor.Set("job=b", dist, dist.Mean());
  DistSchedulerConfig config = Fig5Config();
  config.max_pending_considered = 1;
  DistributionScheduler sched(cluster, &predictor, config);
  sched.OnJobArrival(MakeSloJob(1, 0.0, 60.0, 1000.0, 10.0, "a"), 0.0);
  sched.OnJobArrival(MakeSloJob(2, 0.0, 60.0, 500.0, 10.0, "b"), 0.0);
  const CycleResult r = sched.RunCycle(0.0, IdleView(cluster));
  ASSERT_EQ(r.start.size(), 1u);
  EXPECT_EQ(r.start[0].job, 2) << "earliest deadline is considered first";
}

TEST(PrioSchedulerTest, FifoWithinBestEffort) {
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  PrioScheduler sched(cluster);
  JobSpec first = MakeBeJob(1, 0.0, 100.0, 1.0, "first");
  first.num_tasks = 2;
  JobSpec second = MakeBeJob(2, 1.0, 100.0, 1.0, "second");
  second.num_tasks = 2;
  sched.OnJobArrival(second, 1.0);
  sched.OnJobArrival(first, 1.0);  // Arrival order scrambled on purpose.
  const CycleResult r = sched.RunCycle(2.0, IdleView(cluster));
  ASSERT_EQ(r.start.size(), 1u);
  EXPECT_EQ(r.start[0].job, 1) << "earlier submit time wins";
}

}  // namespace
}  // namespace threesigma
