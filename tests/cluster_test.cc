// Tests for the cluster/job/utility model.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/cluster/utility.h"

namespace threesigma {
namespace {

TEST(ClusterConfigTest, UniformConstruction) {
  const ClusterConfig c = ClusterConfig::Uniform(4, 64);
  EXPECT_EQ(c.num_groups(), 4);
  EXPECT_EQ(c.total_nodes(), 256);
  EXPECT_EQ(c.max_group_size(), 64);
  EXPECT_EQ(c.group(2).id, 2);
  EXPECT_EQ(c.group(2).node_count, 64);
}

TEST(ClusterConfigTest, HeterogeneousGroups) {
  const ClusterConfig c({{0, "small", 16}, {1, "big", 100}});
  EXPECT_EQ(c.total_nodes(), 116);
  EXPECT_EQ(c.max_group_size(), 100);
}

TEST(ClusterConfigDeathTest, RejectsEmptyGroupList) {
  EXPECT_DEATH(ClusterConfig(std::vector<NodeGroup>{}), "at least one node group");
}

TEST(ClusterConfigDeathTest, RejectsNonPositiveNodeCount) {
  EXPECT_DEATH(ClusterConfig({{0, "bad", 0}}), "positive node_count");
  EXPECT_DEATH(ClusterConfig({{0, "ok", 8}, {1, "bad", -3}}), "positive node_count");
}

TEST(ClusterConfigDeathTest, RejectsDuplicateAndGappedGroupIds) {
  EXPECT_DEATH(ClusterConfig({{0, "a", 8}, {0, "b", 8}}), "duplicate or out of order");
  EXPECT_DEATH(ClusterConfig({{0, "a", 8}, {2, "b", 8}}), "gap in the id sequence");
}

TEST(JobSpecTest, PreferenceAndMultiplier) {
  JobSpec spec;
  spec.preferred_groups = {0, 2};
  spec.nonpreferred_slowdown = 1.5;
  spec.true_runtime = 100.0;
  EXPECT_TRUE(spec.PrefersGroup(0));
  EXPECT_FALSE(spec.PrefersGroup(1));
  EXPECT_DOUBLE_EQ(spec.RuntimeMultiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(spec.RuntimeMultiplier(1), 1.5);
  EXPECT_DOUBLE_EQ(spec.TrueRuntimeOn(1), 150.0);
}

TEST(JobSpecTest, EmptyPreferenceMeansIndifferent) {
  JobSpec spec;
  spec.true_runtime = 60.0;
  EXPECT_TRUE(spec.PrefersGroup(3));
  EXPECT_DOUBLE_EQ(spec.RuntimeMultiplier(3), 1.0);
}

TEST(JobSpecTest, DeadlineSlackDefinition) {
  JobSpec spec;
  spec.submit_time = 100.0;
  spec.true_runtime = 200.0;
  spec.deadline = 100.0 + 200.0 * 1.6;  // 60% slack.
  EXPECT_NEAR(spec.DeadlineSlackPercent(), 60.0, 1e-9);
}

TEST(UtilityFunctionTest, SloStepCliff) {
  const auto u = UtilityFunction::SloStep(10.0, 100.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(0.0), 10.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(100.0), 10.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(100.01), 0.0);
  EXPECT_TRUE(u.is_step());
  EXPECT_FALSE(u.has_decay_extension());
}

TEST(UtilityFunctionTest, DecayExtensionGracefullyDegrades) {
  // Fig. 3d: full value at the deadline, linear decay to zero over the
  // window, lower than an on-time completion but nonzero.
  const auto u = UtilityFunction::SloStepWithDecay(10.0, 100.0, 50.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(100.0), 10.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(125.0), 5.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(150.0), 0.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(200.0), 0.0);
  EXPECT_TRUE(u.has_decay_extension());
}

TEST(UtilityFunctionTest, WithOverestimateDecayTransformsStepOnly) {
  const auto step = UtilityFunction::SloStep(10.0, 100.0);
  const auto extended = step.WithOverestimateDecay(50.0);
  EXPECT_TRUE(extended.has_decay_extension());
  EXPECT_DOUBLE_EQ(extended.ValueAtCompletion(125.0), 5.0);
  // Idempotent on already-extended and no-op on linear.
  EXPECT_TRUE(extended.WithOverestimateDecay(10.0).has_decay_extension());
  const auto be = UtilityFunction::BestEffortLinear(1.0, 0.0, 100.0);
  EXPECT_FALSE(be.WithOverestimateDecay(10.0).is_step());
}

TEST(UtilityFunctionTest, BestEffortPrefersEarlyCompletion) {
  const auto u = UtilityFunction::BestEffortLinear(8.0, 50.0, 100.0);
  EXPECT_DOUBLE_EQ(u.ValueAtCompletion(50.0), 8.0);
  EXPECT_GT(u.ValueAtCompletion(75.0), u.ValueAtCompletion(100.0));
  // Floor keeps ancient BE jobs schedulable.
  EXPECT_GT(u.ValueAtCompletion(1e6), 0.0);
}

TEST(UtilityFunctionTest, PeakValueExposed) {
  EXPECT_DOUBLE_EQ(UtilityFunction::SloStep(7.0, 10.0).peak_value(), 7.0);
  EXPECT_DOUBLE_EQ(UtilityFunction::BestEffortLinear(3.0, 0.0, 10.0).peak_value(), 3.0);
}

}  // namespace
}  // namespace threesigma
