#include "src/cluster/job.h"

#include <algorithm>

namespace threesigma {

bool JobSpec::PrefersGroup(int group_id) const {
  if (preferred_groups.empty()) {
    return true;
  }
  return std::find(preferred_groups.begin(), preferred_groups.end(), group_id) !=
         preferred_groups.end();
}

double JobSpec::RuntimeMultiplier(int group_id) const {
  return PrefersGroup(group_id) ? 1.0 : nonpreferred_slowdown;
}

double JobSpec::DeadlineSlackPercent() const {
  if (deadline == kNever || true_runtime <= 0.0) {
    return 0.0;
  }
  return (deadline - submit_time - true_runtime) / true_runtime * 100.0;
}

}  // namespace threesigma
