#include "src/cluster/job.h"

#include <algorithm>

#include "src/snapshot/snapshot_io.h"

namespace threesigma {

bool JobSpec::PrefersGroup(int group_id) const {
  if (preferred_groups.empty()) {
    return true;
  }
  return std::find(preferred_groups.begin(), preferred_groups.end(), group_id) !=
         preferred_groups.end();
}

double JobSpec::RuntimeMultiplier(int group_id) const {
  return PrefersGroup(group_id) ? 1.0 : nonpreferred_slowdown;
}

double JobSpec::DeadlineSlackPercent() const {
  if (deadline == kNever || true_runtime <= 0.0) {
    return 0.0;
  }
  return (deadline - submit_time - true_runtime) / true_runtime * 100.0;
}

void JobSpec::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarI64(id);
  writer.WriteString(name);
  writer.WriteString(user);
  writer.WriteU8(static_cast<uint8_t>(type));
  writer.WriteDouble(submit_time);
  writer.WriteDouble(true_runtime);
  writer.WriteVarI64(num_tasks);
  writer.WriteDouble(deadline);
  writer.WriteIntVec(preferred_groups);
  writer.WriteDouble(nonpreferred_slowdown);
  utility.SaveState(writer);
  writer.WriteVarU64(features.size());
  for (const std::string& f : features) {
    writer.WriteString(f);
  }
}

void JobSpec::RestoreState(SnapshotReader& reader) {
  id = reader.ReadVarI64();
  name = reader.ReadString();
  user = reader.ReadString();
  type = static_cast<JobType>(reader.ReadU8());
  submit_time = reader.ReadDouble();
  true_runtime = reader.ReadDouble();
  num_tasks = static_cast<int>(reader.ReadVarI64());
  deadline = reader.ReadDouble();
  preferred_groups = reader.ReadIntVec();
  nonpreferred_slowdown = reader.ReadDouble();
  utility.RestoreState(reader);
  const uint64_t n = reader.ReadVarU64();
  features.clear();
  features.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    features.push_back(reader.ReadString());
  }
}

}  // namespace threesigma
