// Cluster resource model.
//
// The cluster is a set of node groups (racks / machine classes). A node group
// is the unit of placement and is what the paper calls an *equivalence set*
// (§4.3.3): the MILP's spatial complexity scales with the number of groups,
// not the number of nodes — the property the 12,583-node scalability
// experiment (Fig. 12) relies on.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

namespace threesigma {

struct NodeGroup {
  int id = 0;
  std::string name;
  int node_count = 0;
};

class ClusterConfig {
 public:
  ClusterConfig() = default;
  explicit ClusterConfig(std::vector<NodeGroup> groups);

  // `num_groups` equal groups of `nodes_per_group` nodes.
  static ClusterConfig Uniform(int num_groups, int nodes_per_group);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  int total_nodes() const { return total_nodes_; }
  const NodeGroup& group(int id) const { return groups_[id]; }
  const std::vector<NodeGroup>& groups() const { return groups_; }
  // The largest single group (upper bound on a gang placement).
  int max_group_size() const;

 private:
  std::vector<NodeGroup> groups_;
  int total_nodes_ = 0;
};

}  // namespace threesigma

#endif  // SRC_CLUSTER_CLUSTER_H_
