#include "src/cluster/cluster.h"

#include <algorithm>

#include "src/common/check.h"

namespace threesigma {

ClusterConfig::ClusterConfig(std::vector<NodeGroup> groups) : groups_(std::move(groups)) {
  TS_CHECK_MSG(!groups_.empty(),
               "ClusterConfig requires at least one node group (got an empty group list)");
  total_nodes_ = 0;
  for (size_t i = 0; i < groups_.size(); ++i) {
    TS_CHECK_MSG(groups_[i].id == static_cast<int>(i),
                 "node group ids must be unique and dense 0..n-1: the group at index "
                     << i << " has id " << groups_[i].id
                     << (groups_[i].id < static_cast<int>(i) ? " (duplicate or out of order)"
                                                             : " (gap in the id sequence)"));
    TS_CHECK_MSG(groups_[i].node_count > 0,
                 "node group " << groups_[i].id << " ('" << groups_[i].name
                               << "') must have a positive node_count, got "
                               << groups_[i].node_count);
    total_nodes_ += groups_[i].node_count;
  }
}

ClusterConfig ClusterConfig::Uniform(int num_groups, int nodes_per_group) {
  TS_CHECK_GT(num_groups, 0);
  TS_CHECK_GT(nodes_per_group, 0);
  std::vector<NodeGroup> groups;
  groups.reserve(static_cast<size_t>(num_groups));
  for (int i = 0; i < num_groups; ++i) {
    groups.push_back(NodeGroup{i, "group-" + std::to_string(i), nodes_per_group});
  }
  return ClusterConfig(std::move(groups));
}

int ClusterConfig::max_group_size() const {
  int best = 0;
  for (const NodeGroup& g : groups_) {
    best = std::max(best, g.node_count);
  }
  return best;
}

}  // namespace threesigma
