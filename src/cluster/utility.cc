#include "src/cluster/utility.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

UtilityFunction UtilityFunction::SloStep(double value, Time deadline) {
  TS_CHECK_GT(value, 0.0);
  UtilityFunction u;
  u.kind_ = Kind::kStep;
  u.value_ = value;
  u.deadline_ = deadline;
  return u;
}

UtilityFunction UtilityFunction::SloStepWithDecay(double value, Time deadline,
                                                  Duration decay_window) {
  TS_CHECK_GT(value, 0.0);
  TS_CHECK_GT(decay_window, 0.0);
  UtilityFunction u;
  u.kind_ = Kind::kStepDecay;
  u.value_ = value;
  u.deadline_ = deadline;
  u.window_ = decay_window;
  return u;
}

UtilityFunction UtilityFunction::BestEffortLinear(double value, Time submit_time,
                                                  Duration horizon) {
  TS_CHECK_GT(value, 0.0);
  TS_CHECK_GT(horizon, 0.0);
  UtilityFunction u;
  u.kind_ = Kind::kLinear;
  u.value_ = value;
  u.start_ = submit_time;
  u.window_ = horizon;
  return u;
}

double UtilityFunction::ValueAtCompletion(Time completion) const {
  switch (kind_) {
    case Kind::kStep:
      return completion <= deadline_ ? value_ : 0.0;
    case Kind::kStepDecay: {
      if (completion <= deadline_) {
        return value_;
      }
      const double overshoot = completion - deadline_;
      return value_ * std::max(0.0, 1.0 - overshoot / window_);
    }
    case Kind::kLinear: {
      const double elapsed = std::max(completion - start_, 0.0);
      // A small floor keeps very old BE jobs schedulable rather than starved.
      return value_ * std::max(0.02, 1.0 - elapsed / window_);
    }
  }
  return 0.0;
}

UtilityFunction UtilityFunction::WithOverestimateDecay(Duration decay_window) const {
  if (kind_ != Kind::kStep) {
    return *this;
  }
  return SloStepWithDecay(value_, deadline_, decay_window);
}

void UtilityFunction::SaveState(SnapshotWriter& writer) const {
  writer.WriteU8(static_cast<uint8_t>(kind_));
  writer.WriteDouble(value_);
  writer.WriteDouble(deadline_);
  writer.WriteDouble(start_);
  writer.WriteDouble(window_);
}

void UtilityFunction::RestoreState(SnapshotReader& reader) {
  kind_ = static_cast<Kind>(reader.ReadU8());
  value_ = reader.ReadDouble();
  deadline_ = reader.ReadDouble();
  start_ = reader.ReadDouble();
  window_ = reader.ReadDouble();
}

}  // namespace threesigma
