// Job utility functions (§3.1, Fig. 3).
//
// A utility function maps a job's *completion time* to its value. The paper
// models two shapes:
//   - SLO jobs: a step — constant value before the deadline, zero after
//     (Fig. 3a). The over-estimate handling of §4.2.2 replaces the cliff with
//     a linear decay past the deadline (Fig. 3d) so seemingly-impossible jobs
//     retain a little value and get tried when resources are free.
//   - Best-effort jobs: linearly decreasing in completion time, expressing
//     the-sooner-the-better.

#ifndef SRC_CLUSTER_UTILITY_H_
#define SRC_CLUSTER_UTILITY_H_

#include "src/common/units.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

class UtilityFunction {
 public:
  // The three shapes; exposed so the valuation engine (src/sched/valuation.h)
  // can dispatch to a closed-form Eq. 1 kernel per kind instead of calling
  // ValueAtCompletion through an indirection per distribution atom.
  enum class Kind { kStep, kStepDecay, kLinear };

  // Step utility: `value` if completed by `deadline`, else 0 (Fig. 3a).
  static UtilityFunction SloStep(double value, Time deadline);
  // Step with over-estimate extension: full value until `deadline`, then a
  // linear decay to zero over `decay_window` (Fig. 3d).
  static UtilityFunction SloStepWithDecay(double value, Time deadline, Duration decay_window);
  // Best-effort: `value` at `submit_time`, decaying linearly to a small floor
  // over `horizon` (latency-sensitive preference).
  static UtilityFunction BestEffortLinear(double value, Time submit_time, Duration horizon);

  // Utility of completing at absolute time `completion`.
  double ValueAtCompletion(Time completion) const;

  // Returns this utility with the §4.2.2 decay extension applied (no-op for
  // best-effort or already-extended utilities).
  UtilityFunction WithOverestimateDecay(Duration decay_window) const;

  Kind kind() const { return kind_; }
  double peak_value() const { return value_; }
  Time deadline() const { return deadline_; }
  // Linear kind: decay origin (submit time). StepDecay/Linear: decay span.
  Time start() const { return start_; }
  Duration window() const { return window_; }
  bool is_step() const { return kind_ == Kind::kStep || kind_ == Kind::kStepDecay; }
  bool has_decay_extension() const { return kind_ == Kind::kStepDecay; }

  // Snapshot codec hooks: raw payload, composable into a parent section.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  Kind kind_ = Kind::kStep;
  double value_ = 0.0;
  Time deadline_ = 0.0;          // Step kinds: the SLO deadline.
  Time start_ = 0.0;             // Linear kind: decay origin (submit time).
  Duration window_ = 0.0;        // StepDecay: decay span; Linear: horizon.
};

}  // namespace threesigma

#endif  // SRC_CLUSTER_UTILITY_H_
