// Job model.
//
// Jobs are gangs of `num_tasks` single-node tasks (the evaluation's
// mapper-only Gridmix jobs): all tasks start together on one node group and
// the job finishes when its runtime elapses. SLO jobs carry deadlines and
// soft placement preferences — running on a non-preferred group stretches
// the runtime by `nonpreferred_slowdown` (1.5× in the paper's workloads).

#ifndef SRC_CLUSTER_JOB_H_
#define SRC_CLUSTER_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/utility.h"
#include "src/common/units.h"
#include "src/predict/prediction.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

using JobId = int64_t;

enum class JobType {
  kSlo,         // Deadline-bound production job.
  kBestEffort,  // Latency-sensitive best-effort job.
};

struct JobSpec {
  JobId id = 0;
  std::string name;
  std::string user;
  JobType type = JobType::kBestEffort;

  Time submit_time = 0.0;
  // Ground-truth runtime on *preferred* resources; hidden from all
  // non-oracle predictors.
  Duration true_runtime = 0.0;
  // Gang width: nodes required, all simultaneously.
  int num_tasks = 1;

  // SLO only: absolute completion deadline.
  Time deadline = kNever;

  // Group ids this job prefers; empty means "indifferent" (all groups run at
  // full speed). Non-preferred groups stretch the runtime.
  std::vector<int> preferred_groups;
  double nonpreferred_slowdown = 1.5;

  // Utility of completing at a given time (§3.1).
  UtilityFunction utility = UtilityFunction::BestEffortLinear(1.0, 0.0, 3600.0);

  // Features for 3σPredict ("user=...", "jobname=...", ...).
  JobFeatures features;

  bool is_slo() const { return type == JobType::kSlo; }
  bool PrefersGroup(int group_id) const;
  // Runtime multiplier on `group_id`: 1.0 if preferred/indifferent, else the
  // slowdown factor.
  double RuntimeMultiplier(int group_id) const;
  // Ground-truth runtime on the given group.
  Duration TrueRuntimeOn(int group_id) const { return true_runtime * RuntimeMultiplier(group_id); }
  // The deadline slack definition of §5:
  //   (deadline - submit - runtime) / runtime * 100.
  double DeadlineSlackPercent() const;

  // Snapshot codec hooks: raw payload, composable into a parent section.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);
};

}  // namespace threesigma

#endif  // SRC_CLUSTER_JOB_H_
