// Discrete-event cluster simulator.
//
// Replaces the paper's YARN + physical cluster substrate. The simulator owns
// ground truth: job arrivals, node occupancy, completions, and preemption
// execution. Schedulers only see the ClusterStateView handed to them each
// cycle and the arrival/completion callbacks.
//
// Two fidelity modes reproduce the paper's RC256-vs-SC256 split (Table 2):
//   kIdeal         — SC256: exact runtimes, instantaneous task launch.
//   kHighFidelity  — RC256 stand-in: per-job runtime jitter, task launch
//                    overhead, and heartbeat-quantized completion detection,
//                    the dominant noise sources on the real cluster.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/faults/fault_schedule.h"
#include "src/sched/scheduler.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

enum class SimFidelity {
  kIdeal,
  kHighFidelity,
};

struct SimOptions {
  Duration cycle_period = 10.0;
  // Reactive scheduling: arrivals and completions trigger an extra cycle at
  // most this soon after the previous one (approximates the paper's 1-2 s
  // cycle granularity without solving the MILP every second). 0 disables.
  Duration reactive_min_gap = 2.0;
  SimFidelity fidelity = SimFidelity::kIdeal;
  // Simulation hard stop this long after the last arrival. The paper's
  // experiments are fixed 5-hour windows at load > 1, so the cluster is
  // saturated throughout; a short drain keeps the metrics window comparable
  // (work not completed by the stop does not count toward goodput, and
  // unfinished SLO jobs count as misses).
  Duration drain_limit = 900.0;
  uint64_t seed = 1;

  // High-fidelity noise knobs.
  double runtime_jitter_stddev = 0.05;   // Multiplicative ~N(1, sigma).
  Duration launch_overhead_max = 3.0;    // Task launch ~U(1, max) seconds.
  Duration heartbeat = 3.0;              // Completion detection quantum.

  // Preemption semantics. false = kill-and-requeue (container clusters,
  // §2.2 "killing"); true = migration-style resume that preserves progress
  // (VM clusters, §2.2 "migrating") — an extension ablated in
  // bench/abl03_preemption.
  bool preemption_resumes = false;

  // Fault injection (src/faults). With the default options (all processes
  // off) and an empty event list, the simulation is bit-identical to a
  // fault-free run. Node churn is sampled from `faults` unless
  // `fault_events` is non-empty, in which case that list is replayed exactly
  // (the probabilistic kill/straggler/stall processes still follow `faults`).
  FaultOptions faults;
  std::vector<FaultEvent> fault_events;

  // Open-workload (online service) mode. The workload is no longer fixed up
  // front: jobs enter via InjectJob() at or after the current sim time, the
  // run never drains on an empty queue until CloseSubmissions() is called,
  // and the hard stop is last_arrival + drain_limit measured from the close.
  // Sampled node churn is rejected in this mode (the churn horizon would be
  // unbounded); pass explicit `fault_events` to replay churn instead.
  bool open_workload = false;

  // Checkpoint cadence: every `checkpoint_every` completed scheduling cycles
  // Run() writes `<checkpoint_dir>/checkpoint_<cycle>.snap`. 0 disables.
  // These knobs describe the *local* run, not the simulation: ResumeFrom
  // keeps the caller's values rather than adopting the snapshot's.
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  // Stop Run() after this many completed cycles (0 = no limit). The partial
  // result is finalized normally; with checkpointing on this emulates a kill
  // at a known cycle.
  int64_t max_cycles = 0;

  // Digital-twin fork mode (src/twin). A speculative simulator is a
  // restored clone of a live run whose cycles are hypothetical: restore
  // leaves the global metrics registry untouched (the "obs" section is
  // consumed but not applied), InjectJob accepts what-if arrivals even in
  // batch mode, and InjectFaultOverlay is permitted. Like the checkpoint
  // knobs this describes the local run, not the simulation — it is never
  // serialized and restore keeps the caller's value.
  bool speculative = false;
};

enum class JobStatus {
  kPending,
  kRunning,
  kCompleted,
  kAbandoned,  // Scheduler gave up (zero achievable utility).
  kUnfinished, // Still pending/running when the simulation stopped.
};

// One contiguous execution of a job's gang on a node group. Preempted jobs
// have several runs; only the last can be `completed`.
struct JobRun {
  int group = -1;
  Time start = kNever;
  Time end = kNever;  // Completion, preemption, or the simulation stop.
  bool completed = false;
};

struct JobRecord {
  JobSpec spec;
  JobStatus status = JobStatus::kPending;
  Time start_time = kNever;       // Of the final (completing) run.
  Time finish_time = kNever;
  int group = -1;
  int preemptions = 0;
  // Runs of this job killed by faults (node crashes or injected task kills).
  int fault_kills = 0;
  // Machine-seconds of the run that completed (goodput contribution).
  double completed_work = 0.0;
  // Full occupancy history, including preempted runs (cluster space-time
  // provenance; see metrics/timeline.h).
  std::vector<JobRun> runs;

  bool MissedDeadline() const;
};

struct CycleStats {
  Time time = 0.0;
  double cycle_seconds = 0.0;
  double solver_seconds = 0.0;
  int milp_variables = 0;
  int milp_rows = 0;
  int milp_nodes = 0;
  int pending = 0;
  int running_jobs = 0;
  // Parallel-solver and expected-capacity-cache diagnostics (see CycleResult).
  int milp_max_queue_depth = 0;
  int milp_incumbent_improvements = 0;
  int64_t capacity_cache_hits = 0;
  int64_t capacity_cache_misses = 0;
  // Valuation-engine diagnostics (see CycleResult; zero with the engine off).
  int64_t valuation_cache_hits = 0;
  int64_t valuation_cache_misses = 0;
  int64_t valuation_kernel_calls = 0;
  // Shard-decomposition diagnostics (see CycleResult; zero with shards off).
  int milp_shards = 0;
  int milp_max_shard_vars = 0;
};

struct SimResult {
  std::vector<JobRecord> jobs;
  std::vector<CycleStats> cycles;
  int rejected_placements = 0;  // Scheduler decisions that did not fit.
  int total_preemptions = 0;
  Time end_time = 0.0;

  // Fault-injection observability (all zero when chaos is off).
  int tasks_killed_by_faults = 0;  // Gang runs killed by crashes/injected kills.
  int fault_node_events = 0;       // Node down/up events applied.
  int stalled_cycles = 0;          // Scheduling cycles lost to injected stalls.
  // Node-seconds of work lost to fault kills (the killed runs' elapsed
  // occupancy, which must be redone).
  double rework_node_seconds = 0.0;
  // Fraction of cluster space-time spent with nodes crashed.
  double node_downtime_fraction = 0.0;
  // Cluster space-time actually up: total_nodes * end_time minus crashed
  // node-seconds (the goodput-under-churn denominator).
  double available_node_seconds = 0.0;
  // The node churn events the run actually applied (sampled or replayed, up
  // to the simulation stop) — input for availability reconstruction.
  std::vector<FaultEvent> fault_events;
};

// Everything PeekCheckpoint can tell about a snapshot without a scheduler:
// enough to rebuild a matching Simulator and resume.
struct CheckpointInfo {
  ClusterConfig cluster;
  SimOptions options;
  uint64_t cycles_completed = 0;
  Time now = 0.0;
};

// A job's externally visible status (JobStatus RPC payload).
struct JobStatusInfo {
  JobStatus status = JobStatus::kPending;
  Time submit_time = kNever;
  Time start_time = kNever;
  Time finish_time = kNever;
  int group = -1;
  int preemptions = 0;
  bool arrived = false;  // The arrival event has fired.
};

// Aggregate run state (ClusterState RPC payload).
struct SimStateInfo {
  Time now = 0.0;
  uint64_t cycles_completed = 0;
  int64_t total_jobs = 0;
  int64_t pending_jobs = 0;  // Arrived and waiting to be placed.
  int64_t running_jobs = 0;
  int64_t completed_jobs = 0;
  int64_t abandoned_jobs = 0;
  int total_nodes = 0;
  int available_nodes = 0;  // Not crashed.
  int free_nodes = 0;       // Available and unoccupied.
  bool drained = false;
};

// Extra state a host (e.g. the svc server) appends to every simulator
// snapshot, after the scheduler's sections, so one checkpoint file restarts
// the whole process. Hooks are called inside SaveStateToBuffer /
// TryRestoreStateFromBuffer; implementations open their own named sections.
class SimulatorStateExtension {
 public:
  virtual ~SimulatorStateExtension() = default;
  virtual void SaveState(SnapshotWriter& writer) const = 0;
  virtual void RestoreState(SnapshotReader& reader) = 0;
};

class Simulator {
 public:
  // `scheduler` must outlive Run(). `workload` need not be sorted.
  Simulator(const ClusterConfig& cluster, Scheduler* scheduler, std::vector<JobSpec> workload,
            SimOptions options);
  ~Simulator();

  // Runs to completion (honoring max_cycles / checkpoint_every) and returns
  // the finalized result. Equivalent to: while (Step()) {...}; Finish().
  SimResult Run();

  // Stepwise API (replay_diff drives this cycle-by-cycle). Step() processes
  // events until one scheduling cycle's CycleStats is appended, returning
  // true; false means no cycle can be appended now — permanently in batch
  // mode (the run is drained), or until the next InjectJob in open-workload
  // mode (check drained()).
  bool Step();
  // Finalizes (closes open runs, marks kPending/kRunning jobs kUnfinished,
  // computes downtime aggregates) and returns the result. The simulator is
  // spent afterwards.
  SimResult Finish();

  // Scheduling cycles recorded so far == result.cycles.size().
  uint64_t cycles_completed() const;

  // --- Open-workload (online service) API ----------------------------------
  // All of these require options.open_workload (except the read-only
  // accessors, which work in either mode).

  // Admits a job into the running simulation. The submit time is clamped to
  // the current sim time (arrivals cannot land in the past). Returns false
  // with `*error` set on a duplicate id, an oversized gang, closed
  // submissions, or batch mode.
  bool InjectJob(JobSpec spec, std::string* error = nullptr);
  // No further InjectJob calls will be accepted; the run drains and stops
  // like a batch run (hard stop = max(now, last arrival + drain_limit)).
  void CloseSubmissions();
  // Withdraws a pending (never-started) job. Running, finished, or unknown
  // jobs are not cancellable. The scheduler is notified only if the job's
  // arrival was already delivered.
  bool CancelJob(JobId id, std::string* error = nullptr);

  // Speculative-only (options.speculative): appends extra node-churn events
  // to the fork's fault schedule and enqueues the ones still in the future.
  // Events at or before the current sim time are rejected. Scenario overlays
  // use this to ask "what if `count` nodes of `group` crashed at time t?".
  bool InjectFaultOverlay(const std::vector<FaultEvent>& events, std::string* error = nullptr);

  // Read-only accessors (valid in both modes).
  bool QueryJob(JobId id, JobStatusInfo* info);
  // Every job spec this run knows about, arrival-event index order (batch
  // workload first, then injections). Scenario surge overlays sample this.
  const std::vector<JobSpec>& workload() const { return workload_; }
  SimStateInfo StateNow();
  Time now();
  bool drained();

  // Host state piggybacked on checkpoints (svc server admission queue /
  // token table). Must be set before SaveStateToBuffer / restore so the
  // extension sections round-trip. Not owned; may be null.
  void SetStateExtension(SimulatorStateExtension* extension) { extension_ = extension; }

  // --- Checkpoint / restore -------------------------------------------------
  // The snapshot serializes the complete run state by module section:
  //   meta, rng, workload, faults, sim, metrics, timing, sched [, predict]
  // ("timing" carries the wall-clock per-cycle solver/cycle seconds so every
  // other section is bit-deterministic and diffable).
  std::string SaveStateToBuffer();
  bool WriteCheckpoint(const std::string& path, std::string* error = nullptr);

  // Restores a full run state into this simulator. The scheduler (and its
  // predictor) must be configured identically to the checkpointing run; the
  // snapshot's SimOptions are adopted except the local-run knobs
  // (checkpoint_every / checkpoint_dir / max_cycles), and the cluster shape
  // is validated against cluster_. Try* returns false with `*error` set;
  // the unchecked forms TS_CHECK-abort on a bad snapshot.
  bool TryRestoreStateFromBuffer(const std::string& buffer, std::string* error = nullptr);
  bool TryResumeFrom(const std::string& path, std::string* error = nullptr);
  void RestoreStateFromBuffer(const std::string& buffer);
  void ResumeFrom(const std::string& path);

  // Reads a snapshot's "meta" section only (no scheduler needed): the
  // cluster, options, and position a resuming caller must match.
  static bool PeekCheckpoint(const std::string& path, CheckpointInfo* info,
                             std::string* error = nullptr);

  // Test/diagnostic hook: burns one RNG draw, desynchronizing this run from
  // an otherwise identical one (replay_diff's injected-divergence mode).
  void DebugPerturbRng();

 private:
  struct RunState;

  void EnsureStarted();
  bool ProcessEvent();  // One event; true if it appended a CycleStats.
  void MaybeCheckpoint();

  const ClusterConfig& cluster_;
  Scheduler* scheduler_;
  std::vector<JobSpec> workload_;
  SimOptions options_;
  SimulatorStateExtension* extension_ = nullptr;
  std::unique_ptr<RunState> state_;
};

}  // namespace threesigma

#endif  // SRC_SIM_SIMULATOR_H_
