#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/obs/profiler.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace threesigma {
namespace {

// Simulator traffic counters in the process-wide metrics registry. Handles
// are resolved once; increments are lock-free striped adds.
struct SimCounters {
  obs::Counter* events;
  obs::Counter* arrivals;
  obs::Counter* completions;
  obs::Counter* node_faults;
  obs::Counter* task_kills;
  obs::Counter* cycles;
  obs::Counter* stalled_cycles;
  obs::Counter* fault_job_kills;
  obs::Counter* preemptions;
  obs::Counter* rejected_placements;

  static const SimCounters& Get() {
    static const SimCounters* const counters = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* c = new SimCounters();
      c->events = reg.GetCounter("sim.events");
      c->arrivals = reg.GetCounter("sim.arrivals");
      c->completions = reg.GetCounter("sim.completions");
      c->node_faults = reg.GetCounter("sim.node_fault_events");
      c->task_kills = reg.GetCounter("sim.task_kill_events");
      c->cycles = reg.GetCounter("sim.cycles");
      c->stalled_cycles = reg.GetCounter("sim.stalled_cycles");
      c->fault_job_kills = reg.GetCounter("sim.fault_job_kills");
      c->preemptions = reg.GetCounter("sim.preemptions");
      c->rejected_placements = reg.GetCounter("sim.rejected_placements");
      return c;
    }();
    return *counters;
  }
};

enum class EventKind {
  kArrival,
  kCompletion,
  kCycle,
  kNodeFault,  // Node crash/repair from the fault schedule.
  kTaskKill,   // Injected mid-run gang kill from the fault schedule.
};

struct Event {
  Time time;
  uint64_t seq;  // FIFO tiebreak for simultaneous events.
  EventKind kind;
  size_t job_index = 0;  // kNodeFault: index into the fault event list.
  int run_epoch = 0;     // Completion/kill validity: stale after preemption.

  bool operator>(const Event& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    return seq > other.seq;
  }
};

// v2: open-workload mode — SimOptions.open_workload, RunState submission
// bookkeeping (submissions_closed, last_arrival), and the per-job arrived
// flag.
constexpr uint32_t kSnapshotVersion = 4;

void SaveSimOptions(SnapshotWriter& writer, const SimOptions& o) {
  writer.WriteDouble(o.cycle_period);
  writer.WriteDouble(o.reactive_min_gap);
  writer.WriteU8(static_cast<uint8_t>(o.fidelity));
  writer.WriteDouble(o.drain_limit);
  writer.WriteU64(o.seed);
  writer.WriteDouble(o.runtime_jitter_stddev);
  writer.WriteDouble(o.launch_overhead_max);
  writer.WriteDouble(o.heartbeat);
  writer.WriteBool(o.preemption_resumes);
  writer.WriteDouble(o.faults.node_mttf);
  writer.WriteDouble(o.faults.node_mttr);
  writer.WriteDouble(o.faults.task_kill_prob);
  writer.WriteDouble(o.faults.straggler_prob);
  writer.WriteDouble(o.faults.straggler_factor);
  writer.WriteDouble(o.faults.cycle_stall_prob);
  writer.WriteDouble(o.faults.cycle_stall);
  writer.WriteU64(o.faults.seed);
  writer.WriteVarU64(o.fault_events.size());
  for (const FaultEvent& e : o.fault_events) {
    writer.WriteDouble(e.time);
    writer.WriteU8(static_cast<uint8_t>(e.kind));
    writer.WriteVarI64(e.group);
    writer.WriteVarI64(e.count);
  }
  writer.WriteVarI64(o.checkpoint_every);
  writer.WriteString(o.checkpoint_dir);
  writer.WriteVarI64(o.max_cycles);
  writer.WriteBool(o.open_workload);
}

void RestoreSimOptions(SnapshotReader& reader, SimOptions* o) {
  o->cycle_period = reader.ReadDouble();
  o->reactive_min_gap = reader.ReadDouble();
  o->fidelity = static_cast<SimFidelity>(reader.ReadU8());
  o->drain_limit = reader.ReadDouble();
  o->seed = reader.ReadU64();
  o->runtime_jitter_stddev = reader.ReadDouble();
  o->launch_overhead_max = reader.ReadDouble();
  o->heartbeat = reader.ReadDouble();
  o->preemption_resumes = reader.ReadBool();
  o->faults.node_mttf = reader.ReadDouble();
  o->faults.node_mttr = reader.ReadDouble();
  o->faults.task_kill_prob = reader.ReadDouble();
  o->faults.straggler_prob = reader.ReadDouble();
  o->faults.straggler_factor = reader.ReadDouble();
  o->faults.cycle_stall_prob = reader.ReadDouble();
  o->faults.cycle_stall = reader.ReadDouble();
  o->faults.seed = reader.ReadU64();
  const uint64_t num_events = reader.ReadVarU64();
  o->fault_events.clear();
  for (uint64_t i = 0; reader.ok() && i < num_events; ++i) {
    FaultEvent e;
    e.time = reader.ReadDouble();
    e.kind = static_cast<FaultKind>(reader.ReadU8());
    e.group = static_cast<int>(reader.ReadVarI64());
    e.count = static_cast<int>(reader.ReadVarI64());
    o->fault_events.push_back(e);
  }
  o->checkpoint_every = reader.ReadVarI64();
  o->checkpoint_dir = reader.ReadString();
  o->max_cycles = reader.ReadVarI64();
  o->open_workload = reader.ReadBool();
}

void SaveCluster(SnapshotWriter& writer, const ClusterConfig& cluster) {
  writer.WriteVarU64(static_cast<uint64_t>(cluster.num_groups()));
  for (const NodeGroup& g : cluster.groups()) {
    writer.WriteVarI64(g.id);
    writer.WriteString(g.name);
    writer.WriteVarI64(g.node_count);
  }
}

ClusterConfig RestoreCluster(SnapshotReader& reader) {
  const uint64_t n = reader.ReadVarCount();
  std::vector<NodeGroup> groups;
  groups.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    NodeGroup g;
    g.id = static_cast<int>(reader.ReadVarI64());
    g.name = reader.ReadString();
    g.node_count = static_cast<int>(reader.ReadVarI64());
    groups.push_back(std::move(g));
  }
  if (!reader.ok()) {
    return ClusterConfig();
  }
  return ClusterConfig(std::move(groups));
}

void SaveJobRecord(SnapshotWriter& writer, const JobRecord& rec) {
  rec.spec.SaveState(writer);
  writer.WriteU8(static_cast<uint8_t>(rec.status));
  writer.WriteDouble(rec.start_time);
  writer.WriteDouble(rec.finish_time);
  writer.WriteVarI64(rec.group);
  writer.WriteVarI64(rec.preemptions);
  writer.WriteVarI64(rec.fault_kills);
  writer.WriteDouble(rec.completed_work);
  writer.WriteVarU64(rec.runs.size());
  for (const JobRun& run : rec.runs) {
    writer.WriteVarI64(run.group);
    writer.WriteDouble(run.start);
    writer.WriteDouble(run.end);
    writer.WriteBool(run.completed);
  }
}

void RestoreJobRecord(SnapshotReader& reader, JobRecord* rec) {
  rec->spec.RestoreState(reader);
  rec->status = static_cast<JobStatus>(reader.ReadU8());
  rec->start_time = reader.ReadDouble();
  rec->finish_time = reader.ReadDouble();
  rec->group = static_cast<int>(reader.ReadVarI64());
  rec->preemptions = static_cast<int>(reader.ReadVarI64());
  rec->fault_kills = static_cast<int>(reader.ReadVarI64());
  rec->completed_work = reader.ReadDouble();
  const uint64_t num_runs = reader.ReadVarCount(8);
  rec->runs.clear();
  rec->runs.reserve(reader.ok() ? num_runs : 0);
  for (uint64_t i = 0; reader.ok() && i < num_runs; ++i) {
    JobRun run;
    run.group = static_cast<int>(reader.ReadVarI64());
    run.start = reader.ReadDouble();
    run.end = reader.ReadDouble();
    run.completed = reader.ReadBool();
    rec->runs.push_back(run);
  }
}

}  // namespace

bool JobRecord::MissedDeadline() const {
  if (!spec.is_slo()) {
    return false;
  }
  if (status != JobStatus::kCompleted) {
    return true;
  }
  return finish_time > spec.deadline;
}

// All mutable run state, so a run can pause between events, serialize, and
// resume. The event queue is an explicit binary min-heap (push_heap/pop_heap
// over operator>, a total order on (time, seq)) instead of a
// std::priority_queue precisely so the underlying array can be serialized and
// restored verbatim — identical array, identical pop order.
struct Simulator::RunState {
  struct LiveJob {
    JobRecord record;
    int run_epoch = 0;
    Duration actual_duration = 0.0;  // Of the current run.
    double progress = 0.0;           // Completed fraction (resume mode only).
    double executed_seconds = 0.0;   // Useful seconds from preempted runs.
    bool arrived = false;            // The arrival event has fired.
  };

  SimResult result;
  Rng rng{1};
  std::vector<LiveJob> jobs;
  std::map<JobId, size_t> index_by_id;
  std::vector<Event> queue;  // Heap order (min on top via operator>).
  uint64_t seq = 0;
  std::vector<int> free_nodes;
  int live_jobs = 0;
  Time hard_stop = 0.0;
  FaultSchedule fault_schedule;
  bool chaos = false;
  // down[g]: crashed nodes per group. Invariant after every event batch:
  // free_nodes[g] >= down[g] (crashed nodes are never counted as placeable).
  std::vector<int> down;
  int total_down = 0;
  double down_integral = 0.0;  // Node-seconds of crashed capacity.
  Time last_down_change = 0.0;
  int64_t cycle_ordinal = 0;  // Stall-draw key; counts attempted cycles.
  Time now = 0.0;
  Time next_cycle_at = -1.0;  // < 0: none scheduled.
  Time last_cycle_at = -1e18;
  bool drained = false;  // No event can ever append another cycle.
  // Open-workload bookkeeping. last_arrival tracks the latest submit time
  // seen (initial workload or injected) so CloseSubmissions can reconstruct
  // the batch-mode hard stop.
  bool submissions_closed = false;
  Time last_arrival = 0.0;

  void PushEvent(Event ev) {
    queue.push_back(ev);
    std::push_heap(queue.begin(), queue.end(), std::greater<Event>());
  }
  Event PopEvent() {
    std::pop_heap(queue.begin(), queue.end(), std::greater<Event>());
    const Event ev = queue.back();
    queue.pop_back();
    return ev;
  }
};

Simulator::Simulator(const ClusterConfig& cluster, Scheduler* scheduler,
                     std::vector<JobSpec> workload, SimOptions options)
    : cluster_(cluster), scheduler_(scheduler), workload_(std::move(workload)),
      options_(std::move(options)) {
  TS_CHECK(scheduler_ != nullptr);
}

Simulator::~Simulator() = default;

uint64_t Simulator::cycles_completed() const {
  return state_ == nullptr ? 0 : state_->result.cycles.size();
}

void Simulator::EnsureStarted() {
  if (state_ != nullptr) {
    return;
  }
  state_ = std::make_unique<RunState>();
  RunState& s = *state_;
  s.rng = Rng(options_.seed);

  std::sort(workload_.begin(), workload_.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });

  s.jobs.resize(workload_.size());
  for (size_t i = 0; i < workload_.size(); ++i) {
    s.jobs[i].record.spec = workload_[i];
    TS_CHECK_MSG(s.index_by_id.emplace(workload_[i].id, i).second,
                 "duplicate job id " << workload_[i].id);
    TS_CHECK_MSG(workload_[i].num_tasks <= cluster_.max_group_size(),
                 "job " << workload_[i].id << " larger than any group");
  }

  for (size_t i = 0; i < workload_.size(); ++i) {
    s.PushEvent(Event{workload_[i].submit_time, s.seq++, EventKind::kArrival, i, 0});
  }

  s.free_nodes.reserve(static_cast<size_t>(cluster_.num_groups()));
  for (const NodeGroup& g : cluster_.groups()) {
    s.free_nodes.push_back(g.node_count);
  }

  s.live_jobs = static_cast<int>(workload_.size());
  s.last_arrival = workload_.empty() ? 0.0 : workload_.back().submit_time;
  // Open mode has no known last arrival yet: the run stays alive until
  // CloseSubmissions() converts the stop back to last_arrival + drain_limit.
  s.hard_stop = options_.open_workload ? std::numeric_limits<double>::infinity()
                                       : s.last_arrival + options_.drain_limit;

  // Fault schedule: pre-materialized node churn (every event is fixed before
  // the first cycle, so traces are byte-reproducible at any solver thread
  // count) plus hash-draw kill/straggler/stall processes.
  if (options_.open_workload && options_.fault_events.empty()) {
    TS_CHECK_MSG(options_.faults.node_mttf <= 0.0,
                 "open-workload mode cannot sample node churn over an unbounded "
                 "horizon; pass explicit fault_events to replay instead");
  }
  s.fault_schedule = options_.fault_events.empty()
                         ? FaultSchedule::Sample(cluster_, options_.faults, s.hard_stop)
                         : FaultSchedule::Replay(options_.fault_events, options_.faults);
  s.chaos = !s.fault_schedule.empty();
  s.down.assign(static_cast<size_t>(cluster_.num_groups()), 0);
  for (size_t i = 0; i < s.fault_schedule.node_events().size(); ++i) {
    const FaultEvent& ev = s.fault_schedule.node_events()[i];
    if (ev.time <= s.hard_stop) {
      s.PushEvent(Event{ev.time, s.seq++, EventKind::kNodeFault, i, 0});
    }
  }
}

bool Simulator::ProcessEvent() {
  RunState& s = *state_;
  SimResult& result = s.result;
  const size_t cycles_before = result.cycles.size();

  const auto schedule_cycle = [&](Time at) {
    if (s.live_jobs == 0 || at > s.hard_stop) {
      return;
    }
    if (s.next_cycle_at >= 0.0 && s.next_cycle_at <= at + 1e-9) {
      return;  // An earlier (or equal) cycle is already queued.
    }
    s.PushEvent(Event{at, s.seq++, EventKind::kCycle, 0, 0});
    s.next_cycle_at = at;
  };
  // Arrivals/completions request a prompt reaction, rate-limited to the
  // reactive gap so event storms do not degenerate into per-event solves.
  // With reactive cycles disabled the gap is the full cycle period — events
  // still bootstrap the periodic chain, they just cannot accelerate it.
  const auto schedule_reactive_cycle = [&]() {
    const Duration gap =
        options_.reactive_min_gap > 0.0 ? options_.reactive_min_gap : options_.cycle_period;
    schedule_cycle(std::max(s.now, s.last_cycle_at + gap));
  };

  const auto finish_job = [&](size_t idx, Time at) {
    RunState::LiveJob& job = s.jobs[idx];
    JobRecord& rec = job.record;
    TS_CHECK(rec.status == JobStatus::kRunning);
    rec.status = JobStatus::kCompleted;
    rec.finish_time = at;
    rec.completed_work = rec.spec.num_tasks * (job.executed_seconds + (at - rec.start_time));
    rec.runs.push_back(JobRun{rec.group, rec.start_time, at, true});
    s.free_nodes[rec.group] += rec.spec.num_tasks;
    --s.live_jobs;
    scheduler_->OnJobFinished(rec.spec.id, at, at - rec.start_time);
  };

  // Kill-and-requeue after a fault (node crash or injected task kill). Shares
  // the preemption path's mechanics, but the current run's progress is always
  // lost — a crash takes the in-memory state with it, so even in
  // migration-resume mode only previously banked (checkpointed) progress
  // survives — and the elapsed occupancy becomes rework.
  const auto fault_kill_job = [&](size_t idx, Time at) {
    RunState::LiveJob& job = s.jobs[idx];
    JobRecord& rec = job.record;
    TS_CHECK(rec.status == JobStatus::kRunning);
    rec.status = JobStatus::kPending;
    s.free_nodes[rec.group] += rec.spec.num_tasks;
    rec.runs.push_back(JobRun{rec.group, rec.start_time, at, false});
    result.rework_node_seconds += rec.spec.num_tasks * (at - rec.start_time);
    rec.group = -1;
    rec.start_time = kNever;
    ++rec.fault_kills;
    ++job.run_epoch;
    ++result.tasks_killed_by_faults;
    SimCounters::Get().fault_job_kills->Increment();
    scheduler_->OnJobFaultKilled(rec.spec.id, at);
  };

  // Applies a node crash/repair: adjusts the crashed-node ledger, then kills
  // just enough running gangs (most recently started first — the jobs whose
  // loss costs the least work — id as the deterministic tiebreak) to vacate
  // the crashed nodes.
  const auto apply_node_fault = [&](const FaultEvent& fault, Time at) {
    const size_t g = static_cast<size_t>(fault.group);
    TS_CHECK_MSG(fault.group >= 0 && fault.group < cluster_.num_groups(),
                 "fault event targets unknown group " << fault.group);
    s.down_integral += static_cast<double>(s.total_down) * (at - s.last_down_change);
    s.last_down_change = at;
    const int delta = fault.kind == FaultKind::kNodeDown ? fault.count : -fault.count;
    const int new_down =
        std::min(std::max(s.down[g] + delta, 0), cluster_.group(fault.group).node_count);
    s.total_down += new_down - s.down[g];
    s.down[g] = new_down;
    while (s.free_nodes[g] < s.down[g]) {
      // Crashed nodes were occupied: evict victims until they are vacated.
      size_t victim = s.jobs.size();
      for (size_t i = 0; i < s.jobs.size(); ++i) {
        const JobRecord& rec = s.jobs[i].record;
        if (rec.status != JobStatus::kRunning || rec.group != fault.group) {
          continue;
        }
        if (victim == s.jobs.size() ||
            rec.start_time > s.jobs[victim].record.start_time ||
            (rec.start_time == s.jobs[victim].record.start_time &&
             rec.spec.id > s.jobs[victim].record.spec.id)) {
          victim = i;
        }
      }
      TS_CHECK_MSG(victim < s.jobs.size(), "crashed nodes occupied but no running job found");
      fault_kill_job(victim, at);
    }
    ++result.fault_node_events;
    result.fault_events.push_back(fault);
    scheduler_->OnCapacityChanged(fault.group,
                                  cluster_.group(fault.group).node_count - s.down[g], at);
  };

  const Event ev = s.PopEvent();
  if (ev.time > s.hard_stop) {
    s.now = s.hard_stop;
    s.drained = true;
    return false;
  }
  TS_CHECK_GE(ev.time, s.now);  // The event clock is monotone.
  s.now = ev.time;
  if (obs::Tracer::enabled()) {
    obs::Tracer::Global().SetSimNow(s.now);
  }
  SimCounters::Get().events->Increment();

  switch (ev.kind) {
    case EventKind::kArrival: {
      RunState::LiveJob& job = s.jobs[ev.job_index];
      if (job.record.status != JobStatus::kPending) {
        break;  // Cancelled before its submit time; the scheduler never sees it.
      }
      TS_OBS_SPAN("sim.arrival", obs::Phase::kSimEvents);
      SimCounters::Get().arrivals->Increment();
      job.arrived = true;
      scheduler_->OnJobArrival(job.record.spec, s.now);
      schedule_reactive_cycle();
      break;
    }
    case EventKind::kCompletion: {
      RunState::LiveJob& job = s.jobs[ev.job_index];
      if (ev.run_epoch != job.run_epoch || job.record.status != JobStatus::kRunning) {
        break;  // Stale completion from a preempted run.
      }
      TS_OBS_SPAN("sim.completion", obs::Phase::kSimEvents);
      SimCounters::Get().completions->Increment();
      finish_job(ev.job_index, s.now);
      schedule_reactive_cycle();
      break;
    }
    case EventKind::kNodeFault: {
      TS_OBS_SPAN("sim.node_fault", obs::Phase::kFaultDelivery);
      SimCounters::Get().node_faults->Increment();
      apply_node_fault(s.fault_schedule.node_events()[ev.job_index], s.now);
      schedule_reactive_cycle();
      break;
    }
    case EventKind::kTaskKill: {
      RunState::LiveJob& job = s.jobs[ev.job_index];
      if (ev.run_epoch != job.run_epoch || job.record.status != JobStatus::kRunning) {
        break;  // Stale kill: the run already completed or was preempted.
      }
      TS_OBS_SPAN("sim.task_kill", obs::Phase::kFaultDelivery);
      SimCounters::Get().task_kills->Increment();
      fault_kill_job(ev.job_index, s.now);
      schedule_reactive_cycle();
      break;
    }
    case EventKind::kCycle: {
      if (std::fabs(ev.time - s.next_cycle_at) > 1e-9) {
        break;  // Superseded by an earlier reactive cycle.
      }
      s.next_cycle_at = -1.0;
      s.last_cycle_at = s.now;
      if (s.live_jobs == 0) {
        break;
      }
      if (s.chaos) {
        Duration stall = 0.0;
        if (s.fault_schedule.CycleStall(s.cycle_ordinal++, &stall)) {
          // The scheduler process is stalled: this cycle is lost; the next
          // chance to schedule comes once the stall clears.
          ++result.stalled_cycles;
          SimCounters::Get().stalled_cycles->Increment();
          schedule_cycle(s.now + stall);
          break;
        }
      }
      // Build the scheduler's view.
      ClusterStateView view;
      view.cluster = &cluster_;
      view.free_nodes = s.free_nodes;
      view.available_nodes.reserve(static_cast<size_t>(cluster_.num_groups()));
      for (int g = 0; g < cluster_.num_groups(); ++g) {
        // Crashed nodes are neither free nor placeable.
        view.free_nodes[static_cast<size_t>(g)] -= s.down[static_cast<size_t>(g)];
        view.available_nodes.push_back(cluster_.group(g).node_count -
                                       s.down[static_cast<size_t>(g)]);
      }
      int pending_count = 0;
      for (const RunState::LiveJob& job : s.jobs) {
        if (job.record.status == JobStatus::kRunning) {
          view.running.push_back(RunningJobView{job.record.spec.id, job.record.group,
                                                job.record.start_time,
                                                job.record.spec.num_tasks,
                                                job.record.spec.type});
        } else if (job.record.status == JobStatus::kPending && job.arrived) {
          // Only jobs the scheduler can actually see count as pending: in
          // batch mode the whole workload sits kPending from cycle 0, but a
          // job whose arrival event has not fired is not queued anywhere.
          ++pending_count;
        }
      }
      const int running_count = static_cast<int>(view.running.size());

      // Observability brackets. The cycle ordinal is the index of the row
      // this cycle appends to result.cycles.
      const int64_t cycle_index = static_cast<int64_t>(result.cycles.size());
      SimCounters::Get().cycles->Increment();
      if (obs::Tracer::enabled()) {
        obs::Tracer::Global().SetCycle(cycle_index);
      }
      if (obs::CycleProfiler::enabled()) {
        obs::CycleProfiler::Global().BeginCycle(cycle_index, s.now);
      }
      const CycleResult decision = scheduler_->RunCycle(s.now, view);
      if (obs::CycleProfiler::enabled()) {
        obs::CycleProfiler::Global().SetCycleCounters(decision.valuation_cache_hits,
                                                      decision.valuation_cache_misses,
                                                      decision.valuation_kernel_calls,
                                                      decision.milp_shards);
        obs::CycleProfiler::Global().EndCycle(decision.cycle_seconds);
      }
      if (obs::Tracer::enabled()) {
        obs::Tracer::Global().SetCycle(-1);
      }
      if (obs::DecisionLog::enabled()) {
        obs::DecisionRecord record;
        record.cycle = cycle_index;
        record.sim_time = s.now;
        record.pending = pending_count;
        record.running = running_count;
        record.starts.reserve(decision.start.size());
        for (const Placement& p : decision.start) {
          record.starts.emplace_back(p.job, p.group);
        }
        record.preempts.assign(decision.preempt.begin(), decision.preempt.end());
        record.abandons.assign(decision.abandon.begin(), decision.abandon.end());
        record.deferred.reserve(decision.deferred.size());
        for (const PlannedPlacement& p : decision.deferred) {
          record.deferred.emplace_back(p.job, p.group);
        }
        obs::DecisionLog::Global().Record(std::move(record));
      }
      result.cycles.push_back(CycleStats{s.now, decision.cycle_seconds,
                                         decision.solver_seconds, decision.milp_variables,
                                         decision.milp_rows, decision.milp_nodes,
                                         pending_count, running_count,
                                         decision.milp_max_queue_depth,
                                         decision.milp_incumbent_improvements,
                                         decision.capacity_cache_hits,
                                         decision.capacity_cache_misses,
                                         decision.valuation_cache_hits,
                                         decision.valuation_cache_misses,
                                         decision.valuation_kernel_calls,
                                         decision.milp_shards,
                                         decision.milp_max_shard_vars});

      // 1. Preemptions free capacity first (slot-0 placements may rely on
      //    the freed nodes).
      for (JobId id : decision.preempt) {
        const size_t idx = s.index_by_id.at(id);
        RunState::LiveJob& job = s.jobs[idx];
        if (job.record.status != JobStatus::kRunning) {
          continue;  // Already finished in this same timestamp batch.
        }
        job.record.status = JobStatus::kPending;
        s.free_nodes[job.record.group] += job.record.spec.num_tasks;
        job.record.runs.push_back(
            JobRun{job.record.group, job.record.start_time, s.now, false});
        if (options_.preemption_resumes && job.actual_duration > 0.0) {
          // Migration-style preemption banks the completed fraction.
          const double run_fraction =
              std::min((s.now - job.record.start_time) / job.actual_duration, 1.0);
          job.progress += run_fraction * (1.0 - job.progress);
          job.executed_seconds += s.now - job.record.start_time;
        }
        job.record.group = -1;
        job.record.start_time = kNever;
        ++job.record.preemptions;
        ++job.run_epoch;
        ++result.total_preemptions;
        SimCounters::Get().preemptions->Increment();
        scheduler_->OnJobPreempted(id, s.now);
      }
      // 2. Abandonments retire jobs the scheduler will never run.
      for (JobId id : decision.abandon) {
        const size_t idx = s.index_by_id.at(id);
        RunState::LiveJob& job = s.jobs[idx];
        if (job.record.status != JobStatus::kPending) {
          continue;
        }
        job.record.status = JobStatus::kAbandoned;
        --s.live_jobs;
      }
      // 3. Starts.
      for (const Placement& p : decision.start) {
        const size_t idx = s.index_by_id.at(p.job);
        RunState::LiveJob& job = s.jobs[idx];
        JobRecord& rec = job.record;
        if (rec.status != JobStatus::kPending || p.group < 0 ||
            p.group >= cluster_.num_groups() ||
            s.free_nodes[p.group] - s.down[static_cast<size_t>(p.group)] <
                rec.spec.num_tasks) {
          ++result.rejected_placements;
          SimCounters::Get().rejected_placements->Increment();
          continue;
        }
        rec.status = JobStatus::kRunning;
        rec.group = p.group;
        rec.start_time = s.now;
        s.free_nodes[p.group] -= rec.spec.num_tasks;
        ++job.run_epoch;

        Duration duration = rec.spec.TrueRuntimeOn(p.group);
        if (options_.preemption_resumes) {
          duration *= 1.0 - job.progress;
        }
        if (s.chaos) {
          // Straggler chaos: hash-drawn per (job, attempt), so the verdict
          // does not depend on how many other draws preceded it.
          duration *= s.fault_schedule.StragglerMultiplier(rec.spec.id, job.run_epoch);
        }
        if (options_.fidelity == SimFidelity::kHighFidelity) {
          const double jitter =
              std::max(0.5, s.rng.Normal(1.0, options_.runtime_jitter_stddev));
          duration = duration * jitter + s.rng.Uniform(1.0, options_.launch_overhead_max);
          // Completions surface at the next heartbeat.
          const Time raw_finish = s.now + duration;
          const Time beat = options_.heartbeat;
          duration = std::ceil(raw_finish / beat) * beat - s.now;
        }
        duration = std::max(duration, 1e-3);
        job.actual_duration = duration;
        scheduler_->OnJobStarted(rec.spec.id, p.group, s.now);
        s.PushEvent(
            Event{s.now + duration, s.seq++, EventKind::kCompletion, idx, job.run_epoch});
        if (s.chaos) {
          double kill_fraction = 0.0;
          if (s.fault_schedule.TaskKill(rec.spec.id, job.run_epoch, &kill_fraction)) {
            // The kill lands strictly before the completion, which then
            // goes stale via the epoch bump in fault_kill_job.
            s.PushEvent(Event{s.now + kill_fraction * duration, s.seq++,
                              EventKind::kTaskKill, idx, job.run_epoch});
          }
        }
      }

      // Keep cycling while any job is pending or running.
      if (s.live_jobs > 0) {
        schedule_cycle(s.now + options_.cycle_period);
      }
      break;
    }
  }
  // With chaos on, pending fault events cannot affect anything once no job
  // is live; stop rather than replaying churn against an empty cluster. An
  // open-workload run idles instead of draining until submissions close.
  if (s.live_jobs == 0 && (s.queue.empty() || s.chaos) &&
      (!options_.open_workload || s.submissions_closed)) {
    s.drained = true;
  }
  return result.cycles.size() > cycles_before;
}

bool Simulator::Step() {
  EnsureStarted();
  RunState& s = *state_;
  while (!s.drained) {
    if (s.queue.empty()) {
      if (!options_.open_workload || s.submissions_closed) {
        s.drained = true;
      }
      break;  // Open mode: idle until the next injection, not drained.
    }
    if (ProcessEvent()) {
      return true;
    }
  }
  return false;
}

SimResult Simulator::Finish() {
  EnsureStarted();
  RunState& s = *state_;
  SimResult result = std::move(s.result);

  s.down_integral += static_cast<double>(s.total_down) * (s.now - s.last_down_change);
  result.available_node_seconds =
      static_cast<double>(cluster_.total_nodes()) * s.now - s.down_integral;
  if (s.now > 0.0 && cluster_.total_nodes() > 0) {
    result.node_downtime_fraction =
        s.down_integral / (static_cast<double>(cluster_.total_nodes()) * s.now);
  }
  result.end_time = s.now;
  result.jobs.reserve(s.jobs.size());
  for (RunState::LiveJob& job : s.jobs) {
    if (job.record.status == JobStatus::kRunning) {
      // Close the open run at the stop for occupancy provenance.
      job.record.runs.push_back(
          JobRun{job.record.group, job.record.start_time, s.now, false});
    }
    if (job.record.status == JobStatus::kPending || job.record.status == JobStatus::kRunning) {
      job.record.status = JobStatus::kUnfinished;
    }
    result.jobs.push_back(std::move(job.record));
  }
  state_.reset();
  return result;
}

SimResult Simulator::Run() {
  EnsureStarted();
  while (Step()) {
    MaybeCheckpoint();
    if (options_.max_cycles > 0 &&
        cycles_completed() >= static_cast<uint64_t>(options_.max_cycles)) {
      break;
    }
  }
  return Finish();
}

void Simulator::MaybeCheckpoint() {
  if (options_.checkpoint_every <= 0 || options_.checkpoint_dir.empty()) {
    return;
  }
  const uint64_t cycle = cycles_completed();
  if (cycle == 0 || cycle % static_cast<uint64_t>(options_.checkpoint_every) != 0) {
    return;
  }
  const std::string path =
      options_.checkpoint_dir + "/checkpoint_" + std::to_string(cycle) + ".snap";
  std::string error;
  TS_CHECK_MSG(WriteCheckpoint(path, &error), "checkpoint write failed: " << error);
}

void Simulator::DebugPerturbRng() {
  EnsureStarted();
  state_->rng.engine()();
}

namespace {
bool FailWith(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}
}  // namespace

bool Simulator::InjectJob(JobSpec spec, std::string* error) {
  EnsureStarted();
  RunState& s = *state_;
  // Speculative forks may inject what-if arrivals (surge overlays) even when
  // the underlying run is a closed batch workload.
  if (!options_.open_workload && !options_.speculative) {
    return FailWith(error, "job injection requires open_workload mode");
  }
  if (s.submissions_closed && !options_.speculative) {
    return FailWith(error, "submissions are closed");
  }
  if (s.index_by_id.count(spec.id) > 0) {
    return FailWith(error, "duplicate job id " + std::to_string(spec.id));
  }
  if (spec.num_tasks <= 0) {
    return FailWith(error, "job " + std::to_string(spec.id) + " has no tasks");
  }
  if (spec.num_tasks > cluster_.max_group_size()) {
    return FailWith(error, "job " + std::to_string(spec.id) + " larger than any group");
  }
  // Arrivals cannot land in the past: the event clock is monotone.
  spec.submit_time = std::max(spec.submit_time, s.now);

  const size_t idx = s.jobs.size();
  // workload_ and s.jobs stay index-aligned, exactly as EnsureStarted built
  // them, so checkpoints taken mid-service round-trip unchanged.
  workload_.push_back(spec);
  RunState::LiveJob job;
  job.record.spec = spec;
  s.jobs.push_back(std::move(job));
  s.index_by_id.emplace(spec.id, idx);
  s.PushEvent(Event{spec.submit_time, s.seq++, EventKind::kArrival, idx, 0});
  ++s.live_jobs;
  s.last_arrival = std::max(s.last_arrival, spec.submit_time);
  return true;
}

void Simulator::CloseSubmissions() {
  EnsureStarted();
  RunState& s = *state_;
  if (!options_.open_workload || s.submissions_closed) {
    return;
  }
  s.submissions_closed = true;
  s.hard_stop = std::max(s.last_arrival + options_.drain_limit, s.now);
  if (s.live_jobs == 0 && (s.queue.empty() || s.chaos)) {
    s.drained = true;
  }
}

bool Simulator::InjectFaultOverlay(const std::vector<FaultEvent>& events, std::string* error) {
  EnsureStarted();
  RunState& s = *state_;
  if (!options_.speculative) {
    return FailWith(error, "fault overlays are restricted to speculative forks");
  }
  for (const FaultEvent& ev : events) {
    if (ev.time <= s.now) {
      return FailWith(error, "fault overlay event not in the future");
    }
    if (ev.group < 0 || ev.group >= cluster_.num_groups()) {
      return FailWith(error, "fault overlay event names an unknown group");
    }
  }
  // Append (never insert): pending kNodeFault queue entries index into
  // node_events() by position, so the existing prefix must not move.
  const size_t first = s.fault_schedule.AppendEvents(events);
  for (size_t i = 0; i < events.size(); ++i) {
    s.PushEvent(Event{events[i].time, s.seq++, EventKind::kNodeFault, first + i, 0});
  }
  if (!events.empty()) {
    s.chaos = true;
  }
  return true;
}

bool Simulator::CancelJob(JobId id, std::string* error) {
  EnsureStarted();
  RunState& s = *state_;
  const auto it = s.index_by_id.find(id);
  if (it == s.index_by_id.end()) {
    return FailWith(error, "unknown job id " + std::to_string(id));
  }
  RunState::LiveJob& job = s.jobs[it->second];
  if (job.record.status != JobStatus::kPending) {
    return FailWith(error, "job " + std::to_string(id) + " is not pending");
  }
  job.record.status = JobStatus::kAbandoned;
  --s.live_jobs;
  if (job.arrived) {
    // The scheduler queued it at arrival; jobs cancelled before their submit
    // time were never delivered (the arrival event sees kAbandoned and
    // skips).
    scheduler_->OnJobCancelled(id, s.now);
  }
  if (s.live_jobs == 0 && (s.queue.empty() || s.chaos) &&
      (!options_.open_workload || s.submissions_closed)) {
    s.drained = true;
  }
  return true;
}

bool Simulator::QueryJob(JobId id, JobStatusInfo* info) {
  EnsureStarted();
  RunState& s = *state_;
  const auto it = s.index_by_id.find(id);
  if (it == s.index_by_id.end()) {
    return false;
  }
  const RunState::LiveJob& job = s.jobs[it->second];
  info->status = job.record.status;
  info->submit_time = job.record.spec.submit_time;
  info->start_time = job.record.start_time;
  info->finish_time = job.record.finish_time;
  info->group = job.record.group;
  info->preemptions = job.record.preemptions;
  info->arrived = job.arrived;
  return true;
}

SimStateInfo Simulator::StateNow() {
  EnsureStarted();
  RunState& s = *state_;
  SimStateInfo info;
  info.now = s.now;
  info.cycles_completed = s.result.cycles.size();
  info.total_jobs = static_cast<int64_t>(s.jobs.size());
  for (const RunState::LiveJob& job : s.jobs) {
    switch (job.record.status) {
      case JobStatus::kPending:
        if (job.arrived) {
          ++info.pending_jobs;
        }
        break;
      case JobStatus::kRunning: ++info.running_jobs; break;
      case JobStatus::kCompleted: ++info.completed_jobs; break;
      case JobStatus::kAbandoned: ++info.abandoned_jobs; break;
      case JobStatus::kUnfinished: break;
    }
  }
  info.total_nodes = cluster_.total_nodes();
  for (int g = 0; g < cluster_.num_groups(); ++g) {
    const size_t gi = static_cast<size_t>(g);
    info.available_nodes += cluster_.group(g).node_count - s.down[gi];
    info.free_nodes += s.free_nodes[gi] - s.down[gi];
  }
  info.drained = s.drained;
  return info;
}

Time Simulator::now() {
  EnsureStarted();
  return state_->now;
}

bool Simulator::drained() {
  EnsureStarted();
  return state_->drained;
}

std::string Simulator::SaveStateToBuffer() {
  EnsureStarted();
  RunState& s = *state_;
  SnapshotWriter writer;

  writer.BeginSection("meta", kSnapshotVersion);
  writer.WriteVarU64(s.result.cycles.size());
  writer.WriteDouble(s.now);
  SaveCluster(writer, cluster_);
  SaveSimOptions(writer, options_);
  writer.EndSection();

  writer.BeginSection("rng", kSnapshotVersion);
  s.rng.SaveState(writer);
  writer.EndSection();

  // The full (sorted) workload doubles as the generator cursor: which jobs
  // already arrived is implied by the event queue, and a resumed run never
  // re-consults the generator.
  writer.BeginSection("workload", kSnapshotVersion);
  writer.WriteVarU64(workload_.size());
  for (const JobSpec& spec : workload_) {
    spec.SaveState(writer);
  }
  writer.EndSection();

  writer.BeginSection("faults", kSnapshotVersion);
  s.fault_schedule.SaveState(writer);
  writer.WriteVarI64(s.cycle_ordinal);
  writer.EndSection();

  writer.BeginSection("sim", kSnapshotVersion);
  writer.WriteDouble(s.now);
  writer.WriteU64(s.seq);
  writer.WriteDouble(s.hard_stop);
  writer.WriteDouble(s.next_cycle_at);
  writer.WriteDouble(s.last_cycle_at);
  writer.WriteVarI64(s.live_jobs);
  writer.WriteBool(s.drained);
  writer.WriteIntVec(s.free_nodes);
  writer.WriteIntVec(s.down);
  writer.WriteVarI64(s.total_down);
  writer.WriteDouble(s.down_integral);
  writer.WriteDouble(s.last_down_change);
  writer.WriteVarU64(s.queue.size());
  for (const Event& e : s.queue) {
    writer.WriteDouble(e.time);
    writer.WriteU64(e.seq);
    writer.WriteU8(static_cast<uint8_t>(e.kind));
    writer.WriteVarU64(e.job_index);
    writer.WriteVarI64(e.run_epoch);
  }
  writer.WriteVarU64(s.jobs.size());
  for (const RunState::LiveJob& job : s.jobs) {
    SaveJobRecord(writer, job.record);
    writer.WriteVarI64(job.run_epoch);
    writer.WriteDouble(job.actual_duration);
    writer.WriteDouble(job.progress);
    writer.WriteDouble(job.executed_seconds);
    writer.WriteBool(job.arrived);
  }
  writer.WriteBool(s.submissions_closed);
  writer.WriteDouble(s.last_arrival);
  writer.EndSection();

  // Deterministic accumulated results. Per-cycle wall-clock timings go in
  // their own "timing" section so replay_diff can ignore the only
  // non-reproducible state.
  writer.BeginSection("metrics", kSnapshotVersion);
  writer.WriteVarI64(s.result.rejected_placements);
  writer.WriteVarI64(s.result.total_preemptions);
  writer.WriteVarI64(s.result.tasks_killed_by_faults);
  writer.WriteVarI64(s.result.fault_node_events);
  writer.WriteVarI64(s.result.stalled_cycles);
  writer.WriteDouble(s.result.rework_node_seconds);
  writer.WriteVarU64(s.result.fault_events.size());
  for (const FaultEvent& e : s.result.fault_events) {
    writer.WriteDouble(e.time);
    writer.WriteU8(static_cast<uint8_t>(e.kind));
    writer.WriteVarI64(e.group);
    writer.WriteVarI64(e.count);
  }
  writer.WriteVarU64(s.result.cycles.size());
  for (const CycleStats& c : s.result.cycles) {
    writer.WriteDouble(c.time);
    writer.WriteVarI64(c.milp_variables);
    writer.WriteVarI64(c.milp_rows);
    writer.WriteVarI64(c.milp_nodes);
    writer.WriteVarI64(c.pending);
    writer.WriteVarI64(c.running_jobs);
    writer.WriteVarI64(c.milp_max_queue_depth);
    writer.WriteVarI64(c.milp_incumbent_improvements);
    writer.WriteVarI64(c.capacity_cache_hits);
    writer.WriteVarI64(c.capacity_cache_misses);
    writer.WriteVarI64(c.valuation_cache_hits);
    writer.WriteVarI64(c.valuation_cache_misses);
    writer.WriteVarI64(c.valuation_kernel_calls);
    writer.WriteVarI64(c.milp_shards);
    writer.WriteVarI64(c.milp_max_shard_vars);
  }
  writer.EndSection();

  writer.BeginSection("timing", kSnapshotVersion);
  writer.WriteVarU64(s.result.cycles.size());
  for (const CycleStats& c : s.result.cycles) {
    writer.WriteDouble(c.cycle_seconds);
    writer.WriteDouble(c.solver_seconds);
  }
  writer.EndSection();

  // Registry aggregates, so a resumed run continues its counters instead of
  // restarting them at zero (the pre-registry RunMetrics plumbing lost
  // counter state across ResumeFrom).
  writer.BeginSection("obs", kSnapshotVersion);
  obs::MetricsRegistry::Global().SaveState(writer);
  writer.EndSection();

  // The scheduler appends its own "sched" (and, where applicable, "predict")
  // sections, then the host (svc server) its extension sections, so one
  // checkpoint restarts the whole process.
  scheduler_->SaveState(writer);
  if (extension_ != nullptr) {
    extension_->SaveState(writer);
  }
  return writer.Finish();
}

bool Simulator::WriteCheckpoint(const std::string& path, std::string* error) {
  return WriteFileAtomic(path, SaveStateToBuffer(), error);
}

bool Simulator::TryRestoreStateFromBuffer(const std::string& buffer, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };

  // Borrowed: restore reads straight out of the caller's buffer (the twin
  // engine restores many forks from one live snapshot; no copy per fork).
  SnapshotReader reader(SnapshotReader::Borrowed{}, buffer);
  if (!reader.ok()) {
    return fail(reader.error());
  }

  uint32_t version = 0;
  reader.BeginSection("meta", &version);
  if (reader.ok() && version != kSnapshotVersion) {
    return fail("unsupported snapshot version " + std::to_string(version));
  }
  reader.ReadVarU64();  // cycles_completed; implied by the metrics section.
  reader.ReadDouble();  // now; authoritative copy in "sim".
  const ClusterConfig snap_cluster = RestoreCluster(reader);
  SimOptions snap_options;
  RestoreSimOptions(reader, &snap_options);
  reader.EndSection();
  if (!reader.ok()) {
    return fail(reader.error());
  }
  if (snap_cluster.num_groups() != cluster_.num_groups()) {
    return fail("snapshot cluster has " + std::to_string(snap_cluster.num_groups()) +
                " groups, this simulator has " + std::to_string(cluster_.num_groups()));
  }
  for (int g = 0; g < cluster_.num_groups(); ++g) {
    if (snap_cluster.group(g).node_count != cluster_.group(g).node_count) {
      return fail("snapshot cluster group " + std::to_string(g) + " has " +
                  std::to_string(snap_cluster.group(g).node_count) + " nodes, expected " +
                  std::to_string(cluster_.group(g).node_count));
    }
  }
  // The simulation's options come from the snapshot; the local-run knobs
  // (where to checkpoint next, when to stop) stay the caller's.
  snap_options.checkpoint_every = options_.checkpoint_every;
  snap_options.checkpoint_dir = options_.checkpoint_dir;
  snap_options.max_cycles = options_.max_cycles;
  snap_options.speculative = options_.speculative;

  auto state = std::make_unique<RunState>();
  RunState& s = *state;

  reader.BeginSection("rng");
  if (reader.ok()) {
    const std::string rng_state = reader.ReadString();
    if (reader.ok() && !s.rng.DeserializeState(rng_state)) {
      return fail("corrupt RNG state in snapshot");
    }
  }
  reader.EndSection();

  reader.BeginSection("workload");
  std::vector<JobSpec> snap_workload;
  {
    const uint64_t n = reader.ReadVarCount(8);
    snap_workload.reserve(reader.ok() ? n : 0);
    for (uint64_t i = 0; reader.ok() && i < n; ++i) {
      JobSpec spec;
      spec.RestoreState(reader);
      snap_workload.push_back(std::move(spec));
    }
  }
  reader.EndSection();

  reader.BeginSection("faults");
  s.fault_schedule.RestoreState(reader);
  s.cycle_ordinal = reader.ReadVarI64();
  reader.EndSection();
  s.chaos = !s.fault_schedule.empty();

  reader.BeginSection("sim");
  s.now = reader.ReadDouble();
  s.seq = reader.ReadU64();
  s.hard_stop = reader.ReadDouble();
  s.next_cycle_at = reader.ReadDouble();
  s.last_cycle_at = reader.ReadDouble();
  s.live_jobs = static_cast<int>(reader.ReadVarI64());
  s.drained = reader.ReadBool();
  s.free_nodes = reader.ReadIntVec();
  s.down = reader.ReadIntVec();
  s.total_down = static_cast<int>(reader.ReadVarI64());
  s.down_integral = reader.ReadDouble();
  s.last_down_change = reader.ReadDouble();
  {
    const uint64_t n = reader.ReadVarCount(16);
    s.queue.reserve(reader.ok() ? n : 0);
    for (uint64_t i = 0; reader.ok() && i < n; ++i) {
      Event e{0.0, 0, EventKind::kArrival, 0, 0};
      e.time = reader.ReadDouble();
      e.seq = reader.ReadU64();
      e.kind = static_cast<EventKind>(reader.ReadU8());
      e.job_index = reader.ReadVarU64();
      e.run_epoch = static_cast<int>(reader.ReadVarI64());
      // The array was a valid heap when saved; restoring it verbatim
      // reproduces the exact pop order.
      s.queue.push_back(e);
    }
  }
  {
    const uint64_t n = reader.ReadVarCount(8);
    s.jobs.resize(reader.ok() ? n : 0);
    for (uint64_t i = 0; reader.ok() && i < n; ++i) {
      RunState::LiveJob& job = s.jobs[i];
      RestoreJobRecord(reader, &job.record);
      job.run_epoch = static_cast<int>(reader.ReadVarI64());
      job.actual_duration = reader.ReadDouble();
      job.progress = reader.ReadDouble();
      job.executed_seconds = reader.ReadDouble();
      job.arrived = reader.ReadBool();
      if (reader.ok()) {
        s.index_by_id.emplace(job.record.spec.id, i);
      }
    }
  }
  s.submissions_closed = reader.ReadBool();
  s.last_arrival = reader.ReadDouble();
  reader.EndSection();

  reader.BeginSection("metrics");
  s.result.rejected_placements = static_cast<int>(reader.ReadVarI64());
  s.result.total_preemptions = static_cast<int>(reader.ReadVarI64());
  s.result.tasks_killed_by_faults = static_cast<int>(reader.ReadVarI64());
  s.result.fault_node_events = static_cast<int>(reader.ReadVarI64());
  s.result.stalled_cycles = static_cast<int>(reader.ReadVarI64());
  s.result.rework_node_seconds = reader.ReadDouble();
  {
    const uint64_t n = reader.ReadVarCount(8);
    s.result.fault_events.reserve(reader.ok() ? n : 0);
    for (uint64_t i = 0; reader.ok() && i < n; ++i) {
      FaultEvent e;
      e.time = reader.ReadDouble();
      e.kind = static_cast<FaultKind>(reader.ReadU8());
      e.group = static_cast<int>(reader.ReadVarI64());
      e.count = static_cast<int>(reader.ReadVarI64());
      s.result.fault_events.push_back(e);
    }
  }
  {
    const uint64_t n = reader.ReadVarCount(8);
    s.result.cycles.resize(reader.ok() ? n : 0);
    for (uint64_t i = 0; reader.ok() && i < n; ++i) {
      CycleStats& c = s.result.cycles[i];
      c.time = reader.ReadDouble();
      c.milp_variables = static_cast<int>(reader.ReadVarI64());
      c.milp_rows = static_cast<int>(reader.ReadVarI64());
      c.milp_nodes = static_cast<int>(reader.ReadVarI64());
      c.pending = static_cast<int>(reader.ReadVarI64());
      c.running_jobs = static_cast<int>(reader.ReadVarI64());
      c.milp_max_queue_depth = static_cast<int>(reader.ReadVarI64());
      c.milp_incumbent_improvements = static_cast<int>(reader.ReadVarI64());
      c.capacity_cache_hits = reader.ReadVarI64();
      c.capacity_cache_misses = reader.ReadVarI64();
      c.valuation_cache_hits = reader.ReadVarI64();
      c.valuation_cache_misses = reader.ReadVarI64();
      c.valuation_kernel_calls = reader.ReadVarI64();
      c.milp_shards = static_cast<int>(reader.ReadVarI64());
      c.milp_max_shard_vars = static_cast<int>(reader.ReadVarI64());
    }
  }
  reader.EndSection();

  reader.BeginSection("timing");
  {
    const uint64_t n = reader.ReadVarU64();
    for (uint64_t i = 0; reader.ok() && i < n && i < s.result.cycles.size(); ++i) {
      s.result.cycles[i].cycle_seconds = reader.ReadDouble();
      s.result.cycles[i].solver_seconds = reader.ReadDouble();
    }
  }
  reader.EndSection();

  // Optional registry section (snapshots predating the registry lack it).
  // Restore is absolute, so the resumed process continues the saved totals.
  if (reader.ok() && reader.PeekSectionName() == "obs") {
    reader.BeginSection("obs");
    // A speculative fork shares the process-global registry with the live
    // run; applying the section would clobber live totals. Consume it
    // unapplied (EndSection skips the payload).
    if (!options_.speculative) {
      obs::MetricsRegistry::Global().RestoreState(reader);
    }
    reader.EndSection();
  }

  if (!reader.ok()) {
    return fail(reader.error());
  }

  // Commit the simulator, then hand the tail of the snapshot to the
  // scheduler (which TS_CHECKs its own kind tags).
  options_ = std::move(snap_options);
  workload_ = std::move(snap_workload);
  state_ = std::move(state);
  scheduler_->RestoreState(reader);
  if (!reader.ok()) {
    return fail(reader.error());
  }
  if (extension_ != nullptr) {
    extension_->RestoreState(reader);
    if (!reader.ok()) {
      return fail(reader.error());
    }
  }
  return true;
}

bool Simulator::TryResumeFrom(const std::string& path, std::string* error) {
  std::string buffer;
  if (!ReadFileToString(path, &buffer, error)) {
    return false;
  }
  return TryRestoreStateFromBuffer(buffer, error);
}

void Simulator::RestoreStateFromBuffer(const std::string& buffer) {
  std::string error;
  TS_CHECK_MSG(TryRestoreStateFromBuffer(buffer, &error), "snapshot restore failed: " << error);
}

void Simulator::ResumeFrom(const std::string& path) {
  std::string error;
  TS_CHECK_MSG(TryResumeFrom(path, &error), "resume failed: " << error);
}

bool Simulator::PeekCheckpoint(const std::string& path, CheckpointInfo* info,
                               std::string* error) {
  std::string buffer;
  if (!ReadFileToString(path, &buffer, error)) {
    return false;
  }
  SnapshotReader reader(std::move(buffer));
  uint32_t version = 0;
  if (!reader.BeginSection("meta", &version)) {
    if (error != nullptr) {
      *error = reader.error();
    }
    return false;
  }
  info->cycles_completed = reader.ReadVarU64();
  info->now = reader.ReadDouble();
  info->cluster = RestoreCluster(reader);
  RestoreSimOptions(reader, &info->options);
  reader.EndSection();
  if (!reader.ok()) {
    if (error != nullptr) {
      *error = reader.error();
    }
    return false;
  }
  return true;
}

}  // namespace threesigma
