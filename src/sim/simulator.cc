#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "src/common/check.h"

namespace threesigma {
namespace {

enum class EventKind {
  kArrival,
  kCompletion,
  kCycle,
  kNodeFault,  // Node crash/repair from the fault schedule.
  kTaskKill,   // Injected mid-run gang kill from the fault schedule.
};

struct Event {
  Time time;
  uint64_t seq;  // FIFO tiebreak for simultaneous events.
  EventKind kind;
  size_t job_index = 0;  // kNodeFault: index into the fault event list.
  int run_epoch = 0;     // Completion/kill validity: stale after preemption.

  bool operator>(const Event& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    return seq > other.seq;
  }
};

}  // namespace

bool JobRecord::MissedDeadline() const {
  if (!spec.is_slo()) {
    return false;
  }
  if (status != JobStatus::kCompleted) {
    return true;
  }
  return finish_time > spec.deadline;
}

Simulator::Simulator(const ClusterConfig& cluster, Scheduler* scheduler,
                     std::vector<JobSpec> workload, SimOptions options)
    : cluster_(cluster), scheduler_(scheduler), workload_(std::move(workload)),
      options_(options) {
  TS_CHECK(scheduler_ != nullptr);
}

SimResult Simulator::Run() {
  SimResult result;
  Rng rng(options_.seed);

  std::sort(workload_.begin(), workload_.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });

  struct LiveJob {
    JobRecord record;
    int run_epoch = 0;
    Duration actual_duration = 0.0;  // Of the current run.
    double progress = 0.0;           // Completed fraction (resume mode only).
    double executed_seconds = 0.0;   // Useful seconds from preempted runs.
  };
  std::vector<LiveJob> jobs(workload_.size());
  std::map<JobId, size_t> index_by_id;
  for (size_t i = 0; i < workload_.size(); ++i) {
    jobs[i].record.spec = workload_[i];
    TS_CHECK_MSG(index_by_id.emplace(workload_[i].id, i).second,
                 "duplicate job id " << workload_[i].id);
    TS_CHECK_MSG(workload_[i].num_tasks <= cluster_.max_group_size(),
                 "job " << workload_[i].id << " larger than any group");
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  uint64_t seq = 0;
  for (size_t i = 0; i < workload_.size(); ++i) {
    queue.push(Event{workload_[i].submit_time, seq++, EventKind::kArrival, i, 0});
  }

  std::vector<int> free_nodes;
  free_nodes.reserve(static_cast<size_t>(cluster_.num_groups()));
  for (const NodeGroup& g : cluster_.groups()) {
    free_nodes.push_back(g.node_count);
  }

  int live_jobs = static_cast<int>(workload_.size());
  const Time last_arrival = workload_.empty() ? 0.0 : workload_.back().submit_time;
  const Time hard_stop = last_arrival + options_.drain_limit;

  // Fault schedule: pre-materialized node churn (every event is fixed before
  // the first cycle, so traces are byte-reproducible at any solver thread
  // count) plus hash-draw kill/straggler/stall processes.
  const FaultSchedule fault_schedule =
      options_.fault_events.empty()
          ? FaultSchedule::Sample(cluster_, options_.faults, hard_stop)
          : FaultSchedule::Replay(options_.fault_events, options_.faults);
  const bool chaos = !fault_schedule.empty();
  // down[g]: crashed nodes per group. Invariant after every event batch:
  // free_nodes[g] >= down[g] (crashed nodes are never counted as placeable).
  std::vector<int> down(static_cast<size_t>(cluster_.num_groups()), 0);
  for (size_t i = 0; i < fault_schedule.node_events().size(); ++i) {
    const FaultEvent& ev = fault_schedule.node_events()[i];
    if (ev.time <= hard_stop) {
      queue.push(Event{ev.time, seq++, EventKind::kNodeFault, i, 0});
    }
  }
  int total_down = 0;
  double down_integral = 0.0;  // Node-seconds of crashed capacity.
  Time last_down_change = 0.0;
  int64_t cycle_ordinal = 0;  // Stall-draw key; counts attempted cycles.
  Time now = 0.0;
  Time next_cycle_at = -1.0;  // < 0: none scheduled.
  Time last_cycle_at = -1e18;

  const auto schedule_cycle = [&](Time at) {
    if (live_jobs == 0 || at > hard_stop) {
      return;
    }
    if (next_cycle_at >= 0.0 && next_cycle_at <= at + 1e-9) {
      return;  // An earlier (or equal) cycle is already queued.
    }
    queue.push(Event{at, seq++, EventKind::kCycle, 0, 0});
    next_cycle_at = at;
  };
  // Arrivals/completions request a prompt reaction, rate-limited to the
  // reactive gap so event storms do not degenerate into per-event solves.
  // With reactive cycles disabled the gap is the full cycle period — events
  // still bootstrap the periodic chain, they just cannot accelerate it.
  const auto schedule_reactive_cycle = [&]() {
    const Duration gap =
        options_.reactive_min_gap > 0.0 ? options_.reactive_min_gap : options_.cycle_period;
    schedule_cycle(std::max(now, last_cycle_at + gap));
  };

  const auto finish_job = [&](size_t idx, Time at) {
    LiveJob& job = jobs[idx];
    JobRecord& rec = job.record;
    TS_CHECK(rec.status == JobStatus::kRunning);
    rec.status = JobStatus::kCompleted;
    rec.finish_time = at;
    rec.completed_work = rec.spec.num_tasks * (job.executed_seconds + (at - rec.start_time));
    rec.runs.push_back(JobRun{rec.group, rec.start_time, at, true});
    free_nodes[rec.group] += rec.spec.num_tasks;
    --live_jobs;
    scheduler_->OnJobFinished(rec.spec.id, at, at - rec.start_time);
  };

  // Kill-and-requeue after a fault (node crash or injected task kill). Shares
  // the preemption path's mechanics, but the current run's progress is always
  // lost — a crash takes the in-memory state with it, so even in
  // migration-resume mode only previously banked (checkpointed) progress
  // survives — and the elapsed occupancy becomes rework.
  const auto fault_kill_job = [&](size_t idx, Time at) {
    LiveJob& job = jobs[idx];
    JobRecord& rec = job.record;
    TS_CHECK(rec.status == JobStatus::kRunning);
    rec.status = JobStatus::kPending;
    free_nodes[rec.group] += rec.spec.num_tasks;
    rec.runs.push_back(JobRun{rec.group, rec.start_time, at, false});
    result.rework_node_seconds += rec.spec.num_tasks * (at - rec.start_time);
    rec.group = -1;
    rec.start_time = kNever;
    ++rec.fault_kills;
    ++job.run_epoch;
    ++result.tasks_killed_by_faults;
    scheduler_->OnJobFaultKilled(rec.spec.id, at);
  };

  // Applies a node crash/repair: adjusts the crashed-node ledger, then kills
  // just enough running gangs (most recently started first — the jobs whose
  // loss costs the least work — id as the deterministic tiebreak) to vacate
  // the crashed nodes.
  const auto apply_node_fault = [&](const FaultEvent& fault, Time at) {
    const size_t g = static_cast<size_t>(fault.group);
    TS_CHECK_MSG(fault.group >= 0 && fault.group < cluster_.num_groups(),
                 "fault event targets unknown group " << fault.group);
    down_integral += static_cast<double>(total_down) * (at - last_down_change);
    last_down_change = at;
    const int delta = fault.kind == FaultKind::kNodeDown ? fault.count : -fault.count;
    const int new_down =
        std::min(std::max(down[g] + delta, 0), cluster_.group(fault.group).node_count);
    total_down += new_down - down[g];
    down[g] = new_down;
    while (free_nodes[g] < down[g]) {
      // Crashed nodes were occupied: evict victims until they are vacated.
      size_t victim = jobs.size();
      for (size_t i = 0; i < jobs.size(); ++i) {
        const JobRecord& rec = jobs[i].record;
        if (rec.status != JobStatus::kRunning || rec.group != fault.group) {
          continue;
        }
        if (victim == jobs.size() || rec.start_time > jobs[victim].record.start_time ||
            (rec.start_time == jobs[victim].record.start_time &&
             rec.spec.id > jobs[victim].record.spec.id)) {
          victim = i;
        }
      }
      TS_CHECK_MSG(victim < jobs.size(), "crashed nodes occupied but no running job found");
      fault_kill_job(victim, at);
    }
    ++result.fault_node_events;
    result.fault_events.push_back(fault);
    scheduler_->OnCapacityChanged(fault.group,
                                  cluster_.group(fault.group).node_count - down[g], at);
  };

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (ev.time > hard_stop) {
      now = hard_stop;
      break;
    }
    TS_CHECK_GE(ev.time, now);  // The event clock is monotone.
    now = ev.time;

    switch (ev.kind) {
      case EventKind::kArrival: {
        LiveJob& job = jobs[ev.job_index];
        scheduler_->OnJobArrival(job.record.spec, now);
        schedule_reactive_cycle();
        break;
      }
      case EventKind::kCompletion: {
        LiveJob& job = jobs[ev.job_index];
        if (ev.run_epoch != job.run_epoch || job.record.status != JobStatus::kRunning) {
          break;  // Stale completion from a preempted run.
        }
        finish_job(ev.job_index, now);
        schedule_reactive_cycle();
        break;
      }
      case EventKind::kNodeFault: {
        apply_node_fault(fault_schedule.node_events()[ev.job_index], now);
        schedule_reactive_cycle();
        break;
      }
      case EventKind::kTaskKill: {
        LiveJob& job = jobs[ev.job_index];
        if (ev.run_epoch != job.run_epoch || job.record.status != JobStatus::kRunning) {
          break;  // Stale kill: the run already completed or was preempted.
        }
        fault_kill_job(ev.job_index, now);
        schedule_reactive_cycle();
        break;
      }
      case EventKind::kCycle: {
        if (std::fabs(ev.time - next_cycle_at) > 1e-9) {
          break;  // Superseded by an earlier reactive cycle.
        }
        next_cycle_at = -1.0;
        last_cycle_at = now;
        if (live_jobs == 0) {
          break;
        }
        if (chaos) {
          Duration stall = 0.0;
          if (fault_schedule.CycleStall(cycle_ordinal++, &stall)) {
            // The scheduler process is stalled: this cycle is lost; the next
            // chance to schedule comes once the stall clears.
            ++result.stalled_cycles;
            schedule_cycle(now + stall);
            break;
          }
        }
        // Build the scheduler's view.
        ClusterStateView view;
        view.cluster = &cluster_;
        view.free_nodes = free_nodes;
        view.available_nodes.reserve(static_cast<size_t>(cluster_.num_groups()));
        for (int g = 0; g < cluster_.num_groups(); ++g) {
          // Crashed nodes are neither free nor placeable.
          view.free_nodes[static_cast<size_t>(g)] -= down[static_cast<size_t>(g)];
          view.available_nodes.push_back(cluster_.group(g).node_count -
                                         down[static_cast<size_t>(g)]);
        }
        int pending_count = 0;
        for (const LiveJob& job : jobs) {
          if (job.record.status == JobStatus::kRunning) {
            view.running.push_back(RunningJobView{job.record.spec.id, job.record.group,
                                                  job.record.start_time,
                                                  job.record.spec.num_tasks,
                                                  job.record.spec.type});
          } else if (job.record.status == JobStatus::kPending) {
            ++pending_count;
          }
        }
        const int running_count = static_cast<int>(view.running.size());

        const CycleResult decision = scheduler_->RunCycle(now, view);
        result.cycles.push_back(CycleStats{now, decision.cycle_seconds,
                                           decision.solver_seconds, decision.milp_variables,
                                           decision.milp_rows, decision.milp_nodes,
                                           pending_count, running_count,
                                           decision.milp_max_queue_depth,
                                           decision.milp_incumbent_improvements,
                                           decision.capacity_cache_hits,
                                           decision.capacity_cache_misses});

        // 1. Preemptions free capacity first (slot-0 placements may rely on
        //    the freed nodes).
        for (JobId id : decision.preempt) {
          const size_t idx = index_by_id.at(id);
          LiveJob& job = jobs[idx];
          if (job.record.status != JobStatus::kRunning) {
            continue;  // Already finished in this same timestamp batch.
          }
          job.record.status = JobStatus::kPending;
          free_nodes[job.record.group] += job.record.spec.num_tasks;
          job.record.runs.push_back(
              JobRun{job.record.group, job.record.start_time, now, false});
          if (options_.preemption_resumes && job.actual_duration > 0.0) {
            // Migration-style preemption banks the completed fraction.
            const double run_fraction =
                std::min((now - job.record.start_time) / job.actual_duration, 1.0);
            job.progress += run_fraction * (1.0 - job.progress);
            job.executed_seconds += now - job.record.start_time;
          }
          job.record.group = -1;
          job.record.start_time = kNever;
          ++job.record.preemptions;
          ++job.run_epoch;
          ++result.total_preemptions;
          scheduler_->OnJobPreempted(id, now);
        }
        // 2. Abandonments retire jobs the scheduler will never run.
        for (JobId id : decision.abandon) {
          const size_t idx = index_by_id.at(id);
          LiveJob& job = jobs[idx];
          if (job.record.status != JobStatus::kPending) {
            continue;
          }
          job.record.status = JobStatus::kAbandoned;
          --live_jobs;
        }
        // 3. Starts.
        for (const Placement& p : decision.start) {
          const size_t idx = index_by_id.at(p.job);
          LiveJob& job = jobs[idx];
          JobRecord& rec = job.record;
          if (rec.status != JobStatus::kPending || p.group < 0 ||
              p.group >= cluster_.num_groups() ||
              free_nodes[p.group] - down[static_cast<size_t>(p.group)] < rec.spec.num_tasks) {
            ++result.rejected_placements;
            continue;
          }
          rec.status = JobStatus::kRunning;
          rec.group = p.group;
          rec.start_time = now;
          free_nodes[p.group] -= rec.spec.num_tasks;
          ++job.run_epoch;

          Duration duration = rec.spec.TrueRuntimeOn(p.group);
          if (options_.preemption_resumes) {
            duration *= 1.0 - job.progress;
          }
          if (chaos) {
            // Straggler chaos: hash-drawn per (job, attempt), so the verdict
            // does not depend on how many other draws preceded it.
            duration *= fault_schedule.StragglerMultiplier(rec.spec.id, job.run_epoch);
          }
          if (options_.fidelity == SimFidelity::kHighFidelity) {
            const double jitter =
                std::max(0.5, rng.Normal(1.0, options_.runtime_jitter_stddev));
            duration = duration * jitter + rng.Uniform(1.0, options_.launch_overhead_max);
            // Completions surface at the next heartbeat.
            const Time raw_finish = now + duration;
            const Time beat = options_.heartbeat;
            duration = std::ceil(raw_finish / beat) * beat - now;
          }
          duration = std::max(duration, 1e-3);
          job.actual_duration = duration;
          scheduler_->OnJobStarted(rec.spec.id, p.group, now);
          queue.push(Event{now + duration, seq++, EventKind::kCompletion, idx, job.run_epoch});
          if (chaos) {
            double kill_fraction = 0.0;
            if (fault_schedule.TaskKill(rec.spec.id, job.run_epoch, &kill_fraction)) {
              // The kill lands strictly before the completion, which then
              // goes stale via the epoch bump in fault_kill_job.
              queue.push(Event{now + kill_fraction * duration, seq++, EventKind::kTaskKill,
                               idx, job.run_epoch});
            }
          }
        }

        // Keep cycling while any job is pending or running.
        if (live_jobs > 0) {
          schedule_cycle(now + options_.cycle_period);
        }
        break;
      }
    }
    // With chaos on, pending fault events cannot affect anything once no job
    // is live; stop rather than replaying churn against an empty cluster.
    if (live_jobs == 0 && (queue.empty() || chaos)) {
      break;
    }
  }

  down_integral += static_cast<double>(total_down) * (now - last_down_change);
  result.available_node_seconds = static_cast<double>(cluster_.total_nodes()) * now - down_integral;
  if (now > 0.0 && cluster_.total_nodes() > 0) {
    result.node_downtime_fraction =
        down_integral / (static_cast<double>(cluster_.total_nodes()) * now);
  }
  result.end_time = now;
  result.jobs.reserve(jobs.size());
  for (LiveJob& job : jobs) {
    if (job.record.status == JobStatus::kRunning) {
      // Close the open run at the stop for occupancy provenance.
      job.record.runs.push_back(JobRun{job.record.group, job.record.start_time, now, false});
    }
    if (job.record.status == JobStatus::kPending || job.record.status == JobStatus::kRunning) {
      job.record.status = JobStatus::kUnfinished;
    }
    result.jobs.push_back(std::move(job.record));
  }
  return result;
}

}  // namespace threesigma
