#include "src/common/env.h"

#include <cstdlib>

namespace threesigma {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  return value;
}

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) {
    return fallback;
  }
  return parsed;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) {
    return fallback;
  }
  return parsed;
}

double BenchScale() {
  const std::string scale = GetEnvString("THREESIGMA_BENCH_SCALE", "default");
  if (scale == "quick") {
    return 0.25;
  }
  if (scale == "full") {
    return 4.0;
  }
  return 1.0;
}

uint64_t BenchSeed() { return static_cast<uint64_t>(GetEnvInt("THREESIGMA_SEED", 42)); }

}  // namespace threesigma
