// Lightweight assertion macros used across the 3Sigma codebase.
//
// CHECK-style assertions are enabled in all build types: schedulers make
// irreversible decisions (preemption, placement), so internal invariant
// violations must fail fast rather than silently corrupt a plan.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace threesigma {

// Terminates the process after printing `msg` with source location.
[[noreturn]] inline void CheckFailed(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace threesigma

#define TS_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::threesigma::CheckFailed(__FILE__, __LINE__, #cond);              \
    }                                                                    \
  } while (0)

#define TS_CHECK_MSG(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream ts_check_oss_;                                  \
      ts_check_oss_ << #cond << " — " << msg;                            \
      ::threesigma::CheckFailed(__FILE__, __LINE__, ts_check_oss_.str());\
    }                                                                    \
  } while (0)

#define TS_CHECK_GE(a, b) TS_CHECK_MSG((a) >= (b), (a) << " vs " << (b))
#define TS_CHECK_GT(a, b) TS_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define TS_CHECK_LE(a, b) TS_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define TS_CHECK_LT(a, b) TS_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define TS_CHECK_EQ(a, b) TS_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define TS_CHECK_NE(a, b) TS_CHECK_MSG((a) != (b), (a) << " vs " << (b))

#endif  // SRC_COMMON_CHECK_H_
