#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace threesigma {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TS_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) {
        os << '-';
      }
      os << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace threesigma
