#include "src/common/rng.h"

#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

double Rng::Uniform(double lo, double hi) {
  TS_CHECK_LE(lo, hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TS_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  TS_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  TS_CHECK_GT(lo, 0.0);
  TS_CHECK_GT(hi, lo);
  TS_CHECK_GT(alpha, 0.0);
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = Uniform(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

double Rng::HyperExponential(double mean, double cv2) {
  TS_CHECK_GE(cv2, 1.0);
  // Balanced two-phase H2: with probability p use mean m1, else m2, chosen so
  // the mixture has the requested mean and squared coefficient of variation.
  // The "balanced means" construction sets p*m1 = (1-p)*m2.
  const double p = 0.5 * (1.0 + std::sqrt((cv2 - 1.0) / (cv2 + 1.0)));
  const double m1 = mean / (2.0 * p);
  const double m2 = mean / (2.0 * (1.0 - p));
  return Bernoulli(p) ? Exponential(m1) : Exponential(m2);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  TS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TS_CHECK_GE(w, 0.0);
    total += w;
  }
  TS_CHECK_GT(total, 0.0);
  double draw = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  // Mix a fresh 64-bit draw through splitmix64 so child streams do not
  // overlap the parent stream even for adjacent seeds.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::string Rng::SerializeState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::DeserializeState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return false;
  }
  engine_ = restored;
  return true;
}

void Rng::SaveState(SnapshotWriter& writer) const { writer.WriteString(SerializeState()); }

void Rng::RestoreState(SnapshotReader& reader) {
  const std::string state = reader.ReadString();
  if (reader.ok()) {
    TS_CHECK_MSG(DeserializeState(state), "corrupt RNG state in snapshot");
  }
}

}  // namespace threesigma
