#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/check.h"

namespace threesigma {

FlagParser::FlagParser(std::string program_doc) : program_doc_(std::move(program_doc)) {}

FlagParser& FlagParser::AddString(const std::string& name, std::string* target,
                                  std::string doc) {
  TS_CHECK(target != nullptr);
  flags_[name] = Flag{Kind::kString, target, std::move(doc), "\"" + *target + "\""};
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t* target, std::string doc) {
  TS_CHECK(target != nullptr);
  flags_[name] = Flag{Kind::kInt, target, std::move(doc), std::to_string(*target)};
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double* target, std::string doc) {
  TS_CHECK(target != nullptr);
  std::ostringstream os;
  os << *target;
  flags_[name] = Flag{Kind::kDouble, target, std::move(doc), os.str()};
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool* target, std::string doc) {
  TS_CHECK(target != nullptr);
  flags_[name] = Flag{Kind::kBool, target, std::move(doc), *target ? "true" : "false"};
  return *this;
}

std::string FlagParser::HelpText() const {
  std::ostringstream os;
  os << program_doc_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kString:
        os << "=<string>";
        break;
      case Kind::kInt:
        os << "=<int>";
        break;
      case Kind::kDouble:
        os << "=<float>";
        break;
      case Kind::kBool:
        os << " | --no-" << name;
        break;
    }
    os << "\n      " << flag.doc << " (default " << flag.default_text << ")\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

bool FlagParser::Assign(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), HelpText().c_str());
    return false;
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
    case Kind::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s: expected integer, got '%s'\n", name.c_str(),
                     value.c_str());
        return false;
      }
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s: expected number, got '%s'\n", name.c_str(),
                     value.c_str());
        return false;
      }
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Kind::kBool:
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      std::fprintf(stderr, "flag --%s: expected true/false, got '%s'\n", name.c_str(),
                   value.c_str());
      return false;
  }
  return false;
}

bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout, "%s", HelpText().c_str());
      exit_code_ = 0;
      return false;
    }
    if (arg == "--") {
      // End-of-flags separator: everything after is positional, even if it
      // looks like a flag.
      for (int j = i + 1; j < argc; ++j) {
        positional_.push_back(argv[j]);
      }
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      if (!Assign(body.substr(0, eq), body.substr(eq + 1))) {
        exit_code_ = 1;
        return false;
      }
      continue;
    }
    // --no-name for bools.
    if (body.rfind("no-", 0) == 0) {
      const auto it = flags_.find(body.substr(3));
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }
    // Bare bool, or --name value.
    const auto it = flags_.find(body);
    if (it != flags_.end() && it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (i + 1 < argc) {
      if (!Assign(body, argv[++i])) {
        exit_code_ = 1;
        return false;
      }
      continue;
    }
    std::fprintf(stderr, "flag --%s is missing a value\n", body.c_str());
    exit_code_ = 1;
    return false;
  }
  return true;
}

}  // namespace threesigma
