// Seeded random number generation for workload synthesis and simulation.
//
// All randomness in the repository flows through Rng so experiments are
// reproducible from a single seed. Beyond the standard distributions, Rng
// provides the two workload-specific generators the paper's evaluation needs:
//   - a two-phase hyper-exponential arrival process matched to a target
//     squared coefficient of variation (the E2E workload uses c_a² = 4), and
//   - a bounded Pareto used for heavy-tailed runtime components.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // True with probability p.
  bool Bernoulli(double p);
  // Exponential with the given mean (not rate).
  double Exponential(double mean);
  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  // Log-normal parameterized by the *underlying* normal's mu/sigma.
  double LogNormal(double mu, double sigma);
  // Bounded Pareto on [lo, hi] with tail index alpha (heavy-tailed runtimes).
  double BoundedPareto(double lo, double hi, double alpha);
  // Two-phase hyper-exponential with the given mean and squared coefficient
  // of variation cv2 >= 1. Used for bursty job inter-arrival times.
  double HyperExponential(double mean, double cv2);

  // Index in [0, weights.size()) drawn proportionally to `weights`.
  // Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Forks an independent child stream; children are decorrelated from the
  // parent and from each other regardless of how many draws the parent makes.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

  // Raw engine state as text (the mt19937_64 iostream format: 312 words +
  // position counter). Restoring it makes the next draw equal what the saved
  // stream would have drawn — distributions are constructed per call, so the
  // engine is the *entire* stream state.
  std::string SerializeState() const;
  // Returns false (leaving the stream untouched) if `state` does not parse.
  bool DeserializeState(const std::string& state);

  // Snapshot codec hooks: raw payload (no section), composable into a parent
  // module's section.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  std::mt19937_64 engine_;
};

}  // namespace threesigma

#endif  // SRC_COMMON_RNG_H_
