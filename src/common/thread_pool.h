// Fixed-size worker pool for data-parallel loops.
//
// Built for the parallel branch-and-bound solver: each scheduling cycle runs
// many short ParallelFor batches (one per tree wave), so workers are
// persistent and a batch dispatch is one mutex round-trip, not N thread
// spawns. The calling thread participates as worker 0, so a pool of size N
// uses N - 1 background threads and a pool of size 1 degenerates to a plain
// loop with no locking at all.
//
// Indices are handed out through a shared atomic cursor — a lock-free work
// queue — so uneven item costs (LP solves vary wildly per node) balance
// across workers automatically. Batch state is heap-shared so a straggling
// worker that wakes after a batch drained only ever observes an exhausted
// cursor; it can never touch the next batch's state by accident.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace threesigma {

class ThreadPool {
 public:
  // `num_threads` is the total worker count including the caller; values < 1
  // are clamped to 1 (no background threads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs fn(worker, index) for every index in [0, n), distributing indices
  // over `size()` workers; `worker` in [0, size()) identifies the executing
  // worker so callers can keep per-worker scratch state (e.g. a private
  // LpModel copy). Blocks until all n calls returned. Not reentrant and not
  // thread-safe: one ParallelFor at a time.
  void ParallelFor(int n, const std::function<void(int worker, int index)>& fn);

 private:
  struct Batch {
    const std::function<void(int, int)>* fn = nullptr;
    int size = 0;
    std::atomic<int> next{0};       // Shared work cursor.
    std::atomic<int> remaining{0};  // Items not yet finished.
  };

  void WorkerLoop(int worker);
  // Pulls indices from the batch cursor until it is exhausted.
  void RunBatch(Batch& batch, int worker);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::shared_ptr<Batch> batch_;  // Current batch; kept alive for stragglers.
  uint64_t epoch_ = 0;            // Bumped per batch so workers enter each once.
  bool shutdown_ = false;
};

}  // namespace threesigma

#endif  // SRC_COMMON_THREAD_POOL_H_
