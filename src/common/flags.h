// Minimal command-line flag parsing for the example/tool binaries.
//
// Supports `--name=value`, `--name value`, boolean `--name` / `--no-name`,
// and a bare `--` end-of-flags separator (everything after it is positional).
// Unknown flags are an error (with a generated --help text), so typos fail
// fast instead of silently running the default experiment.

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace threesigma {

class FlagParser {
 public:
  // `program_doc` is printed at the top of --help.
  explicit FlagParser(std::string program_doc);

  // Registration: each returns *this for chaining. `doc` appears in --help.
  FlagParser& AddString(const std::string& name, std::string* target, std::string doc);
  FlagParser& AddInt(const std::string& name, int64_t* target, std::string doc);
  FlagParser& AddDouble(const std::string& name, double* target, std::string doc);
  FlagParser& AddBool(const std::string& name, bool* target, std::string doc);

  // Parses argv. Returns false (after printing help or an error to the given
  // streams) when the program should exit; true to proceed. `--help` returns
  // false with exit_code 0; parse errors return false with exit_code 1.
  bool Parse(int argc, const char* const* argv);

  int exit_code() const { return exit_code_; }
  // Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string HelpText() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string doc;
    std::string default_text;
  };

  bool Assign(const std::string& name, const std::string& value);

  std::string program_doc_;
  std::map<std::string, Flag> flags_;  // Ordered for stable --help output.
  std::vector<std::string> positional_;
  int exit_code_ = 0;
};

}  // namespace threesigma

#endif  // SRC_COMMON_FLAGS_H_
