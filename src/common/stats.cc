#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cov() const {
  const double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / m;
}

RunningStats RunningStats::Restore(size_t count, double mean, double m2, double min,
                                   double max, double sum) {
  RunningStats rs;
  rs.count_ = count;
  rs.mean_ = mean;
  rs.m2_ = m2;
  rs.min_ = min;
  rs.max_ = max;
  rs.sum_ = sum;
  return rs;
}

void RunningStats::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarU64(count_);
  writer.WriteDouble(mean_);
  writer.WriteDouble(m2_);
  writer.WriteDouble(min_);
  writer.WriteDouble(max_);
  writer.WriteDouble(sum_);
}

void RunningStats::RestoreState(SnapshotReader& reader) {
  count_ = reader.ReadVarU64();
  mean_ = reader.ReadDouble();
  m2_ = reader.ReadDouble();
  min_ = reader.ReadDouble();
  max_ = reader.ReadDouble();
  sum_ = reader.ReadDouble();
}

EwmaEstimator EwmaEstimator::Restore(double alpha, bool seeded, double value) {
  EwmaEstimator e(alpha);
  e.seeded_ = seeded;
  e.value_ = value;
  return e;
}

RecentWindow RecentWindow::Restore(size_t capacity, size_t next,
                                   std::vector<double> values) {
  RecentWindow w(capacity);
  TS_CHECK_LE(values.size(), capacity);
  TS_CHECK_LT(next, capacity);
  w.next_ = next;
  w.values_ = std::move(values);
  return w;
}

void EwmaEstimator::SaveState(SnapshotWriter& writer) const {
  writer.WriteDouble(alpha_);
  writer.WriteBool(seeded_);
  writer.WriteDouble(value_);
}

void EwmaEstimator::RestoreState(SnapshotReader& reader) {
  alpha_ = reader.ReadDouble();
  seeded_ = reader.ReadBool();
  value_ = reader.ReadDouble();
}

void RecentWindow::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarU64(capacity_);
  writer.WriteVarU64(next_);
  writer.WriteDoubleVec(values_);
}

void RecentWindow::RestoreState(SnapshotReader& reader) {
  capacity_ = reader.ReadVarU64();
  next_ = reader.ReadVarU64();
  values_ = reader.ReadDoubleVec();
}

void EwmaEstimator::Add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

RecentWindow::RecentWindow(size_t capacity) : capacity_(capacity) {
  TS_CHECK_GT(capacity, 0u);
  values_.reserve(capacity);
}

void RecentWindow::Add(double x) {
  if (values_.size() < capacity_) {
    values_.push_back(x);
  } else {
    values_[next_] = x;
  }
  next_ = (next_ + 1) % capacity_;
}

double RecentWindow::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : values_) {
    total += v;
  }
  return total / static_cast<double>(values_.size());
}

double RecentWindow::Median() const {
  if (values_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (n % 2 == 1) {
    return sorted[n / 2];
  }
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double Quantile(std::vector<double> values, double q) {
  TS_CHECK(!values.empty());
  TS_CHECK_GE(q, 0.0);
  TS_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return total / static_cast<double>(values.size());
}

double Nmae(const std::vector<double>& estimates, const std::vector<double>& actuals) {
  TS_CHECK_EQ(estimates.size(), actuals.size());
  double abs_err = 0.0;
  double total_actual = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    abs_err += std::fabs(estimates[i] - actuals[i]);
    total_actual += actuals[i];
  }
  if (total_actual == 0.0) {
    return 0.0;
  }
  return abs_err / total_actual;
}

EstimateErrorHistogram BuildEstimateErrorHistogram(const std::vector<double>& estimates,
                                                   const std::vector<double>& actuals) {
  TS_CHECK_EQ(estimates.size(), actuals.size());
  EstimateErrorHistogram hist;
  // Decile centers -100 .. +90, then the tail (> 95%).
  for (int c = -100; c <= 90; c += 10) {
    hist.centers.push_back(static_cast<double>(c));
  }
  hist.centers.push_back(100.0);  // "tail" bucket
  hist.fractions.assign(hist.centers.size(), 0.0);

  size_t counted = 0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    if (actuals[i] <= 0.0) {
      continue;
    }
    const double err = (estimates[i] - actuals[i]) / actuals[i] * 100.0;
    size_t bucket;
    if (err > 95.0) {
      bucket = hist.centers.size() - 1;
    } else {
      // Nearest decile, clamped to [-100, 90].
      const double decile = std::round(err / 10.0) * 10.0;
      const double clamped = std::clamp(decile, -100.0, 90.0);
      bucket = static_cast<size_t>((clamped + 100.0) / 10.0);
    }
    hist.fractions[bucket] += 1.0;
    ++counted;
  }
  if (counted > 0) {
    for (double& f : hist.fractions) {
      f /= static_cast<double>(counted);
    }
  }
  return hist;
}

}  // namespace threesigma
