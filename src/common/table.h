// ASCII table and CSV output for benches and examples.
//
// Every bench prints the rows of the paper table/figure it regenerates; the
// formatting lives here so all benches produce uniform, diffable output.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace threesigma {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; each cell is pre-formatted text. Row width must match headers.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double value, int precision = 2);

  // Renders an aligned ASCII table.
  void Print(std::ostream& os) const;
  // Renders comma-separated values (headers + rows).
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace threesigma

#endif  // SRC_COMMON_TABLE_H_
