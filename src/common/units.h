// Time and resource units.
//
// Simulation time is a double count of seconds since the start of the run.
// Machine-hours (the paper's goodput unit) are derived as nodes × seconds /
// 3600. Using plain doubles keeps the solver interface (which is already in
// continuous time) free of conversions; helpers below give readable literals.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

namespace threesigma {

// Seconds since simulation start.
using Time = double;
// A span of simulated seconds.
using Duration = double;

constexpr Duration Seconds(double s) { return s; }
constexpr Duration Minutes(double m) { return m * 60.0; }
constexpr Duration Hours(double h) { return h * 3600.0; }

// Converts nodes × seconds into machine-hours (the goodput unit in the paper).
constexpr double MachineHours(double nodes, Duration seconds) { return nodes * seconds / 3600.0; }

// Sentinel for "never" / unset times.
constexpr Time kNever = -1.0;

}  // namespace threesigma

#endif  // SRC_COMMON_UNITS_H_
