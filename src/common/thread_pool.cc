#include "src/common/thread_pool.h"

#include <algorithm>

namespace threesigma {

ThreadPool::ThreadPool(int num_threads) {
  const int background = std::max(num_threads, 1) - 1;
  threads_.reserve(static_cast<size_t>(background));
  for (int w = 0; w < background; ++w) {
    // Worker 0 is the caller; background threads are 1..background.
    threads_.emplace_back([this, w] { WorkerLoop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::RunBatch(Batch& batch, int worker) {
  for (;;) {
    const int index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.size) {
      return;
    }
    (*batch.fn)(worker, index);
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last item done; the lock pairs with the caller's predicate check so
      // the wakeup cannot slip between its test and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      batch = batch_;
    }
    RunBatch(*batch, worker);
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int, int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (threads_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      fn(0, i);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->size = n;
  batch->remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++epoch_;
  }
  work_ready_.notify_all();
  RunBatch(*batch, /*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock,
                   [&] { return batch->remaining.load(std::memory_order_acquire) == 0; });
}

}  // namespace threesigma
