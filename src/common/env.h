// Environment-variable configuration for benches.
//
// Benches run standalone under `for b in build/bench/*; do $b; done`, so they
// take their scale knobs from the environment instead of argv:
//   THREESIGMA_BENCH_SCALE=quick|default|full — workload size multiplier.
//   THREESIGMA_SEED=<n>                       — base RNG seed.

#ifndef SRC_COMMON_ENV_H_
#define SRC_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace threesigma {

// Returns the env var value or `fallback` when unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);
int64_t GetEnvInt(const char* name, int64_t fallback);
double GetEnvDouble(const char* name, double fallback);

// Workload scale factor for benches: 0.25 for "quick", 1.0 for "default",
// 4.0 for "full" (approximately paper-scale workload lengths).
double BenchScale();

// Base seed for bench RNGs (THREESIGMA_SEED, default 42).
uint64_t BenchSeed();

}  // namespace threesigma

#endif  // SRC_COMMON_ENV_H_
