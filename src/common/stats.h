// Streaming and batch statistics helpers.
//
// RunningStats is the Welford single-pass accumulator used by the predictor's
// streaming experts (§4.1 of the paper requires constant memory per
// feature-value). The batch helpers back trace analysis (Fig. 2: runtime CDFs,
// per-group coefficient of variation, estimate-error histograms).

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

// Welford's online algorithm: mean/variance in O(1) memory.
class RunningStats {
 public:
  void Add(double x);

  // Persistence support (predict/predictor_io.h): raw accumulator access and
  // exact state restoration.
  double m2() const { return m2_; }
  static RunningStats Restore(size_t count, double mean, double m2, double min, double max,
                              double sum);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  // Coefficient of variation: stddev / mean; 0 if the mean is 0.
  double cov() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  // Snapshot codec hooks: raw payload, composable into a parent section.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exponentially weighted moving average, the paper's "rolling" estimator
// (alpha = 0.6 by default per §4.1).
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.6) : alpha_(alpha) {}

  void Add(double x);
  bool empty() const { return !seeded_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }
  static EwmaEstimator Restore(double alpha, bool seeded, double value);

  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

// Fixed-capacity window over the most recent samples; supports the paper's
// "average of X recent runtimes" expert and its recent-median proxy.
class RecentWindow {
 public:
  explicit RecentWindow(size_t capacity);

  void Add(double x);
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double Mean() const;
  double Median() const;

  size_t capacity() const { return capacity_; }
  size_t next() const { return next_; }
  const std::vector<double>& values() const { return values_; }
  static RecentWindow Restore(size_t capacity, size_t next, std::vector<double> values);

  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  size_t capacity_;
  size_t next_ = 0;
  std::vector<double> values_;
};

// Linear-interpolated quantile of an unsorted sample (q in [0, 1]).
double Quantile(std::vector<double> values, double q);

// Batch mean of a sample; 0 for an empty sample.
double Mean(const std::vector<double>& values);

// Normalized mean absolute error of estimates vs. actuals:
//   sum |est - act| / sum act
// This is the accuracy score 3σPredict uses to rank experts.
double Nmae(const std::vector<double>& estimates, const std::vector<double>& actuals);

// Histogram of estimate-error percentages exactly as Fig. 2(d) buckets them:
// one bucket per decile of error in [-100, +95] (each bucket spans ±5% of the
// nearest decile) plus a final "tail" bucket for errors > 95%.
// error% = (estimate - actual) / actual * 100.
struct EstimateErrorHistogram {
  // Bucket centers: -100, -90, ..., 90 then the tail bucket.
  std::vector<double> centers;
  // Fraction of jobs per bucket (sums to 1 if any sample present).
  std::vector<double> fractions;
};
EstimateErrorHistogram BuildEstimateErrorHistogram(const std::vector<double>& estimates,
                                                   const std::vector<double>& actuals);

}  // namespace threesigma

#endif  // SRC_COMMON_STATS_H_
