// Transport abstraction for the scheduling service.
//
// The server speaks to clients through a ServerTransport (poll for inbound
// frames, send replies); clients hold a ClientChannel (send one frame,
// receive one frame). Two implementations exist behind these interfaces:
//
//   LoopbackTransport (here)        — in-process, deterministic. Frames move
//     through per-client FIFO byte buffers using the real wire framing; the
//     server drains clients in connection order, so a scripted session is
//     byte-identical across runs and solver thread counts.
//   SocketServerTransport (socket_transport.h) — Unix-domain / TCP sockets
//     with a non-blocking poll() loop.
//
// The loopback has no threads: a client's RecvFrame invokes a "pump"
// callback (normally Server::HandleReady) until the server has produced a
// reply, which keeps svc::Client usable unmodified over either transport.

#ifndef SRC_SVC_TRANSPORT_H_
#define SRC_SVC_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/svc/wire.h"

namespace threesigma::svc {

// One decoded inbound frame and the connection it arrived on.
struct InboundFrame {
  uint64_t client = 0;
  std::string payload;
};

class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  // Gathers complete inbound frames, waiting up to `timeout_seconds` for the
  // first byte (0 = non-blocking). Returns false when the transport is
  // permanently closed. A client that violates framing is disconnected and
  // its partial input dropped.
  virtual bool Poll(double timeout_seconds, std::vector<InboundFrame>* frames) = 0;

  // Queues one reply frame to `client`. Unknown / disconnected clients are
  // ignored (the peer may have gone away between poll and reply).
  virtual void Send(uint64_t client, std::string_view payload) = 0;

  virtual void Disconnect(uint64_t client) = 0;

  // Currently open connections (the server lingers after a drain until every
  // client has seen the final state and disconnected).
  virtual size_t ActiveConnections() const = 0;
};

// Client half of a connection.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  virtual bool SendFrame(std::string_view payload, std::string* error) = 0;
  // Blocks up to `timeout_seconds` for one complete frame.
  virtual bool RecvFrame(std::string* payload, double timeout_seconds, std::string* error) = 0;
};

class LoopbackTransport : public ServerTransport {
 public:
  class Client;

  explicit LoopbackTransport(size_t max_frame_bytes = kDefaultMaxFrameBytes);
  ~LoopbackTransport() override;

  // Opens a connection. The returned channel must not outlive the transport.
  std::unique_ptr<Client> Connect();

  // Extracts every complete inbound frame, clients visited in connection
  // order, each client's frames in FIFO order. Never blocks; the timeout is
  // ignored (there is no peer to wait for).
  bool Poll(double timeout_seconds, std::vector<InboundFrame>* frames) override;
  void Send(uint64_t client, std::string_view payload) override;
  void Disconnect(uint64_t client) override;
  size_t ActiveConnections() const override;

  class Client : public ClientChannel {
   public:
    Client(LoopbackTransport* transport, uint64_t id);
    ~Client() override;

    bool SendFrame(std::string_view payload, std::string* error) override;
    // If no reply is queued, invokes the pump until one appears; fails after
    // `max_pumps_` fruitless invocations rather than spinning forever.
    bool RecvFrame(std::string* payload, double timeout_seconds, std::string* error) override;

    // The pump runs one server iteration (e.g. [&] { server.HandleReady(); })
    // and is what makes a loopback RecvFrame "block" deterministically.
    void SetPump(std::function<void()> pump) { pump_ = std::move(pump); }

    uint64_t id() const { return id_; }
    bool connected() const;

   private:
    LoopbackTransport* transport_;
    uint64_t id_;
    std::function<void()> pump_;
    int max_pumps_ = 1000;
  };

 private:
  struct Connection {
    std::string inbound;        // Framed client -> server bytes.
    size_t inbound_offset = 0;  // Parse cursor into `inbound`.
    std::deque<std::string> replies;  // Decoded server -> client payloads.
    bool connected = true;
  };

  Connection* Find(uint64_t client);

  size_t max_frame_bytes_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Connection> connections_;  // Ordered: deterministic visit order.
};

}  // namespace threesigma::svc

#endif  // SRC_SVC_TRANSPORT_H_
