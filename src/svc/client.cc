#include "src/svc/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace threesigma::svc {

namespace {

bool FailWith(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

std::string DescribeReply(const Reply& reply) {
  std::string out = StatusCodeName(reply.code);
  if (!reply.message.empty()) {
    out += ": " + reply.message;
  }
  return out;
}

}  // namespace

double BackoffDelay(int attempt, const ClientOptions& options) {
  if (attempt <= 0) {
    return 0.0;
  }
  double delay = options.backoff_initial_seconds;
  for (int i = 1; i < attempt; ++i) {
    delay *= options.backoff_multiplier;
    if (delay >= options.backoff_cap_seconds) {
      return options.backoff_cap_seconds;
    }
  }
  return std::min(delay, options.backoff_cap_seconds);
}

Client::Client(ClientChannel* channel, ClientOptions options)
    : channel_(channel), options_(options) {}

void Client::SetReconnect(std::function<ClientChannel*()> reconnect) {
  reconnect_ = std::move(reconnect);
}

bool Client::Call(Request request, Reply* reply, std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options_.deadline_seconds);
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++total_retries_;
      if (options_.sleep_on_backoff) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(BackoffDelay(attempt, options_)));
      }
    }
    if (options_.deadline_seconds > 0.0 && std::chrono::steady_clock::now() >= deadline) {
      return FailWith(error, "deadline exceeded; last error: " + last_error);
    }
    // Each attempt is a fresh request id, so a stale reply to a timed-out
    // attempt can never be mistaken for this one's.
    request.request_id = next_request_id_++;
    const std::string payload = EncodeRequest(request);
    std::string attempt_error;
    if (!channel_->SendFrame(payload, &attempt_error)) {
      last_error = "send failed: " + attempt_error;
      if (reconnect_) {
        ClientChannel* fresh = reconnect_();
        if (fresh != nullptr) {
          channel_ = fresh;
        }
      }
      continue;
    }
    std::string reply_payload;
    bool got_match = false;
    // Drain stale replies (earlier attempts that timed out mid-flight) until
    // the matching id or the per-attempt timeout.
    for (;;) {
      if (!channel_->RecvFrame(&reply_payload, options_.request_timeout_seconds,
                               &attempt_error)) {
        last_error = "recv failed: " + attempt_error;
        break;
      }
      Reply decoded;
      if (!DecodeReply(reply_payload, &decoded, &attempt_error)) {
        last_error = "bad reply: " + attempt_error;
        break;
      }
      if (decoded.request_id != request.request_id) {
        continue;  // Stale.
      }
      *reply = std::move(decoded);
      got_match = true;
      break;
    }
    if (!got_match) {
      if (reconnect_) {
        ClientChannel* fresh = reconnect_();
        if (fresh != nullptr) {
          channel_ = fresh;
        }
      }
      continue;
    }
    if (reply->code == StatusCode::kRetryLater) {
      last_error = "server backpressure (retry_later)";
      continue;
    }
    return true;
  }
  return FailWith(error, "gave up after " + std::to_string(options_.max_attempts) +
                             " attempts; last error: " + last_error);
}

bool Client::SubmitJob(const JobSpec& job, const std::string& token, JobId* assigned_id,
                       std::string* error) {
  Request request;
  request.verb = Verb::kSubmitJob;
  request.token = token;
  request.job = job;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (assigned_id != nullptr) {
    *assigned_id = reply.job_id;
  }
  return true;
}

bool Client::QueryJob(JobId id, JobStatusInfo* info, std::string* error) {
  Request request;
  request.verb = Verb::kJobStatus;
  request.job_id = id;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (info != nullptr) {
    *info = reply.job;
  }
  return true;
}

bool Client::CancelJob(JobId id, std::string* error) {
  Request request;
  request.verb = Verb::kCancelJob;
  request.job_id = id;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  return true;
}

bool Client::GetClusterState(SimStateInfo* state, uint64_t* queue_depth, std::string* error) {
  Request request;
  request.verb = Verb::kClusterState;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (state != nullptr) {
    *state = reply.cluster;
  }
  if (queue_depth != nullptr) {
    *queue_depth = reply.queue_depth;
  }
  return true;
}

bool Client::DumpMetrics(std::string* text, std::string* error) {
  Request request;
  request.verb = Verb::kMetricsDump;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (text != nullptr) {
    *text = reply.text;
  }
  return true;
}

bool Client::TriggerCheckpoint(std::string* path, std::string* error) {
  Request request;
  request.verb = Verb::kTriggerCheckpoint;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (path != nullptr) {
    *path = reply.text;
  }
  return true;
}

bool Client::WhatIf(const std::string& scenarios, int64_t horizon, std::string* report,
                    std::string* error) {
  Request request;
  request.verb = Verb::kWhatIf;
  request.scenarios = scenarios;
  request.horizon = horizon;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (report != nullptr) {
    *report = reply.text;
  }
  return true;
}

bool Client::AdvisorStatus(std::string* text, std::string* error) {
  Request request;
  request.verb = Verb::kAdvisorStatus;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  if (text != nullptr) {
    *text = reply.text;
  }
  return true;
}

bool Client::Shutdown(bool drain, std::string* error) {
  Request request;
  request.verb = Verb::kShutdown;
  request.drain = drain;
  Reply reply;
  if (!Call(std::move(request), &reply, error)) {
    return false;
  }
  if (reply.code != StatusCode::kOk) {
    return FailWith(error, DescribeReply(reply));
  }
  return true;
}

}  // namespace threesigma::svc
