// Service wire protocol: length-prefixed binary frames.
//
// Every RPC is one frame each way. A frame is a u32 little-endian payload
// length followed by the payload; the payload is a complete snapshot
// container (magic + one section + trailing CRC-32) built with the
// SnapshotWriter/SnapshotReader varint codec, so requests and replies get
// the same corruption detection and fail-soft decoding as checkpoints.
// Requests carry section "req", replies section "rep", both version 1.
//
// The decoder is fail-soft against untrusted bytes: truncated, oversized,
// CRC-damaged, or structurally invalid payloads are rejected with an error
// string and never crash the server (tests/svc_test.cc fuzzes this).

#ifndef SRC_SVC_WIRE_H_
#define SRC_SVC_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/cluster/job.h"
#include "src/sim/simulator.h"

namespace threesigma::svc {

// Refuse to buffer frames larger than this by default (a length prefix is
// attacker-controlled; a bogus 4 GiB prefix must not reserve 4 GiB).
constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

enum class Verb : uint8_t {
  kSubmitJob = 1,
  kJobStatus = 2,
  kCancelJob = 3,
  kClusterState = 4,
  kMetricsDump = 5,
  kTriggerCheckpoint = 6,
  kShutdown = 7,
  // Digital-twin verbs (src/twin): run a speculative scenario sweep against
  // the live run / read the online advisor's state. Both reply in
  // Reply.text with a deterministic fixed-format report.
  kWhatIf = 8,
  kAdvisorStatus = 9,
};

const char* VerbName(Verb verb);

enum class StatusCode : uint8_t {
  kOk = 0,
  kRetryLater = 1,      // Admission queue full; resubmit after backoff.
  kMalformed = 2,       // Request payload failed to decode.
  kUnknownVerb = 3,
  kNotFound = 4,        // No such job id.
  kInvalidArgument = 5, // e.g. gang wider than any group.
  kShuttingDown = 6,    // Drain in progress; no new submissions.
  kInternal = 7,
};

const char* StatusCodeName(StatusCode code);

// Flat request: `verb` selects which fields are meaningful.
struct Request {
  Verb verb = Verb::kJobStatus;
  uint64_t request_id = 0;  // Echoed in the reply; client matches on it.

  // kSubmitJob. `token` is the idempotency key: resubmitting the same token
  // returns the originally assigned id instead of admitting a duplicate.
  std::string token;
  JobSpec job;

  // kJobStatus / kCancelJob.
  JobId job_id = 0;

  // kShutdown: true = drain admitted work first, false = stop immediately.
  bool drain = true;

  // kWhatIf. `scenarios` is a ';'-separated scenario list in the
  // src/twin/scenario.h text format (empty = the server's default sweep);
  // `horizon` is the speculative cycle count per scenario (0 = server
  // default).
  std::string scenarios;
  int64_t horizon = 0;
};

// Flat reply; which fields are meaningful depends on the request verb.
struct Reply {
  StatusCode code = StatusCode::kOk;
  uint64_t request_id = 0;
  std::string message;  // Human-readable detail for non-kOk codes.

  JobId job_id = 0;         // Submit (assigned id) / status / cancel.
  JobStatusInfo job;        // kJobStatus.
  SimStateInfo cluster;     // kClusterState.
  uint64_t queue_depth = 0; // kClusterState: admitted, not yet injected.
  std::string text;         // kMetricsDump body / checkpoint path.
};

std::string EncodeRequest(const Request& request);
std::string EncodeReply(const Reply& reply);

// Fail-soft decoders: false + `*error` on any malformed payload; `*out` is
// default-initialized first and unspecified on failure.
bool DecodeRequest(const std::string& payload, Request* out, std::string* error);
bool DecodeReply(const std::string& payload, Reply* out, std::string* error);

// --- Framing -----------------------------------------------------------------

// Appends one frame (u32 LE length + payload) to `out`.
void AppendFrame(std::string* out, std::string_view payload);

enum class FrameResult {
  kFrame,     // One complete frame extracted into `*payload`.
  kNeedMore,  // Prefix of a frame; read more bytes and call again.
  kError,     // Unrecoverable framing violation; drop the connection.
};

// Scans `buffer` from `*offset`. On kFrame advances `*offset` past the frame.
// A declared length of 0 or > `max_frame_bytes` is kError (a bad prefix must
// not make the receiver buffer unbounded data).
FrameResult ExtractFrame(const std::string& buffer, size_t* offset, std::string* payload,
                         size_t max_frame_bytes, std::string* error);

}  // namespace threesigma::svc

#endif  // SRC_SVC_WIRE_H_
