// POSIX socket transport: Unix-domain and TCP, one non-blocking poll() loop.
//
// The server side accepts on up to two listeners (a Unix socket path and a
// localhost TCP port), reassembles length-prefixed frames from per-connection
// read buffers, and flushes per-connection write buffers as the peer drains
// them. Connections idle longer than `idle_timeout_seconds` are closed. The
// client side is a blocking channel with a poll()-based receive timeout.

#ifndef SRC_SVC_SOCKET_TRANSPORT_H_
#define SRC_SVC_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/svc/transport.h"

namespace threesigma::svc {

struct SocketServerOptions {
  std::string unix_path;            // Empty = no Unix-domain listener.
  int tcp_port = -1;                // < 0 = no TCP listener; 0 = ephemeral.
  std::string tcp_host = "127.0.0.1";
  int backlog = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  double idle_timeout_seconds = 0.0;  // 0 = connections never idle out.
};

class SocketServerTransport : public ServerTransport {
 public:
  SocketServerTransport();
  ~SocketServerTransport() override;

  SocketServerTransport(const SocketServerTransport&) = delete;
  SocketServerTransport& operator=(const SocketServerTransport&) = delete;

  // Binds the configured listeners. False + `*error` when neither listener
  // could be opened (an existing socket file at `unix_path` is replaced).
  bool Listen(const SocketServerOptions& options, std::string* error);

  // Port actually bound (resolves tcp_port == 0); -1 without a TCP listener.
  int tcp_port() const { return tcp_port_; }

  // Closes listeners and every connection; unlinks the Unix socket path.
  void Close();

  bool Poll(double timeout_seconds, std::vector<InboundFrame>* frames) override;
  void Send(uint64_t client, std::string_view payload) override;
  void Disconnect(uint64_t client) override;
  size_t ActiveConnections() const override { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;          // Raw bytes read; frames parsed from the front.
    size_t in_offset = 0;
    std::string out;         // Framed reply bytes not yet written.
    size_t out_offset = 0;
    double last_active = 0.0;  // Monotonic seconds.
  };

  void AcceptAll(int listener_fd);
  // False when the connection died and was closed.
  bool ReadReady(uint64_t id, Connection& conn, std::vector<InboundFrame>* frames);
  bool WriteReady(Connection& conn);
  void CloseConnection(uint64_t id);

  SocketServerOptions options_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Connection> connections_;
};

// Client half: connect, blocking send, poll()-timed receive.
class SocketClientChannel : public ClientChannel {
 public:
  static std::unique_ptr<SocketClientChannel> ConnectUnix(const std::string& path,
                                                          std::string* error);
  static std::unique_ptr<SocketClientChannel> ConnectTcp(const std::string& host, int port,
                                                         std::string* error);
  ~SocketClientChannel() override;

  SocketClientChannel(const SocketClientChannel&) = delete;
  SocketClientChannel& operator=(const SocketClientChannel&) = delete;

  bool SendFrame(std::string_view payload, std::string* error) override;
  bool RecvFrame(std::string* payload, double timeout_seconds, std::string* error) override;

  bool connected() const { return fd_ >= 0; }

 private:
  explicit SocketClientChannel(int fd);

  int fd_ = -1;
  std::string in_;       // Bytes received ahead of the current frame.
  size_t in_offset_ = 0;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace threesigma::svc

#endif  // SRC_SVC_SOCKET_TRANSPORT_H_
