#include "src/svc/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace threesigma::svc {

namespace {

bool FailWith(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message + " (" + strerror(errno) + ")";
  }
  return false;
}

double MonotonicSeconds() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Compacts a parse/write buffer once everything up to `offset` is consumed,
// or when the dead prefix dominates the buffer.
void Compact(std::string* buffer, size_t* offset) {
  if (*offset == buffer->size()) {
    buffer->clear();
    *offset = 0;
  } else if (*offset > 4096 && *offset > buffer->size() / 2) {
    buffer->erase(0, *offset);
    *offset = 0;
  }
}

}  // namespace

SocketServerTransport::SocketServerTransport() = default;

SocketServerTransport::~SocketServerTransport() {
  Close();
}

bool SocketServerTransport::Listen(const SocketServerOptions& options, std::string* error) {
  options_ = options;
  if (options.unix_path.empty() && options.tcp_port < 0) {
    if (error != nullptr) {
      *error = "no listener configured (need unix_path or tcp_port)";
    }
    return false;
  }
  if (!options.unix_path.empty()) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return FailWith(error, "socket(AF_UNIX)");
    }
    struct sockaddr_un addr;
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      close(fd);
      if (error != nullptr) {
        *error = "unix socket path too long: " + options.unix_path;
      }
      return false;
    }
    memcpy(addr.sun_path, options.unix_path.c_str(), options.unix_path.size() + 1);
    unlink(options.unix_path.c_str());  // Replace a stale socket file.
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd, options.backlog) != 0 || !SetNonBlocking(fd)) {
      const bool ignored = FailWith(error, "bind/listen " + options.unix_path);
      (void)ignored;
      close(fd);
      return false;
    }
    unix_fd_ = fd;
  }
  if (options.tcp_port >= 0) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Close();
      return FailWith(error, "socket(AF_INET)");
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
    if (inet_pton(AF_INET, options.tcp_host.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      Close();
      if (error != nullptr) {
        *error = "bad tcp_host: " + options.tcp_host;
      }
      return false;
    }
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd, options.backlog) != 0 || !SetNonBlocking(fd)) {
      const bool ignored = FailWith(error, "bind/listen tcp port");
      (void)ignored;
      close(fd);
      Close();
      return false;
    }
    socklen_t len = sizeof(addr);
    getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
    tcp_fd_ = fd;
    tcp_port_ = ntohs(addr.sin_port);
  }
  return true;
}

void SocketServerTransport::Close() {
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) {
      close(conn.fd);
    }
  }
  connections_.clear();
  if (unix_fd_ >= 0) {
    close(unix_fd_);
    unix_fd_ = -1;
    unlink(options_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    close(tcp_fd_);
    tcp_fd_ = -1;
    tcp_port_ = -1;
  }
}

void SocketServerTransport::AcceptAll(int listener_fd) {
  for (;;) {
    const int fd = accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or transient error; retry next poll.
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.last_active = MonotonicSeconds();
    connections_[next_id_++] = std::move(conn);
  }
}

bool SocketServerTransport::ReadReady(uint64_t id, Connection& conn,
                                      std::vector<InboundFrame>* frames) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<size_t>(n));
      conn.last_active = MonotonicSeconds();
      if (static_cast<ssize_t>(sizeof(chunk)) != n) {
        break;  // Drained the socket.
      }
      continue;
    }
    if (n == 0) {  // Peer closed.
      CloseConnection(id);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConnection(id);
    return false;
  }
  std::string payload;
  std::string error;
  for (;;) {
    const FrameResult r =
        ExtractFrame(conn.in, &conn.in_offset, &payload, options_.max_frame_bytes, &error);
    if (r == FrameResult::kFrame) {
      frames->push_back(InboundFrame{id, std::move(payload)});
      payload.clear();
      continue;
    }
    if (r == FrameResult::kError) {  // Framing violation: drop the peer.
      CloseConnection(id);
      return false;
    }
    break;
  }
  Compact(&conn.in, &conn.in_offset);
  return true;
}

bool SocketServerTransport::WriteReady(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = send(conn.fd, conn.out.data() + conn.out_offset,
                           conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      conn.last_active = MonotonicSeconds();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // Broken pipe; caller closes.
  }
  Compact(&conn.out, &conn.out_offset);
  return true;
}

void SocketServerTransport::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return;
  }
  if (it->second.fd >= 0) {
    close(it->second.fd);
  }
  connections_.erase(it);
}

bool SocketServerTransport::Poll(double timeout_seconds, std::vector<InboundFrame>* frames) {
  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    return false;
  }
  std::vector<struct pollfd> fds;
  std::vector<uint64_t> ids;  // Parallel to fds; 0 marks a listener.
  for (const int listener : {unix_fd_, tcp_fd_}) {
    if (listener >= 0) {
      fds.push_back({listener, POLLIN, 0});
      ids.push_back(0);
    }
  }
  for (auto& [id, conn] : connections_) {
    short events = POLLIN;
    if (conn.out_offset < conn.out.size()) {
      events |= POLLOUT;
    }
    fds.push_back({conn.fd, events, 0});
    ids.push_back(id);
  }
  const int timeout_ms =
      timeout_seconds <= 0.0 ? 0 : std::max(1, static_cast<int>(timeout_seconds * 1000.0));
  const int ready = poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    return false;
  }
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) {
      continue;
    }
    if (ids[i] == 0) {
      AcceptAll(fds[i].fd);
      continue;
    }
    auto it = connections_.find(ids[i]);
    if (it == connections_.end()) {
      continue;
    }
    if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (fds[i].revents & POLLIN) == 0) {
      CloseConnection(ids[i]);
      continue;
    }
    if ((fds[i].revents & POLLIN) != 0 && !ReadReady(ids[i], it->second, frames)) {
      continue;  // Connection closed during read.
    }
    if ((fds[i].revents & POLLOUT) != 0 && !WriteReady(it->second)) {
      CloseConnection(ids[i]);
    }
  }
  if (options_.idle_timeout_seconds > 0.0) {
    const double now = MonotonicSeconds();
    std::vector<uint64_t> idle;
    for (const auto& [id, conn] : connections_) {
      if (now - conn.last_active > options_.idle_timeout_seconds) {
        idle.push_back(id);
      }
    }
    for (const uint64_t id : idle) {
      CloseConnection(id);
    }
  }
  return true;
}

void SocketServerTransport::Send(uint64_t client, std::string_view payload) {
  auto it = connections_.find(client);
  if (it == connections_.end()) {
    return;
  }
  AppendFrame(&it->second.out, payload);
  if (!WriteReady(it->second)) {  // Opportunistic flush.
    CloseConnection(client);
  }
}

void SocketServerTransport::Disconnect(uint64_t client) {
  CloseConnection(client);
}

// --- Client ------------------------------------------------------------------

SocketClientChannel::SocketClientChannel(int fd) : fd_(fd) {}

SocketClientChannel::~SocketClientChannel() {
  if (fd_ >= 0) {
    close(fd_);
  }
}

std::unique_ptr<SocketClientChannel> SocketClientChannel::ConnectUnix(const std::string& path,
                                                                      std::string* error) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    FailWith(error, "socket(AF_UNIX)");
    return nullptr;
  }
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    close(fd);
    if (error != nullptr) {
      *error = "unix socket path too long: " + path;
    }
    return nullptr;
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    FailWith(error, "connect " + path);
    close(fd);
    return nullptr;
  }
  return std::unique_ptr<SocketClientChannel>(new SocketClientChannel(fd));
}

std::unique_ptr<SocketClientChannel> SocketClientChannel::ConnectTcp(const std::string& host,
                                                                     int port,
                                                                     std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    FailWith(error, "socket(AF_INET)");
    return nullptr;
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    if (error != nullptr) {
      *error = "bad host: " + host;
    }
    return nullptr;
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    FailWith(error, "connect " + host);
    close(fd);
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<SocketClientChannel>(new SocketClientChannel(fd));
}

bool SocketClientChannel::SendFrame(std::string_view payload, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "not connected";
    }
    return false;
  }
  std::string framed;
  framed.reserve(payload.size() + 4);
  AppendFrame(&framed, payload);
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    FailWith(error, "send");
    close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool SocketClientChannel::RecvFrame(std::string* payload, double timeout_seconds,
                                    std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "not connected";
    }
    return false;
  }
  const double deadline = MonotonicSeconds() + timeout_seconds;
  for (;;) {
    std::string frame_error;
    const FrameResult r =
        ExtractFrame(in_, &in_offset_, payload, max_frame_bytes_, &frame_error);
    if (r == FrameResult::kFrame) {
      Compact(&in_, &in_offset_);
      return true;
    }
    if (r == FrameResult::kError) {
      if (error != nullptr) {
        *error = frame_error;
      }
      close(fd_);
      fd_ = -1;
      return false;
    }
    const double remaining = deadline - MonotonicSeconds();
    if (remaining <= 0.0) {
      if (error != nullptr) {
        *error = "receive timed out";
      }
      return false;
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, std::max(1, static_cast<int>(remaining * 1000.0)));
    if (ready < 0 && errno != EINTR) {
      FailWith(error, "poll");
      return false;
    }
    if (ready <= 0) {
      continue;  // Timeout re-checked at the top of the loop.
    }
    char chunk[65536];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      if (error != nullptr) {
        *error = "connection closed by server";
      }
      close(fd_);
      fd_ = -1;
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      continue;
    }
    FailWith(error, "recv");
    close(fd_);
    fd_ = -1;
    return false;
  }
}

}  // namespace threesigma::svc
