#include "src/svc/transport.h"

namespace threesigma::svc {

namespace {

bool FailWith(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

LoopbackTransport::LoopbackTransport(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

LoopbackTransport::~LoopbackTransport() = default;

std::unique_ptr<LoopbackTransport::Client> LoopbackTransport::Connect() {
  const uint64_t id = next_id_++;
  connections_[id];  // Default-construct the connection state.
  return std::make_unique<Client>(this, id);
}

LoopbackTransport::Connection* LoopbackTransport::Find(uint64_t client) {
  auto it = connections_.find(client);
  if (it == connections_.end() || !it->second.connected) {
    return nullptr;
  }
  return &it->second;
}

bool LoopbackTransport::Poll(double /*timeout_seconds*/, std::vector<InboundFrame>* frames) {
  for (auto& [id, conn] : connections_) {
    if (!conn.connected) {
      continue;
    }
    std::string payload;
    std::string error;
    for (;;) {
      const FrameResult r =
          ExtractFrame(conn.inbound, &conn.inbound_offset, &payload, max_frame_bytes_, &error);
      if (r == FrameResult::kFrame) {
        frames->push_back(InboundFrame{id, std::move(payload)});
        payload.clear();
        continue;
      }
      if (r == FrameResult::kError) {
        conn.connected = false;
      }
      break;
    }
    // Reclaim consumed bytes once the buffer is fully parsed.
    if (conn.inbound_offset == conn.inbound.size()) {
      conn.inbound.clear();
      conn.inbound_offset = 0;
    }
  }
  return true;
}

void LoopbackTransport::Send(uint64_t client, std::string_view payload) {
  Connection* conn = Find(client);
  if (conn == nullptr) {
    return;
  }
  conn->replies.emplace_back(payload);
}

size_t LoopbackTransport::ActiveConnections() const {
  size_t active = 0;
  for (const auto& [id, conn] : connections_) {
    if (conn.connected) {
      ++active;
    }
  }
  return active;
}

void LoopbackTransport::Disconnect(uint64_t client) {
  Connection* conn = Find(client);
  if (conn != nullptr) {
    conn->connected = false;
  }
}

LoopbackTransport::Client::Client(LoopbackTransport* transport, uint64_t id)
    : transport_(transport), id_(id) {}

LoopbackTransport::Client::~Client() {
  transport_->Disconnect(id_);
}

bool LoopbackTransport::Client::connected() const {
  auto it = transport_->connections_.find(id_);
  return it != transport_->connections_.end() && it->second.connected;
}

bool LoopbackTransport::Client::SendFrame(std::string_view payload, std::string* error) {
  Connection* conn = transport_->Find(id_);
  if (conn == nullptr) {
    return FailWith(error, "loopback connection closed");
  }
  if (payload.size() > transport_->max_frame_bytes_) {
    return FailWith(error, "frame exceeds max_frame_bytes");
  }
  AppendFrame(&conn->inbound, payload);
  return true;
}

bool LoopbackTransport::Client::RecvFrame(std::string* payload, double /*timeout_seconds*/,
                                          std::string* error) {
  for (int pumps = 0; pumps <= max_pumps_; ++pumps) {
    Connection* conn = transport_->Find(id_);
    if (conn == nullptr) {
      return FailWith(error, "loopback connection closed");
    }
    if (!conn->replies.empty()) {
      *payload = std::move(conn->replies.front());
      conn->replies.pop_front();
      return true;
    }
    if (!pump_) {
      return FailWith(error, "no reply queued and no pump installed");
    }
    pump_();
  }
  return FailWith(error, "loopback recv timed out (pump made no progress)");
}

}  // namespace threesigma::svc
