#include "src/svc/wire.h"

#include <cstring>

#include "src/snapshot/snapshot_io.h"

namespace threesigma::svc {

namespace {

bool FailWith(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

void WriteJobStatusInfo(SnapshotWriter& writer, const JobStatusInfo& info) {
  writer.WriteU8(static_cast<uint8_t>(info.status));
  writer.WriteDouble(info.submit_time);
  writer.WriteDouble(info.start_time);
  writer.WriteDouble(info.finish_time);
  writer.WriteVarI64(info.group);
  writer.WriteVarI64(info.preemptions);
  writer.WriteBool(info.arrived);
}

bool ReadJobStatusInfo(SnapshotReader& reader, JobStatusInfo* info) {
  const uint8_t status = reader.ReadU8();
  if (status > static_cast<uint8_t>(JobStatus::kUnfinished)) {
    return false;
  }
  info->status = static_cast<JobStatus>(status);
  info->submit_time = reader.ReadDouble();
  info->start_time = reader.ReadDouble();
  info->finish_time = reader.ReadDouble();
  info->group = static_cast<int>(reader.ReadVarI64());
  info->preemptions = static_cast<int>(reader.ReadVarI64());
  info->arrived = reader.ReadBool();
  return reader.ok();
}

void WriteSimStateInfo(SnapshotWriter& writer, const SimStateInfo& info) {
  writer.WriteDouble(info.now);
  writer.WriteVarU64(info.cycles_completed);
  writer.WriteVarI64(info.total_jobs);
  writer.WriteVarI64(info.pending_jobs);
  writer.WriteVarI64(info.running_jobs);
  writer.WriteVarI64(info.completed_jobs);
  writer.WriteVarI64(info.abandoned_jobs);
  writer.WriteVarI64(info.total_nodes);
  writer.WriteVarI64(info.available_nodes);
  writer.WriteVarI64(info.free_nodes);
  writer.WriteBool(info.drained);
}

void ReadSimStateInfo(SnapshotReader& reader, SimStateInfo* info) {
  info->now = reader.ReadDouble();
  info->cycles_completed = reader.ReadVarU64();
  info->total_jobs = reader.ReadVarI64();
  info->pending_jobs = reader.ReadVarI64();
  info->running_jobs = reader.ReadVarI64();
  info->completed_jobs = reader.ReadVarI64();
  info->abandoned_jobs = reader.ReadVarI64();
  info->total_nodes = static_cast<int>(reader.ReadVarI64());
  info->available_nodes = static_cast<int>(reader.ReadVarI64());
  info->free_nodes = static_cast<int>(reader.ReadVarI64());
  info->drained = reader.ReadBool();
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kSubmitJob:
      return "submit_job";
    case Verb::kJobStatus:
      return "job_status";
    case Verb::kCancelJob:
      return "cancel_job";
    case Verb::kClusterState:
      return "cluster_state";
    case Verb::kMetricsDump:
      return "metrics_dump";
    case Verb::kTriggerCheckpoint:
      return "trigger_checkpoint";
    case Verb::kShutdown:
      return "shutdown";
    case Verb::kWhatIf:
      return "whatif";
    case Verb::kAdvisorStatus:
      return "advisor_status";
  }
  return "unknown";
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kRetryLater:
      return "retry_later";
    case StatusCode::kMalformed:
      return "malformed";
    case StatusCode::kUnknownVerb:
      return "unknown_verb";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kShuttingDown:
      return "shutting_down";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string EncodeRequest(const Request& request) {
  SnapshotWriter writer;
  writer.BeginSection("req", 1);
  writer.WriteU8(static_cast<uint8_t>(request.verb));
  writer.WriteVarU64(request.request_id);
  switch (request.verb) {
    case Verb::kSubmitJob:
      writer.WriteString(request.token);
      request.job.SaveState(writer);
      break;
    case Verb::kJobStatus:
    case Verb::kCancelJob:
      writer.WriteVarI64(request.job_id);
      break;
    case Verb::kShutdown:
      writer.WriteBool(request.drain);
      break;
    case Verb::kWhatIf:
      writer.WriteString(request.scenarios);
      writer.WriteVarI64(request.horizon);
      break;
    case Verb::kClusterState:
    case Verb::kMetricsDump:
    case Verb::kTriggerCheckpoint:
    case Verb::kAdvisorStatus:
      break;
  }
  writer.EndSection();
  return writer.Finish();
}

bool DecodeRequest(const std::string& payload, Request* out, std::string* error) {
  *out = Request();
  SnapshotReader reader(payload);
  if (!reader.ok()) {
    return FailWith(error, reader.error());
  }
  uint32_t version = 0;
  if (!reader.BeginSection("req", &version)) {
    return FailWith(error, reader.error());
  }
  if (version != 1) {
    return FailWith(error, "unsupported request version");
  }
  const uint8_t verb = reader.ReadU8();
  if (!reader.ok() || verb < static_cast<uint8_t>(Verb::kSubmitJob) ||
      verb > static_cast<uint8_t>(Verb::kAdvisorStatus)) {
    return FailWith(error, "unknown request verb");
  }
  out->verb = static_cast<Verb>(verb);
  out->request_id = reader.ReadVarU64();
  switch (out->verb) {
    case Verb::kSubmitJob:
      out->token = reader.ReadString();
      out->job.RestoreState(reader);
      break;
    case Verb::kJobStatus:
    case Verb::kCancelJob:
      out->job_id = reader.ReadVarI64();
      break;
    case Verb::kShutdown:
      out->drain = reader.ReadBool();
      break;
    case Verb::kWhatIf:
      out->scenarios = reader.ReadString();
      out->horizon = reader.ReadVarI64();
      break;
    case Verb::kClusterState:
    case Verb::kMetricsDump:
    case Verb::kTriggerCheckpoint:
    case Verb::kAdvisorStatus:
      break;
  }
  reader.EndSection();
  if (!reader.ok()) {
    return FailWith(error, reader.error().empty() ? "malformed request" : reader.error());
  }
  return true;
}

std::string EncodeReply(const Reply& reply) {
  SnapshotWriter writer;
  writer.BeginSection("rep", 1);
  writer.WriteU8(static_cast<uint8_t>(reply.code));
  writer.WriteVarU64(reply.request_id);
  writer.WriteString(reply.message);
  writer.WriteVarI64(reply.job_id);
  WriteJobStatusInfo(writer, reply.job);
  WriteSimStateInfo(writer, reply.cluster);
  writer.WriteVarU64(reply.queue_depth);
  writer.WriteString(reply.text);
  writer.EndSection();
  return writer.Finish();
}

bool DecodeReply(const std::string& payload, Reply* out, std::string* error) {
  *out = Reply();
  SnapshotReader reader(payload);
  if (!reader.ok()) {
    return FailWith(error, reader.error());
  }
  uint32_t version = 0;
  if (!reader.BeginSection("rep", &version)) {
    return FailWith(error, reader.error());
  }
  if (version != 1) {
    return FailWith(error, "unsupported reply version");
  }
  const uint8_t code = reader.ReadU8();
  if (!reader.ok() || code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return FailWith(error, "unknown reply status code");
  }
  out->code = static_cast<StatusCode>(code);
  out->request_id = reader.ReadVarU64();
  out->message = reader.ReadString();
  out->job_id = reader.ReadVarI64();
  if (!ReadJobStatusInfo(reader, &out->job)) {
    return FailWith(error, "malformed reply job status");
  }
  ReadSimStateInfo(reader, &out->cluster);
  out->queue_depth = reader.ReadVarU64();
  out->text = reader.ReadString();
  reader.EndSection();
  if (!reader.ok()) {
    return FailWith(error, reader.error().empty() ? "malformed reply" : reader.error());
  }
  return true;
}

void AppendFrame(std::string* out, std::string_view payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(length & 0xff);
  prefix[1] = static_cast<char>((length >> 8) & 0xff);
  prefix[2] = static_cast<char>((length >> 16) & 0xff);
  prefix[3] = static_cast<char>((length >> 24) & 0xff);
  out->append(prefix, 4);
  out->append(payload.data(), payload.size());
}

FrameResult ExtractFrame(const std::string& buffer, size_t* offset, std::string* payload,
                         size_t max_frame_bytes, std::string* error) {
  const size_t available = buffer.size() - *offset;
  if (available < 4) {
    return FrameResult::kNeedMore;
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buffer.data() + *offset);
  const uint32_t length = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length == 0 || length > max_frame_bytes) {
    FailWith(error, "frame length out of range");
    return FrameResult::kError;
  }
  if (available - 4 < length) {
    return FrameResult::kNeedMore;
  }
  payload->assign(buffer, *offset + 4, length);
  *offset += 4 + static_cast<size_t>(length);
  return FrameResult::kFrame;
}

}  // namespace threesigma::svc
