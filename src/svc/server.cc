#include "src/svc/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace threesigma::svc {

namespace {

// RPC handling wall latency buckets: 1 µs .. 1 s.
const std::vector<double>& RpcLatencyEdges() {
  static const std::vector<double> edges = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
  return edges;
}

SimOptions ForceOpenWorkload(SimOptions sim) {
  sim.open_workload = true;
  return sim;
}

}  // namespace

Server::Server(const ClusterConfig& cluster, Scheduler* scheduler, SimOptions sim,
               ServiceOptions options, ServerTransport* transport)
    : cluster_(cluster),
      options_(std::move(options)),
      transport_(transport),
      sim_(cluster, scheduler, {}, ForceOpenWorkload(std::move(sim))) {
  sim_.SetStateExtension(this);
  auto& registry = obs::MetricsRegistry::Global();
  for (const Verb verb :
       {Verb::kSubmitJob, Verb::kJobStatus, Verb::kCancelJob, Verb::kClusterState,
        Verb::kMetricsDump, Verb::kTriggerCheckpoint, Verb::kShutdown, Verb::kWhatIf,
        Verb::kAdvisorStatus}) {
    verb_counters_[verb] = registry.GetCounter(std::string("svc.rpc.") + VerbName(verb));
  }
  malformed_frames_ = registry.GetCounter("svc.malformed_frames");
  retry_later_ = registry.GetCounter("svc.retry_later");
  admitted_ = registry.GetCounter("svc.admitted");
  injected_ = registry.GetCounter("svc.injected");
  duplicate_tokens_ = registry.GetCounter("svc.duplicate_tokens");
  queue_depth_gauge_ = registry.GetGauge("svc.admission_queue_depth");
  rpc_wall_seconds_ = registry.GetHistogram("svc.rpc_wall_seconds", RpcLatencyEdges());
}

Server::~Server() {
  sim_.SetStateExtension(nullptr);
}

bool Server::RestoreFromFile(const std::string& path, std::string* error) {
  if (!sim_.TryResumeFrom(path, error)) {
    return false;
  }
  UpdateQueueGauge();
  return true;
}

void Server::UpdateQueueGauge() {
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
}

bool Server::IdInUse(JobId id) {
  if (queued_ids_.count(id) > 0 || cancelled_before_injection_.count(id) > 0) {
    return true;
  }
  JobStatusInfo info;
  return sim_.QueryJob(id, &info);
}

void Server::HandleReady() {
  std::vector<InboundFrame> frames;
  transport_->Poll(options_.poll_timeout_seconds, &frames);
  for (const InboundFrame& frame : frames) {
    HandleFrame(frame);
    if (stopped_) {
      break;  // Immediate shutdown: later frames die with the connection.
    }
  }
  InjectBatch();
  if (draining_ && queue_.empty() && !submissions_closed_) {
    sim_.CloseSubmissions();
    submissions_closed_ = true;
  }
}

void Server::HandleFrame(const InboundFrame& frame) {
  const auto start = std::chrono::steady_clock::now();
  Request request;
  std::string error;
  Reply reply;
  if (!DecodeRequest(frame.payload, &request, &error)) {
    malformed_frames_->Increment();
    reply.code = StatusCode::kMalformed;
    reply.message = error;
  } else {
    verb_counters_[request.verb]->Increment();
    reply = Dispatch(request);
  }
  transport_->Send(frame.client, EncodeReply(reply));
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  rpc_wall_seconds_->Observe(elapsed.count());
}

Reply Server::Dispatch(const Request& request) {
  Reply reply;
  reply.request_id = request.request_id;
  switch (request.verb) {
    case Verb::kSubmitJob:
      reply = HandleSubmit(request);
      break;
    case Verb::kJobStatus:
      reply = HandleStatus(request);
      break;
    case Verb::kCancelJob:
      reply = HandleCancel(request);
      break;
    case Verb::kClusterState:
      reply = HandleClusterState(request);
      break;
    case Verb::kMetricsDump:
      reply = HandleMetricsDump(request);
      break;
    case Verb::kTriggerCheckpoint:
      reply = HandleCheckpoint(request);
      break;
    case Verb::kShutdown:
      reply = HandleShutdown(request);
      break;
    case Verb::kWhatIf:
      reply = HandleWhatIf(request);
      break;
    case Verb::kAdvisorStatus:
      reply = HandleAdvisorStatus(request);
      break;
  }
  reply.request_id = request.request_id;
  return reply;
}

Reply Server::HandleSubmit(const Request& request) {
  Reply reply;
  if (draining_ || stopped_) {
    reply.code = StatusCode::kShuttingDown;
    reply.message = "server is draining";
    return reply;
  }
  // Idempotency: a replayed token returns the originally assigned id without
  // admitting a second copy (retries and post-restore resubmissions hit this).
  if (!request.token.empty()) {
    auto it = token_to_id_.find(request.token);
    if (it != token_to_id_.end()) {
      duplicate_tokens_->Increment();
      reply.code = StatusCode::kOk;
      reply.job_id = it->second;
      reply.message = "duplicate token";
      return reply;
    }
  }
  if (request.job.num_tasks <= 0 || request.job.num_tasks > cluster_.max_group_size()) {
    reply.code = StatusCode::kInvalidArgument;
    reply.message = "gang width does not fit any node group";
    return reply;
  }
  if (queue_.size() >= options_.admission_capacity) {
    retry_later_->Increment();
    reply.code = StatusCode::kRetryLater;
    reply.message = "admission queue full";
    return reply;
  }
  JobSpec spec = request.job;
  if (spec.id == 0 || IdInUse(spec.id)) {
    while (IdInUse(next_id_)) {
      ++next_id_;
    }
    spec.id = next_id_;
  }
  next_id_ = std::max(next_id_, spec.id + 1);
  queue_.push_back(spec);
  queued_ids_.insert(spec.id);
  if (!request.token.empty()) {
    token_to_id_[request.token] = spec.id;
  }
  admitted_->Increment();
  UpdateQueueGauge();
  reply.code = StatusCode::kOk;
  reply.job_id = spec.id;
  return reply;
}

Reply Server::HandleStatus(const Request& request) {
  Reply reply;
  reply.job_id = request.job_id;
  if (queued_ids_.count(request.job_id) > 0) {
    for (const JobSpec& spec : queue_) {
      if (spec.id == request.job_id) {
        reply.job.status = JobStatus::kPending;
        reply.job.submit_time = spec.submit_time;
        reply.job.arrived = false;
        break;
      }
    }
    reply.code = StatusCode::kOk;
    return reply;
  }
  if (cancelled_before_injection_.count(request.job_id) > 0) {
    reply.job.status = JobStatus::kAbandoned;
    reply.code = StatusCode::kOk;
    return reply;
  }
  if (sim_.QueryJob(request.job_id, &reply.job)) {
    reply.code = StatusCode::kOk;
  } else {
    reply.code = StatusCode::kNotFound;
    reply.message = "no such job";
  }
  return reply;
}

Reply Server::HandleCancel(const Request& request) {
  Reply reply;
  reply.job_id = request.job_id;
  if (queued_ids_.count(request.job_id) > 0) {
    // Still in the admission queue: withdraw before the simulation ever
    // sees it. The id stays burned so token dedupe keeps resolving.
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const JobSpec& s) { return s.id == request.job_id; }),
                 queue_.end());
    queued_ids_.erase(request.job_id);
    cancelled_before_injection_.insert(request.job_id);
    UpdateQueueGauge();
    reply.code = StatusCode::kOk;
    return reply;
  }
  if (cancelled_before_injection_.count(request.job_id) > 0) {
    reply.code = StatusCode::kOk;  // Idempotent: already cancelled.
    return reply;
  }
  std::string error;
  if (sim_.CancelJob(request.job_id, &error)) {
    reply.code = StatusCode::kOk;
    return reply;
  }
  JobStatusInfo info;
  if (sim_.QueryJob(request.job_id, &info)) {
    reply.code = StatusCode::kInvalidArgument;  // Known but not cancellable.
    reply.message = error;
  } else {
    reply.code = StatusCode::kNotFound;
    reply.message = "no such job";
  }
  return reply;
}

Reply Server::HandleClusterState(const Request& /*request*/) {
  Reply reply;
  reply.code = StatusCode::kOk;
  reply.cluster = sim_.StateNow();
  reply.queue_depth = queue_.size();
  return reply;
}

Reply Server::HandleMetricsDump(const Request& /*request*/) {
  Reply reply;
  reply.code = StatusCode::kOk;
  std::ostringstream os;
  obs::MetricsRegistry::Global().WriteText(os);
  reply.text = os.str();
  return reply;
}

Reply Server::HandleCheckpoint(const Request& /*request*/) {
  Reply reply;
  if (options_.checkpoint_path.empty()) {
    reply.code = StatusCode::kInvalidArgument;
    reply.message = "server started without a checkpoint path";
    return reply;
  }
  std::string error;
  if (!sim_.WriteCheckpoint(options_.checkpoint_path, &error)) {
    reply.code = StatusCode::kInternal;
    reply.message = error;
    return reply;
  }
  last_checkpoint_cycle_ = sim_.cycles_completed();
  reply.code = StatusCode::kOk;
  reply.text = options_.checkpoint_path;
  return reply;
}

Reply Server::HandleWhatIf(const Request& request) {
  // Dispatch runs inside HandleReady, before StepCycle, so the live
  // simulation is parked at a cycle boundary — the engine's contract.
  Reply reply;
  if (whatif_ == nullptr) {
    reply.code = StatusCode::kInvalidArgument;
    reply.message = "server started without a what-if engine";
    return reply;
  }
  std::vector<Scenario> scenarios;
  std::string error;
  if (!ParseScenarioList(request.scenarios, &scenarios, &error)) {
    reply.code = StatusCode::kInvalidArgument;
    reply.message = error;
    return reply;
  }
  if (scenarios.empty()) {
    scenarios = whatif_->options().advisory_scenarios;
    if (scenarios.empty()) {
      scenarios = DefaultScenarios();
    }
  }
  const WhatIfReport report =
      whatif_->Run(sim_, scenarios, static_cast<int>(request.horizon));
  reply.code = StatusCode::kOk;
  reply.text = report.ToText();
  return reply;
}

Reply Server::HandleAdvisorStatus(const Request& /*request*/) {
  Reply reply;
  if (whatif_ == nullptr) {
    reply.code = StatusCode::kInvalidArgument;
    reply.message = "server started without a what-if engine";
    return reply;
  }
  reply.code = StatusCode::kOk;
  reply.text = whatif_->AdvisorStatusText();
  return reply;
}

Reply Server::HandleShutdown(const Request& request) {
  Reply reply;
  reply.code = StatusCode::kOk;
  if (request.drain) {
    draining_ = true;
    reply.message = "draining";
  } else {
    stopped_ = true;
    reply.message = "stopping immediately";
  }
  return reply;
}

void Server::InjectBatch() {
  size_t injected = 0;
  while (!queue_.empty() && injected < options_.max_batch_per_cycle) {
    JobSpec spec = std::move(queue_.front());
    queue_.pop_front();
    queued_ids_.erase(spec.id);
    std::string error;
    const bool ok = sim_.InjectJob(std::move(spec), &error);
    TS_CHECK_MSG(ok, "admission-validated job rejected by the simulator: " + error);
    injected_->Increment();
    ++injected;
  }
  if (injected > 0) {
    UpdateQueueGauge();
  }
}

bool Server::StepCycle() {
  if (sim_.drained()) {
    return false;
  }
  const bool stepped = sim_.Step();
  if (stepped) {
    // Advisory sweeps run at the just-completed cycle boundary, before the
    // checkpoint — so the checkpointed advisor state includes the sweep and
    // a resumed run does not re-advise the same cycle.
    if (whatif_ != nullptr) {
      whatif_->MaybeAdvise(sim_, sim_.cycles_completed());
    }
    MaybeCheckpoint();
  }
  return stepped;
}

void Server::MaybeCheckpoint() {
  if (options_.checkpoint_every_cycles <= 0 || options_.checkpoint_path.empty()) {
    return;
  }
  const uint64_t cycles = sim_.cycles_completed();
  if (cycles < last_checkpoint_cycle_ + static_cast<uint64_t>(options_.checkpoint_every_cycles)) {
    return;
  }
  std::string error;
  const bool ok = sim_.WriteCheckpoint(options_.checkpoint_path, &error);
  TS_CHECK_MSG(ok, "periodic checkpoint failed: " + error);
  last_checkpoint_cycle_ = cycles;
}

bool Server::PollOnce() {
  if (stopped_) {
    return false;
  }
  HandleReady();
  if (stopped_) {
    return false;
  }
  StepCycle();
  if (draining_ && sim_.drained()) {
    // Linger so polling clients can observe the drained state; exit as soon
    // as every connection has closed.
    const double now = std::chrono::duration<double>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
    if (linger_until_ == 0.0) {
      linger_until_ = now + options_.drain_linger_seconds;
    }
    if (transport_->ActiveConnections() == 0 || now >= linger_until_) {
      stopped_ = true;
      return false;
    }
  }
  return true;
}

void Server::Serve() {
  while (PollOnce()) {
  }
}

void Server::SaveState(SnapshotWriter& writer) const {
  writer.BeginSection("svc", 1);
  writer.WriteVarI64(next_id_);
  writer.WriteBool(draining_);
  writer.WriteBool(submissions_closed_);
  writer.WriteVarU64(queue_.size());
  for (const JobSpec& spec : queue_) {
    spec.SaveState(writer);
  }
  writer.WriteVarU64(token_to_id_.size());
  for (const auto& [token, id] : token_to_id_) {
    writer.WriteString(token);
    writer.WriteVarI64(id);
  }
  writer.WriteVarU64(cancelled_before_injection_.size());
  for (const JobId id : cancelled_before_injection_) {
    writer.WriteVarI64(id);
  }
  writer.EndSection();
  if (whatif_ != nullptr) {
    whatif_->SaveState(writer);  // Versioned "twin" section.
  }
}

void Server::RestoreState(SnapshotReader& reader) {
  reader.BeginSection("svc");
  next_id_ = reader.ReadVarI64();
  draining_ = reader.ReadBool();
  submissions_closed_ = reader.ReadBool();
  queue_.clear();
  queued_ids_.clear();
  const uint64_t num_queued = reader.ReadVarCount(8);
  for (uint64_t i = 0; reader.ok() && i < num_queued; ++i) {
    JobSpec spec;
    spec.RestoreState(reader);
    queued_ids_.insert(spec.id);
    queue_.push_back(std::move(spec));
  }
  token_to_id_.clear();
  const uint64_t num_tokens = reader.ReadVarCount(2);
  for (uint64_t i = 0; reader.ok() && i < num_tokens; ++i) {
    std::string token = reader.ReadString();
    const JobId id = reader.ReadVarI64();
    token_to_id_[std::move(token)] = id;
  }
  cancelled_before_injection_.clear();
  const uint64_t num_cancelled = reader.ReadVarCount(1);
  for (uint64_t i = 0; reader.ok() && i < num_cancelled; ++i) {
    cancelled_before_injection_.insert(reader.ReadVarI64());
  }
  reader.EndSection();
  // Older snapshots (or runs without the engine) have no "twin" section;
  // reading is gated on both sides so either combination restores cleanly.
  if (whatif_ != nullptr && reader.ok() && reader.PeekSectionName() == "twin") {
    whatif_->RestoreState(reader);
  }
}

}  // namespace threesigma::svc
