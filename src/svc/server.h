// Online scheduling service: an open-workload Simulator behind an RPC server.
//
// The server turns the batch simulator into a long-running daemon. Clients
// submit jobs, query status, and pull cluster state over any ServerTransport;
// the server admits submissions into a bounded queue (explicit kRetryLater
// backpressure — nothing is ever dropped silently), injects them into the
// simulation in batches between scheduling cycles, and steps the simulation
// forward as fast as events allow.
//
// Determinism. Every scheduling decision is a pure function of the admitted
// job sequence: a scripted loopback session replays byte-identically across
// runs and solver thread counts (tests/svc_property_test.cc proves a
// service-fed run equals the batch run on the same jobs).
//
// Durability. The server piggybacks its own state — admission queue, next
// job id, idempotency token table — onto simulator checkpoints via
// SimulatorStateExtension, so one snapshot file restarts the whole service:
// kill the process, restore, and resubmitting the same tokens dedupes
// instead of duplicating work.

#ifndef SRC_SVC_SERVER_H_
#define SRC_SVC_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/sim/simulator.h"
#include "src/svc/transport.h"
#include "src/svc/wire.h"
#include "src/twin/twin.h"

namespace threesigma::svc {

struct ServiceOptions {
  // Admission queue bound; a full queue answers kRetryLater.
  size_t admission_capacity = 1024;
  // Max submissions injected into the simulation per service iteration, so
  // one burst cannot starve RPC handling.
  size_t max_batch_per_cycle = 256;
  // Transport poll timeout per iteration (socket transports block this long
  // when idle; the loopback ignores it).
  double poll_timeout_seconds = 0.05;
  // Periodic checkpointing: every `checkpoint_every_cycles` completed cycles
  // the full service state is written to `checkpoint_path` (0 = off). The
  // TriggerCheckpoint RPC uses the same path.
  std::string checkpoint_path;
  int64_t checkpoint_every_cycles = 0;
  // After a drain completes, keep answering (read-only) RPCs this long so
  // polling clients observe the drained state before the daemon exits; the
  // server exits early once every connection has closed.
  double drain_linger_seconds = 5.0;
};

class Server : public SimulatorStateExtension {
 public:
  // `scheduler` and `transport` must outlive the server; `cluster` must
  // outlive the internal simulator. `sim.open_workload` is forced on.
  Server(const ClusterConfig& cluster, Scheduler* scheduler, SimOptions sim,
         ServiceOptions options, ServerTransport* transport);
  ~Server() override;

  // Attaches the digital-twin what-if engine (not owned; must outlive the
  // server). Enables the kWhatIf / kAdvisorStatus verbs, the periodic
  // advisory hook, and the "twin" checkpoint section. Attach before any
  // RestoreFromFile so a checkpointed advisor state round-trips.
  void AttachWhatIfEngine(WhatIfEngine* engine) { whatif_ = engine; }

  // Restores a checkpoint written by this service (simulator + scheduler +
  // the "svc" section). Must be called before the first PollOnce.
  bool RestoreFromFile(const std::string& path, std::string* error);

  // RPC half of one iteration: polls the transport, answers every complete
  // frame, injects one admission batch, and closes simulator submissions
  // once a drain has emptied the queue. Never steps the simulation — the
  // deterministic loopback pump uses exactly this.
  void HandleReady();

  // Simulation half: advances at most one scheduling cycle, then writes a
  // periodic checkpoint if one is due. False when no cycle could be stepped.
  bool StepCycle();

  // One full service iteration. False once the server is finished (an
  // immediate shutdown, or a drain that has fully played out).
  bool PollOnce();

  // Runs PollOnce until the server is finished (the daemon main loop).
  void Serve();

  // SimulatorStateExtension — the "svc" checkpoint section.
  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

  bool draining() const { return draining_; }
  bool stopped() const { return stopped_; }
  size_t queue_depth() const { return queue_.size(); }
  Simulator& simulator() { return sim_; }

 private:
  void HandleFrame(const InboundFrame& frame);
  Reply Dispatch(const Request& request);
  Reply HandleSubmit(const Request& request);
  Reply HandleStatus(const Request& request);
  Reply HandleCancel(const Request& request);
  Reply HandleClusterState(const Request& request);
  Reply HandleMetricsDump(const Request& request);
  Reply HandleCheckpoint(const Request& request);
  Reply HandleShutdown(const Request& request);
  Reply HandleWhatIf(const Request& request);
  Reply HandleAdvisorStatus(const Request& request);

  // A job id is taken if the simulation, the admission queue, or the
  // cancelled-before-injection set knows it.
  bool IdInUse(JobId id);
  void InjectBatch();
  void MaybeCheckpoint();
  void UpdateQueueGauge();

  const ClusterConfig& cluster_;
  ServiceOptions options_;
  ServerTransport* transport_;
  Simulator sim_;
  WhatIfEngine* whatif_ = nullptr;  // Not owned; null = twin verbs disabled.

  // Admission state (checkpointed via the "svc" section).
  std::deque<JobSpec> queue_;            // Admitted, not yet injected.
  std::set<JobId> queued_ids_;
  std::map<std::string, JobId> token_to_id_;  // Idempotent submission dedupe.
  std::set<JobId> cancelled_before_injection_;
  JobId next_id_ = 1;
  bool draining_ = false;

  // Runtime-only state.
  bool stopped_ = false;
  bool submissions_closed_ = false;
  uint64_t last_checkpoint_cycle_ = 0;
  double linger_until_ = 0.0;  // Monotonic deadline; 0 = drain not seen yet.

  // Observability handles (obtained once; see src/obs/registry.h).
  std::map<Verb, obs::Counter*> verb_counters_;
  obs::Counter* malformed_frames_;
  obs::Counter* retry_later_;
  obs::Counter* admitted_;
  obs::Counter* injected_;
  obs::Counter* duplicate_tokens_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* rpc_wall_seconds_;
};

}  // namespace threesigma::svc

#endif  // SRC_SVC_SERVER_H_
