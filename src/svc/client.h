// svc::Client — the service's client library.
//
// Wraps a ClientChannel with the retry discipline a well-behaved tenant
// needs: idempotent submission tokens (safe to resend after any failure),
// deadline-bounded requests, and capped exponential backoff on transport
// errors and kRetryLater backpressure. Works unmodified over the socket
// channel and the deterministic loopback (whose RecvFrame pumps the server
// instead of blocking).

#ifndef SRC_SVC_CLIENT_H_
#define SRC_SVC_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/svc/transport.h"
#include "src/svc/wire.h"

namespace threesigma::svc {

struct ClientOptions {
  // Per-attempt receive timeout.
  double request_timeout_seconds = 5.0;
  // Total attempts per Call (first try + retries).
  int max_attempts = 8;
  // Exponential backoff between attempts: initial * multiplier^(attempt-1),
  // capped. See BackoffDelay.
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_cap_seconds = 2.0;
  // Overall wall-clock budget per Call; 0 = attempts alone bound it.
  double deadline_seconds = 60.0;
  // False disables the actual sleep between attempts (deterministic tests);
  // the retry/backoff accounting is unchanged.
  bool sleep_on_backoff = true;
};

// Delay before retry number `attempt` (1-based): capped exponential.
double BackoffDelay(int attempt, const ClientOptions& options);

class Client {
 public:
  // `channel` must outlive the client.
  explicit Client(ClientChannel* channel, ClientOptions options = {});

  // Installed hook is invoked on a dead channel before the next attempt and
  // returns a replacement channel (or null to keep failing). The client does
  // not own channels either way.
  void SetReconnect(std::function<ClientChannel*()> reconnect);

  // Sends `request` until a matching decoded reply arrives; retries on
  // transport errors, garbled replies, and kRetryLater. True means `*reply`
  // holds the server's answer (whose code may still be an application error
  // like kNotFound).
  bool Call(Request request, Reply* reply, std::string* error);

  // Verb wrappers; all map a non-kOk reply to false + `*error`.
  // SubmitJob: `token` makes retries idempotent; `*assigned_id` receives the
  // server-assigned job id.
  bool SubmitJob(const JobSpec& job, const std::string& token, JobId* assigned_id,
                 std::string* error);
  bool QueryJob(JobId id, JobStatusInfo* info, std::string* error);
  bool CancelJob(JobId id, std::string* error);
  bool GetClusterState(SimStateInfo* state, uint64_t* queue_depth, std::string* error);
  bool DumpMetrics(std::string* text, std::string* error);
  bool TriggerCheckpoint(std::string* path, std::string* error);
  bool Shutdown(bool drain, std::string* error);
  // WhatIf: runs a speculative scenario sweep on the server (`scenarios` in
  // the src/twin text format, empty = server default; `horizon` cycles per
  // scenario, 0 = server default) and returns the deterministic report text.
  bool WhatIf(const std::string& scenarios, int64_t horizon, std::string* report,
              std::string* error);
  bool AdvisorStatus(std::string* text, std::string* error);

  // Attempts beyond the first across all Calls (observability for loadgen).
  int64_t total_retries() const { return total_retries_; }

 private:
  ClientChannel* channel_;
  ClientOptions options_;
  std::function<ClientChannel*()> reconnect_;
  uint64_t next_request_id_ = 1;
  int64_t total_retries_ = 0;
};

}  // namespace threesigma::svc

#endif  // SRC_SVC_CLIENT_H_
