// Runtime predictors (Fig. 4's 3σPredict component and its stand-ins).
//
// ThreeSigmaPredictor is the paper's 3σPredict: per-feature runtime histories
// with four point estimators each, NMAE-ranked; the winning expert supplies
// both the runtime *distribution* (its feature's histogram) for 3σSched and
// the *point estimate* for PointRealEst (which is exactly the JVuPredict
// scheme the paper measures in §2.1).
//
// PerfectPredictor is the PointPerfEst oracle: the true runtime as a point
// mass. SyntheticPredictor reproduces the Fig. 9 study: hand-shaped normal
// distributions N(runtime·(1+shift), runtime·CoV) around the true runtime.

#ifndef SRC_PREDICT_PREDICTOR_H_
#define SRC_PREDICT_PREDICTOR_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/predict/feature_history.h"
#include "src/predict/prediction.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

class RuntimePredictor {
 public:
  virtual ~RuntimePredictor() = default;

  // Predicts the runtime distribution for a job with the given features.
  // `true_runtime` is the simulator's ground truth; only oracle/synthetic
  // predictors may read it (history-based predictors must ignore it).
  virtual RuntimePrediction Predict(const JobFeatures& features, double true_runtime) = 0;

  // Feeds a completed job's runtime back into the history (step 4 of Fig. 4).
  virtual void RecordCompletion(const JobFeatures& features, double runtime) = 0;

  // Snapshot codec hooks: raw payload within the caller's section, prefixed
  // by a kind tag so a mismatched predictor configuration fails loudly on
  // restore rather than silently misreading the payload. Wrappers recurse to
  // their inner predictor. The default is for stateless predictors.
  virtual void SaveState(SnapshotWriter& writer) const;
  virtual void RestoreState(SnapshotReader& reader);
};

struct ThreeSigmaPredictorOptions {
  FeatureHistoryOptions history;
  // Cold-start point estimate when no feature has any history.
  double default_runtime = 300.0;
  // Minimum completions a feature needs before its distribution is eligible.
  size_t min_history = 1;
};

class ThreeSigmaPredictor : public RuntimePredictor {
 public:
  explicit ThreeSigmaPredictor(const ThreeSigmaPredictorOptions& options = {});

  RuntimePrediction Predict(const JobFeatures& features, double true_runtime) override;
  void RecordCompletion(const JobFeatures& features, double runtime) override;

  // Number of tracked feature-value histories (memory diagnostic; §4.1
  // promises constant memory per feature-value).
  size_t history_count() const { return histories_.size(); }
  // Read access for tests/examples; nullptr when untracked.
  const FeatureHistory* history(const std::string& feature) const;

  // Persistence support (predict/predictor_io.h).
  const std::unordered_map<std::string, FeatureHistory>& histories() const {
    return histories_;
  }
  void RestoreHistory(const std::string& feature, FeatureHistory history);
  void ClearHistories() { histories_.clear(); }

  // Serializes every feature history (sorted by key for determinism).
  // RestoreState replaces all histories wholesale, so pre-training done
  // before a resume cannot double-count.
  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

 private:
  ThreeSigmaPredictorOptions options_;
  std::unordered_map<std::string, FeatureHistory> histories_;
};

// The PointPerfEst oracle: exact runtime, zero variance.
class PerfectPredictor : public RuntimePredictor {
 public:
  RuntimePrediction Predict(const JobFeatures& features, double true_runtime) override;
  void RecordCompletion(const JobFeatures& features, double runtime) override;
};

// Freezes each job population's history at `cap` samples: completions for a
// (user|jobname) pair beyond the cap are dropped. Implements the Fig. 11
// E2E-SAMPLE-n study, which controls "the number of samples comprising the
// distributions used by 3Sigma".
class SampleCapPredictor : public RuntimePredictor {
 public:
  // `inner` must outlive this predictor.
  SampleCapPredictor(RuntimePredictor* inner, int cap);

  RuntimePrediction Predict(const JobFeatures& features, double true_runtime) override;
  void RecordCompletion(const JobFeatures& features, double runtime) override;

  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

 private:
  RuntimePredictor* inner_;
  int cap_;
  std::unordered_map<std::string, int> counts_;
};

// The "stochastic scheduler" baseline of §2.2 ([22], Schopf & Berman):
// point estimates padded by `k` standard deviations of the predicted
// distribution. Wraps a history-based predictor; the padded point is also
// returned as the distribution (a point mass), so schedulers consuming it
// behave like conservative point schedulers.
class PaddedPointPredictor : public RuntimePredictor {
 public:
  // `inner` must outlive this predictor.
  PaddedPointPredictor(RuntimePredictor* inner, double padding_stddevs);

  RuntimePrediction Predict(const JobFeatures& features, double true_runtime) override;
  void RecordCompletion(const JobFeatures& features, double runtime) override;

  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

 private:
  RuntimePredictor* inner_;
  double padding_stddevs_;
};

// Fig. 9's synthetic distributions: ~N(µ = runtime·(1 + shift), σ =
// runtime·cov), where the per-job shift is itself drawn ~N(shift, 0.1). With
// cov == 0 this produces the "point" curve of Fig. 9.
class SyntheticPredictor : public RuntimePredictor {
 public:
  SyntheticPredictor(double shift, double cov, uint64_t seed);

  RuntimePrediction Predict(const JobFeatures& features, double true_runtime) override;
  void RecordCompletion(const JobFeatures& features, double runtime) override;

  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

 private:
  double shift_;
  double cov_;
  Rng rng_;
};

}  // namespace threesigma

#endif  // SRC_PREDICT_PREDICTOR_H_
