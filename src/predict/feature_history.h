// Per-feature-value runtime history: the paper's "expert" machinery (§4.1).
//
// Every feature value (e.g. user=alice) keeps
//   - an approximate runtime histogram (streaming, ≤80 bins),
//   - four point estimators: (a) average, (b) median, (c) rolling
//     exponentially-weighted average with α = 0.6, (d) average of the X most
//     recent runtimes,
//   - a streaming NMAE score per estimator, accumulated by scoring each
//     estimator against every new completion *before* folding it in.
// Memory is constant per feature-value: the average and NMAE accumulators are
// streaming, and the median is computed over a bounded recent window (the
// paper's "recent values as a proxy for the actual median").

#ifndef SRC_PREDICT_FEATURE_HISTORY_H_
#define SRC_PREDICT_FEATURE_HISTORY_H_

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "src/common/stats.h"
#include "src/histogram/stream_histogram.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

enum class ExpertKind {
  kAverage = 0,
  kMedian = 1,
  kRolling = 2,
  kRecentAverage = 3,
};

inline constexpr size_t kNumExperts = 4;

const char* ExpertKindName(ExpertKind kind);

struct FeatureHistoryOptions {
  size_t max_histogram_bins = 80;
  double rolling_alpha = 0.6;
  // X in "average of X recent job runtimes"; also the median-proxy window.
  size_t recent_window = 20;
};

class FeatureHistory {
 public:
  explicit FeatureHistory(const FeatureHistoryOptions& options = {});

  // Scores every seeded expert against `runtime`, then absorbs it.
  void Record(double runtime);

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Current point estimate of the given expert; only valid once seeded.
  double Estimate(ExpertKind kind) const;
  bool Seeded(ExpertKind kind) const;

  // Streaming NMAE of the expert's past estimates; experts that have never
  // been scored return +infinity so they lose every comparison.
  double NmaeScore(ExpertKind kind) const;
  // Number of (estimate, actual) pairs folded into the NMAE score.
  size_t NmaeSamples(ExpertKind kind) const;

  // The expert with the lowest NMAE (ties break toward the smaller enum, the
  // paper does not specify); falls back to kAverage when none were scored yet.
  ExpertKind BestExpert() const;

  const StreamHistogram& histogram() const { return histogram_; }

  // Persistence (predict/predictor_io.h): exact text round-trip of all
  // streaming state. Legacy v1 format, kept so old predictor files load.
  void SaveTo(std::ostream& os) const;
  // Returns false on malformed input.
  bool LoadFrom(std::istream& is);

  // Snapshot codec hooks (the v2 binary format): exact round-trip of the
  // same streaming state, composable into a parent section.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  struct NmaeAccumulator {
    double abs_error = 0.0;
    double actual_sum = 0.0;
    size_t samples = 0;
  };

  FeatureHistoryOptions options_;
  size_t count_ = 0;
  StreamHistogram histogram_;
  RunningStats average_;
  EwmaEstimator rolling_;
  RecentWindow recent_;
  std::array<NmaeAccumulator, kNumExperts> nmae_;
};

}  // namespace threesigma

#endif  // SRC_PREDICT_FEATURE_HISTORY_H_
