#include "src/predict/predictor.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

// Every predictor's payload starts with its kind tag; restoring through a
// differently-configured predictor graph is a hard error, not silent drift.
void CheckKindTag(SnapshotReader& reader, const char* expected) {
  const std::string tag = reader.ReadString();
  if (reader.ok()) {
    TS_CHECK_MSG(tag == expected,
                 "snapshot predictor kind '" << tag << "' does not match configured '"
                                             << expected << "'");
  }
}

}  // namespace

void RuntimePredictor::SaveState(SnapshotWriter& writer) const {
  writer.WriteString("stateless");
}

void RuntimePredictor::RestoreState(SnapshotReader& reader) {
  CheckKindTag(reader, "stateless");
}

ThreeSigmaPredictor::ThreeSigmaPredictor(const ThreeSigmaPredictorOptions& options)
    : options_(options) {}

void ThreeSigmaPredictor::RestoreHistory(const std::string& feature, FeatureHistory history) {
  histories_.insert_or_assign(feature, std::move(history));
}

const FeatureHistory* ThreeSigmaPredictor::history(const std::string& feature) const {
  const auto it = histories_.find(feature);
  return it == histories_.end() ? nullptr : &it->second;
}

RuntimePrediction ThreeSigmaPredictor::Predict(const JobFeatures& features,
                                               double /*true_runtime*/) {
  // Predictions happen on the driver thread (arrival and restart handling),
  // so a phase span is safe here; it nests inside kSimEvents event spans.
  TS_OBS_SPAN("predict.lookup", obs::Phase::kPredict);
  // Rank every (feature-value, estimator) expert by NMAE and pick the best
  // (§4.1). The winning feature's histogram becomes the distribution.
  const FeatureHistory* best_history = nullptr;
  std::string best_feature;
  ExpertKind best_expert = ExpertKind::kAverage;
  double best_score = std::numeric_limits<double>::infinity();
  // Fallback when no expert was ever NMAE-scored (first-ever prediction for
  // these features): any feature with history at all, preferring more data.
  const FeatureHistory* fallback = nullptr;
  std::string fallback_feature;

  for (const std::string& feature : features) {
    const auto it = histories_.find(feature);
    if (it == histories_.end() || it->second.count() < options_.min_history) {
      continue;
    }
    const FeatureHistory& hist = it->second;
    if (fallback == nullptr || hist.count() > fallback->count()) {
      fallback = &hist;
      fallback_feature = feature;
    }
    for (size_t k = 0; k < kNumExperts; ++k) {
      const auto kind = static_cast<ExpertKind>(k);
      const double score = hist.NmaeScore(kind);
      if (score < best_score) {
        best_score = score;
        best_history = &hist;
        best_feature = feature;
        best_expert = kind;
      }
    }
  }

  if (best_history == nullptr && fallback != nullptr) {
    best_history = fallback;
    best_feature = fallback_feature;
    best_expert = fallback->BestExpert();
  }

  struct PredictCounters {
    obs::Counter* predictions;
    obs::Counter* cold_starts;
  };
  static const PredictCounters* const counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto* c = new PredictCounters();
    c->predictions = reg.GetCounter("predict.predictions");
    c->cold_starts = reg.GetCounter("predict.cold_starts");
    return c;
  }();
  counters->predictions->Increment();

  RuntimePrediction result;
  if (best_history == nullptr) {
    // Cold start: no relevant history anywhere.
    counters->cold_starts->Increment();
    result.distribution = EmpiricalDistribution::Point(options_.default_runtime);
    result.point_estimate = options_.default_runtime;
    result.source = "cold-start";
    result.from_history = false;
    return result;
  }
  result.distribution = EmpiricalDistribution::FromHistogram(best_history->histogram());
  result.point_estimate = best_history->Seeded(best_expert)
                              ? best_history->Estimate(best_expert)
                              : result.distribution.Mean();
  result.source = best_feature + ":" + ExpertKindName(best_expert);
  result.from_history = true;
  return result;
}

void ThreeSigmaPredictor::RecordCompletion(const JobFeatures& features, double runtime) {
  TS_CHECK_GE(runtime, 0.0);
  TS_OBS_SPAN("predict.record", obs::Phase::kPredict);
  static obs::Counter* const recordings =
      obs::MetricsRegistry::Global().GetCounter("predict.recordings");
  recordings->Increment();
  for (const std::string& feature : features) {
    auto [it, inserted] = histories_.try_emplace(feature, options_.history);
    it->second.Record(runtime);
  }
}

void ThreeSigmaPredictor::SaveState(SnapshotWriter& writer) const {
  writer.WriteString("3sigma");
  std::vector<const std::string*> keys;
  keys.reserve(histories_.size());
  for (const auto& [key, history] : histories_) {
    keys.push_back(&key);
  }
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  writer.WriteVarU64(keys.size());
  for (const std::string* key : keys) {
    writer.WriteString(*key);
    histories_.at(*key).SaveState(writer);
  }
}

void ThreeSigmaPredictor::RestoreState(SnapshotReader& reader) {
  CheckKindTag(reader, "3sigma");
  histories_.clear();
  const uint64_t n = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    const std::string key = reader.ReadString();
    FeatureHistory history(options_.history);
    history.RestoreState(reader);
    if (reader.ok()) {
      histories_.insert_or_assign(key, std::move(history));
    }
  }
}

RuntimePrediction PerfectPredictor::Predict(const JobFeatures& /*features*/,
                                            double true_runtime) {
  RuntimePrediction result;
  result.distribution = EmpiricalDistribution::Point(true_runtime);
  result.point_estimate = true_runtime;
  result.source = "oracle";
  result.from_history = true;
  return result;
}

void PerfectPredictor::RecordCompletion(const JobFeatures& /*features*/, double /*runtime*/) {}

SampleCapPredictor::SampleCapPredictor(RuntimePredictor* inner, int cap)
    : inner_(inner), cap_(cap) {
  TS_CHECK(inner != nullptr);
  TS_CHECK_GT(cap, 0);
}

RuntimePrediction SampleCapPredictor::Predict(const JobFeatures& features,
                                              double true_runtime) {
  return inner_->Predict(features, true_runtime);
}

void SampleCapPredictor::RecordCompletion(const JobFeatures& features, double runtime) {
  // Key by the most specific feature (the combined user+jobname when
  // present, else the whole feature list).
  std::string key;
  for (const std::string& f : features) {
    if (f.rfind("user+jobname=", 0) == 0) {
      key = f;
      break;
    }
  }
  if (key.empty()) {
    for (const std::string& f : features) {
      key += f;
      key += ';';
    }
  }
  int& count = counts_[key];
  if (count >= cap_) {
    return;
  }
  ++count;
  inner_->RecordCompletion(features, runtime);
}

void SampleCapPredictor::SaveState(SnapshotWriter& writer) const {
  writer.WriteString("sample-cap");
  writer.WriteVarI64(cap_);
  std::vector<std::pair<std::string, int>> counts(counts_.begin(), counts_.end());
  std::sort(counts.begin(), counts.end());
  writer.WriteVarU64(counts.size());
  for (const auto& [key, count] : counts) {
    writer.WriteString(key);
    writer.WriteVarI64(count);
  }
  inner_->SaveState(writer);
}

void SampleCapPredictor::RestoreState(SnapshotReader& reader) {
  CheckKindTag(reader, "sample-cap");
  cap_ = static_cast<int>(reader.ReadVarI64());
  counts_.clear();
  const uint64_t n = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    const std::string key = reader.ReadString();
    counts_[key] = static_cast<int>(reader.ReadVarI64());
  }
  inner_->RestoreState(reader);
}

PaddedPointPredictor::PaddedPointPredictor(RuntimePredictor* inner, double padding_stddevs)
    : inner_(inner), padding_stddevs_(padding_stddevs) {
  TS_CHECK(inner != nullptr);
  TS_CHECK_GE(padding_stddevs, 0.0);
}

RuntimePrediction PaddedPointPredictor::Predict(const JobFeatures& features,
                                                double true_runtime) {
  RuntimePrediction pred = inner_->Predict(features, true_runtime);
  const double padded =
      pred.point_estimate + padding_stddevs_ * pred.distribution.StdDev();
  pred.point_estimate = padded;
  pred.distribution = EmpiricalDistribution::Point(padded);
  pred.source += "+pad" + std::to_string(padding_stddevs_);
  return pred;
}

void PaddedPointPredictor::RecordCompletion(const JobFeatures& features, double runtime) {
  inner_->RecordCompletion(features, runtime);
}

void PaddedPointPredictor::SaveState(SnapshotWriter& writer) const {
  writer.WriteString("padded-point");
  writer.WriteDouble(padding_stddevs_);
  inner_->SaveState(writer);
}

void PaddedPointPredictor::RestoreState(SnapshotReader& reader) {
  CheckKindTag(reader, "padded-point");
  padding_stddevs_ = reader.ReadDouble();
  inner_->RestoreState(reader);
}

SyntheticPredictor::SyntheticPredictor(double shift, double cov, uint64_t seed)
    : shift_(shift), cov_(cov), rng_(seed) {}

RuntimePrediction SyntheticPredictor::Predict(const JobFeatures& /*features*/,
                                              double true_runtime) {
  // Per Fig. 9's caption: the distribution is N(µ = runtime·(1 + shift),
  // σ = runtime·CoV) where the realized shift is drawn ~N(target, 0.1).
  const double drawn_shift = rng_.Normal(shift_, 0.1);
  const double mean = true_runtime * (1.0 + drawn_shift);
  RuntimePrediction result;
  if (cov_ <= 0.0) {
    result.distribution = EmpiricalDistribution::Point(std::max(mean, 0.0));
  } else {
    result.distribution = EmpiricalDistribution::FromNormal(mean, true_runtime * cov_);
  }
  result.point_estimate = std::max(mean, 0.0);
  result.source = "synthetic";
  result.from_history = true;
  return result;
}

void SyntheticPredictor::RecordCompletion(const JobFeatures& /*features*/, double /*runtime*/) {}

void SyntheticPredictor::SaveState(SnapshotWriter& writer) const {
  writer.WriteString("synthetic");
  writer.WriteDouble(shift_);
  writer.WriteDouble(cov_);
  rng_.SaveState(writer);
}

void SyntheticPredictor::RestoreState(SnapshotReader& reader) {
  CheckKindTag(reader, "synthetic");
  shift_ = reader.ReadDouble();
  cov_ = reader.ReadDouble();
  rng_.RestoreState(reader);
}

}  // namespace threesigma
