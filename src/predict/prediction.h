// Prediction types shared by 3σPredict and the schedulers.

#ifndef SRC_PREDICT_PREDICTION_H_
#define SRC_PREDICT_PREDICTION_H_

#include <string>
#include <vector>

#include "src/histogram/empirical_distribution.h"

namespace threesigma {

// A job's features, each pre-joined as "name=value" (e.g. "user=alice",
// "jobname=etl-nightly", "resources=64", and combined features such as
// "user+jobname=alice|etl-nightly"). §4.1: attributes can be combined to
// form a single feature.
using JobFeatures = std::vector<std::string>;

struct RuntimePrediction {
  // Estimated runtime distribution (what 3σSched consumes).
  EmpiricalDistribution distribution;
  // The winning expert's point estimate (what PointRealEst consumes).
  double point_estimate = 0.0;
  // Which feature-value:estimator expert produced the estimate, for
  // diagnostics (e.g. "user=alice:rolling").
  std::string source;
  // False when the prediction is a cold-start default rather than history.
  bool from_history = false;
};

}  // namespace threesigma

#endif  // SRC_PREDICT_PREDICTION_H_
