#include "src/predict/feature_history.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

const char* ExpertKindName(ExpertKind kind) {
  switch (kind) {
    case ExpertKind::kAverage:
      return "average";
    case ExpertKind::kMedian:
      return "median";
    case ExpertKind::kRolling:
      return "rolling";
    case ExpertKind::kRecentAverage:
      return "recent-average";
  }
  return "unknown";
}

FeatureHistory::FeatureHistory(const FeatureHistoryOptions& options)
    : options_(options),
      histogram_(options.max_histogram_bins),
      rolling_(options.rolling_alpha),
      recent_(options.recent_window) {}

bool FeatureHistory::Seeded(ExpertKind kind) const {
  switch (kind) {
    case ExpertKind::kAverage:
      return average_.count() > 0;
    case ExpertKind::kMedian:
    case ExpertKind::kRecentAverage:
      return !recent_.empty();
    case ExpertKind::kRolling:
      return !rolling_.empty();
  }
  return false;
}

double FeatureHistory::Estimate(ExpertKind kind) const {
  TS_CHECK(Seeded(kind));
  switch (kind) {
    case ExpertKind::kAverage:
      return average_.mean();
    case ExpertKind::kMedian:
      return recent_.Median();
    case ExpertKind::kRolling:
      return rolling_.value();
    case ExpertKind::kRecentAverage:
      return recent_.Mean();
  }
  return 0.0;
}

void FeatureHistory::Record(double runtime) {
  TS_CHECK_GE(runtime, 0.0);
  // Score first: each expert's NMAE reflects how well it would have predicted
  // this job before seeing it.
  for (size_t k = 0; k < kNumExperts; ++k) {
    const auto kind = static_cast<ExpertKind>(k);
    if (!Seeded(kind)) {
      continue;
    }
    NmaeAccumulator& acc = nmae_[k];
    acc.abs_error += std::fabs(Estimate(kind) - runtime);
    acc.actual_sum += runtime;
    ++acc.samples;
  }
  // Then absorb the observation.
  histogram_.Update(runtime);
  average_.Add(runtime);
  rolling_.Add(runtime);
  recent_.Add(runtime);
  ++count_;
}

double FeatureHistory::NmaeScore(ExpertKind kind) const {
  const NmaeAccumulator& acc = nmae_[static_cast<size_t>(kind)];
  if (acc.samples == 0 || acc.actual_sum <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return acc.abs_error / acc.actual_sum;
}

size_t FeatureHistory::NmaeSamples(ExpertKind kind) const {
  return nmae_[static_cast<size_t>(kind)].samples;
}

void FeatureHistory::SaveTo(std::ostream& os) const {
  const auto save_precision = os.precision(17);  // Exact double round-trip.
  os << "hist " << histogram_.max_bins() << " " << histogram_.min() << " "
     << histogram_.max() << " " << histogram_.bin_count();
  for (const StreamHistogram::Bin& b : histogram_.bins()) {
    os << " " << b.centroid << " " << b.count;
  }
  os << "\n";
  os << "avg " << average_.count() << " " << average_.mean() << " " << average_.m2() << " "
     << average_.min() << " " << average_.max() << " " << average_.sum() << "\n";
  os << "ewma " << rolling_.alpha() << " " << (rolling_.empty() ? 0 : 1) << " "
     << rolling_.value() << "\n";
  os << "recent " << recent_.capacity() << " " << recent_.next() << " " << recent_.size();
  for (double v : recent_.values()) {
    os << " " << v;
  }
  os << "\n";
  for (const NmaeAccumulator& acc : nmae_) {
    os << "nmae " << acc.abs_error << " " << acc.actual_sum << " " << acc.samples << "\n";
  }
  os.precision(save_precision);
}

bool FeatureHistory::LoadFrom(std::istream& is) {
  std::string tag;
  // hist
  size_t max_bins = 0;
  size_t bin_count = 0;
  double hist_min = 0.0;
  double hist_max = 0.0;
  if (!(is >> tag >> max_bins >> hist_min >> hist_max >> bin_count) || tag != "hist") {
    return false;
  }
  std::vector<StreamHistogram::Bin> bins(bin_count);
  for (StreamHistogram::Bin& b : bins) {
    if (!(is >> b.centroid >> b.count)) {
      return false;
    }
  }
  // avg
  size_t avg_count = 0;
  double mean = 0.0, m2 = 0.0, mn = 0.0, mx = 0.0, sum = 0.0;
  if (!(is >> tag >> avg_count >> mean >> m2 >> mn >> mx >> sum) || tag != "avg") {
    return false;
  }
  // ewma
  double alpha = 0.0, ewma_value = 0.0;
  int seeded = 0;
  if (!(is >> tag >> alpha >> seeded >> ewma_value) || tag != "ewma") {
    return false;
  }
  // recent
  size_t capacity = 0, next = 0, size = 0;
  if (!(is >> tag >> capacity >> next >> size) || tag != "recent" || capacity == 0 ||
      size > capacity || next >= capacity) {
    return false;
  }
  std::vector<double> recent_values(size);
  for (double& v : recent_values) {
    if (!(is >> v)) {
      return false;
    }
  }
  std::array<NmaeAccumulator, kNumExperts> nmae;
  for (NmaeAccumulator& acc : nmae) {
    if (!(is >> tag >> acc.abs_error >> acc.actual_sum >> acc.samples) || tag != "nmae") {
      return false;
    }
  }

  options_.max_histogram_bins = max_bins;
  options_.rolling_alpha = alpha;
  options_.recent_window = capacity;
  histogram_ = StreamHistogram::Restore(max_bins, hist_min, hist_max, std::move(bins));
  average_ = RunningStats::Restore(avg_count, mean, m2, mn, mx, sum);
  rolling_ = EwmaEstimator::Restore(alpha, seeded != 0, ewma_value);
  recent_ = RecentWindow::Restore(capacity, next, std::move(recent_values));
  nmae_ = nmae;
  count_ = avg_count;
  return true;
}

void FeatureHistory::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarU64(count_);
  histogram_.SaveState(writer);
  average_.SaveState(writer);
  rolling_.SaveState(writer);
  recent_.SaveState(writer);
  for (const NmaeAccumulator& acc : nmae_) {
    writer.WriteDouble(acc.abs_error);
    writer.WriteDouble(acc.actual_sum);
    writer.WriteVarU64(acc.samples);
  }
}

void FeatureHistory::RestoreState(SnapshotReader& reader) {
  count_ = reader.ReadVarU64();
  histogram_.RestoreState(reader);
  average_.RestoreState(reader);
  rolling_.RestoreState(reader);
  recent_.RestoreState(reader);
  for (NmaeAccumulator& acc : nmae_) {
    acc.abs_error = reader.ReadDouble();
    acc.actual_sum = reader.ReadDouble();
    acc.samples = reader.ReadVarU64();
  }
  // The options are implied by the restored components.
  options_.max_histogram_bins = histogram_.max_bins();
  options_.rolling_alpha = rolling_.alpha();
  options_.recent_window = recent_.capacity();
}

ExpertKind FeatureHistory::BestExpert() const {
  ExpertKind best = ExpertKind::kAverage;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < kNumExperts; ++k) {
    const auto kind = static_cast<ExpertKind>(k);
    const double score = NmaeScore(kind);
    if (score < best_score) {
      best_score = score;
      best = kind;
    }
  }
  return best;
}

}  // namespace threesigma
