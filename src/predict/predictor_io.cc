#include "src/predict/predictor_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

constexpr uint32_t kPredictorSectionVersion = 2;

// Feature keys may contain spaces; percent-escape space/percent/newline.
std::string EscapeKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (c == ' ' || c == '%' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

bool UnescapeKey(const std::string& in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      *out += in[i];
      continue;
    }
    if (i + 2 >= in.size()) {
      return false;
    }
    const std::string hex = in.substr(i + 1, 2);
    char* end = nullptr;
    const long v = std::strtol(hex.c_str(), &end, 16);
    if (end != hex.c_str() + 2) {
      return false;
    }
    *out += static_cast<char>(v);
    i += 2;
  }
  return true;
}

}  // namespace

namespace {

// The legacy v1 text reader, kept so predictor files written before the
// binary codec still load.
bool LoadPredictorTextV1(std::istream& is, ThreeSigmaPredictor* predictor) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != "threesigma-predictor" || version != "v1") {
    return false;
  }
  std::string tag;
  size_t feature_count = 0;
  if (!(is >> tag >> feature_count) || tag != "features") {
    return false;
  }
  predictor->ClearHistories();
  for (size_t i = 0; i < feature_count; ++i) {
    std::string escaped;
    size_t count = 0;
    if (!(is >> tag >> escaped >> count) || tag != "feature") {
      return false;
    }
    std::string key;
    if (!UnescapeKey(escaped, &key)) {
      return false;
    }
    FeatureHistory history;
    if (!history.LoadFrom(is)) {
      return false;
    }
    if (history.count() != count) {
      return false;
    }
    predictor->RestoreHistory(key, std::move(history));
  }
  return true;
}

}  // namespace

void SavePredictor(std::ostream& os, const ThreeSigmaPredictor& predictor) {
  SnapshotWriter writer;
  writer.BeginSection("predict", kPredictorSectionVersion);
  predictor.SaveState(writer);
  writer.EndSection();
  const std::string buffer = writer.Finish();
  os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

void SavePredictorTextV1(std::ostream& os, const ThreeSigmaPredictor& predictor) {
  os << "threesigma-predictor v1\n";
  os << "features " << predictor.histories().size() << "\n";
  for (const auto& [key, history] : predictor.histories()) {
    os << "feature " << EscapeKey(key) << " " << history.count() << "\n";
    history.SaveTo(os);
  }
}

bool LoadPredictor(std::istream& is, ThreeSigmaPredictor* predictor) {
  // Sniff the magic: binary v2 containers start with "3SGSNAP1", the legacy
  // text format with "threesigma-predictor".
  std::string buffer((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (buffer.rfind("threesigma-predictor", 0) == 0) {
    std::istringstream text(buffer);
    return LoadPredictorTextV1(text, predictor);
  }
  SnapshotReader reader(std::move(buffer));
  uint32_t version = 0;
  if (!reader.BeginSection("predict", &version) || version != kPredictorSectionVersion) {
    return false;
  }
  predictor->RestoreState(reader);
  reader.EndSection();
  return reader.ok();
}

}  // namespace threesigma
