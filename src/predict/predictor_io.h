// 3σPredict state persistence.
//
// A production predictor accumulates months of history (the paper pre-trains
// on everything before each experiment window); losing it on restart would
// reset every estimate to cold-start. SavePredictor/LoadPredictor serialize
// the full per-feature state — streaming histogram bins, the four experts'
// accumulators, and NMAE scores — to a line-oriented text format that
// round-trips exactly.
//
// Format (one logical record per feature):
//   threesigma-predictor v1
//   feature <url-escaped-key> <count>
//   hist <max_bins> <min> <max> <bin_count> {<centroid> <count>}...
//   avg <count> <mean> <m2> <min> <max> <sum>
//   ewma <alpha> <seeded> <value>
//   recent <capacity> <next> <size> {<value>}...
//   nmae <abs_error> <actual_sum> <samples>   (x4, expert enum order)

#ifndef SRC_PREDICT_PREDICTOR_IO_H_
#define SRC_PREDICT_PREDICTOR_IO_H_

#include <iosfwd>

#include "src/predict/predictor.h"

namespace threesigma {

void SavePredictor(std::ostream& os, const ThreeSigmaPredictor& predictor);

// Replaces `predictor`'s state with the stream's contents. Returns false on
// malformed input (predictor state is unspecified then).
bool LoadPredictor(std::istream& is, ThreeSigmaPredictor* predictor);

}  // namespace threesigma

#endif  // SRC_PREDICT_PREDICTOR_IO_H_
