// 3σPredict state persistence.
//
// A production predictor accumulates months of history (the paper pre-trains
// on everything before each experiment window); losing it on restart would
// reset every estimate to cold-start. SavePredictor/LoadPredictor serialize
// the full per-feature state — streaming histogram bins, the four experts'
// accumulators, and NMAE scores — exactly.
//
// v2 (current): a snapshot container (snapshot/snapshot_io.h, magic
// "3SGSNAP1") holding one "predict" section whose payload is
// ThreeSigmaPredictor::SaveState — the same bytes a full run checkpoint
// embeds, so there is exactly one serialization framework.
//
// v1 (legacy, read-only): the original line-oriented text format
// ("threesigma-predictor v1" header, one record per feature). LoadPredictor
// sniffs the leading magic and accepts both.

#ifndef SRC_PREDICT_PREDICTOR_IO_H_
#define SRC_PREDICT_PREDICTOR_IO_H_

#include <iosfwd>

#include "src/predict/predictor.h"

namespace threesigma {

// Writes the current (v2 binary) format.
void SavePredictor(std::ostream& os, const ThreeSigmaPredictor& predictor);

// Writes the legacy v1 text format. Exists so the v1 read path stays
// exercised by tests; new files should use SavePredictor.
void SavePredictorTextV1(std::ostream& os, const ThreeSigmaPredictor& predictor);

// Replaces `predictor`'s state with the stream's contents; accepts both the
// v2 binary and the legacy v1 text format. Returns false on malformed input
// (predictor state is unspecified then).
bool LoadPredictor(std::istream& is, ThreeSigmaPredictor* predictor);

}  // namespace threesigma

#endif  // SRC_PREDICT_PREDICTOR_IO_H_
