// Experiment runner: the §5 harness shared by every bench.
//
// An experiment fixes a cluster, a generated workload, and simulator
// settings, then runs one or more systems over the identical job stream and
// reports the paper's success metrics per system.

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/systems.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"

namespace threesigma {

struct ExperimentConfig {
  ClusterConfig cluster = ClusterConfig::Uniform(4, 64);  // 256 nodes.
  WorkloadOptions workload;
  SimOptions sim;
  DistSchedulerConfig sched;  // Shared scheduler knobs; toggles set per system.
  // Observability gates and export sinks (disabled by default; enabling them
  // never changes a scheduling decision). Applied by the Run*/Simulate*
  // entry points via obs::Configure before the simulation starts.
  obs::Options obs;
};

// Pre-trains the system's predictor on `workload.pretrain` (§5 "Estimates"),
// simulates `workload.jobs`, and aggregates metrics.
RunMetrics RunSystem(SystemKind kind, const ExperimentConfig& config,
                     const GeneratedWorkload& workload);

// As above, with an already-built instance (used for Fig. 9 synthetic
// systems and tests).
RunMetrics RunSystemInstance(SystemInstance& instance, const std::string& display_name,
                             const ExperimentConfig& config, const GeneratedWorkload& workload,
                             bool pretrain = true);

// Runs several systems over the same workload.
std::vector<RunMetrics> RunSystems(const std::vector<SystemKind>& kinds,
                                   const ExperimentConfig& config,
                                   const GeneratedWorkload& workload);

// Full raw simulation access (Fig. 12 needs per-cycle stats).
SimResult SimulateSystem(SystemKind kind, const ExperimentConfig& config,
                         const GeneratedWorkload& workload);

// Resumes a checkpoint written by a `kind` system run and simulates the
// remainder to completion. The cluster shape, workload position, and
// simulation options all come from the snapshot; `sched` must describe the
// same scheduler configuration as the checkpointing run (snapshots carry
// state, not construction parameters). Only the local-run knobs
// (checkpoint_every / checkpoint_dir / max_cycles) of `local` are honored.
// Returns false with `*error` set on a missing/corrupt snapshot.
bool ResumeSystem(SystemKind kind, const std::string& checkpoint_path,
                  const DistSchedulerConfig& sched, const SimOptions& local,
                  SimResult* result, std::string* error = nullptr);

}  // namespace threesigma

#endif  // SRC_CORE_EXPERIMENT_H_
