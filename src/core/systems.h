// System registry — Table 1 of the paper plus the Fig. 8 ablations.
//
// A "system" is a (predictor, scheduler) pair. MakeSystem wires the seven
// named configurations; MakeSyntheticSystem builds the Fig. 9 variants whose
// predictor hands the scheduler hand-shaped normal distributions.

#ifndef SRC_CORE_SYSTEMS_H_
#define SRC_CORE_SYSTEMS_H_

#include <memory>
#include <string>

#include "src/cluster/cluster.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"
#include "src/sched/prio_scheduler.h"
#include "src/sched/scheduler.h"

namespace threesigma {

enum class SystemKind {
  kThreeSigma,         // Distributions + adaptive over-estimate handling.
  kThreeSigmaNoDist,   // Point estimates, OE handling kept.
  kThreeSigmaNoOE,     // Distributions, OE handling off.
  kThreeSigmaNoAdapt,  // Distributions, OE handling always on.
  kPointPerfEst,       // Oracle point estimates (hypothetical).
  kPointRealEst,       // State-of-the-art point-estimate scheduler.
  kPrio,               // Runtime-unaware priority scheduler.
};

const char* SystemName(SystemKind kind);

struct SystemInstance {
  std::unique_ptr<RuntimePredictor> predictor;
  std::unique_ptr<Scheduler> scheduler;
  // Set only for wrapped predictors (e.g. the padded-point baseline), which
  // need the wrapped history-based predictor kept alive and pre-trained.
  std::unique_ptr<RuntimePredictor> inner_predictor;
};

// Builds a named system against `cluster`. `base` supplies the shared
// scheduler knobs (plan-ahead, budgets, ...); policy toggles and the display
// name are overridden per system. The cluster reference must outlive the
// instance.
SystemInstance MakeSystem(SystemKind kind, const ClusterConfig& cluster,
                          const DistSchedulerConfig& base);

// Fig. 9 system: distributions ~N(runtime·(1+shift), runtime·cov); cov == 0
// gives the "point" baseline of that figure.
SystemInstance MakeSyntheticSystem(double shift, double cov, const ClusterConfig& cluster,
                                   const DistSchedulerConfig& base, uint64_t seed);

// Fig. 11 (E2E-SAMPLE-n) system: a history-based system whose per-population
// histories are frozen at `sample_cap` observations. Valid only for the
// history-based kinds (3Sigma and its ablations, PointRealEst).
SystemInstance MakeSampleCappedSystem(SystemKind kind, int sample_cap,
                                      const ClusterConfig& cluster,
                                      const DistSchedulerConfig& base);

// §2.2's "stochastic scheduler" baseline: a point scheduler fed estimates
// padded by `padding_stddevs` standard deviations of the predicted
// distribution. k = 0 is exactly PointRealEst.
SystemInstance MakePaddedPointSystem(double padding_stddevs, const ClusterConfig& cluster,
                                     const DistSchedulerConfig& base);

}  // namespace threesigma

#endif  // SRC_CORE_SYSTEMS_H_
