#include "src/core/config_flags.h"

namespace threesigma {

void RegisterExperimentFlags(FlagParser& parser, ExperimentFlags* flags) {
  parser.AddString("env", &flags->env_name, "workload model: google | hedgefund | mustang")
      .AddDouble("hours", &flags->hours, "workload window length in hours")
      .AddDouble("load", &flags->load, "offered load (machine-time / capacity)")
      .AddInt("seed", &flags->seed, "base RNG seed")
      .AddInt("groups", &flags->groups, "node groups (equivalence sets)")
      .AddInt("nodes-per-group", &flags->nodes_per_group, "nodes per group")
      .AddDouble("cycle", &flags->cycle, "scheduling cycle period in seconds")
      .AddInt("solver-threads", &flags->solver_threads,
              "MILP branch-and-bound worker threads (deterministic: any count "
              "returns the same solution)")
      .AddBool("solver-shards", &flags->solver_shards,
               "decompose each cycle MILP into connected components and solve "
               "them as independent sub-MILPs on the solver pool (exact; "
               "byte-identical at any shard/thread count — see DESIGN.md for "
               "the node-budget caveat)")
      .AddInt("solver-max-nodes", &flags->solver_max_nodes,
              "branch-and-bound node budget per solve (0 = unbudgeted; with "
              "--solver-shards every shard gets the full budget)")
      .AddInt("max-pending", &flags->max_pending,
              "pending jobs admitted into one cycle MILP (SLO-deadline order "
              "first; the rest waits)")
      .AddInt("start-slots", &flags->start_slots,
              "candidate deferred-start slots per (job, group) option")
      .AddBool("capacity-cache", &flags->capacity_cache,
               "incremental expected-capacity cache (vs. full Eq. 3 recompute "
               "per cycle)")
      .AddBool("valuation-engine", &flags->valuation_engine,
               "closed-form Eq. 1 valuation kernels + parallel fan-out (off = "
               "the generic per-atom loop; decisions are byte-identical either "
               "way)")
      .AddBool("valuation-cache", &flags->valuation_cache,
               "memoize per-(job, scale) valuation tables across cycles "
               "(engine only)")
      .AddBool("valuation-crosscheck", &flags->valuation_crosscheck,
               "debug: re-derive every kernel answer with the generic loop and "
               "abort on any bitwise divergence")
      .AddBool("solver-basis-warmstart", &flags->solver_basis_warmstart,
               "re-optimize parent simplex bases with dual pivots across "
               "branch-and-bound nodes and cycles; off = cold Phase-1 solves "
               "(deterministic either way, but warm may pick a different "
               "equally-scored schedule at degenerate LP ties)")
      .AddBool("high-fidelity", &flags->high_fidelity, "use the noisy 'RC256' simulator mode")
      .AddDouble("fault-mttf", &flags->fault_mttf,
                 "mean time to failure per node in seconds (0 = no node churn)")
      .AddDouble("fault-mttr", &flags->fault_mttr, "mean time to repair per node in seconds")
      .AddDouble("fault-kill-prob", &flags->fault_kill_prob,
                 "probability a gang run is killed mid-flight by a task fault")
      .AddDouble("fault-straggler-prob", &flags->fault_straggler_prob,
                 "probability a run's duration is inflated by a straggler")
      .AddDouble("fault-straggler-factor", &flags->fault_straggler_factor,
                 "maximum straggler runtime inflation factor")
      .AddDouble("fault-stall-prob", &flags->fault_stall_prob,
                 "probability a scheduling cycle is stalled (scheduler hiccup)")
      .AddInt("fault-seed", &flags->fault_seed,
              "fault-injection RNG seed (independent of --seed)")
      .AddInt("checkpoint-every", &flags->checkpoint_every,
              "write <checkpoint-dir>/checkpoint_<cycle>.snap every N scheduling "
              "cycles (0 = off; the directory must exist)")
      .AddString("checkpoint-dir", &flags->checkpoint_dir, "where checkpoints are written")
      .AddInt("max-cycles", &flags->max_cycles,
              "stop each run after N scheduling cycles (0 = no limit; with "
              "checkpointing on, this emulates a kill at a known cycle)")
      .AddString("trace-out", &flags->trace_out,
                 "write a Chrome trace_event JSON here (load in chrome://tracing "
                 "or ui.perfetto.dev); enables span tracing")
      .AddString("trace-bin-out", &flags->trace_bin_out,
                 "write the binary span trace here (snapshot codec; the "
                 "deterministic sections are byte-identical across runs and "
                 "thread counts)")
      .AddString("obs-phase-csv", &flags->obs_phase_csv,
                 "write the per-cycle scheduler phase-latency CSV here; enables "
                 "the cycle profiler")
      .AddString("obs-decisions-csv", &flags->obs_decisions_csv,
                 "write the per-cycle decision log CSV here (the golden-trace "
                 "regression format)")
      .AddString("obs-metrics-out", &flags->obs_metrics_out,
                 "write a text dump of the metrics registry here")
      .AddInt("obs-ring-capacity", &flags->obs_ring_capacity,
              "span ring capacity per thread (oldest spans drop on overflow)");
}

bool BuildExperimentConfig(const ExperimentFlags& flags, ExperimentConfig* config,
                           std::string* error) {
  *config = ExperimentConfig();
  config->cluster = ClusterConfig::Uniform(static_cast<int>(flags.groups),
                                           static_cast<int>(flags.nodes_per_group));
  if (!ParseEnvironmentName(flags.env_name, &config->workload.env)) {
    if (error != nullptr) {
      *error = "unknown --env '" + flags.env_name + "'";
    }
    return false;
  }
  config->workload.duration = Hours(flags.hours);
  config->workload.load = flags.load;
  config->workload.seed = static_cast<uint64_t>(flags.seed);
  config->sim.cycle_period = flags.cycle;
  config->sim.seed = static_cast<uint64_t>(flags.seed);
  config->sim.fidelity =
      flags.high_fidelity ? SimFidelity::kHighFidelity : SimFidelity::kIdeal;
  config->sim.faults.node_mttf = flags.fault_mttf;
  config->sim.faults.node_mttr = flags.fault_mttr;
  config->sim.faults.task_kill_prob = flags.fault_kill_prob;
  config->sim.faults.straggler_prob = flags.fault_straggler_prob;
  config->sim.faults.straggler_factor = flags.fault_straggler_factor;
  config->sim.faults.cycle_stall_prob = flags.fault_stall_prob;
  config->sim.faults.seed = static_cast<uint64_t>(flags.fault_seed);
  config->sim.checkpoint_every = flags.checkpoint_every;
  config->sim.checkpoint_dir = flags.checkpoint_dir;
  config->sim.max_cycles = flags.max_cycles;
  config->sched.cycle_period = flags.cycle;
  config->sched.solver_threads = static_cast<int>(flags.solver_threads);
  config->sched.solver_shards = flags.solver_shards;
  config->sched.solver_max_nodes = static_cast<int>(flags.solver_max_nodes);
  config->sched.max_pending_considered = static_cast<int>(flags.max_pending);
  config->sched.num_start_slots = static_cast<int>(flags.start_slots);
  config->sched.capacity_cache = flags.capacity_cache;
  config->sched.valuation_engine = flags.valuation_engine;
  config->sched.valuation_cache = flags.valuation_cache;
  config->sched.valuation_crosscheck = flags.valuation_crosscheck;
  config->sched.solver_basis_warmstart = flags.solver_basis_warmstart;
  config->obs.trace_json_out = flags.trace_out;
  config->obs.trace_bin_out = flags.trace_bin_out;
  config->obs.phase_csv_out = flags.obs_phase_csv;
  config->obs.decisions_csv_out = flags.obs_decisions_csv;
  config->obs.metrics_out = flags.obs_metrics_out;
  config->obs.ring_capacity = flags.obs_ring_capacity;
  return true;
}

bool ParseEnvironmentName(const std::string& name, EnvironmentKind* out) {
  if (name == "google") {
    *out = EnvironmentKind::kGoogle;
  } else if (name == "hedgefund") {
    *out = EnvironmentKind::kHedgeFund;
  } else if (name == "mustang") {
    *out = EnvironmentKind::kMustang;
  } else {
    return false;
  }
  return true;
}

bool ParseSystemName(const std::string& name, SystemKind* out) {
  for (SystemKind kind :
       {SystemKind::kThreeSigma, SystemKind::kThreeSigmaNoDist, SystemKind::kThreeSigmaNoOE,
        SystemKind::kThreeSigmaNoAdapt, SystemKind::kPointPerfEst, SystemKind::kPointRealEst,
        SystemKind::kPrio}) {
    if (name == SystemName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace threesigma
