#include "src/core/systems.h"

#include "src/common/check.h"

namespace threesigma {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kThreeSigma:
      return "3Sigma";
    case SystemKind::kThreeSigmaNoDist:
      return "3SigmaNoDist";
    case SystemKind::kThreeSigmaNoOE:
      return "3SigmaNoOE";
    case SystemKind::kThreeSigmaNoAdapt:
      return "3SigmaNoAdapt";
    case SystemKind::kPointPerfEst:
      return "PointPerfEst";
    case SystemKind::kPointRealEst:
      return "PointRealEst";
    case SystemKind::kPrio:
      return "Prio";
  }
  return "unknown";
}

SystemInstance MakeSystem(SystemKind kind, const ClusterConfig& cluster,
                          const DistSchedulerConfig& base) {
  SystemInstance out;
  DistSchedulerConfig config = base;
  config.name = SystemName(kind);
  switch (kind) {
    case SystemKind::kThreeSigma:
      config.use_distribution = true;
      config.overestimate_handling = true;
      config.adaptive_oe = true;
      out.predictor = std::make_unique<ThreeSigmaPredictor>();
      break;
    case SystemKind::kThreeSigmaNoDist:
      config.use_distribution = false;
      config.overestimate_handling = true;
      config.adaptive_oe = true;
      out.predictor = std::make_unique<ThreeSigmaPredictor>();
      break;
    case SystemKind::kThreeSigmaNoOE:
      config.use_distribution = true;
      config.overestimate_handling = false;
      out.predictor = std::make_unique<ThreeSigmaPredictor>();
      break;
    case SystemKind::kThreeSigmaNoAdapt:
      config.use_distribution = true;
      config.overestimate_handling = true;
      config.adaptive_oe = false;
      out.predictor = std::make_unique<ThreeSigmaPredictor>();
      break;
    case SystemKind::kPointPerfEst:
      config.use_distribution = false;
      config.overestimate_handling = false;
      out.predictor = std::make_unique<PerfectPredictor>();
      break;
    case SystemKind::kPointRealEst:
      config.use_distribution = false;
      config.overestimate_handling = false;
      out.predictor = std::make_unique<ThreeSigmaPredictor>();
      break;
    case SystemKind::kPrio: {
      out.predictor = std::make_unique<PerfectPredictor>();  // Unused.
      PrioSchedulerConfig prio;
      prio.name = SystemName(kind);
      out.scheduler = std::make_unique<PrioScheduler>(cluster, prio);
      return out;
    }
  }
  out.scheduler =
      std::make_unique<DistributionScheduler>(cluster, out.predictor.get(), config);
  return out;
}

SystemInstance MakeSampleCappedSystem(SystemKind kind, int sample_cap,
                                      const ClusterConfig& cluster,
                                      const DistSchedulerConfig& base) {
  TS_CHECK_NE(static_cast<int>(kind), static_cast<int>(SystemKind::kPrio));
  TS_CHECK_NE(static_cast<int>(kind), static_cast<int>(SystemKind::kPointPerfEst));
  SystemInstance out = MakeSystem(kind, cluster, base);
  // Re-wire: the scheduler must see the capped predictor instead.
  out.inner_predictor = std::move(out.predictor);
  out.predictor =
      std::make_unique<SampleCapPredictor>(out.inner_predictor.get(), sample_cap);
  auto* sched = dynamic_cast<DistributionScheduler*>(out.scheduler.get());
  TS_CHECK(sched != nullptr);
  DistSchedulerConfig config = sched->config();
  out.scheduler = std::make_unique<DistributionScheduler>(cluster, out.predictor.get(), config);
  return out;
}

SystemInstance MakePaddedPointSystem(double padding_stddevs, const ClusterConfig& cluster,
                                     const DistSchedulerConfig& base) {
  SystemInstance out;
  DistSchedulerConfig config = base;
  config.name = "PointPadded" + std::to_string(static_cast<int>(padding_stddevs * 10)) +
                "sigma/10";
  config.use_distribution = false;
  config.overestimate_handling = false;
  out.inner_predictor = std::make_unique<ThreeSigmaPredictor>();
  out.predictor =
      std::make_unique<PaddedPointPredictor>(out.inner_predictor.get(), padding_stddevs);
  out.scheduler =
      std::make_unique<DistributionScheduler>(cluster, out.predictor.get(), config);
  return out;
}

SystemInstance MakeSyntheticSystem(double shift, double cov, const ClusterConfig& cluster,
                                   const DistSchedulerConfig& base, uint64_t seed) {
  SystemInstance out;
  DistSchedulerConfig config = base;
  config.use_distribution = cov > 0.0;
  if (cov <= 0.0) {
    // The Fig. 9 "point" curve is the point-estimate scheduler, which has no
    // over-estimate handling (Table 1).
    config.overestimate_handling = false;
  }
  out.predictor = std::make_unique<SyntheticPredictor>(shift, cov, seed);
  out.scheduler =
      std::make_unique<DistributionScheduler>(cluster, out.predictor.get(), config);
  return out;
}

}  // namespace threesigma
