// Shared command-line flags -> ExperimentConfig construction.
//
// Every service/tool binary that drives an experiment (run_experiment, the
// svc daemon, loadgen) accepts the same cluster/workload/simulator/scheduler
// /observability knobs. This module owns that mapping once: a binary embeds
// an ExperimentFlags, registers the shared flags on its FlagParser, and
// builds the ExperimentConfig after parsing. Tool-specific flags stay in the
// tool.

#ifndef SRC_CORE_CONFIG_FLAGS_H_
#define SRC_CORE_CONFIG_FLAGS_H_

#include <cstdint>
#include <string>

#include "src/common/flags.h"
#include "src/core/experiment.h"

namespace threesigma {

// Raw flag values, defaulted exactly as run_experiment historically did.
struct ExperimentFlags {
  std::string env_name = "google";
  double hours = 0.5;
  double load = 1.4;
  int64_t seed = 42;
  int64_t groups = 4;
  int64_t nodes_per_group = 64;
  double cycle = 10.0;
  int64_t solver_threads = 1;
  bool solver_shards = false;
  int64_t solver_max_nodes = 6;
  int64_t max_pending = 48;
  int64_t start_slots = 6;
  bool capacity_cache = true;
  bool valuation_engine = true;
  bool valuation_cache = true;
  bool valuation_crosscheck = false;
  bool solver_basis_warmstart = true;
  bool high_fidelity = false;
  double fault_mttf = 0.0;
  double fault_mttr = 600.0;
  double fault_kill_prob = 0.0;
  double fault_straggler_prob = 0.0;
  double fault_straggler_factor = 3.0;
  double fault_stall_prob = 0.0;
  int64_t fault_seed = 1;
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  int64_t max_cycles = 0;
  std::string trace_out;
  std::string trace_bin_out;
  std::string obs_phase_csv;
  std::string obs_decisions_csv;
  std::string obs_metrics_out;
  int64_t obs_ring_capacity = 1 << 16;
};

// Registers the shared flags on `parser`, bound to `*flags` (which must
// outlive parsing).
void RegisterExperimentFlags(FlagParser& parser, ExperimentFlags* flags);

// Builds the config from parsed flag values. False + `*error` on an invalid
// value (e.g. an unknown --env name).
bool BuildExperimentConfig(const ExperimentFlags& flags, ExperimentConfig* config,
                           std::string* error);

// Name parsers shared by the tools ("google"/"hedgefund"/"mustang",
// Table 1 system names). False on an unknown name.
bool ParseEnvironmentName(const std::string& name, EnvironmentKind* out);
bool ParseSystemName(const std::string& name, SystemKind* out);

}  // namespace threesigma

#endif  // SRC_CORE_CONFIG_FLAGS_H_
