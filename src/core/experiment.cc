#include "src/core/experiment.h"

namespace threesigma {
namespace {

void Pretrain(RuntimePredictor& predictor, const GeneratedWorkload& workload) {
  for (const JobSpec& job : workload.pretrain) {
    predictor.RecordCompletion(job.features, job.true_runtime);
  }
}

SimResult Simulate(SystemInstance& instance, const ExperimentConfig& config,
                   const GeneratedWorkload& workload, bool pretrain) {
  if (config.obs.any()) {
    obs::Configure(config.obs);
  }
  if (pretrain) {
    Pretrain(*instance.predictor, workload);
  }
  Simulator sim(config.cluster, instance.scheduler.get(), workload.jobs, config.sim);
  return sim.Run();
}

}  // namespace

RunMetrics RunSystem(SystemKind kind, const ExperimentConfig& config,
                     const GeneratedWorkload& workload) {
  SystemInstance instance = MakeSystem(kind, config.cluster, config.sched);
  const SimResult result = Simulate(instance, config, workload, /*pretrain=*/true);
  return ComputeMetrics(result, SystemName(kind));
}

RunMetrics RunSystemInstance(SystemInstance& instance, const std::string& display_name,
                             const ExperimentConfig& config, const GeneratedWorkload& workload,
                             bool pretrain) {
  const SimResult result = Simulate(instance, config, workload, pretrain);
  return ComputeMetrics(result, display_name);
}

std::vector<RunMetrics> RunSystems(const std::vector<SystemKind>& kinds,
                                   const ExperimentConfig& config,
                                   const GeneratedWorkload& workload) {
  std::vector<RunMetrics> out;
  out.reserve(kinds.size());
  for (SystemKind kind : kinds) {
    out.push_back(RunSystem(kind, config, workload));
  }
  return out;
}

SimResult SimulateSystem(SystemKind kind, const ExperimentConfig& config,
                         const GeneratedWorkload& workload) {
  SystemInstance instance = MakeSystem(kind, config.cluster, config.sched);
  return Simulate(instance, config, workload, /*pretrain=*/true);
}

bool ResumeSystem(SystemKind kind, const std::string& checkpoint_path,
                  const DistSchedulerConfig& sched, const SimOptions& local,
                  SimResult* result, std::string* error) {
  CheckpointInfo info;
  if (!Simulator::PeekCheckpoint(checkpoint_path, &info, error)) {
    return false;
  }
  SystemInstance instance = MakeSystem(kind, info.cluster, sched);
  SimOptions options = info.options;
  options.checkpoint_every = local.checkpoint_every;
  options.checkpoint_dir = local.checkpoint_dir;
  options.max_cycles = local.max_cycles;
  // The snapshot's workload section replaces this empty placeholder.
  Simulator sim(info.cluster, instance.scheduler.get(), {}, options);
  if (!sim.TryResumeFrom(checkpoint_path, error)) {
    return false;
  }
  *result = sim.Run();
  return true;
}

}  // namespace threesigma
