#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/workload/kmeans.h"

namespace threesigma {
namespace {

// The per-class generation model derived from the clustered historical
// sample: class mass + the PMF of populations within the class.
struct JobClassModel {
  double weight = 0.0;
  std::vector<int> population_ids;     // Into EnvironmentModel populations.
  std::vector<double> population_weights;
};

// Samples runtime/tasks from one population (same math as
// EnvironmentModel::Sample but for a known population).
TraceJob SampleFromPopulation(const JobPopulation& p, Rng& rng) {
  TraceJob job;
  job.user = p.user;
  job.jobname = p.jobname;
  if (p.tail_prob > 0.0 && rng.Bernoulli(p.tail_prob)) {
    const double base = std::exp(p.log_mu);
    job.runtime = rng.BoundedPareto(base, std::max(p.tail_max, base * 2.0), p.tail_alpha);
  } else {
    job.runtime = rng.LogNormal(p.log_mu, p.log_sigma);
  }
  job.runtime = std::clamp(job.runtime, 1.0, 250000.0);
  const double lt = rng.Uniform(std::log(static_cast<double>(p.min_tasks)),
                                std::log(static_cast<double>(p.max_tasks) + 1.0));
  job.num_tasks = std::max(1, static_cast<int>(std::exp(lt)));
  job.num_tasks = std::min(job.num_tasks, p.max_tasks);
  return job;
}

}  // namespace

JobFeatures MakeJobFeatures(const TraceJob& job) {
  JobFeatures features;
  features.push_back("user=" + job.user);
  features.push_back("jobname=" + job.jobname);
  features.push_back("user+jobname=" + job.user + "|" + job.jobname);
  // Bucketed resource request, the paper's "resources requested" feature.
  int bucket = 1;
  while (bucket < job.num_tasks) {
    bucket *= 2;
  }
  features.push_back("tasks=" + std::to_string(bucket));
  return features;
}

std::vector<JobSpec> ShapeTraceJobs(const std::vector<TimedTraceJob>& records,
                                    const ClusterConfig& cluster,
                                    const WorkloadOptions& options) {
  // Independent stream: shaping must not perturb trace generation and must
  // be reproducible for loaded traces.
  Rng rng(options.seed ^ 0x53484150454a4f42ULL);  // "SHAPEJOB"
  const int num_groups = cluster.num_groups();
  const int preferred_count = std::clamp(
      static_cast<int>(std::round(num_groups * options.preferred_group_fraction)), 1,
      num_groups);
  std::vector<JobSpec> jobs;
  jobs.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const TraceJob& tj = records[i].job;
    JobSpec spec;
    spec.id = static_cast<JobId>(i + 1);
    spec.user = tj.user;
    spec.name = tj.jobname;
    spec.submit_time = records[i].submit;
    spec.true_runtime = tj.runtime;
    spec.num_tasks = tj.num_tasks;
    spec.features = MakeJobFeatures(tj);
    spec.nonpreferred_slowdown = options.nonpreferred_slowdown;
    if (rng.Bernoulli(options.slo_fraction)) {
      spec.type = JobType::kSlo;
      const double slack = options.deadline_slacks[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(options.deadline_slacks.size()) - 1))];
      spec.deadline = spec.submit_time + spec.true_runtime * (1.0 + slack / 100.0);
      spec.utility = UtilityFunction::SloStep(options.slo_utility_per_task * spec.num_tasks,
                                              spec.deadline);
      // Soft placement constraint: a random `preferred_count` of the groups.
      std::vector<int> groups(static_cast<size_t>(num_groups));
      for (int g = 0; g < num_groups; ++g) {
        groups[static_cast<size_t>(g)] = g;
      }
      for (int g = num_groups - 1; g > 0; --g) {
        std::swap(groups[static_cast<size_t>(g)],
                  groups[static_cast<size_t>(rng.UniformInt(0, g))]);
      }
      groups.resize(static_cast<size_t>(preferred_count));
      std::sort(groups.begin(), groups.end());
      spec.preferred_groups = std::move(groups);
    } else {
      spec.type = JobType::kBestEffort;
      spec.utility = UtilityFunction::BestEffortLinear(
          options.be_utility_per_task * spec.num_tasks, spec.submit_time,
          options.be_utility_horizon);
    }
    jobs.push_back(std::move(spec));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  return jobs;
}

GeneratedWorkload GenerateWorkload(const ClusterConfig& cluster,
                                   const WorkloadOptions& options) {
  TS_CHECK_GT(options.duration, 0.0);
  TS_CHECK_GT(options.load, 0.0);
  Rng rng(options.seed);
  Rng env_rng = rng.Fork();
  const EnvironmentModel model =
      EnvironmentModel::Make(options.env, cluster.max_group_size(), env_rng.engine()());

  // --- 1+2. Historical sample, clustered on log-runtime. -------------------
  std::vector<TraceJob> history;
  std::vector<double> log_runtimes;
  history.reserve(static_cast<size_t>(options.model_sample_jobs));
  Rng hist_rng = rng.Fork();
  for (int i = 0; i < options.model_sample_jobs; ++i) {
    history.push_back(model.Sample(hist_rng));
    log_runtimes.push_back(std::log(history.back().runtime));
  }
  const KMeansResult clusters =
      KMeans1D(log_runtimes, static_cast<size_t>(options.num_job_classes));

  // --- 3. Per-class population PMFs. ---------------------------------------
  std::map<std::pair<std::string, std::string>, int> population_index;
  for (size_t i = 0; i < model.populations().size(); ++i) {
    const JobPopulation& p = model.populations()[i];
    population_index[{p.user, p.jobname}] = static_cast<int>(i);
  }
  std::vector<JobClassModel> classes(clusters.centroids.size());
  for (size_t i = 0; i < history.size(); ++i) {
    JobClassModel& jc = classes[clusters.assignment[i]];
    jc.weight += 1.0;
    const int pop = population_index.at({history[i].user, history[i].jobname});
    auto it = std::find(jc.population_ids.begin(), jc.population_ids.end(), pop);
    if (it == jc.population_ids.end()) {
      jc.population_ids.push_back(pop);
      jc.population_weights.push_back(1.0);
    } else {
      jc.population_weights[it - jc.population_ids.begin()] += 1.0;
    }
  }
  std::vector<double> class_weights;
  class_weights.reserve(classes.size());
  for (const JobClassModel& jc : classes) {
    class_weights.push_back(jc.weight);
  }

  // Jobs longer than most of the window cannot complete inside the
  // experiment; filter them as the paper filters over-sized jobs.
  const double runtime_cap = options.duration * 0.6;
  Rng job_rng = rng.Fork();
  const auto emit_trace_job = [&]() {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const JobClassModel& jc = classes[job_rng.WeightedIndex(class_weights)];
      const int pop = jc.population_ids[job_rng.WeightedIndex(jc.population_weights)];
      TraceJob job = SampleFromPopulation(model.populations()[pop], job_rng);
      if (job.runtime <= runtime_cap) {
        return job;
      }
    }
    TraceJob job;  // Degenerate fallback; unreachable in practice.
    job.user = "fallback";
    job.jobname = "fallback";
    job.runtime = runtime_cap * 0.5;
    return job;
  };

  // --- 4. Emit jobs until the offered work hits the target. ----------------
  const double capacity_work = cluster.total_nodes() * options.duration;
  const double target_work = options.load * capacity_work;
  std::vector<TraceJob> emitted;
  double total_work = 0.0;
  if (options.fixed_job_count > 0) {
    for (int i = 0; i < options.fixed_job_count; ++i) {
      emitted.push_back(emit_trace_job());
      total_work += emitted.back().runtime * emitted.back().num_tasks;
    }
    // Scale runtimes so the fixed job count still offers the target load.
    const double scale = target_work / std::max(total_work, 1.0);
    total_work = 0.0;
    for (TraceJob& job : emitted) {
      job.runtime = std::clamp(job.runtime * scale, 1.0, runtime_cap);
      total_work += job.runtime * job.num_tasks;
    }
  } else {
    while (total_work < target_work) {
      emitted.push_back(emit_trace_job());
      total_work += emitted.back().runtime * emitted.back().num_tasks;
    }
  }

  // --- 5. Arrival process: H2 with c_a² = 4, normalized to the window. -----
  std::vector<double> arrivals;
  arrivals.reserve(emitted.size());
  const double mean_gap = options.duration / std::max<size_t>(emitted.size(), 1);
  double t = 0.0;
  for (size_t i = 0; i < emitted.size(); ++i) {
    t += job_rng.HyperExponential(mean_gap, options.arrival_cv2);
    arrivals.push_back(t);
  }
  const double stretch = options.duration / std::max(t, 1e-9);
  for (double& a : arrivals) {
    a *= stretch;
  }

  // --- 6. SLO/BE split, deadlines, preferences, utilities. -----------------
  std::vector<TimedTraceJob> records;
  records.reserve(emitted.size());
  for (size_t i = 0; i < emitted.size(); ++i) {
    records.push_back(TimedTraceJob{emitted[i], arrivals[i]});
  }
  GeneratedWorkload out;
  out.offered_load = total_work / capacity_work;
  out.jobs = ShapeTraceJobs(records, cluster, options);

  // --- Pre-training stream (§5 "Estimates"). --------------------------------
  Rng pre_rng = rng.Fork();
  std::map<std::string, int> per_population_count;
  out.pretrain.reserve(static_cast<size_t>(options.pretrain_jobs));
  int attempts = 0;
  while (static_cast<int>(out.pretrain.size()) < options.pretrain_jobs &&
         attempts < options.pretrain_jobs * 20) {
    ++attempts;
    const JobClassModel& jc = classes[pre_rng.WeightedIndex(class_weights)];
    const int pop = jc.population_ids[pre_rng.WeightedIndex(jc.population_weights)];
    TraceJob tj = SampleFromPopulation(model.populations()[pop], pre_rng);
    if (tj.runtime > runtime_cap) {
      continue;
    }
    if (options.pretrain_sample_cap > 0) {
      int& count = per_population_count[tj.user + "|" + tj.jobname];
      if (count >= options.pretrain_sample_cap) {
        continue;
      }
      ++count;
    }
    JobSpec spec;
    spec.id = -static_cast<JobId>(out.pretrain.size() + 1);
    spec.user = tj.user;
    spec.name = tj.jobname;
    spec.true_runtime = tj.runtime;
    spec.num_tasks = tj.num_tasks;
    spec.features = MakeJobFeatures(tj);
    out.pretrain.push_back(std::move(spec));
  }
  return out;
}

}  // namespace threesigma
