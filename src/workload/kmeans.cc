#include "src/workload/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace threesigma {

KMeansResult KMeans1D(const std::vector<double>& values, size_t k, int max_iterations) {
  TS_CHECK(!values.empty());
  TS_CHECK_GE(k, 1u);
  KMeansResult result;

  // Quantile initialization: spreads centroids across the data range and is
  // deterministic.
  std::vector<double> centroids;
  for (size_t i = 0; i < k; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(k);
    centroids.push_back(Quantile(values, q));
  }
  std::sort(centroids.begin(), centroids.end());
  centroids.erase(std::unique(centroids.begin(), centroids.end()), centroids.end());

  std::vector<int> assignment(values.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    // Assign: nearest centroid (centroids sorted, but linear scan is fine for
    // small k).
    bool changed = false;
    for (size_t i = 0; i < values.size(); ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centroids.size(); ++c) {
        const double dist = std::fabs(values[i] - centroids[c]);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int>(c);
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) {
      break;
    }
    // Update: centroid = mean of members; empty clusters are dropped below.
    std::vector<double> sums(centroids.size(), 0.0);
    std::vector<size_t> counts(centroids.size(), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      sums[assignment[i]] += values[i];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] > 0) {
        centroids[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
  }

  // Drop empty clusters and compact the assignment indices.
  std::vector<size_t> counts(centroids.size(), 0);
  for (int a : assignment) {
    ++counts[a];
  }
  std::vector<int> remap(centroids.size(), -1);
  for (size_t c = 0; c < centroids.size(); ++c) {
    if (counts[c] > 0) {
      remap[c] = static_cast<int>(result.centroids.size());
      result.centroids.push_back(centroids[c]);
    }
  }
  result.assignment.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    result.assignment[i] = remap[assignment[i]];
    TS_CHECK_GE(result.assignment[i], 0);
  }
  return result;
}

}  // namespace threesigma
