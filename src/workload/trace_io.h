// Trace import/export.
//
// Two formats:
//   - Native CSV: `submit,user,jobname,runtime,tasks` — the minimal record
//     the workload pipeline needs. Round-trips through Write/ReadTraceCsv.
//   - SWF (Standard Workload Format): the de-facto HPC archive format the
//     Mustang-class traces are distributed in — `;`-prefixed comment header,
//     then 18 whitespace-separated fields per job. We consume the fields the
//     pipeline needs (submit time, run time, allocated processors, user id,
//     executable id) and ignore the rest.
//
// Loaded records run through the same ShapeTraceJobs pipeline as synthetic
// workloads (SLO/BE split, deadlines, preferences, utilities), so a real
// trace replay exercises the identical scheduler path.

#ifndef SRC_WORKLOAD_TRACE_IO_H_
#define SRC_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/workload/generator.h"

namespace threesigma {

// --- Native CSV -------------------------------------------------------------

// Writes `submit,user,jobname,runtime,tasks` rows (with header).
void WriteTraceCsv(std::ostream& os, const std::vector<TimedTraceJob>& records);
// Parses rows written by WriteTraceCsv. Throws via TS_CHECK on malformed
// input; returns records sorted by submit time.
std::vector<TimedTraceJob> ReadTraceCsv(std::istream& is);

// --- SWF --------------------------------------------------------------------

struct SwfReadOptions {
  // Jobs wider than this many processors are dropped (the paper filters jobs
  // larger than the evaluation cluster); <= 0 keeps everything.
  int max_tasks = 0;
  // Jobs with non-positive runtime or processors are always dropped.
  // Relative submit times are rebased so the first kept job arrives at 0.
  bool rebase_submit_times = true;
};

// Parses a Standard Workload Format stream into trace records. User and
// executable ids become the "user<N>"/"exe<N>" feature strings.
std::vector<TimedTraceJob> ReadSwf(std::istream& is, const SwfReadOptions& options = {});

}  // namespace threesigma

#endif  // SRC_WORKLOAD_TRACE_IO_H_
