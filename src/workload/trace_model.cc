#include "src/workload/trace_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace threesigma {

const char* EnvironmentName(EnvironmentKind kind) {
  switch (kind) {
    case EnvironmentKind::kGoogle:
      return "Google";
    case EnvironmentKind::kHedgeFund:
      return "HedgeFund";
    case EnvironmentKind::kMustang:
      return "Mustang";
  }
  return "unknown";
}

EnvironmentModel::EnvironmentModel(EnvironmentKind kind, std::vector<JobPopulation> populations)
    : kind_(kind), populations_(std::move(populations)) {
  TS_CHECK(!populations_.empty());
  weights_.reserve(populations_.size());
  for (const JobPopulation& p : populations_) {
    weights_.push_back(p.weight);
  }
}

EnvironmentModel EnvironmentModel::Make(EnvironmentKind kind, int max_tasks, uint64_t seed) {
  TS_CHECK_GE(max_tasks, 1);
  Rng rng(seed);
  std::vector<JobPopulation> pops;

  const auto log_uniform_tasks = [&](double lo_frac, double hi_frac) {
    const int lo = std::max(1, static_cast<int>(max_tasks * lo_frac));
    const int hi = std::max(lo, static_cast<int>(max_tasks * hi_frac));
    return std::pair<int, int>(lo, hi);
  };

  switch (kind) {
    case EnvironmentKind::kGoogle: {
      // ~100 populations across ~50 users; runtimes span seconds to hours
      // with a heavy tail; moderate per-population variability; production
      // populations skew tight, exploratory ones wide.
      const int num_users = 50;
      for (int u = 0; u < num_users; ++u) {
        const int names = static_cast<int>(rng.UniformInt(1, 3));
        for (int n = 0; n < names; ++n) {
          JobPopulation p;
          p.user = "guser" + std::to_string(u);
          p.jobname = "gjob" + std::to_string(u) + "_" + std::to_string(n);
          p.weight = rng.BoundedPareto(1.0, 50.0, 1.2);  // A few hot users.
          p.log_mu = rng.Uniform(std::log(30.0), std::log(8000.0));
          p.log_sigma = rng.Bernoulli(0.75) ? rng.Uniform(0.05, 0.4) : rng.Uniform(0.4, 1.0);
          if (rng.Bernoulli(0.08)) {
            p.tail_prob = rng.Uniform(0.02, 0.06);
            p.tail_alpha = 1.2;
            p.tail_max = 100000.0;
          }
          const auto [lo, hi] = log_uniform_tasks(0.01, rng.Bernoulli(0.2) ? 1.0 : 0.3);
          p.min_tasks = lo;
          p.max_tasks = hi;
          pops.push_back(std::move(p));
        }
      }
      break;
    }
    case EnvironmentKind::kHedgeFund: {
      // Exploratory financial analytics: widest variability, both tails fat,
      // shorter runtimes, no long-running services.
      const int num_users = 40;
      for (int u = 0; u < num_users; ++u) {
        const int names = static_cast<int>(rng.UniformInt(1, 4));
        for (int n = 0; n < names; ++n) {
          JobPopulation p;
          p.user = "quant" + std::to_string(u);
          p.jobname = "strat" + std::to_string(u) + "_" + std::to_string(n);
          p.weight = rng.BoundedPareto(1.0, 30.0, 1.1);
          p.log_mu = rng.Uniform(std::log(20.0), std::log(3000.0));
          // High CoV mass (Fig. 2b), but a third of the populations are
          // recurring production strategies with tamer variability.
          p.log_sigma =
              rng.Bernoulli(0.35) ? rng.Uniform(0.08, 0.3) : rng.Uniform(0.3, 1.1);
          if (rng.Bernoulli(0.2)) {
            p.tail_prob = rng.Uniform(0.04, 0.1);
            p.tail_alpha = 1.1;
            p.tail_max = 50000.0;
          }
          const auto [lo, hi] = log_uniform_tasks(0.01, 0.2);
          p.min_tasks = lo;
          p.max_tasks = hi;
          pops.push_back(std::move(p));
        }
      }
      break;
    }
    case EnvironmentKind::kMustang: {
      // HPC capacity cluster: a big mass of extremely repetitive campaigns
      // (near-perfect estimates) plus wide development/test populations;
      // whole-machine allocations; long runtimes.
      const int num_users = 45;
      for (int u = 0; u < num_users; ++u) {
        const int names = static_cast<int>(rng.UniformInt(1, 2));
        for (int n = 0; n < names; ++n) {
          JobPopulation p;
          p.user = "sci" + std::to_string(u);
          p.jobname = "campaign" + std::to_string(u) + "_" + std::to_string(n);
          p.weight = rng.BoundedPareto(1.0, 40.0, 1.3);
          p.log_mu = rng.Uniform(std::log(300.0), std::log(40000.0));
          if (rng.Bernoulli(0.55)) {
            p.log_sigma = rng.Uniform(0.01, 0.08);  // Repetitive campaigns.
          } else {
            p.log_sigma = rng.Uniform(0.8, 2.5);    // Dev/test churn.
            p.tail_prob = rng.Uniform(0.05, 0.2);
            p.tail_alpha = 0.9;
            p.tail_max = 200000.0;
          }
          const auto [lo, hi] = log_uniform_tasks(0.05, 1.0);
          p.min_tasks = lo;
          p.max_tasks = hi;
          pops.push_back(std::move(p));
        }
      }
      break;
    }
  }
  return EnvironmentModel(kind, std::move(pops));
}

TraceJob EnvironmentModel::Sample(Rng& rng) const {
  const JobPopulation& p = populations_[rng.WeightedIndex(weights_)];
  TraceJob job;
  job.user = p.user;
  job.jobname = p.jobname;
  if (p.tail_prob > 0.0 && rng.Bernoulli(p.tail_prob)) {
    // Straggler: a bounded-Pareto excursion above the population's median.
    const double base = std::exp(p.log_mu);
    job.runtime = rng.BoundedPareto(base, std::max(p.tail_max, base * 2.0), p.tail_alpha);
  } else {
    job.runtime = rng.LogNormal(p.log_mu, p.log_sigma);
  }
  job.runtime = std::clamp(job.runtime, 1.0, 250000.0);
  // Log-uniform task count within the population's range.
  const double lt = rng.Uniform(std::log(static_cast<double>(p.min_tasks)),
                                std::log(static_cast<double>(p.max_tasks) + 1.0));
  job.num_tasks = std::max(1, static_cast<int>(std::exp(lt)));
  job.num_tasks = std::min(job.num_tasks, p.max_tasks);
  return job;
}

}  // namespace threesigma
