#include "src/workload/trace_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace threesigma {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) {
    cells.push_back(cell);
  }
  return cells;
}

double ParseDouble(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  TS_CHECK_MSG(end != s.c_str(), "unparseable " << what << ": '" << s << "'");
  return v;
}

}  // namespace

void WriteTraceCsv(std::ostream& os, const std::vector<TimedTraceJob>& records) {
  os << "submit,user,jobname,runtime,tasks\n";
  for (const TimedTraceJob& r : records) {
    TS_CHECK_MSG(r.job.user.find(',') == std::string::npos &&
                     r.job.jobname.find(',') == std::string::npos,
                 "commas in identifiers are not supported");
    os << r.submit << "," << r.job.user << "," << r.job.jobname << "," << r.job.runtime
       << "," << r.job.num_tasks << "\n";
  }
}

std::vector<TimedTraceJob> ReadTraceCsv(std::istream& is) {
  std::vector<TimedTraceJob> records;
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (line.rfind("submit,", 0) == 0) {
        continue;  // Header.
      }
    }
    const std::vector<std::string> cells = SplitCsvLine(line);
    TS_CHECK_MSG(cells.size() == 5, "line " << line_no << ": expected 5 cells, got "
                                            << cells.size());
    TimedTraceJob r;
    r.submit = ParseDouble(cells[0], "submit");
    r.job.user = cells[1];
    r.job.jobname = cells[2];
    r.job.runtime = ParseDouble(cells[3], "runtime");
    r.job.num_tasks = static_cast<int>(ParseDouble(cells[4], "tasks"));
    TS_CHECK_MSG(r.job.runtime > 0.0, "line " << line_no << ": non-positive runtime");
    TS_CHECK_MSG(r.job.num_tasks > 0, "line " << line_no << ": non-positive tasks");
    records.push_back(std::move(r));
  }
  std::sort(records.begin(), records.end(),
            [](const TimedTraceJob& a, const TimedTraceJob& b) { return a.submit < b.submit; });
  return records;
}

std::vector<TimedTraceJob> ReadSwf(std::istream& is, const SwfReadOptions& options) {
  // SWF fields (1-based): 1 job#, 2 submit, 3 wait, 4 runtime, 5 allocated
  // procs, 6 avg cpu, 7 used mem, 8 requested procs, 9 requested time,
  // 10 requested mem, 11 status, 12 user id, 13 group id, 14 executable id,
  // 15 queue, 16 partition, 17 preceding job, 18 think time.
  std::vector<TimedTraceJob> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == ';') {
      continue;  // Comment / header directive.
    }
    std::istringstream ss(line);
    double field[18];
    int got = 0;
    while (got < 18 && (ss >> field[got])) {
      ++got;
    }
    if (got < 14) {
      continue;  // Short or malformed row; SWF tooling conventionally skips.
    }
    const double submit = field[1];
    const double runtime = field[3];
    const double procs = field[4] > 0 ? field[4] : field[7];  // Fall back to requested.
    const int user_id = static_cast<int>(field[11]);
    const int exe_id = static_cast<int>(field[13]);
    if (runtime <= 0.0 || procs <= 0.0) {
      continue;
    }
    if (options.max_tasks > 0 && procs > options.max_tasks) {
      continue;
    }
    TimedTraceJob r;
    r.submit = submit;
    r.job.runtime = runtime;
    r.job.num_tasks = static_cast<int>(procs);
    r.job.user = "user" + std::to_string(user_id);
    r.job.jobname = "exe" + std::to_string(exe_id);
    records.push_back(std::move(r));
  }
  std::sort(records.begin(), records.end(),
            [](const TimedTraceJob& a, const TimedTraceJob& b) { return a.submit < b.submit; });
  if (options.rebase_submit_times && !records.empty()) {
    const double base = records.front().submit;
    for (TimedTraceJob& r : records) {
      r.submit -= base;
    }
  }
  return records;
}

}  // namespace threesigma
