// Statistical models of the paper's three trace environments (§2.1, §5).
//
// We do not have the proprietary traces, so each environment is a generative
// model of *job populations* — recurring (user, job-name) activities with
// their own runtime behavior — fit to the published characteristics:
//
//   Google     — heavy-tailed runtimes (seconds to hours), moderate per-user
//                variability (Fig. 2b puts most user CoVs below ~1), small
//                estimate-error tails (8% ≥ 2× error).
//   HedgeFund  — exploratory financial analytics: widest per-population
//                variability, fewest highly-accurate estimates, fat error
//                tails on both sides.
//   Mustang    — HPC capacity cluster: a large mass of extremely repetitive
//                jobs (near-exact estimates) *plus* wide development/test
//                populations (≥23% of errors beyond +95%), whole-machine
//                allocations and long runtimes.
//
// The Fig. 2 analysis bench (bench/fig02_trace_analysis) regenerates the
// paper's runtime CDF / CoV / estimate-error plots from these models, which
// is how the substitution is validated.

#ifndef SRC_WORKLOAD_TRACE_MODEL_H_
#define SRC_WORKLOAD_TRACE_MODEL_H_

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace threesigma {

enum class EnvironmentKind {
  kGoogle,
  kHedgeFund,
  kMustang,
};

const char* EnvironmentName(EnvironmentKind kind);

// One sampled historical job.
struct TraceJob {
  std::string user;
  std::string jobname;
  double runtime = 0.0;  // Seconds.
  int num_tasks = 1;
};

// A recurring activity: the latent unit of predictability.
struct JobPopulation {
  std::string user;
  std::string jobname;
  double weight = 1.0;       // Relative submission rate.
  double log_mu = 0.0;       // Runtime ~ LogNormal(log_mu, log_sigma)...
  double log_sigma = 0.5;    // ...population variability.
  double tail_prob = 0.0;    // ...mixed with a bounded-Pareto straggler tail.
  double tail_alpha = 1.0;
  double tail_max = 0.0;
  int min_tasks = 1;
  int max_tasks = 1;         // Tasks ~ log-uniform in [min, max].
};

class EnvironmentModel {
 public:
  EnvironmentModel(EnvironmentKind kind, std::vector<JobPopulation> populations);

  // Builds the environment's population set. `max_tasks` caps gang width at
  // the placement-group capacity (the paper filters jobs larger than the
  // cluster; we filter at group size — see DESIGN.md).
  static EnvironmentModel Make(EnvironmentKind kind, int max_tasks, uint64_t seed);

  // Samples one job.
  TraceJob Sample(Rng& rng) const;

  EnvironmentKind kind() const { return kind_; }
  const std::vector<JobPopulation>& populations() const { return populations_; }

 private:
  EnvironmentKind kind_;
  std::vector<JobPopulation> populations_;
  std::vector<double> weights_;
};

}  // namespace threesigma

#endif  // SRC_WORKLOAD_TRACE_MODEL_H_
