// Synthetic workload generation (§5 "Workloads").
//
// The pipeline follows the paper's E2E recipe:
//   1. sample a historical trace from the environment model,
//   2. k-means-cluster job runtimes into job classes,
//   3. derive per-class attribute/feature distributions,
//   4. emit jobs by drawing a class (by empirical mass), then a population
//      from the class's feature PMF, then runtime/tasks from that population,
//   5. lay out arrivals as a hyper-exponential process with c_a² = 4,
//      scaled so the offered load (machine-time / capacity) hits the target,
//   6. split jobs evenly into SLO (deadline slack drawn from a configured
//      set; preferred resources = a random 75% of groups; 1.5× slowdown
//      elsewhere) and latency-sensitive best-effort jobs,
// plus a pre-training stream for 3σPredict (§5 "Estimates"), optionally
// capped at n samples per feature for the Fig. 11 sample-size study.

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/workload/trace_model.h"

namespace threesigma {

struct WorkloadOptions {
  EnvironmentKind env = EnvironmentKind::kGoogle;
  Duration duration = Hours(5.0);
  // Offered load: submitted machine-time / cluster space-time (§5).
  double load = 1.4;
  // Fraction of jobs that are SLO (the paper uses an even mixture).
  double slo_fraction = 0.5;
  // Deadline slack options in percent; each SLO job draws one uniformly.
  std::vector<double> deadline_slacks = {20.0, 40.0, 60.0, 80.0};
  // Arrival process burstiness (squared coefficient of variation).
  double arrival_cv2 = 4.0;

  // Job-class derivation.
  int num_job_classes = 8;
  int model_sample_jobs = 4000;

  // Pre-training stream (steady-state predictor state before the run).
  int pretrain_jobs = 4000;
  // Fig. 11: cap the number of pre-training samples per population (0 = off).
  int pretrain_sample_cap = 0;

  // Placement preferences.
  double preferred_group_fraction = 0.75;
  double nonpreferred_slowdown = 1.5;

  // Utility magnitudes. SLO value must dominate BE value so the MILP ranks
  // deadlines above best-effort latency the way production schedulers do.
  double slo_utility_per_task = 50.0;
  double be_utility_per_task = 1.0;
  Duration be_utility_horizon = Hours(2.0);

  // When > 0, emit exactly this many jobs and scale runtimes to hit `load`
  // (the Fig. 12 SCALABILITY-n workloads fix jobs/hour instead of work).
  int fixed_job_count = 0;

  uint64_t seed = 42;
};

struct GeneratedWorkload {
  std::vector<JobSpec> jobs;      // The experiment window, by submit time.
  std::vector<JobSpec> pretrain;  // Completed history for predictor warm-up.
  double offered_load = 0.0;      // Achieved machine-time / capacity.
};

GeneratedWorkload GenerateWorkload(const ClusterConfig& cluster, const WorkloadOptions& options);

// A raw trace record with its absolute submission time.
struct TimedTraceJob {
  TraceJob job;
  Time submit = 0.0;
};

// Turns raw trace records into scheduler-ready jobs using the §5 recipe:
// SLO/BE split, deadline slack, preferred groups, slowdown, utilities,
// features. Shared by the synthetic generator and the trace loaders
// (workload/trace_io.h), so replayed real traces get the identical shaping.
std::vector<JobSpec> ShapeTraceJobs(const std::vector<TimedTraceJob>& records,
                                    const ClusterConfig& cluster,
                                    const WorkloadOptions& options);

// Feature extraction shared by the generator and the Fig. 2 analyses.
JobFeatures MakeJobFeatures(const TraceJob& job);

}  // namespace threesigma

#endif  // SRC_WORKLOAD_GENERATOR_H_
