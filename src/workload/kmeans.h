// 1-D k-means (Lloyd's algorithm) used to derive job classes from runtimes,
// mirroring §5: "The remaining jobs — clustered using k-means clustering on
// their runtimes. We derive parameters for the distributions of the job
// attributes ... in each job class."

#ifndef SRC_WORKLOAD_KMEANS_H_
#define SRC_WORKLOAD_KMEANS_H_

#include <cstddef>
#include <vector>

namespace threesigma {

struct KMeansResult {
  std::vector<double> centroids;   // Sorted ascending; size <= k.
  std::vector<int> assignment;     // Per input point, index into centroids.
  int iterations = 0;
};

// Clusters `values` into at most `k` clusters. Initialization is
// deterministic (evenly spaced quantiles), so identical inputs give identical
// clusters. Empty clusters are dropped.
KMeansResult KMeans1D(const std::vector<double>& values, size_t k, int max_iterations = 100);

}  // namespace threesigma

#endif  // SRC_WORKLOAD_KMEANS_H_
