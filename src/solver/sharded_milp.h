// Exact shard decomposition for the per-cycle placement MILP.
//
// The scheduler's MILP is block-separable: jobs only interact through the
// expected-capacity rows of the equivalence sets they can land on, so the
// bipartite variable↔row constraint graph usually splits into independent
// connected components ("shards"). Each shard is compiled into its own
// sub-MILP and solved independently — optionally in parallel on the solver
// thread pool — and the per-shard optima are scattered back into one
// full-length solution vector.
//
// Exactness: components share no variables and no rows, so the feasible set
// of the monolithic model is the Cartesian product of the shard feasible
// sets and the objective is a sum of per-shard objectives. Solving every
// shard to proven optimality therefore yields a global optimum. The merged
// objective is recomputed through the *full* model's ObjectiveValue so the
// floating-point accumulation order matches the monolithic solve exactly:
// identical solution vectors produce bitwise-identical objectives.
//
// Determinism: the decomposition is a deterministic union-find (components
// ordered by smallest member variable index, variables and rows in ascending
// model order inside each shard), every sub-solve runs the single-threaded
// deterministic wave search, and the merge walks shards in order on the
// calling thread. The result is byte-identical at any shard/thread count.
// Budgets are the one caveat: each shard receives the full node budget, so a
// *binding* max_nodes explores a different (larger) portion of the tree than
// the monolithic search — run unbudgeted when comparing against monolithic.
//
// Warm bases: each shard's root-relaxation basis is returned keyed by a
// structural fingerprint (variable/row counts, row senses, local sparsity
// pattern — not coefficients), so the next cycle's matching shard can warm
// start its root LP. Bases never change answers, only pivot counts, so a
// fingerprint collision is harmless.

#ifndef SRC_SOLVER_SHARDED_MILP_H_
#define SRC_SOLVER_SHARDED_MILP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/solver/lp_model.h"
#include "src/solver/milp.h"

namespace threesigma {

// One connected component of the constraint graph, compiled as a standalone
// sub-MILP. `vars` / `rows` are the ascending global indices backing the
// sub-model; local index i corresponds to global index vars[i] (rows[i]).
struct MilpShard {
  std::vector<int> vars;
  std::vector<int> rows;
  // Local indices of the integral variables, preserving the caller's
  // integer_vars ordering (branching tie-breaks follow this order).
  std::vector<int> integer_vars;
  // Structural fingerprint for cross-cycle basis reuse.
  uint64_t fingerprint = 0;
  LpModel model;
};

struct ShardDecomposition {
  // Ordered by smallest member global variable index.
  std::vector<MilpShard> shards;
  // True when a zero-term row (possible through the general LpModel API once
  // AddRow coalesces terms away; the scheduler never builds one) has an
  // unsatisfiable right-hand side, making the whole program infeasible
  // before any solve.
  bool trivially_infeasible = false;
};

// Splits `model` into connected components via union-find over variables
// (all variables sharing a row are united; row-free variables form singleton
// shards). Pure function of the model structure — deterministic.
ShardDecomposition DecomposeMilp(const LpModel& model,
                                 const std::vector<int>& integer_vars);

struct ShardedMilpOptions {
  // Per-shard solve options. `num_threads` / `pool` drive the shard fan-out;
  // every sub-solve itself runs single-threaded (the parallelism is across
  // shards). `warm_start` is sliced per shard; `root_basis` is ignored
  // (per-shard bases come from `shard_bases`). `emit_span` is forced off for
  // sub-solves so no span is emitted from pool workers.
  MilpOptions base;
  // Optional cross-cycle basis map, keyed by shard fingerprint. Read for
  // root-basis hints before the fan-out; updated in shard order with this
  // solve's root bases after the merge. May be nullptr.
  std::map<uint64_t, LpBasis>* shard_bases = nullptr;
};

struct ShardedMilpSolution {
  // Merged solution, shaped exactly like a monolithic MilpSolver::Solve
  // result over the full model (root_basis is left empty; the per-shard
  // bases live in the fingerprint map instead).
  MilpSolution merged;
  int num_shards = 0;
  // Largest / smallest shard by variable count (imbalance diagnostics).
  int max_shard_vars = 0;
  int min_shard_vars = 0;
};

// Decomposes, solves every shard to its per-shard optimum, and merges.
// Equivalent to MilpSolver(model, integer_vars).Solve(...) in objective
// (bitwise, when unbudgeted) and in solution vector whenever the optimum is
// unique.
ShardedMilpSolution SolveShardedMilp(const LpModel& model,
                                     const std::vector<int>& integer_vars,
                                     const ShardedMilpOptions& options);

}  // namespace threesigma

#endif  // SRC_SOLVER_SHARDED_MILP_H_
