// Linear program model builder.
//
// 3σSched compiles each scheduling cycle into a 0/1 MILP (§4.3.3): one binary
// indicator per placement option, at-most-one-option demand rows per job, and
// expected-capacity rows per (resource group, time slot). LpModel is the
// shared representation consumed by both the simplex LP solver and the
// branch-and-bound MILP solver.
//
// Conventions: the objective is always MAXIMIZED; variables have explicit
// [lower, upper] bounds (use kLpInfinity for unbounded).

#ifndef SRC_SOLVER_LP_MODEL_H_
#define SRC_SOLVER_LP_MODEL_H_

#include <string>
#include <vector>

namespace threesigma {

inline constexpr double kLpInfinity = 1e30;

enum class RowSense {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

struct LpTerm {
  int var;
  double coeff;
};

struct LpRow {
  RowSense sense;
  double rhs;
  std::vector<LpTerm> terms;
  std::string name;
};

class LpModel {
 public:
  // Returns the new variable's index. `objective` is the maximization
  // coefficient.
  int AddVariable(double lower, double upper, double objective, std::string name = "");

  // Returns the new row's index. Zero-coefficient terms are dropped (the
  // paper's §4.3.6 "internal pruning of generated MILP expressions").
  int AddRow(RowSense sense, double rhs, std::vector<LpTerm> terms, std::string name = "");

  // Tightens/relaxes a variable's box; used by branch-and-bound to fix
  // branching variables.
  void SetVariableBounds(int var, double lower, double upper);

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  double lower(int var) const { return lower_[var]; }
  double upper(int var) const { return upper_[var]; }
  double objective(int var) const { return objective_[var]; }
  const std::string& var_name(int var) const { return var_names_[var]; }
  const LpRow& row(int r) const { return rows_[r]; }
  const std::vector<LpRow>& rows() const { return rows_; }

  // Objective value of an assignment (no feasibility check).
  double ObjectiveValue(const std::vector<double>& x) const;
  // True when `x` satisfies all bounds and rows within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<std::string> var_names_;
  std::vector<LpRow> rows_;
};

}  // namespace threesigma

#endif  // SRC_SOLVER_LP_MODEL_H_
