// Branch-and-bound mixed-integer solver over LpModel.
//
// The scheduler's problems are pure 0/1 programs: one binary indicator per
// placement/preemption option (§4.3.3). The solver mirrors the scalability
// techniques of §4.3.6:
//   - warm start: the previous cycle's placement is validated and installed
//     as the initial incumbent ("leaving the cluster state unchanged ... a
//     feasible solution"),
//   - best-found-within-budget: node and wall-clock budgets bound the search;
//     the incumbent is returned when the budget expires,
//   - a greedy rounding pass on each LP relaxation supplies incumbents early
//     so pruning is effective.

#ifndef SRC_SOLVER_MILP_H_
#define SRC_SOLVER_MILP_H_

#include <cstdint>
#include <vector>

#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace threesigma {

enum class MilpStatus {
  kOptimal,     // Proven optimal.
  kFeasible,    // Best incumbent at budget expiry.
  kInfeasible,  // No integral feasible point exists (or none found + LP infeasible).
};

struct MilpSolution {
  MilpStatus status = MilpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  int nodes_explored = 0;
  int lp_iterations = 0;
  // True when the returned incumbent came from the warm start and was never
  // improved (diagnostic for the warm-start ablation bench).
  bool warm_start_returned = false;
};

struct MilpOptions {
  // Wall-clock budget in seconds; <= 0 disables the limit. Mirrors the
  // paper's "best solution found within a configurable fraction of the
  // scheduling interval".
  double time_limit_seconds = 0.0;
  // Branch-and-bound node budget; <= 0 disables the limit.
  int max_nodes = 0;
  // Integrality tolerance.
  double integrality_tol = 1e-6;
  // Initial incumbent (e.g. the previous scheduling cycle's solution). Used
  // only if it is feasible for the current model.
  std::vector<double> warm_start;
};

class MilpSolver {
 public:
  // `integer_vars` lists the variables constrained to integral values; for
  // the scheduler these are all the [0,1] indicator variables.
  MilpSolver(const LpModel& model, std::vector<int> integer_vars);

  MilpSolution Solve(const MilpOptions& options = {});

 private:
  // Rounds an LP-relaxation point to a feasible integral point greedily;
  // returns true on success.
  bool GreedyRound(const std::vector<double>& relaxed, std::vector<double>* out) const;

  const LpModel& model_;
  std::vector<int> integer_vars_;
};

}  // namespace threesigma

#endif  // SRC_SOLVER_MILP_H_
