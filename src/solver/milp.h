// Branch-and-bound mixed-integer solver over LpModel.
//
// The scheduler's problems are pure 0/1 programs: one binary indicator per
// placement/preemption option (§4.3.3). The solver mirrors the scalability
// techniques of §4.3.6:
//   - warm start: the previous cycle's placement is validated and installed
//     as the initial incumbent ("leaving the cluster state unchanged ... a
//     feasible solution"),
//   - best-found-within-budget: node and wall-clock budgets bound the search;
//     the incumbent is returned when the budget expires,
//   - a greedy rounding pass on each LP relaxation supplies incumbents early
//     so pruning is effective.
//
// Parallel search: the tree is explored in deterministic *waves*. Each wave
// pops up to `batch_width` nodes off the subproblem stack, solves their LP
// relaxations concurrently (`num_threads` workers, each with a private
// LpModel copy, pulling node indices from a shared atomic cursor and reading
// the atomic incumbent bound lock-free to skip dominated nodes), then
// commits the results sequentially in pop order. Because the wave schedule
// depends only on `batch_width` (never on thread count) and the incumbent
// advances only at the sequential commits — with ties between equal-objective
// incumbents broken toward the lexicographically smallest node id — the
// explored tree, node counts, and returned solution are bit-identical for
// any thread count. Only the wall-clock budget can break this (it truncates
// the search at a hardware-dependent point).

#ifndef SRC_SOLVER_MILP_H_
#define SRC_SOLVER_MILP_H_

#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace threesigma {

enum class MilpStatus {
  kOptimal,     // Proven optimal.
  kFeasible,    // Best incumbent at budget expiry.
  kInfeasible,  // No integral feasible point exists (or none found + LP infeasible).
};

// One incumbent replacement during the search (Fig. 12-style anytime
// diagnostics: how quickly the solver closes in on its final answer).
struct IncumbentImprovement {
  double seconds = 0.0;  // Offset from the start of Solve (wall clock).
  double objective = 0.0;
};

struct MilpSolution {
  MilpStatus status = MilpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  int nodes_explored = 0;
  int lp_iterations = 0;
  // LP work breakdown across all nodes (see LpStats). With basis warm-starting
  // most nodes re-optimize in a few dual pivots and phase-1 work collapses.
  int64_t lp_phase1_iterations = 0;
  int64_t lp_phase2_iterations = 0;
  int64_t lp_dual_iterations = 0;
  int64_t ftran_count = 0;
  int64_t btran_count = 0;
  int refactorizations = 0;
  // Nodes whose LP accepted a parent basis (install survived repair).
  int warm_started_nodes = 0;
  // Optimal basis of the root relaxation; feed it back as
  // MilpOptions::root_basis on the next, similar model (cross-cycle reuse).
  LpBasis root_basis;
  // True when the returned incumbent came from the warm start and was never
  // improved (diagnostic for the warm-start ablation bench).
  bool warm_start_returned = false;
  // Deepest the subproblem stack ever got (work-queue depth diagnostic).
  int max_queue_depth = 0;
  // Wall-clock time spent inside Solve.
  double solve_seconds = 0.0;
  // Every incumbent replacement, in commit order. The objectives are
  // deterministic; the timestamps are wall clock (diagnostic only).
  std::vector<IncumbentImprovement> incumbent_improvements;
};

struct MilpOptions {
  // Wall-clock budget in seconds; <= 0 disables the limit. Mirrors the
  // paper's "best solution found within a configurable fraction of the
  // scheduling interval". NOTE: an expiring time limit truncates the search
  // non-deterministically; disable it when bit-reproducibility matters.
  double time_limit_seconds = 0.0;
  // Branch-and-bound node budget; <= 0 disables the limit.
  int max_nodes = 0;
  // Integrality tolerance.
  double integrality_tol = 1e-6;
  // Initial incumbent (e.g. the previous scheduling cycle's solution). Used
  // only if it is feasible for the current model.
  std::vector<double> warm_start;
  // Worker threads for the wave-parallel search; <= 1 solves on the calling
  // thread. Ignored when `pool` is set (the pool's size wins).
  int num_threads = 1;
  // Optional borrowed pool (must outlive Solve). Lets the scheduler reuse
  // one pool across cycles instead of spawning threads per solve.
  ThreadPool* pool = nullptr;
  // Nodes dispatched per wave; 0 uses the default. Part of the deterministic
  // schedule: the result depends on this value but never on thread count, so
  // it must NOT be derived from num_threads.
  int batch_width = 0;
  // Thread each node's optimal basis to its children, which then re-optimize
  // with a few dual pivots instead of a cold two-phase solve. Every
  // relaxation still solves to proven optimality, so bounds, prunes, and the
  // returned objective are unaffected; thread-count determinism is fully
  // preserved (the basis flow follows the thread-count-independent wave
  // schedule). On a degenerate relaxation a warm solve may land on a
  // different optimal vertex than a cold one, which can reorder branching —
  // with a unique MILP optimum the returned solution is identical either way.
  bool basis_warmstart = true;
  // Starting basis hint for the root relaxation (e.g. the previous cycle's
  // MilpSolution::root_basis). Ignored unless basis_warmstart is on.
  LpBasis root_basis;
  // Emit the "solver.milp" trace span. The sharded driver turns this off for
  // its sub-solves unconditionally — sub-solves may run on pool workers, and
  // worker-emitted spans would make exported traces depend on thread count.
  bool emit_span = true;
};

class MilpSolver {
 public:
  // `integer_vars` lists the variables constrained to integral values; for
  // the scheduler these are all the [0,1] indicator variables.
  MilpSolver(const LpModel& model, std::vector<int> integer_vars);

  MilpSolution Solve(const MilpOptions& options = {});

 private:
  // Rounds an LP-relaxation point to a feasible integral point greedily;
  // returns true on success.
  bool GreedyRound(const std::vector<double>& relaxed, std::vector<double>* out) const;

  const LpModel& model_;
  std::vector<int> integer_vars_;
};

}  // namespace threesigma

#endif  // SRC_SOLVER_MILP_H_
