#include "src/solver/milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/check.h"

namespace threesigma {
namespace {

// A branching decision along the current tree path.
struct BoundFix {
  int var;
  double lower;
  double upper;
};

struct Node {
  std::vector<BoundFix> fixes;  // Full path from the root.
  double parent_bound;          // LP bound of the parent (pruning hint).
};

bool IsIntegral(double v, double tol) { return std::fabs(v - std::round(v)) <= tol; }

}  // namespace

MilpSolver::MilpSolver(const LpModel& model, std::vector<int> integer_vars)
    : model_(model), integer_vars_(std::move(integer_vars)) {
  for (int v : integer_vars_) {
    TS_CHECK_GE(v, 0);
    TS_CHECK_LT(v, model_.num_variables());
  }
}

bool MilpSolver::GreedyRound(const std::vector<double>& relaxed, std::vector<double>* out) const {
  // Greedy only supports the scheduler's row shapes (all <=); bail otherwise
  // and let branch-and-bound find incumbents on its own.
  for (const LpRow& row : model_.rows()) {
    if (row.sense != RowSense::kLessEqual) {
      return false;
    }
  }
  std::vector<double> x = relaxed;
  // Pull every integer variable down to its floor first (feasible for pure
  // <=-rows with non-negative coefficients, and a safe starting point
  // otherwise — final feasibility is re-checked at the end).
  for (int v : integer_vars_) {
    x[v] = std::floor(relaxed[v] + 1e-9);
  }
  // Row activities for the floored point.
  std::vector<double> activity(model_.num_rows(), 0.0);
  std::vector<std::vector<LpTerm>> columns(model_.num_variables());
  for (int r = 0; r < model_.num_rows(); ++r) {
    const LpRow& row = model_.row(r);
    for (const LpTerm& t : row.terms) {
      activity[r] += t.coeff * x[t.var];
      columns[t.var].push_back(LpTerm{r, t.coeff});
    }
  }
  // Try raising integer variables toward their relaxed value, most-fractional
  // and highest-objective first.
  std::vector<int> order = integer_vars_;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = relaxed[a] - std::floor(relaxed[a] + 1e-9);
    const double fb = relaxed[b] - std::floor(relaxed[b] + 1e-9);
    if (fa != fb) {
      return fa > fb;
    }
    return model_.objective(a) > model_.objective(b);
  });
  for (int v : order) {
    const double target = std::min(std::ceil(relaxed[v] - 1e-9), model_.upper(v));
    const double delta = target - x[v];
    if (delta <= 0.0 || model_.objective(v) < 0.0) {
      continue;
    }
    bool fits = true;
    for (const LpTerm& t : columns[v]) {
      if (activity[t.var] + t.coeff * delta > model_.row(t.var).rhs + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      continue;
    }
    x[v] = target;
    for (const LpTerm& t : columns[v]) {
      activity[t.var] += t.coeff * delta;
    }
  }
  if (!model_.IsFeasible(x)) {
    return false;
  }
  *out = std::move(x);
  return true;
}

MilpSolution MilpSolver::Solve(const MilpOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();
  const auto out_of_time = [&]() {
    if (options.time_limit_seconds <= 0.0) {
      return false;
    }
    const std::chrono::duration<double> elapsed = Clock::now() - start_time;
    return elapsed.count() >= options.time_limit_seconds;
  };

  MilpSolution result;

  // Working copy whose bounds are mutated along the tree path.
  LpModel work = model_;
  std::vector<int> touched;  // Vars whose bounds differ from the baseline.
  const auto reset_bounds = [&]() {
    for (int v : touched) {
      work.SetVariableBounds(v, model_.lower(v), model_.upper(v));
    }
    touched.clear();
  };

  // Install the warm start as the initial incumbent if it is valid.
  bool have_incumbent = false;
  std::vector<double> best;
  double best_obj = 0.0;
  if (!options.warm_start.empty() &&
      static_cast<int>(options.warm_start.size()) == model_.num_variables()) {
    bool integral = true;
    for (int v : integer_vars_) {
      if (!IsIntegral(options.warm_start[v], options.integrality_tol)) {
        integral = false;
        break;
      }
    }
    if (integral && model_.IsFeasible(options.warm_start)) {
      best = options.warm_start;
      best_obj = model_.ObjectiveValue(best);
      have_incumbent = true;
      result.warm_start_returned = true;
    }
  }

  std::vector<Node> stack;
  stack.push_back(Node{{}, kLpInfinity});

  while (!stack.empty()) {
    if ((options.max_nodes > 0 && result.nodes_explored >= options.max_nodes) || out_of_time()) {
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (have_incumbent && node.parent_bound <= best_obj + 1e-9) {
      continue;  // The parent already proved this subtree cannot improve.
    }
    ++result.nodes_explored;

    reset_bounds();
    for (const BoundFix& fix : node.fixes) {
      work.SetVariableBounds(fix.var, fix.lower, fix.upper);
      touched.push_back(fix.var);
    }

    const LpSolution relax = SolveLp(work);
    result.lp_iterations += relax.iterations;
    if (relax.status == LpStatus::kInfeasible) {
      continue;
    }
    if (relax.status == LpStatus::kUnbounded) {
      // Integral restriction of an unbounded relaxation: give up on bounding
      // and rely on incumbents only (does not occur for scheduler models).
      continue;
    }
    if (have_incumbent && relax.objective <= best_obj + 1e-9) {
      continue;
    }

    // Find the most fractional integer variable.
    int branch_var = -1;
    double branch_frac = 0.0;
    for (int v : integer_vars_) {
      const double value = relax.values[v];
      if (!IsIntegral(value, options.integrality_tol)) {
        const double frac = std::fabs(value - std::round(value));
        if (frac > branch_frac) {
          branch_frac = frac;
          branch_var = v;
        }
      }
    }

    if (branch_var < 0) {
      // Integral solution: snap and accept.
      std::vector<double> snapped = relax.values;
      for (int v : integer_vars_) {
        snapped[v] = std::round(snapped[v]);
      }
      if (model_.IsFeasible(snapped) &&
          (!have_incumbent || model_.ObjectiveValue(snapped) > best_obj)) {
        best = std::move(snapped);
        best_obj = model_.ObjectiveValue(best);
        have_incumbent = true;
        result.warm_start_returned = false;
      }
      continue;
    }

    // Use a rounding pass for an early incumbent before descending.
    std::vector<double> rounded;
    if (GreedyRound(relax.values, &rounded)) {
      const double obj = model_.ObjectiveValue(rounded);
      if (!have_incumbent || obj > best_obj) {
        best = std::move(rounded);
        best_obj = obj;
        have_incumbent = true;
        result.warm_start_returned = false;
      }
    }

    // Branch: explore the nearest integer side first (pushed last).
    const double value = relax.values[branch_var];
    const double floor_v = std::floor(value);
    const double ceil_v = std::ceil(value);
    Node down{node.fixes, relax.objective};
    down.fixes.push_back(BoundFix{branch_var, model_.lower(branch_var), floor_v});
    Node up{node.fixes, relax.objective};
    up.fixes.push_back(BoundFix{branch_var, ceil_v, model_.upper(branch_var)});
    if (value - floor_v >= 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  if (!have_incumbent) {
    result.status = MilpStatus::kInfeasible;
    return result;
  }
  result.status = stack.empty() ? MilpStatus::kOptimal : MilpStatus::kFeasible;
  result.objective = best_obj;
  result.values = std::move(best);
  return result;
}

}  // namespace threesigma
