#include "src/solver/milp.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace threesigma {
namespace {

// Nodes dispatched per wave when MilpOptions::batch_width is 0. Chosen large
// enough to keep several workers busy once the tree fans out, small enough
// that the incumbent bound (which only advances at wave commits) stays fresh.
constexpr int kDefaultBatchWidth = 16;

// A branching decision along the current tree path.
struct BoundFix {
  int var;
  double lower;
  double upper;
};

struct Node {
  // Tree path: '0' for the floor child, '1' for the ceil child. Lexicographic
  // order on ids is the deterministic tie-break between equal-objective
  // incumbents; '~' (warm start) and a trailing 'r' (greedy rounding) sort
  // after real tree ids so exact tree solutions take precedence.
  std::string id;
  std::vector<BoundFix> fixes;  // Full path from the root.
  double parent_bound;          // LP bound of the parent (pruning hint).
  // The parent's optimal basis (shared between siblings). The child differs
  // from the parent by one bound change, so this basis is dual feasible for
  // the child and the LP re-optimizes in a few dual pivots.
  std::shared_ptr<const LpBasis> parent_basis;
};

bool IsIntegral(double v, double tol) { return std::fabs(v - std::round(v)) <= tol; }

// Per-worker scratch: a private model copy whose bounds are mutated along the
// assigned node's tree path, then restored.
struct Workspace {
  explicit Workspace(const LpModel& model) : work(model) {}
  LpModel work;
  std::vector<int> touched;
};

}  // namespace

MilpSolver::MilpSolver(const LpModel& model, std::vector<int> integer_vars)
    : model_(model), integer_vars_(std::move(integer_vars)) {
  for (int v : integer_vars_) {
    TS_CHECK_GE(v, 0);
    TS_CHECK_LT(v, model_.num_variables());
  }
}

bool MilpSolver::GreedyRound(const std::vector<double>& relaxed, std::vector<double>* out) const {
  // Greedy only supports the scheduler's row shapes (all <=); bail otherwise
  // and let branch-and-bound find incumbents on its own.
  for (const LpRow& row : model_.rows()) {
    if (row.sense != RowSense::kLessEqual) {
      return false;
    }
  }
  std::vector<double> x = relaxed;
  // Pull every integer variable down to its floor first (feasible for pure
  // <=-rows with non-negative coefficients, and a safe starting point
  // otherwise — final feasibility is re-checked at the end).
  for (int v : integer_vars_) {
    x[v] = std::floor(relaxed[v] + 1e-9);
  }
  // Row activities for the floored point.
  std::vector<double> activity(model_.num_rows(), 0.0);
  std::vector<std::vector<LpTerm>> columns(model_.num_variables());
  for (int r = 0; r < model_.num_rows(); ++r) {
    const LpRow& row = model_.row(r);
    for (const LpTerm& t : row.terms) {
      activity[r] += t.coeff * x[t.var];
      columns[t.var].push_back(LpTerm{r, t.coeff});
    }
  }
  // Try raising integer variables toward their relaxed value, most-fractional
  // and highest-objective first.
  std::vector<int> order = integer_vars_;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = relaxed[a] - std::floor(relaxed[a] + 1e-9);
    const double fb = relaxed[b] - std::floor(relaxed[b] + 1e-9);
    if (fa != fb) {
      return fa > fb;
    }
    return model_.objective(a) > model_.objective(b);
  });
  for (int v : order) {
    const double target = std::min(std::ceil(relaxed[v] - 1e-9), model_.upper(v));
    const double delta = target - x[v];
    if (delta <= 0.0 || model_.objective(v) < 0.0) {
      continue;
    }
    bool fits = true;
    for (const LpTerm& t : columns[v]) {
      if (activity[t.var] + t.coeff * delta > model_.row(t.var).rhs + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      continue;
    }
    x[v] = target;
    for (const LpTerm& t : columns[v]) {
      activity[t.var] += t.coeff * delta;
    }
  }
  if (!model_.IsFeasible(x)) {
    return false;
  }
  *out = std::move(x);
  return true;
}

MilpSolution MilpSolver::Solve(const MilpOptions& options) {
  // Phase::kOther: this span nests inside the scheduler's kSolve scope, and
  // tagging it with a profiler phase would double-count the solve time.
  // Conditional (not pool-conditional): shard sub-solves suppress it in both
  // the serial and pooled paths so traces stay thread-count-invariant.
  static const obs::SpanName kSolveSpanName("solver.milp", obs::Phase::kOther);
  std::optional<obs::Span> solve_span;
  if (options.emit_span) {
    solve_span.emplace(kSolveSpanName);
  }
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();
  const auto seconds_elapsed = [&]() {
    const std::chrono::duration<double> elapsed = Clock::now() - start_time;
    return elapsed.count();
  };
  const auto out_of_time = [&]() {
    if (options.time_limit_seconds <= 0.0) {
      return false;
    }
    return seconds_elapsed() >= options.time_limit_seconds;
  };

  MilpSolution result;

  // Worker setup. The caller always participates, so `workers` counts it;
  // the sequential path (workers == 1, no pool) touches no thread machinery.
  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = local_pool.get();
  }
  const int workers = pool != nullptr ? pool->size() : 1;
  const int batch_width = options.batch_width > 0 ? options.batch_width : kDefaultBatchWidth;

  std::vector<Workspace> workspaces;
  workspaces.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workspaces.emplace_back(model_);
  }

  // Install the warm start as the initial incumbent if it is valid.
  bool have_incumbent = false;
  std::vector<double> best;
  double best_obj = 0.0;
  std::string best_id = "~";  // Sorts after every tree id.
  if (!options.warm_start.empty() &&
      static_cast<int>(options.warm_start.size()) == model_.num_variables()) {
    bool integral = true;
    for (int v : integer_vars_) {
      if (!IsIntegral(options.warm_start[v], options.integrality_tol)) {
        integral = false;
        break;
      }
    }
    if (integral && model_.IsFeasible(options.warm_start)) {
      best = options.warm_start;
      best_obj = model_.ObjectiveValue(best);
      have_incumbent = true;
      result.warm_start_returned = true;
    }
  }

  // The incumbent objective, readable lock-free by workers mid-wave. It only
  // advances at the sequential wave commits below — that is what makes the
  // search deterministic (see the header comment).
  std::atomic<double> incumbent_bound{
      have_incumbent ? best_obj : -std::numeric_limits<double>::infinity()};

  // Accepts a candidate incumbent under the deterministic total order:
  // higher objective wins; equal objectives go to the lexicographically
  // smallest id. Only called from the sequential commit phase.
  const auto consider_incumbent = [&](double obj, const std::string& id,
                                      std::vector<double>&& values, bool from_tree) {
    if (have_incumbent && !(obj > best_obj || (obj == best_obj && id < best_id))) {
      return;
    }
    best = std::move(values);
    best_obj = obj;
    best_id = id;
    have_incumbent = true;
    if (from_tree) {
      result.warm_start_returned = false;
    }
    result.incumbent_improvements.push_back(IncumbentImprovement{seconds_elapsed(), obj});
  };

  std::vector<Node> stack;
  Node root{"", {}, kLpInfinity, nullptr};
  if (options.basis_warmstart && !options.root_basis.empty()) {
    // Cross-solve hint (e.g. the previous scheduling cycle's root basis).
    root.parent_basis = std::make_shared<const LpBasis>(options.root_basis);
  }
  stack.push_back(std::move(root));
  result.max_queue_depth = 1;

  std::vector<Node> wave;
  std::vector<LpSolution> relaxations;
  std::vector<char> solved;

  while (!stack.empty()) {
    if ((options.max_nodes > 0 && result.nodes_explored >= options.max_nodes) ||
        out_of_time()) {
      break;
    }

    // --- Dispatch: pop the wave, pruning against the committed incumbent. --
    int budget_room = std::numeric_limits<int>::max();
    if (options.max_nodes > 0) {
      budget_room = options.max_nodes - result.nodes_explored;
    }
    const int take =
        std::min({batch_width, static_cast<int>(stack.size()), budget_room});
    wave.clear();
    for (int i = 0; i < take; ++i) {
      wave.push_back(std::move(stack.back()));
      stack.pop_back();
    }

    // --- Solve: LP relaxations in parallel on private model copies. --------
    // Per-node outcome: 0 = unsolved (wall clock expired), 1 = LP solved,
    // 2 = pruned lock-free against the incumbent bound.
    constexpr char kUnsolved = 0, kSolved = 1, kPruned = 2;
    const int n = static_cast<int>(wave.size());
    relaxations.assign(static_cast<size_t>(n), LpSolution{});
    solved.assign(static_cast<size_t>(n), kUnsolved);
    const auto solve_node = [&](int worker, int index) {
      if (out_of_time()) {
        return;  // Left unsolved; requeued by the commit phase.
      }
      const Node& node = wave[static_cast<size_t>(index)];
      // Lock-free bound prune. The atomic only advances at wave commits, so
      // this reads the same value in every run — deterministic.
      if (node.parent_bound <= incumbent_bound.load(std::memory_order_relaxed) + 1e-9) {
        solved[static_cast<size_t>(index)] = kPruned;
        return;
      }
      Workspace& ws = workspaces[static_cast<size_t>(worker)];
      for (const BoundFix& fix : node.fixes) {
        ws.work.SetVariableBounds(fix.var, fix.lower, fix.upper);
        ws.touched.push_back(fix.var);
      }
      SimplexOptions lp_options;
      if (options.basis_warmstart && node.parent_basis != nullptr) {
        lp_options.start_basis = *node.parent_basis;
        // Solve in the full space: the parent basis is exactly dual feasible
        // there (the child differs by one bound change only), whereas each
        // node's presolve reduces a different variable subset and the mapped
        // basis loses that property. Fixed variables cost nothing unreduced —
        // pricing skips them.
        lp_options.presolve = false;
      }
      relaxations[static_cast<size_t>(index)] = SolveLp(ws.work, lp_options);
      for (int v : ws.touched) {
        ws.work.SetVariableBounds(v, model_.lower(v), model_.upper(v));
      }
      ws.touched.clear();
      solved[static_cast<size_t>(index)] = kSolved;
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, solve_node);
    } else {
      for (int i = 0; i < n; ++i) {
        solve_node(0, i);
      }
    }

    // --- Commit: sequential, in pop order, so every incumbent update,
    // prune, node count, and child push is deterministic. ------------------
    bool timed_out = false;
    for (int i = 0; i < n; ++i) {
      Node& node = wave[static_cast<size_t>(i)];
      if (solved[static_cast<size_t>(i)] == kPruned) {
        continue;  // Dominated subtree; not counted, exactly like a pop-prune.
      }
      if (solved[static_cast<size_t>(i)] == kUnsolved) {
        // Ran out of wall clock mid-wave: requeue this and the remaining
        // unsolved nodes (reverse order keeps the pop order intact).
        for (int j = n - 1; j >= i; --j) {
          if (solved[static_cast<size_t>(j)] == kUnsolved) {
            stack.push_back(std::move(wave[static_cast<size_t>(j)]));
          }
        }
        timed_out = true;
        break;
      }
      const LpSolution& relax = relaxations[static_cast<size_t>(i)];
      ++result.nodes_explored;
      result.lp_iterations += relax.iterations;
      result.lp_phase1_iterations += relax.stats.phase1_iterations;
      result.lp_phase2_iterations += relax.stats.phase2_iterations;
      result.lp_dual_iterations += relax.stats.dual_iterations;
      result.ftran_count += relax.stats.ftran;
      result.btran_count += relax.stats.btran;
      result.refactorizations += relax.stats.refactorizations;
      if (relax.stats.warm_basis_used) {
        ++result.warm_started_nodes;
      }
      if (node.id.empty() && relax.status == LpStatus::kOptimal) {
        result.root_basis = relax.basis;  // Exported for cross-solve reuse.
      }
      if (relax.status == LpStatus::kInfeasible) {
        continue;
      }
      if (relax.status == LpStatus::kUnbounded) {
        // Integral restriction of an unbounded relaxation: give up on
        // bounding and rely on incumbents only (does not occur for scheduler
        // models).
        continue;
      }
      if (have_incumbent && relax.objective <= best_obj + 1e-9) {
        continue;
      }

      // Find the most fractional integer variable.
      int branch_var = -1;
      double branch_frac = 0.0;
      for (int v : integer_vars_) {
        const double value = relax.values[v];
        if (!IsIntegral(value, options.integrality_tol)) {
          const double frac = std::fabs(value - std::round(value));
          if (frac > branch_frac) {
            branch_frac = frac;
            branch_var = v;
          }
        }
      }

      if (branch_var < 0) {
        // Integral solution: snap and accept.
        std::vector<double> snapped = relax.values;
        for (int v : integer_vars_) {
          snapped[v] = std::round(snapped[v]);
        }
        if (model_.IsFeasible(snapped)) {
          const double obj = model_.ObjectiveValue(snapped);
          consider_incumbent(obj, node.id, std::move(snapped), /*from_tree=*/true);
        }
        continue;
      }

      // Use a rounding pass for an early incumbent before descending.
      std::vector<double> rounded;
      if (GreedyRound(relax.values, &rounded)) {
        const double obj = model_.ObjectiveValue(rounded);
        consider_incumbent(obj, node.id + "r", std::move(rounded), /*from_tree=*/true);
      }

      // Branch: explore the nearest integer side first (pushed last). Both
      // children share this node's optimal basis as their warm start.
      std::shared_ptr<const LpBasis> child_basis;
      if (options.basis_warmstart && !relax.basis.empty()) {
        child_basis = std::make_shared<const LpBasis>(relax.basis);
      }
      const double value = relax.values[branch_var];
      const double floor_v = std::floor(value);
      const double ceil_v = std::ceil(value);
      Node down{node.id + "0", node.fixes, relax.objective, child_basis};
      down.fixes.push_back(BoundFix{branch_var, model_.lower(branch_var), floor_v});
      Node up{node.id + "1", node.fixes, relax.objective, child_basis};
      up.fixes.push_back(BoundFix{branch_var, ceil_v, model_.upper(branch_var)});
      if (value - floor_v >= 0.5) {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      } else {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      }
    }
    result.max_queue_depth =
        std::max(result.max_queue_depth, static_cast<int>(stack.size()));
    if (have_incumbent) {
      incumbent_bound.store(best_obj, std::memory_order_relaxed);
    }
    if (timed_out) {
      break;
    }
  }

  result.solve_seconds = seconds_elapsed();
  {
    struct MilpCounters {
      obs::Counter* solves;
      obs::Counter* nodes;
      obs::Counter* warm_started_nodes;
      obs::Counter* incumbent_improvements;
      obs::Histogram* nodes_hist;
    };
    static const MilpCounters* const counters = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* c = new MilpCounters();
      c->solves = reg.GetCounter("solver.milp_solves");
      c->nodes = reg.GetCounter("solver.milp_nodes");
      c->warm_started_nodes = reg.GetCounter("solver.milp_warm_started_nodes");
      c->incumbent_improvements = reg.GetCounter("solver.milp_incumbent_improvements");
      c->nodes_hist = reg.GetHistogram("solver.milp_nodes_per_solve",
                                       {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
      return c;
    }();
    counters->solves->Increment();
    counters->nodes->Add(result.nodes_explored);
    counters->warm_started_nodes->Add(result.warm_started_nodes);
    counters->incumbent_improvements->Add(
        static_cast<int64_t>(result.incumbent_improvements.size()));
    counters->nodes_hist->Observe(static_cast<double>(result.nodes_explored));
  }
  if (!have_incumbent) {
    result.status = MilpStatus::kInfeasible;
    return result;
  }
  result.status = stack.empty() ? MilpStatus::kOptimal : MilpStatus::kFeasible;
  result.objective = best_obj;
  result.values = std::move(best);
  return result;
}

}  // namespace threesigma
