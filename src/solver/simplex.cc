#include "src/solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/solver/presolve.h"

namespace threesigma {
namespace {

constexpr double kPivotTol = 1e-9;

enum class VarStatus : uint8_t { kBasic, kAtLower, kAtUpper };

// Internal solver state over the extended variable set:
//   [0, n)            structural variables
//   [n, n+m)          slack variables (one per row)
//   [n+m, n+m+k)      Phase-1 artificials
class SimplexSolver {
 public:
  SimplexSolver(const LpModel& model, const SimplexOptions& options)
      : model_(model), options_(options), m_(model.num_rows()), n_(model.num_variables()) {}

  LpSolution Solve();

 private:
  void BuildStandardForm();
  void RecomputeBasicValues();
  void Refactorize();
  // Runs pivots until the current objective `obj_` is optimal, or a limit is
  // hit. Returns the terminating status for the phase.
  LpStatus RunPhase();
  // Column of extended variable j in the equality system (dense, length m_).
  void ExtendedColumn(int j, std::vector<double>* out) const;
  double ReducedCost(int j, const std::vector<double>& y) const;

  const LpModel& model_;
  SimplexOptions options_;
  int m_;                  // rows
  int n_;                  // structural vars
  int total_ = 0;          // structural + slack + artificial
  int num_artificials_ = 0;

  std::vector<double> lower_, upper_, obj_;        // extended, length total_
  std::vector<std::vector<LpTerm>> columns_;       // structural columns (row, coeff)
  std::vector<double> rhs_;                        // row right-hand sides
  std::vector<int> slack_row_;                     // slack var -> its row
  std::vector<int> artificial_row_;                // artificial var -> its row
  std::vector<double> artificial_sign_;            // +-1 coefficient of artificial

  std::vector<int> basis_;                         // row -> basic var
  std::vector<VarStatus> status_;                  // extended var statuses
  std::vector<double> value_;                      // extended var values
  std::vector<std::vector<double>> binv_;          // dense basis inverse (m_ x m_)

  int iterations_ = 0;
  int max_iterations_ = 0;
  int degenerate_streak_ = 0;
  double last_objective_ = -std::numeric_limits<double>::infinity();
};

void SimplexSolver::ExtendedColumn(int j, std::vector<double>* out) const {
  std::fill(out->begin(), out->end(), 0.0);
  if (j < n_) {
    for (const LpTerm& t : columns_[j]) {
      (*out)[t.var] = t.coeff;  // t.var reused as the row index here.
    }
  } else if (j < n_ + m_) {
    (*out)[slack_row_[j - n_]] = 1.0;
  } else {
    (*out)[artificial_row_[j - n_ - m_]] = artificial_sign_[j - n_ - m_];
  }
}

double SimplexSolver::ReducedCost(int j, const std::vector<double>& y) const {
  double d = obj_[j];
  if (j < n_) {
    for (const LpTerm& t : columns_[j]) {
      d -= y[t.var] * t.coeff;
    }
  } else if (j < n_ + m_) {
    d -= y[slack_row_[j - n_]];
  } else {
    d -= y[artificial_row_[j - n_ - m_]] * artificial_sign_[j - n_ - m_];
  }
  return d;
}

void SimplexSolver::BuildStandardForm() {
  // Structural columns indexed by variable; LpTerm.var holds the row index.
  columns_.assign(n_, {});
  rhs_.resize(m_);
  for (int r = 0; r < m_; ++r) {
    const LpRow& row = model_.row(r);
    rhs_[r] = row.rhs;
    for (const LpTerm& t : row.terms) {
      columns_[t.var].push_back(LpTerm{r, t.coeff});
    }
  }

  lower_.assign(n_, 0.0);
  upper_.assign(n_, 0.0);
  obj_.assign(n_, 0.0);
  for (int j = 0; j < n_; ++j) {
    lower_[j] = model_.lower(j);
    upper_[j] = model_.upper(j);
    obj_[j] = model_.objective(j);
    TS_CHECK_MSG(lower_[j] > -kLpInfinity || upper_[j] < kLpInfinity,
                 "variable " << j << " must have a finite bound");
  }

  // Slack variables: row sense becomes a bound on the slack.
  slack_row_.resize(m_);
  for (int r = 0; r < m_; ++r) {
    slack_row_[r] = r;
    const RowSense sense = model_.row(r).sense;
    double lo = 0.0;
    double up = 0.0;
    if (sense == RowSense::kLessEqual) {
      lo = 0.0;
      up = kLpInfinity;
    } else if (sense == RowSense::kGreaterEqual) {
      lo = -kLpInfinity;
      up = 0.0;
    }
    lower_.push_back(lo);
    upper_.push_back(up);
    obj_.push_back(0.0);
  }

  // Initial nonbasic placement for structural vars: the finite bound nearest
  // zero (scheduler variables have lower bound 0, so this is their lower).
  total_ = n_ + m_;
  status_.assign(total_, VarStatus::kAtLower);
  value_.assign(total_, 0.0);
  for (int j = 0; j < n_; ++j) {
    if (lower_[j] > -kLpInfinity) {
      status_[j] = VarStatus::kAtLower;
      value_[j] = lower_[j];
    } else {
      status_[j] = VarStatus::kAtUpper;
      value_[j] = upper_[j];
    }
  }

  // Residual of each row with all structural vars at their initial bound.
  std::vector<double> residual = rhs_;
  for (int j = 0; j < n_; ++j) {
    if (value_[j] != 0.0) {
      for (const LpTerm& t : columns_[j]) {
        residual[t.var] -= t.coeff * value_[j];
      }
    }
  }

  // Slack starts basic when the residual fits its bounds; otherwise the slack
  // is parked at the bound nearest the residual and an artificial carries the
  // remaining infeasibility.
  basis_.assign(m_, -1);
  for (int r = 0; r < m_; ++r) {
    const int sv = n_ + r;
    if (residual[r] >= lower_[sv] - options_.feasibility_tol &&
        residual[r] <= upper_[sv] + options_.feasibility_tol) {
      basis_[r] = sv;
      status_[sv] = VarStatus::kBasic;
      value_[sv] = residual[r];
      continue;
    }
    const double parked = residual[r] < lower_[sv] ? lower_[sv] : upper_[sv];
    status_[sv] = residual[r] < lower_[sv] ? VarStatus::kAtLower : VarStatus::kAtUpper;
    value_[sv] = parked;
    const double gap = residual[r] - parked;
    const int av = total_ + num_artificials_;
    artificial_row_.push_back(r);
    artificial_sign_.push_back(gap >= 0.0 ? 1.0 : -1.0);
    lower_.push_back(0.0);
    upper_.push_back(kLpInfinity);
    obj_.push_back(0.0);
    status_.push_back(VarStatus::kBasic);
    value_.push_back(std::fabs(gap));
    basis_[r] = av;
    ++num_artificials_;
  }
  total_ += num_artificials_;

  Refactorize();
  RecomputeBasicValues();
}

void SimplexSolver::Refactorize() {
  // Gauss-Jordan inversion of the basis matrix with partial pivoting.
  std::vector<std::vector<double>> b(m_, std::vector<double>(m_, 0.0));
  std::vector<double> col(m_);
  for (int r = 0; r < m_; ++r) {
    ExtendedColumn(basis_[r], &col);
    for (int i = 0; i < m_; ++i) {
      b[i][r] = col[i];
    }
  }
  binv_.assign(m_, std::vector<double>(m_, 0.0));
  for (int i = 0; i < m_; ++i) {
    binv_[i][i] = 1.0;
  }
  for (int c = 0; c < m_; ++c) {
    int pivot = c;
    for (int r = c + 1; r < m_; ++r) {
      if (std::fabs(b[r][c]) > std::fabs(b[pivot][c])) {
        pivot = r;
      }
    }
    TS_CHECK_MSG(std::fabs(b[pivot][c]) > 1e-12, "singular basis during refactorization");
    std::swap(b[c], b[pivot]);
    std::swap(binv_[c], binv_[pivot]);
    const double inv = 1.0 / b[c][c];
    for (int k = 0; k < m_; ++k) {
      b[c][k] *= inv;
      binv_[c][k] *= inv;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == c) {
        continue;
      }
      const double factor = b[r][c];
      if (factor == 0.0) {
        continue;
      }
      for (int k = 0; k < m_; ++k) {
        b[r][k] -= factor * b[c][k];
        binv_[r][k] -= factor * binv_[c][k];
      }
    }
  }
}

void SimplexSolver::RecomputeBasicValues() {
  // w = b - A_N x_N, then x_B = binv * w.
  std::vector<double> w = rhs_;
  std::vector<double> col(m_);
  for (int j = 0; j < total_; ++j) {
    if (status_[j] == VarStatus::kBasic || value_[j] == 0.0) {
      continue;
    }
    ExtendedColumn(j, &col);
    for (int r = 0; r < m_; ++r) {
      if (col[r] != 0.0) {
        w[r] -= col[r] * value_[j];
      }
    }
  }
  for (int r = 0; r < m_; ++r) {
    double v = 0.0;
    for (int k = 0; k < m_; ++k) {
      v += binv_[r][k] * w[k];
    }
    value_[basis_[r]] = v;
  }
}

LpStatus SimplexSolver::RunPhase() {
  std::vector<double> y(m_);
  std::vector<double> alpha(m_);
  int pivots_since_refactor = 0;

  while (true) {
    if (iterations_ >= max_iterations_) {
      return LpStatus::kIterationLimit;
    }
    ++iterations_;

    // Pricing: y = c_B binv.
    for (int r = 0; r < m_; ++r) {
      y[r] = 0.0;
    }
    for (int r = 0; r < m_; ++r) {
      const double cb = obj_[basis_[r]];
      if (cb == 0.0) {
        continue;
      }
      for (int k = 0; k < m_; ++k) {
        y[k] += cb * binv_[r][k];
      }
    }

    // Entering variable: Dantzig normally, Bland under a degeneracy streak.
    const bool bland = degenerate_streak_ > 2 * (m_ + 8);
    int entering = -1;
    double best_score = options_.optimality_tol;
    int direction = +1;  // +1: increase from lower; -1: decrease from upper.
    for (int j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::kBasic) {
        continue;
      }
      if (lower_[j] == upper_[j]) {
        continue;  // Fixed (e.g. retired artificials).
      }
      const double d = ReducedCost(j, y);
      int dir = 0;
      if (status_[j] == VarStatus::kAtLower && d > options_.optimality_tol) {
        dir = +1;
      } else if (status_[j] == VarStatus::kAtUpper && d < -options_.optimality_tol) {
        dir = -1;
      }
      if (dir == 0) {
        continue;
      }
      if (bland) {
        entering = j;
        direction = dir;
        break;
      }
      if (std::fabs(d) > best_score) {
        best_score = std::fabs(d);
        entering = j;
        direction = dir;
      }
    }
    if (entering < 0) {
      return LpStatus::kOptimal;
    }

    ExtendedColumn(entering, &alpha);
    // alpha := binv * column(entering).
    {
      std::vector<double> tmp(m_, 0.0);
      for (int r = 0; r < m_; ++r) {
        double v = 0.0;
        for (int k = 0; k < m_; ++k) {
          v += binv_[r][k] * alpha[k];
        }
        tmp[r] = v;
      }
      alpha.swap(tmp);
    }

    // Ratio test. Moving the entering variable by delta in `direction`
    // changes basic variable r by -direction * alpha[r] * delta.
    double limit = upper_[entering] - lower_[entering];  // Bound-flip span.
    int leaving_row = -1;
    double leaving_target = 0.0;  // Bound the leaving variable lands on.
    for (int r = 0; r < m_; ++r) {
      const double rate = -static_cast<double>(direction) * alpha[r];
      if (std::fabs(rate) < kPivotTol) {
        continue;
      }
      const int bv = basis_[r];
      double ratio;
      double target;
      if (rate < 0.0) {
        // Basic value decreases toward its lower bound.
        if (lower_[bv] <= -kLpInfinity) {
          continue;
        }
        ratio = (value_[bv] - lower_[bv]) / (-rate);
        target = lower_[bv];
      } else {
        if (upper_[bv] >= kLpInfinity) {
          continue;
        }
        ratio = (upper_[bv] - value_[bv]) / rate;
        target = upper_[bv];
      }
      ratio = std::max(ratio, 0.0);
      const bool better =
          ratio < limit - 1e-12 ||
          (leaving_row >= 0 && ratio < limit + 1e-12 &&
           std::fabs(alpha[r]) > std::fabs(alpha[leaving_row]));
      if (better) {
        limit = ratio;
        leaving_row = r;
        leaving_target = target;
      }
    }

    if (limit >= kLpInfinity) {
      return LpStatus::kUnbounded;
    }

    const double step = limit;
    if (step < 1e-11) {
      ++degenerate_streak_;
    } else {
      degenerate_streak_ = 0;
    }

    if (leaving_row < 0) {
      // Bound flip: the entering variable runs to its other bound.
      status_[entering] =
          status_[entering] == VarStatus::kAtLower ? VarStatus::kAtUpper : VarStatus::kAtLower;
      value_[entering] =
          status_[entering] == VarStatus::kAtLower ? lower_[entering] : upper_[entering];
      RecomputeBasicValues();
      continue;
    }

    // Pivot: entering becomes basic, leaving goes to the bound it hit.
    const int leaving = basis_[leaving_row];
    status_[leaving] =
        leaving_target == lower_[leaving] ? VarStatus::kAtLower : VarStatus::kAtUpper;
    value_[leaving] = leaving_target;
    basis_[leaving_row] = entering;
    status_[entering] = VarStatus::kBasic;

    // Update binv: standard elementary row transformation.
    const double pivot_val = alpha[leaving_row];
    TS_CHECK_MSG(std::fabs(pivot_val) > kPivotTol, "numerically zero pivot");
    for (int k = 0; k < m_; ++k) {
      binv_[leaving_row][k] /= pivot_val;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == leaving_row) {
        continue;
      }
      const double factor = alpha[r];
      if (factor == 0.0) {
        continue;
      }
      for (int k = 0; k < m_; ++k) {
        binv_[r][k] -= factor * binv_[leaving_row][k];
      }
    }

    if (++pivots_since_refactor >= 64) {
      Refactorize();
      pivots_since_refactor = 0;
    }
    RecomputeBasicValues();
  }
}

LpSolution SimplexSolver::Solve() {
  LpSolution result;
  if (m_ == 0) {
    // Pure bound problem: each variable sits at whichever bound its objective
    // prefers.
    result.status = LpStatus::kOptimal;
    result.values.resize(n_);
    for (int j = 0; j < n_; ++j) {
      const double c = model_.objective(j);
      double v;
      if (c > 0.0) {
        v = model_.upper(j);
      } else if (c < 0.0) {
        v = model_.lower(j);
      } else {
        v = model_.lower(j) > -kLpInfinity ? model_.lower(j) : model_.upper(j);
      }
      if (v >= kLpInfinity || v <= -kLpInfinity) {
        result.status = LpStatus::kUnbounded;
        result.values.clear();
        return result;
      }
      result.values[j] = v;
      result.objective += c * v;
    }
    return result;
  }

  BuildStandardForm();
  max_iterations_ = options_.max_iterations > 0 ? options_.max_iterations
                                                : 200 * (total_ + m_) + 2000;

  if (num_artificials_ > 0) {
    // Phase 1: drive artificial infeasibility to zero (max -sum(artificials)).
    std::vector<double> real_obj = obj_;
    for (int j = 0; j < total_; ++j) {
      obj_[j] = j >= n_ + m_ ? -1.0 : 0.0;
    }
    const LpStatus phase1 = RunPhase();
    double infeasibility = 0.0;
    for (int j = n_ + m_; j < total_; ++j) {
      infeasibility += value_[j];
    }
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iterations_;
      return result;
    }
    if (infeasibility > 1e-6) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      return result;
    }
    // Retire artificials: pin them to zero so Phase 2 cannot resurrect them.
    for (int j = n_ + m_; j < total_; ++j) {
      lower_[j] = 0.0;
      upper_[j] = 0.0;
      if (status_[j] != VarStatus::kBasic) {
        status_[j] = VarStatus::kAtLower;
        value_[j] = 0.0;
      }
    }
    obj_ = real_obj;
    degenerate_streak_ = 0;
  }

  const LpStatus phase2 = RunPhase();
  result.status = phase2;
  result.iterations = iterations_;
  if (phase2 == LpStatus::kOptimal || phase2 == LpStatus::kIterationLimit) {
    result.values.resize(n_);
    for (int j = 0; j < n_; ++j) {
      // Clamp tiny numerical overshoot back into the box.
      result.values[j] = std::clamp(value_[j], model_.lower(j), model_.upper(j));
    }
    result.objective = model_.ObjectiveValue(result.values);
  }
  return result;
}

}  // namespace

LpSolution SolveLp(const LpModel& model, const SimplexOptions& options) {
  if (options.presolve) {
    PresolveResult pre = Presolve(model);
    if (pre.proven_infeasible) {
      LpSolution result;
      result.status = LpStatus::kInfeasible;
      return result;
    }
    if (!pre.proven_unbounded) {
      SimplexOptions reduced_options = options;
      reduced_options.presolve = false;
      SimplexSolver solver(pre.reduced, reduced_options);
      LpSolution reduced = solver.Solve();
      if (reduced.status == LpStatus::kOptimal ||
          reduced.status == LpStatus::kIterationLimit) {
        reduced.values = pre.ExpandSolution(reduced.values);
        reduced.objective = model.ObjectiveValue(reduced.values);
      }
      return reduced;
    }
    // A row-free variable with an unbounded preferred direction: the model is
    // unbounded iff the rest is feasible — let the full simplex decide.
  }
  SimplexSolver solver(model, options);
  return solver.Solve();
}

}  // namespace threesigma
