#include "src/solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/obs/registry.h"
#include "src/solver/presolve.h"

namespace threesigma {
namespace {

constexpr double kPivotTol = 1e-9;
// Pivots between eta-file reinversions. Each pivot appends one eta, so this
// bounds both FTRAN/BTRAN cost growth and numerical drift of the
// incrementally-updated basic values (reinversion recomputes them exactly).
constexpr int kRefactorInterval = 64;

// Internal solver state over the extended variable set:
//   [0, n)            structural variables
//   [n, n+m)          slack variables (one per row)
//   [n+m, n+m+k)      Phase-1 artificials (cold starts only)
class SimplexSolver {
 public:
  SimplexSolver(const LpModel& model, const SimplexOptions& options)
      : model_(model), options_(options), m_(model.num_rows()), n_(model.num_variables()) {}

  LpSolution Solve();

 private:
  // Model ingestion: CSC structural columns, extended bounds/objective for
  // structural + slack variables, right-hand sides.
  void BuildCore();
  // Cold start: structural vars parked at their bound nearest zero, slack
  // basis where residuals fit, Phase-1 artificials where they do not.
  void ColdStart();
  // Installs options_.start_basis (statuses over structural + slack vars)
  // with repair; returns false when the basis is unusable outright.
  bool TryWarmStart();

  // --- Eta-file basis machinery -------------------------------------------
  // Factorizes the basis given by `proposed` (any length), assigning pivot
  // rows and rewriting basis_/status_/value_ for demoted or promoted
  // variables. Strict mode TS_CHECKs instead of repairing (mid-run
  // reinversions of a basis maintained by nonzero pivots must succeed).
  bool FactorFromSet(std::vector<int> proposed, bool strict);
  void ResetToSlackBasis();
  void Ftran(std::vector<double>* x);
  void Btran(std::vector<double>* y);
  void AppendEta(const std::vector<double>& column, int pivot_row);
  void RecomputeBasicValues();
  void Refactorize();  // FactorFromSet(basis_, strict) + value recompute.

  // --- Iteration engines ---------------------------------------------------
  // Primal simplex on the current (phase-dependent) objective.
  LpStatus RunPrimal(bool phase1);
  // Bounded-variable dual simplex from a dual-feasible basis. Returns
  // kOptimal when primal feasibility is restored, kInfeasible when a violated
  // row admits no entering column (proven empty), kIterationLimit when it
  // gives up (caller falls back to a cold start; never changes the answer).
  LpStatus RunDual();

  // --- Pricing -------------------------------------------------------------
  // Candidate-list partial pricing: re-price the current list, else harvest a
  // fresh list with one full scan. Returns the entering variable or -1.
  int PickEntering(const std::vector<double>& y, int* direction);
  void RebuildCandidates(const std::vector<double>& y);
  int PriceList(const std::vector<double>& y, int* direction);

  // --- Helpers -------------------------------------------------------------
  template <typename Fn>
  void ForEachColumnEntry(int j, Fn&& fn) const {
    if (j < n_) {
      for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        fn(col_row_[k], col_val_[k]);
      }
    } else if (j < n_ + m_) {
      fn(j - n_, 1.0);
    } else {
      fn(artificial_row_[j - n_ - m_], artificial_sign_[j - n_ - m_]);
    }
  }
  double ReducedCost(int j, const std::vector<double>& y) const;
  void ComputeDuals(std::vector<double>* y);
  bool PrimalFeasible() const;
  // Flips nonbasic variables whose reduced cost has the wrong sign to their
  // other (finite) bound; false when a flip target is infinite.
  bool MakeDualFeasible(const std::vector<double>& y);
  void ParkNonbasic(int j, BasisStatus preferred);
  LpSolution Finish(LpStatus status);

  const LpModel& model_;
  SimplexOptions options_;
  int m_;                  // rows
  int n_;                  // structural vars
  int total_ = 0;          // structural + slack + artificial
  int num_artificials_ = 0;

  // Compressed-sparse-column structural matrix.
  std::vector<int> col_start_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;

  std::vector<double> lower_, upper_, obj_;        // extended, length total_
  std::vector<double> rhs_;                        // row right-hand sides
  std::vector<int> artificial_row_;                // artificial var -> its row
  std::vector<double> artificial_sign_;            // +-1 coefficient of artificial

  std::vector<int> basis_;                         // row -> basic var
  std::vector<BasisStatus> status_;                // extended var statuses
  std::vector<double> value_;                      // extended var values

  // Product-form basis inverse: B⁻¹ = T_K … T_1 where each eta T applies
  //   x[p] /= pivot_value;  x[i] -= v_i * x[p]  (off-pivot entries v_i).
  struct Eta {
    int pivot_row;
    double pivot_value;
    int begin, end;  // Off-pivot entries in the shared pools below.
  };
  std::vector<Eta> etas_;
  std::vector<int> eta_rows_;
  std::vector<double> eta_vals_;

  // Scratch (allocated once in BuildCore).
  std::vector<double> y_, alpha_, rho_, work_;
  std::vector<int> cand_;  // Partial-pricing candidate list (indices only —
                           // reduced costs are always re-priced fresh).

  LpStats stats_;
  int iterations_ = 0;
  int max_iterations_ = 0;
  int degenerate_streak_ = 0;
  int pivots_since_refactor_ = 0;
};

double SimplexSolver::ReducedCost(int j, const std::vector<double>& y) const {
  double d = obj_[j];
  ForEachColumnEntry(j, [&](int r, double v) { d -= y[r] * v; });
  return d;
}

void SimplexSolver::BuildCore() {
  // CSC structural columns.
  col_start_.assign(static_cast<size_t>(n_) + 1, 0);
  for (int r = 0; r < m_; ++r) {
    for (const LpTerm& t : model_.row(r).terms) {
      ++col_start_[static_cast<size_t>(t.var) + 1];
    }
  }
  for (int j = 0; j < n_; ++j) {
    col_start_[static_cast<size_t>(j) + 1] += col_start_[static_cast<size_t>(j)];
  }
  col_row_.resize(static_cast<size_t>(col_start_[static_cast<size_t>(n_)]));
  col_val_.resize(col_row_.size());
  {
    std::vector<int> fill(col_start_.begin(), col_start_.end() - 1);
    for (int r = 0; r < m_; ++r) {
      for (const LpTerm& t : model_.row(r).terms) {
        const int k = fill[static_cast<size_t>(t.var)]++;
        col_row_[static_cast<size_t>(k)] = r;
        col_val_[static_cast<size_t>(k)] = t.coeff;
      }
    }
  }

  rhs_.resize(static_cast<size_t>(m_));
  for (int r = 0; r < m_; ++r) {
    rhs_[static_cast<size_t>(r)] = model_.row(r).rhs;
  }

  lower_.assign(static_cast<size_t>(n_), 0.0);
  upper_.assign(static_cast<size_t>(n_), 0.0);
  obj_.assign(static_cast<size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    lower_[static_cast<size_t>(j)] = model_.lower(j);
    upper_[static_cast<size_t>(j)] = model_.upper(j);
    obj_[static_cast<size_t>(j)] = model_.objective(j);
    TS_CHECK_MSG(lower_[static_cast<size_t>(j)] > -kLpInfinity ||
                     upper_[static_cast<size_t>(j)] < kLpInfinity,
                 "variable " << j << " must have a finite bound");
  }
  // Slack variables: row sense becomes a bound on the slack.
  for (int r = 0; r < m_; ++r) {
    const RowSense sense = model_.row(r).sense;
    double lo = 0.0;
    double up = 0.0;
    if (sense == RowSense::kLessEqual) {
      up = kLpInfinity;
    } else if (sense == RowSense::kGreaterEqual) {
      lo = -kLpInfinity;
    }
    lower_.push_back(lo);
    upper_.push_back(up);
    obj_.push_back(0.0);
  }
  total_ = n_ + m_;

  y_.resize(static_cast<size_t>(m_));
  alpha_.resize(static_cast<size_t>(m_));
  rho_.resize(static_cast<size_t>(m_));
  work_.resize(static_cast<size_t>(m_));
}

void SimplexSolver::Ftran(std::vector<double>* x) {
  ++stats_.ftran;
  for (const Eta& e : etas_) {
    double t = (*x)[static_cast<size_t>(e.pivot_row)];
    if (t == 0.0) {
      continue;  // Sparse skip: untouched pivot rows cost nothing.
    }
    t /= e.pivot_value;
    (*x)[static_cast<size_t>(e.pivot_row)] = t;
    for (int k = e.begin; k < e.end; ++k) {
      (*x)[static_cast<size_t>(eta_rows_[static_cast<size_t>(k)])] -=
          eta_vals_[static_cast<size_t>(k)] * t;
    }
  }
}

void SimplexSolver::Btran(std::vector<double>* y) {
  ++stats_.btran;
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = (*y)[static_cast<size_t>(it->pivot_row)];
    for (int k = it->begin; k < it->end; ++k) {
      acc -= eta_vals_[static_cast<size_t>(k)] *
             (*y)[static_cast<size_t>(eta_rows_[static_cast<size_t>(k)])];
    }
    (*y)[static_cast<size_t>(it->pivot_row)] = acc / it->pivot_value;
  }
}

void SimplexSolver::AppendEta(const std::vector<double>& column, int pivot_row) {
  Eta e;
  e.pivot_row = pivot_row;
  e.pivot_value = column[static_cast<size_t>(pivot_row)];
  e.begin = static_cast<int>(eta_rows_.size());
  for (int r = 0; r < m_; ++r) {
    const double v = column[static_cast<size_t>(r)];
    if (r != pivot_row && v != 0.0) {
      eta_rows_.push_back(r);
      eta_vals_.push_back(v);
    }
  }
  e.end = static_cast<int>(eta_rows_.size());
  etas_.push_back(e);
}

void SimplexSolver::ParkNonbasic(int j, BasisStatus preferred) {
  // Rest at the preferred bound when finite, else the other one.
  if (preferred == BasisStatus::kAtLower && lower_[static_cast<size_t>(j)] > -kLpInfinity) {
    status_[static_cast<size_t>(j)] = BasisStatus::kAtLower;
    value_[static_cast<size_t>(j)] = lower_[static_cast<size_t>(j)];
  } else if (upper_[static_cast<size_t>(j)] < kLpInfinity) {
    status_[static_cast<size_t>(j)] = BasisStatus::kAtUpper;
    value_[static_cast<size_t>(j)] = upper_[static_cast<size_t>(j)];
  } else {
    status_[static_cast<size_t>(j)] = BasisStatus::kAtLower;
    value_[static_cast<size_t>(j)] = lower_[static_cast<size_t>(j)];
  }
}

bool SimplexSolver::FactorFromSet(std::vector<int> proposed, bool strict) {
  ++stats_.refactorizations;
  // Strict mode must be able to back out: a numerically near-singular basis
  // (legal — pivot magnitudes are only bounded below by kPivotTol) fails
  // reinversion, and the run then simply keeps its current eta file.
  std::vector<Eta> saved_etas;
  std::vector<int> saved_rows;
  std::vector<double> saved_vals;
  if (strict) {
    saved_etas = std::move(etas_);
    saved_rows = std::move(eta_rows_);
    saved_vals = std::move(eta_vals_);
  }
  const auto restore = [&]() {
    etas_ = std::move(saved_etas);
    eta_rows_ = std::move(saved_rows);
    eta_vals_ = std::move(saved_vals);
  };
  etas_.clear();
  eta_rows_.clear();
  eta_vals_.clear();
  pivots_since_refactor_ = 0;

  // Reinversion order: sparsest columns first (slacks and artificials are
  // unit columns and pivot with zero fill; scheduler bases are then nearly
  // triangular). Deterministic tie-break on variable id.
  const auto nnz = [&](int j) {
    return j < n_ ? col_start_[static_cast<size_t>(j) + 1] - col_start_[static_cast<size_t>(j)]
                  : 1;
  };
  std::sort(proposed.begin(), proposed.end(),
            [&](int a, int b) { return nnz(a) != nnz(b) ? nnz(a) < nnz(b) : a < b; });

  std::vector<char> row_pivoted(static_cast<size_t>(m_), 0);
  std::vector<char> used(static_cast<size_t>(total_), 0);
  std::vector<int> new_basis(static_cast<size_t>(m_), -1);
  std::vector<double> col(static_cast<size_t>(m_));
  std::vector<int> demoted;
  for (int j : proposed) {
    if (used[static_cast<size_t>(j)]) {
      if (strict) {
        restore();
        return false;
      }
      demoted.push_back(j);
      continue;
    }
    std::fill(col.begin(), col.end(), 0.0);
    ForEachColumnEntry(j, [&](int r, double v) { col[static_cast<size_t>(r)] = v; });
    Ftran(&col);
    int pivot = -1;
    double best = 1e-10;
    for (int r = 0; r < m_; ++r) {
      if (!row_pivoted[static_cast<size_t>(r)] &&
          std::fabs(col[static_cast<size_t>(r)]) > best) {
        best = std::fabs(col[static_cast<size_t>(r)]);
        pivot = r;
      }
    }
    if (pivot < 0) {
      if (strict) {
        restore();
        return false;
      }
      demoted.push_back(j);
      continue;
    }
    AppendEta(col, pivot);
    row_pivoted[static_cast<size_t>(pivot)] = 1;
    new_basis[static_cast<size_t>(pivot)] = j;
    used[static_cast<size_t>(j)] = 1;
  }
  // Complete any unpivoted rows with their own slack (always independent of
  // the already-pivoted set unless numerically degenerate — then give up and
  // let the caller reset to the identity slack basis).
  for (int r = 0; r < m_; ++r) {
    if (row_pivoted[static_cast<size_t>(r)]) {
      continue;
    }
    if (strict) {
      restore();
      return false;
    }
    const int sv = n_ + r;
    if (used[static_cast<size_t>(sv)]) {
      return false;
    }
    std::fill(col.begin(), col.end(), 0.0);
    col[static_cast<size_t>(r)] = 1.0;
    Ftran(&col);
    if (std::fabs(col[static_cast<size_t>(r)]) <= 1e-10) {
      return false;
    }
    AppendEta(col, r);
    row_pivoted[static_cast<size_t>(r)] = 1;
    new_basis[static_cast<size_t>(r)] = sv;
    used[static_cast<size_t>(sv)] = 1;
  }
  for (int j : demoted) {
    if (!used[static_cast<size_t>(j)]) {
      ParkNonbasic(j, BasisStatus::kAtLower);
    }
  }
  basis_ = std::move(new_basis);
  for (int r = 0; r < m_; ++r) {
    status_[static_cast<size_t>(basis_[static_cast<size_t>(r)])] = BasisStatus::kBasic;
  }
  return true;
}

void SimplexSolver::ResetToSlackBasis() {
  etas_.clear();
  eta_rows_.clear();
  eta_vals_.clear();
  pivots_since_refactor_ = 0;
  for (int j = 0; j < total_; ++j) {
    if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic) {
      ParkNonbasic(j, BasisStatus::kAtLower);
    }
  }
  basis_.assign(static_cast<size_t>(m_), -1);
  for (int r = 0; r < m_; ++r) {
    basis_[static_cast<size_t>(r)] = n_ + r;
    status_[static_cast<size_t>(n_ + r)] = BasisStatus::kBasic;
  }
}

void SimplexSolver::Refactorize() {
  // Opportunistic: if the basis is too ill-conditioned to reinvert, keep the
  // existing (restored) eta file and try again after the next interval. The
  // eta file is always a valid representation — reinversion only compacts it.
  if (FactorFromSet(basis_, /*strict=*/true)) {
    RecomputeBasicValues();
  }
}

void SimplexSolver::RecomputeBasicValues() {
  // w = b - A_N x_N, then x_B = B⁻¹ w via FTRAN.
  work_ = rhs_;
  for (int j = 0; j < total_; ++j) {
    if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic ||
        value_[static_cast<size_t>(j)] == 0.0) {
      continue;
    }
    const double xj = value_[static_cast<size_t>(j)];
    ForEachColumnEntry(j, [&](int r, double v) { work_[static_cast<size_t>(r)] -= v * xj; });
  }
  Ftran(&work_);
  for (int r = 0; r < m_; ++r) {
    value_[static_cast<size_t>(basis_[static_cast<size_t>(r)])] = work_[static_cast<size_t>(r)];
  }
}

void SimplexSolver::ComputeDuals(std::vector<double>* y) {
  for (int r = 0; r < m_; ++r) {
    (*y)[static_cast<size_t>(r)] = obj_[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
  }
  Btran(y);
}

bool SimplexSolver::PrimalFeasible() const {
  for (int r = 0; r < m_; ++r) {
    const int bv = basis_[static_cast<size_t>(r)];
    const double v = value_[static_cast<size_t>(bv)];
    if (v < lower_[static_cast<size_t>(bv)] - options_.feasibility_tol ||
        v > upper_[static_cast<size_t>(bv)] + options_.feasibility_tol) {
      return false;
    }
  }
  return true;
}

bool SimplexSolver::MakeDualFeasible(const std::vector<double>& y) {
  for (int j = 0; j < total_; ++j) {
    if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic ||
        lower_[static_cast<size_t>(j)] == upper_[static_cast<size_t>(j)]) {
      continue;
    }
    const double d = ReducedCost(j, y);
    if (status_[static_cast<size_t>(j)] == BasisStatus::kAtLower &&
        d > options_.optimality_tol) {
      if (upper_[static_cast<size_t>(j)] >= kLpInfinity) {
        return false;
      }
      status_[static_cast<size_t>(j)] = BasisStatus::kAtUpper;
      value_[static_cast<size_t>(j)] = upper_[static_cast<size_t>(j)];
    } else if (status_[static_cast<size_t>(j)] == BasisStatus::kAtUpper &&
               d < -options_.optimality_tol) {
      if (lower_[static_cast<size_t>(j)] <= -kLpInfinity) {
        return false;
      }
      status_[static_cast<size_t>(j)] = BasisStatus::kAtLower;
      value_[static_cast<size_t>(j)] = lower_[static_cast<size_t>(j)];
    }
  }
  return true;
}

void SimplexSolver::ColdStart() {
  // Discard any artificials and warm-start state from a failed install.
  lower_.resize(static_cast<size_t>(n_ + m_));
  upper_.resize(static_cast<size_t>(n_ + m_));
  obj_.resize(static_cast<size_t>(n_ + m_));
  artificial_row_.clear();
  artificial_sign_.clear();
  num_artificials_ = 0;
  total_ = n_ + m_;

  // Initial nonbasic placement for structural vars: the finite bound nearest
  // zero (scheduler variables have lower bound 0, so this is their lower).
  status_.assign(static_cast<size_t>(total_), BasisStatus::kAtLower);
  value_.assign(static_cast<size_t>(total_), 0.0);
  for (int j = 0; j < n_; ++j) {
    ParkNonbasic(j, BasisStatus::kAtLower);
  }

  // Residual of each row with all structural vars at their initial bound.
  std::vector<double> residual = rhs_;
  for (int j = 0; j < n_; ++j) {
    const double xj = value_[static_cast<size_t>(j)];
    if (xj != 0.0) {
      ForEachColumnEntry(
          j, [&](int r, double v) { residual[static_cast<size_t>(r)] -= v * xj; });
    }
  }

  // Slack starts basic when the residual fits its bounds; otherwise the slack
  // is parked at the bound nearest the residual and an artificial carries the
  // remaining infeasibility.
  basis_.assign(static_cast<size_t>(m_), -1);
  for (int r = 0; r < m_; ++r) {
    const int sv = n_ + r;
    const double res = residual[static_cast<size_t>(r)];
    if (res >= lower_[static_cast<size_t>(sv)] - options_.feasibility_tol &&
        res <= upper_[static_cast<size_t>(sv)] + options_.feasibility_tol) {
      basis_[static_cast<size_t>(r)] = sv;
      status_[static_cast<size_t>(sv)] = BasisStatus::kBasic;
      value_[static_cast<size_t>(sv)] = res;
      continue;
    }
    const bool below = res < lower_[static_cast<size_t>(sv)];
    const double parked = below ? lower_[static_cast<size_t>(sv)] : upper_[static_cast<size_t>(sv)];
    status_[static_cast<size_t>(sv)] = below ? BasisStatus::kAtLower : BasisStatus::kAtUpper;
    value_[static_cast<size_t>(sv)] = parked;
    const double gap = res - parked;
    const int av = n_ + m_ + num_artificials_;
    artificial_row_.push_back(r);
    artificial_sign_.push_back(gap >= 0.0 ? 1.0 : -1.0);
    lower_.push_back(0.0);
    upper_.push_back(kLpInfinity);
    obj_.push_back(0.0);
    status_.push_back(BasisStatus::kBasic);
    value_.push_back(std::fabs(gap));
    basis_[static_cast<size_t>(r)] = av;
    ++num_artificials_;
  }
  total_ = n_ + m_ + num_artificials_;

  cand_.clear();
  degenerate_streak_ = 0;
  Refactorize();
}

bool SimplexSolver::TryWarmStart() {
  const LpBasis& b = options_.start_basis;
  if (static_cast<int>(b.status.size()) != n_ + m_) {
    return false;  // Different model shape; the hint is meaningless.
  }
  total_ = n_ + m_;
  num_artificials_ = 0;
  status_.assign(static_cast<size_t>(total_), BasisStatus::kAtLower);
  value_.assign(static_cast<size_t>(total_), 0.0);
  std::vector<int> proposed;
  proposed.reserve(static_cast<size_t>(m_));
  for (int j = 0; j < total_; ++j) {
    const BasisStatus s = b.status[static_cast<size_t>(j)];
    if (s == BasisStatus::kBasic) {
      status_[static_cast<size_t>(j)] = BasisStatus::kBasic;
      proposed.push_back(j);
    } else {
      // Statuses are symbolic, so "at lower" snaps to the *current* bound —
      // which is how a parent basis stays valid after branching tightens the
      // child's box.
      ParkNonbasic(j, s);
    }
  }
  basis_.assign(static_cast<size_t>(m_), -1);
  if (!FactorFromSet(std::move(proposed), /*strict=*/false)) {
    ResetToSlackBasis();
  }
  RecomputeBasicValues();
  cand_.clear();
  degenerate_streak_ = 0;
  return true;
}

// ---------------------------------------------------------------------------
// Pricing
// ---------------------------------------------------------------------------

void SimplexSolver::RebuildCandidates(const std::vector<double>& y) {
  struct Scored {
    double score;
    int j;
  };
  std::vector<Scored> scored;
  for (int j = 0; j < total_; ++j) {
    if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic ||
        lower_[static_cast<size_t>(j)] == upper_[static_cast<size_t>(j)]) {
      continue;
    }
    const double d = ReducedCost(j, y);
    const bool favorable =
        (status_[static_cast<size_t>(j)] == BasisStatus::kAtLower &&
         d > options_.optimality_tol) ||
        (status_[static_cast<size_t>(j)] == BasisStatus::kAtUpper &&
         d < -options_.optimality_tol);
    if (favorable) {
      scored.push_back(Scored{std::fabs(d), j});
    }
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.j < b.j;
  });
  const size_t cap = static_cast<size_t>(
      std::clamp(total_ / 8, 8, 64));
  if (scored.size() > cap) {
    scored.resize(cap);
  }
  cand_.clear();
  for (const Scored& s : scored) {
    cand_.push_back(s.j);
  }
}

int SimplexSolver::PriceList(const std::vector<double>& y, int* direction) {
  int pick = -1;
  int dir = +1;
  double best = options_.optimality_tol;
  size_t keep = 0;
  for (const int j : cand_) {
    if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic ||
        lower_[static_cast<size_t>(j)] == upper_[static_cast<size_t>(j)]) {
      continue;  // Entered the basis or got fixed; drop from the list.
    }
    const double d = ReducedCost(j, y);
    int dj = 0;
    if (status_[static_cast<size_t>(j)] == BasisStatus::kAtLower &&
        d > options_.optimality_tol) {
      dj = +1;
    } else if (status_[static_cast<size_t>(j)] == BasisStatus::kAtUpper &&
               d < -options_.optimality_tol) {
      dj = -1;
    }
    if (dj == 0) {
      continue;  // No longer favorable; drop.
    }
    cand_[keep++] = j;
    if (std::fabs(d) > best) {
      best = std::fabs(d);
      pick = j;
      dir = dj;
    }
  }
  cand_.resize(keep);
  if (pick >= 0) {
    *direction = dir;
  }
  return pick;
}

int SimplexSolver::PickEntering(const std::vector<double>& y, int* direction) {
  const int from_list = PriceList(y, direction);
  if (from_list >= 0) {
    return from_list;
  }
  RebuildCandidates(y);
  if (cand_.empty()) {
    return -1;  // Full scan found nothing favorable: optimal.
  }
  return PriceList(y, direction);
}

// ---------------------------------------------------------------------------
// Primal simplex
// ---------------------------------------------------------------------------

LpStatus SimplexSolver::RunPrimal(bool phase1) {
  while (true) {
    if (iterations_ >= max_iterations_) {
      return LpStatus::kIterationLimit;
    }
    ComputeDuals(&y_);

    // Entering variable: candidate-list Dantzig normally, Bland's-rule full
    // scan under a degeneracy streak (guarantees termination).
    const bool bland = degenerate_streak_ > 2 * (m_ + 8);
    int entering = -1;
    int direction = +1;  // +1: increase from lower; -1: decrease from upper.
    if (bland) {
      for (int j = 0; j < total_ && entering < 0; ++j) {
        if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic ||
            lower_[static_cast<size_t>(j)] == upper_[static_cast<size_t>(j)]) {
          continue;
        }
        const double d = ReducedCost(j, y_);
        if (status_[static_cast<size_t>(j)] == BasisStatus::kAtLower &&
            d > options_.optimality_tol) {
          entering = j;
          direction = +1;
        } else if (status_[static_cast<size_t>(j)] == BasisStatus::kAtUpper &&
                   d < -options_.optimality_tol) {
          entering = j;
          direction = -1;
        }
      }
    } else {
      entering = PickEntering(y_, &direction);
    }
    if (entering < 0) {
      return LpStatus::kOptimal;
    }
    ++iterations_;
    if (phase1) {
      ++stats_.phase1_iterations;
    } else {
      ++stats_.phase2_iterations;
    }

    // alpha = B⁻¹ a_entering.
    std::fill(alpha_.begin(), alpha_.end(), 0.0);
    ForEachColumnEntry(entering,
                       [&](int r, double v) { alpha_[static_cast<size_t>(r)] = v; });
    Ftran(&alpha_);

    // Ratio test. Moving the entering variable by delta in `direction`
    // changes basic variable r by -direction * alpha[r] * delta.
    double limit = upper_[static_cast<size_t>(entering)] -
                   lower_[static_cast<size_t>(entering)];  // Bound-flip span.
    int leaving_row = -1;
    double leaving_target = 0.0;  // Bound the leaving variable lands on.
    for (int r = 0; r < m_; ++r) {
      const double rate = -static_cast<double>(direction) * alpha_[static_cast<size_t>(r)];
      if (std::fabs(rate) < kPivotTol) {
        continue;
      }
      const int bv = basis_[static_cast<size_t>(r)];
      double ratio;
      double target;
      if (rate < 0.0) {
        // Basic value decreases toward its lower bound.
        if (lower_[static_cast<size_t>(bv)] <= -kLpInfinity) {
          continue;
        }
        ratio = (value_[static_cast<size_t>(bv)] - lower_[static_cast<size_t>(bv)]) / (-rate);
        target = lower_[static_cast<size_t>(bv)];
      } else {
        if (upper_[static_cast<size_t>(bv)] >= kLpInfinity) {
          continue;
        }
        ratio = (upper_[static_cast<size_t>(bv)] - value_[static_cast<size_t>(bv)]) / rate;
        target = upper_[static_cast<size_t>(bv)];
      }
      ratio = std::max(ratio, 0.0);
      const bool better =
          ratio < limit - 1e-12 ||
          (leaving_row >= 0 && ratio < limit + 1e-12 &&
           std::fabs(alpha_[static_cast<size_t>(r)]) >
               std::fabs(alpha_[static_cast<size_t>(leaving_row)]));
      if (better) {
        limit = ratio;
        leaving_row = r;
        leaving_target = target;
      }
    }

    if (limit >= kLpInfinity) {
      return LpStatus::kUnbounded;
    }

    const double step = limit;
    if (step < 1e-11) {
      ++degenerate_streak_;
    } else {
      degenerate_streak_ = 0;
    }

    if (leaving_row < 0) {
      // Bound flip: the entering variable runs to its other bound. Basic
      // values move by -direction * alpha * span (incremental, no solve).
      const double span = step;
      status_[static_cast<size_t>(entering)] =
          status_[static_cast<size_t>(entering)] == BasisStatus::kAtLower
              ? BasisStatus::kAtUpper
              : BasisStatus::kAtLower;
      value_[static_cast<size_t>(entering)] =
          status_[static_cast<size_t>(entering)] == BasisStatus::kAtLower
              ? lower_[static_cast<size_t>(entering)]
              : upper_[static_cast<size_t>(entering)];
      for (int r = 0; r < m_; ++r) {
        const double a = alpha_[static_cast<size_t>(r)];
        if (a != 0.0) {
          value_[static_cast<size_t>(basis_[static_cast<size_t>(r)])] -=
              static_cast<double>(direction) * span * a;
        }
      }
      continue;
    }

    // Pivot: entering becomes basic, leaving goes to the bound it hit. Basic
    // values update incrementally; the eta file gains one column.
    const int leaving = basis_[static_cast<size_t>(leaving_row)];
    const double entering_value =
        value_[static_cast<size_t>(entering)] + static_cast<double>(direction) * step;
    for (int r = 0; r < m_; ++r) {
      if (r == leaving_row) {
        continue;
      }
      const double a = alpha_[static_cast<size_t>(r)];
      if (a != 0.0) {
        value_[static_cast<size_t>(basis_[static_cast<size_t>(r)])] -=
            static_cast<double>(direction) * step * a;
      }
    }
    status_[static_cast<size_t>(leaving)] =
        leaving_target == lower_[static_cast<size_t>(leaving)] ? BasisStatus::kAtLower
                                                               : BasisStatus::kAtUpper;
    value_[static_cast<size_t>(leaving)] = leaving_target;
    basis_[static_cast<size_t>(leaving_row)] = entering;
    status_[static_cast<size_t>(entering)] = BasisStatus::kBasic;
    value_[static_cast<size_t>(entering)] = entering_value;

    TS_CHECK_MSG(std::fabs(alpha_[static_cast<size_t>(leaving_row)]) > kPivotTol,
                 "numerically zero pivot");
    AppendEta(alpha_, leaving_row);
    if (++pivots_since_refactor_ >= kRefactorInterval) {
      Refactorize();
    }
  }
}

// ---------------------------------------------------------------------------
// Dual simplex
// ---------------------------------------------------------------------------

LpStatus SimplexSolver::RunDual() {
  // Safety cap: a dual re-optimization that has not converged in O(m) pivots
  // is degenerate or numerically stuck; the caller cold-starts instead (same
  // answer, just slower), so giving up is always safe.
  const int max_dual = 3 * m_ + 200;
  int dual_pivots = 0;
  while (true) {
    if (iterations_ >= max_iterations_) {
      return LpStatus::kIterationLimit;
    }
    if (dual_pivots >= max_dual) {
      return LpStatus::kIterationLimit;
    }

    // Leaving row: the basic variable with the largest bound violation
    // (tie-break: smallest row index — deterministic).
    int lrow = -1;
    double viol = options_.feasibility_tol;
    bool below = false;
    for (int r = 0; r < m_; ++r) {
      const int bv = basis_[static_cast<size_t>(r)];
      const double v = value_[static_cast<size_t>(bv)];
      const double lo = lower_[static_cast<size_t>(bv)];
      const double up = upper_[static_cast<size_t>(bv)];
      if (lo > -kLpInfinity && lo - v > viol) {
        viol = lo - v;
        lrow = r;
        below = true;
      } else if (up < kLpInfinity && v - up > viol) {
        viol = v - up;
        lrow = r;
        below = false;
      }
    }
    if (lrow < 0) {
      return LpStatus::kOptimal;  // Primal feasibility restored.
    }
    ++iterations_;
    ++stats_.dual_iterations;
    ++dual_pivots;

    // rho = eᵣᵀ B⁻¹ (the pivot row of the basis inverse).
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[static_cast<size_t>(lrow)] = 1.0;
    Btran(&rho_);
    ComputeDuals(&y_);

    // Dual ratio test: among sign-eligible nonbasic columns, enter the one
    // whose reduced cost hits zero first (smallest |d|/|alpha_r|); ties go to
    // the larger pivot magnitude, then the smaller index.
    int entering = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    double best_mag = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (status_[static_cast<size_t>(j)] == BasisStatus::kBasic ||
          lower_[static_cast<size_t>(j)] == upper_[static_cast<size_t>(j)]) {
        continue;
      }
      double arj = 0.0;
      ForEachColumnEntry(j, [&](int r, double v) { arj += rho_[static_cast<size_t>(r)] * v; });
      if (std::fabs(arj) <= kPivotTol) {
        continue;
      }
      const bool at_lower = status_[static_cast<size_t>(j)] == BasisStatus::kAtLower;
      // x_basic changes by -alpha_r * dx_j; the violated variable must move
      // toward its bound, and the nonbasic can only move off its own bound.
      const bool eligible = below ? (at_lower ? arj < 0.0 : arj > 0.0)
                                  : (at_lower ? arj > 0.0 : arj < 0.0);
      if (!eligible) {
        continue;
      }
      const double d = ReducedCost(j, y_);
      const double slack = std::max(0.0, at_lower ? -d : d);  // Dual headroom.
      const double ratio = slack / std::fabs(arj);
      const bool wins =
          ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           (entering < 0 || std::fabs(arj) > best_mag + 1e-12 ||
            (std::fabs(arj) > best_mag - 1e-12 && j < entering)));
      if (wins) {
        entering = j;
        best_ratio = ratio;
        best_mag = std::fabs(arj);
      }
    }
    if (entering < 0) {
      // No column can repair the violated row: the (child) LP is empty.
      return LpStatus::kInfeasible;
    }

    std::fill(alpha_.begin(), alpha_.end(), 0.0);
    ForEachColumnEntry(entering,
                       [&](int r, double v) { alpha_[static_cast<size_t>(r)] = v; });
    Ftran(&alpha_);
    const double are = alpha_[static_cast<size_t>(lrow)];
    if (std::fabs(are) <= kPivotTol) {
      return LpStatus::kIterationLimit;  // Numerical disagreement; cold-start.
    }

    const int leaving = basis_[static_cast<size_t>(lrow)];
    const double target = below ? lower_[static_cast<size_t>(leaving)]
                                : upper_[static_cast<size_t>(leaving)];
    // Drive the leaving variable exactly onto its violated bound.
    const double dxj = (value_[static_cast<size_t>(leaving)] - target) / are;
    for (int r = 0; r < m_; ++r) {
      if (r == lrow) {
        continue;
      }
      const double a = alpha_[static_cast<size_t>(r)];
      if (a != 0.0) {
        value_[static_cast<size_t>(basis_[static_cast<size_t>(r)])] -= a * dxj;
      }
    }
    const double entering_value = value_[static_cast<size_t>(entering)] + dxj;
    status_[static_cast<size_t>(leaving)] =
        below ? BasisStatus::kAtLower : BasisStatus::kAtUpper;
    value_[static_cast<size_t>(leaving)] = target;
    basis_[static_cast<size_t>(lrow)] = entering;
    status_[static_cast<size_t>(entering)] = BasisStatus::kBasic;
    value_[static_cast<size_t>(entering)] = entering_value;
    AppendEta(alpha_, lrow);
    if (++pivots_since_refactor_ >= kRefactorInterval) {
      Refactorize();
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

LpSolution SimplexSolver::Finish(LpStatus status) {
  LpSolution result;
  result.status = status;
  result.iterations = iterations_;
  if (status == LpStatus::kOptimal || status == LpStatus::kIterationLimit) {
    RecomputeBasicValues();  // Squash incremental drift before export.
    result.values.resize(static_cast<size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      // Clamp tiny numerical overshoot back into the box.
      result.values[static_cast<size_t>(j)] =
          std::clamp(value_[static_cast<size_t>(j)], model_.lower(j), model_.upper(j));
    }
    result.objective = model_.ObjectiveValue(result.values);
    result.basis.status.resize(static_cast<size_t>(n_ + m_));
    for (int j = 0; j < n_ + m_; ++j) {
      result.basis.status[static_cast<size_t>(j)] = status_[static_cast<size_t>(j)];
    }
  }
  result.stats = stats_;
  return result;
}

LpSolution SimplexSolver::Solve() {
  LpSolution result;
  if (m_ == 0) {
    // Pure bound problem: each variable sits at whichever bound its objective
    // prefers.
    result.status = LpStatus::kOptimal;
    result.values.resize(static_cast<size_t>(n_));
    result.basis.status.resize(static_cast<size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      const double c = model_.objective(j);
      double v;
      if (c > 0.0) {
        v = model_.upper(j);
      } else if (c < 0.0) {
        v = model_.lower(j);
      } else {
        v = model_.lower(j) > -kLpInfinity ? model_.lower(j) : model_.upper(j);
      }
      if (v >= kLpInfinity || v <= -kLpInfinity) {
        result.status = LpStatus::kUnbounded;
        result.values.clear();
        result.basis.status.clear();
        return result;
      }
      result.values[static_cast<size_t>(j)] = v;
      result.basis.status[static_cast<size_t>(j)] =
          v == model_.upper(j) ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
      result.objective += c * v;
    }
    return result;
  }

  BuildCore();
  max_iterations_ = options_.max_iterations > 0 ? options_.max_iterations
                                                : 200 * (n_ + 2 * m_) + 2000;

  // Warm path: install the hint; if it lands primal feasible Phase 1 is
  // skipped outright, if it lands dual feasible the dual simplex re-optimizes
  // in a few pivots (the branch-and-bound child case). Anything else falls
  // through to a cold start — a warm start can change the pivot count, never
  // the answer.
  if (!options_.start_basis.empty() && TryWarmStart()) {
    stats_.warm_basis_used = true;
    if (PrimalFeasible()) {
      return Finish(RunPrimal(/*phase1=*/false));
    }
    ComputeDuals(&y_);
    if (MakeDualFeasible(y_)) {
      RecomputeBasicValues();  // Bound flips moved nonbasic values.
      const LpStatus dual = RunDual();
      if (dual == LpStatus::kInfeasible) {
        result.status = LpStatus::kInfeasible;
        result.iterations = iterations_;
        result.stats = stats_;
        return result;
      }
      if (dual == LpStatus::kOptimal) {
        // Certify: dual pivots preserved dual feasibility, so this is
        // normally zero extra pivots.
        return Finish(RunPrimal(/*phase1=*/false));
      }
      // Dual gave up (degeneracy/numerics): cold-start below.
    }
    stats_.warm_basis_used = false;
  }

  ColdStart();
  if (num_artificials_ > 0) {
    // Phase 1: drive artificial infeasibility to zero (max -sum(artificials)).
    std::vector<double> real_obj = obj_;
    for (int j = 0; j < total_; ++j) {
      obj_[static_cast<size_t>(j)] = j >= n_ + m_ ? -1.0 : 0.0;
    }
    const LpStatus phase1 = RunPrimal(/*phase1=*/true);
    double infeasibility = 0.0;
    for (int j = n_ + m_; j < total_; ++j) {
      infeasibility += value_[static_cast<size_t>(j)];
    }
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iterations_;
      result.stats = stats_;
      return result;
    }
    if (infeasibility > 1e-6) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      result.stats = stats_;
      return result;
    }
    // Retire artificials: pin them to zero so Phase 2 cannot resurrect them.
    for (int j = n_ + m_; j < total_; ++j) {
      lower_[static_cast<size_t>(j)] = 0.0;
      upper_[static_cast<size_t>(j)] = 0.0;
      if (status_[static_cast<size_t>(j)] != BasisStatus::kBasic) {
        status_[static_cast<size_t>(j)] = BasisStatus::kAtLower;
        value_[static_cast<size_t>(j)] = 0.0;
      }
    }
    obj_ = real_obj;
    degenerate_streak_ = 0;
    cand_.clear();
  }
  return Finish(RunPrimal(/*phase1=*/false));
}

}  // namespace

namespace {

LpSolution SolveLpImpl(const LpModel& model, const SimplexOptions& options) {
  if (options.presolve) {
    PresolveResult pre = Presolve(model);
    if (pre.proven_infeasible) {
      LpSolution result;
      result.status = LpStatus::kInfeasible;
      return result;
    }
    if (!pre.proven_unbounded) {
      SimplexOptions reduced_options = options;
      reduced_options.presolve = false;
      // A start basis rides through the reductions (statuses of surviving
      // variables and rows); the simplex repairs whatever the eliminations
      // knocked out of the basic set.
      if (!options.start_basis.empty()) {
        reduced_options.start_basis =
            pre.MapBasisToReduced(options.start_basis, model.num_variables(),
                                  model.num_rows());
      }
      SimplexSolver solver(pre.reduced, reduced_options);
      LpSolution reduced = solver.Solve();
      if (reduced.status == LpStatus::kOptimal ||
          reduced.status == LpStatus::kIterationLimit) {
        reduced.values = pre.ExpandSolution(reduced.values);
        reduced.objective = model.ObjectiveValue(reduced.values);
        reduced.basis =
            pre.MapBasisToFull(reduced.basis, model.num_variables(), model.num_rows());
      }
      return reduced;
    }
    // A row-free variable with an unbounded preferred direction: the model is
    // unbounded iff the rest is feasible — let the full simplex decide.
  }
  SimplexSolver solver(model, options);
  return solver.Solve();
}

}  // namespace

LpSolution SolveLp(const LpModel& model, const SimplexOptions& options) {
  LpSolution result = SolveLpImpl(model, options);
  // LP work counters. SolveLp runs on solver worker threads too, so this uses
  // only striped registry adds — never spans (span rings are driver-thread
  // state; worker emission would make trace export thread-count-dependent).
  struct LpCounters {
    obs::Counter* solves;
    obs::Counter* pivots;
    obs::Counter* ftran;
    obs::Counter* btran;
    obs::Counter* refactorizations;
    obs::Counter* warm_basis_used;
    obs::Histogram* pivots_hist;
  };
  static const LpCounters* const counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto* c = new LpCounters();
    c->solves = reg.GetCounter("solver.lp_solves");
    c->pivots = reg.GetCounter("solver.lp_pivots");
    c->ftran = reg.GetCounter("solver.ftran");
    c->btran = reg.GetCounter("solver.btran");
    c->refactorizations = reg.GetCounter("solver.refactorizations");
    c->warm_basis_used = reg.GetCounter("solver.warm_basis_used");
    c->pivots_hist = reg.GetHistogram(
        "solver.lp_pivots_per_solve", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                                       256.0, 512.0, 1024.0});
    return c;
  }();
  counters->solves->Increment();
  counters->pivots->Add(result.iterations);
  counters->ftran->Add(result.stats.ftran);
  counters->btran->Add(result.stats.btran);
  counters->refactorizations->Add(result.stats.refactorizations);
  if (result.stats.warm_basis_used) {
    counters->warm_basis_used->Increment();
  }
  counters->pivots_hist->Observe(static_cast<double>(result.iterations));
  return result;
}

}  // namespace threesigma
