// LP presolve: cheap reductions applied before the simplex runs.
//
// Branch-and-bound fixes indicator variables by collapsing their bounds, so
// deep nodes carry many fixed variables and rows made redundant by those
// fixings. Presolve removes them:
//   1. fixed variables (lower == upper) are substituted into row activities,
//   2. variables appearing in no row move to their objective-best bound,
//   3. rows that cannot bind under the remaining bounds are dropped, and
//      rows proven unsatisfiable flag infeasibility outright.
// The reduced model is solved and the solution expanded back. SolveLp runs
// presolve by default (SimplexOptions::presolve).

#ifndef SRC_SOLVER_PRESOLVE_H_
#define SRC_SOLVER_PRESOLVE_H_

#include <vector>

#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace threesigma {

struct PresolveResult {
  // Immediate verdicts (when set, `reduced` is meaningless).
  bool proven_infeasible = false;
  bool proven_unbounded = false;

  LpModel reduced;
  // reduced variable index -> original variable index.
  std::vector<int> var_map;
  // reduced row index -> original row index.
  std::vector<int> row_map;
  // Values assigned to eliminated original variables.
  std::vector<double> eliminated_values;  // Indexed by original var; valid
  std::vector<bool> eliminated;           // where `eliminated[v]` is true.
  // Which bound the eliminated variable rests at (for basis reconstruction).
  std::vector<bool> eliminated_at_upper;

  int rows_removed = 0;
  int vars_removed = 0;

  // Expands a reduced-space solution to the original variable space.
  std::vector<double> ExpandSolution(const std::vector<double>& reduced_values) const;

  // Basis translation across the reductions, so warm starts survive presolve.
  // Both directions are best-effort: a dimension mismatch yields an empty
  // basis (the simplex then cold-starts / the caller gets no hint), and a
  // reduced basis whose basic count no longer matches the reduced row count
  // is repaired inside the simplex install. `num_vars` / `num_rows` are the
  // ORIGINAL model dimensions.
  //
  // To reduced space: surviving variables and rows keep their status;
  // eliminated entries are dropped.
  LpBasis MapBasisToReduced(const LpBasis& full, int num_vars, int num_rows) const;
  // To full space: eliminated variables rest at their assigned bound, slacks
  // of removed (redundant) rows become basic — a removed row can never bind,
  // so its slack is strictly interior and basic is the natural status.
  LpBasis MapBasisToFull(const LpBasis& reduced_basis, int num_vars, int num_rows) const;
};

PresolveResult Presolve(const LpModel& model);

}  // namespace threesigma

#endif  // SRC_SOLVER_PRESOLVE_H_
