// LP presolve: cheap reductions applied before the simplex runs.
//
// Branch-and-bound fixes indicator variables by collapsing their bounds, so
// deep nodes carry many fixed variables and rows made redundant by those
// fixings. Presolve removes them:
//   1. fixed variables (lower == upper) are substituted into row activities,
//   2. variables appearing in no row move to their objective-best bound,
//   3. rows that cannot bind under the remaining bounds are dropped, and
//      rows proven unsatisfiable flag infeasibility outright.
// The reduced model is solved and the solution expanded back. SolveLp runs
// presolve by default (SimplexOptions::presolve).

#ifndef SRC_SOLVER_PRESOLVE_H_
#define SRC_SOLVER_PRESOLVE_H_

#include <vector>

#include "src/solver/lp_model.h"

namespace threesigma {

struct PresolveResult {
  // Immediate verdicts (when set, `reduced` is meaningless).
  bool proven_infeasible = false;
  bool proven_unbounded = false;

  LpModel reduced;
  // reduced variable index -> original variable index.
  std::vector<int> var_map;
  // Values assigned to eliminated original variables.
  std::vector<double> eliminated_values;  // Indexed by original var; valid
  std::vector<bool> eliminated;           // where `eliminated[v]` is true.

  int rows_removed = 0;
  int vars_removed = 0;

  // Expands a reduced-space solution to the original variable space.
  std::vector<double> ExpandSolution(const std::vector<double>& reduced_values) const;
};

PresolveResult Presolve(const LpModel& model);

}  // namespace threesigma

#endif  // SRC_SOLVER_PRESOLVE_H_
