#include "src/solver/presolve.h"

#include <cmath>

#include "src/common/check.h"

namespace threesigma {
namespace {

constexpr double kTol = 1e-9;

}  // namespace

std::vector<double> PresolveResult::ExpandSolution(
    const std::vector<double>& reduced_values) const {
  TS_CHECK_EQ(reduced_values.size(), var_map.size());
  std::vector<double> full = eliminated_values;
  for (size_t r = 0; r < var_map.size(); ++r) {
    full[static_cast<size_t>(var_map[r])] = reduced_values[r];
  }
  return full;
}

LpBasis PresolveResult::MapBasisToReduced(const LpBasis& full, int num_vars,
                                          int num_rows) const {
  LpBasis out;
  if (static_cast<int>(full.status.size()) != num_vars + num_rows) {
    return out;
  }
  out.status.reserve(var_map.size() + row_map.size());
  for (const int v : var_map) {
    out.status.push_back(full.status[static_cast<size_t>(v)]);
  }
  for (const int r : row_map) {
    out.status.push_back(full.status[static_cast<size_t>(num_vars + r)]);
  }
  return out;
}

LpBasis PresolveResult::MapBasisToFull(const LpBasis& reduced_basis, int num_vars,
                                       int num_rows) const {
  LpBasis out;
  if (reduced_basis.status.size() != var_map.size() + row_map.size()) {
    return out;
  }
  out.status.assign(static_cast<size_t>(num_vars + num_rows), BasisStatus::kAtLower);
  for (int v = 0; v < num_vars; ++v) {
    if (eliminated[static_cast<size_t>(v)] && eliminated_at_upper[static_cast<size_t>(v)]) {
      out.status[static_cast<size_t>(v)] = BasisStatus::kAtUpper;
    }
  }
  for (int r = 0; r < num_rows; ++r) {
    out.status[static_cast<size_t>(num_vars + r)] = BasisStatus::kBasic;
  }
  for (size_t i = 0; i < var_map.size(); ++i) {
    out.status[static_cast<size_t>(var_map[i])] = reduced_basis.status[i];
  }
  for (size_t i = 0; i < row_map.size(); ++i) {
    out.status[static_cast<size_t>(num_vars + row_map[i])] =
        reduced_basis.status[var_map.size() + i];
  }
  return out;
}

PresolveResult Presolve(const LpModel& model) {
  PresolveResult result;
  const int n = model.num_variables();
  result.eliminated_values.assign(static_cast<size_t>(n), 0.0);
  result.eliminated.assign(static_cast<size_t>(n), false);
  result.eliminated_at_upper.assign(static_cast<size_t>(n), false);

  // Pass 1: find which variables appear in any row.
  std::vector<bool> in_rows(static_cast<size_t>(n), false);
  for (const LpRow& row : model.rows()) {
    for (const LpTerm& t : row.terms) {
      in_rows[static_cast<size_t>(t.var)] = true;
    }
  }

  // Eliminate fixed variables and row-free variables.
  for (int v = 0; v < n; ++v) {
    const double lo = model.lower(v);
    const double up = model.upper(v);
    if (up - lo <= kTol) {
      result.eliminated[static_cast<size_t>(v)] = true;
      result.eliminated_values[static_cast<size_t>(v)] = lo;
      continue;
    }
    if (!in_rows[static_cast<size_t>(v)]) {
      // Move to the objective-preferred bound.
      const double c = model.objective(v);
      double pick;
      if (c > 0.0) {
        pick = up;
      } else if (c < 0.0) {
        pick = lo;
      } else {
        pick = lo > -kLpInfinity ? lo : up;
      }
      if (pick >= kLpInfinity || pick <= -kLpInfinity) {
        result.proven_unbounded = true;
        return result;
      }
      result.eliminated[static_cast<size_t>(v)] = true;
      result.eliminated_values[static_cast<size_t>(v)] = pick;
      result.eliminated_at_upper[static_cast<size_t>(v)] = pick == up;
    }
  }

  // Build the reduced variable set.
  std::vector<int> new_index(static_cast<size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (result.eliminated[static_cast<size_t>(v)]) {
      ++result.vars_removed;
      continue;
    }
    new_index[static_cast<size_t>(v)] = result.reduced.AddVariable(
        model.lower(v), model.upper(v), model.objective(v), model.var_name(v));
    result.var_map.push_back(v);
  }

  // Rebuild rows: substitute eliminated variables, drop non-binding rows.
  for (int row_index = 0; row_index < model.num_rows(); ++row_index) {
    const LpRow& row = model.row(row_index);
    double rhs = row.rhs;
    std::vector<LpTerm> terms;
    terms.reserve(row.terms.size());
    // Activity bounds of the remaining terms (for redundancy detection).
    double min_activity = 0.0;
    double max_activity = 0.0;
    bool min_unbounded = false;
    bool max_unbounded = false;
    for (const LpTerm& t : row.terms) {
      if (result.eliminated[static_cast<size_t>(t.var)]) {
        rhs -= t.coeff * result.eliminated_values[static_cast<size_t>(t.var)];
        continue;
      }
      terms.push_back(LpTerm{new_index[static_cast<size_t>(t.var)], t.coeff});
      const double lo = model.lower(t.var);
      const double up = model.upper(t.var);
      const double a = t.coeff * (t.coeff >= 0.0 ? lo : up);
      const double b = t.coeff * (t.coeff >= 0.0 ? up : lo);
      if (a <= -kLpInfinity || a >= kLpInfinity) {
        min_unbounded = true;
      } else {
        min_activity += a;
      }
      if (b <= -kLpInfinity || b >= kLpInfinity) {
        max_unbounded = true;
      } else {
        max_activity += b;
      }
    }

    if (terms.empty()) {
      // Fully substituted: the row is a pure consistency check.
      const bool ok = (row.sense == RowSense::kLessEqual && 0.0 <= rhs + kTol) ||
                      (row.sense == RowSense::kGreaterEqual && 0.0 >= rhs - kTol) ||
                      (row.sense == RowSense::kEqual && std::fabs(rhs) <= kTol);
      if (!ok) {
        result.proven_infeasible = true;
        return result;
      }
      ++result.rows_removed;
      continue;
    }

    // Redundancy: the row can never bind given variable bounds.
    if (row.sense == RowSense::kLessEqual && !max_unbounded && max_activity <= rhs + kTol) {
      ++result.rows_removed;
      continue;
    }
    if (row.sense == RowSense::kGreaterEqual && !min_unbounded &&
        min_activity >= rhs - kTol) {
      ++result.rows_removed;
      continue;
    }
    // Infeasibility: the row can never be satisfied.
    if (row.sense == RowSense::kLessEqual && !min_unbounded && min_activity > rhs + kTol) {
      result.proven_infeasible = true;
      return result;
    }
    if (row.sense == RowSense::kGreaterEqual && !max_unbounded &&
        max_activity < rhs - kTol) {
      result.proven_infeasible = true;
      return result;
    }
    if (row.sense == RowSense::kEqual && !min_unbounded && !max_unbounded &&
        (min_activity > rhs + kTol || max_activity < rhs - kTol)) {
      result.proven_infeasible = true;
      return result;
    }

    result.reduced.AddRow(row.sense, rhs, std::move(terms), row.name);
    result.row_map.push_back(row_index);
  }
  return result;
}

}  // namespace threesigma
