#include "src/solver/lp_model.h"

#include <cmath>

#include "src/common/check.h"

namespace threesigma {

int LpModel::AddVariable(double lower, double upper, double objective, std::string name) {
  TS_CHECK_LE(lower, upper);
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  var_names_.push_back(std::move(name));
  return static_cast<int>(lower_.size()) - 1;
}

int LpModel::AddRow(RowSense sense, double rhs, std::vector<LpTerm> terms, std::string name) {
  // Coalesce duplicate variable indices (sum their coefficients, keeping the
  // first occurrence's position) and drop resulting zeros. Duplicate terms
  // would otherwise corrupt the row depending on which solver path scans it.
  std::vector<LpTerm> pruned;
  pruned.reserve(terms.size());
  std::vector<int> slot_of_var;  // var -> index into `pruned` + 1, 0 = absent.
  for (const LpTerm& t : terms) {
    TS_CHECK_GE(t.var, 0);
    TS_CHECK_LT(t.var, num_variables());
    if (t.coeff == 0.0) {
      continue;
    }
    if (static_cast<size_t>(t.var) >= slot_of_var.size()) {
      slot_of_var.resize(static_cast<size_t>(t.var) + 1, 0);
    }
    const int slot = slot_of_var[static_cast<size_t>(t.var)];
    if (slot == 0) {
      pruned.push_back(t);
      slot_of_var[static_cast<size_t>(t.var)] = static_cast<int>(pruned.size());
    } else {
      pruned[static_cast<size_t>(slot - 1)].coeff += t.coeff;
    }
  }
  // Re-drop terms whose coalesced coefficient cancelled to zero.
  size_t keep = 0;
  for (const LpTerm& t : pruned) {
    if (t.coeff != 0.0) {
      pruned[keep++] = t;
    }
  }
  pruned.resize(keep);
  rows_.push_back(LpRow{sense, rhs, std::move(pruned), std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void LpModel::SetVariableBounds(int var, double lower, double upper) {
  TS_CHECK_GE(var, 0);
  TS_CHECK_LT(var, num_variables());
  TS_CHECK_LE(lower, upper);
  lower_[var] = lower;
  upper_[var] = upper;
}

double LpModel::ObjectiveValue(const std::vector<double>& x) const {
  TS_CHECK_EQ(static_cast<int>(x.size()), num_variables());
  double total = 0.0;
  for (int i = 0; i < num_variables(); ++i) {
    total += objective_[i] * x[i];
  }
  return total;
}

bool LpModel::IsFeasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) {
    return false;
  }
  for (int i = 0; i < num_variables(); ++i) {
    if (x[i] < lower_[i] - tol || x[i] > upper_[i] + tol) {
      return false;
    }
  }
  for (const LpRow& row : rows_) {
    double lhs = 0.0;
    for (const LpTerm& t : row.terms) {
      lhs += t.coeff * x[t.var];
    }
    switch (row.sense) {
      case RowSense::kLessEqual:
        if (lhs > row.rhs + tol) {
          return false;
        }
        break;
      case RowSense::kGreaterEqual:
        if (lhs < row.rhs - tol) {
          return false;
        }
        break;
      case RowSense::kEqual:
        if (std::fabs(lhs - row.rhs) > tol) {
          return false;
        }
        break;
    }
  }
  return true;
}

}  // namespace threesigma
