#include "src/solver/sharded_milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/obs/trace.h"

namespace threesigma {
namespace {

// FNV-1a 64-bit, folded one 32-bit word at a time. Local copy — the snapshot
// layer has an equivalent, but the solver must not depend on it.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashU32(uint64_t h, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

// Union-find with path halving and union-by-smallest-root: the root of every
// set is its smallest member, which makes "order components by smallest
// member variable" fall out of a single ascending scan.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) {
      parent_[i] = i;
    }
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return;
    }
    if (b < a) {
      std::swap(a, b);
    }
    parent_[b] = a;
  }

 private:
  std::vector<int> parent_;
};

// A row whose terms all coalesced away constrains nothing — unless its
// right-hand side is unsatisfiable on its own.
bool ZeroTermRowInfeasible(const LpRow& row) {
  constexpr double kTol = 1e-9;
  switch (row.sense) {
    case RowSense::kLessEqual:
      return row.rhs < -kTol;
    case RowSense::kGreaterEqual:
      return row.rhs > kTol;
    case RowSense::kEqual:
      return std::abs(row.rhs) > kTol;
  }
  return false;
}

}  // namespace

ShardDecomposition DecomposeMilp(const LpModel& model,
                                 const std::vector<int>& integer_vars) {
  ShardDecomposition out;
  const int n = model.num_variables();
  UnionFind uf(n);
  for (int r = 0; r < model.num_rows(); ++r) {
    const LpRow& row = model.row(r);
    if (row.terms.empty()) {
      if (ZeroTermRowInfeasible(row)) {
        out.trivially_infeasible = true;
      }
      continue;
    }
    for (size_t t = 1; t < row.terms.size(); ++t) {
      uf.Union(row.terms[0].var, row.terms[t].var);
    }
  }

  // Ascending variable scan: each set's root is its smallest member, so
  // shards come out ordered by smallest member variable and each shard's
  // `vars` list is ascending.
  std::vector<int> shard_of_root(n, -1);
  std::vector<int> var_shard(n, -1);
  for (int v = 0; v < n; ++v) {
    const int root = uf.Find(v);
    if (shard_of_root[root] < 0) {
      shard_of_root[root] = static_cast<int>(out.shards.size());
      out.shards.emplace_back();
    }
    const int s = shard_of_root[root];
    var_shard[v] = s;
    out.shards[s].vars.push_back(v);
  }

  std::vector<int> local(n, -1);
  for (MilpShard& shard : out.shards) {
    for (size_t i = 0; i < shard.vars.size(); ++i) {
      local[shard.vars[i]] = static_cast<int>(i);
    }
    for (const int v : shard.vars) {
      shard.model.AddVariable(model.lower(v), model.upper(v), model.objective(v),
                              model.var_name(v));
    }
  }

  // Rows land in their shard in ascending global order; consistent zero-term
  // rows are dropped (they constrain nothing).
  for (int r = 0; r < model.num_rows(); ++r) {
    const LpRow& row = model.row(r);
    if (row.terms.empty()) {
      continue;
    }
    MilpShard& shard = out.shards[var_shard[row.terms[0].var]];
    std::vector<LpTerm> terms;
    terms.reserve(row.terms.size());
    for (const LpTerm& t : row.terms) {
      terms.push_back({local[t.var], t.coeff});
    }
    shard.rows.push_back(r);
    shard.model.AddRow(row.sense, row.rhs, std::move(terms), row.name);
  }

  // Integral variables keep the caller's ordering within each shard so the
  // sub-solver's branching tie-breaks walk the same sequence.
  for (const int v : integer_vars) {
    MilpShard& shard = out.shards[var_shard[v]];
    shard.integer_vars.push_back(local[v]);
  }

  // Structural fingerprint: counts, row senses, and the local sparsity
  // pattern — deliberately not coefficients, so a next-cycle shard with the
  // same shape reuses the basis even as expected-utility values drift.
  for (MilpShard& shard : out.shards) {
    uint64_t h = kFnvOffset;
    h = HashU32(h, static_cast<uint32_t>(shard.vars.size()));
    h = HashU32(h, static_cast<uint32_t>(shard.model.num_rows()));
    for (int r = 0; r < shard.model.num_rows(); ++r) {
      const LpRow& row = shard.model.row(r);
      h = HashU32(h, static_cast<uint32_t>(row.sense));
      h = HashU32(h, static_cast<uint32_t>(row.terms.size()));
      for (const LpTerm& t : row.terms) {
        h = HashU32(h, static_cast<uint32_t>(t.var));
      }
    }
    shard.fingerprint = h;
  }
  return out;
}

ShardedMilpSolution SolveShardedMilp(const LpModel& model,
                                     const std::vector<int>& integer_vars,
                                     const ShardedMilpOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();

  ShardedMilpSolution out;
  ShardDecomposition dec = DecomposeMilp(model, integer_vars);
  const int num_shards = static_cast<int>(dec.shards.size());
  out.num_shards = num_shards;
  for (const MilpShard& shard : dec.shards) {
    const int vars = static_cast<int>(shard.vars.size());
    out.max_shard_vars = std::max(out.max_shard_vars, vars);
    out.min_shard_vars = out.min_shard_vars == 0 ? vars : std::min(out.min_shard_vars, vars);
  }

  MilpSolution& merged = out.merged;
  if (dec.trivially_infeasible) {
    merged.status = MilpStatus::kInfeasible;
    const std::chrono::duration<double> elapsed = Clock::now() - start_time;
    merged.solve_seconds = elapsed.count();
    return out;
  }

  const int n = model.num_variables();
  const bool have_warm =
      !options.base.warm_start.empty() &&
      static_cast<int>(options.base.warm_start.size()) == n;

  // Resolve every shard's options up front on the calling thread: basis-map
  // lookups and warm-start slicing are deterministic and must not race with
  // the fan-out.
  std::vector<MilpOptions> shard_options(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const MilpShard& shard = dec.shards[s];
    MilpOptions o = options.base;
    o.num_threads = 1;
    o.pool = nullptr;
    o.emit_span = false;
    o.root_basis = LpBasis{};
    o.warm_start.clear();
    if (o.basis_warmstart && options.shard_bases != nullptr) {
      const auto it = options.shard_bases->find(shard.fingerprint);
      if (it != options.shard_bases->end()) {
        o.root_basis = it->second;
      }
    }
    if (have_warm) {
      o.warm_start.resize(shard.vars.size());
      for (size_t i = 0; i < shard.vars.size(); ++i) {
        o.warm_start[i] = options.base.warm_start[shard.vars[i]];
      }
    }
    shard_options[s] = std::move(o);
  }

  // Fan out: one single-threaded deterministic sub-solve per shard, results
  // in indexed slots (no ordering dependence on worker assignment).
  std::vector<MilpSolution> results(static_cast<size_t>(num_shards));
  const auto solve_one = [&](int s) {
    MilpSolver solver(dec.shards[s].model, dec.shards[s].integer_vars);
    results[s] = solver.Solve(shard_options[s]);
  };
  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* pool = options.base.pool;
  if (pool == nullptr && options.base.num_threads > 1 && num_shards > 1) {
    local_pool = std::make_unique<ThreadPool>(options.base.num_threads);
    pool = local_pool.get();
  }
  if (pool != nullptr && pool->size() > 1 && num_shards > 1) {
    pool->ParallelFor(num_shards, [&](int worker, int index) {
      (void)worker;
      solve_one(index);
    });
  } else {
    for (int s = 0; s < num_shards; ++s) {
      solve_one(s);
    }
  }

  // Merge in shard order on the calling thread. The per-shard span is
  // emitted here (never from pool workers) so exported traces carry the
  // shard structure without depending on thread count.
  merged.values.assign(static_cast<size_t>(n), 0.0);
  bool any_infeasible = false;
  bool all_optimal = true;
  bool all_warm_returned = num_shards > 0;
  for (int s = 0; s < num_shards; ++s) {
    TS_OBS_SPAN("sched.solve_shard", obs::Phase::kOther);
    const MilpShard& shard = dec.shards[s];
    const MilpSolution& r = results[s];
    if (r.status == MilpStatus::kInfeasible) {
      any_infeasible = true;
    }
    if (r.status != MilpStatus::kOptimal) {
      all_optimal = false;
    }
    if (!r.warm_start_returned) {
      all_warm_returned = false;
    }
    if (r.values.size() == shard.vars.size()) {
      for (size_t i = 0; i < shard.vars.size(); ++i) {
        merged.values[shard.vars[i]] = r.values[i];
      }
    }
    merged.nodes_explored += r.nodes_explored;
    merged.lp_iterations += r.lp_iterations;
    merged.lp_phase1_iterations += r.lp_phase1_iterations;
    merged.lp_phase2_iterations += r.lp_phase2_iterations;
    merged.lp_dual_iterations += r.lp_dual_iterations;
    merged.ftran_count += r.ftran_count;
    merged.btran_count += r.btran_count;
    merged.refactorizations += r.refactorizations;
    merged.warm_started_nodes += r.warm_started_nodes;
    merged.max_queue_depth = std::max(merged.max_queue_depth, r.max_queue_depth);
    for (const IncumbentImprovement& imp : r.incumbent_improvements) {
      merged.incumbent_improvements.push_back(imp);
    }
    if (options.shard_bases != nullptr && !r.root_basis.status.empty()) {
      (*options.shard_bases)[shard.fingerprint] = r.root_basis;
    }
  }

  if (any_infeasible) {
    merged.status = MilpStatus::kInfeasible;
    merged.values.clear();
    merged.objective = 0.0;
  } else {
    merged.status = all_optimal ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    // Recompute through the full model: ObjectiveValue walks variables in
    // global index order, replaying the monolithic solver's accumulation
    // order exactly — identical vectors give bitwise-identical objectives.
    merged.objective = model.ObjectiveValue(merged.values);
    merged.warm_start_returned = all_warm_returned;
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start_time;
  merged.solve_seconds = elapsed.count();
  return out;
}

}  // namespace threesigma
