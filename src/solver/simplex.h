// Sparse revised simplex for bounded variables (primal two-phase + dual).
//
// Solves   max cᵀx   s.t.  rows (≤ / ≥ / =),  l ≤ x ≤ u.
//
// This is the LP engine underneath the branch-and-bound MILP solver that
// replaces the external solver of the paper (§4.3, "solved by an external
// MILP solver"). Scheduler MILPs are extremely sparse — each 0/1 option
// variable touches one demand row plus a handful of expected-capacity rows —
// and consecutive branch-and-bound nodes differ by a single bound change, so
// the engine is built around that structure:
//   - the constraint matrix is held in compressed-sparse-column form; every
//     row gets a slack variable with bounds encoding its sense,
//   - the basis inverse is a product-form eta file: reinversion triangularizes
//     the basis column pattern (slack/singleton columns pivot first) and each
//     simplex pivot appends one sparse eta, giving O(nnz) FTRAN/BTRAN instead
//     of the O(m²)-per-pivot dense inverse; periodic refactorization bounds
//     eta growth and self-corrects numerical drift,
//   - primal pricing uses a candidate list (partial pricing): a full reduced-
//     cost scan harvests the best candidates, subsequent pivots re-price only
//     the list until it runs dry; a Bland's-rule full scan takes over after a
//     degeneracy streak to guarantee termination,
//   - a basis (variable statuses over structural + slack variables) can be
//     exported from a solved LP and imported as a starting point: a primal-
//     feasible import skips Phase 1 outright, a dual-feasible import
//     re-optimizes with the bounded-variable dual simplex (the branch-and-
//     bound child case: the parent's optimal basis stays dual feasible under
//     a bound change), and anything else falls back to a cold start, so a
//     warm start can never change the *answer*, only the pivot count.
//
// Determinism: every choice (pricing, ratio-test tie-breaks, reinversion
// order, repair) is a pure function of the model and options — never of
// wall clock or thread count.

#ifndef SRC_SOLVER_SIMPLEX_H_
#define SRC_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "src/solver/lp_model.h"

namespace threesigma {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

// Status of one variable relative to a basis. Nonbasic statuses are symbolic
// ("at the current lower bound"), so a basis remains meaningful after the
// bounds themselves move — exactly what branch-and-bound does to children.
enum class BasisStatus : uint8_t { kBasic, kAtLower, kAtUpper };

// A simplex basis over the structural variables followed by the slack
// variables (num_variables + num_rows entries). Imports are best-effort: a
// stale or dimension-mismatched basis is repaired or discarded, never trusted
// into a wrong answer.
struct LpBasis {
  std::vector<BasisStatus> status;
  bool empty() const { return status.empty(); }
};

// Work counters for one SolveLp call (micro_solver reports these).
struct LpStats {
  int phase1_iterations = 0;  // Primal Phase-1 pivots (artificial cleanup).
  int phase2_iterations = 0;  // Primal Phase-2 pivots.
  int dual_iterations = 0;    // Dual simplex pivots (warm re-optimization).
  int64_t ftran = 0;          // Forward basis solves B⁻¹a.
  int64_t btran = 0;          // Backward basis solves yᵀB⁻¹.
  int refactorizations = 0;   // Eta-file reinversions.
  bool warm_basis_used = false;  // The start basis survived install+repair.
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  // Structural variable values (empty unless kOptimal / kIterationLimit).
  std::vector<double> values;
  // Total simplex pivots (phase 1 + phase 2 + dual).
  int iterations = 0;
  // Final basis (empty unless kOptimal / kIterationLimit); reusable as
  // SimplexOptions::start_basis for a nearby model.
  LpBasis basis;
  LpStats stats;
};

struct SimplexOptions {
  // Hard cap on pivots across both phases; 0 means "derived from model size".
  int max_iterations = 0;
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Bound/feasibility tolerance.
  double feasibility_tol = 1e-7;
  // Run presolve reductions first (solver/presolve.h); branch-and-bound
  // nodes benefit most (their bound fixings eliminate variables outright).
  // A start basis is mapped through the reductions (see presolve.h).
  bool presolve = true;
  // Starting basis hint (e.g. the parent node's optimal basis). Empty means
  // cold start. Never changes the returned solution, only the pivot count.
  LpBasis start_basis;
};

// Solves the LP relaxation of `model` (integrality is ignored).
LpSolution SolveLp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace threesigma

#endif  // SRC_SOLVER_SIMPLEX_H_
