// Bounded-variable two-phase primal simplex.
//
// Solves   max cᵀx   s.t.  rows (≤ / ≥ / =),  l ≤ x ≤ u.
//
// This is the LP engine underneath the branch-and-bound MILP solver that
// replaces the external solver of the paper (§4.3, "solved by an external
// MILP solver"). Design notes:
//   - every row gets a slack variable with bounds encoding its sense; rows
//     whose initial slack violates those bounds get a Phase-1 artificial,
//   - nonbasic variables rest at a finite bound (every model variable must
//     have at least one finite bound — scheduler indicators live in [0, 1]),
//   - the dense basis inverse is updated per pivot and refactorized
//     periodically; basic values are recomputed from scratch each iteration
//     so numerical drift self-corrects,
//   - Dantzig pricing with a Bland's-rule fallback after a degeneracy streak
//     guarantees termination.

#ifndef SRC_SOLVER_SIMPLEX_H_
#define SRC_SOLVER_SIMPLEX_H_

#include <vector>

#include "src/solver/lp_model.h"

namespace threesigma {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  // Structural variable values (empty unless kOptimal / kIterationLimit).
  std::vector<double> values;
  int iterations = 0;
};

struct SimplexOptions {
  // Hard cap on pivots across both phases; 0 means "derived from model size".
  int max_iterations = 0;
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Bound/feasibility tolerance.
  double feasibility_tol = 1e-7;
  // Run presolve reductions first (solver/presolve.h); branch-and-bound
  // nodes benefit most (their bound fixings eliminate variables outright).
  bool presolve = true;
};

// Solves the LP relaxation of `model` (integrality is ignored).
LpSolution SolveLp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace threesigma

#endif  // SRC_SOLVER_SIMPLEX_H_
