#include "src/faults/fault_schedule.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

// splitmix64 finalizer: the hash behind every per-entity draw. Unlike a
// shared RNG stream, a hash keyed on stable identifiers gives the same
// verdict no matter how many draws happened before it.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a hash.
double U01(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

// Domain-separation tags so the kill, straggler, and stall draws for the
// same identifiers are independent.
constexpr uint64_t kTagKill = 0x6b696c6cULL;       // "kill"
constexpr uint64_t kTagStraggler = 0x73747261ULL;  // "stra"
constexpr uint64_t kTagStall = 0x7374616cULL;      // "stal"

uint64_t DrawHash(uint64_t seed, uint64_t tag, uint64_t a, uint64_t b) {
  return Mix(Mix(Mix(seed ^ tag) ^ a) ^ b);
}

}  // namespace

FaultSchedule FaultSchedule::Sample(const ClusterConfig& cluster, const FaultOptions& options,
                                    Time horizon) {
  TS_CHECK_GE(options.node_mttf, 0.0);
  TS_CHECK_GE(options.task_kill_prob, 0.0);
  TS_CHECK_LE(options.task_kill_prob, 1.0);
  TS_CHECK_GE(options.straggler_prob, 0.0);
  TS_CHECK_LE(options.straggler_prob, 1.0);
  TS_CHECK_GE(options.straggler_factor, 1.0);
  TS_CHECK_GE(options.cycle_stall_prob, 0.0);
  TS_CHECK_LE(options.cycle_stall_prob, 1.0);

  TS_OBS_SPAN("faults.sample", obs::Phase::kOther);
  FaultSchedule schedule;
  schedule.options_ = options;
  if (options.node_mttf <= 0.0 || horizon <= 0.0) {
    return schedule;
  }
  TS_CHECK_GT(options.node_mttr, 0.0);

  // Each node alternates up ~Exp(mttf) / down ~Exp(mttr) from its own forked
  // stream, so the materialized list depends only on (cluster, seed, horizon)
  // — adding a node never perturbs another node's process.
  for (const NodeGroup& group : cluster.groups()) {
    for (int node = 0; node < group.node_count; ++node) {
      Rng rng(Mix(Mix(options.seed ^ 0x6e6f6465ULL) ^ static_cast<uint64_t>(group.id) << 32 ^
                  static_cast<uint64_t>(node)));
      Time t = 0.0;
      while (true) {
        t += rng.Exponential(options.node_mttf);
        if (t > horizon) {
          break;
        }
        schedule.node_events_.push_back(FaultEvent{t, FaultKind::kNodeDown, group.id, 1});
        t += rng.Exponential(options.node_mttr);
        if (t > horizon) {
          break;  // Repair lands after the horizon: the node stays down.
        }
        schedule.node_events_.push_back(FaultEvent{t, FaultKind::kNodeUp, group.id, 1});
      }
    }
  }
  std::sort(schedule.node_events_.begin(), schedule.node_events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              if (a.group != b.group) {
                return a.group < b.group;
              }
              // Repairs before crashes at identical timestamps, so the down
              // count never transiently overshoots.
              return static_cast<int>(a.kind) > static_cast<int>(b.kind);
            });
  return schedule;
}

FaultSchedule FaultSchedule::Replay(std::vector<FaultEvent> events, const FaultOptions& options) {
  FaultSchedule schedule;
  schedule.options_ = options;
  schedule.node_events_ = std::move(events);
  std::stable_sort(schedule.node_events_.begin(), schedule.node_events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  for (const FaultEvent& ev : schedule.node_events_) {
    TS_CHECK_GE(ev.time, 0.0);
    TS_CHECK_GT(ev.count, 0);
  }
  return schedule;
}

bool FaultSchedule::TaskKill(int64_t job, int attempt, double* kill_fraction) const {
  if (options_.task_kill_prob <= 0.0) {
    return false;
  }
  const uint64_t h = DrawHash(options_.seed, kTagKill, static_cast<uint64_t>(job),
                              static_cast<uint64_t>(attempt));
  if (U01(h) >= options_.task_kill_prob) {
    return false;
  }
  // Keep the kill strictly inside the run so it always truncates work.
  *kill_fraction = 0.05 + 0.9 * U01(Mix(h));
  static obs::Counter* const kill_draws =
      obs::MetricsRegistry::Global().GetCounter("faults.task_kill_draws");
  kill_draws->Increment();
  return true;
}

double FaultSchedule::StragglerMultiplier(int64_t job, int attempt) const {
  if (options_.straggler_prob <= 0.0) {
    return 1.0;
  }
  const uint64_t h = DrawHash(options_.seed, kTagStraggler, static_cast<uint64_t>(job),
                              static_cast<uint64_t>(attempt));
  if (U01(h) >= options_.straggler_prob) {
    return 1.0;
  }
  static obs::Counter* const straggler_draws =
      obs::MetricsRegistry::Global().GetCounter("faults.straggler_draws");
  straggler_draws->Increment();
  return 1.0 + (options_.straggler_factor - 1.0) * U01(Mix(h));
}

bool FaultSchedule::CycleStall(int64_t ordinal, Duration* stall) const {
  if (options_.cycle_stall_prob <= 0.0 || options_.cycle_stall <= 0.0) {
    return false;
  }
  const uint64_t h = DrawHash(options_.seed, kTagStall, static_cast<uint64_t>(ordinal), 0);
  if (U01(h) >= options_.cycle_stall_prob) {
    return false;
  }
  *stall = options_.cycle_stall;
  static obs::Counter* const stall_draws =
      obs::MetricsRegistry::Global().GetCounter("faults.cycle_stall_draws");
  stall_draws->Increment();
  return true;
}

AvailabilityTimeline::AvailabilityTimeline(const ClusterConfig& cluster,
                                           const std::vector<FaultEvent>& events) {
  nominal_.reserve(static_cast<size_t>(cluster.num_groups()));
  for (const NodeGroup& g : cluster.groups()) {
    nominal_.push_back(g.node_count);
  }
  steps_.resize(nominal_.size());
  std::vector<int> down(nominal_.size(), 0);
  std::vector<FaultEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  for (const FaultEvent& ev : sorted) {
    TS_CHECK_GE(ev.group, 0);
    TS_CHECK_LT(ev.group, static_cast<int>(nominal_.size()));
    const size_t g = static_cast<size_t>(ev.group);
    const int delta = ev.kind == FaultKind::kNodeDown ? ev.count : -ev.count;
    down[g] = std::clamp(down[g] + delta, 0, nominal_[g]);
    const int available = nominal_[g] - down[g];
    if (!steps_[g].empty() && steps_[g].back().time == ev.time) {
      steps_[g].back().available = available;
    } else {
      steps_[g].push_back(Step{ev.time, available});
    }
  }
}

int AvailabilityTimeline::AvailableAt(int group, Time t) const {
  TS_CHECK_GE(group, 0);
  TS_CHECK_LT(group, static_cast<int>(nominal_.size()));
  const std::vector<Step>& steps = steps_[static_cast<size_t>(group)];
  int available = nominal_[static_cast<size_t>(group)];
  for (const Step& step : steps) {
    if (step.time > t) {
      break;
    }
    available = step.available;
  }
  return available;
}

double AvailabilityTimeline::DowntimeNodeSeconds(Time end) const {
  double total = 0.0;
  for (size_t g = 0; g < steps_.size(); ++g) {
    Time prev_time = 0.0;
    int prev_available = nominal_[g];
    for (const Step& step : steps_[g]) {
      if (step.time >= end) {
        break;
      }
      total += (nominal_[g] - prev_available) * (step.time - prev_time);
      prev_time = step.time;
      prev_available = step.available;
    }
    if (end > prev_time) {
      total += (nominal_[g] - prev_available) * (end - prev_time);
    }
  }
  return total;
}

void FaultSchedule::SaveState(SnapshotWriter& writer) const {
  writer.WriteDouble(options_.node_mttf);
  writer.WriteDouble(options_.node_mttr);
  writer.WriteDouble(options_.task_kill_prob);
  writer.WriteDouble(options_.straggler_prob);
  writer.WriteDouble(options_.straggler_factor);
  writer.WriteDouble(options_.cycle_stall_prob);
  writer.WriteDouble(options_.cycle_stall);
  writer.WriteU64(options_.seed);
  writer.WriteVarU64(node_events_.size());
  for (const FaultEvent& e : node_events_) {
    writer.WriteDouble(e.time);
    writer.WriteU8(static_cast<uint8_t>(e.kind));
    writer.WriteVarI64(e.group);
    writer.WriteVarI64(e.count);
  }
}

void FaultSchedule::RestoreState(SnapshotReader& reader) {
  options_.node_mttf = reader.ReadDouble();
  options_.node_mttr = reader.ReadDouble();
  options_.task_kill_prob = reader.ReadDouble();
  options_.straggler_prob = reader.ReadDouble();
  options_.straggler_factor = reader.ReadDouble();
  options_.cycle_stall_prob = reader.ReadDouble();
  options_.cycle_stall = reader.ReadDouble();
  options_.seed = reader.ReadU64();
  const uint64_t n = reader.ReadVarCount(8);
  node_events_.clear();
  node_events_.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    FaultEvent e;
    e.time = reader.ReadDouble();
    e.kind = static_cast<FaultKind>(reader.ReadU8());
    e.group = static_cast<int>(reader.ReadVarI64());
    e.count = static_cast<int>(reader.ReadVarI64());
    node_events_.push_back(e);
  }
}

}  // namespace threesigma
