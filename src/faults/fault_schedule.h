// Deterministic fault injection: node churn, task kills, stragglers, and
// scheduler-cycle stalls.
//
// 3Sigma's thesis is scheduling under runtime uncertainty, and the clusters
// the paper targets (Google 2011, Mustang) lose nodes and restart tasks
// constantly — a restarted job is exactly the likely-mis-estimated job the
// adaptive mis-estimate handling (§4.2) exists for. This module turns the
// simulator into a chaos harness while keeping traces byte-reproducible:
//
//   - Node churn events (crash/repair) are *pre-materialized* from per-node
//     exponential MTTF/MTTR renewal processes at schedule-build time, so the
//     event list is a pure function of (cluster shape, options, seed) and
//     never depends on simulation dynamics or solver thread count.
//   - Per-run decisions (task kill, straggler inflation) and per-cycle
//     decisions (scheduler stall) are *pure hash draws* keyed on
//     (seed, job id, attempt) / (seed, cycle ordinal) — no shared RNG stream
//     whose consumption order could vary between runs.
//
// An explicit event list (Replay) reproduces a recorded incident exactly.
// A default-constructed schedule is empty: chaos off is a strict no-op.

#ifndef SRC_FAULTS_FAULT_SCHEDULE_H_
#define SRC_FAULTS_FAULT_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/units.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

enum class FaultKind {
  kNodeDown,  // `count` nodes of `group` crash (capacity shrinks).
  kNodeUp,    // `count` nodes of `group` finish repair (capacity returns).
};

struct FaultEvent {
  Time time = 0.0;
  FaultKind kind = FaultKind::kNodeDown;
  int group = 0;
  int count = 1;  // Nodes affected.
};

struct FaultOptions {
  // Per-node mean time to failure / to repair (exponential renewal process).
  // node_mttf == 0 disables node churn entirely.
  Duration node_mttf = 0.0;
  Duration node_mttr = 600.0;

  // Probability that a task gang's run is killed mid-flight (per start
  // attempt; the kill lands at a uniform fraction of the run's duration).
  double task_kill_prob = 0.0;

  // Probability that a run straggles, and the inflation cap: a straggling
  // run's duration is multiplied by ~U(1, straggler_factor).
  double straggler_prob = 0.0;
  double straggler_factor = 3.0;

  // Probability that a scheduling cycle is lost to a stalled scheduler
  // process, and how long the stall lasts before the next cycle can run.
  double cycle_stall_prob = 0.0;
  Duration cycle_stall = 30.0;

  // Seed for the fault processes; independent of the simulator seed so the
  // same workload noise can be replayed under different chaos.
  uint64_t seed = 1;

  // True when any fault process is configured.
  bool any() const {
    return node_mttf > 0.0 || task_kill_prob > 0.0 || straggler_prob > 0.0 ||
           cycle_stall_prob > 0.0;
  }
};

class FaultSchedule {
 public:
  // Empty schedule: no events, every probabilistic draw declines.
  FaultSchedule() = default;

  // Pre-materializes node churn over [0, horizon] from per-node exponential
  // MTTF/MTTR renewal processes. Deterministic in (cluster, options.seed).
  static FaultSchedule Sample(const ClusterConfig& cluster, const FaultOptions& options,
                              Time horizon);

  // Exact replay of an explicit event list (sorted by time internally).
  // `options` still governs the hash-draw processes (kills/stragglers/stalls).
  static FaultSchedule Replay(std::vector<FaultEvent> events, const FaultOptions& options = {});

  // True when the schedule can never perturb a simulation.
  bool empty() const { return node_events_.empty() && !options_.any(); }

  // Node churn events, sorted by (time, group, kind).
  const std::vector<FaultEvent>& node_events() const { return node_events_; }
  const FaultOptions& options() const { return options_; }

  // Appends overlay events (what-if perturbations) WITHOUT re-sorting: the
  // simulator's pending kNodeFault queue entries index into node_events() by
  // position, so the existing prefix must stay put. Returns the index of the
  // first appended event so the caller can enqueue exactly the new ones.
  size_t AppendEvents(const std::vector<FaultEvent>& events) {
    const size_t first = node_events_.size();
    node_events_.insert(node_events_.end(), events.begin(), events.end());
    return first;
  }

  // Deterministic per-(job, attempt) draw: true if this run attempt is killed
  // by a fault, with `*kill_fraction` in (0, 1) — the fraction of the run's
  // duration after which the kill lands.
  bool TaskKill(int64_t job, int attempt, double* kill_fraction) const;

  // Deterministic per-(job, attempt) runtime inflation: 1.0 for healthy runs,
  // ~U(1, straggler_factor) for stragglers.
  double StragglerMultiplier(int64_t job, int attempt) const;

  // Deterministic per-cycle draw: true if scheduling cycle `ordinal` is lost
  // to a stalled scheduler; `*stall` is how long the stall lasts.
  bool CycleStall(int64_t ordinal, Duration* stall) const;

  // Snapshot codec hooks: raw payload (options + materialized event list),
  // composable into a parent section. Hash draws carry no stream state, so
  // the schedule restores verbatim with no "position" beyond the caller's
  // cycle ordinal.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  FaultOptions options_;
  std::vector<FaultEvent> node_events_;
};

// Per-group step function of available (non-crashed) nodes implied by a
// fault schedule; the ground truth the capacity-conservation property checks
// simulated occupancy against.
class AvailabilityTimeline {
 public:
  AvailabilityTimeline(const ClusterConfig& cluster, const std::vector<FaultEvent>& events);

  // Available nodes of `group` at time `t` (after applying every event with
  // event.time <= t). Never negative, never above the group's node_count.
  int AvailableAt(int group, Time t) const;

  // Integral of (nominal - available) over [0, end] across all groups, in
  // node-seconds: the denominator-ready downtime measure.
  double DowntimeNodeSeconds(Time end) const;

 private:
  struct Step {
    Time time;
    int available;
  };
  std::vector<std::vector<Step>> steps_;  // Per group, sorted by time.
  std::vector<int> nominal_;
};

}  // namespace threesigma

#endif  // SRC_FAULTS_FAULT_SCHEDULE_H_
