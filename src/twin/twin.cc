#include "src/twin/twin.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "src/common/check.h"
#include "src/core/config_flags.h"
#include "src/obs/registry.h"
#include "src/obs/profiler.h"
#include "src/obs/speculative.h"
#include "src/obs/trace.h"

namespace threesigma {
namespace {

std::string FmtD(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

double WallSeconds() {
  const std::chrono::duration<double> d = std::chrono::steady_clock::now().time_since_epoch();
  return d.count();
}

// Applies a named system's policy toggles (the MakeSystem table) to `config`.
// The predictor is NOT switched — a fork restores the live predictor's state,
// so only toggle-level kind switches are expressible. Prio is a different
// scheduler class entirely and is rejected.
bool ApplySystemToggles(const std::string& system, DistSchedulerConfig* config,
                        std::string* error) {
  SystemKind kind;
  if (!ParseSystemName(system, &kind)) {
    *error = "unknown system: " + system;
    return false;
  }
  switch (kind) {
    case SystemKind::kThreeSigma:
      config->use_distribution = true;
      config->overestimate_handling = true;
      config->adaptive_oe = true;
      break;
    case SystemKind::kThreeSigmaNoDist:
      config->use_distribution = false;
      config->overestimate_handling = true;
      config->adaptive_oe = true;
      break;
    case SystemKind::kThreeSigmaNoOE:
      config->use_distribution = true;
      config->overestimate_handling = false;
      break;
    case SystemKind::kThreeSigmaNoAdapt:
      config->use_distribution = true;
      config->overestimate_handling = true;
      config->adaptive_oe = false;
      break;
    case SystemKind::kPointPerfEst:
    case SystemKind::kPointRealEst:
      config->use_distribution = false;
      config->overestimate_handling = false;
      break;
    case SystemKind::kPrio:
      *error = "scenario system switch must stay within the DistributionScheduler family";
      return false;
  }
  config->name = SystemName(kind);
  return true;
}

// A utility function translated `delta` seconds into the future (surge clones
// re-arrive later, so their deadlines/decay origins shift with them).
UtilityFunction ShiftUtility(const UtilityFunction& u, double delta) {
  switch (u.kind()) {
    case UtilityFunction::Kind::kStep:
      return UtilityFunction::SloStep(u.peak_value(), u.deadline() + delta);
    case UtilityFunction::Kind::kStepDecay:
      return UtilityFunction::SloStepWithDecay(u.peak_value(), u.deadline() + delta, u.window());
    case UtilityFunction::Kind::kLinear:
      return UtilityFunction::BestEffortLinear(u.peak_value(), u.start() + delta, u.window());
  }
  return u;
}

}  // namespace

// --- InflatedPredictor -------------------------------------------------------

RuntimePrediction InflatedPredictor::Predict(const JobFeatures& features, double true_runtime) {
  RuntimePrediction p = inner_->Predict(features, true_runtime);
  if (factor_ == 1.0) {
    return p;  // Exact pass-through: the baseline fork must re-predict bit-identically.
  }
  p.distribution = p.distribution.Scaled(factor_);
  p.point_estimate *= factor_;
  return p;
}

void InflatedPredictor::RecordCompletion(const JobFeatures& features, double runtime) {
  inner_->RecordCompletion(features, runtime);
}

void InflatedPredictor::SaveState(SnapshotWriter& writer) const { inner_->SaveState(writer); }

void InflatedPredictor::RestoreState(SnapshotReader& reader) { inner_->RestoreState(reader); }

// --- TwinFork ----------------------------------------------------------------

TwinFork::TwinFork(const std::string& snapshot, const ClusterConfig& cluster, SystemKind kind,
                   const DistSchedulerConfig& live_config, const Scenario& scenario)
    : scenario_(scenario), cluster_(cluster) {
  obs::SpeculativeScope suppress;
  if (kind == SystemKind::kPrio) {
    error_ = "digital twin supports the DistributionScheduler family only";
    return;
  }
  // The predictor stack must mirror the live system's so the "predict"
  // section's kind tag matches on restore; the inflation wrapper is
  // snapshot-transparent on top.
  if (kind == SystemKind::kPointPerfEst) {
    inner_predictor_ = std::make_unique<PerfectPredictor>();
  } else {
    inner_predictor_ = std::make_unique<ThreeSigmaPredictor>();
  }
  predictor_ = std::make_unique<InflatedPredictor>(
      inner_predictor_.get(), scenario.padding * scenario.predictor_inflation);
  sched_ = std::make_unique<DistributionScheduler>(cluster_, predictor_.get(), live_config);
  SimOptions options;
  options.speculative = true;
  sim_ = std::make_unique<Simulator>(cluster_, sched_.get(), std::vector<JobSpec>{}, options);
  std::string err;
  if (!sim_->TryRestoreStateFromBuffer(snapshot, &err)) {
    error_ = "fork restore failed: " + err;
    return;
  }
  ApplyScenario();
  ok_ = error_.empty();
}

void TwinFork::ApplyScenario() {
  // 1. Policy-config overrides, applied at the (parked) cycle boundary.
  if (scenario_.HasConfigOverride()) {
    DistSchedulerConfig config = sched_->config();
    if (!scenario_.system.empty() && !ApplySystemToggles(scenario_.system, &config, &error_)) {
      return;
    }
    if (scenario_.planahead > 0.0) {
      config.planahead = scenario_.planahead;
    }
    if (scenario_.oe_probability_threshold >= 0.0) {
      config.oe_probability_threshold = scenario_.oe_probability_threshold;
    }
    if (scenario_.solver_threads > 0) {
      config.solver_threads = scenario_.solver_threads;
    }
    if (scenario_.solver_shards >= 0) {
      config.solver_shards = scenario_.solver_shards != 0;
    }
    sched_->UpdateConfig(config);
  }

  // 2. Arrival surge: replay the trailing window's arrivals as future clones
  // so the speculative arrival rate is ~surge x the recent live rate.
  if (scenario_.arrival_surge > 1.0) {
    const Time now = sim_->now();
    // Copies, not pointers: each InjectJob below appends to the same workload
    // vector these entries live in, which can reallocate it.
    std::vector<JobSpec> recent;
    JobId max_id = 0;
    for (const JobSpec& spec : sim_->workload()) {
      max_id = std::max(max_id, spec.id);
      if (spec.submit_time > now - scenario_.surge_window && spec.submit_time <= now) {
        recent.push_back(spec);
      }
    }
    if (!recent.empty()) {
      const int clones = static_cast<int>(
          (scenario_.arrival_surge - 1.0) * static_cast<double>(recent.size()) + 0.5);
      for (int i = 0; i < clones; ++i) {
        JobSpec clone = recent[static_cast<size_t>(i) % recent.size()];
        const Time submit =
            now + scenario_.surge_window * (i + 1) / static_cast<double>(clones + 1);
        const double delta = submit - clone.submit_time;
        clone.id = max_id + 1 + i;
        clone.submit_time = submit;
        if (clone.deadline != kNever) {
          clone.deadline += delta;
        }
        clone.utility = ShiftUtility(clone.utility, delta);
        std::string err;
        if (!sim_->InjectJob(std::move(clone), &err)) {
          error_ = "surge overlay inject failed: " + err;
          return;
        }
      }
    }
  }

  // 3. Extra node failures: crash/repair pairs round-robin across groups.
  if (scenario_.extra_node_failures > 0) {
    const Time down = sim_->now() + scenario_.failure_after;
    const Time up = down + scenario_.failure_duration;
    std::vector<FaultEvent> events;
    events.reserve(static_cast<size_t>(scenario_.extra_node_failures) * 2);
    for (int i = 0; i < scenario_.extra_node_failures; ++i) {
      const int group = i % cluster_.num_groups();
      events.push_back(FaultEvent{down, FaultKind::kNodeDown, group, 1});
      events.push_back(FaultEvent{up, FaultKind::kNodeUp, group, 1});
    }
    std::string err;
    if (!sim_->InjectFaultOverlay(events, &err)) {
      error_ = "failure overlay inject failed: " + err;
      return;
    }
  }
}

ScenarioOutcome TwinFork::Speculate(int horizon_cycles) {
  obs::SpeculativeScope suppress;
  ScenarioOutcome out;
  out.name = scenario_.name;
  if (!ok_) {
    out.error = error_.empty() ? "fork not ok" : error_;
    return out;
  }
  out.queue_depth.reserve(static_cast<size_t>(std::max(horizon_cycles, 0)));
  for (int i = 0; i < horizon_cycles; ++i) {
    if (!sim_->Step()) {
      break;  // Drained (or an open run with no further arrivals to speculate on).
    }
    out.queue_depth.push_back(sim_->StateNow().pending_jobs);
    ++out.speculative_cycles;
  }
  out.pending_end = sim_->StateNow().pending_jobs;
  SimResult result = sim_->Finish();
  out.end_time = result.end_time;
  out.preemptions = result.total_preemptions;
  for (const JobRecord& job : result.jobs) {
    if (job.status == JobStatus::kCompleted) {
      ++out.completed;
      out.projected_utility += job.spec.utility.ValueAtCompletion(job.finish_time);
    }
    if (job.spec.is_slo()) {
      ++out.slo_jobs;
      if (job.MissedDeadline()) {
        ++out.deadline_misses;
      }
    }
  }
  out.slo_attainment =
      out.slo_jobs > 0
          ? 1.0 - static_cast<double>(out.deadline_misses) / static_cast<double>(out.slo_jobs)
          : 1.0;
  out.ok = true;
  ok_ = false;  // Spent.
  return out;
}

// --- WhatIfReport ------------------------------------------------------------

std::string WhatIfReport::ToText() const {
  std::string out = "whatif fork_cycle=" + std::to_string(fork_cycle) +
                    " fork_time=" + FmtD(fork_time) +
                    " horizon=" + std::to_string(horizon_cycles) +
                    " scenarios=" + std::to_string(outcomes.size()) + "\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioOutcome& o = outcomes[i];
    out += "outcome idx=" + std::to_string(i) + " name=" + o.name;
    if (!o.ok) {
      out += " ok=0 error=" + o.error + "\n";
      continue;
    }
    out += " ok=1 utility=" + FmtD(o.projected_utility) +
           " completed=" + std::to_string(o.completed) +
           " misses=" + std::to_string(o.deadline_misses) +
           " slo_jobs=" + std::to_string(o.slo_jobs) + " slo=" + FmtD(o.slo_attainment) +
           " preempt=" + std::to_string(o.preemptions) +
           " pending_end=" + std::to_string(o.pending_end) +
           " cycles=" + std::to_string(o.speculative_cycles) +
           " end_time=" + FmtD(o.end_time) + " queue=";
    for (size_t q = 0; q < o.queue_depth.size(); ++q) {
      if (q > 0) {
        out += ';';
      }
      out += std::to_string(o.queue_depth[q]);
    }
    out += "\n";
  }
  const std::string best_name =
      outcomes.empty() ? "none"
                       : (best_index == 0 ? "baseline" : outcomes[static_cast<size_t>(best_index)].name);
  out += "advisor best=" + std::to_string(best_index) + " name=" + best_name +
         " gain=" + FmtD(best_gain) + " applied=" + std::string(applied ? "1" : "0") + "\n";
  return out;
}

// --- Advisor -----------------------------------------------------------------

namespace {

// Lexicographic "is `a` strictly better than `b`": projected utility, then
// SLO attainment, then fewer preemptions. Ties keep the lower index (the
// caller scans in index order), so ranking is deterministic.
bool OutcomeBetter(const ScenarioOutcome& a, const ScenarioOutcome& b) {
  if (a.projected_utility != b.projected_utility) {
    return a.projected_utility > b.projected_utility;
  }
  if (a.slo_attainment != b.slo_attainment) {
    return a.slo_attainment > b.slo_attainment;
  }
  return a.preemptions < b.preemptions;
}

}  // namespace

void Advisor::Evaluate(WhatIfReport* report, const std::vector<Scenario>& scenarios,
                       DistributionScheduler* live_sched) {
  ++state_.sweeps;
  state_.last_sweep_cycle = report->fork_cycle;
  if (report->outcomes.empty()) {
    return;
  }
  int best = 0;
  for (int i = 1; i < static_cast<int>(report->outcomes.size()); ++i) {
    const ScenarioOutcome& o = report->outcomes[static_cast<size_t>(i)];
    const ScenarioOutcome& b = report->outcomes[static_cast<size_t>(best)];
    if (o.ok && (!b.ok || OutcomeBetter(o, b))) {
      best = i;
    }
  }
  report->best_index = best;
  const ScenarioOutcome& baseline = report->outcomes[0];
  const double base_utility = baseline.ok ? baseline.projected_utility : 0.0;
  report->best_gain =
      report->outcomes[static_cast<size_t>(best)].projected_utility - base_utility;
  state_.last_best = best == 0 ? "baseline" : report->outcomes[static_cast<size_t>(best)].name;
  state_.last_gain = report->best_gain;
  if (best == 0 || report->best_gain < min_gain_) {
    return;
  }
  ++state_.recommendations;
  if (!auto_apply_ || live_sched == nullptr) {
    return;
  }
  // Outcome i corresponds to scenarios[i - 1] (index 0 is the implicit
  // baseline). Only config overrides transfer to the live run — perturbation
  // overlays describe hypothetical conditions, not policy.
  TS_CHECK_LE(static_cast<size_t>(best), scenarios.size());
  const Scenario& winner = scenarios[static_cast<size_t>(best - 1)];
  if (!winner.HasConfigOverride()) {
    return;
  }
  DistSchedulerConfig config = live_sched->config();
  std::string err;
  if (!winner.system.empty() && !ApplySystemToggles(winner.system, &config, &err)) {
    return;
  }
  if (winner.planahead > 0.0) {
    config.planahead = winner.planahead;
  }
  if (winner.oe_probability_threshold >= 0.0) {
    config.oe_probability_threshold = winner.oe_probability_threshold;
  }
  if (winner.solver_threads > 0) {
    config.solver_threads = winner.solver_threads;
  }
  if (winner.solver_shards >= 0) {
    config.solver_shards = winner.solver_shards != 0;
  }
  live_sched->UpdateConfig(config);
  report->applied = true;
  ++state_.applied;
  state_.has_applied_config = true;
  Scenario record;  // Config-override fields only.
  record.name = winner.name;
  record.system = winner.system;
  record.planahead = winner.planahead;
  record.oe_probability_threshold = winner.oe_probability_threshold;
  record.solver_threads = winner.solver_threads;
  record.solver_shards = winner.solver_shards;
  state_.applied_scenario = record;
}

std::string AdvisorState::ToText(bool auto_apply) const {
  std::string out = "advisor auto_apply=" + std::string(auto_apply ? "1" : "0") +
                    " sweeps=" + std::to_string(sweeps) +
                    " recommendations=" + std::to_string(recommendations) +
                    " applied=" + std::to_string(applied) +
                    " last_cycle=" + std::to_string(last_sweep_cycle) + " last_best=" + last_best +
                    " last_gain=" + FmtD(last_gain) + " applied_config=";
  out += has_applied_config ? applied_scenario.Describe() : "none";
  out += "\n";
  return out;
}

void Advisor::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarI64(state_.sweeps);
  writer.WriteVarI64(state_.recommendations);
  writer.WriteVarI64(state_.applied);
  writer.WriteU64(state_.last_sweep_cycle);
  writer.WriteString(state_.last_best);
  writer.WriteDouble(state_.last_gain);
  writer.WriteBool(state_.has_applied_config);
  writer.WriteString(state_.applied_scenario.Describe());
}

void Advisor::RestoreState(SnapshotReader& reader, DistributionScheduler* live_sched) {
  state_ = AdvisorState{};
  state_.sweeps = reader.ReadVarI64();
  state_.recommendations = reader.ReadVarI64();
  state_.applied = reader.ReadVarI64();
  state_.last_sweep_cycle = reader.ReadU64();
  state_.last_best = reader.ReadString();
  state_.last_gain = reader.ReadDouble();
  state_.has_applied_config = reader.ReadBool();
  const std::string spec = reader.ReadString();
  std::string err;
  if (!ParseScenario(spec, &state_.applied_scenario, &err)) {
    state_.has_applied_config = false;
    return;
  }
  if (!state_.has_applied_config || live_sched == nullptr) {
    return;
  }
  // A resumed process is constructed with its original flags; re-apply the
  // recorded overrides so the live scheduler resumes under the advised
  // policy. (Derived solver caches rebuild from scratch — decisions stay
  // policy-correct, though the first post-resume cycle re-solves.)
  const Scenario& rec = state_.applied_scenario;
  DistSchedulerConfig config = live_sched->config();
  if (!rec.system.empty() && !ApplySystemToggles(rec.system, &config, &err)) {
    return;
  }
  if (rec.planahead > 0.0) {
    config.planahead = rec.planahead;
  }
  if (rec.oe_probability_threshold >= 0.0) {
    config.oe_probability_threshold = rec.oe_probability_threshold;
  }
  if (rec.solver_threads > 0) {
    config.solver_threads = rec.solver_threads;
  }
  if (rec.solver_shards >= 0) {
    config.solver_shards = rec.solver_shards != 0;
  }
  live_sched->UpdateConfig(config);
}

// --- WhatIfEngine ------------------------------------------------------------

WhatIfEngine::WhatIfEngine(const ClusterConfig& cluster, DistributionScheduler* live_sched,
                           TwinOptions options)
    : cluster_(cluster),
      live_sched_(live_sched),
      options_(std::move(options)),
      advisor_(options_.auto_apply, options_.min_gain) {
  TS_CHECK(live_sched_ != nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  sweeps_counter_ = registry.GetCounter("twin.sweeps");
  forks_counter_ = registry.GetCounter("twin.forks");
  cycles_counter_ = registry.GetCounter("twin.speculative_cycles");
  recommendations_counter_ = registry.GetCounter("twin.recommendations");
  applied_counter_ = registry.GetCounter("twin.applied");
}

WhatIfReport WhatIfEngine::Run(Simulator& live, const std::vector<Scenario>& scenarios,
                               int horizon_cycles) {
  TS_OBS_SPAN("twin.sweep", obs::Phase::kOther);
  const double wall_start = WallSeconds();
  WhatIfReport report;
  {
    const SimStateInfo info = live.StateNow();
    report.fork_cycle = info.cycles_completed;
    report.fork_time = info.now;
  }
  report.horizon_cycles = horizon_cycles > 0 ? horizon_cycles : options_.horizon_cycles;
  const std::string snapshot = live.SaveStateToBuffer();
  // Config read fresh each sweep so prior auto-applies seed later forks.
  const DistSchedulerConfig live_config = live_sched_->config();

  const int n = static_cast<int>(scenarios.size()) + 1;  // Index 0: baseline.
  report.outcomes.resize(static_cast<size_t>(n));
  int64_t total_cycles = 0;
  auto run_one = [&](int index) {
    Scenario scenario;  // Default = identity (the baseline).
    if (index == 0) {
      scenario.name = "baseline";
    } else {
      scenario = scenarios[static_cast<size_t>(index - 1)];
    }
    TwinFork fork(snapshot, cluster_, options_.kind, live_config, scenario);
    report.outcomes[static_cast<size_t>(index)] = fork.Speculate(report.horizon_cycles);
  };
  // The live cycle is parked while a sweep runs (sweeps dispatch at cycle
  // boundaries), so the solver pool is free to borrow; outcomes land in
  // pre-sized index slots, so the merge order never depends on thread count.
  ThreadPool* pool = live_sched_->solver_pool();
  if (pool != nullptr) {
    pool->ParallelFor(n, [&](int /*worker*/, int index) { run_one(index); });
  } else {
    for (int i = 0; i < n; ++i) {
      run_one(i);
    }
  }
  for (const ScenarioOutcome& o : report.outcomes) {
    total_cycles += o.speculative_cycles;
  }

  const int64_t rec_before = advisor_.state().recommendations;
  const int64_t applied_before = advisor_.state().applied;
  advisor_.Evaluate(&report, scenarios, live_sched_);

  // Instrumentation lands outside any suppression scope (the forks' scopes
  // closed with them), so live observability sees the sweep as one unit.
  sweeps_counter_->Increment();
  forks_counter_->Add(n);
  cycles_counter_->Add(total_cycles);
  recommendations_counter_->Add(advisor_.state().recommendations - rec_before);
  applied_counter_->Add(advisor_.state().applied - applied_before);
  obs::CycleProfiler::Global().AddTwinSweep(WallSeconds() - wall_start);
  return report;
}

bool WhatIfEngine::MaybeAdvise(Simulator& live, uint64_t cycles_completed) {
  if (options_.advise_every <= 0) {
    return false;
  }
  if (cycles_completed < last_advise_cycle_ + static_cast<uint64_t>(options_.advise_every)) {
    return false;
  }
  last_advise_cycle_ = cycles_completed;
  std::vector<Scenario> scenarios = options_.advisory_scenarios;
  if (scenarios.empty()) {
    scenarios = DefaultScenarios();
  }
  Run(live, scenarios, options_.horizon_cycles);
  return true;
}

void WhatIfEngine::SaveState(SnapshotWriter& writer) const {
  writer.BeginSection("twin", 1);
  writer.WriteU64(last_advise_cycle_);
  advisor_.SaveState(writer);
  writer.EndSection();
}

void WhatIfEngine::RestoreState(SnapshotReader& reader) {
  uint32_t version = 0;
  if (!reader.BeginSection("twin", &version)) {
    return;
  }
  last_advise_cycle_ = reader.ReadU64();
  advisor_.RestoreState(reader, live_sched_);
  reader.EndSection();
}

}  // namespace threesigma
