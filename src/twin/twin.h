// Digital-twin what-if engine: snapshot-forked speculative simulation and an
// online policy advisor.
//
// The live system's byte-exact snapshot machinery (src/snapshot, PR 4) makes
// a running Simulator cheaply clonable: serialize to an in-memory buffer,
// restore into a fresh simulator + scheduler + predictor stack, and the
// clone continues the run bit-identically — RNG streams, conditioned
// distributions, solver warm-start state and all. A TwinFork is exactly that
// clone, plus a Scenario delta (policy overrides, arrival surges, extra node
// failures, predictor mis-estimation). The WhatIfEngine fans K forks out
// across the solver thread pool, steps each H speculative cycles under
// observability suppression (src/obs/speculative.h), and merges per-scenario
// outcomes in scenario-index order, so a what-if report is byte-identical at
// any thread count and across checkpoint/restore. The Advisor scores the
// outcomes and — strictly opt-in — applies the winning policy overrides to
// the live scheduler at a cycle boundary.
//
// Isolation contract: a fork shares nothing mutable with the live run. It
// owns its cluster copy, predictor stack, scheduler, and simulator; the one
// shared input is the snapshot buffer, which forks read through borrowed
// (non-owning) SnapshotReaders. Global observability is suppressed for the
// fork's whole lifetime, so the live run's metrics, traces, phase rows, and
// decision log never see speculative activity.

#ifndef SRC_TWIN_TWIN_H_
#define SRC_TWIN_TWIN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/systems.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"
#include "src/sim/simulator.h"
#include "src/twin/scenario.h"

namespace threesigma {

namespace obs {
class Counter;
}  // namespace obs

// Scales predictions by a constant factor (scenario padding x mis-estimate
// inflation). Snapshot-transparent: unlike the wrapper predictors in
// src/predict (which prefix their own kind tag), Save/RestoreState delegate
// verbatim to the inner predictor, so a fork's predictor stack restores from
// a live snapshot that was written without the wrapper. Factor 1.0 is an
// exact pass-through (bit-identical predictions, the baseline fork's
// requirement).
class InflatedPredictor : public RuntimePredictor {
 public:
  // `inner` must outlive this predictor.
  InflatedPredictor(RuntimePredictor* inner, double factor) : inner_(inner), factor_(factor) {}

  RuntimePrediction Predict(const JobFeatures& features, double true_runtime) override;
  void RecordCompletion(const JobFeatures& features, double runtime) override;
  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

  double factor() const { return factor_; }

 private:
  RuntimePredictor* inner_;
  double factor_;
};

// One scenario's speculative outcome. Every field is simulation-deterministic
// (no wall clock), so outcome lists compare byte-for-byte across runs.
struct ScenarioOutcome {
  std::string name;
  bool ok = false;
  std::string error;

  // Projected totals at the speculative horizon (cumulative from run start;
  // scenarios share the fork point, so cross-scenario deltas are exact).
  double projected_utility = 0.0;  // Sum of utility at completion, completed jobs.
  int64_t completed = 0;
  int64_t deadline_misses = 0;  // SLO jobs late or not completed.
  int64_t slo_jobs = 0;
  double slo_attainment = 1.0;  // 1 - misses / slo_jobs (1.0 with no SLO jobs).
  int64_t preemptions = 0;
  int64_t pending_end = 0;                 // Queue depth after the last cycle.
  std::vector<int64_t> queue_depth;        // Per speculative cycle.
  int64_t speculative_cycles = 0;          // Cycles actually stepped (<= H).
  double end_time = 0.0;                   // Sim clock when speculation stopped.
};

// A merged what-if sweep: outcomes in scenario-index order, index 0 always
// the implicit baseline (the live configuration, unperturbed).
struct WhatIfReport {
  uint64_t fork_cycle = 0;
  double fork_time = 0.0;
  int horizon_cycles = 0;
  std::vector<ScenarioOutcome> outcomes;

  // Advisor verdict (filled by Advisor::Evaluate).
  int best_index = 0;       // Lexicographically best outcome.
  double best_gain = 0.0;   // best utility - baseline utility.
  bool applied = false;     // Auto-apply actually reconfigured the live run.

  // Deterministic fixed-format text rendering (the WhatIf RPC payload; CI
  // diffs two runs' reports byte-for-byte).
  std::string ToText() const;
};

// An isolated clone of a live run under one scenario.
class TwinFork {
 public:
  // `snapshot` is a live Simulator::SaveStateToBuffer() buffer; it must
  // outlive the fork (readers borrow it). `kind` names the live system
  // (DistributionScheduler family only) and `live_config` the live
  // scheduler's configuration — restore requires the identical config, and
  // scenario overrides are applied after restore. Check ok() before use.
  TwinFork(const std::string& snapshot, const ClusterConfig& cluster, SystemKind kind,
           const DistSchedulerConfig& live_config, const Scenario& scenario);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // Steps up to `horizon_cycles` speculative scheduling cycles, finalizes the
  // fork, and measures the outcome. The fork is spent afterwards. Runs
  // entirely under observability suppression.
  ScenarioOutcome Speculate(int horizon_cycles);

  // The fork's simulator (tests poke at it before Speculate()).
  Simulator& sim() { return *sim_; }
  DistributionScheduler& sched() { return *sched_; }

 private:
  void ApplyScenario();

  Scenario scenario_;
  ClusterConfig cluster_;  // Owned: the fork must not alias live state.
  std::unique_ptr<RuntimePredictor> inner_predictor_;
  std::unique_ptr<InflatedPredictor> predictor_;
  std::unique_ptr<DistributionScheduler> sched_;
  std::unique_ptr<Simulator> sim_;
  bool ok_ = false;
  std::string error_;
};

// Advisor state surfaced by the AdvisorStatus RPC and checkpointed in the
// "twin" snapshot section.
struct AdvisorState {
  int64_t sweeps = 0;
  int64_t recommendations = 0;  // Sweeps where a non-baseline scenario won.
  int64_t applied = 0;          // Auto-applies executed.
  uint64_t last_sweep_cycle = 0;
  std::string last_best = "none";
  double last_gain = 0.0;
  // The config overrides currently auto-applied to the live scheduler
  // (empty Describe() when the live run still has its original config);
  // re-applied after checkpoint restore.
  bool has_applied_config = false;
  Scenario applied_scenario;

  std::string ToText(bool auto_apply) const;
};

// Scores what-if reports and (opt-in) applies the winner's policy overrides.
class Advisor {
 public:
  Advisor(bool auto_apply, double min_gain) : auto_apply_(auto_apply), min_gain_(min_gain) {}

  // Ranks `report->outcomes` (utility desc, SLO attainment desc, preemptions
  // asc, index asc), fills the verdict fields, and updates the advisor
  // state. `scenarios` is the sweep's input list (outcome i maps to
  // scenarios[i - 1]; index 0 is the implicit baseline). When auto-apply is
  // on and a non-baseline scenario with config overrides wins by at least
  // min_gain, applies those overrides to `live_sched` (caller guarantees a
  // cycle boundary) and records them.
  void Evaluate(WhatIfReport* report, const std::vector<Scenario>& scenarios,
                DistributionScheduler* live_sched);

  const AdvisorState& state() const { return state_; }
  bool auto_apply() const { return auto_apply_; }

  // Raw payload within the caller's section (version tag owned by caller).
  void SaveState(SnapshotWriter& writer) const;
  // Restores the state and re-applies any recorded applied config to
  // `live_sched` (null skips the re-apply).
  void RestoreState(SnapshotReader& reader, DistributionScheduler* live_sched);

 private:
  bool auto_apply_;
  double min_gain_;
  AdvisorState state_;
};

struct TwinOptions {
  SystemKind kind = SystemKind::kThreeSigma;  // The live system being forked.
  int horizon_cycles = 50;                    // Default H per sweep.
  bool auto_apply = false;                    // Strictly opt-in.
  double min_gain = 1e-9;                     // Required gain over baseline.
  // Periodic advisory cadence in completed live cycles (0 = RPC-only).
  int64_t advise_every = 0;
  // Scenario sweep for the periodic hook; empty = DefaultScenarios().
  std::vector<Scenario> advisory_scenarios;
};

// Runs scenario sweeps against a live simulator. The engine never mutates
// the live run except through the opt-in advisor apply path.
class WhatIfEngine {
 public:
  // `live_sched` is the live run's scheduler (its config seeds every fork
  // and its solver pool, when present, runs the fan-out). Both references
  // must outlive the engine.
  WhatIfEngine(const ClusterConfig& cluster, DistributionScheduler* live_sched,
               TwinOptions options);

  // Snapshots `live` and runs `scenarios` (plus the implicit baseline) for
  // `horizon_cycles` speculative cycles each (<= 0 uses the default).
  // Outcomes merge in scenario-index order regardless of thread count.
  WhatIfReport Run(Simulator& live, const std::vector<Scenario>& scenarios, int horizon_cycles);

  // Periodic serve-loop hook: runs the advisory sweep when `cycles_completed`
  // crosses the cadence. Returns true when a sweep ran.
  bool MaybeAdvise(Simulator& live, uint64_t cycles_completed);

  const TwinOptions& options() const { return options_; }
  const AdvisorState& advisor_state() const { return advisor_.state(); }
  std::string AdvisorStatusText() const { return advisor_.state().ToText(advisor_.auto_apply()); }

  // Versioned "twin" snapshot section (advisor state); the host's state
  // extension calls these after its own sections.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  const ClusterConfig& cluster_;
  DistributionScheduler* live_sched_;
  TwinOptions options_;
  Advisor advisor_;
  uint64_t last_advise_cycle_ = 0;

  obs::Counter* sweeps_counter_;
  obs::Counter* forks_counter_;
  obs::Counter* cycles_counter_;
  obs::Counter* recommendations_counter_;
  obs::Counter* applied_counter_;
};

}  // namespace threesigma

#endif  // SRC_TWIN_TWIN_H_
