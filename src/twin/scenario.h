// What-if scenario specification for the digital-twin engine.
//
// A Scenario is a delta against the live run: policy-config overrides
// (applied to the fork's scheduler via UpdateConfig) plus perturbation
// overlays (injected into the fork's simulator). The default-constructed
// Scenario is the identity — a fork under it continues the live run
// bit-exactly, which is what the engine's index-0 "baseline" relies on.
//
// Scenarios cross the RPC boundary as a compact `key=value,...` text spec
// (';' separates scenarios in a list), so loadgen flags, serve flags, and
// the wire format all share one deterministic encoding:
//
//   name=surge2x,surge=2.0,planahead=600;name=chaos,failures=8
//
// Keys: name, system, planahead, oe_threshold, solver_threads, solver_shards,
// padding, surge, surge_window, failures, failure_after, failure_duration,
// inflation.

#ifndef SRC_TWIN_SCENARIO_H_
#define SRC_TWIN_SCENARIO_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace threesigma {

struct Scenario {
  std::string name = "scenario";

  // --- Policy-config overrides (sentinel = keep the live value) -------------
  Duration planahead = -1.0;              // > 0 overrides.
  double oe_probability_threshold = -1.0; // >= 0 overrides.
  int solver_threads = 0;                 // > 0 overrides.
  int solver_shards = -1;                 // >= 0 overrides (0 off, 1 on).
  // Scheduler-kind switch within the DistributionScheduler family
  // ("3Sigma", "3SigmaNoDist", "3SigmaNoOE", "3SigmaNoAdapt",
  // "PointRealEst"); empty keeps the live kind.
  std::string system;
  // Estimate padding: predictions made during speculation are multiplied by
  // this (the conservative §2.2 padding knob). 1.0 = off.
  double padding = 1.0;

  // --- Perturbation overlays ------------------------------------------------
  // Arrival surge: clones arrivals from the trailing `surge_window` so the
  // speculative arrival rate is multiplied by ~`arrival_surge`. 1.0 = off.
  double arrival_surge = 1.0;
  Duration surge_window = 600.0;
  // Extra node failures: this many nodes (round-robin across groups) crash
  // `failure_after` seconds past the fork point and repair
  // `failure_duration` later. 0 = off.
  int extra_node_failures = 0;
  Duration failure_after = 60.0;
  Duration failure_duration = 600.0;
  // Predictor mis-estimate inflation: predictions made during speculation are
  // scaled by this on top of `padding`. 1.0 = off.
  double predictor_inflation = 1.0;

  // True when any policy-config override is set (the fork then reconfigures
  // its scheduler; otherwise the restored scheduler continues untouched).
  bool HasConfigOverride() const {
    return planahead > 0.0 || oe_probability_threshold >= 0.0 || solver_threads > 0 ||
           solver_shards >= 0 || !system.empty();
  }

  // Deterministic one-line rendering of the non-default fields; also a valid
  // ParseScenario input (round-trips).
  std::string Describe() const;
};

// Parses one `key=value,...` spec. Unknown keys, malformed numbers, and
// out-of-range values fail with `*error` set.
bool ParseScenario(const std::string& text, Scenario* out, std::string* error);

// Parses a ';'-separated scenario list. Empty input yields an empty list.
bool ParseScenarioList(const std::string& text, std::vector<Scenario>* out, std::string* error);

// The built-in advisory sweep: a small spread over the knobs the paper
// ablates (plan-ahead halved/doubled, OE gate widened, a 1.5x arrival
// surge), used when no explicit scenario list is configured.
std::vector<Scenario> DefaultScenarios();

}  // namespace threesigma

#endif  // SRC_TWIN_SCENARIO_H_
