#include "src/twin/scenario.h"

#include <cstdio>
#include <cstdlib>

namespace threesigma {
namespace {

// Shortest round-trip double rendering, stable across platforms for the
// value ranges scenarios use (%.17g would be exact but noisy; scenario knobs
// are human-entered decimals, so %g at full precision round-trips them).
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0' && !value.empty();
}

bool ParseInt(const std::string& value, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

std::string Scenario::Describe() const {
  std::string out = "name=" + name;
  if (!system.empty()) {
    out += ",system=" + system;
  }
  if (planahead > 0.0) {
    out += ",planahead=" + FmtDouble(planahead);
  }
  if (oe_probability_threshold >= 0.0) {
    out += ",oe_threshold=" + FmtDouble(oe_probability_threshold);
  }
  if (solver_threads > 0) {
    out += ",solver_threads=" + std::to_string(solver_threads);
  }
  if (solver_shards >= 0) {
    out += ",solver_shards=" + std::to_string(solver_shards);
  }
  if (padding != 1.0) {
    out += ",padding=" + FmtDouble(padding);
  }
  if (arrival_surge != 1.0) {
    out += ",surge=" + FmtDouble(arrival_surge) + ",surge_window=" + FmtDouble(surge_window);
  }
  if (extra_node_failures > 0) {
    out += ",failures=" + std::to_string(extra_node_failures) +
           ",failure_after=" + FmtDouble(failure_after) +
           ",failure_duration=" + FmtDouble(failure_duration);
  }
  if (predictor_inflation != 1.0) {
    out += ",inflation=" + FmtDouble(predictor_inflation);
  }
  return out;
}

bool ParseScenario(const std::string& text, Scenario* out, std::string* error) {
  *out = Scenario{};
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string pair = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) {
      continue;
    }
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "scenario field without '=': " + pair;
      }
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    bool ok = true;
    if (key == "name") {
      out->name = value;
      ok = !value.empty();
    } else if (key == "system") {
      out->system = value;
      ok = !value.empty();
    } else if (key == "planahead") {
      ok = ParseDouble(value, &out->planahead) && out->planahead > 0.0;
    } else if (key == "oe_threshold") {
      ok = ParseDouble(value, &out->oe_probability_threshold) &&
           out->oe_probability_threshold >= 0.0 && out->oe_probability_threshold <= 1.0;
    } else if (key == "solver_threads") {
      ok = ParseInt(value, &out->solver_threads) && out->solver_threads > 0;
    } else if (key == "solver_shards") {
      ok = ParseInt(value, &out->solver_shards) &&
           (out->solver_shards == 0 || out->solver_shards == 1);
    } else if (key == "padding") {
      ok = ParseDouble(value, &out->padding) && out->padding > 0.0;
    } else if (key == "surge") {
      ok = ParseDouble(value, &out->arrival_surge) && out->arrival_surge >= 1.0;
    } else if (key == "surge_window") {
      ok = ParseDouble(value, &out->surge_window) && out->surge_window > 0.0;
    } else if (key == "failures") {
      ok = ParseInt(value, &out->extra_node_failures) && out->extra_node_failures >= 0;
    } else if (key == "failure_after") {
      ok = ParseDouble(value, &out->failure_after) && out->failure_after > 0.0;
    } else if (key == "failure_duration") {
      ok = ParseDouble(value, &out->failure_duration) && out->failure_duration > 0.0;
    } else if (key == "inflation") {
      ok = ParseDouble(value, &out->predictor_inflation) && out->predictor_inflation > 0.0;
    } else {
      if (error != nullptr) {
        *error = "unknown scenario key: " + key;
      }
      return false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad scenario value: " + pair;
      }
      return false;
    }
  }
  return true;
}

bool ParseScenarioList(const std::string& text, std::vector<Scenario>* out, std::string* error) {
  out->clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t semi = text.find(';', pos);
    if (semi == std::string::npos) {
      semi = text.size();
    }
    const std::string one = text.substr(pos, semi - pos);
    pos = semi + 1;
    if (one.empty()) {
      if (semi == text.size()) {
        break;
      }
      continue;
    }
    Scenario scenario;
    if (!ParseScenario(one, &scenario, error)) {
      return false;
    }
    out->push_back(std::move(scenario));
    if (semi == text.size()) {
      break;
    }
  }
  return true;
}

std::vector<Scenario> DefaultScenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "planahead_half";
    s.planahead = 600.0;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "planahead_double";
    s.planahead = 2400.0;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "oe_wide";
    s.oe_probability_threshold = 0.2;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "surge_1.5x";
    s.arrival_surge = 1.5;
    out.push_back(s);
  }
  return out;
}

}  // namespace threesigma
