#include "src/sched/valuation.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

uint64_t DoubleBits(double x) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x), "double is not 64-bit");
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double x = 0.0;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

// Bitwise equality — the crosscheck contract is exact replication, and NaN
// != NaN would make a value comparison silently pass-through NaN divergence.
bool BitEqual(double a, double b) { return DoubleBits(a) == DoubleBits(b); }

// First atom whose completion misses the deadline. The predicate computes
// `start + value <= deadline` with the generic comparison's exact rounding;
// NaN start or deadline makes every comparison false (boundary 0), which
// replays the generic all-zero-terms accumulation.
size_t FlatRegionEnd(const ValuationTables& t, double start, double deadline) {
  const auto it =
      std::partition_point(t.value.begin(), t.value.end(),
                           [start, deadline](double v) { return start + v <= deadline; });
  return static_cast<size_t>(it - t.value.begin());
}

}  // namespace

size_t ValuationTables::CountAtMost(double t) const {
  // CdfAtMost includes atoms until `value > t` breaks the loop, which means
  // the inclusion predicate is !(value > t) — kept in that form so a NaN t
  // (all comparisons false) includes every atom, exactly like the generic
  // loop that never breaks.
  const auto it = std::partition_point(value.begin(), value.end(),
                                       [t](double v) { return !(v > t); });
  return static_cast<size_t>(it - value.begin());
}

const ValuationTables& ValuationEngine::Tables(JobId job, double scale,
                                               const EmpiricalDistribution& dist,
                                               const UtilityFunction& utility,
                                               ValuationCounters* counters) {
  const Key key{job, DoubleBits(scale)};
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    if (counters != nullptr) {
      ++counters->cache_hits;
    }
    return it->second;
  }
  if (counters != nullptr) {
    ++counters->cache_misses;
  }

  ValuationTables t;
  t.scale = scale;
  // Bit-exactness by construction: a scale != 1 table adopts the atoms of a
  // real Scaled() call (same sort/merge/renormalization rounding the generic
  // path pays every cycle); scale == 1 adopts the distribution verbatim,
  // matching the generic path's skip of Scaled() there. An empty distribution
  // (no prediction mass) yields trivial tables: EU 0.0, survival 1.0 —
  // matching the generic loops, which never execute.
  EmpiricalDistribution scaled_storage;
  const EmpiricalDistribution* src = &dist;
  if (scale != 1.0 && !dist.empty()) {
    scaled_storage = dist.Scaled(scale);
    src = &scaled_storage;
  }
  const std::vector<EmpiricalDistribution::Atom>& atoms = src->atoms();
  t.value.reserve(atoms.size());
  t.prob.reserve(atoms.size());
  t.prefix_mass.reserve(atoms.size() + 1);
  t.prefix_util.reserve(atoms.size() + 1);
  t.prefix_mass.push_back(0.0);
  t.prefix_util.push_back(0.0);
  const double peak = utility.peak_value();
  double mass = 0.0;
  double util = 0.0;
  for (const EmpiricalDistribution::Atom& a : atoms) {
    t.value.push_back(a.value);
    t.prob.push_back(a.probability);
    mass += a.probability;       // CdfAtMost's accumulation order.
    util += peak * a.probability;  // Eq. 1's flat-region accumulation order.
    t.prefix_mass.push_back(mass);
    t.prefix_util.push_back(util);
  }
  return cache_.emplace(key, std::move(t)).first->second;
}

const ValuationTables* ValuationEngine::Find(JobId job, double scale) const {
  const auto it = cache_.find(Key{job, DoubleBits(scale)});
  return it == cache_.end() ? nullptr : &it->second;
}

double ValuationEngine::ExpectedUtility(const ValuationTables& t, const UtilityFunction& u,
                                        double start, ValuationCounters* counters) const {
  if (counters != nullptr) {
    ++counters->kernel_calls;
  }
  double eu = 0.0;
  switch (u.kind()) {
    case UtilityFunction::Kind::kStep: {
      // Generic term: ((start + v <= deadline) ? peak : 0.0) · p. The zero
      // terms are +0.0 additions — bitwise no-ops on the non-negative
      // accumulator — so the prefix over the flat region is the answer.
      eu = t.prefix_util[FlatRegionEnd(t, start, u.deadline())];
      break;
    }
    case UtilityFunction::Kind::kStepDecay: {
      const size_t boundary = FlatRegionEnd(t, start, u.deadline());
      eu = t.prefix_util[boundary];
      for (size_t k = boundary; k < t.size(); ++k) {
        const double uval = u.ValueAtCompletion(start + t.value[k]);
        if (uval == 0.0) {
          // The decay is monotone non-increasing past the deadline, so every
          // later generic term is a +0.0 no-op.
          break;
        }
        eu += uval * t.prob[k];
      }
      break;
    }
    case UtilityFunction::Kind::kLinear: {
      // No prefix shortcut (the 0.02 floor keeps every term positive), but
      // the direct call replaces the std::function indirection per atom.
      for (size_t k = 0; k < t.size(); ++k) {
        eu += u.ValueAtCompletion(start + t.value[k]) * t.prob[k];
      }
      break;
    }
  }
  if (config_.crosscheck) {
    double ref = 0.0;
    for (size_t k = 0; k < t.size(); ++k) {
      ref += u.ValueAtCompletion(start + t.value[k]) * t.prob[k];
    }
    TS_CHECK_MSG(BitEqual(eu, ref), "valuation kernel diverged from the generic Eq. 1 loop: "
                                        << eu << " vs " << ref << " (start " << start << ")");
  }
  return eu;
}

double ValuationEngine::Survival(const ValuationTables& t, double x) const {
  const double s = t.Survival(x);
  if (config_.crosscheck) {
    // Replay CdfAtMost over the table arrays.
    double mass = 0.0;
    for (size_t k = 0; k < t.size(); ++k) {
      if (t.value[k] > x) {
        break;
      }
      mass += t.prob[k];
    }
    TS_CHECK_MSG(BitEqual(s, 1.0 - mass),
                 "survival table diverged from the generic CDF loop at t = " << x);
  }
  return s;
}

void ValuationEngine::InvalidateJob(JobId job) {
  cache_.erase(cache_.lower_bound(Key{job, 0}),
               cache_.lower_bound(Key{job + 1, 0}));
}

void ValuationEngine::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarU64(cache_.size());
  for (const auto& [key, tables] : cache_) {
    writer.WriteVarI64(key.first);
    writer.WriteDouble(DoubleFromBits(key.second));
  }
}

std::vector<std::pair<JobId, double>> ValuationEngine::ReadSavedKeys(SnapshotReader& reader) {
  std::vector<std::pair<JobId, double>> keys;
  const uint64_t n = reader.ReadVarCount(9);  // Each key is a varint + double.
  keys.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    const JobId job = reader.ReadVarI64();
    const double scale = reader.ReadDouble();
    keys.emplace_back(job, scale);
  }
  return keys;
}

}  // namespace threesigma
