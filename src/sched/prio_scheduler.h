// Prio — the runtime-unaware priority scheduler baseline (Table 1).
//
// Models Borg-style scheduling: SLO jobs take strict priority over
// best-effort jobs and preempt them when the cluster is full; no runtime
// information is consulted. Placement greedily prefers a job's preferred
// groups. Best-effort jobs backfill whatever is left, oldest first.

#ifndef SRC_SCHED_PRIO_SCHEDULER_H_
#define SRC_SCHED_PRIO_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/sched/scheduler.h"

namespace threesigma {

struct PrioSchedulerConfig {
  std::string name = "Prio";
  bool enable_preemption = true;
};

class PrioScheduler : public Scheduler {
 public:
  PrioScheduler(const ClusterConfig& cluster, PrioSchedulerConfig config = {});

  void OnJobArrival(const JobSpec& spec, Time now) override;
  void OnJobStarted(JobId id, int group, Time now) override;
  void OnJobFinished(JobId id, Time now, Duration observed_runtime) override;
  void OnJobPreempted(JobId id, Time now) override;
  void OnJobCancelled(JobId id, Time now) override;
  CycleResult RunCycle(Time now, const ClusterStateView& state) override;
  std::string name() const override { return config_.name; }

  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

 private:
  const ClusterConfig& cluster_;
  PrioSchedulerConfig config_;
  std::map<JobId, JobSpec> jobs_;  // Pending + running specs.
  std::vector<JobId> pending_;
};

}  // namespace threesigma

#endif  // SRC_SCHED_PRIO_SCHEDULER_H_
