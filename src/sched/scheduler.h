// Scheduler interface between the cluster simulator and the scheduling
// policies (3σSched, the point-estimate schedulers, and Prio).
//
// The simulator is the source of truth for cluster state; each scheduling
// cycle it hands the scheduler a view of free capacity and running jobs and
// executes the returned decisions (job starts, preemptions, abandonments).

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/common/check.h"
#include "src/common/units.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

struct RunningJobView {
  JobId id = 0;
  int group = 0;
  Time start_time = 0.0;
  int num_tasks = 0;
  JobType type = JobType::kBestEffort;
};

struct ClusterStateView {
  const ClusterConfig* cluster = nullptr;
  // Free *available* nodes per group id (excludes both occupied and crashed
  // nodes).
  std::vector<int> free_nodes;
  // Currently available (non-crashed) nodes per group id; equals the nominal
  // node_count when no fault injection is active. Empty in hand-built views
  // (tests): consumers fall back to the nominal capacity then.
  std::vector<int> available_nodes;
  std::vector<RunningJobView> running;

  // Available nodes of `group`, falling back to nominal capacity when the
  // view carries no fault-adjusted timeline.
  int AvailableNodes(int group) const {
    if (group >= 0 && group < static_cast<int>(available_nodes.size())) {
      return available_nodes[static_cast<size_t>(group)];
    }
    return cluster->group(group).node_count;
  }
};

struct Placement {
  JobId job = 0;
  int group = 0;
};

// A reservation the scheduler made for a later start (not executed now; the
// plan is re-evaluated every cycle, per §4.3.1).
struct PlannedPlacement {
  JobId job = 0;
  int group = 0;
  Time start = 0.0;
};

struct CycleResult {
  // Jobs to start now, on the given group.
  std::vector<Placement> start;
  // Running jobs to preempt (kill-and-requeue).
  std::vector<JobId> preempt;
  // Pending jobs the scheduler gives up on (zero achievable utility); the
  // simulator retires them as unscheduled.
  std::vector<JobId> abandon;
  // Deferred reservations (observability only; nothing to execute).
  std::vector<PlannedPlacement> deferred;

  // Diagnostics for the Fig. 12 scalability study.
  double solver_seconds = 0.0;  // MILP solve time.
  double cycle_seconds = 0.0;   // Full cycle: valuation + formulation + solve.
  int milp_variables = 0;
  int milp_rows = 0;
  int milp_nodes = 0;
  // Parallel-solver diagnostics: deepest the subproblem queue got and how
  // many times the incumbent improved during the solve.
  int milp_max_queue_depth = 0;
  int milp_incumbent_improvements = 0;
  // Shard decomposition diagnostics (0 when solver_shards is off or the
  // cycle skipped its solve): connected components in the cycle MILP and the
  // largest component's variable count (imbalance indicator).
  int milp_shards = 0;
  int milp_max_shard_vars = 0;
  // Expected-capacity cache traffic this cycle (running jobs served from
  // their cached survival vector vs. recomputed).
  int64_t capacity_cache_hits = 0;
  int64_t capacity_cache_misses = 0;
  // Valuation-engine traffic this cycle: table cache hits/misses from the
  // serial prepare pass and Eq. 1 kernel evaluations from the fan-out. All
  // zero when the engine is off.
  int64_t valuation_cache_hits = 0;
  int64_t valuation_cache_misses = 0;
  int64_t valuation_kernel_calls = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // A new job request arrived (step 1 of Fig. 4); the scheduler queues it and
  // consults its predictor.
  virtual void OnJobArrival(const JobSpec& spec, Time now) = 0;
  // The simulator started a placement this scheduler requested.
  virtual void OnJobStarted(JobId id, int group, Time now) = 0;
  // A running job finished; `observed_runtime` feeds the history (step 4).
  virtual void OnJobFinished(JobId id, Time now, Duration observed_runtime) = 0;
  // A preemption was executed; the job is pending again.
  virtual void OnJobPreempted(JobId id, Time now) = 0;

  // A running job was killed by a fault (node crash or injected task
  // failure) and is pending again. Default: treated like a preemption.
  // Fault-aware schedulers override this to flag the restarted attempt as a
  // likely mis-estimate (§4.2) and feed attempt counts to their predictor.
  virtual void OnJobFaultKilled(JobId id, Time now) { OnJobPreempted(id, now); }

  // A pending job was withdrawn by its submitter (online service CancelJob)
  // and will never run. Only delivered for jobs the scheduler has seen via
  // OnJobArrival; the simulator suppresses the arrival of jobs cancelled
  // before their submit time. Default: ignored (stateless schedulers).
  virtual void OnJobCancelled(JobId id, Time now) {
    (void)id;
    (void)now;
  }

  // The available capacity of `group` changed (node crash/repair); the new
  // post-fault capacity is `available_nodes`. Schedulers that cache plans or
  // capacity state must invalidate on this signal. Default: ignored.
  virtual void OnCapacityChanged(int group, int available_nodes, Time now) {
    (void)group;
    (void)available_nodes;
    (void)now;
  }

  // One scheduling cycle (§4.3.1's periodic re-evaluation).
  virtual CycleResult RunCycle(Time now, const ClusterStateView& state) = 0;

  virtual std::string name() const = 0;

  // Checkpoint hooks. Called between sections (schedulers open their own
  // "sched" — and, where applicable, "predict" — sections so replay_diff can
  // attribute a state divergence to the scheduler vs. the predictor). The
  // payload starts with a kind tag so restoring through a differently-
  // configured scheduler fails loudly. Defaults cover stateless schedulers.
  virtual void SaveState(SnapshotWriter& writer) const {
    writer.BeginSection("sched", 1);
    writer.WriteString("stateless");
    writer.EndSection();
  }
  virtual void RestoreState(SnapshotReader& reader) {
    reader.BeginSection("sched");
    const std::string tag = reader.ReadString();
    if (reader.ok()) {
      TS_CHECK_MSG(tag == "stateless", "snapshot scheduler kind mismatch");
    }
    reader.EndSection();
  }
};

}  // namespace threesigma

#endif  // SRC_SCHED_SCHEDULER_H_
