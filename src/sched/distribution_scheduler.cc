#include "src/sched/distribution_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/solver/milp.h"
#include "src/solver/sharded_milp.h"

namespace threesigma {
namespace {

// Options below this expected utility are pruned from the MILP (§4.3.6).
constexpr double kMinOptionUtility = 1e-6;

// Full consumed_ rebuild period (in solves) when the capacity cache is on;
// squashes accumulated add/subtract float drift.
constexpr int kCacheRebuildPeriod = 256;

// Cap on the fingerprint-keyed shard basis map; exceeding it clears the map
// (deterministic, and bases only affect pivot counts — never answers).
constexpr size_t kMaxShardBases = 128;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  const std::chrono::duration<double> d = std::chrono::steady_clock::now() - t0;
  return d.count();
}

}  // namespace

DistributionScheduler::DistributionScheduler(const ClusterConfig& cluster,
                                             RuntimePredictor* predictor,
                                             DistSchedulerConfig config)
    : cluster_(cluster),
      predictor_(predictor),
      config_(std::move(config)),
      valuation_(ValuationEngine::Config{config_.valuation_cache, config_.valuation_crosscheck}) {
  TS_CHECK(predictor_ != nullptr);
  TS_CHECK_GT(config_.num_start_slots, 0);
  TS_CHECK_GT(config_.planahead, 0.0);
  consumed_.assign(static_cast<size_t>(cluster_.num_groups()),
                   std::vector<double>(static_cast<size_t>(config_.num_start_slots), 0.0));
  if (config_.solver_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.solver_threads);
  }
}

void DistributionScheduler::UpdateConfig(const DistSchedulerConfig& config) {
  TS_CHECK_GT(config.num_start_slots, 0);
  TS_CHECK_GT(config.planahead, 0.0);
  const bool dist_flip = config.use_distribution != config_.use_distribution;
  const bool pool_change = config.solver_threads != config_.solver_threads;
  const bool valuation_change = config.valuation_cache != config_.valuation_cache ||
                                config.valuation_crosscheck != config_.valuation_crosscheck;
  config_ = config;

  // The expected-capacity rows, cached survival vectors, planned options,
  // and valuation tables all encode the old (planahead, slots, distribution)
  // policy; drop them and let the next cycle rebuild from scratch.
  consumed_.assign(static_cast<size_t>(cluster_.num_groups()),
                   std::vector<double>(static_cast<size_t>(config_.num_start_slots), 0.0));
  for (auto& [id, info] : jobs_) {
    (void)id;
    info.capacity_applied = false;
    info.cached_survival.clear();
    info.survival_valid_until = -1e18;
    info.planned_group = -1;
    info.planned_start = kNever;
    if (dist_flip) {
      const RuntimePrediction prediction =
          predictor_->Predict(info.record_features, info.spec.true_runtime);
      info.point_estimate = prediction.point_estimate;
      if (config_.use_distribution) {
        info.sched_dist = prediction.distribution;
      } else {
        info.sched_dist = EmpiricalDistribution::Point(prediction.point_estimate);
      }
    }
    // Fault-restarted jobs keep their forced OE decay (the restart verdict
    // outlives any policy change); everyone else re-runs the adaptive gate.
    ApplyOverestimateDecay(info, /*force=*/info.attempts > 0);
  }
  if (valuation_change) {
    valuation_ = ValuationEngine(
        ValuationEngine::Config{config_.valuation_cache, config_.valuation_crosscheck});
  } else {
    valuation_.Clear();
  }
  last_root_basis_ = LpBasis();
  shard_bases_.clear();
  dirty_ = true;
  last_solve_ = -1e18;
  solves_since_rebuild_ = 0;
  if (pool_change) {
    pool_.reset();
    if (config_.solver_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(config_.solver_threads);
    }
  }
}

void DistributionScheduler::ApplyOverestimateDecay(JobInfo& info, bool force) const {
  // §4.2.2/§4.2.3: over-estimate handling turns the SLO utility cliff into a
  // linear decay. Adaptive mode enables it only when the history claims the
  // job cannot meet its deadline window — the tell-tale of an over-estimate.
  // `force` skips the adaptive gate (fault restarts are treated as likely
  // mis-estimates: the pre-restart estimate ignores the lost work).
  const JobSpec& spec = info.spec;
  info.effective_utility = spec.utility;
  info.oe_enabled = false;
  if (!(spec.is_slo() && spec.deadline != kNever && config_.overestimate_handling)) {
    return;
  }
  const double window = spec.deadline - spec.submit_time;
  if (window <= 0.0) {
    return;
  }
  bool enable = true;
  if (!force && config_.adaptive_oe) {
    const double p_meet = info.sched_dist.CdfAtMost(window);
    enable = p_meet < config_.oe_probability_threshold;
  }
  info.oe_enabled = enable;
  if (enable) {
    // The decay must span the runtimes the history considers plausible,
    // or the "impossible" job would still value to zero everywhere.
    const double span = std::max(window, info.sched_dist.MaxValue());
    const double decay = std::max(span * config_.oe_decay_factor, config_.cycle_period);
    info.effective_utility = spec.utility.WithOverestimateDecay(decay);
  }
}

void DistributionScheduler::OnJobArrival(const JobSpec& spec, Time now) {
  JobInfo info;
  info.spec = spec;
  info.record_features = spec.features;

  const RuntimePrediction prediction = predictor_->Predict(spec.features, spec.true_runtime);
  info.point_estimate = prediction.point_estimate;
  if (config_.use_distribution) {
    info.sched_dist = prediction.distribution;
  } else {
    info.sched_dist = EmpiricalDistribution::Point(prediction.point_estimate);
  }

  ApplyOverestimateDecay(info, /*force=*/false);

  valuation_.InvalidateJob(spec.id);  // A reused id must not see stale tables.
  jobs_[spec.id] = std::move(info);
  pending_.push_back(spec.id);
  dirty_ = true;
  (void)now;
}

void DistributionScheduler::OnJobStarted(JobId id, int group, Time now) {
  auto it = jobs_.find(id);
  TS_CHECK(it != jobs_.end());
  JobInfo& info = it->second;
  RetireCapacityContribution(info);  // Stale entry from a pre-preemption run.
  info.running = true;
  info.group = group;
  info.start_time = now;
  info.underest_level = -1;
  info.underest_finish = kNever;
  info.survival_valid_until = -1e18;
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id), pending_.end());
  dirty_ = true;
}

void DistributionScheduler::OnJobFinished(JobId id, Time now, Duration observed_runtime) {
  auto it = jobs_.find(id);
  TS_CHECK(it != jobs_.end());
  RetireCapacityContribution(it->second);
  predictor_->RecordCompletion(it->second.record_features, observed_runtime);
  valuation_.InvalidateJob(id);
  jobs_.erase(it);
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id), pending_.end());
  dirty_ = true;
  (void)now;
}

void DistributionScheduler::OnJobPreempted(JobId id, Time now) {
  auto it = jobs_.find(id);
  TS_CHECK(it != jobs_.end());
  JobInfo& info = it->second;
  TS_CHECK(info.running);
  RetireCapacityContribution(info);
  info.running = false;
  info.group = -1;
  info.start_time = kNever;
  info.underest_level = -1;
  info.underest_finish = kNever;
  info.planned_group = -1;
  info.planned_start = kNever;
  info.survival_valid_until = -1e18;
  pending_.push_back(id);
  dirty_ = true;
  (void)now;
}

void DistributionScheduler::OnJobCancelled(JobId id, Time now) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return;
  }
  TS_CHECK(!it->second.running);
  valuation_.InvalidateJob(id);
  jobs_.erase(it);
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id), pending_.end());
  dirty_ = true;
  (void)now;
}

void DistributionScheduler::OnJobFaultKilled(JobId id, Time now) {
  // Requeue exactly like a preemption...
  OnJobPreempted(id, now);

  // ...then fold the restart into the estimate. The pre-restart prediction
  // described a fresh run; attempt k of the same job is a different
  // population (the lost work must be redone, co-failure correlations, etc.),
  // so it gets its own feature key and history.
  auto it = jobs_.find(id);
  TS_CHECK(it != jobs_.end());
  JobInfo& info = it->second;
  ++info.attempts;
  info.record_features = info.spec.features;
  info.record_features.push_back("attempts=" + std::to_string(info.attempts));

  const RuntimePrediction prediction =
      predictor_->Predict(info.record_features, info.spec.true_runtime);
  info.point_estimate = prediction.point_estimate;
  if (config_.use_distribution) {
    info.sched_dist = prediction.distribution;
  } else {
    info.sched_dist = EmpiricalDistribution::Point(prediction.point_estimate);
  }

  // §4.2.2 applied to restarts: whatever the history says, the deadline math
  // for this job is now off by the lost run — treat it as an over-estimate
  // candidate unconditionally so its utility decays instead of cliffing.
  ApplyOverestimateDecay(info, /*force=*/true);

  // Both valuation-table inputs (sched_dist, effective_utility — including
  // the forced OE-gate flip above) just changed.
  valuation_.InvalidateJob(id);
}

void DistributionScheduler::OnCapacityChanged(int group, int available_nodes, Time now) {
  // The last plan (and any solve-skip decision) was drawn against the old
  // capacity; force a full re-solve next cycle. consumed_ needs no surgery:
  // RunCycle charges Eq. 3 consumption against the view's available nodes.
  dirty_ = true;
  (void)group;
  (void)available_nodes;
  (void)now;
}

void DistributionScheduler::UpdateUnderestimate(JobInfo& info, Time now) const {
  TS_CHECK(info.running);
  const double mult = info.spec.RuntimeMultiplier(info.group);
  const double max_known = info.sched_dist.MaxValue() * mult;
  const double elapsed = now - info.start_time;
  if (elapsed < max_known) {
    return;
  }
  // §4.2.1: once elapsed reaches the largest historical runtime, extend the
  // estimated finish by 2^t cycles, t = 0, 1, 2, ... on each expiry.
  if (info.underest_level < 0) {
    info.underest_level = 0;
    info.underest_finish = now + config_.cycle_period;
    return;
  }
  while (now >= info.underest_finish) {
    ++info.underest_level;
    info.underest_finish += std::pow(2.0, info.underest_level) * config_.cycle_period;
  }
}

void DistributionScheduler::ComputeRunningSurvival(const JobInfo& info, Time now,
                                                   std::vector<double>* out) const {
  TS_CHECK(info.running);
  const int slots = config_.num_start_slots;
  const double delta = config_.planahead / slots;
  out->resize(static_cast<size_t>(slots));
  if (info.underest_level >= 0) {
    // Under-estimated job: a point remaining-time estimate (exp-inc, §4.2.1).
    for (int i = 0; i < slots; ++i) {
      (*out)[static_cast<size_t>(i)] = now + i * delta < info.underest_finish ? 1.0 : 0.0;
    }
    return;
  }
  // Eq. 2: S(elapsed + offset | T > elapsed) = S(elapsed + offset) /
  // S(elapsed), in the scaled (on-this-group) time base.
  const double mult = info.spec.RuntimeMultiplier(info.group);
  const double elapsed = now - info.start_time;
  if (config_.valuation_engine) {
    // Zero-copy conditional: both survival queries are prefix-mass lookups
    // on the job's cached tables — no per-refresh Scaled() materialization.
    // Lookups here are uncounted (counters cover the valuation phase), so
    // the counter stream is invariant to crosscheck reruns of this method.
    const ValuationTables& tables = valuation_.Tables(
        info.spec.id, mult, info.sched_dist, info.effective_utility, /*counters=*/nullptr);
    const double s_elapsed = valuation_.Survival(tables, elapsed);
    if (s_elapsed <= 0.0) {
      // Raced past the max between updates; treat as one more cycle.
      for (int i = 0; i < slots; ++i) {
        (*out)[static_cast<size_t>(i)] = i * delta < config_.cycle_period ? 1.0 : 0.0;
      }
      return;
    }
    for (int i = 0; i < slots; ++i) {
      (*out)[static_cast<size_t>(i)] = valuation_.Survival(tables, elapsed + i * delta) / s_elapsed;
    }
    return;
  }
  const EmpiricalDistribution scaled =
      mult == 1.0 ? info.sched_dist : info.sched_dist.Scaled(mult);
  const double s_elapsed = scaled.Survival(elapsed);
  if (s_elapsed <= 0.0) {
    // Raced past the max between updates; treat as one more cycle.
    for (int i = 0; i < slots; ++i) {
      (*out)[static_cast<size_t>(i)] = i * delta < config_.cycle_period ? 1.0 : 0.0;
    }
    return;
  }
  for (int i = 0; i < slots; ++i) {
    (*out)[static_cast<size_t>(i)] = scaled.Survival(elapsed + i * delta) / s_elapsed;
  }
}

void DistributionScheduler::RefreshRunningSurvival(JobInfo& info, Time now) {
  UpdateUnderestimate(info, now);
  ComputeRunningSurvival(info, now, &info.cached_survival);

  // Validity horizon: the vector stays exact until one of the per-slot query
  // points crosses a step of the survival function.
  const int slots = config_.num_start_slots;
  const double delta = config_.planahead / slots;
  constexpr Time kForever = std::numeric_limits<double>::infinity();
  if (info.underest_level >= 0) {
    // Steps at now' + i·delta == underest_finish; the earliest future one
    // bounds validity (i == 0 guarantees a future boundary: UpdateUnderestimate
    // leaves underest_finish > now).
    Time valid_until = kForever;
    for (int i = 0; i < slots; ++i) {
      const Time boundary = info.underest_finish - i * delta;
      if (boundary > now) {
        valid_until = std::min(valid_until, boundary);
      }
    }
    info.survival_valid_until = valid_until;
    return;
  }
  const double mult = info.spec.RuntimeMultiplier(info.group);
  const double elapsed = now - info.start_time;
  if (info.sched_dist.empty() || info.sched_dist.MaxValue() * mult <= elapsed) {
    info.survival_valid_until = now;  // Fallback branch: recompute every cycle.
    return;
  }
  // Survival steps at each atom value; slot i's query point elapsed + i·delta
  // crosses atom v when elapsed reaches v − i·delta. The smallest such future
  // elapsed bounds validity; per atom that is the *largest* i whose crossing
  // is still ahead (larger i crosses earlier). The max atom's i == 0 crossing
  // also covers the switch into under-estimate extension.
  double next_elapsed = kForever;
  for (const EmpiricalDistribution::Atom& atom : info.sched_dist.atoms()) {
    const double v = atom.value * mult;
    for (int i = slots - 1; i >= 0; --i) {
      const double boundary = v - i * delta;
      if (boundary > elapsed + 1e-9) {
        next_elapsed = std::min(next_elapsed, boundary);
        break;
      }
    }
  }
  info.survival_valid_until = info.start_time + next_elapsed;
}

void DistributionScheduler::ValueJobOptions(const JobInfo& info, Time now,
                                            ValuationScratch& scratch, JobValuation* out) const {
  out->Clear();
  const int num_groups = cluster_.num_groups();
  const int slots = config_.num_start_slots;
  const double delta = config_.planahead / slots;
  const double k = info.spec.num_tasks;
  scratch.survival.resize(static_cast<size_t>(slots));
  for (int g = 0; g < num_groups; ++g) {
    if (info.spec.num_tasks > cluster_.group(g).node_count) {
      continue;
    }
    const double mult = info.spec.RuntimeMultiplier(g);
    const ValuationTables* tables = valuation_.Find(info.spec.id, mult);
    TS_CHECK_MSG(tables != nullptr,
                 "valuation tables missing for job " << info.spec.id << " scale " << mult);
    // Survival at each slot offset (shared across start slots).
    for (int d = 0; d < slots; ++d) {
      scratch.survival[static_cast<size_t>(d)] = valuation_.Survival(*tables, d * delta);
    }
    // A gang occupies its nodes with certainty at the instant it starts,
    // even if the distribution carries (clamped) zero-runtime atoms.
    scratch.survival[0] = 1.0;
    for (int s = 0; s < slots; ++s) {
      const Time start = now + s * delta;
      const double eu =
          valuation_.ExpectedUtility(*tables, info.effective_utility, start, &scratch.counters);
      if (eu <= kMinOptionUtility) {
        continue;
      }
      ValuedOption opt;
      opt.group = g;
      opt.slot = s;
      opt.eu = eu;
      opt.cons_offset = out->consumption.size();
      opt.cons_len = slots - s;
      for (int i = s; i < slots; ++i) {
        out->consumption.push_back(k * scratch.survival[static_cast<size_t>(i - s)]);
      }
      out->options.push_back(opt);
    }
  }
}

void DistributionScheduler::ValueJobOptionsGeneric(const JobInfo& info, Time now,
                                                   ValuationScratch& scratch,
                                                   JobValuation* out) const {
  out->Clear();
  const int num_groups = cluster_.num_groups();
  const int slots = config_.num_start_slots;
  const double delta = config_.planahead / slots;
  const double k = info.spec.num_tasks;
  scratch.survival.resize(static_cast<size_t>(slots));
  for (int g = 0; g < num_groups; ++g) {
    if (info.spec.num_tasks > cluster_.group(g).node_count) {
      continue;
    }
    const double mult = info.spec.RuntimeMultiplier(g);
    const EmpiricalDistribution dist =
        mult == 1.0 ? info.sched_dist : info.sched_dist.Scaled(mult);
    for (int d = 0; d < slots; ++d) {
      scratch.survival[static_cast<size_t>(d)] = dist.Survival(d * delta);
    }
    scratch.survival[0] = 1.0;
    for (int s = 0; s < slots; ++s) {
      const Time start = now + s * delta;
      const double eu = dist.ExpectedValue(
          [&](double t) { return info.effective_utility.ValueAtCompletion(start + t); });
      if (eu <= kMinOptionUtility) {
        continue;
      }
      ValuedOption opt;
      opt.group = g;
      opt.slot = s;
      opt.eu = eu;
      opt.cons_offset = out->consumption.size();
      opt.cons_len = slots - s;
      for (int i = s; i < slots; ++i) {
        out->consumption.push_back(k * scratch.survival[static_cast<size_t>(i - s)]);
      }
      out->options.push_back(opt);
    }
  }
}

void DistributionScheduler::RetireCapacityContribution(JobInfo& info) {
  if (!info.capacity_applied) {
    return;
  }
  const double k = info.spec.num_tasks;
  std::vector<double>& row = consumed_[static_cast<size_t>(info.group)];
  for (size_t i = 0; i < info.cached_survival.size(); ++i) {
    row[i] -= k * info.cached_survival[i];
  }
  info.capacity_applied = false;
}

void DistributionScheduler::UpdateConsumed(Time now, const ClusterStateView& state,
                                           CycleResult* result) {
  const bool incremental =
      config_.capacity_cache && solves_since_rebuild_ < kCacheRebuildPeriod;
  if (!incremental) {
    solves_since_rebuild_ = 0;
    for (std::vector<double>& row : consumed_) {
      std::fill(row.begin(), row.end(), 0.0);
    }
    for (auto& [id, info] : jobs_) {
      info.capacity_applied = false;
    }
  }
  ++solves_since_rebuild_;

  for (const RunningJobView& r : state.running) {
    auto it = jobs_.find(r.id);
    TS_CHECK_MSG(it != jobs_.end(), "unknown running job " << r.id);
    JobInfo& info = it->second;
    TS_CHECK(info.running);
    TS_CHECK_MSG(info.group == r.group, "group mismatch for job " << r.id);
    if (incremental && info.capacity_applied && now < info.survival_valid_until) {
      ++result->capacity_cache_hits;
      continue;
    }
    RetireCapacityContribution(info);
    RefreshRunningSurvival(info, now);
    const double k = info.spec.num_tasks;
    std::vector<double>& row = consumed_[static_cast<size_t>(info.group)];
    for (size_t i = 0; i < info.cached_survival.size(); ++i) {
      row[i] += k * info.cached_survival[i];
    }
    info.capacity_applied = true;
    if (config_.capacity_cache) {
      ++result->capacity_cache_misses;
    }
  }
  cache_hits_ += result->capacity_cache_hits;
  cache_misses_ += result->capacity_cache_misses;

  if (config_.capacity_cache && config_.capacity_cache_crosscheck) {
    // The cache invariant: delta-updated rows must equal a from-scratch
    // recompute (up to float accumulation noise).
    std::vector<std::vector<double>> expected(
        consumed_.size(), std::vector<double>(static_cast<size_t>(config_.num_start_slots), 0.0));
    std::vector<double> survival;
    for (const RunningJobView& r : state.running) {
      const JobInfo& info = jobs_.at(r.id);
      ComputeRunningSurvival(info, now, &survival);
      for (size_t i = 0; i < survival.size(); ++i) {
        expected[static_cast<size_t>(r.group)][i] += info.spec.num_tasks * survival[i];
      }
    }
    for (size_t g = 0; g < consumed_.size(); ++g) {
      for (size_t i = 0; i < consumed_[g].size(); ++i) {
        const double diff = std::fabs(consumed_[g][i] - expected[g][i]);
        TS_CHECK_MSG(diff <= 1e-6 * std::max(1.0, std::fabs(expected[g][i])),
                     "capacity cache drift at group " << g << " slot " << i << ": cached "
                                                      << consumed_[g][i] << " vs recomputed "
                                                      << expected[g][i]);
      }
    }
  }
}

CycleResult DistributionScheduler::RunCycle(Time now, const ClusterStateView& state) {
  CycleResult result = RunCycleImpl(now, state);
  // Publish the cycle's outcome to the metrics registry: the unified counter
  // plumbing the report layer and tests read instead of ad-hoc totals.
  struct SchedCounters {
    obs::Counter* cycles;
    obs::Counter* starts;
    obs::Counter* preempt_decisions;
    obs::Counter* abandons;
    obs::Counter* deferred;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* milp_nodes;
    obs::Counter* valuation_cache_hits;
    obs::Counter* valuation_cache_misses;
    obs::Counter* valuation_kernel_calls;
    obs::Counter* milp_shards;
    obs::Counter* milp_max_shard_vars;
    obs::Histogram* shards_hist;
  };
  static const SchedCounters* const counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto* c = new SchedCounters();
    c->cycles = reg.GetCounter("sched.cycles");
    c->starts = reg.GetCounter("sched.starts");
    c->preempt_decisions = reg.GetCounter("sched.preempt_decisions");
    c->abandons = reg.GetCounter("sched.abandons");
    c->deferred = reg.GetCounter("sched.deferred");
    c->cache_hits = reg.GetCounter("sched.capacity_cache_hits");
    c->cache_misses = reg.GetCounter("sched.capacity_cache_misses");
    c->milp_nodes = reg.GetCounter("sched.milp_nodes");
    c->valuation_cache_hits = reg.GetCounter("sched.valuation_cache_hits");
    c->valuation_cache_misses = reg.GetCounter("sched.valuation_cache_misses");
    c->valuation_kernel_calls = reg.GetCounter("sched.valuation_kernel_calls");
    c->milp_shards = reg.GetCounter("sched.milp_shards");
    c->milp_max_shard_vars = reg.GetCounter("sched.milp_max_shard_vars");
    c->shards_hist = reg.GetHistogram("sched.shards_per_solve",
                                      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
    return c;
  }();
  counters->cycles->Increment();
  counters->starts->Add(static_cast<int64_t>(result.start.size()));
  counters->preempt_decisions->Add(static_cast<int64_t>(result.preempt.size()));
  counters->abandons->Add(static_cast<int64_t>(result.abandon.size()));
  counters->deferred->Add(static_cast<int64_t>(result.deferred.size()));
  counters->cache_hits->Add(result.capacity_cache_hits);
  counters->cache_misses->Add(result.capacity_cache_misses);
  counters->milp_nodes->Add(result.milp_nodes);
  counters->valuation_cache_hits->Add(result.valuation_cache_hits);
  counters->valuation_cache_misses->Add(result.valuation_cache_misses);
  counters->valuation_kernel_calls->Add(result.valuation_kernel_calls);
  counters->milp_shards->Add(result.milp_shards);
  counters->milp_max_shard_vars->Add(result.milp_max_shard_vars);
  if (result.milp_shards > 0) {
    counters->shards_hist->Observe(static_cast<double>(result.milp_shards));
  }
  return result;
}

CycleResult DistributionScheduler::RunCycleImpl(Time now, const ClusterStateView& state) {
  const auto cycle_start = std::chrono::steady_clock::now();
  CycleResult result;
  TS_CHECK(state.cluster != nullptr);

  // Solve-skip: with unchanged state, no deferred start coming due, and a
  // recent solve, this cycle cannot improve on the previous plan.
  if (!dirty_ && now < last_solve_ + config_.max_solve_skip) {
    bool plan_due = false;
    for (JobId id : pending_) {
      const JobInfo& info = jobs_.at(id);
      if (info.planned_start != kNever && info.planned_start <= now + config_.cycle_period) {
        plan_due = true;
        break;
      }
    }
    if (!plan_due) {
      result.cycle_seconds = SecondsSince(cycle_start);
      return result;
    }
  }
  dirty_ = false;
  last_solve_ = now;
  const int num_groups = cluster_.num_groups();
  const int slots = config_.num_start_slots;
  const double delta = config_.planahead / slots;

  // --- 1. Running jobs: conditional consumption per (group, slot). ---------
  // Brings consumed_[g][i] up to date (incrementally when the cache is on);
  // every running job's cached_survival is fresh as of `now` afterwards —
  // either because it was just recomputed or because its validity horizon has
  // not expired.
  struct PreemptCandidate {
    JobId id;
    int group;
    double k;
    std::vector<double> survival;  // Per slot.
    double cost;
  };
  std::vector<PreemptCandidate> preemptables;
  {
    TS_OBS_SPAN("sched.capacity", obs::Phase::kCapacity);
    UpdateConsumed(now, state, &result);
    // Preemption candidates: running best-effort jobs (§4.3.5).
    for (const RunningJobView& r : state.running) {
      if (!(config_.enable_preemption && r.type == JobType::kBestEffort)) {
        continue;
      }
      const JobInfo& info = jobs_.at(r.id);
      preemptables.push_back(PreemptCandidate{
          r.id, r.group, static_cast<double>(r.num_tasks), info.cached_survival,
          config_.preemption_cost_factor * info.effective_utility.peak_value()});
    }
  }

  // --- 2. Pending selection and abandonment. ------------------------------
  std::vector<JobId> considered;
  {
    TS_OBS_SPAN("sched.select", obs::Phase::kSelect);
    std::vector<JobId> slo;
    std::vector<JobId> be;
    for (JobId id : pending_) {
      JobInfo& info = jobs_.at(id);
      // A job whose utility is already zero for *any* completion time can
      // never contribute; retire it (its deadline + decay window passed).
      if (info.spec.is_slo() && info.effective_utility.ValueAtCompletion(now) <= 0.0) {
        result.abandon.push_back(id);
        continue;
      }
      (info.spec.is_slo() ? slo : be).push_back(id);
    }
    std::sort(slo.begin(), slo.end(), [&](JobId a, JobId b) {
      return jobs_.at(a).spec.deadline < jobs_.at(b).spec.deadline;
    });
    std::sort(be.begin(), be.end(), [&](JobId a, JobId b) {
      return jobs_.at(a).spec.submit_time < jobs_.at(b).spec.submit_time;
    });
    for (JobId id : slo) {
      considered.push_back(id);
    }
    for (JobId id : be) {
      considered.push_back(id);
    }
    if (static_cast<int>(considered.size()) > config_.max_pending_considered) {
      considered.resize(config_.max_pending_considered);
    }
    for (JobId id : result.abandon) {
      pending_.erase(std::remove(pending_.begin(), pending_.end(), id), pending_.end());
      valuation_.InvalidateJob(id);
      jobs_.erase(id);
    }
  }
  if (considered.empty()) {
    result.cycle_seconds = SecondsSince(cycle_start);
    return result;
  }

  // --- 3. Options and their valuation (Eq. 1). -----------------------------
  struct Option {
    JobId job;
    int group;
    int slot;  // Start slot index; slot 0 == start now.
    double eu;
    // Expected node consumption at slot offsets [0, cons_len); points into
    // the per-job staging arena (value_stage_), stable for the cycle.
    const double* cons = nullptr;
    int cons_len = 0;
    int var = -1;  // MILP indicator (kMilp backend only).
  };
  std::vector<Option> options;
  // Per job: option indices (demand rows / greedy candidate sets).
  std::map<JobId, std::vector<size_t>> job_options;
  // Remaining expected capacity per (group, slot). Supply is the *available*
  // node count (nominal minus crashed nodes) so fault churn shrinks what the
  // MILP may hand out; with no faults this equals the nominal count.
  std::vector<std::vector<double>> cap(num_groups, std::vector<double>(slots));
  {
  TS_OBS_SPAN("sched.value", obs::Phase::kValuation);

  const int n = static_cast<int>(considered.size());
  if (static_cast<int>(value_stage_.size()) < n) {
    value_stage_.resize(static_cast<size_t>(n));
  }
  const int workers =
      (config_.valuation_engine && pool_ != nullptr) ? pool_->size() : 1;
  if (static_cast<int>(value_scratch_.size()) < workers) {
    value_scratch_.resize(static_cast<size_t>(workers));
  }
  for (ValuationScratch& s : value_scratch_) {
    s.counters = ValuationCounters{};
  }

  if (config_.valuation_engine) {
    if (!config_.valuation_cache) {
      valuation_.Clear();  // Cache off: tables live for one cycle only.
    }
    // Serial prepare pass: build/refresh every (job, group-scale) table so
    // the fan-out below reads the cache without mutating it. All hit/miss
    // traffic happens here, in `considered` order — thread-count invariant.
    ValuationCounters prepare;
    for (JobId id : considered) {
      const JobInfo& info = jobs_.at(id);
      for (int g = 0; g < num_groups; ++g) {
        if (info.spec.num_tasks > cluster_.group(g).node_count) {
          continue;
        }
        valuation_.Tables(id, info.spec.RuntimeMultiplier(g), info.sched_dist,
                          info.effective_utility, &prepare);
      }
    }
    result.valuation_cache_hits = prepare.cache_hits;
    result.valuation_cache_misses = prepare.cache_misses;

    // Deterministic fan-out: static index-ordered output slots. Workers read
    // shared state (jobs_, the table cache) and write only their own
    // value_stage_[index] / scratch, so any thread count — including the
    // serial fallback — produces byte-identical staged results.
    const auto value_one = [&](int worker, int index) {
      const JobInfo& info = jobs_.at(considered[static_cast<size_t>(index)]);
      ValueJobOptions(info, now, value_scratch_[static_cast<size_t>(worker)],
                      &value_stage_[static_cast<size_t>(index)]);
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(n, value_one);
    } else {
      for (int i = 0; i < n; ++i) {
        value_one(0, i);
      }
    }
    for (const ValuationScratch& s : value_scratch_) {
      result.valuation_kernel_calls += s.counters.kernel_calls;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      const JobInfo& info = jobs_.at(considered[static_cast<size_t>(i)]);
      ValueJobOptionsGeneric(info, now, value_scratch_[0],
                             &value_stage_[static_cast<size_t>(i)]);
    }
  }
  val_hits_ += result.valuation_cache_hits;
  val_misses_ += result.valuation_cache_misses;
  val_kernel_calls_ += result.valuation_kernel_calls;

  // Serial merge in `considered` order: reproduces the exact (job, group,
  // slot) option ordering the pre-fan-out serial loop emitted.
  for (int i = 0; i < n; ++i) {
    const JobId id = considered[static_cast<size_t>(i)];
    const JobValuation& staged = value_stage_[static_cast<size_t>(i)];
    for (const ValuedOption& vo : staged.options) {
      Option opt;
      opt.job = id;
      opt.group = vo.group;
      opt.slot = vo.slot;
      opt.eu = vo.eu;
      opt.cons = staged.consumption.data() + vo.cons_offset;
      opt.cons_len = vo.cons_len;
      job_options[id].push_back(options.size());
      options.push_back(opt);
    }
  }

  for (int g = 0; g < num_groups; ++g) {
    const double supply = state.AvailableNodes(g);
    for (int i = 0; i < slots; ++i) {
      cap[g][i] = supply - consumed_[static_cast<size_t>(g)][static_cast<size_t>(i)];
    }
  }
  }  // sched.value span.

  if (config_.backend == SolverBackend::kGreedy) {
    // Utility-greedy packing: jobs in priority order each take their highest
    // expected-utility option that still fits; no joint optimization and no
    // preemption. `considered` is already SLO-deadline-then-BE-submit order.
    TS_OBS_SPAN("sched.greedy_solve", obs::Phase::kSolve);
    const auto solve_start = std::chrono::steady_clock::now();
    for (JobId id : considered) {
      JobInfo& info = jobs_.at(id);
      info.planned_group = -1;
      info.planned_start = kNever;
      const auto it = job_options.find(id);
      if (it == job_options.end()) {
        continue;
      }
      const Option* best = nullptr;
      for (size_t idx : it->second) {
        const Option& opt = options[idx];
        bool fits = true;
        for (int d = 0; d < opt.cons_len; ++d) {
          if (opt.cons[d] > cap[opt.group][opt.slot + d] + 1e-9) {
            fits = false;
            break;
          }
        }
        if (fits && (best == nullptr || opt.eu > best->eu)) {
          best = &opt;
        }
      }
      if (best == nullptr) {
        continue;
      }
      for (int d = 0; d < best->cons_len; ++d) {
        cap[best->group][best->slot + d] -= best->cons[d];
      }
      if (best->slot == 0) {
        result.start.push_back(Placement{id, best->group});
      } else {
        info.planned_group = best->group;
        info.planned_start = now + best->slot * delta;
        result.deferred.push_back(PlannedPlacement{id, best->group, info.planned_start});
      }
    }
    result.solver_seconds = SecondsSince(solve_start);
    result.cycle_seconds = SecondsSince(cycle_start);
    return result;
  }

  // --- 4. MILP compilation (§4.3.3). ---------------------------------------
  LpModel model;
  std::vector<int> preempt_vars(preemptables.size(), -1);
  {
  TS_OBS_SPAN("sched.build", obs::Phase::kBuild);
  // capacity_terms[g][i]: accumulating LHS of the capacity row.
  std::vector<std::vector<std::vector<LpTerm>>> capacity_terms(
      num_groups, std::vector<std::vector<LpTerm>>(slots));
  std::map<JobId, std::vector<int>> job_vars;
  for (Option& opt : options) {
    opt.var = model.AddVariable(0.0, 1.0, opt.eu);
    job_vars[opt.job].push_back(opt.var);
    for (int d = 0; d < opt.cons_len; ++d) {
      if (opt.cons[d] > 1e-9) {
        capacity_terms[opt.group][opt.slot + d].push_back(LpTerm{opt.var, opt.cons[d]});
      }
    }
  }

  // Preemption variables: credit the victim's expected consumption back to
  // capacity, pay its cost in the objective (§4.3.5).
  for (size_t p = 0; p < preemptables.size(); ++p) {
    const PreemptCandidate& cand = preemptables[p];
    const int var = model.AddVariable(0.0, 1.0, -cand.cost);
    preempt_vars[p] = var;
    for (int i = 0; i < slots; ++i) {
      const double credit = cand.k * cand.survival[i];
      if (credit > 1e-9) {
        capacity_terms[cand.group][i].push_back(LpTerm{var, -credit});
      }
    }
  }

  // Demand rows: at most one option per job.
  for (const auto& [id, vars] : job_vars) {
    std::vector<LpTerm> terms;
    terms.reserve(vars.size());
    for (int v : vars) {
      terms.push_back(LpTerm{v, 1.0});
    }
    model.AddRow(RowSense::kLessEqual, 1.0, std::move(terms));
  }
  // Capacity rows (Eq. 3).
  for (int g = 0; g < num_groups; ++g) {
    for (int i = 0; i < slots; ++i) {
      if (capacity_terms[g][i].empty()) {
        continue;
      }
      model.AddRow(RowSense::kLessEqual, cap[g][i], std::move(capacity_terms[g][i]));
    }
  }
  }  // sched.build span.

  result.milp_variables = model.num_variables();
  result.milp_rows = model.num_rows();

  if (options.empty()) {
    result.cycle_seconds = SecondsSince(cycle_start);
    return result;
  }

  // Warm start: re-propose last cycle's plan (§4.3.6's seeding).
  std::vector<double> warm(model.num_variables(), 0.0);
  bool any_warm = false;
  std::vector<int> int_vars;
  {
  TS_OBS_SPAN("sched.warm_start", obs::Phase::kBuild);
  for (const Option& opt : options) {
    const JobInfo& info = jobs_.at(opt.job);
    if (info.planned_group != opt.group || info.planned_start == kNever) {
      continue;
    }
    // Pick the slot whose start time is nearest the previously planned start.
    const Time start = now + opt.slot * delta;
    if (std::fabs(start - info.planned_start) <= delta * 0.5 + 1e-9) {
      warm[opt.var] = 1.0;
      any_warm = true;
    }
  }

  int_vars.reserve(options.size() + preempt_vars.size());
  for (const Option& o : options) {
    int_vars.push_back(o.var);
  }
  for (int v : preempt_vars) {
    int_vars.push_back(v);
  }
  }  // sched.warm_start span.

  MilpOptions milp_options;
  milp_options.time_limit_seconds = config_.solver_time_limit_seconds;
  milp_options.max_nodes = config_.solver_max_nodes;
  milp_options.num_threads = config_.solver_threads;
  milp_options.pool = pool_.get();
  if (any_warm) {
    milp_options.warm_start = warm;
  }
  milp_options.basis_warmstart = config_.solver_basis_warmstart;
  if (config_.solver_basis_warmstart) {
    // Previous cycle's root basis; discarded inside the solver if this
    // cycle's model has a different shape.
    milp_options.root_basis = last_root_basis_;
  }
  const auto solve_start = std::chrono::steady_clock::now();
  MilpSolution solution;
  {
    TS_OBS_SPAN("sched.solve", obs::Phase::kSolve);
    if (config_.solver_shards) {
      // Connected-component decomposition: one sub-MILP per component of the
      // job↔equivalence-set graph, solved concurrently on the solver pool
      // with fingerprint-keyed warm bases. milp_options.root_basis (the
      // monolithic hint) is ignored by the sharded path.
      ShardedMilpOptions shard_options;
      shard_options.base = milp_options;
      shard_options.shard_bases = &shard_bases_;
      ShardedMilpSolution sharded = SolveShardedMilp(model, int_vars, shard_options);
      solution = std::move(sharded.merged);
      result.milp_shards = sharded.num_shards;
      result.milp_max_shard_vars = sharded.max_shard_vars;
      if (shard_bases_.size() > kMaxShardBases) {
        shard_bases_.clear();
      }
    } else {
      MilpSolver solver(model, int_vars);
      solution = solver.Solve(milp_options);
    }
  }
  result.solver_seconds = SecondsSince(solve_start);
  if (!solution.root_basis.empty()) {
    last_root_basis_ = solution.root_basis;
  }
  result.milp_nodes = solution.nodes_explored;
  result.milp_max_queue_depth = solution.max_queue_depth;
  result.milp_incumbent_improvements = static_cast<int>(solution.incumbent_improvements.size());

  if (solution.status != MilpStatus::kInfeasible) {
    TS_OBS_SPAN("sched.place", obs::Phase::kPlacement);
    // Clear previous plans; they are re-established from this solution.
    for (JobId id : considered) {
      JobInfo& info = jobs_.at(id);
      info.planned_group = -1;
      info.planned_start = kNever;
    }
    for (const Option& opt : options) {
      if (solution.values[opt.var] < 0.5) {
        continue;
      }
      JobInfo& info = jobs_.at(opt.job);
      if (opt.slot == 0) {
        result.start.push_back(Placement{opt.job, opt.group});
      } else {
        info.planned_group = opt.group;
        info.planned_start = now + opt.slot * delta;
        result.deferred.push_back(PlannedPlacement{opt.job, opt.group, info.planned_start});
      }
    }
    for (size_t p = 0; p < preemptables.size(); ++p) {
      if (solution.values[preempt_vars[p]] >= 0.5) {
        result.preempt.push_back(preemptables[p].id);
      }
    }
  }

  result.cycle_seconds = SecondsSince(cycle_start);
  return result;
}

void DistributionScheduler::SaveState(SnapshotWriter& writer) const {
  writer.BeginSection("sched", 3);
  writer.WriteString("3sigma-sched");
  writer.WriteVarU64(jobs_.size());
  for (const auto& [id, info] : jobs_) {
    info.spec.SaveState(writer);
    info.sched_dist.SaveState(writer);
    writer.WriteDouble(info.point_estimate);
    writer.WriteBool(info.oe_enabled);
    info.effective_utility.SaveState(writer);
    writer.WriteVarI64(info.attempts);
    writer.WriteVarU64(info.record_features.size());
    for (const std::string& f : info.record_features) {
      writer.WriteString(f);
    }
    writer.WriteBool(info.running);
    writer.WriteVarI64(info.group);
    writer.WriteDouble(info.start_time);
    writer.WriteVarI64(info.underest_level);
    writer.WriteDouble(info.underest_finish);
    writer.WriteVarI64(info.planned_group);
    writer.WriteDouble(info.planned_start);
    writer.WriteDoubleVec(info.cached_survival);
    writer.WriteDouble(info.survival_valid_until);
    writer.WriteBool(info.capacity_applied);
  }
  writer.WriteVarU64(pending_.size());
  for (JobId id : pending_) {
    writer.WriteVarI64(id);
  }
  writer.WriteBool(dirty_);
  writer.WriteDouble(last_solve_);
  writer.WriteVarU64(consumed_.size());
  for (const std::vector<double>& row : consumed_) {
    writer.WriteDoubleVec(row);
  }
  writer.WriteVarI64(cache_hits_);
  writer.WriteVarI64(cache_misses_);
  writer.WriteVarI64(solves_since_rebuild_);
  writer.WriteVarU64(last_root_basis_.status.size());
  for (BasisStatus s : last_root_basis_.status) {
    writer.WriteU8(static_cast<uint8_t>(s));
  }
  // v2: the valuation engine's cached key set plus its lifetime counters.
  // Tables themselves are rebuilt from restored job state on resume (they
  // are pure functions of it), so only the keys need to be persisted for
  // the resumed hit/miss stream to stay byte-identical.
  valuation_.SaveState(writer);
  writer.WriteVarI64(val_hits_);
  writer.WriteVarI64(val_misses_);
  writer.WriteVarI64(val_kernel_calls_);
  // v3: per-shard warm-start bases keyed by component fingerprint
  // (sharded_milp.h). std::map iterates in ascending key order, so the
  // encoding is deterministic.
  writer.WriteVarU64(shard_bases_.size());
  for (const auto& [fingerprint, basis] : shard_bases_) {
    writer.WriteU64(fingerprint);
    writer.WriteVarU64(basis.status.size());
    for (BasisStatus s : basis.status) {
      writer.WriteU8(static_cast<uint8_t>(s));
    }
  }
  writer.EndSection();

  writer.BeginSection("predict", 1);
  predictor_->SaveState(writer);
  writer.EndSection();
}

void DistributionScheduler::RestoreState(SnapshotReader& reader) {
  uint32_t sched_version = 0;
  reader.BeginSection("sched", &sched_version);
  const std::string tag = reader.ReadString();
  if (reader.ok()) {
    TS_CHECK_MSG(tag == "3sigma-sched", "snapshot scheduler kind mismatch");
  }
  jobs_.clear();
  const uint64_t num_jobs = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_jobs; ++i) {
    JobInfo info;
    info.spec.RestoreState(reader);
    info.sched_dist.RestoreState(reader);
    info.point_estimate = reader.ReadDouble();
    info.oe_enabled = reader.ReadBool();
    info.effective_utility.RestoreState(reader);
    info.attempts = static_cast<int>(reader.ReadVarI64());
    const uint64_t num_features = reader.ReadVarU64();
    info.record_features.clear();
    for (uint64_t f = 0; reader.ok() && f < num_features; ++f) {
      info.record_features.push_back(reader.ReadString());
    }
    info.running = reader.ReadBool();
    info.group = static_cast<int>(reader.ReadVarI64());
    info.start_time = reader.ReadDouble();
    info.underest_level = static_cast<int>(reader.ReadVarI64());
    info.underest_finish = reader.ReadDouble();
    info.planned_group = static_cast<int>(reader.ReadVarI64());
    info.planned_start = reader.ReadDouble();
    info.cached_survival = reader.ReadDoubleVec();
    info.survival_valid_until = reader.ReadDouble();
    info.capacity_applied = reader.ReadBool();
    if (reader.ok()) {
      jobs_[info.spec.id] = std::move(info);
    }
  }
  pending_.clear();
  const uint64_t num_pending = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_pending; ++i) {
    pending_.push_back(reader.ReadVarI64());
  }
  dirty_ = reader.ReadBool();
  last_solve_ = reader.ReadDouble();
  const uint64_t num_groups = reader.ReadVarU64();
  if (reader.ok()) {
    TS_CHECK_MSG(num_groups == consumed_.size(),
                 "snapshot cluster shape does not match this scheduler");
    for (std::vector<double>& row : consumed_) {
      row = reader.ReadDoubleVec();
    }
  }
  cache_hits_ = reader.ReadVarI64();
  cache_misses_ = reader.ReadVarI64();
  solves_since_rebuild_ = static_cast<int>(reader.ReadVarI64());
  const uint64_t basis_size = reader.ReadVarU64();
  last_root_basis_.status.clear();
  for (uint64_t i = 0; reader.ok() && i < basis_size; ++i) {
    last_root_basis_.status.push_back(static_cast<BasisStatus>(reader.ReadU8()));
  }
  valuation_.Clear();
  val_hits_ = 0;
  val_misses_ = 0;
  val_kernel_calls_ = 0;
  if (sched_version >= 2) {
    // Rebuild the cached tables from the restored job state; a key whose job
    // exited between save and restore (impossible today, but harmless) is
    // simply dropped.
    for (const auto& [job, scale] : ValuationEngine::ReadSavedKeys(reader)) {
      if (!reader.ok()) {
        break;
      }
      const auto it = jobs_.find(job);
      if (it != jobs_.end()) {
        valuation_.Tables(job, scale, it->second.sched_dist, it->second.effective_utility,
                          /*counters=*/nullptr);
      }
    }
    val_hits_ = reader.ReadVarI64();
    val_misses_ = reader.ReadVarI64();
    val_kernel_calls_ = reader.ReadVarI64();
  }
  shard_bases_.clear();
  if (sched_version >= 3) {
    const uint64_t num_bases = reader.ReadVarCount(/*min_elem_bytes=*/9);
    for (uint64_t i = 0; reader.ok() && i < num_bases; ++i) {
      const uint64_t fingerprint = reader.ReadU64();
      const uint64_t size = reader.ReadVarCount(/*min_elem_bytes=*/1);
      LpBasis basis;
      basis.status.reserve(size);
      for (uint64_t s = 0; reader.ok() && s < size; ++s) {
        basis.status.push_back(static_cast<BasisStatus>(reader.ReadU8()));
      }
      if (reader.ok()) {
        shard_bases_[fingerprint] = std::move(basis);
      }
    }
  }
  reader.EndSection();

  reader.BeginSection("predict");
  predictor_->RestoreState(reader);
  reader.EndSection();
}

}  // namespace threesigma
