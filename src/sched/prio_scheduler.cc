#include "src/sched/prio_scheduler.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"

namespace threesigma {

PrioScheduler::PrioScheduler(const ClusterConfig& cluster, PrioSchedulerConfig config)
    : cluster_(cluster), config_(std::move(config)) {}

void PrioScheduler::OnJobArrival(const JobSpec& spec, Time now) {
  jobs_[spec.id] = spec;
  pending_.push_back(spec.id);
  (void)now;
}

void PrioScheduler::OnJobStarted(JobId id, int /*group*/, Time /*now*/) {
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id), pending_.end());
}

void PrioScheduler::OnJobFinished(JobId id, Time /*now*/, Duration /*observed_runtime*/) {
  jobs_.erase(id);
}

void PrioScheduler::OnJobPreempted(JobId id, Time /*now*/) {
  TS_CHECK(jobs_.count(id) > 0);
  pending_.push_back(id);
}

void PrioScheduler::OnJobCancelled(JobId id, Time /*now*/) {
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id), pending_.end());
  jobs_.erase(id);
}

CycleResult PrioScheduler::RunCycle(Time now, const ClusterStateView& state) {
  const auto cycle_start = std::chrono::steady_clock::now();
  CycleResult result;
  const int num_groups = cluster_.num_groups();

  // Mutable free-node view; preemptions and starts update it as we go.
  std::vector<int> free = state.free_nodes;
  // Preemptable BE jobs per group, newest start first (cheapest to kill).
  std::vector<std::vector<RunningJobView>> be_running(num_groups);
  for (const RunningJobView& r : state.running) {
    if (r.type == JobType::kBestEffort) {
      be_running[r.group].push_back(r);
    }
  }
  for (auto& group : be_running) {
    std::sort(group.begin(), group.end(), [](const RunningJobView& a, const RunningJobView& b) {
      return a.start_time > b.start_time;
    });
  }

  // SLO jobs by earliest deadline, then best-effort by submit order.
  std::vector<JobId> slo;
  std::vector<JobId> be;
  for (JobId id : pending_) {
    (jobs_.at(id).is_slo() ? slo : be).push_back(id);
  }
  std::sort(slo.begin(), slo.end(),
            [&](JobId a, JobId b) { return jobs_.at(a).deadline < jobs_.at(b).deadline; });
  std::sort(be.begin(), be.end(),
            [&](JobId a, JobId b) { return jobs_.at(a).submit_time < jobs_.at(b).submit_time; });

  auto try_place = [&](const JobSpec& spec, bool allow_preempt) -> bool {
    const int k = spec.num_tasks;
    // Preferred groups first (greatest free space first), then the rest.
    std::vector<int> order;
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<int> groups;
      for (int g = 0; g < num_groups; ++g) {
        if (cluster_.group(g).node_count < k) {
          continue;
        }
        if ((pass == 0) == spec.PrefersGroup(g)) {
          groups.push_back(g);
        }
      }
      std::sort(groups.begin(), groups.end(), [&](int a, int b) { return free[a] > free[b]; });
      order.insert(order.end(), groups.begin(), groups.end());
    }
    for (int g : order) {
      if (free[g] >= k) {
        result.start.push_back(Placement{spec.id, g});
        free[g] -= k;
        return true;
      }
    }
    if (!allow_preempt || !config_.enable_preemption) {
      return false;
    }
    // Preempt newest best-effort jobs in the single group where the fewest
    // victims unlock enough space.
    int best_group = -1;
    int best_victims = INT32_MAX;
    for (int g : order) {
      int need = k - free[g];
      int victims = 0;
      for (const RunningJobView& r : be_running[g]) {
        if (need <= 0) {
          break;
        }
        need -= r.num_tasks;
        ++victims;
      }
      if (need <= 0 && victims < best_victims) {
        best_victims = victims;
        best_group = g;
      }
    }
    if (best_group < 0) {
      return false;
    }
    int need = k - free[best_group];
    while (need > 0) {
      TS_CHECK(!be_running[best_group].empty());
      const RunningJobView victim = be_running[best_group].front();
      be_running[best_group].erase(be_running[best_group].begin());
      result.preempt.push_back(victim.id);
      free[best_group] += victim.num_tasks;
      need -= victim.num_tasks;
    }
    result.start.push_back(Placement{spec.id, best_group});
    free[best_group] -= k;
    return true;
  };

  for (JobId id : slo) {
    try_place(jobs_.at(id), /*allow_preempt=*/true);
  }
  for (JobId id : be) {
    try_place(jobs_.at(id), /*allow_preempt=*/false);
  }

  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - cycle_start;
  result.cycle_seconds = elapsed.count();
  (void)now;
  return result;
}

void PrioScheduler::SaveState(SnapshotWriter& writer) const {
  writer.BeginSection("sched", 1);
  writer.WriteString("prio");
  writer.WriteVarU64(jobs_.size());
  for (const auto& [id, spec] : jobs_) {
    spec.SaveState(writer);
  }
  writer.WriteVarU64(pending_.size());
  for (JobId id : pending_) {
    writer.WriteVarI64(id);
  }
  writer.EndSection();
}

void PrioScheduler::RestoreState(SnapshotReader& reader) {
  reader.BeginSection("sched");
  const std::string tag = reader.ReadString();
  if (reader.ok()) {
    TS_CHECK_MSG(tag == "prio", "snapshot scheduler kind mismatch");
  }
  jobs_.clear();
  const uint64_t num_jobs = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_jobs; ++i) {
    JobSpec spec;
    spec.RestoreState(reader);
    jobs_[spec.id] = std::move(spec);
  }
  pending_.clear();
  const uint64_t num_pending = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_pending; ++i) {
    pending_.push_back(reader.ReadVarI64());
  }
  reader.EndSection();
}

}  // namespace threesigma
