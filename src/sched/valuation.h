// Deterministic Eq. 1 valuation engine.
//
// The scheduling cycle's hottest loop values every (pending job, group, start
// slot) option by expected utility over the job's predicted runtime
// distribution (Eq. 1) and charges every running job's conditional survival
// into the Eq. 3 capacity rows (Eq. 2). The generic path does both through
// EmpiricalDistribution: a std::function-indirected per-atom loop for Eq. 1,
// plus a full Scaled() materialization per (job, group) per cycle whenever a
// group runs the job slower than its preferred one. This engine replaces
// that with per-(job, scale) query tables and closed-form kernels — and it
// does so *bit-exactly*, because the committed golden decision traces (and
// the MILP's float-tie-sensitive branching) must not move when the engine is
// toggled.
//
// Tables. For each (job, scale) pair the engine stores the scaled atom
// values, their renormalized probabilities, and two prefix-sum arrays
// accumulated in exactly the order the generic code would:
//   prefix_mass[k]  = p'_0 + ... + p'_{k-1}        (CdfAtMost's partial sums)
//   prefix_util[k]  = Σ_{i<k} peak · p'_i          (Eq. 1's flat-region terms)
// The scaled atoms are produced by literally calling Scaled() on a miss (and
// adopting the distribution verbatim when scale == 1, where the generic path
// skips Scaled() too), so merging/renormalization bit patterns are identical
// by construction.
//
// Kernels. The generic Eq. 1 accumulator adds f(v_k)·p'_k left to right.
//   kStep:      f is peak on the prefix with start + v_k <= deadline and 0.0
//               after; +0.0 additions are bitwise no-ops on a non-negative
//               accumulator, so the answer is prefix_util at the boundary —
//               one std::partition_point (O(log B)) + one load. The boundary
//               predicate evaluates `start + value <= deadline` exactly as
//               the generic comparison does (never algebraically rearranged:
//               `value <= deadline - start` rounds differently).
//   kStepDecay: prefix_util up to the deadline boundary, then a per-atom
//               replay across the decay window, breaking once the decayed
//               utility reaches 0.0 (it is monotone non-increasing, so all
//               later generic terms are +0.0 no-ops).
//   kLinear:    a per-atom replay of the whole array — no prefix shortcut
//               exists, but the devirtualized direct call still beats the
//               std::function loop and the per-cycle Scaled() allocation.
// Survival(t) = 1.0 − prefix_mass[idx] with idx from a partition_point using
// CdfAtMost's inclusion predicate !(value > t) — which also replicates its
// NaN behavior (the break never fires, so all mass is included).
//
// Cache key + invalidation. Tables are pure functions of (sched_dist,
// effective_utility, scale); both inputs change only on prediction events, so
// the scheduler invalidates per job on arrival, fault-restart re-prediction
// (which covers the forced OE-gate flip), and job exit. Scale comes from
// JobSpec::RuntimeMultiplier, fixed per (job, group) for the job's lifetime.
//
// Determinism. The scheduler's parallel fan-out builds all tables in a
// serial prepare pass, then queries them read-only from ThreadPool workers
// writing to per-job output slots; every kernel is a pure function, so the
// decision stream is byte-identical at any thread count. For checkpoint /
// resume, SaveState persists the cached key set (plus counters) and the
// scheduler rebuilds each table from its restored job state, so a resumed
// run's hit/miss stream continues exactly where the original's would.

#ifndef SRC_SCHED_VALUATION_H_
#define SRC_SCHED_VALUATION_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/cluster/job.h"
#include "src/cluster/utility.h"
#include "src/histogram/empirical_distribution.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

// Hit/miss/kernel-call tallies; workers keep private instances that the
// scheduler sums after a parallel fan-out (totals are thread-count
// invariant because the call set is).
struct ValuationCounters {
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t kernel_calls = 0;
};

// Precomputed query tables for one (distribution, scale) pair. See the file
// comment for the exact accumulation contracts.
struct ValuationTables {
  std::vector<double> value;        // Scaled atom values, ascending.
  std::vector<double> prob;         // Renormalized probabilities.
  std::vector<double> prefix_mass;  // Size value.size() + 1; [0] == 0.0.
  std::vector<double> prefix_util;  // Same shape; peak-weighted partial sums.
  double scale = 1.0;

  size_t size() const { return value.size(); }

  // Number of atoms CdfAtMost(t) would include: the first index whose value
  // compares > t (NaN t includes everything, like the generic loop).
  size_t CountAtMost(double t) const;
  // P(T_scaled > t), bit-identical to Scaled(scale).Survival(t).
  double Survival(double t) const { return 1.0 - prefix_mass[CountAtMost(t)]; }
};

// One staged option produced by the per-job valuation fan-out; `cons_offset`
// indexes into the owning JobValuation's flat consumption arena.
struct ValuedOption {
  int group = 0;
  int slot = 0;
  double eu = 0.0;
  size_t cons_offset = 0;
  int cons_len = 0;
};

// Per-job output slot for the parallel fan-out: cleared and refilled every
// cycle, capacity retained, so steady-state valuation allocates nothing.
struct JobValuation {
  std::vector<ValuedOption> options;
  std::vector<double> consumption;  // Flat arena; options index into it.

  void Clear() {
    options.clear();
    consumption.clear();
  }
};

// Per-worker scratch reused across cycles (survival staging + private
// counters); indexed by ThreadPool worker id.
struct ValuationScratch {
  std::vector<double> survival;
  ValuationCounters counters;
};

class ValuationEngine {
 public:
  struct Config {
    // Retain tables across cycles. Off still builds tables (the kernels need
    // them) but the scheduler clears the cache every cycle, so every lookup
    // is a miss.
    bool cache = true;
    // Debug: re-derive every kernel and survival answer with the generic
    // per-atom loop and TS_CHECK bitwise equality. Tests only.
    bool crosscheck = false;
  };

  explicit ValuationEngine(Config config) : config_(config) {}

  const Config& config() const { return config_; }

  // Returns the tables for (job, scale), building them from `dist` /
  // `utility` on a miss. `counters`, when non-null, records the hit or miss.
  // Not thread-safe; the returned reference is stable until the next
  // InvalidateJob/Clear/RestoreState.
  const ValuationTables& Tables(JobId job, double scale, const EmpiricalDistribution& dist,
                                const UtilityFunction& utility, ValuationCounters* counters);

  // Read-only lookup for the parallel fan-out (no insertion, so concurrent
  // calls are safe once the serial prepare pass has built every key).
  // Returns nullptr on a missing key.
  const ValuationTables* Find(JobId job, double scale) const;

  // Eq. 1: expected utility of starting at absolute time `start`,
  // bit-identical to the generic per-atom accumulation over the scaled
  // distribution. Thread-safe (pure); bumps counters->kernel_calls.
  double ExpectedUtility(const ValuationTables& tables, const UtilityFunction& utility,
                         double start, ValuationCounters* counters) const;

  // Survival with the crosscheck applied in crosscheck mode (the plain
  // tables.Survival skips it). Thread-safe (pure).
  double Survival(const ValuationTables& tables, double t) const;

  // Drops the job's cached tables (re-prediction or job exit).
  void InvalidateJob(JobId job);
  void Clear() { cache_.clear(); }
  size_t cached_entries() const { return cache_.size(); }

  // Raw-payload snapshot hooks, composable into the caller's section.
  // SaveState persists the cached key set; ReadSavedKeys returns it so the
  // caller can rebuild each table via Tables() from restored job state
  // (tables are pure functions of that state, so the rebuilt cache — and
  // every subsequent hit/miss — is bit-identical to the uninterrupted run).
  void SaveState(SnapshotWriter& writer) const;
  static std::vector<std::pair<JobId, double>> ReadSavedKeys(SnapshotReader& reader);

 private:
  // Key: (job, exact bit pattern of the scale factor).
  using Key = std::pair<JobId, uint64_t>;

  Config config_;
  std::map<Key, ValuationTables> cache_;
};

}  // namespace threesigma

#endif  // SRC_SCHED_VALUATION_H_
