// 3σSched — distribution-based MILP scheduling (§3, §4.2, §4.3).
//
// One configurable class covers six of the paper's seven systems (Table 1 +
// the Fig. 8 ablations); only Prio lives elsewhere:
//
//   system         use_distribution  overestimate_handling  adaptive_oe  predictor
//   3Sigma         yes               yes                    yes          3σPredict
//   3SigmaNoDist   no (points)       yes                    yes          3σPredict
//   3SigmaNoOE     yes               no                     —            3σPredict
//   3SigmaNoAdapt  yes               yes                    no (always)  3σPredict
//   PointPerfEst   no (points)       no                     —            oracle
//   PointRealEst   no (points)       no                     —            3σPredict
//
// Each cycle the scheduler:
//   1. conditions every running job's distribution on its elapsed time
//      (Eq. 2) and applies exponential under-estimate extension once a job
//      outruns its entire history (§4.2.1),
//   2. computes expected free capacity per (group, time slot) as capacity
//      minus Σ k·(1 − CDF) over running jobs (Eq. 3),
//   3. enumerates placement options (group × start slot) per pending job and
//      values each by expected utility (Eq. 1), with the §4.2.2/§4.2.3
//      over-estimate utility extension where enabled,
//   4. compiles options into a 0/1 MILP with at-most-one demand rows,
//      expected-capacity rows, and preemption credit terms (§4.3.5),
//   5. solves with warm start + time/node budget and executes slot-0 starts.

#ifndef SRC_SCHED_DISTRIBUTION_SCHEDULER_H_
#define SRC_SCHED_DISTRIBUTION_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/common/thread_pool.h"
#include "src/histogram/empirical_distribution.h"
#include "src/predict/predictor.h"
#include "src/sched/scheduler.h"
#include "src/sched/valuation.h"
#include "src/solver/simplex.h"

namespace threesigma {

// How the aggregate placement problem is solved each cycle.
enum class SolverBackend {
  kMilp,    // §4.3: compile to a 0/1 MILP, branch-and-bound (the paper).
  kGreedy,  // Ablation: utility-greedy packing over the same valued options
            // (no joint optimization, no preemption).
};

struct DistSchedulerConfig {
  std::string name = "3Sigma";
  SolverBackend backend = SolverBackend::kMilp;

  // Core policy toggles (see table above).
  bool use_distribution = true;
  bool overestimate_handling = true;
  bool adaptive_oe = true;
  // §4.2.3: enable OE handling when P(T <= deadline window) is below this.
  double oe_probability_threshold = 0.05;
  // The decay window of the extended utility (Fig. 3d) as a multiple of the
  // job's deadline window.
  double oe_decay_factor = 1.0;

  // §4.3.5 preemption of running best-effort jobs.
  bool enable_preemption = true;
  // Preemption cost as a fraction of the victim's peak utility.
  double preemption_cost_factor = 0.5;

  // Plan-ahead window (§4.3.3) and its start-slot discretization.
  Duration planahead = 1200.0;
  int num_start_slots = 6;
  // Scheduling period; also the unit of the exponential under-estimate
  // increments (§4.2.1).
  Duration cycle_period = 10.0;

  // Solver budgets (§4.3.6: "best solution found within a configurable
  // fraction of its scheduling interval").
  double solver_time_limit_seconds = 0.1;
  int solver_max_nodes = 6;

  // At most this many pending jobs enter one MILP (SLO-deadline order first);
  // the remainder waits for a later cycle.
  int max_pending_considered = 48;

  // Cycles re-solve only when state changed (arrival/completion/preemption),
  // a planned deferred start comes due, or this much time passed since the
  // last solve (expected capacity drifts as conditional distributions age).
  Duration max_solve_skip = 30.0;

  // Worker threads for the wave-parallel branch-and-bound solver (§4.3.6
  // time budget stretches further when LP relaxations solve concurrently).
  // The search is deterministic in this value's *presence*, not its size:
  // any thread count returns bit-identical solutions.
  int solver_threads = 1;

  // Incremental expected-capacity cache: per (group, slot) Eq. 3 rows are
  // updated by delta when a running job starts/completes/needs reconditioning
  // instead of re-summing Σ k·(1 − CDF) over all running jobs every cycle.
  // Each job's per-slot survival vector carries a validity horizon (the next
  // time an atom of its conditioned distribution crosses a slot boundary);
  // rows stay untouched until a horizon expires.
  bool capacity_cache = true;
  // Debug mode: after every incremental update, recompute all rows from
  // scratch and TS_CHECK the delta-updated values match (the cache
  // invariant). Costs the full recompute the cache saves; tests only.
  bool capacity_cache_crosscheck = false;

  // Simplex basis warm-starting (MilpOptions::basis_warmstart): B&B children
  // re-optimize from their parent's basis via dual pivots, and the previous
  // cycle's root basis seeds the next cycle's root relaxation. Affects LP
  // pivot counts only; thread-count determinism is preserved.
  bool solver_basis_warmstart = true;

  // Shard decomposition (src/solver/sharded_milp.h): split the cycle MILP
  // into connected components of the job↔equivalence-set constraint graph
  // and solve them as independent sub-MILPs on the solver pool, each with
  // its own fingerprint-keyed warm-start basis. Exact — the merged solution
  // matches the monolithic objective bitwise — and byte-identical at any
  // shard/thread count. Interacts with budgets: every shard receives the
  // full solver_max_nodes, so with a *binding* node budget the sharded
  // search explores more of the tree than the monolithic one (run with
  // solver_max_nodes = 0 when comparing against the monolithic solve).
  bool solver_shards = false;

  // Eq. 1 valuation engine (src/sched/valuation.h): closed-form utility
  // kernels over precomputed prefix-sum tables, a deterministic parallel
  // per-job fan-out across the solver thread pool, and zero-copy Eq. 2
  // conditional-survival queries for running jobs. Off = the generic
  // per-atom std::function path with per-cycle Scaled() materializations.
  // Decisions are bit-identical either way (the kernels replay the generic
  // accumulation exactly); only speed and the valuation counters change.
  bool valuation_engine = true;
  // Retain per-(job, scale) valuation tables across cycles, invalidated on
  // re-prediction (arrival, fault restart — which covers OE-gate flips) and
  // job exit. Off = the cache is cleared every cycle, so each (job, group)
  // pays one table rebuild per cycle.
  bool valuation_cache = true;
  // Debug mode: every kernel and survival answer is re-derived with the
  // generic per-atom loop and TS_CHECKed for bitwise equality. Costs what
  // the kernels save; tests only.
  bool valuation_crosscheck = false;
};

class DistributionScheduler : public Scheduler {
 public:
  // `predictor` must outlive the scheduler.
  DistributionScheduler(const ClusterConfig& cluster, RuntimePredictor* predictor,
                        DistSchedulerConfig config);

  void OnJobArrival(const JobSpec& spec, Time now) override;
  void OnJobStarted(JobId id, int group, Time now) override;
  void OnJobFinished(JobId id, Time now, Duration observed_runtime) override;
  void OnJobPreempted(JobId id, Time now) override;
  // Fault recovery (§4.2 applied to restarts): requeues like a preemption,
  // then (a) bumps the attempt count and re-predicts with an "attempts=k"
  // feature so restarted jobs build their own history population, and (b)
  // treats the restart as a likely mis-estimate — the original estimate
  // ignores the lost work — enabling the over-estimate utility decay.
  void OnJobFaultKilled(JobId id, Time now) override;
  // Online cancellation: drops the pending job like an abandonment (it never
  // ran, so there is no capacity contribution to retire).
  void OnJobCancelled(JobId id, Time now) override;
  // Node crash/repair: invalidates the solve-skip plan cache (the previous
  // plan was drawn against stale capacity, so the next cycle must re-solve).
  void OnCapacityChanged(int group, int available_nodes, Time now) override;
  CycleResult RunCycle(Time now, const ClusterStateView& state) override;
  std::string name() const override { return config_.name; }

  // Checkpointing: serializes the full scheduler state (job table with
  // conditioned distributions and cached survival vectors, pending order,
  // solve-skip state, consumed_ rows, cache counters, last_root_basis_, and
  // the per-shard basis map) into a "sched" section, then the predictor into
  // a "predict" section.
  // RestoreState requires a scheduler constructed with the same config and
  // predictor graph; the cluster shape is validated via consumed_ geometry.
  void SaveState(SnapshotWriter& writer) const override;
  void RestoreState(SnapshotReader& reader) override;

  // Replaces the policy configuration of a live scheduler at a cycle
  // boundary (digital-twin scenario overrides and opt-in advisor
  // auto-apply). The job table survives; derived per-job state is rebuilt
  // under the new policy: sched_dist is re-predicted when use_distribution
  // flips, the OE decay gate is re-evaluated for every job, and the
  // expected-capacity rows, valuation tables, solve-skip plan, and warm-start
  // basis are all reset (they encode the old policy). The cluster and
  // predictor are unchanged; `config.name` is adopted as-is.
  void UpdateConfig(const DistSchedulerConfig& config);

  // The shared solver pool (null when solver_threads <= 1). The digital-twin
  // engine borrows it for the scenario fan-out while the live cycle is
  // parked; ParallelFor is one-at-a-time, so the borrow must not overlap a
  // running cycle.
  ThreadPool* solver_pool() const { return pool_.get(); }

  // Diagnostics.
  int pending_count() const { return static_cast<int>(pending_.size()); }
  const DistSchedulerConfig& config() const { return config_; }
  // Eq. 3 running-job consumption per (group, slot) as of the last full
  // cycle: expected free capacity is node_count − expected_consumed()[g][i].
  const std::vector<std::vector<double>>& expected_consumed() const { return consumed_; }
  int64_t capacity_cache_hits() const { return cache_hits_; }
  int64_t capacity_cache_misses() const { return cache_misses_; }
  int64_t valuation_cache_hits() const { return val_hits_; }
  int64_t valuation_cache_misses() const { return val_misses_; }
  int64_t valuation_kernel_calls() const { return val_kernel_calls_; }

 private:
  struct JobInfo {
    JobSpec spec;
    // Distribution actually used for scheduling: the predictor's histogram
    // distribution, or a point mass in NoDist/point modes.
    EmpiricalDistribution sched_dist;
    double point_estimate = 0.0;
    bool oe_enabled = false;
    UtilityFunction effective_utility = UtilityFunction::BestEffortLinear(1.0, 0.0, 1.0);

    // Fault restarts of this job so far; > 0 appends an "attempts=k" feature
    // to record_features so the predictor's history keys on attempt counts.
    int attempts = 0;
    // Features used for re-prediction and completion recording (spec.features
    // until the first fault restart).
    JobFeatures record_features;

    bool running = false;
    int group = -1;
    Time start_time = kNever;

    // §4.2.1 exponential under-estimate extension state.
    int underest_level = -1;     // -1: not yet past the max observed runtime.
    Time underest_finish = kNever;

    // Warm-start memory: last cycle's planned option.
    int planned_group = -1;
    Time planned_start = kNever;

    // Expected-capacity cache entry: this job's per-slot survival vector,
    // exact for any cycle time in [when it was computed, survival_valid_until).
    // `capacity_applied` marks that k·cached_survival is currently summed
    // into consumed_[group] and must be subtracted before any change.
    std::vector<double> cached_survival;
    Time survival_valid_until = -1e18;
    bool capacity_applied = false;
  };

  // Recomputes info.effective_utility / info.oe_enabled from the current
  // sched_dist (§4.2.2/§4.2.3). `force` bypasses the adaptive gate (used for
  // fault restarts, which are treated as likely mis-estimates).
  void ApplyOverestimateDecay(JobInfo& info, bool force) const;

  // Refreshes the under-estimate extension state of a running job (§4.2.1).
  void UpdateUnderestimate(JobInfo& info, Time now) const;

  // Pure per-slot survival vector of a running job at `now` (no cache or
  // under-estimate state mutation; shared by the cache refresh and the
  // cross-check recompute). With the valuation engine on, the Eq. 2 ratios
  // are served from the job's prefix-sum tables (zero-copy; may populate the
  // mutable table cache) instead of a per-refresh Scaled() materialization.
  void ComputeRunningSurvival(const JobInfo& info, Time now, std::vector<double>* out) const;

  // Values one considered job's (group, slot) options into `out` using the
  // valuation engine's tables (which must already exist: the serial prepare
  // pass in RunCycleImpl builds them, so this is read-only and safe to run
  // from pool workers). Bit-identical to ValueJobOptionsGeneric.
  void ValueJobOptions(const JobInfo& info, Time now, ValuationScratch& scratch,
                       JobValuation* out) const;
  // The pre-engine path: per-(job, group) Scaled() materialization and the
  // generic per-atom Eq. 1 loop.
  void ValueJobOptionsGeneric(const JobInfo& info, Time now, ValuationScratch& scratch,
                              JobValuation* out) const;
  // Recomputes a job's cached survival vector and its validity horizon
  // (calls UpdateUnderestimate first).
  void RefreshRunningSurvival(JobInfo& info, Time now);
  // Removes a job's applied contribution from consumed_ (no-op if none).
  void RetireCapacityContribution(JobInfo& info);
  // Step 1 of RunCycle: brings consumed_ up to date for `now`, incrementally
  // when the cache is enabled; fills the cycle's hit/miss counters.
  void UpdateConsumed(Time now, const ClusterStateView& state, CycleResult* result);

  // RunCycle's body; the public wrapper publishes the cycle's outcome to the
  // metrics registry around it.
  CycleResult RunCycleImpl(Time now, const ClusterStateView& state);

  const ClusterConfig& cluster_;
  RuntimePredictor* predictor_;
  DistSchedulerConfig config_;

  std::map<JobId, JobInfo> jobs_;
  std::vector<JobId> pending_;  // Arrival order.

  // Solve-skip state (see DistSchedulerConfig::max_solve_skip).
  bool dirty_ = true;
  Time last_solve_ = -1e18;

  // Incremental Eq. 3 state: consumed_[g][i] = Σ k·(1 − CDF) over running
  // jobs, maintained by delta updates (see DistSchedulerConfig::capacity_cache).
  std::vector<std::vector<double>> consumed_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  // Valuation-engine totals (per-cycle deltas land in CycleResult).
  int64_t val_hits_ = 0;
  int64_t val_misses_ = 0;
  int64_t val_kernel_calls_ = 0;
  // Delta updates accumulate float error; a periodic full rebuild squashes
  // any drift long before it can reach the cross-check tolerance.
  int solves_since_rebuild_ = 0;

  // Previous cycle's root-relaxation basis, fed back as the next cycle's
  // root hint (§4.3.6 "seeding the solver with the previous solution" applied
  // to the simplex itself). A shape mismatch is detected and discarded at
  // install time, so consecutive cycles of different sizes are safe.
  LpBasis last_root_basis_;

  // Sharded counterpart of last_root_basis_: per-component root bases keyed
  // by structural fingerprint (sharded_milp.h), reused across cycles while a
  // component keeps its shape. Deterministically cleared when it outgrows
  // kMaxShardBases (a hard bound on snapshot size and stale entries).
  std::map<uint64_t, LpBasis> shard_bases_;

  // Shared across cycles so the parallel solver never re-spawns threads.
  std::unique_ptr<ThreadPool> pool_;

  // Eq. 1 valuation engine state. Mutable because ComputeRunningSurvival is
  // const (pure w.r.t. observable scheduler state) but may populate the
  // memoized table cache on a lookup miss.
  mutable ValuationEngine valuation_;
  // Per-considered-job output slots and per-worker scratch for the parallel
  // valuation fan-out; cleared and refilled each cycle, capacity retained,
  // so steady-state valuation does no hot-path allocation.
  std::vector<JobValuation> value_stage_;
  std::vector<ValuationScratch> value_scratch_;
};

}  // namespace threesigma

#endif  // SRC_SCHED_DISTRIBUTION_SCHEDULER_H_
